#!/usr/bin/env bash
# Full verification pass: build, vet, tests (with race), every example,
# and a quick pass of every experiment harness. This is what CI would
# run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== tests (race: parallel verification path) =="
go test -race -timeout 600s ./internal/ledger ./internal/audit

echo "== tests (race) =="
go test -race -timeout 600s ./...

echo "== pipeline bench smoke =="
go test -run xxx -bench BenchmarkAppendSerialVsPipelined -benchtime 1x . > /dev/null

echo "== audit/proof bench smoke =="
go test -run xxx -bench BenchmarkAudit -benchtime 1x ./internal/audit > /dev/null
go test -run xxx -bench 'BenchmarkProveExistence|BenchmarkExistenceBatch' -benchtime 1x ./internal/ledger > /dev/null

echo "== examples =="
for ex in examples/*/; do
    echo "-- $ex"
    go run "./$ex" > /dev/null
done

echo "== cli smoke =="
go build -o /tmp/ldbsrv-check ./cmd/ledgerdb-server
go build -o /tmp/ldb-check ./cmd/ledgerdb
/tmp/ldbsrv-check -addr 127.0.0.1:18421 -uri ledger://check &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
sleep 1
/tmp/ldb-check -server http://127.0.0.1:18421 -key-seed check append "hello" trail 2>/dev/null
/tmp/ldb-check -server http://127.0.0.1:18421 verify 1 2>/dev/null
/tmp/ldb-check -server http://127.0.0.1:18421 verify-anchored 1 2>/dev/null
/tmp/ldb-check -server http://127.0.0.1:18421 verify-clue trail 2>/dev/null
kill $SRV

echo "== experiments (quick) =="
go run ./cmd/bench all > /dev/null

echo "ALL CHECKS PASSED"
