#!/usr/bin/env bash
# Full verification pass: build, vet, verlint, tests (with race), fuzz
# seed smoke, every example, and a quick pass of every experiment
# harness. This is what CI would run.
#
# Stages are individually invocable:
#
#   scripts/check.sh          # everything (same as `all`)
#   scripts/check.sh lint     # build + vet + verlint only
#   scripts/check.sh fuzz     # 10s native fuzz smoke per wire decoder
#   scripts/check.sh race     # the -race suites only
#   scripts/check.sh crash    # crash-recovery torture (1000 crash points)
#   scripts/check.sh chaos    # network-chaos torture (500 fault schedules, -race)
#   scripts/check.sh shard    # multi-shard topology e2e incl. kill-one-shard chaos (-race)
#   scripts/check.sh query    # rich-query layer: index + absence tests (-race), crash + fuzz smoke
#   scripts/check.sh replica  # replication: puller/bundle tests (-race), partition chaos, follower crash torture
#   scripts/check.sh perf     # hot-path bench smoke + allocs/op regression guards
#   scripts/check.sh all      # everything
set -euo pipefail
cd "$(dirname "$0")/.."

stage_build() {
    echo "== build =="
    go build ./...
}

stage_lint() {
    echo "== vet =="
    go vet ./...

    echo "== verlint (L1-L9 verification invariants, per-rule timing on stderr) =="
    # JSON mode piped through a tiny jq-free parser so failures print
    # clickable file:line locations; pipefail preserves verlint's exit
    # status through the pipe.
    go run ./cmd/verlint -json -timing ./... |
        sed -E 's/^\{"file":"([^"]*)","line":([0-9]+),"rule":"([^"]*)","msg":"(.*)"\}$/\1:\2: [\3] \4/'
}

stage_tests() {
    echo "== tests =="
    go test ./...
}

stage_fuzz() {
    echo "== fuzz smoke (10s per wire decoder) =="
    go test -run xxx -fuzz FuzzDecodeExistenceProof -fuzztime 10s ./internal/ledger > /dev/null
    go test -run xxx -fuzz FuzzDecodeClueBundle -fuzztime 10s ./internal/ledger > /dev/null
    go test -run xxx -fuzz FuzzDecodeReceipt -fuzztime 10s ./internal/ledger > /dev/null
    go test -run xxx -fuzz FuzzDecodeSchedule -fuzztime 10s ./internal/netchaos > /dev/null
    go test -run xxx -fuzz FuzzMutateEnvelope -fuzztime 10s ./internal/netchaos > /dev/null
}

stage_race() {
    echo "== tests (race: parallel verification path) =="
    go test -race -timeout 600s ./internal/ledger ./internal/audit

    echo "== tests (race: service e2e, shared-client SDK) =="
    go test -race -timeout 600s ./internal/server ./internal/client

    echo "== tests (race: depth-16 staged pipeline read stress) =="
    go test -race -timeout 600s -run 'TestPipelineDepth16ReadStress|TestPipelineStress' -count 2 ./internal/ledger

    echo "== tests (race) =="
    go test -race -timeout 600s ./...
}

stage_crash() {
    echo "== crash-recovery torture (faultfs, 1000 randomized crash points) =="
    CRASHTEST_ITERS=1000 go test -run TestCrashRecoveryTorture -count 1 ./internal/integration/crashtest

    echo "== coalesced group-fsync crash torture (pipelined, both crash models) =="
    PIPECRASH_ITERS=30 go test -run TestPipelineCoalescedSyncCrash -count 1 ./internal/integration/crashtest

    echo "== crash-recovery regressions (durability failpoints) =="
    go test -run 'TestSerialCommitDurability|TestPurgeRollForwardAfterCrash|TestTornPurgeJournalStaysInert' -count 1 ./internal/integration/crashtest
    go test -run 'TestTornHeaderReopen|TestShortWrite|TestSyncFailureKeepsSeq|TestDropUnsynced' -count 1 ./internal/streamfs/...
}

stage_chaos() {
    echo "== network-chaos torture (netchaos, 500 seeded fault schedules, -race) =="
    CHAOSTEST_ITERS=500 go test -race -timeout 600s -run TestNetworkChaosTorture -count 1 ./internal/integration/chaostest

    echo "== network-chaos regressions (deterministic fault points) =="
    go test -race -run 'TestAmbiguousLossRetriesExactlyOnce|TestMiddleboxDuplicateCommitsOnce|TestCorruptReceiptSurfacesEvidenceWithoutRetry|TestSlowLorisBoundedByDeadline|TestRetryAfterHonoredEndToEnd|TestDrainLosesNoCommittedGroup' -count 1 ./internal/integration/chaostest
    go test -run 'TestRetrySemanticsByStatus|TestBreakerTripHalfOpenReset|TestLoadShed429UnderSaturation|TestReadyzFlipsDuringDrain' -count 1 ./internal/client ./internal/server
}

stage_shard() {
    echo "== sharded topology e2e (global proof path, kill-one-shard chaos, cross-shard audit, -race) =="
    go test -race -timeout 600s -count 1 ./internal/shard ./internal/integration/shardtest

    echo "== shard partitioner fuzz seeds =="
    go test -run xxx -fuzz FuzzRoute -fuzztime 10s ./internal/shard > /dev/null
}

stage_query() {
    echo "== rich-query layer: sidecar index + clue-set commitment (-race) =="
    go test -race -timeout 600s -count 1 ./internal/index ./internal/cmtree
    go test -race -timeout 600s -run 'TestAbsence|TestQuery|TestVerifyQueryResult' -count 1 ./internal/ledger

    echo "== query/absence e2e (single node + sharded router) =="
    go test -race -timeout 600s -run 'TestEndToEndQuery|TestEndToEndPurgeThenQuery|TestQueryWithoutIndex' -count 1 ./internal/server
    go test -race -timeout 600s -run 'TestShardedQueryAndAbsence|TestRouterPurgeStatusCodes|TestRouterOccultStatusCode' -count 1 ./internal/integration/shardtest

    echo "== index crash convergence (mid-rebuild, mid-tail) =="
    go test -run 'TestIndexCrash' -count 1 ./internal/integration/crashtest

    echo "== absence proof fuzz smoke =="
    go test -run xxx -fuzz FuzzDecodeAbsenceProof -fuzztime 10s ./internal/ledger > /dev/null
}

stage_replica() {
    echo "== replication: verified catch-up, frames, offline bundles (-race) =="
    go test -race -timeout 600s -count 1 ./internal/replica
    go test -race -timeout 600s -run 'TestBundle|TestStackFollower|TestStackClose' -count 1 ./internal/ledger ./ledgerdb
    go test -race -timeout 600s -run 'TestReplicationOverHTTP|TestFollowerStaleProofRejected|TestBundleEndpoint|TestPullEndpointValidation|TestHealthzJSONShape|TestRouterReadFallbackToReplica|TestRouterAppendsNeverFallBack|TestRouterWithReplicas|TestRouterNoReplicas' -count 1 ./internal/server

    echo "== partition tolerance (netchaos cut/heal cycles, -race) =="
    go test -race -timeout 600s -run TestPartitionTolerantReads -count 1 ./internal/integration/chaostest

    echo "== follower crash torture (measured byte offsets, both crash models) =="
    REPLICA_CRASHTEST_ITERS=200 go test -run TestReplicaCrashTorture -count 1 ./internal/integration/crashtest

    echo "== replication wire fuzz smoke =="
    go test -run xxx -fuzz FuzzDecodeSegmentFrame -fuzztime 10s ./internal/replica > /dev/null
    go test -run xxx -fuzz FuzzDecodeProofBundle -fuzztime 10s ./internal/ledger > /dev/null
}

stage_bench() {
    echo "== pipeline bench smoke =="
    go test -run xxx -bench BenchmarkAppendSerialVsPipelined -benchtime 1x . > /dev/null

    echo "== audit/proof bench smoke =="
    go test -run xxx -bench BenchmarkAudit -benchtime 1x ./internal/audit > /dev/null
    go test -run xxx -bench 'BenchmarkProveExistence|BenchmarkExistenceBatch' -benchtime 1x ./internal/ledger > /dev/null
}

stage_perf() {
    echo "== hot-path bench smoke =="
    go test -run xxx -bench 'BenchmarkHotPathEncodeDigest|BenchmarkAppendSerial$|BenchmarkAppendPipelined|BenchmarkAppendBatchVerify|BenchmarkGetJournalZeroCopy' \
        -benchtime 10x ./internal/ledger > /dev/null
    go test -run xxx -bench 'BenchmarkReadBuf|BenchmarkPooledWriter' -benchtime 10x ./internal/streamfs ./internal/wire > /dev/null 2>&1 || true

    echo "== allocs/op regression guards (encode+digest must be 0; Append within checked-in budget) =="
    go test -run 'TestEncodeDigestZeroAlloc|TestAppendAllocBudget' -count 1 -v ./internal/ledger | grep -E 'allocs/op|PASS|FAIL|ok '
    go test -run 'TestDigestHelpersDoNotAllocate' -count 1 ./internal/hashutil
    go test -run 'TestReadBufSteadyStateAllocs' -count 1 ./internal/streamfs
}

stage_examples() {
    echo "== examples =="
    for ex in examples/*/; do
        echo "-- $ex"
        go run "./$ex" > /dev/null
    done
}

stage_cli() {
    echo "== cli smoke =="
    go build -o /tmp/ldbsrv-check ./cmd/ledgerdb-server
    go build -o /tmp/ldb-check ./cmd/ledgerdb
    /tmp/ldbsrv-check -addr 127.0.0.1:18421 -uri ledger://check &
    SRV=$!
    trap 'kill $SRV 2>/dev/null || true' EXIT
    sleep 1
    /tmp/ldb-check -server http://127.0.0.1:18421 -key-seed check append "hello" trail 2>/dev/null
    /tmp/ldb-check -server http://127.0.0.1:18421 verify 1 2>/dev/null
    /tmp/ldb-check -server http://127.0.0.1:18421 verify-anchored 1 2>/dev/null
    /tmp/ldb-check -server http://127.0.0.1:18421 verify-clue trail 2>/dev/null
    /tmp/ldb-check -server http://127.0.0.1:18421 query prefix trail 2>/dev/null
    /tmp/ldb-check -server http://127.0.0.1:18421 absence no-such-clue 2>/dev/null
    kill $SRV
}

stage_experiments() {
    echo "== experiments (quick) =="
    go run ./cmd/bench all > /dev/null
}

stage_all() {
    stage_build
    stage_lint
    stage_tests
    stage_fuzz
    stage_race
    stage_crash
    stage_chaos
    stage_shard
    stage_query
    stage_replica
    stage_bench
    stage_perf
    stage_examples
    stage_cli
    stage_experiments
    echo "ALL CHECKS PASSED"
}

case "${1:-all}" in
    lint) stage_build; stage_lint ;;
    fuzz) stage_fuzz ;;
    race) stage_race ;;
    crash) stage_crash ;;
    chaos) stage_chaos ;;
    shard) stage_shard ;;
    query) stage_query ;;
    replica) stage_replica ;;
    perf) stage_perf ;;
    all) stage_all ;;
    *)
        echo "usage: $0 [lint|fuzz|race|crash|chaos|shard|query|replica|perf|all]" >&2
        exit 2
        ;;
esac
