// GCO supply chain: the paper's §I motivating example. A national
// Grain-Cotton-Oil supply chain has banks, manufacturers, retailers,
// suppliers, and warehouses appending manuscripts, invoice copies, and
// receipts to one auditable ledger. With Dasein-completeness any record
// is auditable by an external party in terms of what-when-who.
//
//	go run ./examples/gco-supplychain
package main

import (
	"fmt"
	"log"

	"ledgerdb/ledgerdb"
)

func main() {
	stack, err := ledgerdb.NewStack(ledgerdb.StackOptions{URI: "ledger://gco"})
	if err != nil {
		log.Fatal(err)
	}

	// The consortium's participants, each with a CA-certified identity.
	bank := stack.NewMember("agri-bank")
	oilCo := stack.NewMember("oil-manufacturer")
	cotton := stack.NewMember("cotton-retailer")
	supplier := stack.NewMember("grain-supplier")
	warehouse := stack.NewMember("grain-warehouse")

	// One shipment's paper trail, each step signed by its actor and
	// tagged with the shipment's clue.
	const shipment = "GCO-2026-SHIP-0042"
	steps := []struct {
		actor *ledgerdb.Member
		doc   string
	}{
		{supplier, "manifest: 120t wheat, origin Hebei"},
		{warehouse, "intake receipt: 120t wheat accepted, silo 14"},
		{bank, "letter of credit issued: CNY 1.8M"},
		{oilCo, "purchase order: 40t pressed for oil production"},
		{cotton, "cross-dock note: shared container with cotton lot 77"},
		{warehouse, "outbound receipt: 120t released"},
		{bank, "settlement confirmed"},
	}
	for _, s := range steps {
		receipt, err := s.actor.Append([]byte(s.doc), shipment)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s appended jsn %-3d %q\n", s.actor.Name, receipt.JSN, s.doc)
	}
	// Every day the LSP anchors the ledger state through the time notary,
	// so the shipment's steps get judicial when evidence.
	if _, err := stack.AnchorTime(); err != nil {
		log.Fatal(err)
	}
	if err := stack.FinalizeTime(); err != nil {
		log.Fatal(err)
	}

	// An external auditor (any party with ledger access) verifies the
	// shipment's full lineage: all seven records, their order, their
	// count, and every actor's signature.
	auditor := stack.NewMember("external-auditor")
	lineage, err := auditor.VerifyClue(shipment)
	if err != nil {
		log.Fatalf("lineage verification FAILED: %v", err)
	}
	fmt.Printf("\nshipment %s: %d steps verified (count, order, integrity, signatures)\n", shipment, len(lineage))
	for _, rec := range lineage {
		fmt.Printf("  jsn %-3d signer %s  tx %s\n", rec.JSN, rec.ClientPK, rec.TxHash().Short())
	}

	// And the full Dasein-complete audit over the whole ledger.
	report, err := stack.Audit()
	if err != nil {
		log.Fatalf("AUDIT FAILED: %v", err)
	}
	fmt.Printf("\nDasein-complete audit PASSED: %d journals, %d signatures, %d time journals\n",
		report.JournalsReplayed, report.SignaturesChecked, report.TimeJournals)
}
