// Copyright lineage: the §IV example. An artwork is produced, then its
// royalty is transferred twice; a clue (DCI001) tracks the three records,
// and clue-oriented verification validates all of them — including the
// *number* of records, so a hidden transfer is detected.
//
//	go run ./examples/copyright-lineage
package main

import (
	"fmt"
	"log"

	"ledgerdb/ledgerdb"
)

func main() {
	stack, err := ledgerdb.NewStack(ledgerdb.StackOptions{URI: "ledger://copyright"})
	if err != nil {
		log.Fatal(err)
	}
	artist := stack.NewMember("artist")
	gallery := stack.NewMember("gallery")
	collector := stack.NewMember("collector")

	const clue = "DCI001"
	// 2005: the artwork is registered.
	r1, err := artist.Append([]byte(`{"event":"produced","work":"Sunrise Over Code","year":2005}`), clue)
	if err != nil {
		log.Fatal(err)
	}
	// 2010: first royalty transfer.
	r2, err := gallery.Append([]byte(`{"event":"royalty-transfer","to":"gallery","year":2010}`), clue)
	if err != nil {
		log.Fatal(err)
	}
	// 2015: second transfer.
	r3, err := collector.Append([]byte(`{"event":"royalty-transfer","to":"collector","year":2015}`), clue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered lineage %s at jsns %d, %d, %d\n", clue, r1.JSN, r2.JSN, r3.JSN)

	// Clue-oriented verification (Verify(lgid, CLUE, …) of §IV-C):
	// retrieve and verify all three journals, including the count.
	lineage, err := artist.VerifyClue(clue)
	if err != nil {
		log.Fatalf("lineage verification FAILED: %v", err)
	}
	fmt.Printf("lineage VERIFIED: %d records for %s\n", len(lineage), clue)
	for _, rec := range lineage {
		payload, err := stack.Ledger.GetPayload(rec.JSN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  jsn %-3d %s\n", rec.JSN, payload)
	}

	// Range verification: only versions [1, 3) — the two transfers —
	// with the CM-Tree2 node-set cells standing in for the rest.
	bundle, err := stack.Ledger.ProveClue(clue, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := ledgerdb.VerifyClue(bundle, stack.LSP.Public())
	if err != nil {
		log.Fatalf("range verification FAILED: %v", err)
	}
	fmt.Printf("range [1,3) VERIFIED: %d transfer records\n", len(recs))

	// Tamper demo: a forged lineage (one record swapped) must fail.
	forged, err := stack.Ledger.ProveClue(clue, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	forged.Records[1] = forged.Records[2] // replay another record in its place
	if _, err := ledgerdb.VerifyClue(forged, stack.LSP.Public()); err != nil {
		fmt.Printf("forged lineage correctly REJECTED: %v\n", err)
	} else {
		log.Fatal("forged lineage was accepted — this must never happen")
	}
}
