// HTTP service: the full client/server trust split of §II-C. A ledger
// service (LSP, T-Ledger, TSA pool) runs in one goroutine; a distrusting
// client talks to it over real HTTP, pins the LSP key, and re-verifies
// every response locally — receipts, existence proofs, anchored proofs,
// lineage, and state reads.
//
//	go run ./examples/http-service
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ledgerdb/internal/client"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

func main() {
	// ---- Service side (the LSP's infrastructure).
	clock := func() int64 { return time.Now().UnixNano() }
	lsp, err := sig.Generate()
	if err != nil {
		log.Fatal(err)
	}
	dba, err := sig.Generate()
	if err != nil {
		log.Fatal(err)
	}
	pool := tsa.NewPool(tsa.New("tsa-1", tsa.Options{Clock: clock}))
	tl, err := tledger.New(tledger.Config{
		Clock:     clock,
		Tolerance: int64(time.Second),
		TSA:       pool,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{
		URI:           "ledger://service",
		FractalHeight: 4, // small epochs so the demo seals a few
		BlockSize:     8,
		LSP:           lsp,
		DBA:           dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock,
	})
	if err != nil {
		log.Fatal(err)
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(listener, server.New(l, tl))
	baseURL := "http://" + listener.Addr().String()
	fmt.Printf("service listening on %s\n", baseURL)

	// ---- Client side: pins the LSP key out of band.
	key, err := sig.Generate()
	if err != nil {
		log.Fatal(err)
	}
	cli := &client.Client{
		BaseURL: baseURL,
		Key:     key,
		LSP:     lsp.Public(), // the out-of-band pin
		URI:     "ledger://service",
	}

	var receipts []*journal.Receipt
	for i := 0; i < 40; i++ {
		r, err := cli.Append([]byte(fmt.Sprintf("record %02d", i)), "stream-a")
		if err != nil {
			log.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	fmt.Printf("appended %d journals; every receipt verified against the pinned LSP key\n", len(receipts))

	// Cold verification: full merged-leaf chain.
	if _, _, err := cli.VerifyExistence(receipts[3].JSN, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold existence verification passed (full fam chain)")

	// Anchored verification (fam-aoa): fetch the anchor once, then
	// verify deep history with near-constant-size proofs.
	anchor, err := cli.FetchAnchor()
	if err != nil {
		log.Fatal(err)
	}
	for _, jsn := range []uint64{1, 10, 20, 39} {
		if _, _, err := cli.VerifyExistenceAnchored(jsn, anchor, false); err != nil {
			log.Fatalf("anchored verify %d: %v", jsn, err)
		}
	}
	fmt.Printf("anchored verification passed for 4 journals under an anchor covering %d journals (%d sealed epochs)\n",
		anchor.Size, anchor.Epochs)

	// Lineage over HTTP (§IV-C client side).
	recs, err := cli.VerifyClue("stream-a", 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage verification passed: %d records under clue stream-a\n", len(recs))

	// Time anchoring through the service's T-Ledger (Protocol 4).
	if _, err := cli.AnchorTime(); err != nil {
		log.Fatal(err)
	}
	if _, err := tl.Finalize(); err != nil { // the service's Δτ tick
		log.Fatal(err)
	}
	fmt.Println("time journal anchored via T-Ledger and TSA-finalized")

	// The trust model in action: a client pinned to the WRONG key
	// rejects everything the service says.
	wrong, err := sig.Generate()
	if err != nil {
		log.Fatal(err)
	}
	evil := &client.Client{BaseURL: baseURL, Key: key, LSP: wrong.Public(), URI: "ledger://service"}
	if _, err := evil.State(); err != nil {
		fmt.Printf("client with wrong LSP pin correctly rejects the service: %v\n", err)
	} else {
		log.Fatal("wrong pin accepted — must never happen")
	}
}
