// Regulated ledger: the verifiable mutations of §III-A. A journal with
// regulation-violating content is occulted (hidden, digest retained)
// under DBA + regulator multi-signatures; obsolete history is purged
// behind a pseudo genesis with survivor journals preserved; and the
// ledger still passes a full Dasein-complete audit afterwards.
//
//	go run ./examples/regulated-ledger
package main

import (
	"errors"
	"fmt"
	"log"

	"ledgerdb/ledgerdb"
)

func main() {
	stack, err := ledgerdb.NewStack(ledgerdb.StackOptions{URI: "ledger://regulated", BlockSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	alice := stack.NewMember("alice")
	regulator := stack.NewRegulator("privacy-watchdog")

	// Business as usual: ten journals, one of which (jsn 4) leaks
	// personal data.
	var leaked, milestone uint64
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf("statement %d", i)
		if i == 3 {
			doc = "CUSTOMER PII: passport K1234567, acct 555-01" // illegal upload
		}
		r, err := alice.Append([]byte(doc), "acct-555")
		if err != nil {
			log.Fatal(err)
		}
		if i == 3 {
			leaked = r.JSN
		}
		if i == 4 {
			milestone = r.JSN // a block trade we must keep forever (jsn 5, inside the purge range)
		}
	}

	// --- Occult: hide the leaked payload, keep the digest (Protocol 2).
	if _, err := stack.Occult(&ledgerdb.OccultDescriptor{URI: stack.URI(), JSN: leaked}, regulator); err != nil {
		log.Fatalf("occult: %v", err)
	}
	if _, err := stack.Ledger.GetPayload(leaked); err != nil {
		fmt.Printf("occulted jsn %d: payload retrieval now fails (%v)\n", leaked, errors.Unwrap(err))
	}
	// The occulted journal STILL verifies — the retained hash stands in.
	p, err := stack.Ledger.ProveExistence(leaked, true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ledgerdb.VerifyExistence(p, stack.LSP.Public()); err != nil {
		log.Fatalf("occulted journal no longer verifiable: %v", err)
	}
	fmt.Printf("occulted jsn %d still verifies through its retained digest\n", leaked)

	// Lineage across the occulted entry also still verifies.
	if _, err := alice.VerifyClue("acct-555"); err != nil {
		log.Fatalf("lineage broken by occult: %v", err)
	}
	fmt.Println("clue acct-555 lineage still verifies across the occulted entry")

	// --- Purge: erase obsolete journals [0, 6) behind a pseudo genesis,
	// preserving the milestone trade in the survival stream
	// (Prerequisite 1: DBA + every member owning pre-purge journals).
	desc := &ledgerdb.PurgeDescriptor{
		URI: stack.URI(), Point: 6,
		Survivors:     []uint64{milestone},
		ErasePayloads: true,
	}
	if _, err := stack.Purge(desc, alice); err != nil {
		log.Fatalf("purge: %v", err)
	}
	fmt.Printf("purged journals below %d; base is now %d\n", desc.Point, stack.Ledger.Base())

	// Purged journals are gone; survivors remain readable and bound to
	// the retained digest stream.
	if _, err := stack.Ledger.GetJournal(2); err != nil {
		fmt.Printf("purged jsn 2 correctly unavailable (%T)\n", err)
	}
	survivors, err := stack.Ledger.Survivors()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range survivors {
		want, err := stack.Ledger.TxHash(s.JSN)
		if err != nil || s.TxHash() != want {
			log.Fatal("survivor integrity broken")
		}
		fmt.Printf("survivor jsn %d preserved and digest-verified\n", s.JSN)
	}

	// Journals after the purge point still verify against the live root.
	p2, err := stack.Ledger.ProveExistence(8, true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ledgerdb.VerifyExistence(p2, stack.LSP.Public()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-purge journals verify against the live accumulator")

	// --- The mutated ledger still passes the full audit (Protocols 1+2).
	report, err := stack.Audit()
	if err != nil {
		log.Fatalf("AUDIT FAILED: %v", err)
	}
	fmt.Printf("Dasein-complete audit PASSED with %d purge and %d occult journals\n",
		report.Purges, report.Occults)
}
