// Quickstart: create a ledger, append signed journals, verify existence
// and lineage client-side, anchor a TSA timestamp, and run a full
// Dasein-complete audit — the whole what-when-who loop in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ledgerdb/ledgerdb"
)

func main() {
	// A Stack is a complete local deployment: ledger, LSP and DBA keys,
	// CA + member registry, TSA pool, and T-Ledger time notary.
	stack, err := ledgerdb.NewStack(ledgerdb.StackOptions{URI: "ledger://quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	// Members hold CA-certified keys; their signatures (π_c) ride on
	// every journal and survive as non-repudiation evidence.
	alice := stack.NewMember("alice")

	// Append three journals under one clue (a business lineage label).
	var lastJSN uint64
	for i, doc := range []string{"order created", "order shipped", "order delivered"} {
		receipt, err := alice.Append([]byte(doc), "order-7781")
		if err != nil {
			log.Fatal(err)
		}
		lastJSN = receipt.JSN
		fmt.Printf("appended journal %d (%q), LSP receipt tx-hash %s\n",
			receipt.JSN, doc, receipt.TxHash.Short())
		_ = i
	}

	// what + who: client-side existence verification. The proof carries
	// the record, its fam accumulator path, and the LSP-signed state;
	// everything is re-checked locally.
	rec, payload, err := alice.VerifyExistence(lastJSN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("existence VERIFIED: jsn %d payload %q signer %s\n", rec.JSN, payload, rec.ClientPK)

	// N-lineage: verify the clue's entire history through the CM-Tree.
	lineage, err := alice.VerifyClue("order-7781")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage VERIFIED: clue order-7781 has %d journals, all intact\n", len(lineage))

	// when: anchor the ledger state through the T-Ledger (Protocol 4) and
	// finalize to the TSA (Protocol 3).
	if _, err := stack.AnchorTime(); err != nil {
		log.Fatal(err)
	}
	if err := stack.FinalizeTime(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("time journal anchored and TSA-finalized")

	// The Dasein-complete audit (§V): replay everything, re-verify every
	// signature, digest, block boundary, and time attestation.
	report, err := stack.Audit()
	if err != nil {
		log.Fatalf("AUDIT FAILED: %v", err)
	}
	fmt.Printf("audit PASSED: %d journals, %d blocks, %d time journals, %d signatures checked\n",
		report.JournalsReplayed, report.BlocksVerified, report.TimeJournals, report.SignaturesChecked)
}
