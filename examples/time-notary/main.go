// Time notary: the §III-B attack analysis, live. An adversary who holds
// (and can rewrite) a journal before anchoring gets an unbounded
// backdating window under one-way pegging, but at most 2·Δτ under the
// T-Ledger's two-way pegging — the difference between Figure 5(a) and
// 5(b).
//
//	go run ./examples/time-notary
package main

import (
	"fmt"
	"log"

	"ledgerdb/internal/timepeg"
)

func main() {
	fmt.Println("adversary: create a journal, tamper freely while holding it, anchor late")
	fmt.Println()
	fmt.Println("one-way pegging (ProvenDB-style, Figure 5a):")
	for _, hold := range []int64{10, 1_000, 100_000} {
		out := timepeg.RunOneWayAttack(hold)
		fmt.Printf("  hold %-7d -> tamper window %-7d (no lower bound: can claim ANY past time)\n",
			hold, out.TamperWindow)
	}

	const deltaTau, tolerance = 10, 10
	fmt.Println()
	fmt.Printf("two-way pegging via T-Ledger (Δτ=%d, τ_Δ=%d, Figure 5b):\n", deltaTau, tolerance)
	for _, hold := range []int64{10, 1_000, 100_000} {
		out, err := timepeg.RunTwoWayAttack(hold, deltaTau, tolerance)
		if err != nil {
			log.Fatal(err)
		}
		if !out.Accepted {
			fmt.Printf("  hold %-7d -> submission REJECTED by Protocol 4\n", hold)
			continue
		}
		fmt.Printf("  hold %-7d -> credible claim window (%d, %d] = %d  (bound 2Δτ = %d)\n",
			hold, out.NotBefore, out.NotAfter, out.ClaimWindow, 2*deltaTau)
		if out.ClaimWindow > 2*deltaTau {
			log.Fatal("bound violated — this must never happen")
		}
	}
	fmt.Println()
	fmt.Println("conclusion: the TSA-finalized lower bound advances with time, so holding")
	fmt.Println("a journal longer only pushes its provable window FORWARD — backdating is dead.")
}
