// Package bench holds the repository-level testing.B benchmarks: one
// bench family per table/figure of the paper's evaluation. They exercise
// the same code paths as cmd/bench (via internal/benchkit's workloads)
// but in ns/op form, so `go test -bench=. -benchmem` regenerates the
// per-operation view of every experiment.
//
// Mapping (see DESIGN.md §3):
//
//	BenchmarkFig5_*   — timestamp attack simulations (§III-B, Fig. 5)
//	BenchmarkFig7_*   — Dasein breakdown components (Fig. 7)
//	BenchmarkFig8a_*  — Append throughput, tim vs fam-δ (Fig. 8a)
//	BenchmarkFig8b_*  — GetProof throughput (Fig. 8b)
//	BenchmarkFig9a_*  — clue verify, CM-Tree vs ccMPT vs ledger size (Fig. 9a)
//	BenchmarkFig9b_*  — clue verify latency vs entries (Fig. 9b)
//	BenchmarkFig10*_* — application-level vs Fabric (Fig. 10)
//	BenchmarkTable2_* — end-to-end vs QLDB-sim (Table II)
package bench

import (
	"fmt"
	"sync"
	"testing"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/baseline/fabricsim"
	"ledgerdb/internal/baseline/qldbsim"
	"ledgerdb/internal/benchkit"
	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/merkle/accumulator"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/timepeg"
	"ledgerdb/internal/tsa"
)

// ---------------------------------------------------------------- Fig 5

func BenchmarkFig5_OneWayAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := timepeg.RunOneWayAttack(1000)
		if out.TamperWindow < 1000 {
			b.Fatal("window too small")
		}
	}
}

func BenchmarkFig5_TwoWayAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := timepeg.RunTwoWayAttack(100, 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		if out.Accepted && out.ClaimWindow > 20 {
			b.Fatal("bound violated")
		}
	}
}

// ---------------------------------------------------------------- Fig 7

// fig7Ledger builds a 1000-journal ledger once per configuration.
func fig7Ledger(b *testing.B, payloadSize, signers int) (*benchkit.TestLedger, []uint64) {
	b.Helper()
	tl, err := benchkit.NewTestLedger("ledger://bench7", 10, 128)
	if err != nil {
		b.Fatal(err)
	}
	co := make([]*sig.KeyPair, signers-1)
	for i := range co {
		co[i] = sig.GenerateDeterministic(fmt.Sprintf("bench7/co/%d", i))
	}
	var jsns []uint64
	for i := 0; i < 1000; i++ {
		req, err := tl.Request(benchkit.Payload("bench7", i, payloadSize), nil, co)
		if err != nil {
			b.Fatal(err)
		}
		r, err := tl.L.Append(req)
		if err != nil {
			b.Fatal(err)
		}
		jsns = append(jsns, r.JSN)
	}
	return tl, jsns
}

func BenchmarkFig7_What(b *testing.B) {
	for _, size := range []int{256, 4 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("payload=%dB", size), func(b *testing.B) {
			tl, jsns := fig7Ledger(b, size, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jsn := jsns[i%len(jsns)]
				p, err := tl.L.ProveExistence(jsn, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ledger.VerifyExistence(p, tl.LSP.Public()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig7_Who(b *testing.B) {
	for _, signers := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("sig=%d", signers), func(b *testing.B) {
			tl, jsns := fig7Ledger(b, 256, signers)
			recs := make([]*journal.Record, len(jsns))
			for i, jsn := range jsns {
				rec, err := tl.L.GetJournal(jsn)
				if err != nil {
					b.Fatal(err)
				}
				recs[i] = rec
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := journal.VerifyRecordSigs(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Fig 8

func BenchmarkFig8a_Append(b *testing.B) {
	models := []struct {
		name string
		run  func(leaves []hashutil.Digest)
	}{
		{"tim", func(leaves []hashutil.Digest) {
			acc := accumulator.New()
			for _, d := range leaves {
				acc.Append(d)
				if _, err := acc.Root(); err != nil {
					panic(err)
				}
			}
		}},
	}
	for _, h := range []uint8{5, 10, 15, 20} {
		h := h
		models = append(models, struct {
			name string
			run  func(leaves []hashutil.Digest)
		}{fmt.Sprintf("fam-%d", h), func(leaves []hashutil.Digest) {
			t := fam.MustNew(h)
			for _, d := range leaves {
				t.Append(d)
				if _, err := t.Root(); err != nil {
					panic(err)
				}
			}
		}})
	}
	const n = 1 << 15
	leaves := benchkit.Digests("bench8a", n)
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			b.ReportMetric(float64(n), "journals/op")
			for i := 0; i < b.N; i++ {
				m.run(leaves)
			}
		})
	}
}

func BenchmarkFig8b_GetProof(b *testing.B) {
	const n = 1 << 15
	leaves := benchkit.Digests("bench8b", n)

	b.Run("tim", func(b *testing.B) {
		acc := accumulator.New()
		for _, d := range leaves {
			acc.Append(d)
		}
		root, _ := acc.Root()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := uint64(i*7919) % n
			p, err := acc.Prove(idx)
			if err != nil {
				b.Fatal(err)
			}
			if err := accumulator.Verify(leaves[idx], p, root); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, h := range []uint8{5, 10, 15} {
		h := h
		b.Run(fmt.Sprintf("fam-%d", h), func(b *testing.B) {
			tree := fam.MustNew(h)
			for _, d := range leaves {
				tree.Append(d)
			}
			anchor := tree.AnchorNow()
			root, _ := tree.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := uint64(i*7919) % n
				p, err := tree.ProveAnchored(idx, anchor)
				if err != nil {
					b.Fatal(err)
				}
				if err := fam.VerifyAnchored(leaves[idx], p, anchor, root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- Fig 9

func fig9Structures(b *testing.B, background, entries int) (*cmtree.Tree, *accumulator.Accumulator, *cmtree.CCMPT, []hashutil.Digest) {
	b.Helper()
	cm := cmtree.New()
	acc := accumulator.New()
	cc := cmtree.NewCCMPT(acc)
	jsn := uint64(0)
	for i := 0; i < background; i++ {
		clue := fmt.Sprintf("bg-%06d", i)
		d := hashutil.Leaf([]byte(clue))
		cm.Insert(clue, jsn, d)
		acc.Append(d)
		cc.Insert(clue, jsn)
		jsn++
	}
	digests := make([]hashutil.Digest, entries)
	for v := 0; v < entries; v++ {
		d := hashutil.Leaf([]byte(fmt.Sprintf("target/%d", v)))
		digests[v] = d
		cm.Insert("target", jsn, d)
		acc.Append(d)
		cc.Insert("target", jsn)
		jsn++
	}
	return cm, acc, cc, digests
}

func BenchmarkFig9a_ClueVerify(b *testing.B) {
	for _, background := range []int{1 << 10, 1 << 14} {
		cm, acc, cc, digests := fig9Structures(b, background, 50)
		b.Run(fmt.Sprintf("CM-Tree/ledger=%d", background), func(b *testing.B) {
			snap := cm.Snapshot()
			root := snap.RootHash()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := snap.ProveClue("target", 0, uint64(len(digests)))
				if err != nil {
					b.Fatal(err)
				}
				if err := cmtree.VerifyClue(root, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ccMPT/ledger=%d", background), func(b *testing.B) {
			ccRoot := cc.RootHash()
			ledgerRoot, _ := acc.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := cc.ProveClue("target")
				if err != nil {
					b.Fatal(err)
				}
				if err := cmtree.VerifyCCMPT(ccRoot, ledgerRoot, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9b_ClueVerifyByEntries(b *testing.B) {
	for _, m := range []int{10, 100, 1000} {
		cm, acc, cc, digests := fig9Structures(b, 1<<14, m)
		b.Run(fmt.Sprintf("CM-Tree/entries=%d", m), func(b *testing.B) {
			snap := cm.Snapshot()
			root := snap.RootHash()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := snap.ProveClue("target", 0, uint64(m))
				if err != nil {
					b.Fatal(err)
				}
				if err := cmtree.VerifyClue(root, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ccMPT/entries=%d", m), func(b *testing.B) {
			ccRoot := cc.RootHash()
			ledgerRoot, _ := acc.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := cc.ProveClue("target")
				if err != nil {
					b.Fatal(err)
				}
				if err := cmtree.VerifyCCMPT(ccRoot, ledgerRoot, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------------- Fig 10

func BenchmarkFig10a_NotarizationAppend(b *testing.B) {
	b.Run("LedgerDB", func(b *testing.B) {
		tl, err := benchkit.NewTestLedger("ledger://bench10a", 15, 128)
		if err != nil {
			b.Fatal(err)
		}
		payload := benchkit.Payload("b10a", 0, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tl.Append(payload, fmt.Sprintf("doc-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fabric", func(b *testing.B) {
		fab := fabricsim.New(fabricsim.Config{})
		payload := benchkit.Payload("b10a", 0, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fab.Submit(fmt.Sprintf("doc-%d", i), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig10b_NotarizationVerify(b *testing.B) {
	const docs = 512
	b.Run("LedgerDB", func(b *testing.B) {
		tl, err := benchkit.NewTestLedger("ledger://bench10b", 15, 128)
		if err != nil {
			b.Fatal(err)
		}
		var jsns []uint64
		for i := 0; i < docs; i++ {
			r, err := tl.Append(benchkit.Payload("b10b", i, 4<<10), fmt.Sprintf("doc-%d", i))
			if err != nil {
				b.Fatal(err)
			}
			jsns = append(jsns, r.JSN)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := tl.L.ProveExistence(jsns[i%docs], true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ledger.VerifyExistence(p, tl.LSP.Public()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fabric", func(b *testing.B) {
		fab := fabricsim.New(fabricsim.Config{})
		for i := 0; i < docs; i++ {
			if _, err := fab.Submit(fmt.Sprintf("doc-%d", i), benchkit.Payload("b10b", i, 4<<10)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fab.GetState(fmt.Sprintf("doc-%d", i%docs)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig10cd_LineageVerify(b *testing.B) {
	for _, m := range []int{5, 50, 100} {
		b.Run(fmt.Sprintf("LedgerDB/entries=%d", m), func(b *testing.B) {
			tl, err := benchkit.NewTestLedger("ledger://bench10c", 15, 128)
			if err != nil {
				b.Fatal(err)
			}
			for v := 0; v < m; v++ {
				if _, err := tl.Append(benchkit.Payload("asset", v, 1024), "asset"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bundle, err := tl.L.ProveClue("asset", 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ledger.VerifyClue(bundle, tl.LSP.Public()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Fabric/entries=%d", m), func(b *testing.B) {
			fab := fabricsim.New(fabricsim.Config{})
			for v := 0; v < m; v++ {
				if _, err := fab.Submit("asset", benchkit.Payload("asset", v, 1024)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fab.VerifyHistory("asset"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------- batched write path

// BenchmarkAppendSingleVsBatch shows the mechanism behind the paper's
// high write throughput (§II-C: "exceeding 300,000 TPS"): batching
// amortizes the LSP receipt signature and parallelizes π_c verification
// across CPUs.
func BenchmarkAppendSingleVsBatch(b *testing.B) {
	const batchSize = 256
	mkReqs := func(tl *benchkit.TestLedger, n int) []*journal.Request {
		reqs := make([]*journal.Request, n)
		for i := range reqs {
			req, err := tl.Request(benchkit.Payload("b", i, 256), nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			reqs[i] = req
		}
		return reqs
	}
	b.Run("single", func(b *testing.B) {
		tl, err := benchkit.NewTestLedger("ledger://single", 15, 1024)
		if err != nil {
			b.Fatal(err)
		}
		reqs := mkReqs(tl, batchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tl.L.Append(reqs[i%batchSize]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		tl, err := benchkit.NewTestLedger("ledger://batched", 15, 1024)
		if err != nil {
			b.Fatal(err)
		}
		reqs := mkReqs(tl, batchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i += batchSize {
			if _, _, err := tl.L.AppendBatch(reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------- staged commit pipeline

// benchParallelAppend drives par goroutines of pre-signed appends at
// one engine. depth 0 is the serial path (every append fully under the
// global lock); depth > 0 enables the staged commit pipeline, where
// admission (π_c verification, hashing, blob writes) and receipt
// signing run concurrently and index updates group-commit.
func benchParallelAppend(b *testing.B, depth, par int) {
	b.Helper()
	var (
		tl  *benchkit.TestLedger
		err error
	)
	if depth > 0 {
		tl, err = benchkit.NewTestLedgerPipelined("ledger://pipe-bench", 15, 1024, depth)
	} else {
		tl, err = benchkit.NewTestLedger("ledger://pipe-bench", 15, 1024)
	}
	if err != nil {
		b.Fatal(err)
	}
	const pool = 512
	reqs := make([]*journal.Request, pool)
	for i := range reqs {
		req, err := tl.Request(benchkit.Payload("pp", i, 256), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = req
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		n := b.N / par
		if w < b.N%par {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for k := 0; k < n; k++ {
				if _, err := tl.L.Append(reqs[(w*131+k)%pool]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	if err := tl.L.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAppendSerialVsPipelined compares the serial write path
// against the staged commit pipeline at client parallelism 1/4/16
// (EXPERIMENTS.md records the measured ratios next to Fig. 7).
func BenchmarkAppendSerialVsPipelined(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("serial/par=%d", par), func(b *testing.B) {
			benchParallelAppend(b, 0, par)
		})
		b.Run(fmt.Sprintf("pipelined/par=%d", par), func(b *testing.B) {
			benchParallelAppend(b, 256, par)
		})
	}
}

// ------------------------------------------------------------ §V audit

// BenchmarkAudit measures the Dasein-complete audit's replay rate
// (journals per op over a 500-journal ledger with clues and time
// journals) — the cost an external auditor pays.
func BenchmarkAudit(b *testing.B) {
	tl, err := benchkit.NewTestLedger("ledger://benchaudit", 10, 64)
	if err != nil {
		b.Fatal(err)
	}
	clock := int64(0)
	authority := tsa.New("bench-audit", tsa.Options{Clock: func() int64 { clock++; return clock }})
	for i := 0; i < 500; i++ {
		if _, err := tl.Append(benchkit.Payload("a", i, 256), fmt.Sprintf("clue-%d", i%5)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%100 == 0 {
			if _, err := tl.L.AnchorTimeWith(authority.Stamp); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := audit.Config{
		LSP:        tl.LSP.Public(),
		DBA:        tl.DBA.Public(),
		TrustedTSA: []sig.PublicKey{authority.Public()},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := audit.Audit(tl.L, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TimeJournals != 5 {
			b.Fatal("unexpected report")
		}
	}
	b.ReportMetric(float64(tl.L.Size()), "journals/op")
}

// -------------------------------------------------- concurrency ablation

// BenchmarkParallelGetProof measures anchored existence verification
// under concurrent readers — the lock-free-read claim of the engine
// design (appends serialize; proofs scale with cores).
func BenchmarkParallelGetProof(b *testing.B) {
	tl, err := benchkit.NewTestLedger("ledger://par", 10, 128)
	if err != nil {
		b.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tl.Append(benchkit.Payload("par", i, 256)); err != nil {
			b.Fatal(err)
		}
	}
	lsp := tl.LSP.Public()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			p, err := tl.L.ProveExistence(uint64(1+i%n), false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ledger.VerifyExistence(p, lsp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// -------------------------------------------------------------- Table 2

func BenchmarkTable2_Notarization(b *testing.B) {
	b.Run("LedgerDB/verify", func(b *testing.B) {
		tl, err := benchkit.NewTestLedger("ledger://bencht2", 15, 128)
		if err != nil {
			b.Fatal(err)
		}
		doc := benchkit.Payload("t2", 0, 32<<10)
		r, err := tl.Append(doc, "doc-0")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := tl.L.ProveExistence(r.JSN, true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ledger.VerifyExistence(p, tl.LSP.Public()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QLDBsim/verify", func(b *testing.B) {
		q := qldbsim.New(0) // structural cost only; cmd/bench table2 adds RTT
		doc := benchkit.Payload("t2", 0, 32<<10)
		for i := 0; i < 512; i++ {
			if _, err := q.Insert(fmt.Sprintf("doc-%d", i), doc); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := q.VerifyDocument(fmt.Sprintf("doc-%d", i%512)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable2_Lineage(b *testing.B) {
	for _, versions := range []int{5, 100} {
		b.Run(fmt.Sprintf("LedgerDB/versions=%d", versions), func(b *testing.B) {
			tl, err := benchkit.NewTestLedger("ledger://bencht2l", 15, 128)
			if err != nil {
				b.Fatal(err)
			}
			for v := 0; v < versions; v++ {
				if _, err := tl.Append(benchkit.Payload("k", v, 1024), "k"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bundle, err := tl.L.ProveClue("k", 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ledger.VerifyClue(bundle, tl.LSP.Public()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("QLDBsim/versions=%d", versions), func(b *testing.B) {
			q := qldbsim.New(0)
			for v := 0; v < versions; v++ {
				if _, err := q.Insert("k", benchkit.Payload("k", v, 1024)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.VerifyLineage("k"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
