package audit

import (
	"sync"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
)

// This file is the fan-out stage of the audit. The replay in Audit is
// inherently sequential — the shadow fam and CM-Tree must grow in jsn
// order — but everything feeding it is not: reading a record, decoding
// it, recomputing its tx-hash, re-verifying its π_c/co-signatures, and
// fetching its payload touch only that one journal. A worker pool
// computes those per-journal results over jsn ranges and the merge
// consumes them strictly in jsn order, so the sequential rebuild (and
// every check's position in the failure order) is untouched.

// auditChunk is the jsn range each worker claims at a time: large
// enough to amortize channel traffic, small enough that the bounded
// lookahead keeps memory flat on huge ledgers.
const auditChunk = 64

// liveItem carries the precomputed per-journal results for one jsn in
// the live (unpurged) range. The merge applies them in exactly the
// order the serial replay would have computed them, so eager
// evaluation here never changes which error surfaces.
type liveItem struct {
	rec    *journal.Record
	recErr error

	tx      hashutil.Digest // recomputed from the record
	want    hashutil.Digest // from the digest stream
	wantErr error

	sigErr error // π_c and co-signature re-verification

	payloadWanted bool // CheckPayloads applies to this record
	payload       []byte
	payloadErr    error
}

// fetchItem computes every independent per-journal result for jsn.
func fetchItem(l *ledger.Ledger, jsn uint64, cfg Config) liveItem {
	var it liveItem
	it.rec, it.recErr = l.GetJournal(jsn)
	if it.recErr != nil {
		return it
	}
	it.tx = it.rec.TxHash()
	it.want, it.wantErr = l.TxHash(jsn)
	it.sigErr = journal.VerifyRecordSigs(it.rec)
	if cfg.CheckPayloads && it.rec.Type == journal.TypeNormal && !it.rec.Occulted {
		it.payloadWanted = true
		it.payload, it.payloadErr = l.GetPayload(jsn)
	}
	return it
}

// itemSource yields the live-range replay items in jsn order. stop
// releases any prefetch machinery; it must be safe to call after the
// source is exhausted and more than once.
type itemSource interface {
	next(jsn uint64) liveItem
	stop()
}

// newItemSource picks the replay mode: inline computation for
// Workers <= 1 (the deterministic serial path), a prefetching worker
// pool otherwise.
func newItemSource(l *ledger.Ledger, base, size uint64, cfg Config) itemSource {
	if cfg.Workers > 1 && size > base {
		return newParallelSource(l, base, size, cfg)
	}
	return &serialSource{l: l, cfg: cfg}
}

// serialSource computes each item on demand, on the caller's
// goroutine.
type serialSource struct {
	l   *ledger.Ledger
	cfg Config
}

func (s *serialSource) next(jsn uint64) liveItem { return fetchItem(s.l, jsn, s.cfg) }
func (s *serialSource) stop()                    {}

// auditChunkJob is one contiguous jsn range claimed by a worker. done
// closes when items is fully populated.
type auditChunkJob struct {
	first uint64
	items []liveItem
	done  chan struct{}
}

// parallelSource prefetches items with cfg.Workers goroutines. A
// producer cuts [base, size) into chunks and feeds them, in order, to
// both the ordered merge queue and the worker job queue; the queues'
// capacity bounds the lookahead, so at most a few chunks of records
// and payloads are resident beyond the merge cursor. Closing stopC
// (early merge exit: first error, temporal bound) unblocks the
// producer and lets the workers drain without leaking.
type parallelSource struct {
	order chan *auditChunkJob
	stopC chan struct{}
	once  sync.Once

	cur *auditChunkJob
	idx int
}

func newParallelSource(l *ledger.Ledger, base, size uint64, cfg Config) *parallelSource {
	lookahead := cfg.Workers * 2
	s := &parallelSource{
		order: make(chan *auditChunkJob, lookahead),
		stopC: make(chan struct{}),
	}
	jobs := make(chan *auditChunkJob, lookahead)
	go func() {
		defer close(s.order)
		defer close(jobs)
		for first := base; first < size; first += auditChunk {
			n := uint64(auditChunk)
			if first+n > size {
				n = size - first
			}
			c := &auditChunkJob{first: first, items: make([]liveItem, n), done: make(chan struct{})}
			select {
			case s.order <- c:
			case <-s.stopC:
				return
			}
			select {
			case jobs <- c:
			case <-s.stopC:
				return
			}
		}
	}()
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for c := range jobs {
				select {
				case <-s.stopC:
					// The merge already returned; skip the work but
					// still mark the chunk complete.
					close(c.done)
					continue
				default:
				}
				for i := range c.items {
					c.items[i] = fetchItem(l, c.first+uint64(i), cfg)
				}
				close(c.done)
			}
		}()
	}
	return s
}

func (s *parallelSource) next(jsn uint64) liveItem {
	if s.cur == nil || s.idx >= len(s.cur.items) {
		c, ok := <-s.order
		if !ok {
			// Unreachable by construction: the merge never asks for
			// more jsns than the producer cut into chunks.
			return liveItem{recErr: ledger.ErrNotFound}
		}
		<-c.done
		s.cur, s.idx = c, 0
	}
	it := s.cur.items[s.idx]
	s.idx++
	return it
}

func (s *parallelSource) stop() { s.once.Do(func() { close(s.stopC) }) }
