package audit

import (
	"fmt"
	"reflect"
	"testing"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/sig"
)

// auditScenario builds a ledger (possibly tampered) plus the audit
// inputs; the parity test then runs the identical audit serially and
// with a worker pool and demands byte-identical outcomes.
type auditScenario struct {
	name  string
	build func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config)
}

func parityScenarios() []auditScenario {
	return []auditScenario{
		{
			// Several blocks, clues, time journals, payload and clue-root
			// checks on: the full happy path.
			name: "clean",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				var latest *journal.Receipt
				for w := 0; w < 3; w++ {
					for i := 0; i < 7; i++ {
						latest = e.append(t, fmt.Sprintf("doc-%d-%d", w, i), fmt.Sprintf("K%d", i%2))
					}
					e.clock.Advance(100)
					e.anchor(t)
				}
				cfg := e.auditCfg()
				cfg.CheckPayloads = true
				cfg.CheckClueRoots = true
				return e.l, latest, cfg
			},
		},
		{
			// More journals than several worker chunks, so the chunk
			// pipeline cycles.
			name: "many-chunks",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				var latest *journal.Receipt
				for i := 0; i < 3*auditChunk+5; i++ {
					latest = e.append(t, fmt.Sprintf("doc-%d", i))
				}
				return e.l, latest, e.auditCfg()
			},
		},
		{
			// Occult + purge with correct prerequisites, then a time
			// anchor: the mutated-but-honest ledger.
			name: "mutated",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				for i := 0; i < 10; i++ {
					e.append(t, fmt.Sprintf("doc-%d", i), "K")
				}
				odesc := &ledger.OccultDescriptor{URI: "ledger://audit", JSN: 4}
				oms := sig.NewMultiSig(odesc.Digest())
				if err := oms.SignWith(e.dba); err != nil {
					t.Fatal(err)
				}
				if _, err := e.l.Occult(odesc, oms); err != nil {
					t.Fatal(err)
				}
				pdesc := &ledger.PurgeDescriptor{URI: "ledger://audit", Point: 3, ErasePayloads: true}
				pms := sig.NewMultiSig(pdesc.Digest())
				for _, kp := range []*sig.KeyPair{e.dba, e.client} {
					if err := pms.SignWith(kp); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := e.l.Purge(pdesc, pms); err != nil {
					t.Fatal(err)
				}
				e.clock.Advance(50)
				e.anchor(t)
				latest := e.append(t, "after-everything")
				return e.l, latest, e.auditCfg()
			},
		},
		{
			name: "untrusted-tsa",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				e.append(t, "doc")
				e.anchor(t)
				cfg := e.auditCfg()
				cfg.TrustedTSA = nil
				return e.l, nil, cfg
			},
		},
		{
			name: "lsp-repudiation",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				r := e.append(t, "the committed payload")
				forged := *r
				forged.TxHash = r.RequestHash
				if err := forged.Sign(e.lsp); err != nil {
					t.Fatal(err)
				}
				return e.l, &forged, e.auditCfg()
			},
		},
		{
			name: "temporal-bound",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				for i := 0; i < 2*auditChunk; i++ {
					e.append(t, fmt.Sprintf("early-%d", i))
				}
				cutoff := e.clock.Now()
				e.clock.Advance(1000)
				for i := 0; i < auditChunk; i++ {
					e.append(t, fmt.Sprintf("late-%d", i))
				}
				cfg := e.auditCfg()
				cfg.Before = cutoff
				return e.l, nil, cfg
			},
		},
		{
			name: "missing-regulator",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				e.append(t, "pii")
				desc := &ledger.OccultDescriptor{URI: "ledger://audit", JSN: 1}
				ms := sig.NewMultiSig(desc.Digest())
				if err := ms.SignWith(e.dba); err != nil {
					t.Fatal(err)
				}
				if _, err := e.l.Occult(desc, ms); err != nil {
					t.Fatal(err)
				}
				auth := ca.NewTestAuthority("root")
				cfg := e.auditCfg()
				cfg.Registry = ca.NewRegistry(auth.Public())
				return e.l, nil, cfg
			},
		},
		{
			// A payload blob vanished from the store: CheckPayloads must
			// report the exact journal, serial and parallel alike.
			name: "missing-payload",
			build: func(t *testing.T) (*ledger.Ledger, *journal.Receipt, Config) {
				e := newEnv(t)
				for i := 0; i < 6; i++ {
					e.append(t, fmt.Sprintf("doc-%d", i))
				}
				if err := e.cfg.Blobs.Delete(hashutil.Sum([]byte("doc-3"))); err != nil {
					t.Fatal(err)
				}
				cfg := e.auditCfg()
				cfg.CheckPayloads = true
				return e.l, nil, cfg
			},
		},
	}
}

// TestAuditParallelMatchesSerial is the fan-out contract: for every
// scenario — clean, mutated, and each tamper case — the worker-pool
// audit must produce the identical Report and the identical error
// string as the serial replay.
func TestAuditParallelMatchesSerial(t *testing.T) {
	for _, sc := range parityScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			l, latest, cfg := sc.build(t)
			serialRep, serialErr := Audit(l, latest, cfg)
			for _, workers := range []int{2, 4} {
				pcfg := cfg
				pcfg.Workers = workers
				rep, err := Audit(l, latest, pcfg)
				if (err == nil) != (serialErr == nil) {
					t.Fatalf("workers=%d: err = %v, serial err = %v", workers, err, serialErr)
				}
				if err != nil {
					if err.Error() != serialErr.Error() {
						t.Fatalf("workers=%d:\n parallel: %v\n serial:   %v", workers, err, serialErr)
					}
					continue
				}
				if !reflect.DeepEqual(rep, serialRep) {
					t.Fatalf("workers=%d:\n parallel: %+v\n serial:   %+v", workers, rep, serialRep)
				}
			}
		})
	}
}

// TestAuditParallelRepeatable runs the same parallel audit several
// times: the chunk pipeline must not introduce any run-to-run
// nondeterminism.
func TestAuditParallelRepeatable(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 2*auditChunk+7; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	cfg := e.auditCfg()
	cfg.Workers = 4
	first, err := Audit(e.l, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rep, err := Audit(e.l, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, first) {
			t.Fatalf("run %d: %+v != %+v", i, rep, first)
		}
	}
}
