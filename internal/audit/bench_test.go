package audit

import (
	"fmt"
	"testing"
)

// BenchmarkAudit measures the Dasein-complete replay, serial vs
// worker-pool. The per-journal cost is dominated by π_c re-verification
// (one signature check per record), which the workers absorb; the
// sequential merge only folds precomputed digests into the shadow
// trees.
func BenchmarkAudit(b *testing.B) {
	e := newEnv(b)
	for i := 0; i < 512; i++ {
		e.append(b, fmt.Sprintf("bench-doc-%04d", i), fmt.Sprintf("K%d", i%8))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := e.auditCfg()
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Audit(e.l, nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
