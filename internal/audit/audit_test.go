package audit

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tsa"
)

// env wires a full auditable stack: ledger + TSA + keys.
type env struct {
	l      *ledger.Ledger
	lsp    *sig.KeyPair
	dba    *sig.KeyPair
	client *sig.KeyPair
	tsa    *tsa.Authority
	clock  *logicalclock.Clock
	cfg    ledger.Config
	nonce  uint64
}

func newEnv(t testing.TB) *env {
	t.Helper()
	e := &env{
		lsp:    sig.GenerateDeterministic("lsp"),
		dba:    sig.GenerateDeterministic("dba"),
		client: sig.GenerateDeterministic("client"),
		clock:  logicalclock.New(10_000),
	}
	e.tsa = tsa.New("audit-tsa", tsa.Options{Clock: e.clock.Now})
	e.cfg = ledger.Config{
		URI:           "ledger://audit",
		FractalHeight: 3,
		BlockSize:     4,
		LSP:           e.lsp,
		DBA:           e.dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         e.clock.Tick,
	}
	l, err := ledger.Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.l = l
	return e
}

func (e *env) append(t testing.TB, payload string, clues ...string) *journal.Receipt {
	t.Helper()
	e.nonce++
	req := &journal.Request{
		LedgerURI: "ledger://audit",
		Type:      journal.TypeNormal,
		Clues:     clues,
		Payload:   []byte(payload),
		Nonce:     e.nonce,
	}
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	r, err := e.l.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (e *env) anchor(t testing.TB) *journal.Receipt {
	t.Helper()
	r, err := e.l.AnchorTimeWith(e.tsa.Stamp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (e *env) auditCfg() Config {
	return Config{
		LSP:        e.lsp.Public(),
		DBA:        e.dba.Public(),
		TrustedTSA: []sig.PublicKey{e.tsa.Public()},
	}
}

func TestFullAuditPasses(t *testing.T) {
	e := newEnv(t)
	var latest *journal.Receipt
	for w := 0; w < 3; w++ {
		for i := 0; i < 7; i++ {
			latest = e.append(t, fmt.Sprintf("doc-%d-%d", w, i), "K")
		}
		e.clock.Advance(100)
		e.anchor(t)
	}
	rep, err := Audit(e.l, latest, e.auditCfg())
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if rep.TimeJournals != 3 {
		t.Fatalf("time journals = %d", rep.TimeJournals)
	}
	if rep.JournalsReplayed != e.l.Size() {
		t.Fatalf("replayed %d of %d", rep.JournalsReplayed, e.l.Size())
	}
	if rep.BlocksVerified == 0 {
		t.Fatal("no blocks verified")
	}
	if rep.SignaturesChecked < int(e.l.Size()) {
		t.Fatalf("signatures checked = %d", rep.SignaturesChecked)
	}
}

func TestAuditWithPayloadChecks(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	cfg := e.auditCfg()
	cfg.CheckPayloads = true
	if _, err := Audit(e.l, nil, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAuditWithClueRootChecks(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 13; i++ { // crosses several 4-journal blocks
		e.append(t, fmt.Sprintf("doc-%d", i), fmt.Sprintf("clue-%d", i%3))
	}
	cfg := e.auditCfg()
	cfg.CheckClueRoots = true
	rep, err := Audit(e.l, nil, cfg)
	if err != nil {
		t.Fatalf("Audit with clue roots: %v", err)
	}
	if rep.BlocksVerified == 0 {
		t.Fatal("no blocks verified")
	}
}

func TestAuditDetectsUntrustedTSA(t *testing.T) {
	e := newEnv(t)
	e.append(t, "doc")
	e.anchor(t)
	cfg := e.auditCfg()
	cfg.TrustedTSA = nil
	if _, err := Audit(e.l, nil, cfg); !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("err = %v, want ErrAuditFailed", err)
	}
}

func TestAuditDetectsLSPRepudiation(t *testing.T) {
	// The LSP hands the client a receipt, then presents a ledger in
	// which that journal differs: threat-B caught by step 5.
	e := newEnv(t)
	r := e.append(t, "the committed payload")
	forged := *r
	forged.TxHash = r.RequestHash // any digest other than the real tx-hash
	if err := forged.Sign(e.lsp); err != nil {
		t.Fatal(err)
	}
	_, err := Audit(e.l, &forged, e.auditCfg())
	if !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("err = %v, want ErrAuditFailed", err)
	}
}

func TestAuditAcceptsMutatedLedger(t *testing.T) {
	// Purge and occult with correct prerequisites must audit clean.
	e := newEnv(t)
	for i := 0; i < 10; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	// Occult journal 4.
	odesc := &ledger.OccultDescriptor{URI: "ledger://audit", JSN: 4}
	oms := sig.NewMultiSig(odesc.Digest())
	if err := oms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	if _, err := e.l.Occult(odesc, oms); err != nil {
		t.Fatal(err)
	}
	// Purge journals below 3.
	pdesc := &ledger.PurgeDescriptor{URI: "ledger://audit", Point: 3, ErasePayloads: true}
	pms := sig.NewMultiSig(pdesc.Digest())
	for _, kp := range []*sig.KeyPair{e.dba, e.client} {
		if err := pms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.l.Purge(pdesc, pms); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(50)
	e.anchor(t)
	latest := e.append(t, "after-everything")

	rep, err := Audit(e.l, latest, e.auditCfg())
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if rep.Purges != 1 || rep.Occults != 1 || rep.TimeJournals != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestAuditDetectsForgedOccult(t *testing.T) {
	// An occult journal whose multisig lacks the DBA must fail Π₂.
	e := newEnv(t)
	e.append(t, "doc")
	// Bypass the engine's checks by writing an occult journal through a
	// ledger configured with a different DBA, then auditing with the
	// real DBA expectation.
	otherDBA := sig.GenerateDeterministic("other-dba")
	e2cfg := e.cfg
	e2cfg.DBA = otherDBA.Public()
	e2cfg.Store = streamfs.NewMemory()
	e2cfg.Blobs = streamfs.NewMemoryBlobs()
	l2, err := ledger.Open(e2cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := &journal.Request{LedgerURI: "ledger://audit", Type: journal.TypeNormal, Payload: []byte("doc"), Nonce: 1}
	req.Sign(e.client)
	r, err := l2.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	desc := &ledger.OccultDescriptor{URI: "ledger://audit", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(otherDBA)
	if _, err := l2.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	cfg := e.auditCfg() // expects e.dba, not otherDBA
	if _, err := Audit(l2, nil, cfg); !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("err = %v, want ErrAuditFailed", err)
	}
}

func TestAuditTemporalPredicate(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("early-%d", i))
	}
	cutoff := e.clock.Now()
	e.clock.Advance(1000)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("late-%d", i))
	}
	cfg := e.auditCfg()
	cfg.Before = cutoff
	rep, err := Audit(e.l, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JournalsReplayed != 6 { // genesis + 5 early
		t.Fatalf("replayed %d, want 6", rep.JournalsReplayed)
	}
}

func TestAuditRequiresLSPKey(t *testing.T) {
	e := newEnv(t)
	if _, err := Audit(e.l, nil, Config{}); !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("err = %v", err)
	}
}

func TestAuditWithRegistryEnforcesRegulator(t *testing.T) {
	e := newEnv(t)
	e.append(t, "pii")
	desc := &ledger.OccultDescriptor{URI: "ledger://audit", JSN: 1}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba) // DBA only — no regulator
	if _, err := e.l.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	auth := ca.NewTestAuthority("root")
	reg := ca.NewRegistry(auth.Public())
	cfg := e.auditCfg()
	cfg.Registry = reg // auditor demands a certified regulator signature
	if _, err := Audit(e.l, nil, cfg); !errors.Is(err, ErrAuditFailed) {
		t.Fatalf("err = %v, want ErrAuditFailed", err)
	}
}
