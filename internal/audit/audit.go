// Package audit implements the Dasein-complete audit of §V: the
// external-auditor procedure that verifies all three Dasein factors —
// what (every journal digest folds into every block commitment), when
// (TSA-endorsed time journals partition the ledger into bounded temporal
// ranges), and who (every signature from clients, LSP, TSA, and mutation
// signers re-verifies) — over the entire ledger, in one sequential replay.
//
// The procedure follows the paper's six steps: (1) prove all purge and
// occult journals' multi-signature prerequisites, (2) locate and verify
// the time journals and partition blocks into ranges, (3) replay each
// range verifying journal integrity and signatures, (4) verify digest
// consistency across adjacent block boundaries, (5) verify the LSP's
// latest receipt, and (6) conjoin: any sub-proof failure terminates the
// audit with a failed status.
package audit

import (
	"errors"
	"fmt"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
)

// ErrAuditFailed wraps every audit failure.
var ErrAuditFailed = errors.New("audit: failed")

// Config identifies the trusted parties for an audit.
type Config struct {
	// LSP is the ledger service provider's key (receipts, states).
	LSP sig.PublicKey
	// DBA must co-sign every mutation (Prerequisites 1 and 2).
	DBA sig.PublicKey
	// TrustedTSA lists the time authorities accepted for when proofs
	// (Prerequisite 3); a T-Ledger notary key belongs here too.
	TrustedTSA []sig.PublicKey
	// Registry, when set, enforces role checks (regulator for occults).
	Registry *ca.Registry
	// Before, when nonzero, restricts the audit to journals committed at
	// or before this timestamp (the temporal predicate of §V).
	Before int64
	// CheckPayloads additionally fetches every non-occulted payload and
	// matches it against the recorded digest. Slower; off by default.
	CheckPayloads bool
	// CheckClueRoots additionally rebuilds a shadow CM-Tree during the
	// replay and compares its root against every block header's
	// ClueRoot. Only possible on unpurged ledgers (purged clue entries
	// cannot be re-derived from records); ignored when a purge is
	// present.
	CheckClueRoots bool
	// Workers fans out the per-journal replay work — record fetch,
	// decode, tx-hash recompute, π_c/π_s signature checks, payload
	// fetch — over this many goroutines (parallel.go), merged back in
	// jsn order into the sequential shadow rebuild so the report and
	// every failure mode match the serial replay. Values <= 1 run
	// fully serial.
	Workers int
}

// Report summarizes a successful audit.
type Report struct {
	JournalsReplayed  uint64
	BlocksVerified    uint64
	TimeJournals      int
	TimeRanges        int
	Purges            int
	Occults           int
	SignaturesChecked int
	// TimeBounds maps each time journal's jsn to its TSA timestamp; the
	// ranges between them carry the judicial when evidence.
	TimeBounds map[uint64]int64
}

// Audit runs the full Dasein-complete procedure. latest is the LSP's most
// recent receipt held by the auditor (step 5); it may be nil when the
// auditor trusts the live signed state instead.
func Audit(l *ledger.Ledger, latest *journal.Receipt, cfg Config) (*Report, error) {
	if cfg.LSP.IsZero() {
		return nil, fmt.Errorf("%w: no LSP key configured", ErrAuditFailed)
	}
	rep := &Report{TimeBounds: make(map[uint64]int64)}
	size := l.Size()
	base := l.Base()

	// Rebuild the fam accumulator over the full digest stream; purged
	// prefixes are covered by Protocol 1 (the digests survive purges and
	// the pseudo genesis vouches for them).
	shadow := fam.MustNew(l.FractalHeight())
	var shadowClues *cmtree.Tree
	if cfg.CheckClueRoots && base == 0 {
		shadowClues = cmtree.New()
	}
	for jsn := uint64(0); jsn < base; jsn++ {
		d, err := l.TxHash(jsn)
		if err != nil {
			return nil, fmt.Errorf("%w: digest stream jsn %d: %v", ErrAuditFailed, jsn, err)
		}
		shadow.Append(d)
	}

	// Walk the block index once; headers before the live range still
	// verify chain linkage by hash.
	headers := make([]*ledger.BlockHeader, 0, l.Height())
	for h := uint64(0); h < l.Height(); h++ {
		hdr, err := l.Header(h)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrAuditFailed, err)
		}
		headers = append(headers, hdr)
	}
	// Step 4 (boundary verification π′): adjacent headers must chain.
	for i := 1; i < len(headers); i++ {
		if headers[i].Prev != headers[i-1].Hash() {
			return nil, fmt.Errorf("%w: block %d prev-hash mismatch (boundary π′)", ErrAuditFailed, headers[i].Height)
		}
		if headers[i].FirstJSN != headers[i-1].FirstJSN+headers[i-1].Count {
			return nil, fmt.Errorf("%w: block %d jsn range not contiguous", ErrAuditFailed, headers[i].Height)
		}
	}

	nextHeader := 0
	// Skip headers fully covered by the purged prefix; their journal
	// roots are re-derivable from the retained digest stream.
	var lastTimeJSN uint64

	// The per-journal work — fetch, decode, tx-hash recompute, signature
	// checks, payload fetch — comes from an item source: computed inline
	// when Workers <= 1, prefetched by a worker pool over jsn ranges
	// otherwise (parallel.go). Either way items arrive in jsn order and
	// the checks below apply in the same sequence, so reports and
	// failures are identical across modes.
	src := newItemSource(l, base, size, cfg)
	defer src.stop()

	for jsn := uint64(0); jsn < size; jsn++ {
		var tx hashutil.Digest
		if jsn < base {
			// Already appended to shadow above.
			tx, _ = l.TxHash(jsn)
		} else {
			it := src.next(jsn)
			if it.recErr != nil {
				return nil, fmt.Errorf("%w: journal %d: %v", ErrAuditFailed, jsn, it.recErr)
			}
			rec := it.rec
			if cfg.Before != 0 && rec.Timestamp > cfg.Before {
				// Temporal predicate: stop replaying past the bound.
				size = jsn
				break
			}
			tx = it.tx
			if it.wantErr != nil {
				return nil, fmt.Errorf("%w: digest stream jsn %d: %v", ErrAuditFailed, jsn, it.wantErr)
			}
			if tx != it.want {
				return nil, fmt.Errorf("%w: journal %d content does not match accumulated digest (what)", ErrAuditFailed, jsn)
			}
			// Who: re-verify π_c and co-signatures.
			if it.sigErr != nil {
				return nil, fmt.Errorf("%w: journal %d: %v (who)", ErrAuditFailed, jsn, it.sigErr)
			}
			rep.SignaturesChecked++
			// The when check binds each time journal's attestation to the
			// fam root over exactly the journals that precede it.
			var prefixRoot hashutil.Digest
			if rec.Type == journal.TypeTime {
				var err error
				prefixRoot, err = shadow.Root()
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrAuditFailed, err)
				}
			}
			shadow.Append(tx)
			if shadowClues != nil {
				for _, clue := range rec.Clues {
					shadowClues.Insert(clue, rec.JSN, tx)
				}
			}
			rep.JournalsReplayed++

			if err := auditRecord(l, rec, prefixRoot, cfg, rep, &lastTimeJSN); err != nil {
				return nil, err
			}
			if it.payloadWanted {
				if it.payloadErr != nil {
					return nil, fmt.Errorf("%w: journal %d payload: %v", ErrAuditFailed, jsn, it.payloadErr)
				}
				if hashutil.Sum(it.payload) != rec.PayloadDigest {
					return nil, fmt.Errorf("%w: journal %d payload digest mismatch", ErrAuditFailed, jsn)
				}
			}
		}
		if jsn < base {
			continue
		}
		// Block boundary: when the shadow accumulator crosses a header's
		// last journal, the header's journal root must match (step 3's
		// per-range replay conclusion).
		for nextHeader < len(headers) && headers[nextHeader].FirstJSN+headers[nextHeader].Count == jsn+1 {
			hdr := headers[nextHeader]
			root, err := shadow.Root()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrAuditFailed, err)
			}
			if hdr.FirstJSN+hdr.Count > base && root != hdr.JournalRoot {
				return nil, fmt.Errorf("%w: block %d journal root mismatch (what)", ErrAuditFailed, hdr.Height)
			}
			if shadowClues != nil && shadowClues.RootHash() != hdr.ClueRoot {
				return nil, fmt.Errorf("%w: block %d clue root mismatch (lineage)", ErrAuditFailed, hdr.Height)
			}
			rep.BlocksVerified++
			nextHeader++
		}
	}

	// Step 5: the latest receipt from the LSP.
	if latest != nil {
		if err := latest.Verify(cfg.LSP); err != nil {
			return nil, fmt.Errorf("%w: latest receipt: %v", ErrAuditFailed, err)
		}
		want, err := l.TxHash(latest.JSN)
		if err != nil {
			return nil, fmt.Errorf("%w: latest receipt jsn %d: %v", ErrAuditFailed, latest.JSN, err)
		}
		if latest.TxHash != want {
			return nil, fmt.Errorf("%w: LSP receipt acknowledges a different journal than the ledger holds (LSP repudiation)", ErrAuditFailed)
		}
		rep.SignaturesChecked++
	}
	rep.TimeRanges = rep.TimeJournals
	return rep, nil
}

// auditRecord dispatches type-specific checks for one replayed journal.
// prefixRoot is the rebuilt fam root over journals [0, rec.JSN), set only
// for time journals.
func auditRecord(l *ledger.Ledger, rec *journal.Record, prefixRoot hashutil.Digest, cfg Config, rep *Report, lastTimeJSN *uint64) error {
	switch rec.Type {
	case journal.TypePurge:
		extra, err := ledger.DecodePurgeExtra(rec.Extra)
		if err != nil {
			return fmt.Errorf("%w: purge journal %d: %v", ErrAuditFailed, rec.JSN, err)
		}
		// Step 1 (Π₁): DBA plus every pre-purge member must have signed.
		required := []sig.PublicKey{cfg.DBA}
		if info, err := pseudoGenesisFor(l, rec.JSN); err == nil {
			for pk, first := range info.Members {
				if first < extra.Desc.Point && pk != cfg.DBA && pk != cfg.LSP {
					required = append(required, pk)
				}
			}
		}
		if err := extra.Sigs.VerifyAll(extra.Desc.Digest(), required); err != nil {
			return fmt.Errorf("%w: purge journal %d prerequisite 1: %v", ErrAuditFailed, rec.JSN, err)
		}
		rep.Purges++
		rep.SignaturesChecked += extra.Sigs.Len()
	case journal.TypeOccult:
		// Step 1 (Π₂): DBA plus a regulator-role holder, for both the
		// single-journal and the clue-level occult variants.
		var sigs *sig.MultiSig
		var digest hashutil.Digest
		if extra, err := ledger.DecodeOccultExtra(rec.Extra); err == nil {
			sigs, digest = extra.Sigs, extra.Desc.Digest()
		} else if extra, err := ledger.DecodeOccultClueExtra(rec.Extra); err == nil {
			sigs, digest = extra.Sigs, extra.Desc.Digest()
		} else {
			return fmt.Errorf("%w: occult journal %d: undecodable extra", ErrAuditFailed, rec.JSN)
		}
		if err := sigs.VerifyAll(digest, []sig.PublicKey{cfg.DBA}); err != nil {
			return fmt.Errorf("%w: occult journal %d prerequisite 2: %v", ErrAuditFailed, rec.JSN, err)
		}
		if cfg.Registry != nil {
			ok := false
			for _, pk := range sigs.Signers() {
				if cfg.Registry.Check(pk, ca.RoleRegulator) == nil {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("%w: occult journal %d lacks a regulator signature", ErrAuditFailed, rec.JSN)
			}
		}
		rep.Occults++
		rep.SignaturesChecked += sigs.Len()
	case journal.TypeTime:
		// Step 2: verify π_t and bind the attestation to the exact
		// ledger prefix preceding the time journal.
		ta, err := journal.DecodeTimeAttestation(rec.Extra)
		if err != nil {
			return fmt.Errorf("%w: time journal %d: %v", ErrAuditFailed, rec.JSN, err)
		}
		if err := ta.Verify(); err != nil {
			return fmt.Errorf("%w: time journal %d: %v", ErrAuditFailed, rec.JSN, err)
		}
		if !keyIn(ta.TSAPK, cfg.TrustedTSA) {
			return fmt.Errorf("%w: time journal %d from untrusted TSA %s", ErrAuditFailed, rec.JSN, ta.TSAPK)
		}
		if ta.Digest != prefixRoot {
			return fmt.Errorf("%w: time journal %d attestation does not cover the preceding ledger prefix (when)", ErrAuditFailed, rec.JSN)
		}
		if rec.JSN <= *lastTimeJSN && *lastTimeJSN != 0 {
			return fmt.Errorf("%w: time journals out of order", ErrAuditFailed)
		}
		*lastTimeJSN = rec.JSN
		rep.TimeJournals++
		rep.SignaturesChecked++
		rep.TimeBounds[rec.JSN] = ta.Timestamp
	}
	return nil
}

// pseudoGenesisFor finds the pseudo genesis paired with a purge journal
// (it is appended immediately after).
func pseudoGenesisFor(l *ledger.Ledger, purgeJSN uint64) (*ledger.PseudoGenesisInfo, error) {
	rec, err := l.GetJournal(purgeJSN + 1)
	if err != nil {
		return nil, err
	}
	if rec.Type != journal.TypePseudoGenesis {
		return nil, fmt.Errorf("audit: journal %d is %s, want pseudo genesis", purgeJSN+1, rec.Type)
	}
	return ledger.DecodePseudoGenesis(rec.Extra)
}

func keyIn(pk sig.PublicKey, set []sig.PublicKey) bool {
	for _, k := range set {
		if k == pk {
			return true
		}
	}
	return false
}
