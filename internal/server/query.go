// The verified rich-query surface: GET /v1/query serves
// prefix/time/signer reads out of the sidecar index with
// proof-carrying results, GET /v1/absence serves the ledger's
// authenticated "no such clue". Query parameters, not JSON bodies —
// both reads are cacheable GETs a curl example can exercise.
package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/sig"
)

// queryFromURL builds a ledger.Query from request parameters:
//
//	kind=prefix [&prefix=P]                — clues starting with P
//	kind=time   &from=T1 &to=T2           — commit timestamps in [T1,T2)
//	kind=signer &signer=<hex public key>  — records signed by a key
//
// plus limit=N and payload=1 on any kind. The router uses the same
// parser, so the two surfaces cannot drift.
func queryFromURL(v url.Values) (ledger.Query, error) {
	var q ledger.Query
	switch kind := v.Get("kind"); kind {
	case "prefix":
		q.Kind = ledger.QueryByPrefix
		q.Prefix = v.Get("prefix")
	case "time":
		q.Kind = ledger.QueryByTime
		var err error
		if q.From, err = strconv.ParseInt(v.Get("from"), 10, 64); err != nil {
			return q, fmt.Errorf("%w: from: %v", journal.ErrBadRequest, err)
		}
		if q.To, err = strconv.ParseInt(v.Get("to"), 10, 64); err != nil {
			return q, fmt.Errorf("%w: to: %v", journal.ErrBadRequest, err)
		}
	case "signer":
		q.Kind = ledger.QueryBySigner
		pk, err := sig.ParsePublicKey(v.Get("signer"))
		if err != nil {
			return q, fmt.Errorf("%w: signer: %v", journal.ErrBadRequest, err)
		}
		q.Signer = pk
	default:
		return q, fmt.Errorf("%w: kind %q (want prefix|time|signer)", journal.ErrBadRequest, kind)
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return q, fmt.Errorf("%w: limit: %v", journal.ErrBadRequest, err)
		}
		q.Limit = n
	}
	q.WithPayload = v.Get("payload") == "1"
	return q, q.Validate()
}

// absenceFromURL parses /v1/absence parameters: clue=<name>, plus
// prefix=1 to ask about the whole prefix. An empty clue is only
// meaningful as a prefix (it asks "is the ledger clue-empty?").
func absenceFromURL(v url.Values) (name string, prefix bool, err error) {
	name, prefix = v.Get("clue"), v.Get("prefix") == "1"
	if name == "" && !prefix {
		return "", false, fmt.Errorf("%w: missing clue", journal.ErrBadRequest)
	}
	return name, prefix, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.Index == nil {
		writeJSON(w, http.StatusNotImplemented, &Envelope{Error: "server: query index not enabled"})
		return
	}
	q, err := queryFromURL(r.URL.Query())
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.Index.Query(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Result: b64(res.EncodeBytes())})
}

func (s *Server) handleAbsence(w http.ResponseWriter, r *http.Request) {
	name, prefix, err := absenceFromURL(r.URL.Query())
	if err != nil {
		writeErr(w, err)
		return
	}
	ap, err := s.Ledger.ProveAbsence(name, prefix)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Result: b64(ap.EncodeBytes())})
}
