package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ledgerdb/internal/client"
	"ledgerdb/internal/index"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// newQueryStack is newStack plus a sidecar index attached to the
// service, standing up the full single-node rich-read surface.
func newQueryStack(t *testing.T) *stack {
	t.Helper()
	s := newStack(t)
	s.srv.Close() // rebuild the service with the index wired in
	srv := server.New(s.ledger, s.tl)
	ix, err := index.Open(s.ledger, streamfs.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	srv.Index = ix
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	s.srv = ts
	s.cli.BaseURL = ts.URL
	return s
}

// TestEndToEndQueryKinds exercises all three query kinds over HTTP with
// client-side verification: the service's index picks the candidates,
// the proofs make them trustworthy.
func TestEndToEndQueryKinds(t *testing.T) {
	s := newQueryStack(t)
	for i := 0; i < 12; i++ {
		if _, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i)), fmt.Sprintf("q/%02d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Prefix, with payloads riding the proof batch.
	recs, err := s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "q/0", WithPayload: true})
	if err != nil {
		t.Fatalf("prefix query: %v", err)
	}
	if len(recs) != 10 {
		t.Fatalf("prefix q/0 matched %d records, want 10", len(recs))
	}

	// Limit truncates and still verifies.
	recs, err = s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "q/", Limit: 5})
	if err != nil {
		t.Fatalf("limited query: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("limit 5 returned %d records", len(recs))
	}

	// Signer: every record carries the one client key.
	all, err := s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryBySigner, Signer: s.cli.Key.Public()})
	if err != nil {
		t.Fatalf("signer query: %v", err)
	}
	if len(all) != 12 {
		t.Fatalf("signer query returned %d records, want 12", len(all))
	}

	// Time window straddling the middle records, bounds read from the
	// proven records themselves (the clock also ticks on block cuts, so
	// timestamps are not dense).
	from, to := all[4].Timestamp, all[7].Timestamp+1
	recs, err = s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByTime, From: from, To: to})
	if err != nil {
		t.Fatalf("time query: %v", err)
	}
	if len(recs) < 4 {
		t.Fatalf("time window [%d,%d) returned %d records, want >= 4", from, to, len(recs))
	}
	for _, rec := range recs {
		if rec.Timestamp < from || rec.Timestamp >= to {
			t.Fatalf("record at %d outside verified window [%d,%d)", rec.Timestamp, from, to)
		}
	}
}

// TestEndToEndQueryAbsence pins the authenticated-absence surface: an
// empty prefix reply carries a verifiable absence proof, exact absence
// works standalone, and asking about a live clue is a 409 the client
// classifies as present.
func TestEndToEndQueryAbsence(t *testing.T) {
	s := newQueryStack(t)
	if _, err := s.cli.Append([]byte("x"), "exists"); err != nil {
		t.Fatal(err)
	}

	// Empty prefix reply: zero records, no error — VerifyQueryResult
	// refused to accept emptiness without the absence proof.
	recs, err := s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "ghost/"})
	if err != nil {
		t.Fatalf("empty prefix query: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("ghost prefix returned %d records", len(recs))
	}

	// Standalone absence, exact and prefix.
	if _, err := s.cli.ProveAbsence("ghost", false); err != nil {
		t.Fatalf("exact absence: %v", err)
	}
	if _, err := s.cli.ProveAbsence("ghost/", true); err != nil {
		t.Fatalf("prefix absence: %v", err)
	}

	// A live clue is present, not absent.
	if _, err := s.cli.ProveAbsence("exists", false); !client.IsPresent(err) {
		t.Fatalf("absence of live clue: err = %v, want 409 present", err)
	}
}

// TestEndToEndPurgeThenQuery is the single-node HTTP half of the
// purge-then-query regression: after a purge the service's live-tailing
// index must stop serving the erased records and the clue must become
// provably absent.
func TestEndToEndPurgeThenQuery(t *testing.T) {
	s := newQueryStack(t)
	for i := 0; i < 4; i++ {
		if _, err := s.cli.Append([]byte(fmt.Sprintf("secret-%d", i)), "doomed"); err != nil {
			t.Fatal(err)
		}
	}
	r, err := s.cli.Append([]byte("keep"), "kept")
	if err != nil {
		t.Fatal(err)
	}

	// Pre-purge: the doomed clue queries and is NOT absent.
	recs, err := s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("pre-purge query returned %d records, want 4", len(recs))
	}

	desc := &ledger.PurgeDescriptor{URI: "ledger://e2e", Point: r.JSN, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	for _, name := range []string{"e2e-dba", "e2e-client"} {
		if err := ms.SignWith(sig.GenerateDeterministic(name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.cli.Purge(desc, ms); err != nil {
		t.Fatalf("purge: %v", err)
	}

	// Post-purge: verified empty reply, provable absence, survivor intact.
	recs, err = s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "doomed"})
	if err != nil {
		t.Fatalf("post-purge query: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("post-purge query served %d stale records", len(recs))
	}
	if _, err := s.cli.ProveAbsence("doomed", false); err != nil {
		t.Fatalf("absence of purged clue: %v", err)
	}
	recs, err = s.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "kept"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("survivor query returned %d records, want 1", len(recs))
	}
}

// TestQueryWithoutIndex pins the degraded mode: a service with no index
// attached answers /v1/query with 501 (absence still works — it needs
// only the ledger).
func TestQueryWithoutIndex(t *testing.T) {
	s := newStack(t)
	resp, err := http.Get(s.srv.URL + "/v1/query?kind=prefix&prefix=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("query without index: status = %d, want 501", resp.StatusCode)
	}
	if _, err := s.cli.ProveAbsence("anything", false); err != nil {
		t.Fatalf("absence without index: %v", err)
	}
}
