package server_test

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/client"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/sig"
)

// Admin-path end-to-end tests: mutations and verifiable state reads over
// HTTP.

func TestEndToEndStateProof(t *testing.T) {
	s := newStack(t)
	// World-state writes need a StateKey: use a raw request through the
	// client's key.
	req := &journal.Request{
		LedgerURI: "ledger://e2e",
		Type:      journal.TypeNormal,
		StateKey:  []byte("account/alice"),
		Payload:   []byte("balance=100"),
		Nonce:     1,
	}
	if err := req.Sign(s.cli.Key); err != nil {
		t.Fatal(err)
	}
	r, err := s.ledger.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	jsn, digest, err := s.cli.VerifyState([]byte("account/alice"))
	if err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	if jsn != r.JSN || digest != hashutil.Sum([]byte("balance=100")) {
		t.Fatalf("state = (%d, %s)", jsn, digest.Short())
	}
	// Missing keys 404.
	if _, _, err := s.cli.VerifyState([]byte("ghost")); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndBatchAppend(t *testing.T) {
	s := newStack(t)
	payloads := make([][]byte, 30)
	clueSets := make([][]string, 30)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batch-%d", i))
		clueSets[i] = []string{"bulk"}
	}
	br, txHashes, err := s.cli.AppendBatch(payloads, clueSets)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if br.Count != 30 || len(txHashes) != 30 {
		t.Fatalf("receipt: %+v", br)
	}
	// Each batched journal is individually verifiable end to end.
	for i := uint64(0); i < br.Count; i += 7 {
		rec, payload, err := s.cli.VerifyExistence(br.FirstJSN+i, true)
		if err != nil {
			t.Fatalf("jsn %d: %v", br.FirstJSN+i, err)
		}
		if rec.TxHash() != txHashes[i] {
			t.Fatal("tx-hash order mismatch")
		}
		if string(payload) != fmt.Sprintf("batch-%d", i) {
			t.Fatalf("payload %q", payload)
		}
	}
	// Lineage spans the whole batch.
	recs, err := s.cli.VerifyClue("bulk", 0, 0)
	if err != nil || len(recs) != 30 {
		t.Fatalf("lineage: %d, %v", len(recs), err)
	}
}

func TestEndToEndBatchRejectsTamperedRequest(t *testing.T) {
	s := newStack(t)
	// Submit a raw batch where one encoded request is corrupted.
	if _, _, err := s.cli.AppendBatch([][]byte{[]byte("ok")}, nil); err != nil {
		t.Fatal(err)
	}
	before := s.ledger.Size()
	_, _, err := s.cli.AppendBatch([][]byte{{}, []byte("y")}, nil) // empty payload: structurally invalid
	if !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	if s.ledger.Size() != before {
		t.Fatal("partial batch committed")
	}
}

func TestEndToEndAdminOccult(t *testing.T) {
	s := newStack(t)
	r, err := s.cli.Append([]byte("sensitive"), "k")
	if err != nil {
		t.Fatal(err)
	}
	dba := sig.GenerateDeterministic("e2e-dba")
	desc := &ledger.OccultDescriptor{URI: "ledger://e2e", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(dba); err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Occult(desc, ms); err != nil {
		t.Fatalf("admin occult: %v", err)
	}
	if _, err := s.cli.GetPayload(r.JSN); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("payload err = %v", err)
	}
	// Existence still verifies through the retained digest.
	if _, _, err := s.cli.VerifyExistence(r.JSN, false); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndAdminOccultRejectsBadSigs(t *testing.T) {
	s := newStack(t)
	r, err := s.cli.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	desc := &ledger.OccultDescriptor{URI: "ledger://e2e", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	// Signed by a random key, not the DBA.
	if err := ms.SignWith(sig.GenerateDeterministic("mallory")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.cli.Occult(desc, ms); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndAdminPurge(t *testing.T) {
	s := newStack(t)
	for i := 0; i < 8; i++ {
		if _, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	dba := sig.GenerateDeterministic("e2e-dba")
	clientKey := sig.GenerateDeterministic("e2e-client")
	desc := &ledger.PurgeDescriptor{URI: "ledger://e2e", Point: 5, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	for _, kp := range []*sig.KeyPair{dba, clientKey} {
		if err := ms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.cli.Purge(desc, ms); err != nil {
		t.Fatalf("admin purge: %v", err)
	}
	_, _, base, _, err := s.cli.Info()
	if err != nil {
		t.Fatal(err)
	}
	if base != 5 {
		t.Fatalf("base = %d", base)
	}
	// Purged journals are 410 Gone over HTTP (permanent, non-retryable).
	if _, err := s.cli.GetJournal(2); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	// Live journals still verify end to end.
	if _, _, err := s.cli.VerifyExistence(6, true); err != nil {
		t.Fatal(err)
	}
}
