package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ledgerdb/internal/client"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/replica"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tsa"
)

// followerStack extends the primary stack with an apply-only follower
// ledger replicating over real HTTP, itself fronted by a Server.
type followerStack struct {
	*stack
	follower *ledger.Ledger
	puller   *replica.Puller
	fsrv     *httptest.Server
	fcli     *client.Client
}

func newFollowerStack(t *testing.T) *followerStack {
	t.Helper()
	s := newStack(t)
	f, err := ledger.Open(ledger.Config{
		URI:           "ledger://e2e",
		FractalHeight: 4,
		BlockSize:     8,
		Clock:         s.clock.Tick,
		ApplyOnly:     true,
		PrimaryLSP:    s.cli.LSP,
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	p, err := replica.New(replica.Config{
		Source: replica.ClientSource(s.cli),
		Ledger: f,
		Batch:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(server.New(f, nil))
	t.Cleanup(fsrv.Close)
	return &followerStack{
		stack:    s,
		follower: f,
		puller:   p,
		fsrv:     fsrv,
		fcli:     &client.Client{BaseURL: fsrv.URL, LSP: s.cli.LSP, URI: "ledger://e2e"},
	}
}

func (fs *followerStack) catchUp(t *testing.T) {
	t.Helper()
	ctx := t.Context()
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("follower did not catch up over HTTP")
		}
		if err := fs.puller.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if fs.puller.Status().CaughtUp {
			return
		}
	}
}

// TestReplicationOverHTTP replicates through the real wire path — pull
// endpoint, sealed frames, hardened client — and then serves verified
// reads from the follower's own HTTP surface.
func TestReplicationOverHTTP(t *testing.T) {
	fs := newFollowerStack(t)
	var jsns []uint64
	for i := 0; i < 20; i++ {
		rc, err := fs.cli.Append([]byte(fmt.Sprintf("doc-%d", i)), "trail")
		if err != nil {
			t.Fatal(err)
		}
		jsns = append(jsns, rc.JSN)
	}
	fs.catchUp(t)

	if fs.follower.Size() != fs.ledger.Size() {
		t.Fatalf("follower at %d, primary at %d", fs.follower.Size(), fs.ledger.Size())
	}
	// The full client-side verification pipeline works against the
	// follower: proofs fold to the primary-signed root.
	for _, jsn := range jsns[:5] {
		if _, _, err := fs.fcli.VerifyExistence(jsn, false); err != nil {
			t.Fatalf("VerifyExistence(%d) via follower: %v", jsn, err)
		}
	}
	if _, err := fs.fcli.VerifyClue("trail", 0, 0); err != nil {
		t.Fatalf("VerifyClue via follower: %v", err)
	}
	// Batched proofs share the follower's cached checkpoint.
	if _, _, err := fs.fcli.VerifyExistenceBatch(jsns[:8], false); err != nil {
		t.Fatalf("VerifyExistenceBatch via follower: %v", err)
	}
	// The follower watermark equals the frontier once caught up.
	gen, jsn, watermark, err := fs.fcli.Health()
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 || jsn != fs.follower.Size() || watermark != jsn {
		t.Fatalf("health gen=%d jsn=%d watermark=%d, follower size %d", gen, jsn, watermark, fs.follower.Size())
	}
}

// TestFollowerStaleProofRejected maps ErrStaleCheckpoint to a retryable
// 503 with Retry-After: the journal may exist but the follower cannot
// prove past its verified checkpoint.
func TestFollowerStaleProofRejected(t *testing.T) {
	fs := newFollowerStack(t)
	for i := 0; i < 5; i++ {
		if _, err := fs.cli.Append([]byte(fmt.Sprintf("doc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.catchUp(t)
	// Advance the primary, then replicate the journals WITHOUT a new
	// checkpoint (partitioned mid-pull): the follower holds the record
	// but cannot anchor an exact-state proof for it yet.
	rc, err := fs.cli.Append([]byte("beyond"))
	if err != nil {
		t.Fatal(err)
	}
	if err := driveStaleRound(t, fs); err != nil {
		t.Fatal(err)
	}
	if fs.follower.Size() <= rc.JSN {
		t.Fatalf("follower did not apply jsn %d", rc.JSN)
	}
	resp, err := http.Get(fs.fsrv.URL + fmt.Sprintf("/v1/proof/%d", rc.JSN))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale proof status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stale proof reply missing Retry-After")
	}
	// The hardened client retries through it once replication resumes.
	fcli := fs.fcli.Clone()
	fcli.Retries = 5
	fcli.RetryBackoff = time.Millisecond
	done := make(chan error, 1)
	go func() {
		_, _, err := fcli.VerifyExistence(rc.JSN, false)
		done <- err
	}()
	fs.catchUp(t)
	if err := <-done; err != nil {
		t.Fatalf("proof after catch-up: %v", err)
	}
}

// TestBundleEndpoint round-trips an offline proof bundle over HTTP and
// verifies it with zero network access and a pinned TSA key.
func TestBundleEndpoint(t *testing.T) {
	s := newStack(t)
	authority := tsa.New("bundle-tsa", tsa.Options{Clock: s.clock.Now})
	var jsns []uint64
	for i := 0; i < 5; i++ {
		rc, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		jsns = append(jsns, rc.JSN)
	}
	if _, err := s.ledger.AnchorTimeWith(authority.Stamp); err != nil {
		t.Fatal(err)
	}
	b, err := s.cli.FetchBundle(jsns[2], true)
	if err != nil {
		t.Fatal(err)
	}
	rec, ta, err := ledger.VerifyBundle(b, s.cli.LSP, []sig.PublicKey{authority.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if rec.JSN != jsns[2] || ta == nil {
		t.Fatalf("bundle proves jsn %d, ta %v", rec.JSN, ta)
	}
	if string(b.Payload) != "doc-2" {
		t.Fatalf("bundle payload %q", b.Payload)
	}
	// Unknown jsn: 404, not 500.
	resp, err := http.Get(s.srv.URL + "/v1/bundle/9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing bundle status %d", resp.StatusCode)
	}
}

// TestPullEndpointValidation covers the pull endpoint's parameter
// hygiene: unknown streams and malformed numbers are 400s, and an
// out-of-range from yields an empty verified frame carrying the
// stream's true Base/Len (the follower's gap/lag discovery signal).
func TestPullEndpointValidation(t *testing.T) {
	s := newStack(t)
	if _, err := s.cli.Append([]byte("doc")); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"/v1/replica/pull?stream=bogus&from=0",
		"/v1/replica/pull?stream=journals&from=abc",
		"/v1/replica/pull?stream=journals&from=0&max=-1",
	} {
		resp, err := http.Get(s.srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	raw, err := s.cli.PullFrame(t.Context(), ledger.StreamJournals, 9999, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := replica.DecodeSegmentFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 0 || f.Len != s.ledger.Size() || f.Offset != 9999 {
		t.Fatalf("out-of-range frame %+v", f)
	}
}

// TestHealthzJSONShape is the JSON-shape regression for satellite
// watermark fields: /healthz and /readyz must expose generation, jsn,
// and watermark as numbers, present even when zero-valued, without
// disturbing the rest of the envelope.
func TestHealthzJSONShape(t *testing.T) {
	fs := newFollowerStack(t)
	if _, err := fs.cli.Append([]byte("doc")); err != nil {
		t.Fatal(err)
	}
	fs.catchUp(t)
	for _, tc := range []struct {
		name, url string
	}{
		{"primary healthz", fs.srv.URL + "/healthz"},
		{"primary readyz", fs.srv.URL + "/readyz"},
		{"follower healthz", fs.fsrv.URL + "/healthz"},
		{"follower readyz", fs.fsrv.URL + "/readyz"},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, resp.StatusCode)
		}
		var shape map[string]json.RawMessage
		if err := json.Unmarshal(body, &shape); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, key := range []string{"generation", "jsn", "watermark"} {
			raw, ok := shape[key]
			if !ok {
				t.Fatalf("%s: missing %q in %s", tc.name, key, body)
			}
			var n uint64
			if err := json.Unmarshal(raw, &n); err != nil {
				t.Fatalf("%s: %q is not a number in %s", tc.name, key, body)
			}
		}
		if _, ok := shape["error"]; ok {
			t.Fatalf("%s: unexpected error field in %s", tc.name, body)
		}
	}
	// A lagging follower admits its staleness: jsn advances past the
	// checkpoint watermark after applying journals with no new state.
	var seen error
	for i := 0; i < 50; i++ {
		if _, err := fs.cli.Append([]byte(fmt.Sprintf("lag-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Apply journal frames only (no checkpoint): drive one round where
	// the state fetch fails, leaving watermark behind jsn.
	seen = driveStaleRound(t, fs)
	if seen != nil {
		t.Fatal(seen)
	}
	_, jsn, watermark, err := fs.fcli.Health()
	if err != nil {
		t.Fatal(err)
	}
	if jsn <= watermark {
		t.Fatalf("expected honest staleness, got jsn=%d watermark=%d", jsn, watermark)
	}
}

// driveStaleRound advances the follower's streams without a new
// checkpoint by running a round against a source whose State fetch
// fails after the journals applied.
func driveStaleRound(t *testing.T, fs *followerStack) error {
	t.Helper()
	p, err := replica.New(replica.Config{
		Source: staleSource{replica.ClientSource(fs.cli)},
		Ledger: fs.follower,
		Batch:  1024,
	})
	if err != nil {
		return err
	}
	err = p.RunOnce(t.Context())
	if err == nil || !errors.Is(err, errNoState) {
		return fmt.Errorf("stale round: %v", err)
	}
	return nil
}

var errNoState = errors.New("state fetch severed")

type staleSource struct{ replica.Source }

func (s staleSource) State(ctx context.Context) (*ledger.SignedState, error) {
	return nil, errNoState
}
