// Replication endpoints: offset-addressed stream pulls serving sealed
// segment frames, and self-contained offline proof bundles. Both are
// read-only and safe to serve from primaries and followers alike — a
// follower re-serving /v1/replica/pull is how chained (fan-out)
// replication topologies compose.
package server

import (
	"fmt"
	"net/http"
	"strconv"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/replica"
)

// Per-pull ceilings, enforced server-side regardless of what the client
// asks for: one frame stays well under the decoder's hard caps so a
// lagging follower catches up in bounded memory.
const (
	maxPullRecords = 4096
	maxPullBytes   = 4 << 20
)

// handleReplicaPull answers GET /v1/replica/pull?stream=S&from=N&max=M
// with one sealed SegmentFrame. An out-of-range from is not an error:
// the frame comes back empty with the stream's Base/Len, which is
// exactly how a follower discovers purge gaps and its own lag.
func (s *Server) handleReplicaPull(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stream := q.Get("stream")
	switch stream {
	case ledger.StreamJournals, ledger.StreamDigests, ledger.StreamBlocks, ledger.StreamSurvival:
	default:
		writeErr(w, fmt.Errorf("%w: unknown stream %q", journal.ErrBadRequest, stream))
		return
	}
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad from %q", journal.ErrBadRequest, q.Get("from")))
		return
	}
	max := maxPullRecords
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: bad max %q", journal.ErrBadRequest, v))
			return
		}
		if n > 0 && n < max {
			max = n
		}
	}
	recs, base, size, err := s.Ledger.ReadStreamRange(stream, from, max, maxPullBytes)
	if err != nil {
		writeErr(w, err)
		return
	}
	f := &replica.SegmentFrame{Stream: stream, Base: base, Len: size, Offset: from, Records: recs}
	f.Seal()
	writeJSON(w, http.StatusOK, &Envelope{Frame: b64(f.EncodeBytes())})
}

// handleBundle answers GET /v1/bundle/{jsn}?payload=1 with a
// self-contained ProofBundle: record, fam path, anchored checkpoint,
// and (when the ledger holds a later time anchor) the TSA when-chain —
// everything VerifyBundle needs with zero network access.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	b, err := s.Ledger.ExportBundle(jsn, r.URL.Query().Get("payload") == "1")
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(b.EncodeBytes())})
}

// health populates the replication fields every /healthz and /readyz
// reply carries.
func (s *Server) health(env *Envelope) *Envelope {
	if s.Ledger == nil {
		return env
	}
	gen, jsn := s.Ledger.Generation(), s.Ledger.Size()
	watermark := jsn
	if info, ok := s.Ledger.ReplicaStatus(); ok {
		watermark = info.CheckpointJSN
	}
	env.Generation, env.Jsn, env.Watermark = &gen, &jsn, &watermark
	return env
}
