package server_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// jsonBlob builds a syntactically valid JSON body {"<field>":"AAA..."}
// of roughly n bytes, so the decoder keeps reading until the byte cap
// trips (a garbage body would fail JSON parsing first, yielding 400).
func jsonBlob(field string, n int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"%s":"`, field)
	buf.Write(bytes.Repeat([]byte("A"), n))
	buf.WriteString(`"}`)
	return buf.Bytes()
}

// TestAppendBodyCapped verifies the append handler rejects oversized
// request bodies with 413 instead of buffering them.
func TestAppendBodyCapped(t *testing.T) {
	s := newStack(t)
	big := jsonBlob("request", 25<<20)
	resp, err := http.Post(s.srv.URL+"/v1/append", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestAdminBodyCapped verifies the (much smaller) admin body ceiling.
func TestAdminBodyCapped(t *testing.T) {
	s := newStack(t)
	big := jsonBlob("descriptor", 5<<20)
	resp, err := http.Post(s.srv.URL+"/v1/admin/occult", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestClientRetriesServiceUnavailable checks the client SDK's retry
// policy: 503s are retried (with backoff) until the server recovers.
func TestClientRetriesServiceUnavailable(t *testing.T) {
	s := newStack(t)
	var failures atomic.Int64
	failures.Store(2)
	inner := s.srv.Config.Handler
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"ledger: closed"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	cli := s.cli.Clone()
	cli.BaseURL = flaky.URL
	cli.Retries = 3
	cli.RetryBackoff = time.Millisecond
	receipt, err := cli.Append([]byte("retried"), "retry-clue")
	if err != nil {
		t.Fatalf("append through flaky server: %v", err)
	}
	if receipt.JSN == 0 {
		t.Fatalf("unexpected genesis jsn")
	}

	// With retries exhausted the 503 surfaces to the caller.
	failures.Store(100)
	cli.Retries = 1
	if _, err := cli.Append([]byte("doomed")); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("expected surfaced 503, got %v", err)
	}
}
