package server_test

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"ledgerdb/internal/client"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

// stack is a full end-to-end deployment: ledger + T-Ledger + TSA behind
// an httptest server, plus a verified client.
type stack struct {
	srv    *httptest.Server
	cli    *client.Client
	ledger *ledger.Ledger
	tl     *tledger.TLedger
	clock  *logicalclock.Clock
}

func newStack(t *testing.T) *stack {
	t.Helper()
	clock := logicalclock.New(100_000)
	lsp := sig.GenerateDeterministic("e2e-lsp")
	authority := tsa.New("e2e", tsa.Options{Clock: clock.Now})
	tl, err := tledger.New(tledger.Config{
		Clock:     clock.Now,
		Tolerance: 1000,
		TSA:       tsa.NewPool(authority),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{
		URI:           "ledger://e2e",
		FractalHeight: 4,
		BlockSize:     8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("e2e-dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock.Tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(l, tl))
	t.Cleanup(srv.Close)
	return &stack{
		srv: srv,
		cli: &client.Client{
			BaseURL: srv.URL,
			Key:     sig.GenerateDeterministic("e2e-client"),
			LSP:     lsp.Public(),
			URI:     "ledger://e2e",
		},
		ledger: l,
		tl:     tl,
		clock:  clock,
	}
}

func TestEndToEndAppendAndVerify(t *testing.T) {
	s := newStack(t)
	var receipts []*journal.Receipt
	for i := 0; i < 20; i++ {
		r, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i)), "trail")
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		receipts = append(receipts, r)
	}
	for _, r := range receipts {
		rec, payload, err := s.cli.VerifyExistence(r.JSN, true)
		if err != nil {
			t.Fatalf("VerifyExistence(%d): %v", r.JSN, err)
		}
		if rec.TxHash() != r.TxHash {
			t.Fatal("verified record differs from receipt")
		}
		if len(payload) == 0 {
			t.Fatal("payload missing")
		}
	}
}

func TestEndToEndBatchedProofs(t *testing.T) {
	s := newStack(t)
	var jsns []uint64
	var want []hashutil.Digest
	for i := 0; i < 20; i++ {
		r, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i)), "batch")
		if err != nil {
			t.Fatal(err)
		}
		jsns = append(jsns, r.JSN)
		want = append(want, r.TxHash)
	}
	recs, payloads, err := s.cli.VerifyExistenceBatch(jsns, true)
	if err != nil {
		t.Fatalf("VerifyExistenceBatch: %v", err)
	}
	if len(recs) != len(jsns) {
		t.Fatalf("verified %d of %d records", len(recs), len(jsns))
	}
	for i, rec := range recs {
		if rec.TxHash() != want[i] {
			t.Fatalf("record %d differs from its receipt", i)
		}
		if string(payloads[i]) != fmt.Sprintf("doc-%d", i) {
			t.Fatalf("payload %d = %q", i, payloads[i])
		}
	}
	// Digest-only form ships no payloads.
	_, payloads, err = s.cli.VerifyExistenceBatch(jsns[:3], false)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		if p != nil {
			t.Fatalf("digest-only batch shipped payload %d", i)
		}
	}

	// Request-shape violations surface as HTTP errors, not panics.
	over := make([]uint64, ledger.MaxProofBatch+1)
	if _, _, err := s.cli.VerifyExistenceBatch(over, false); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("oversized batch: %v", err)
	}
	if _, _, err := s.cli.VerifyExistenceBatch(nil, false); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, _, err := s.cli.VerifyExistenceBatch([]uint64{1, 999}, false); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("out-of-range batch: %v", err)
	}
}

func TestEndToEndClueVerification(t *testing.T) {
	s := newStack(t)
	for i := 0; i < 9; i++ {
		if _, err := s.cli.Append([]byte(fmt.Sprintf("v%d", i)), "DCI001"); err != nil {
			t.Fatal(err)
		}
	}
	jsns, err := s.cli.ClueJSNs("DCI001")
	if err != nil {
		t.Fatal(err)
	}
	if len(jsns) != 9 {
		t.Fatalf("jsns = %v", jsns)
	}
	recs, err := s.cli.VerifyClue("DCI001", 0, 0)
	if err != nil {
		t.Fatalf("VerifyClue: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("verified %d records", len(recs))
	}
	// Range form.
	recs, err = s.cli.VerifyClue("DCI001", 2, 5)
	if err != nil || len(recs) != 3 {
		t.Fatalf("range verify: %d, %v", len(recs), err)
	}
}

func TestEndToEndState(t *testing.T) {
	s := newStack(t)
	s.cli.Append([]byte("x"))
	st, err := s.cli.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.URI != "ledger://e2e" || st.JSN != 2 {
		t.Fatalf("state: %+v", st)
	}
}

func TestEndToEndTimeAnchoring(t *testing.T) {
	s := newStack(t)
	s.cli.Append([]byte("x"))
	r, err := s.cli.AnchorTime()
	if err != nil {
		t.Fatalf("AnchorTime: %v", err)
	}
	rec, err := s.cli.GetJournal(r.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != journal.TypeTime {
		t.Fatalf("type = %s", rec.Type)
	}
	if s.tl.Size() != 1 {
		t.Fatalf("t-ledger entries = %d", s.tl.Size())
	}
}

func TestEndToEndAnchoredVerification(t *testing.T) {
	s := newStack(t)
	// δ=4: 16-journal epochs; 60 appends seal several.
	for i := 0; i < 60; i++ {
		if _, err := s.cli.Append([]byte(fmt.Sprintf("doc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	anchor, err := s.cli.FetchAnchor()
	if err != nil {
		t.Fatal(err)
	}
	if anchor.Epochs == 0 {
		t.Fatal("no sealed epochs in anchor")
	}
	// A deep historical journal verifies with a hop-free proof.
	rec, _, err := s.cli.VerifyExistenceAnchored(2, anchor, false)
	if err != nil {
		t.Fatalf("anchored verify: %v", err)
	}
	if rec.JSN != 2 {
		t.Fatalf("verified jsn %d", rec.JSN)
	}
	// A recent journal also verifies through the residual chain.
	if _, _, err := s.cli.VerifyExistenceAnchored(59, anchor, true); err != nil {
		t.Fatalf("anchored verify recent: %v", err)
	}
	// A forged anchor (tampered epoch root) must fail verification.
	forged := *anchor
	forged.Roots = append([]hashutil.Digest(nil), anchor.Roots...)
	forged.Roots[0] = hashutil.Leaf([]byte("evil"))
	if _, _, err := s.cli.VerifyExistenceAnchored(2, &forged, false); err == nil {
		t.Fatal("forged anchor accepted")
	}
}

func TestEndToEndErrors(t *testing.T) {
	s := newStack(t)
	if _, _, err := s.cli.VerifyExistence(999, false); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.cli.GetPayload(999); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.cli.VerifyClue("ghost", 0, 0); !errors.Is(err, client.ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndInfo(t *testing.T) {
	s := newStack(t)
	s.cli.Append([]byte("x"))
	uri, size, base, _, err := s.cli.Info()
	if err != nil {
		t.Fatal(err)
	}
	if uri != "ledger://e2e" || size != 2 || base != 0 {
		t.Fatalf("info: %s %d %d", uri, size, base)
	}
}

func TestEndToEndTamperingServerDetected(t *testing.T) {
	// A client pinned to the wrong LSP key must reject everything — the
	// same failure mode as a server presenting forged states.
	s := newStack(t)
	s.cli.Append([]byte("x"))
	evil := &client.Client{
		BaseURL: s.srv.URL,
		Key:     sig.GenerateDeterministic("e2e-client"),
		LSP:     sig.GenerateDeterministic("not-the-lsp").Public(),
		URI:     "ledger://e2e",
	}
	if _, err := evil.State(); err == nil {
		t.Fatal("state verified under the wrong LSP key")
	}
	if _, _, err := evil.VerifyExistence(1, false); err == nil {
		t.Fatal("proof verified under the wrong LSP key")
	}
}
