// Package server exposes a LedgerDB instance as an HTTP service — the
// ledger proxy + ledger server path of Figure 1. Proof objects travel as
// base64-encoded deterministic wire blobs inside small JSON envelopes, so
// clients re-verify exactly the bytes the server committed to.
package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/index"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/wire"
)

// Server wires a ledger (and optionally a T-Ledger for time anchoring)
// into an http.Handler with bounded admission, per-request timeouts,
// append idempotency, and health endpoints (see harden.go).
type Server struct {
	Ledger *ledger.Ledger
	// TLedger, when set, serves time anchoring: POST /v1/anchor-time
	// submits the current state digest through Protocol 4.
	TLedger *tledger.TLedger
	// Index, when set, serves rich queries: GET /v1/query answers
	// prefix/time/signer reads with proof-carrying results. Absence
	// proofs (GET /v1/absence) come straight from the ledger and work
	// without it.
	Index *index.Index
	mux   *http.ServeMux
	opts  Options
	gate  gate
	idem  *idemTable
	// testStall, when set, runs after admission and before dispatch —
	// the seam load-shed tests use to hold slots occupied.
	testStall func(r *http.Request)
}

// New builds the HTTP surface over a ledger with default Options.
func New(l *ledger.Ledger, tl *tledger.TLedger) *Server {
	return NewWithOptions(l, tl, Options{})
}

// NewWithOptions builds the HTTP surface with explicit robustness
// settings.
func NewWithOptions(l *ledger.Ledger, tl *tledger.TLedger, opts Options) *Server {
	s := &Server{Ledger: l, TLedger: tl, mux: http.NewServeMux(), opts: opts}
	s.gate.max = opts.MaxInFlight
	s.idem = newIdemTable(opts.IdempotencyCapacity)
	s.mux.HandleFunc("POST /v1/append", s.handleAppend)
	s.mux.HandleFunc("POST /v1/append-batch", s.handleAppendBatch)
	s.mux.HandleFunc("GET /v1/state", s.handleState)
	s.mux.HandleFunc("GET /v1/journal/{jsn}", s.handleJournal)
	s.mux.HandleFunc("GET /v1/payload/{jsn}", s.handlePayload)
	s.mux.HandleFunc("GET /v1/proof/{jsn}", s.handleProof)
	s.mux.HandleFunc("POST /v1/proofs", s.handleProofBatch)
	s.mux.HandleFunc("GET /v1/anchor", s.handleAnchor)
	s.mux.HandleFunc("POST /v1/proof-anchored/{jsn}", s.handleProofAnchored)
	s.mux.HandleFunc("GET /v1/clue/{name}/proof", s.handleClueProof)
	s.mux.HandleFunc("GET /v1/clue/{name}/jsns", s.handleClueJSNs)
	s.mux.HandleFunc("POST /v1/anchor-time", s.handleAnchorTime)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/stateproof", s.handleStateProof)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/absence", s.handleAbsence)
	s.mux.HandleFunc("POST /v1/admin/purge", s.handlePurge)
	s.mux.HandleFunc("POST /v1/admin/occult", s.handleOccult)
	s.mux.HandleFunc("GET /v1/replica/pull", s.handleReplicaPull)
	s.mux.HandleFunc("GET /v1/bundle/{jsn}", s.handleBundle)
	return s
}

// Envelope is the uniform JSON response shape.
type Envelope struct {
	// B64 fields hold deterministic wire encodings.
	Receipt string   `json:"receipt,omitempty"`
	State   string   `json:"state,omitempty"`
	Record  string   `json:"record,omitempty"`
	Proof   string   `json:"proof,omitempty"`
	Payload string   `json:"payload,omitempty"`
	JSNs    []uint64 `json:"jsns,omitempty"`
	Result  string   `json:"result,omitempty"` // b64 QueryResult / AbsenceProof
	Error   string   `json:"error,omitempty"`

	URI    string `json:"uri,omitempty"`
	Size   uint64 `json:"size,omitempty"`
	Base   uint64 `json:"base,omitempty"`
	Height uint64 `json:"height,omitempty"`
	LSPKey string `json:"lsp_key,omitempty"` // hex; clients pin it (TOFU)

	// Replication fields. Frame is a b64 sealed SegmentFrame (pull
	// responses). Generation/Jsn/Watermark ride on /healthz and /readyz:
	// Jsn is the applied journal frontier, Watermark the newest verified
	// primary-signed checkpoint (== Jsn on a primary, which signs its
	// own states), so Jsn-Watermark is the honest staleness a follower
	// admits to. Always present on health replies — a zero Watermark on
	// a seeding follower is itself the signal.
	Frame      string  `json:"frame,omitempty"`
	Generation *uint64 `json:"generation,omitempty"`
	Jsn        *uint64 `json:"jsn,omitempty"`
	Watermark  *uint64 `json:"watermark,omitempty"`

	// Sharded-topology fields (router responses only).
	Global   string            `json:"global,omitempty"`   // b64 GlobalState
	Shard    *int              `json:"shard,omitempty"`    // routed shard index
	Shards   int               `json:"shards,omitempty"`   // topology width
	Receipts map[string]string `json:"receipts,omitempty"` // shard idx → b64 batch receipt
	Results  map[string]string `json:"results,omitempty"`  // shard idx → b64 QueryResult / AbsenceProof
	CoordKey string            `json:"coord_key,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, env *Envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(env); err != nil {
		// The response is already committed; nothing sensible to do.
		_ = err
	}
}

// writeErr maps ledger errors to statuses with distinct retry
// semantics: permanent outcomes (404 missing, 410 purged, 451 occulted,
// 4xx request errors) must never be retried, while 503 marks conditions
// a replacement instance could serve (and carries Retry-After so
// well-behaved clients pace themselves).
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var coded interface{ HTTPStatus() int }
	switch {
	case errors.As(err, &coded):
		// A forwarded backend error (the router fanning out through the
		// hardened client) already carries its mapped status — 410
		// purged, 451 occulted, 403 forbidden — and must not be
		// flattened back to 500.
		status = coded.HTTPStatus()
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
	case errors.Is(err, ledger.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ledger.ErrPurged):
		// The journal existed and is permanently gone (Protocol 2):
		// a definitive, non-retryable outcome distinct from 404.
		status = http.StatusGone
	case errors.Is(err, ledger.ErrOcculted):
		// Hidden by policy, not absent: 451 tells the client the denial
		// is deliberate and retrying is pointless.
		status = http.StatusUnavailableForLegalReasons
	case errors.Is(err, ledger.ErrNotPermitted), errors.Is(err, journal.ErrBadSignature):
		status = http.StatusForbidden
	case errors.Is(err, errBodyTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, journal.ErrBadRequest), errors.Is(err, journal.ErrDecode):
		status = http.StatusBadRequest
	case errors.Is(err, tledger.ErrStale), errors.Is(err, tledger.ErrFuture):
		status = http.StatusConflict
	case errors.Is(err, ledger.ErrPresent):
		// Absence was requested for a clue that is live: a definitive
		// conflict — the right call is an existence query.
		status = http.StatusConflict
	case errors.Is(err, ledger.ErrClosed):
		// The commit pipeline is draining (shutdown); clients may retry
		// against a replacement instance.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ledger.ErrStaleCheckpoint):
		// A follower asked to prove past its verified checkpoint: the
		// journal may exist but cannot be served yet. Retryable here
		// (replication is catching up) or against the primary.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, &Envelope{Error: err.Error()})
}

// Request-body ceilings. Payloads travel base64 inside JSON, so the
// append cap allows a full 16 MiB payload plus encoding overhead;
// batches get a larger allowance; admin and proof bodies are tiny.
const (
	maxAppendBody = 24 << 20
	maxBatchBody  = 64 << 20
	maxAdminBody  = 4 << 20
)

var errBodyTooLarge = errors.New("server: request body too large")

// decodeJSONBody decodes a JSON request body bounded by limit, so a
// hostile or misconfigured client cannot make the server buffer an
// unbounded payload. Oversized bodies map to 413 via errBodyTooLarge.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: body exceeds %d bytes", errBodyTooLarge, tooBig.Limit)
		}
		return fmt.Errorf("%w: %v", journal.ErrBadRequest, err)
	}
	return nil
}

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func pathJSN(r *http.Request) (uint64, error) {
	v := r.PathValue("jsn")
	jsn, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad jsn %q", journal.ErrBadRequest, v)
	}
	return jsn, nil
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Request string `json:"request"`
	}
	if err := decodeJSONBody(w, r, maxAppendBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(body.Request)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	req, err := journal.DecodeRequest(raw)
	if err != nil {
		writeErr(w, err)
		return
	}
	exec := func() (uint64, []byte, error) {
		receipt, err := s.Ledger.Append(req)
		if err != nil {
			return 0, nil, err
		}
		wr := newWriter()
		receipt.Encode(wr)
		return receipt.JSN, wr.Bytes(), nil
	}
	if key := r.Header.Get(idempotencyKeyHeader); key != "" {
		if key != journal.RequestKey(req.Hash()) {
			writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, errIdemKeyMismatch))
			return
		}
		blob, replay, err := s.idem.dedup(r.Context(), key, exec, func(jsn uint64) error {
			return s.checkIdemReplay(jsn, req.Hash())
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		if replay {
			w.Header().Set(idempotentReplayHeader, "true")
		}
		writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(blob)})
		return
	}
	_, blob, err := exec()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(blob)})
}

// Idempotency headers. The request header carries the client-derived
// key (journal.RequestKey / journal.BatchRequestKey); the response
// header marks a deduplicated replay of a previously-committed append.
const (
	idempotencyKeyHeader   = "Idempotency-Key"
	idempotentReplayHeader = "Idempotent-Replay"
)

// checkIdemReplay cross-checks a cached dedup entry against the journal
// before its receipt is replayed: the committed record at that jsn must
// acknowledge the same signed request. A purged or occulted journal
// still replays — the commit happened; only the payload is gone.
func (s *Server) checkIdemReplay(jsn uint64, want hashutil.Digest) error {
	rec, err := s.Ledger.GetJournal(jsn)
	if errors.Is(err, ledger.ErrPurged) || errors.Is(err, ledger.ErrOcculted) {
		return nil
	}
	if err != nil {
		return err
	}
	if rec.RequestHash != want {
		return fmt.Errorf("%w: idempotency entry for jsn %d acknowledges a different request", journal.ErrBadRequest, jsn)
	}
	return nil
}

// handleAppendBatch ingests a batch of signed requests (the amortized
// write path). The response carries the batch receipt and the committed
// tx-hashes so the submitter can bind each journal to the receipt.
func (s *Server) handleAppendBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Requests []string `json:"requests"`
	}
	if err := decodeJSONBody(w, r, maxBatchBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	reqs := make([]*journal.Request, 0, len(body.Requests))
	for i, enc := range body.Requests {
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: request %d: %v", journal.ErrBadRequest, i, err))
			return
		}
		req, err := journal.DecodeRequest(raw)
		if err != nil {
			writeErr(w, err)
			return
		}
		reqs = append(reqs, req)
	}
	exec := func() (uint64, []byte, error) {
		br, txHashes, err := s.Ledger.AppendBatch(reqs)
		if err != nil {
			return 0, nil, err
		}
		wr := newWriter()
		wr.Uvarint(br.FirstJSN)
		wr.Uvarint(br.Count)
		wr.Digest(br.BatchHash)
		wr.Int64(br.Timestamp)
		sig.EncodePublicKey(wr, br.LSPPK)
		sig.EncodeSignature(wr, br.LSPSig)
		for _, d := range txHashes {
			wr.Digest(d)
		}
		return br.FirstJSN, wr.Bytes(), nil
	}
	if key := r.Header.Get(idempotencyKeyHeader); key != "" && len(reqs) > 0 {
		hashes := make([]hashutil.Digest, len(reqs))
		for i, req := range reqs {
			hashes[i] = req.Hash()
		}
		if key != journal.BatchRequestKey(hashes) {
			writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, errIdemKeyMismatch))
			return
		}
		blob, replay, err := s.idem.dedup(r.Context(), key, exec, func(jsn uint64) error {
			return s.checkIdemReplay(jsn, hashes[0])
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		if replay {
			w.Header().Set(idempotentReplayHeader, "true")
		}
		writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(blob)})
		return
	}
	_, blob, err := exec()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(blob)})
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	st, err := s.Ledger.State()
	if err != nil {
		writeErr(w, err)
		return
	}
	wr := newWriter()
	st.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{State: b64(wr.Bytes())})
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	rec, err := s.Ledger.GetJournal(jsn)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Record: b64(rec.EncodeBytes())})
}

func (s *Server) handlePayload(w http.ResponseWriter, r *http.Request) {
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	payload, err := s.Ledger.GetPayload(jsn)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Payload: b64(payload)})
}

func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	withPayload := r.URL.Query().Get("payload") == "1"
	p, err := s.Ledger.ProveExistence(jsn, withPayload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(p.EncodeBytes())})
}

// handleProofBatch serves N existence proofs sharing one SignedState
// (the amortized read path mirroring append-batch on the write side).
// The ledger enforces the per-batch item ceiling.
func (s *Server) handleProofBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		JSNs    []uint64 `json:"jsns"`
		Payload bool     `json:"payload"`
	}
	if err := decodeJSONBody(w, r, maxAdminBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	b, err := s.Ledger.ProveExistenceBatch(body.JSNs, body.Payload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(b.EncodeBytes())})
}

// handleAnchor hands out the current fam-aoa trusted anchor. A verifier
// adopts it only AFTER auditing the ledger up to the anchor's size; from
// then on anchored proofs are near-constant size (Figure 4).
func (s *Server) handleAnchor(w http.ResponseWriter, r *http.Request) {
	anchor := s.Ledger.Anchor()
	wr := newWriter()
	anchor.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(wr.Bytes())})
}

// handleProofAnchored builds an existence proof against the anchor the
// client ships in the request body (the fam-aoa regime).
func (s *Server) handleProofAnchored(w http.ResponseWriter, r *http.Request) {
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	var body struct {
		Anchor string `json:"anchor"`
	}
	if err := decodeJSONBody(w, r, maxAdminBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(body.Anchor)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	anchor, err := fam.DecodeAnchor(wire.NewReader(raw))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	withPayload := r.URL.Query().Get("payload") == "1"
	p, err := s.Ledger.ProveExistenceAnchored(jsn, anchor, withPayload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(p.EncodeBytes())})
}

func (s *Server) handleClueProof(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query()
	begin, _ := strconv.ParseUint(q.Get("begin"), 10, 64)
	end, _ := strconv.ParseUint(q.Get("end"), 10, 64)
	b, err := s.Ledger.ProveClue(name, begin, end)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(b.EncodeBytes())})
}

func (s *Server) handleClueJSNs(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimSpace(r.PathValue("name"))
	recs, err := s.Ledger.ListClue(name)
	if err != nil {
		writeErr(w, err)
		return
	}
	jsns := make([]uint64, len(recs))
	for i, rec := range recs {
		jsns[i] = rec.JSN
	}
	writeJSON(w, http.StatusOK, &Envelope{JSNs: jsns})
}

func (s *Server) handleAnchorTime(w http.ResponseWriter, r *http.Request) {
	if s.TLedger == nil {
		writeErr(w, fmt.Errorf("%w: no time notary configured", ledger.ErrNotPermitted))
		return
	}
	receipt, err := s.Ledger.AnchorTimeWith(
		s.TLedger.StampFunc(s.Ledger.URI(), s.Ledger.Clock()))
	if err != nil {
		writeErr(w, err)
		return
	}
	wr := newWriter()
	receipt.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(wr.Bytes())})
}

// handleStateProof serves a verifiable world-state read for ?key=<hex or
// plain>. Keys are passed base64 to be binary-safe.
func (s *Server) handleStateProof(w http.ResponseWriter, r *http.Request) {
	key, err := base64.StdEncoding.DecodeString(r.URL.Query().Get("key"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: key: %v", journal.ErrBadRequest, err))
		return
	}
	p, err := s.Ledger.ProveState(key)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(p.EncodeBytes())})
}

// mutationBody is the admin request shape: a descriptor plus the
// gathered multi-signatures, both as wire blobs. The server re-checks
// the prerequisites; signatures cannot be forged by the transport.
type mutationBody struct {
	Descriptor string `json:"descriptor"`
	Sigs       string `json:"sigs"`
}

func decodeMutation(w http.ResponseWriter, r *http.Request) ([]byte, *sig.MultiSig, error) {
	var body mutationBody
	if err := decodeJSONBody(w, r, maxAdminBody, &body); err != nil {
		return nil, nil, err
	}
	desc, err := base64.StdEncoding.DecodeString(body.Descriptor)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: descriptor: %v", journal.ErrBadRequest, err)
	}
	rawSigs, err := base64.StdEncoding.DecodeString(body.Sigs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: sigs: %v", journal.ErrBadRequest, err)
	}
	ms, err := sig.DecodeMultiSig(wire.NewReader(rawSigs))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: sigs: %v", journal.ErrBadRequest, err)
	}
	return desc, ms, nil
}

func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) {
	rawDesc, ms, err := decodeMutation(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	desc, err := ledger.DecodePurgeDescriptor(rawDesc)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	receipt, err := s.Ledger.Purge(desc, ms)
	if err != nil {
		writeErr(w, err)
		return
	}
	wr := newWriter()
	receipt.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(wr.Bytes())})
}

func (s *Server) handleOccult(w http.ResponseWriter, r *http.Request) {
	rawDesc, ms, err := decodeMutation(w, r)
	if err != nil {
		writeErr(w, err)
		return
	}
	desc, err := ledger.DecodeOccultDescriptor(rawDesc)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	receipt, err := s.Ledger.Occult(desc, ms)
	if err != nil {
		writeErr(w, err)
		return
	}
	wr := newWriter()
	receipt.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(wr.Bytes())})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &Envelope{
		URI:    s.Ledger.URI(),
		Size:   s.Ledger.Size(),
		Base:   s.Ledger.Base(),
		Height: s.Ledger.Height(),
		LSPKey: s.Ledger.LSPPublic().Hex(),
	})
}

// newWriter is a tiny indirection so handlers read naturally.
func newWriter() *wire.Writer { return wire.NewWriter(256) }
