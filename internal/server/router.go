// The sharded front door: a Router owns no ledger itself. It routes
// each signed request to its clue's shard over the hardened client
// (retries, idempotency keys, breaker — the backends are ordinary
// ledger services), fans batches out shard-by-shard, and serves the
// coordinator's cross-shard artifacts (global state, global proofs).
// Single-node deployments never see it; a 1-shard Router degenerates to
// a pass-through proxy.
package server

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/shard"
	"ledgerdb/internal/sig"
)

// ShardBackend is one shard's append and rich-read path as the router
// sees it. The hardened *client.Client satisfies it (SubmitRequest/
// SubmitBatch forward pre-signed requests verbatim; Query/ProveAbsence
// fetch and re-verify proof-carrying reads); the indirection exists
// because the client package's own tests stand up servers, so server
// cannot import client.
type ShardBackend interface {
	SubmitRequest(req *journal.Request) (*journal.Receipt, error)
	SubmitBatch(reqs []*journal.Request) (*ledger.BatchReceipt, []hashutil.Digest, error)
	Query(q ledger.Query) (*ledger.QueryResult, error)
	ProveAbsence(name string, prefix bool) (*ledger.AbsenceProof, error)
}

// Router fronts a sharded deployment: requests in, shard-routed appends
// out, plus the coordinator's global state and proofs. Reads that are
// shard-local (existence proofs, clue lineages, state reads) go straight
// to the owning shard's service — /v1/shard-of tells a client which.
type Router struct {
	Coord    *shard.Coordinator
	Part     *shard.Partitioner
	Backends []ShardBackend
	// replicas[i] are read-replica backends for Backends[i] (see
	// WithReplicas); nil means no fallback.
	replicas [][]ShardBackend
	mux      *http.ServeMux
}

// NewRouter wires the sharded front door. backends[i] must talk to the
// same engine the coordinator folds at slot i, or routed receipts and
// global proofs will disagree.
func NewRouter(coord *shard.Coordinator, part *shard.Partitioner, backends []ShardBackend) (*Router, error) {
	if coord.Shards() != len(backends) {
		return nil, fmt.Errorf("%w: %d backends for %d shards", shard.ErrBadShards, len(backends), coord.Shards())
	}
	rt := &Router{Coord: coord, Part: part, Backends: backends, mux: http.NewServeMux()}
	rt.mux.HandleFunc("POST /v1/append", rt.handleAppend)
	rt.mux.HandleFunc("POST /v1/append-batch", rt.handleAppendBatch)
	rt.mux.HandleFunc("GET /v1/global", rt.handleGlobal)
	rt.mux.HandleFunc("GET /v1/proof-global/{shard}/{jsn}", rt.handleProofGlobal)
	rt.mux.HandleFunc("GET /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("GET /v1/absence", rt.handleAbsence)
	rt.mux.HandleFunc("GET /v1/shard-of", rt.handleShardOf)
	rt.mux.HandleFunc("GET /v1/info", rt.handleInfo)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return rt, nil
}

// WithReplicas registers per-shard read replicas: replicas[i] front
// followers of the engine behind Backends[i]. Proof-carrying reads
// (rich queries, authenticated absence) fall back to a replica when the
// primary backend fails — the replies anchor to the replica's newest
// verified checkpoint, so the fallback trades freshness, never trust.
// Appends never fall back: replicas are apply-only, and a router that
// silently redirected writes would turn a partition into data loss.
func (rt *Router) WithReplicas(replicas [][]ShardBackend) error {
	if len(replicas) != len(rt.Backends) {
		return fmt.Errorf("%w: replica sets for %d of %d shards", shard.ErrBadShards, len(replicas), len(rt.Backends))
	}
	rt.replicas = replicas
	return nil
}

// queryShard runs a rich read against shard i, falling back to its
// replicas when the primary is unreachable. The primary's error is the
// one reported when every backend fails — it names the authoritative
// failure, not the last replica tried.
func (rt *Router) queryShard(i int, q ledger.Query) (*ledger.QueryResult, error) {
	res, err := rt.Backends[i].Query(q)
	if err == nil || rt.replicas == nil {
		return res, err
	}
	for _, rep := range rt.replicas[i] {
		if res, rerr := rep.Query(q); rerr == nil {
			return res, nil
		}
	}
	return nil, err
}

// absenceShard is queryShard for authenticated absence.
func (rt *Router) absenceShard(i int, name string, prefix bool) (*ledger.AbsenceProof, error) {
	ap, err := rt.Backends[i].ProveAbsence(name, prefix)
	if err == nil || rt.replicas == nil {
		return ap, err
	}
	for _, rep := range rt.replicas[i] {
		if ap, rerr := rep.ProveAbsence(name, prefix); rerr == nil {
			return ap, nil
		}
	}
	return nil, err
}

// ServeHTTP implements http.Handler. The router does no admission
// control of its own: each backend already sheds load, and its 429/503
// answers flow back through the forwarding client's error path.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// handleAppend decodes the signed request just enough to route it, then
// forwards it whole. The backend re-verifies π_c; the response carries
// the shard index so the submitter can later prove the record globally.
func (rt *Router) handleAppend(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Request string `json:"request"`
	}
	if err := decodeJSONBody(w, r, maxAppendBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(body.Request)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", journal.ErrBadRequest, err))
		return
	}
	req, err := journal.DecodeRequest(raw)
	if err != nil {
		writeErr(w, err)
		return
	}
	i := rt.Part.Route(req)
	receipt, err := rt.Backends[i].SubmitRequest(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	wr := newWriter()
	receipt.Encode(wr)
	writeJSON(w, http.StatusOK, &Envelope{Receipt: b64(wr.Bytes()), Shard: &i})
}

// handleAppendBatch fans a batch out by shard: requests are grouped by
// route, sub-batches submit concurrently, and the response maps shard
// index → that shard's batch receipt (same wire layout as the
// single-shard /v1/append-batch blob). Sub-batches commit independently;
// a partial failure reports the error and omits only the failed shards.
func (rt *Router) handleAppendBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Requests []string `json:"requests"`
	}
	if err := decodeJSONBody(w, r, maxBatchBody, &body); err != nil {
		writeErr(w, err)
		return
	}
	if len(body.Requests) == 0 {
		writeErr(w, fmt.Errorf("%w: empty batch", journal.ErrBadRequest))
		return
	}
	groups := make(map[int][]*journal.Request)
	for i, enc := range body.Requests {
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			writeErr(w, fmt.Errorf("%w: request %d: %v", journal.ErrBadRequest, i, err))
			return
		}
		req, err := journal.DecodeRequest(raw)
		if err != nil {
			writeErr(w, err)
			return
		}
		s := rt.Part.Route(req)
		groups[s] = append(groups[s], req)
	}

	type result struct {
		shard int
		blob  []byte
		err   error
	}
	results := make(chan result, len(groups))
	var wg sync.WaitGroup
	for s, reqs := range groups {
		wg.Add(1)
		go func(s int, reqs []*journal.Request) {
			defer wg.Done()
			br, txHashes, err := rt.Backends[s].SubmitBatch(reqs)
			if err != nil {
				results <- result{shard: s, err: err}
				return
			}
			results <- result{shard: s, blob: encodeBatchReceipt(br, txHashes)}
		}(s, reqs)
	}
	wg.Wait()
	close(results)

	receipts := make(map[string]string, len(groups))
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", res.shard, res.err)
			}
			continue
		}
		receipts[strconv.Itoa(res.shard)] = b64(res.blob)
	}
	if firstErr != nil {
		// Committed sub-batches are reported alongside the error so the
		// submitter knows exactly which journals landed.
		writeJSON(w, http.StatusBadGateway, &Envelope{Receipts: receipts, Error: firstErr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Receipts: receipts})
}

// encodeBatchReceipt mirrors handleAppendBatch's blob layout so sharded
// and single-node batch receipts decode identically client-side.
func encodeBatchReceipt(br *ledger.BatchReceipt, txHashes []hashutil.Digest) []byte {
	wr := newWriter()
	wr.Uvarint(br.FirstJSN)
	wr.Uvarint(br.Count)
	wr.Digest(br.BatchHash)
	wr.Int64(br.Timestamp)
	sig.EncodePublicKey(wr, br.LSPPK)
	sig.EncodeSignature(wr, br.LSPSig)
	for _, d := range txHashes {
		wr.Digest(d)
	}
	return wr.Bytes()
}

// handleGlobal serves the freshest coordinator-signed global state,
// folding on demand when none exists yet.
func (rt *Router) handleGlobal(w http.ResponseWriter, r *http.Request) {
	f := rt.Coord.Current()
	if f == nil {
		var err error
		if f, err = rt.Coord.Fold(); err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, &Envelope{Global: b64(f.State.EncodeBytes())})
}

// handleProofGlobal serves the full cross-shard existence proof for
// (shard, jsn): record → shard fam root → signed global root.
func (rt *Router) handleProofGlobal(w http.ResponseWriter, r *http.Request) {
	sIdx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || sIdx < 0 || sIdx >= rt.Coord.Shards() {
		writeErr(w, fmt.Errorf("%w: shard %q of %d", journal.ErrBadRequest, r.PathValue("shard"), rt.Coord.Shards()))
		return
	}
	jsn, err := pathJSN(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	withPayload := r.URL.Query().Get("payload") == "1"
	p, err := rt.Coord.ProveGlobal(sIdx, jsn, withPayload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &Envelope{Proof: b64(p.EncodeBytes())})
}

// handleQuery fans a rich read to every shard — a prefix, time range,
// or signer can match records anywhere — and replies with one
// verifiable QueryResult per shard. Each result is anchored to that
// shard's own signed state, so the client verifies them independently;
// the router adds routing, never trust.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromURL(r.URL.Query())
	if err != nil {
		writeErr(w, err)
		return
	}
	type result struct {
		shard int
		blob  []byte
		err   error
	}
	n := len(rt.Backends)
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := range rt.Backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := rt.queryShard(i, q)
			if err != nil {
				results <- result{shard: i, err: err}
				return
			}
			results <- result{shard: i, blob: res.EncodeBytes()}
		}(i)
	}
	wg.Wait()
	close(results)
	out := make(map[string]string, n)
	for res := range results {
		if res.err != nil {
			writeErr(w, fmt.Errorf("shard %d: %w", res.shard, res.err))
			return
		}
		out[strconv.Itoa(res.shard)] = b64(res.blob)
	}
	writeJSON(w, http.StatusOK, &Envelope{Results: out, Shards: n})
}

// handleAbsence serves authenticated absence through the topology: an
// exact clue routes to its owning shard (the partitioner pins where it
// WOULD live, so one shard's answer is total), while a prefix fans to
// every shard — the prefix is absent iff each shard proves it absent
// from its own clue set.
func (rt *Router) handleAbsence(w http.ResponseWriter, r *http.Request) {
	name, prefix, err := absenceFromURL(r.URL.Query())
	if err != nil {
		writeErr(w, err)
		return
	}
	if !prefix {
		i := rt.Part.ShardOfClue(name)
		ap, err := rt.absenceShard(i, name, false)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &Envelope{Result: b64(ap.EncodeBytes()), Shard: &i})
		return
	}
	n := len(rt.Backends)
	out := make(map[string]string, n)
	for i := range rt.Backends {
		ap, err := rt.absenceShard(i, name, true)
		if err != nil {
			writeErr(w, fmt.Errorf("shard %d: %w", i, err))
			return
		}
		out[strconv.Itoa(i)] = b64(ap.EncodeBytes())
	}
	writeJSON(w, http.StatusOK, &Envelope{Results: out, Shards: n})
}

// handleShardOf tells a client which shard owns a clue, so shard-local
// reads (lineage proofs, existence proofs by receipt) can go straight to
// the owning service.
func (rt *Router) handleShardOf(w http.ResponseWriter, r *http.Request) {
	clue := r.URL.Query().Get("clue")
	if clue == "" {
		writeErr(w, fmt.Errorf("%w: missing clue", journal.ErrBadRequest))
		return
	}
	i := rt.Part.ShardOfClue(clue)
	writeJSON(w, http.StatusOK, &Envelope{Shard: &i, Shards: rt.Coord.Shards()})
}

// handleInfo aggregates the topology: total journal count across shards,
// the shard count, and the coordinator key clients pin for VerifyGlobal.
func (rt *Router) handleInfo(w http.ResponseWriter, r *http.Request) {
	n := rt.Coord.Shards()
	var size uint64
	for i := 0; i < n; i++ {
		size += rt.Coord.Shard(i).Size()
	}
	writeJSON(w, http.StatusOK, &Envelope{
		URI:      rt.Coord.Shard(0).URI(),
		Size:     size,
		Shards:   n,
		CoordKey: rt.Coord.PublicKey().Hex(),
		LSPKey:   rt.Coord.Shard(0).LSPPublic().Hex(),
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, &Envelope{})
}
