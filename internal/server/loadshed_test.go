// In-package tests for the hardened HTTP surface: bounded admission
// (429 + Retry-After), per-request timeouts, health endpoints flipping
// during drain, and append idempotency replay. These live in package
// server (not server_test) to reach the testStall seam that holds
// admission slots occupied deterministically.
package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

func newHardenedServer(t *testing.T, opts Options) (*Server, *ledger.Ledger, *sig.KeyPair) {
	t.Helper()
	clock := logicalclock.New(100_000)
	lsp := sig.GenerateDeterministic("shed-lsp")
	l, err := ledger.Open(ledger.Config{
		URI:           "ledger://shed",
		FractalHeight: 4,
		BlockSize:     8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("shed-dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock.Tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return NewWithOptions(l, nil, opts), l, sig.GenerateDeterministic("shed-client")
}

func TestLoadShed429UnderSaturation(t *testing.T) {
	srv, _, _ := newHardenedServer(t, Options{MaxInFlight: 2, RetryAfter: 2 * time.Second})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv.testStall = func(r *http.Request) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/info")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Wait until both slots are held, then the third request must be
	// shed immediately with 429 + Retry-After instead of queueing.
	<-entered
	<-entered
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2", got)
	}
	// Health endpoints bypass admission and answer even at saturation.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz at saturation: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	close(release)
	wg.Wait()
	// Slots freed: admitted again.
	srv.testStall = nil
	resp, err = http.Get(ts.URL + "/v1/info")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestReadyzFlipsDuringDrainAndRequestsRefused(t *testing.T) {
	srv, _, _ := newHardenedServer(t, Options{})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.testStall = func(r *http.Request) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	go func() {
		resp, err := http.Get(ts.URL + "/v1/info")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(context.Background()) }()

	// The drain latch is set synchronously before Shutdown blocks on the
	// in-flight request, but poll briefly to avoid racing the goroutine.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	// New work is refused 503 while the in-flight request finishes.
	resp, err = http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain admission status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After")
	}
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Liveness stays green through and after drain.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPerRequestTimeout(t *testing.T) {
	srv, _, _ := newHardenedServer(t, Options{MaxInFlight: 4, RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	// Stall only the first request: the handler goroutine outlives its
	// timed-out response, so the stall hook must not be mutated later.
	var stalled atomic.Bool
	srv.testStall = func(r *http.Request) {
		if !stalled.Swap(true) {
			<-release
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("timeout response is not a JSON envelope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout 503 carries no Retry-After")
	}
	if env.Error == "" {
		t.Fatal("timeout envelope has no error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	close(release)
	// The stuck handler finishes in the background and releases its
	// slot; a fresh request succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/info")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released after timeout (last status %d)", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
}

// postAppend submits one encoded signed request with an explicit
// idempotency key, returning status, headers, and the decoded envelope.
func postAppend(t *testing.T, url string, req *journal.Request, key string) (int, http.Header, *Envelope) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{
		"request": base64.StdEncoding.EncodeToString(req.EncodeBytes()),
	})
	hreq, err := http.NewRequest("POST", url+"/v1/append", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if key != "" {
		hreq.Header.Set(idempotencyKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &env)
	return resp.StatusCode, resp.Header, &env
}

func TestIdempotentAppendReplay(t *testing.T) {
	srv, l, key := newHardenedServer(t, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := &journal.Request{LedgerURI: "ledger://shed", Type: journal.TypeNormal, Payload: []byte("once"), Nonce: 1}
	if err := req.Sign(key); err != nil {
		t.Fatal(err)
	}
	ikey := journal.RequestKey(req.Hash())

	status, hdr, env := postAppend(t, ts.URL, req, ikey)
	if status != http.StatusOK {
		t.Fatalf("first append: status %d (%s)", status, env.Error)
	}
	if hdr.Get(idempotentReplayHeader) != "" {
		t.Fatal("first append marked as replay")
	}
	first := env.Receipt

	// The retried submission (same signed request, same key) replays the
	// original receipt byte for byte and commits nothing new.
	sizeBefore := l.Size()
	status, hdr, env = postAppend(t, ts.URL, req, ikey)
	if status != http.StatusOK {
		t.Fatalf("replay append: status %d (%s)", status, env.Error)
	}
	if hdr.Get(idempotentReplayHeader) != "true" {
		t.Fatal("replay not marked")
	}
	if env.Receipt != first {
		t.Fatal("replayed receipt differs from the original")
	}
	if l.Size() != sizeBefore {
		t.Fatalf("replay committed a journal: size %d -> %d", sizeBefore, l.Size())
	}

	// A key that does not match the signed request is rejected before
	// touching the ledger.
	req2 := &journal.Request{LedgerURI: "ledger://shed", Type: journal.TypeNormal, Payload: []byte("two"), Nonce: 2}
	if err := req2.Sign(key); err != nil {
		t.Fatal(err)
	}
	status, _, env = postAppend(t, ts.URL, req2, ikey)
	if status != http.StatusBadRequest {
		t.Fatalf("mismatched key: status %d (%s)", status, env.Error)
	}
	if l.Size() != sizeBefore {
		t.Fatal("mismatched key still committed")
	}

	// With its own matching key the fresh request commits normally.
	status, _, _ = postAppend(t, ts.URL, req2, journal.RequestKey(req2.Hash()))
	if status != http.StatusOK {
		t.Fatalf("append 2: status %d", status)
	}
	if l.Size() != sizeBefore+1 {
		t.Fatalf("size = %d, want %d", l.Size(), sizeBefore+1)
	}
}

func TestIdemTableEvictionPinsGenerations(t *testing.T) {
	tb := newIdemTable(2)
	exec := func(jsn uint64) func() (uint64, []byte, error) {
		return func() (uint64, []byte, error) { return jsn, []byte(fmt.Sprintf("r%d", jsn)), nil }
	}
	noCheck := func(uint64) error { return nil }
	ctx := context.Background()
	for i := uint64(1); i <= 4; i++ {
		if _, replay, err := tb.dedup(ctx, fmt.Sprintf("k%d", i), exec(i), noCheck); err != nil || replay {
			t.Fatalf("k%d: replay=%v err=%v", i, replay, err)
		}
	}
	// k1, k2 evicted (cap 2); k3, k4 replay.
	if _, replay, _ := tb.dedup(ctx, "k4", exec(99), noCheck); !replay {
		t.Fatal("k4 not replayed")
	}
	if blob, replay, _ := tb.dedup(ctx, "k1", exec(50), noCheck); replay || string(blob) != "r50" {
		t.Fatalf("evicted k1 should re-execute: replay=%v blob=%s", replay, blob)
	}
	// A failing leader aborts; the next attempt executes afresh.
	if _, _, err := tb.dedup(ctx, "kf", func() (uint64, []byte, error) {
		return 0, nil, fmt.Errorf("boom")
	}, noCheck); err == nil {
		t.Fatal("leader failure not surfaced")
	}
	if _, replay, err := tb.dedup(ctx, "kf", exec(7), noCheck); err != nil || replay {
		t.Fatalf("post-abort: replay=%v err=%v", replay, err)
	}
}
