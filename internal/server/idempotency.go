package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ledgerdb/internal/journal"
)

// idemTable dedups append submissions by idempotency key. The client
// derives the key from the signed request hash(es) (journal.RequestKey /
// journal.BatchRequestKey), so a retry of an ambiguous lost-response
// append presents the same key and is answered with the original
// receipt instead of committing a second journal.
//
// The table holds three kinds of entries:
//   - in-flight: a leader is executing the append; concurrent duplicates
//     wait on done and replay the leader's outcome;
//   - completed: the append committed; the encoded receipt blob and the
//     committed jsn are cached for replay, cross-checked against the
//     journal before being served;
//   - aborted: removed on failure, so the next retry executes afresh.
//
// Capacity is bounded FIFO over completed entries (in-flight entries
// are never evicted): the dedup window covers the retry horizon of a
// client, not all history. A key evicted before its retry arrives
// re-executes the append — and commits a duplicate journal with the
// same request hash, which the chaos suite treats as the line never to
// cross within the window.
type idemTable struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*idemEntry
	// order holds completed entries in completion order for eviction.
	// Each slot pins the exact entry it refers to: if a key was evicted
	// and later re-executed, a stale slot must not evict the new
	// generation (which may still be in flight).
	order []idemSlot
}

type idemSlot struct {
	key string
	e   *idemEntry
}

type idemEntry struct {
	done    chan struct{} // closed when the leader finishes
	ok      bool          // true: receipt is valid for replay
	jsn     uint64        // first committed jsn (cross-checked on replay)
	receipt []byte        // encoded receipt blob as originally returned
}

func newIdemTable(capacity int) *idemTable {
	if capacity <= 0 {
		capacity = 4096
	}
	return &idemTable{cap: capacity, entries: make(map[string]*idemEntry)}
}

// begin claims key. The second result is true when the caller is the
// leader and must execute the append, then call finish or abort.
// Non-leaders receive the existing entry to wait on.
func (t *idemTable) begin(key string) (*idemEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	t.entries[key] = e
	return e, true
}

// finish publishes a committed append's outcome and closes the entry.
func (t *idemTable) finish(key string, jsn uint64, receipt []byte) {
	t.mu.Lock()
	e := t.entries[key]
	e.ok = true
	e.jsn = jsn
	e.receipt = receipt
	t.order = append(t.order, idemSlot{key, e})
	for len(t.order) > t.cap {
		s := t.order[0]
		t.order = t.order[1:]
		if t.entries[s.key] == s.e {
			delete(t.entries, s.key)
		}
	}
	t.mu.Unlock()
	close(e.done)
}

// abort removes a failed attempt so the next retry executes afresh.
func (t *idemTable) abort(key string) {
	t.mu.Lock()
	e := t.entries[key]
	delete(t.entries, key)
	t.mu.Unlock()
	close(e.done)
}

// errIdemKeyMismatch rejects a submission whose advertised key does not
// match the signed request content — either a client bug or an attempt
// to replay someone else's receipt slot.
var errIdemKeyMismatch = errors.New("idempotency key does not match request")

// dedup wraps an append execution with key-based deduplication. exec
// runs at most once per live key; replayed receipts are validated by
// check (which cross-checks the cached jsn against the journal) before
// being served. The bool result reports whether the response is a
// replay.
func (t *idemTable) dedup(ctx context.Context, key string, exec func() (uint64, []byte, error), check func(jsn uint64) error) ([]byte, bool, error) {
	for {
		e, leader := t.begin(key)
		if leader {
			jsn, receipt, err := exec()
			if err != nil {
				t.abort(key)
				return nil, false, err
			}
			t.finish(key, jsn, receipt)
			return receipt, false, nil
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, false, fmt.Errorf("%w: %v", journal.ErrBadRequest, ctx.Err())
		}
		if !e.ok {
			// The leader failed; race to become the new leader.
			continue
		}
		if err := check(e.jsn); err != nil {
			return nil, false, err
		}
		return e.receipt, true, nil
	}
}
