// Load shedding, per-request timeouts, health endpoints, and graceful
// drain for the HTTP surface. The design rule is the same as the commit
// pipeline's: refuse early and loudly (429/503 with Retry-After) rather
// than queue unboundedly, and never lose work that was already admitted.
package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Options tunes the hardened HTTP surface. The zero value keeps every
// mechanism off except idempotency dedup (which is always on, since the
// client always sends keys on appends).
type Options struct {
	// MaxInFlight bounds concurrently-served requests; excess load is
	// answered 429 + Retry-After immediately. Zero means unlimited.
	MaxInFlight int
	// RequestTimeout bounds each request's handling; a request that
	// exceeds it is answered 503 + Retry-After while the stuck handler
	// finishes (and keeps holding its admission slot) in the background.
	// Zero means no per-request timeout.
	RequestTimeout time.Duration
	// RetryAfter is the hint advertised on shed (429) and drain (503)
	// responses. Zero means 1s.
	RetryAfter time.Duration
	// IdempotencyCapacity bounds the append dedup window (entries).
	// Zero means 4096.
	IdempotencyCapacity int
}

func (o Options) retryAfterSecs() string {
	ra := o.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	secs := int(ra / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// gate is the admission controller: a bounded in-flight counter plus a
// drain latch. It deliberately avoids sync.WaitGroup (Add after Wait
// races); the waiter channel is re-armed under the same mutex that
// counts admissions.
type gate struct {
	mu       sync.Mutex
	max      int // 0 = unlimited
	inflight int
	draining bool
	waiter   chan struct{} // closed when inflight reaches 0 while draining
}

type admitResult int

const (
	admitOK admitResult = iota
	admitShed
	admitDraining
)

func (g *gate) enter() admitResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return admitDraining
	}
	if g.max > 0 && g.inflight >= g.max {
		return admitShed
	}
	g.inflight++
	return admitOK
}

func (g *gate) leave() {
	g.mu.Lock()
	g.inflight--
	var w chan struct{}
	if g.inflight == 0 && g.waiter != nil {
		w = g.waiter
		g.waiter = nil
	}
	g.mu.Unlock()
	if w != nil {
		close(w)
	}
}

// drain stops admissions and waits for in-flight requests to finish
// (or ctx to expire). Idempotent.
func (g *gate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.waiter == nil {
		g.waiter = make(chan struct{})
	}
	w := g.waiter
	g.mu.Unlock()
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Shutdown drains the HTTP surface: new requests are refused with 503 +
// Retry-After, in-flight requests (including any still holding slots
// past their response timeout) run to completion, then Shutdown
// returns. It does NOT close the ledger — the caller closes the stack
// afterwards, so every admitted append's group is committed before the
// ledger shuts: stop accepting, finish in-flight, then close.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.gate.drain(ctx)
}

// ServeHTTP implements http.Handler: health endpoints bypass admission,
// everything else passes the gate and (when configured) the per-request
// timeout wrapper.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		s.handleHealthz(w, r)
		return
	case "/readyz":
		s.handleReadyz(w, r)
		return
	}
	switch s.gate.enter() {
	case admitShed:
		w.Header().Set("Retry-After", s.opts.retryAfterSecs())
		writeJSON(w, http.StatusTooManyRequests, &Envelope{Error: "server: over capacity"})
		return
	case admitDraining:
		w.Header().Set("Retry-After", s.opts.retryAfterSecs())
		writeJSON(w, http.StatusServiceUnavailable, &Envelope{Error: "server: draining"})
		return
	}
	if s.opts.RequestTimeout <= 0 {
		defer s.gate.leave()
		s.serveAdmitted(w, r)
		return
	}
	s.serveWithTimeout(w, r)
}

// serveAdmitted runs the mux (plus the test-only stall hook) for an
// admitted request.
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request) {
	if s.testStall != nil {
		s.testStall(r)
	}
	s.mux.ServeHTTP(w, r)
}

// serveWithTimeout is an http.TimeoutHandler-style wrapper that answers
// a JSON 503 + Retry-After when the handler overruns, instead of the
// stock plain-text 503. The handler keeps running (and keeps its
// admission slot) until it actually finishes, so a timeout cannot be
// used to multiply server load; its buffered response is discarded.
func (s *Server) serveWithTimeout(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	rec := &bufferedResponse{header: make(http.Header)}
	done := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer s.gate.leave()
		defer close(done)
		defer func() {
			if p := recover(); p != nil {
				panicked <- p
			}
		}()
		s.serveAdmitted(rec, r.WithContext(ctx))
	}()
	select {
	case <-done:
		select {
		case p := <-panicked:
			panic(p)
		default:
		}
		rec.copyTo(w)
	case <-ctx.Done():
		w.Header().Set("Retry-After", s.opts.retryAfterSecs())
		writeJSON(w, http.StatusServiceUnavailable, &Envelope{Error: "server: request timed out"})
	}
}

// bufferedResponse records a handler's response so it can be replayed
// or discarded after the timeout race is decided.
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}
func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	b.body = append(b.body, p...)
	return len(p), nil
}

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(b.body)
}

// handleHealthz is liveness: the process is up and serving. The reply
// carries the replication watermark fields (see Envelope) so operators
// see staleness without a separate endpoint.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health(&Envelope{}))
}

// handleReadyz is readiness: false once the server starts draining (or
// the ledger is closed), so load balancers stop routing new work here
// while in-flight requests finish. A partitioned follower stays ready —
// serving checkpoint-anchored reads while degraded is the point — and
// reports its honest staleness via Jsn/Watermark.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.gate.isDraining() {
		w.Header().Set("Retry-After", s.opts.retryAfterSecs())
		writeJSON(w, http.StatusServiceUnavailable, s.health(&Envelope{Error: "server: draining"}))
		return
	}
	writeJSON(w, http.StatusOK, s.health(&Envelope{}))
}
