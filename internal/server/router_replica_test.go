package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/index"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/shard"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

var errBackendDown = errors.New("backend down")

// stubBackend serves a real ledger and index in-process, with a switch
// that makes every call fail — a primary on the wrong side of a
// partition, as the router sees it.
type stubBackend struct {
	led  *ledger.Ledger
	ix   *index.Index
	down bool
}

func (b *stubBackend) SubmitRequest(req *journal.Request) (*journal.Receipt, error) {
	if b.down {
		return nil, errBackendDown
	}
	return b.led.Append(req)
}

func (b *stubBackend) SubmitBatch([]*journal.Request) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	return nil, nil, errBackendDown
}

func (b *stubBackend) Query(q ledger.Query) (*ledger.QueryResult, error) {
	if b.down {
		return nil, errBackendDown
	}
	if err := b.ix.Sync(); err != nil {
		return nil, err
	}
	return b.ix.Query(q)
}

func (b *stubBackend) ProveAbsence(name string, prefix bool) (*ledger.AbsenceProof, error) {
	if b.down {
		return nil, errBackendDown
	}
	return b.led.ProveAbsence(name, prefix)
}

// newRouterPair builds a 1-shard router whose primary backend can be
// partitioned away, plus a replica backend over the same engine (the
// fallback under test is the routing, not the replication — the replica
// protocol itself is covered by internal/replica).
func newRouterPair(t *testing.T) (*Router, *stubBackend, *stubBackend, *sig.KeyPair) {
	t.Helper()
	const uri = "ledger://router-replica"
	clock := logicalclock.New(1000)
	lsp := sig.GenerateDeterministic("router/lsp")
	dba := sig.GenerateDeterministic("router/dba")
	cli := sig.GenerateDeterministic("router/client")
	coordKey := sig.GenerateDeterministic("router/coord")
	led, err := ledger.Open(ledger.Config{
		URI:           uri,
		FractalHeight: 4,
		BlockSize:     4,
		Clock:         clock.Tick,
		LSP:           lsp,
		DBA:           dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	ix, err := index.Open(led, streamfs.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range []string{"one", "two", "three"} {
		req := &journal.Request{
			LedgerURI: uri,
			Type:      journal.TypeNormal,
			Clues:     []string{"k"},
			Payload:   []byte(body),
			Nonce:     uint64(i + 1),
		}
		if err := req.Sign(cli); err != nil {
			t.Fatal(err)
		}
		if _, err := led.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	part, err := shard.NewPartitioner(1)
	if err != nil {
		t.Fatal(err)
	}
	coord := shard.NewCoordinator(uri, []*ledger.Ledger{led}, coordKey, clock.Tick)
	primary := &stubBackend{led: led, ix: ix}
	rt, err := NewRouter(coord, part, []ShardBackend{primary})
	if err != nil {
		t.Fatal(err)
	}
	replica := &stubBackend{led: led, ix: ix}
	if err := rt.WithReplicas([][]ShardBackend{{replica}}); err != nil {
		t.Fatal(err)
	}
	return rt, primary, replica, lsp
}

func routerGet(t *testing.T, rt *Router, path string) (int, *Envelope) {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", path, rec.Body.Bytes(), err)
	}
	return rec.Code, &env
}

func TestRouterReadFallbackToReplica(t *testing.T) {
	rt, primary, _, lsp := newRouterPair(t)

	// Healthy: the primary answers.
	code, env := routerGet(t, rt, "/v1/query?kind=prefix&prefix=k")
	if code != http.StatusOK || env.Results["0"] == "" {
		t.Fatalf("healthy query: %d %+v", code, env)
	}

	// Partitioned primary: the same read is served by the replica, and
	// the proof-carrying reply still verifies against the LSP key.
	primary.down = true
	code, env = routerGet(t, rt, "/v1/query?kind=prefix&prefix=k")
	if code != http.StatusOK {
		t.Fatalf("fallback query: %d %+v", code, env)
	}
	raw, err := base64.StdEncoding.DecodeString(env.Results["0"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := ledger.DecodeQueryResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	q := ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "k"}
	recs, err := ledger.VerifyQueryResult(lsp.Public(), q, res)
	if err != nil {
		t.Fatalf("fallback result verification: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("fallback records = %d", len(recs))
	}

	// Absence falls back the same way.
	code, env = routerGet(t, rt, "/v1/absence?clue=missing")
	if code != http.StatusOK || env.Result == "" {
		t.Fatalf("fallback absence: %d %+v", code, env)
	}
}

func TestRouterAppendsNeverFallBack(t *testing.T) {
	rt, primary, _, _ := newRouterPair(t)
	primary.down = true

	cli := sig.GenerateDeterministic("router/client")
	req := &journal.Request{
		LedgerURI: "ledger://router-replica",
		Type:      journal.TypeNormal,
		Clues:     []string{"k"},
		Payload:   []byte("write"),
		Nonce:     99,
	}
	if err := req.Sign(cli); err != nil {
		t.Fatal(err)
	}
	body := `{"request":"` + base64.StdEncoding.EncodeToString(req.EncodeBytes()) + `"}`
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/append", strings.NewReader(body)))
	if rec.Code == http.StatusOK {
		t.Fatalf("append succeeded through a replica: %d %s", rec.Code, rec.Body.Bytes())
	}
}

func TestRouterWithReplicasValidates(t *testing.T) {
	rt, _, _, _ := newRouterPair(t)
	if err := rt.WithReplicas(nil); err == nil {
		t.Fatal("WithReplicas(nil) accepted for a 1-shard router")
	}
	if err := rt.WithReplicas(make([][]ShardBackend, 2)); err == nil {
		t.Fatal("WithReplicas with 2 sets accepted for 1 shard")
	}
}

// TestRouterNoReplicasReportsPrimaryError pins the no-fallback path: the
// primary's own error surfaces, not a nil-slice panic.
func TestRouterNoReplicasReportsPrimaryError(t *testing.T) {
	rt, primary, _, _ := newRouterPair(t)
	rt.replicas = nil
	primary.down = true
	code, env := routerGet(t, rt, "/v1/query?kind=prefix&prefix=k")
	if code == http.StatusOK || env.Error == "" {
		t.Fatalf("no-replica query: %d %+v", code, env)
	}
}
