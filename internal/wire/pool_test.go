package wire

import (
	"bytes"
	"testing"
)

func TestWriterPoolRoundTrip(t *testing.T) {
	w := GetWriter()
	w.Uint64(42)
	w.WriteBytes([]byte("hello"))
	got := append([]byte(nil), w.Bytes()...)
	PutWriter(w)

	ref := NewWriter(64)
	ref.Uint64(42)
	ref.WriteBytes([]byte("hello"))
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("pooled writer encoding differs: %x vs %x", got, ref.Bytes())
	}

	// A recycled writer must come back empty even if the previous user
	// forgot to Reset.
	w2 := GetWriter()
	if w2.Len() != 0 {
		t.Fatalf("recycled writer has %d leftover bytes", w2.Len())
	}
	PutWriter(w2)
}

func TestWriterPoolDropsOversized(t *testing.T) {
	w := GetWriter()
	w.Raw(make([]byte, maxPooledCap+1))
	if cap(w.buf) <= maxPooledCap {
		t.Fatalf("test setup: buffer did not grow past the cap")
	}
	PutWriter(w) // must not retain it
	w2 := GetWriter()
	if cap(w2.buf) > maxPooledCap {
		t.Fatalf("pool retained an oversized %d-byte buffer", cap(w2.buf))
	}
	PutWriter(w2)
}

func TestPutWriterNilIsNoop(t *testing.T) {
	PutWriter(nil)
}

func TestPooledWriterSteadyStateDoesNotAllocate(t *testing.T) {
	var d [32]byte
	n := testing.AllocsPerRun(200, func() {
		w := GetWriter()
		w.Uint64(7)
		w.Uint32(9)
		w.WriteBytes(d[:])
		_ = w.Bytes()
		PutWriter(w)
	})
	if n != 0 {
		t.Fatalf("pooled encode allocates %.1f times per op, want 0", n)
	}
}
