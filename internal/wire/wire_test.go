package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
)

func TestRoundTripAllTypes(t *testing.T) {
	d := hashutil.Leaf([]byte("digest"))
	w := NewWriter(0)
	w.Uint8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(math.MaxUint64)
	w.Int64(-42)
	w.Uvarint(300)
	w.WriteBytes([]byte("payload"))
	w.String("string")
	w.Digest(d)
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Fatalf("Uint8 = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Fatalf("Uint16 = %x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Fatalf("Uint64 = %x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.ReadBytes(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("ReadBytes = %q", got)
	}
	if got := r.String(); got != "string" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Digest(); got != d {
		t.Fatalf("Digest = %s", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	w := NewWriter(0)
	w.Uint64(7)
	w.WriteBytes([]byte("abcdef"))
	enc := w.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		r.Uint64()
		r.ReadBytes()
		if r.Err() == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestTrailingDetected(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(1)
	w.Uint8(2)
	r := NewReader(w.Bytes())
	r.Uint8()
	err := r.Finish()
	if err == nil || !errors.Is(err, ErrTrailing) {
		t.Fatalf("Finish = %v, want ErrTrailing", err)
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(uint64(MaxBytesLen) + 1)
	r := NewReader(w.Bytes())
	if b := r.ReadBytes(); b != nil {
		t.Fatal("ReadBytes returned data for hostile length")
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(nil)
	r.Uint64() // fails
	first := r.Err()
	r.Uint8()
	r.ReadBytes()
	if r.Err() != first {
		t.Fatal("first error was not sticky")
	}
}

func TestBytesCopyIndependence(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte("mutable"))
	enc := append([]byte(nil), w.Bytes()...)
	r := NewReader(enc)
	got := r.BytesCopy()
	enc[len(enc)-1] ^= 0xFF
	if string(got) != "mutable" {
		t.Fatalf("BytesCopy aliased the input buffer: %q", got)
	}
}

func TestQuickUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		w.Uvarint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		w := NewWriter(0)
		w.WriteBytes(b)
		r := NewReader(w.Bytes())
		got := r.ReadBytes()
		return bytes.Equal(got, b) && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	w.Uint8(9)
	if len(w.Bytes()) != 1 || w.Bytes()[0] != 9 {
		t.Fatal("write after reset failed")
	}
}
