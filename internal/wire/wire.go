// Package wire implements the deterministic binary encoding used for every
// persisted or hashed object in the repository.
//
// Ledger digests must be reproducible across processes and years, so the
// encoding is fully specified and has no map iteration, floating point, or
// reflection anywhere: writers append big-endian fixed integers, unsigned
// varints, and length-prefixed byte strings; readers consume the same and
// fail loudly on truncation or trailing garbage.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"ledgerdb/internal/hashutil"
)

// Encoding errors.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrOverflow  = errors.New("wire: length overflows limit")
	ErrTrailing  = errors.New("wire: trailing bytes after decode")
)

// MaxBytesLen bounds a single length-prefixed byte string (64 MiB). It
// protects decoders from hostile length prefixes.
const MaxBytesLen = 64 << 20

// Writer accumulates a deterministic encoding. The zero value is ready to
// use. Writers never fail; all validation happens on the read side.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity pre-allocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// writerPool backs GetWriter/PutWriter. New writers start with a 512-byte
// buffer, which covers every hot-path object (signed requests, journal
// records, receipts) without growing.
var writerPool = sync.Pool{New: func() any {
	return &Writer{buf: make([]byte, 0, 512)}
}}

// maxPooledCap bounds the buffers the pool retains. A writer that grew
// past this (e.g. encoding a large payload) is dropped on PutWriter so a
// one-off giant record can't pin memory for the life of the process.
const maxPooledCap = 64 << 10

// GetWriter returns a reset writer from a process-wide pool. Callers must
// hand it back with PutWriter once the encoded bytes are no longer needed;
// see Bytes for the ownership rule.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a writer to the pool. The writer (and any slice
// previously obtained from its Bytes) must not be used afterwards.
func PutWriter(w *Writer) {
	if w == nil || cap(w.buf) > maxPooledCap {
		return
	}
	writerPool.Put(w)
}

// Bytes returns the encoded bytes. The slice aliases the writer's internal
// buffer: it is valid only until the next Reset, further writes, or
// PutWriter. Callers that retain the encoding (stream frames already copy;
// receipts and proofs must too) copy it before releasing the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends 0x01 or 0x00.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Uint16 appends a big-endian 16-bit integer.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint32 appends a big-endian 32-bit integer.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Uint64 appends a big-endian 64-bit integer.
func (w *Writer) Uint64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Int64 appends a big-endian two's-complement 64-bit integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Bytes appends a uvarint length prefix followed by the raw bytes.
func (w *Writer) WriteBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Digest appends a fixed 32-byte digest.
func (w *Writer) Digest(d hashutil.Digest) { w.buf = append(w.buf, d[:]...) }

// Raw appends bytes verbatim with no prefix. Use only for fixed-width
// fields whose length is part of the format.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// DigestSlice appends a uvarint count followed by that many fixed-width
// digests. Cross-shard proof segments and frontier lists use it.
func (w *Writer) DigestSlice(ds []hashutil.Digest) {
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.Digest(d)
	}
}

// Reader consumes a deterministic encoding produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b. The reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or bytes remain unread.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads a single byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a big-endian 16-bit integer.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian 32-bit integer.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian 64-bit integer.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a big-endian two's-complement 64-bit integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// ReadBytes reads a length-prefixed byte string. The returned slice
// aliases the reader's buffer; callers that retain it must copy.
func (r *Reader) ReadBytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen || n > math.MaxInt32 {
		r.fail(fmt.Errorf("%w: byte string of %d", ErrOverflow, n))
		return nil
	}
	return r.take(int(n))
}

// BytesCopy reads a length-prefixed byte string into fresh storage.
func (r *Reader) BytesCopy() []byte {
	b := r.ReadBytes()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string { return string(r.ReadBytes()) }

// Digest reads a fixed 32-byte digest.
func (r *Reader) Digest() hashutil.Digest {
	var d hashutil.Digest
	b := r.take(hashutil.Size)
	if b != nil {
		copy(d[:], b)
	}
	return d
}

// Raw reads n bytes verbatim.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// DigestSlice reads a counted digest list written by Writer.DigestSlice,
// rejecting counts above max (decoder hardening against hostile inputs).
func (r *Reader) DigestSlice(max uint64) []hashutil.Digest {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail(fmt.Errorf("%w: digest list of %d (max %d)", ErrOverflow, n, max))
		return nil
	}
	out := make([]hashutil.Digest, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Digest())
		if r.err != nil {
			return nil
		}
	}
	return out
}
