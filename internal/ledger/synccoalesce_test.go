package ledger

import (
	"fmt"
	"sync/atomic"
	"testing"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// syncCountingStore wraps a Store and counts every Stream.Sync call, so
// tests can measure the fsync schedule (not just its effects).
type syncCountingStore struct {
	inner streamfs.Store
	syncs atomic.Int64
}

func (s *syncCountingStore) Stream(name string) (streamfs.Stream, error) {
	st, err := s.inner.Stream(name)
	if err != nil {
		return nil, err
	}
	return &syncCountingStream{Stream: st, counter: &s.syncs}, nil
}

func (s *syncCountingStore) Streams() ([]string, error) { return s.inner.Streams() }
func (s *syncCountingStore) Close() error               { return s.inner.Close() }

type syncCountingStream struct {
	streamfs.Stream
	counter *atomic.Int64
}

func (s *syncCountingStream) Sync() error {
	s.counter.Add(1)
	return s.Stream.Sync()
}

// runBatchCountingSyncs opens a ledger over a counting store, appends one
// AppendBatch of exactly blocks×BlockSize records, and returns how many
// Stream.Sync calls the batch itself cost (genesis excluded).
func runBatchCountingSyncs(t *testing.T, pipelined bool, blocks int) int64 {
	t.Helper()
	const blockSize = 4
	store := &syncCountingStore{inner: streamfs.NewMemory()}
	lsp := sig.GenerateDeterministic("lsp")
	client := sig.GenerateDeterministic("client")
	var clk atomic.Int64
	cfg := Config{
		URI:           "ledger://sync-count",
		FractalHeight: 3,
		BlockSize:     blockSize,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("dba").Public(),
		Store:         store,
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         func() int64 { return clk.Add(1) },
	}
	if pipelined {
		cfg.PipelineDepth = 8
	}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	reqs := make([]*journal.Request, blocks*blockSize)
	for i := range reqs {
		reqs[i] = &journal.Request{
			LedgerURI: "ledger://sync-count",
			Type:      journal.TypeNormal,
			Payload:   []byte(fmt.Sprintf("sync-count-%d", i)),
			Nonce:     uint64(i + 1),
		}
		if err := reqs[i].Sign(client); err != nil {
			t.Fatal(err)
		}
	}
	before := store.syncs.Load()
	br, txHashes, err := l.AppendBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Verify(lsp.Public(), txHashes); err != nil {
		t.Fatal(err)
	}
	return store.syncs.Load() - before
}

// TestGroupFsyncCoalescing proves the coalesced sync schedule: a batch
// spanning 4 block cuts is one commit unit, hence one pipeline group,
// hence exactly ONE commit-order sync pass (4 stream Syncs) instead of
// the serial path's one pass per cut (16). The batch is deterministic —
// a single commitUnit is always drained as a single group — so exact
// counts, not inequalities, are asserted.
func TestGroupFsyncCoalescing(t *testing.T) {
	const blocks = 4
	serial := runBatchCountingSyncs(t, false, blocks)
	pipelined := runBatchCountingSyncs(t, true, blocks)

	// Serial: each of the 4 cuts syncs survival→journals→digests→blocks.
	if want := int64(blocks * 4); serial != want {
		t.Fatalf("serial batch across %d cuts: %d stream syncs, want %d", blocks, serial, want)
	}
	// Pipelined: the whole group defers to one commit-order pass.
	if want := int64(4); pipelined != want {
		t.Fatalf("pipelined batch across %d cuts: %d stream syncs, want %d (one coalesced pass)", blocks, pipelined, want)
	}
}

// TestCoalescedSyncStillCoversSyncEvery asserts the SyncEvery contract
// under coalescing: a group that crosses the SyncEvery threshold without
// cutting a block still gets its journal+digest flush at the group end.
func TestCoalescedSyncStillCoversSyncEvery(t *testing.T) {
	store := &syncCountingStore{inner: streamfs.NewMemory()}
	lsp := sig.GenerateDeterministic("lsp")
	client := sig.GenerateDeterministic("client")
	var clk atomic.Int64
	l, err := Open(Config{
		URI:           "ledger://sync-every",
		FractalHeight: 3,
		BlockSize:     1024, // no block cut in this test
		SyncEvery:     2,
		PipelineDepth: 8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("dba").Public(),
		Store:         store,
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         func() int64 { return clk.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	reqs := make([]*journal.Request, 6)
	for i := range reqs {
		reqs[i] = &journal.Request{
			LedgerURI: "ledger://sync-every",
			Type:      journal.TypeNormal,
			Payload:   []byte(fmt.Sprintf("se-%d", i)),
			Nonce:     uint64(i + 1),
		}
		if err := reqs[i].Sign(client); err != nil {
			t.Fatal(err)
		}
	}
	before := store.syncs.Load()
	if _, _, err := l.AppendBatch(reqs); err != nil {
		t.Fatal(err)
	}
	got := store.syncs.Load() - before
	// 6 records at SyncEvery=2 used to flush 3× (journals+digests each);
	// coalesced they flush once at the group end: exactly 2 stream syncs.
	if got != 2 {
		t.Fatalf("SyncEvery group flush: %d stream syncs, want 2", got)
	}
}
