package ledger

import (
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// BlockHeader is the per-block LedgerInfo of Figure 2: it snapshots the
// journal accumulator (fam) root, the CM-Tree1 clue root, and the
// world-state root at the block boundary, and chains to the previous
// block by hash.
type BlockHeader struct {
	Height      uint64
	Prev        hashutil.Digest
	FirstJSN    uint64
	Count       uint64
	Timestamp   int64
	JournalRoot hashutil.Digest // fam root after the block's last journal
	ClueRoot    hashutil.Digest // CM-Tree1 root
	StateRoot   hashutil.Digest // world-state MPT root
}

// Encode serializes the header for the block stream and for hashing.
func (h *BlockHeader) Encode(w *wire.Writer) {
	w.String("ledgerdb/block/v1")
	w.Uvarint(h.Height)
	w.Digest(h.Prev)
	w.Uvarint(h.FirstJSN)
	w.Uvarint(h.Count)
	w.Int64(h.Timestamp)
	w.Digest(h.JournalRoot)
	w.Digest(h.ClueRoot)
	w.Digest(h.StateRoot)
}

// EncodeBytes is Encode into a fresh buffer.
func (h *BlockHeader) EncodeBytes() []byte {
	w := wire.NewWriter(160)
	h.Encode(w)
	return w.Bytes()
}

// Hash returns the block-hash.
func (h *BlockHeader) Hash() hashutil.Digest { return hashutil.Block(h.EncodeBytes()) }

// DecodeBlockHeader parses a block-stream record.
func DecodeBlockHeader(b []byte) (*BlockHeader, error) {
	r := wire.NewReader(b)
	if v := r.String(); v != "ledgerdb/block/v1" {
		return nil, fmt.Errorf("%w: bad block version %q", journal.ErrDecode, v)
	}
	h := &BlockHeader{
		Height:      r.Uvarint(),
		Prev:        r.Digest(),
		FirstJSN:    r.Uvarint(),
		Count:       r.Uvarint(),
		Timestamp:   r.Int64(),
		JournalRoot: r.Digest(),
		ClueRoot:    r.Digest(),
		StateRoot:   r.Digest(),
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return h, nil
}

// SignedState is the LSP-signed live LedgerInfo handed to clients as the
// trusted datum for verification (the role QLDB's "digest" plays, but
// covering all three accumulators).
type SignedState struct {
	URI         string
	JSN         uint64 // journals committed (next jsn)
	JournalRoot hashutil.Digest
	ClueRoot    hashutil.Digest
	StateRoot   hashutil.Digest
	ClueCount   uint64          // live clue names committed in ClueSetRoot
	ClueSetRoot hashutil.Digest // sorted clue-set (absence tree) root
	Timestamp   int64
	LSPPK       sig.PublicKey
	LSPSig      sig.Signature
}

func (s *SignedState) signedDigest() hashutil.Digest {
	w := wire.NewWriter(224)
	w.String("ledgerdb/state/v2")
	w.String(s.URI)
	w.Uvarint(s.JSN)
	w.Digest(s.JournalRoot)
	w.Digest(s.ClueRoot)
	w.Digest(s.StateRoot)
	w.Uvarint(s.ClueCount)
	w.Digest(s.ClueSetRoot)
	w.Int64(s.Timestamp)
	sig.EncodePublicKey(w, s.LSPPK)
	return hashutil.Sum(w.Bytes())
}

// Digest returns the state digest submitted to the TSA / T-Ledger for
// when verification: it binds every accumulator root at this instant.
func (s *SignedState) Digest() hashutil.Digest { return s.signedDigest() }

func (s *SignedState) sign(kp *sig.KeyPair) error {
	s.LSPPK = kp.Public()
	sg, err := kp.Sign(s.signedDigest())
	if err != nil {
		return err
	}
	s.LSPSig = sg
	return nil
}

// Verify checks the LSP signature on the state.
func (s *SignedState) Verify(lsp sig.PublicKey) error {
	if s.LSPPK != lsp {
		return fmt.Errorf("%w: state signed by %s, want %s", journal.ErrBadSignature, s.LSPPK, lsp)
	}
	if err := sig.Verify(s.LSPPK, s.signedDigest(), s.LSPSig); err != nil {
		return fmt.Errorf("%w: state: %v", journal.ErrBadSignature, err)
	}
	return nil
}

// Encode serializes the signed state.
func (s *SignedState) Encode(w *wire.Writer) {
	w.String(s.URI)
	w.Uvarint(s.JSN)
	w.Digest(s.JournalRoot)
	w.Digest(s.ClueRoot)
	w.Digest(s.StateRoot)
	w.Uvarint(s.ClueCount)
	w.Digest(s.ClueSetRoot)
	w.Int64(s.Timestamp)
	sig.EncodePublicKey(w, s.LSPPK)
	sig.EncodeSignature(w, s.LSPSig)
}

// DecodeSignedState parses a signed state.
func DecodeSignedState(r *wire.Reader) (*SignedState, error) {
	s := &SignedState{
		URI:         r.String(),
		JSN:         r.Uvarint(),
		JournalRoot: r.Digest(),
		ClueRoot:    r.Digest(),
		StateRoot:   r.Digest(),
		ClueCount:   r.Uvarint(),
		ClueSetRoot: r.Digest(),
		Timestamp:   r.Int64(),
		LSPPK:       sig.DecodePublicKey(r),
		LSPSig:      sig.DecodeSignature(r),
	}
	return s, r.Err()
}
