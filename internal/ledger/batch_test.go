package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
)

func batchOf(t testing.TB, e *testEnv, n int) []*journal.Request {
	t.Helper()
	reqs := make([]*journal.Request, n)
	for i := range reqs {
		reqs[i] = e.request(t, fmt.Sprintf("batch-doc-%d", i), "batch-clue")
	}
	return reqs
}

func TestAppendBatchCommitsAll(t *testing.T) {
	e := newEnv(t, nil)
	br, txHashes, err := e.ledger.AppendBatch(batchOf(t, e, 25))
	if err != nil {
		t.Fatal(err)
	}
	if br.FirstJSN != 1 || br.Count != 25 || len(txHashes) != 25 {
		t.Fatalf("receipt: %+v", br)
	}
	if err := br.Verify(e.lsp.Public(), txHashes); err != nil {
		t.Fatalf("batch receipt: %v", err)
	}
	if e.ledger.Size() != 26 {
		t.Fatalf("size = %d", e.ledger.Size())
	}
	// Every journal in the batch verifies individually.
	for jsn := br.FirstJSN; jsn < br.FirstJSN+br.Count; jsn++ {
		p, err := e.ledger.ProveExistence(jsn, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
			t.Fatalf("jsn %d: %v", jsn, err)
		}
	}
	// The clue lineage covers the whole batch.
	if err := e.ledger.VerifyClueServer("batch-clue"); err != nil {
		t.Fatal(err)
	}
	recs, _ := e.ledger.ListClue("batch-clue")
	if len(recs) != 25 {
		t.Fatalf("lineage = %d", len(recs))
	}
}

func TestAppendBatchAllOrNothing(t *testing.T) {
	e := newEnv(t, nil)
	reqs := batchOf(t, e, 10)
	reqs[7].Payload = []byte("tampered-in-flight") // breaks π_c
	_, _, err := e.ledger.AppendBatch(reqs)
	if !errors.Is(err, journal.ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
	if e.ledger.Size() != 1 {
		t.Fatalf("partial batch committed: size = %d", e.ledger.Size())
	}
}

func TestAppendBatchRejectsEmptyAndPrivileged(t *testing.T) {
	e := newEnv(t, nil)
	if _, _, err := e.ledger.AppendBatch(nil); !errors.Is(err, journal.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
	req := e.request(t, "x")
	req.Type = journal.TypeTime
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ledger.AppendBatch([]*journal.Request{req}); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestBatchReceiptDetectsTampering(t *testing.T) {
	e := newEnv(t, nil)
	br, txHashes, err := e.ledger.AppendBatch(batchOf(t, e, 5))
	if err != nil {
		t.Fatal(err)
	}
	// A swapped tx-hash list must not verify.
	bad := append([]hashutil.Digest(nil), txHashes...)
	bad[1], bad[2] = bad[2], bad[1]
	if err := br.Verify(e.lsp.Public(), bad); err == nil {
		t.Fatal("reordered batch accepted")
	}
	// A truncated list must not verify.
	if err := br.Verify(e.lsp.Public(), txHashes[:4]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	// LSP repudiation: mutate the range after signing.
	br.Count++
	if err := br.Verify(e.lsp.Public(), nil); !errors.Is(err, journal.ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendBatchMatchesSequentialRoots(t *testing.T) {
	// The batch path must produce exactly the accumulator state a
	// sequential replay of the same records would: rebuild a shadow fam
	// from the digest stream and compare roots, then interleave batches
	// with single appends and re-verify everything.
	e := newEnv(t, nil)
	if _, _, err := e.ledger.AppendBatch(batchOf(t, e, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Append(e.request(t, "single-1", "batch-clue")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ledger.AppendBatch(batchOf(t, e, 5)); err != nil {
		t.Fatal(err)
	}
	shadow := fam.MustNew(e.cfg.FractalHeight)
	for jsn := uint64(0); jsn < e.ledger.Size(); jsn++ {
		d, err := e.ledger.TxHash(jsn)
		if err != nil {
			t.Fatal(err)
		}
		shadow.Append(d)
	}
	want, err := shadow.Root()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := e.ledger.State()
	if st.JournalRoot != want {
		t.Fatal("batch path diverged from sequential digest replay")
	}
	// Recovery reproduces the same roots.
	l2, err := Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := l2.State()
	if st2.JournalRoot != st.JournalRoot || st2.ClueRoot != st.ClueRoot {
		t.Fatal("recovery diverged after batched appends")
	}
}

func TestAppendBatchWithRegistry(t *testing.T) {
	// Registry-gated batch: an uncertified client is rejected wholesale.
	auth := ca.NewTestAuthority("batch-root")
	e := newEnv(t, func(c *Config) {
		c.Registry = ca.NewRegistry(auth.Public()) // no user certs admitted
	})
	_, _, err := e.ledger.AppendBatch(batchOf(t, e, 3))
	if !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
	// Certify the client: the same batch now commits.
	cert, err := auth.Issue(e.client.Public(), ca.RoleUser, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.cfg.Registry.Admit(cert); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ledger.AppendBatch(batchOf(t, e, 3)); err != nil {
		t.Fatal(err)
	}
}
