package ledger

import (
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
)

// This file is the engine surface the sharded topology builds on
// (internal/shard): a coordinator periodically reads each shard's fam
// head, folds the heads into a global accumulator, and signs one global
// state. Proofs against that fold need the shard to prove records at the
// *folded* size — which may trail the live edge — so the prover here is
// the historical fam.ProveAt rather than the live Prove.

// FamHead is one shard's accumulator head: the journal count and the fam
// root at that count, captured atomically under one lock epoch.
type FamHead struct {
	Size uint64
	Root hashutil.Digest
}

// FamHead snapshots the live fam head. Size 0 (empty ledger) returns a
// zero root — the coordinator folds it as "shard present, nothing
// accumulated yet".
func (l *Ledger) FamHead() (FamHead, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	size := l.fam.Size()
	if size == 0 {
		return FamHead{}, nil
	}
	root, err := l.fam.Root()
	if err != nil {
		return FamHead{}, err
	}
	return FamHead{Size: size, Root: root}, nil
}

// ProveExistenceAt builds the shard-local half of a global existence
// proof: the raw record and its fam path ending at the root the ledger
// exposed when it held exactly size journals (a folded FamHead.Size).
// The caller supplies the trusted root — typically via the coordinator's
// signed global state — so no SignedState ships here.
//
// Locking mirrors proveExistence: the fam path and occult bit are read
// under one RLock epoch; the immutable journal-stream and blob reads run
// after the lock is dropped.
func (l *Ledger) ProveExistenceAt(jsn, size uint64, withPayload bool) (*RecordProof, error) {
	l.mu.RLock()
	if size > l.nextJSN {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: proof at size %d of %d", ErrNotFound, size, l.nextJSN)
	}
	if jsn >= size {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d at size %d", ErrNotFound, jsn, size)
	}
	if jsn < l.base {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d", ErrPurged, jsn)
	}
	fp, err := l.fam.ProveAt(jsn, size)
	if err != nil {
		l.mu.RUnlock()
		return nil, err
	}
	occ := l.occulted[jsn]
	l.mu.RUnlock()
	raw, err := l.readJournalBytes(jsn)
	if err != nil {
		return nil, err
	}
	p := &RecordProof{RecordBytes: raw, Fam: fp}
	if withPayload && !occ {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return nil, err
		}
		if payload, err := l.cfg.Blobs.Get(rec.PayloadDigest); err == nil {
			p.Payload = payload
		}
	}
	return p, nil
}

// RecordProof is the stateless core of an existence proof: record bytes
// plus the fam path, anchored by whatever trusted root the caller holds
// (a signed shard state, or a fold-time head bound into a signed global
// root). ExistenceProof is this plus a shard-local SignedState.
type RecordProof struct {
	RecordBytes []byte
	Payload     []byte // nil for occulted journals or digest-only proofs
	Fam         *fam.Proof
}

// VerifyRecordAtRoot is the pure client-side check of a RecordProof
// against a trusted fam root: fold the record's tx-hash through the fam
// path to root, re-verify the record's client signatures (who), and match
// the payload against the recorded digest when present (what). The root's
// own authenticity — LSP signature, or global accumulator membership plus
// coordinator signature — is the caller's concern.
func VerifyRecordAtRoot(recordBytes, payload []byte, fp *fam.Proof, root hashutil.Digest) (*journal.Record, error) {
	return verifyExistenceItem(recordBytes, payload, fp, nil, root)
}
