package ledger

import (
	"fmt"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/streamfs"
)

// This file implements the commit-point durability discipline (DESIGN.md
// §4.4). The verification guarantees only hold for journals the ledger
// can still produce after a crash, so every commit point — genesis,
// block cut, purge decision, occult decision, time anchor — forces the
// streams to stable storage before the operation is acknowledged or any
// destructive step (truncation, payload erasure) runs.
//
// Sync order is part of the invariant:
//
//	survival → journals → digests → blocks
//
// Survivor copies become durable before the purge journal that retires
// their originals; journal records before the digests that accumulate
// them; and block headers last, so a durable header always covers
// durable records. Recovery (recover.go) exploits the converse: any
// stream suffix beyond the shortest of journals/digests is an
// unacknowledged tail and is reconciled away.

// syncCommitLocked flushes all four streams in commit order. A failed
// flush latches l.failed: after a failed fsync nothing further can be
// trusted to reach disk, so the engine refuses writes until reopened
// (the reopen re-scans and the reconciliation trims the limbo suffix).
func (l *Ledger) syncCommitLocked() error {
	if l.failed != nil {
		return l.failed
	}
	for _, s := range []streamfs.Stream{l.survival, l.journals, l.digests, l.blocks} {
		if err := s.Sync(); err != nil {
			l.failed = fmt.Errorf("ledger: commit-point sync: %w", err)
			return l.failed
		}
	}
	l.unsyncedApplied = 0
	return nil
}

// commitPointSyncLocked is the commit-point flush as seen from the
// apply path. Normally it syncs immediately; while the committer is
// applying a pipelined group (syncDeferred set), it only records that a
// commit point occurred so the group end can issue ONE coalesced sync
// spanning every commit point in the group. Deferral never weakens the
// contract: no unit's done channel closes — so no receipt or error is
// released to a submitter — until the group-end sync ran, which makes
// the whole group one commit point from the client's perspective.
func (l *Ledger) commitPointSyncLocked() error {
	if l.syncDeferred {
		if l.failed != nil {
			return l.failed
		}
		l.pendingCommitSync = true
		return nil
	}
	return l.syncCommitLocked()
}

// appliedSyncLocked is the Config.SyncEvery flush as seen from the apply
// path, with the same group deferral as commitPointSyncLocked.
func (l *Ledger) appliedSyncLocked() error {
	if l.syncDeferred {
		if l.failed != nil {
			return l.failed
		}
		l.pendingAppliedSync = true
		return nil
	}
	return l.syncAppliedLocked()
}

// flushDeferredSyncLocked issues the coalesced group-end sync: a full
// commit-order sync when any commit point fired inside the group, else
// the cheaper journal+digest sync when only SyncEvery fired, else
// nothing. Called by applyGroup with syncDeferred already cleared.
func (l *Ledger) flushDeferredSyncLocked() error {
	commit, applied := l.pendingCommitSync, l.pendingAppliedSync
	l.pendingCommitSync, l.pendingAppliedSync = false, false
	switch {
	case commit:
		return l.syncCommitLocked()
	case applied:
		return l.syncAppliedLocked()
	}
	return nil
}

// syncAppliedLocked is the cheaper Config.SyncEvery flush between commit
// points: journal and digest streams only (no block was cut, the other
// streams did not move).
func (l *Ledger) syncAppliedLocked() error {
	for _, s := range []streamfs.Stream{l.journals, l.digests} {
		if err := s.Sync(); err != nil {
			l.failed = fmt.Errorf("ledger: record sync: %w", err)
			return l.failed
		}
	}
	l.unsyncedApplied = 0
	return nil
}

// Sync forces everything committed so far to stable storage. It is the
// durability hook for embedders (and the crash harness): after it
// returns, a crash loses nothing acknowledged before the call.
func (l *Ledger) Sync() error {
	l.lockExclusive()
	defer l.unlockExclusive()
	return l.syncCommitLocked()
}

// reconcileStreams trims the journal, digest, and (if everything is
// gone) block streams onto one durable prefix at open time, before the
// recover-or-genesis decision. A crash between commit points may cut
// the streams at different lengths — everything past the last flush is
// unacknowledged, so the suffix beyond the shortest of journals/digests
// is dropped. Headers past the prefix are trimmed during recover, where
// they are decoded anyway.
func (l *Ledger) reconcileStreams() error {
	prefix := l.journals.Len()
	if d := l.digests.Len(); d < prefix {
		prefix = d
	}
	// A follower that crashed mid-resync holds a re-based (empty) journal
	// stream whose base runs ahead of the digest fill. Journal records
	// only ever apply after the fill has reached the base and synced, so
	// a prefix below the base implies an empty journal stream — nothing
	// to trim there.
	jcut := prefix
	if b := l.journals.Base(); jcut < b {
		jcut = b
	}
	if err := l.journals.TruncateTail(jcut); err != nil {
		return fmt.Errorf("ledger: reconcile journal stream: %w", err)
	}
	if err := l.digests.TruncateTail(prefix); err != nil {
		return fmt.Errorf("ledger: reconcile digest stream: %w", err)
	}
	if prefix == 0 {
		// Nothing survived: a fresh genesis will be written, so no block
		// header may linger (none should — blocks sync last).
		if err := l.blocks.TruncateTail(0); err != nil {
			return fmt.Errorf("ledger: reconcile block stream: %w", err)
		}
	}
	return nil
}

// completePurgeLocked performs the destructive half of a purge: payload
// erasure and journal-prefix truncation. It runs only after the purge
// journal and its pseudo genesis are durable (the purge "decision"), and
// it is idempotent — recovery calls it again to roll an interrupted
// purge forward. Blob deletes are no-ops for already-erased payloads,
// and the refcounts it decrements were rebuilt by the same process
// (Purge counts live records; recovery replay recounts them), so a
// re-run converges on the same state.
func (l *Ledger) completePurgeLocked(desc *PurgeDescriptor) error {
	if desc.ErasePayloads {
		survivors := make(map[uint64]bool, len(desc.Survivors))
		for _, s := range desc.Survivors {
			survivors[s] = true
		}
		for jsn := l.base; jsn < desc.Point; jsn++ {
			if survivors[jsn] {
				continue
			}
			raw, err := l.journals.Read(jsn)
			if err != nil {
				continue
			}
			rec, err := journal.DecodeRecord(raw)
			if err != nil {
				continue
			}
			// Content-addressed blobs may be shared with live journals;
			// only unreferenced payloads are deleted.
			if l.payloadRefs[rec.PayloadDigest] > 0 {
				l.payloadRefs[rec.PayloadDigest]--
			}
			if l.payloadRefs[rec.PayloadDigest] == 0 {
				if err := l.cfg.Blobs.Delete(rec.PayloadDigest); err != nil {
					return err
				}
			}
		}
	}
	if err := l.journals.Truncate(desc.Point); err != nil {
		return err
	}
	l.base = desc.Point
	if desc.EraseFamNodes {
		l.fam.PruneBelow(desc.Point)
	}
	l.stateGen++ // the truncated prefix changes what proofs may reflect
	return nil
}

// pendingPurgeLocked detects a purge that was decided — purge journal
// and pseudo genesis both on the durable prefix — but whose destructive
// half did not finish before a crash. A purge journal without its pseudo
// genesis is NOT pending: the decision point is the durability of both
// (they are synced together before any truncation), so a lone purge
// journal from a torn tail stays inert on the ledger forever.
func (l *Ledger) pendingPurgeLocked() (*PurgeDescriptor, error) {
	var lastDesc *PurgeDescriptor
	var lastJSN uint64
	err := l.journals.Iterate(l.base, func(jsn uint64, raw []byte) error {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return err
		}
		if rec.Type != journal.TypePurge {
			return nil
		}
		extra, err := DecodePurgeExtra(rec.Extra)
		if err != nil {
			return err
		}
		lastDesc, lastJSN = extra.Desc, jsn
		return nil
	})
	if err != nil || lastDesc == nil || lastDesc.Point <= l.base {
		return nil, err
	}
	// The doubly-linked pseudo genesis sits immediately after the purge
	// journal; its snapshot must name this purge back.
	if lastJSN+1 >= l.nextJSN {
		return nil, nil
	}
	raw, err := l.journals.Read(lastJSN + 1)
	if err != nil {
		return nil, nil // tail lost with the crash: purge not decided
	}
	rec, err := journal.DecodeRecord(raw)
	if err != nil || rec.Type != journal.TypePseudoGenesis {
		return nil, nil
	}
	info, err := DecodePseudoGenesis(rec.Extra)
	if err != nil || info.PurgeJSN != lastJSN {
		return nil, nil
	}
	return lastDesc, nil
}
