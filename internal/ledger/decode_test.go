package ledger

import (
	"testing"
	"testing/quick"
)

// Transport decoders for proof bundles take bytes from the network; they
// must reject garbage with an error, never panic.
func TestTransportDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		if _, err := DecodeExistenceProof(b); err == nil {
			_ = err
		}
		if _, err := DecodeClueProofBundle(b); err == nil {
			_ = err
		}
		if _, err := DecodeStateProof(b); err == nil {
			_ = err
		}
		if _, err := DecodeBlockHeader(b); err == nil {
			_ = err
		}
		if _, err := DecodePurgeExtra(b); err == nil {
			_ = err
		}
		if _, err := DecodeOccultExtra(b); err == nil {
			_ = err
		}
		if _, err := DecodeOccultClueExtra(b); err == nil {
			_ = err
		}
		if _, err := DecodePseudoGenesis(b); err == nil {
			_ = err
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
