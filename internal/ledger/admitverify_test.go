package ledger

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ledgerdb/internal/journal"
)

func newVerifyEnv(t testing.TB, batch, workers int) *testEnv {
	t.Helper()
	var clk atomic.Int64
	clk.Store(1000)
	e := newEnv(t, func(c *Config) {
		c.PipelineDepth = 8
		c.VerifyBatch = batch
		c.VerifyWorkers = workers
		c.Clock = func() int64 { return clk.Add(1) }
	})
	t.Cleanup(func() { e.ledger.Close() })
	return e
}

// TestBatchVerifyAdmissionInterleavedBadSigs hammers the admission-stage
// batch verifier from many goroutines with valid and tampered requests
// interleaved, asserting rejects are surgical: every bad request fails
// with ErrBadSignature, every good one commits with a verifying receipt,
// and no good request is dragged down by sharing a verify group with a
// bad one. Run with -race; the verifier's collector/worker handoff and
// the job pool are the interesting surface.
func TestBatchVerifyAdmissionInterleavedBadSigs(t *testing.T) {
	e := newVerifyEnv(t, 16, 4)

	const (
		goroutines = 8
		perG       = 30
	)
	var nonce uint64
	makeReq := func(g, i int, bad bool) *journal.Request {
		req := &journal.Request{
			LedgerURI: "ledger://test",
			Type:      journal.TypeNormal,
			Payload:   []byte(fmt.Sprintf("bv-%d-%d", g, i)),
			Nonce:     atomic.AddUint64(&nonce, 1),
		}
		if err := req.Sign(e.client); err != nil {
			t.Fatal(err)
		}
		if bad {
			// Tamper after signing: shape stays valid, π_c does not.
			req.Payload = append([]byte(nil), req.Payload...)
			req.Payload[0] ^= 0xFF
		}
		return req
	}

	type outcome struct {
		bad     bool
		receipt *journal.Receipt
		err     error
	}
	results := make([][]outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		results[g] = make([]outcome, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				bad := (g+i)%3 == 0
				req := makeReq(g, i, bad)
				rc, err := e.ledger.Append(req)
				results[g][i] = outcome{bad: bad, receipt: rc, err: err}
			}
		}(g)
	}
	wg.Wait()

	goodCommitted := 0
	for g := range results {
		for i, out := range results[g] {
			if out.bad {
				if !errors.Is(out.err, journal.ErrBadSignature) {
					t.Fatalf("goroutine %d req %d: tampered request got err=%v, want ErrBadSignature", g, i, out.err)
				}
				continue
			}
			if out.err != nil {
				t.Fatalf("goroutine %d req %d: valid request rejected: %v", g, i, out.err)
			}
			if err := out.receipt.Verify(e.lsp.Public()); err != nil {
				t.Fatalf("goroutine %d req %d: receipt does not verify: %v", g, i, err)
			}
			goodCommitted++
		}
	}
	if got := e.ledger.Size(); got != uint64(goodCommitted)+1 {
		t.Fatalf("ledger size = %d, want %d good + 1 genesis", got, goodCommitted)
	}
}

// TestBatchVerifyCloseDuringInflight races Close against appends mid-
// verification: every submitter must get a definitive answer (a receipt
// or an error), never a hang, and the verifier must drain cleanly.
func TestBatchVerifyCloseDuringInflight(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		var clk atomic.Int64
		clk.Store(1000)
		e := newEnv(t, func(c *Config) {
			c.PipelineDepth = 4
			c.VerifyBatch = 8
			c.VerifyWorkers = 2
			c.Clock = func() int64 { return clk.Add(1) }
		})
		var wg sync.WaitGroup
		var nonce uint64
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					req := &journal.Request{
						LedgerURI: "ledger://test",
						Type:      journal.TypeNormal,
						Payload:   []byte(fmt.Sprintf("close-race-%d-%d-%d", iter, g, i)),
						Nonce:     atomic.AddUint64(&nonce, 1),
					}
					if err := req.Sign(e.client); err != nil {
						t.Error(err)
						return
					}
					rc, err := e.ledger.Append(req)
					if err == nil {
						if verr := rc.Verify(e.lsp.Public()); verr != nil {
							t.Errorf("receipt does not verify: %v", verr)
						}
					} else if !errors.Is(err, ErrClosed) {
						t.Errorf("append err = %v, want nil or ErrClosed", err)
					}
				}
			}(g)
		}
		if err := e.ledger.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// Idempotent close after drain.
		if err := e.ledger.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchVerifyFallbackInline covers the saturation fallback: a
// 1-batch 1-worker pool under 32-way concurrency forces some
// submissions down the inline-verify path (queue full); results must be
// indistinguishable from pooled verification.
func TestBatchVerifyFallbackInline(t *testing.T) {
	e := newVerifyEnv(t, 1, 1)
	var wg sync.WaitGroup
	var nonce uint64
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &journal.Request{
				LedgerURI: "ledger://test",
				Type:      journal.TypeNormal,
				Payload:   []byte(fmt.Sprintf("inline-%d", i)),
				Nonce:     atomic.AddUint64(&nonce, 1),
			}
			if err := req.Sign(e.client); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = e.ledger.Append(req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := e.ledger.Size(); got != 33 {
		t.Fatalf("size = %d, want 33", got)
	}
}

// TestVerifyBatchIgnoredInSerialMode asserts the knob is inert without
// the pipeline (documented behaviour) and appends still work.
func TestVerifyBatchIgnoredInSerialMode(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.VerifyBatch = 16
		c.VerifyWorkers = 4
	})
	if e.ledger.verif != nil {
		t.Fatal("verifier active in serial mode")
	}
	r := e.append(t, "serial-with-knob")
	if err := r.Verify(e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
}
