package ledger

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/sig"
)

func TestAbsenceProveAndVerify(t *testing.T) {
	e := newEnv(t, nil)
	for _, c := range []string{"bravo", "delta", "foxtrot"} {
		e.append(t, "doc-"+c, c)
	}
	lsp := e.lsp.Public()
	for _, q := range []string{"alpha", "charlie", "echo", "zulu"} {
		ap, err := e.ledger.ProveAbsence(q, false)
		if err != nil {
			t.Fatalf("ProveAbsence(%q): %v", q, err)
		}
		if err := VerifyAbsence(lsp, ap); err != nil {
			t.Fatalf("VerifyAbsence(%q): %v", q, err)
		}
	}
	// Boundary shapes: no pred below the set, no succ above it.
	below, _ := e.ledger.ProveAbsence("aaa", false)
	if below.HasPred || !below.HasSucc || below.SuccIndex != 0 {
		t.Fatalf("below-set proof shape wrong: %+v", below)
	}
	above, _ := e.ledger.ProveAbsence("zzz", false)
	if above.HasSucc || !above.HasPred {
		t.Fatalf("above-set proof shape wrong: %+v", above)
	}
}

func TestAbsencePresentClue(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc", "invoice/2024")
	if _, err := e.ledger.ProveAbsence("invoice/2024", false); !errors.Is(err, ErrPresent) {
		t.Fatalf("err = %v, want ErrPresent", err)
	}
	if _, err := e.ledger.ProveAbsence("invoice/", true); !errors.Is(err, ErrPresent) {
		t.Fatalf("prefix err = %v, want ErrPresent", err)
	}
	// A different prefix with no live extension proves absent.
	ap, err := e.ledger.ProveAbsence("receipt/", true)
	if err != nil {
		t.Fatalf("ProveAbsence(receipt/): %v", err)
	}
	if err := VerifyAbsence(e.lsp.Public(), ap); err != nil {
		t.Fatal(err)
	}
}

func TestAbsenceEmptyLedger(t *testing.T) {
	e := newEnv(t, nil)
	// Genesis carries no client clues: the clue set is empty.
	ap, err := e.ledger.ProveAbsence("anything", false)
	if err != nil {
		t.Fatal(err)
	}
	if ap.HasPred || ap.HasSucc {
		t.Fatal("empty-set proof must have no neighbors")
	}
	if err := VerifyAbsence(e.lsp.Public(), ap); err != nil {
		t.Fatal(err)
	}
}

// TestAbsenceTamperRejected mutates every load-bearing field of a valid
// proof and checks the verifier rejects each one.
func TestAbsenceTamperRejected(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 8; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), fmt.Sprintf("clue-%02d", i*2))
	}
	lsp := e.lsp.Public()
	fresh := func() *AbsenceProof {
		ap, err := e.ledger.ProveAbsence("clue-07", false)
		if err != nil {
			t.Fatal(err)
		}
		return ap
	}
	mutations := map[string]func(*AbsenceProof){
		"name":        func(p *AbsenceProof) { p.Name = "clue-06" }, // a live clue
		"pred":        func(p *AbsenceProof) { p.Pred = "clue-05" },
		"succ":        func(p *AbsenceProof) { p.Succ = "clue-09" },
		"pred-index":  func(p *AbsenceProof) { p.PredIndex++ },
		"succ-index":  func(p *AbsenceProof) { p.SuccIndex++ },
		"pred-path":   func(p *AbsenceProof) { p.PredPath[0][0] ^= 1 },
		"succ-path":   func(p *AbsenceProof) { p.SuccPath[0][0] ^= 1 },
		"drop-pred":   func(p *AbsenceProof) { p.HasPred = false },
		"drop-succ":   func(p *AbsenceProof) { p.HasSucc = false },
		"clue-count":  func(p *AbsenceProof) { p.State.ClueCount++ },
		"state-root":  func(p *AbsenceProof) { p.State.ClueSetRoot = hashutil.Zero },
		"prefix-flip": func(p *AbsenceProof) { p.Prefix = true; p.Name = "clue-0" }, // live extensions exist
	}
	for name, mutate := range mutations {
		ap := fresh()
		mutate(ap)
		if err := VerifyAbsence(lsp, ap); err == nil {
			t.Fatalf("mutation %q: verification must fail", name)
		}
	}
	// Wrong LSP key fails even on the untampered proof.
	if err := VerifyAbsence(sig.GenerateDeterministic("other").Public(), fresh()); err == nil {
		t.Fatal("wrong LSP key must fail")
	}
}

func TestAbsenceCodecRoundTrip(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "a", "kilo")
	e.append(t, "b", "mike")
	ap, err := e.ledger.ProveAbsence("lima", false)
	if err != nil {
		t.Fatal(err)
	}
	raw := ap.EncodeBytes()
	got, err := DecodeAbsenceProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.EncodeBytes() == nil || string(got.EncodeBytes()) != string(raw) {
		t.Fatal("decode/encode is not a fixpoint")
	}
	if err := VerifyAbsence(e.lsp.Public(), got); err != nil {
		t.Fatalf("decoded proof fails verification: %v", err)
	}
	if _, err := DecodeAbsenceProof(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated proof must not decode")
	}
	if _, err := DecodeAbsenceProof(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing garbage must not decode")
	}
}

// TestAbsenceAfterPurge pins the live-set semantics: a clue whose whole
// lineage is purged leaves the committed clue set, so its absence
// becomes provable even though cmtree still remembers it.
func TestAbsenceAfterPurge(t *testing.T) {
	e := newEnv(t, nil)
	// K's whole lineage (jsns 1..4) sits below the purge point; the
	// "other" record above it keeps the point legal.
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	e.append(t, "keeper", "other")
	desc := &PurgeDescriptor{URI: "ledger://test", Point: 5, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	if err := ms.SignWith(e.client); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.ProveAbsence("K", false); !errors.Is(err, ErrPresent) {
		t.Fatalf("pre-purge err = %v, want ErrPresent", err)
	}
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	ap, err := e.ledger.ProveAbsence("K", false)
	if err != nil {
		t.Fatalf("post-purge ProveAbsence: %v", err)
	}
	if err := VerifyAbsence(e.lsp.Public(), ap); err != nil {
		t.Fatalf("post-purge VerifyAbsence: %v", err)
	}
	// A clue appended after the purge is live again.
	e.append(t, "fresh", "K")
	if _, err := e.ledger.ProveAbsence("K", false); !errors.Is(err, ErrPresent) {
		t.Fatalf("re-append err = %v, want ErrPresent", err)
	}
}

func TestQueryValidateAndMatches(t *testing.T) {
	var q Query
	if err := q.Validate(); err == nil {
		t.Fatal("zero query must not validate")
	}
	q = Query{Kind: QueryByTime, From: 10, To: 5}
	if err := q.Validate(); err == nil {
		t.Fatal("inverted time range must not validate")
	}
	q = Query{Kind: QueryBySigner}
	if err := q.Validate(); err == nil {
		t.Fatal("zero signer must not validate")
	}
	q = Query{Kind: QueryByPrefix, Prefix: "inv"}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.EffectiveLimit() != MaxProofBatch {
		t.Fatalf("unlimited EffectiveLimit = %d, want %d", q.EffectiveLimit(), MaxProofBatch)
	}
	q.Limit = 7
	if q.EffectiveLimit() != 7 {
		t.Fatalf("EffectiveLimit = %d, want 7", q.EffectiveLimit())
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	qs := []Query{
		{Kind: QueryByPrefix, Prefix: "invoice/", Limit: 9, WithPayload: true},
		{Kind: QueryByTime, From: -5, To: 1 << 40},
		{Kind: QueryBySigner, Signer: sig.GenerateDeterministic("s").Public()},
	}
	for _, q := range qs {
		raw := q.EncodeBytes()
		got, err := DecodeQuery(raw)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
	}
}

// TestVerifyQueryResultRejectsNonMatch pins the tamper defense: a
// server cannot slip a proven-but-irrelevant record into a query reply,
// because the verifier re-checks the predicate against proven content.
func TestVerifyQueryResultRejectsNonMatch(t *testing.T) {
	e := newEnv(t, nil)
	r1 := e.append(t, "doc-1", "invoice/1")
	e.append(t, "doc-2", "receipt/1")
	lsp := e.lsp.Public()

	q := Query{Kind: QueryByPrefix, Prefix: "invoice/"}
	batch, err := e.ledger.ProveExistenceBatch([]uint64{r1.JSN}, false)
	if err != nil {
		t.Fatal(err)
	}
	res := &QueryResult{Query: q, Batch: batch}
	recs, err := VerifyQueryResult(lsp, q, res)
	if err != nil {
		t.Fatalf("honest result rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].JSN != r1.JSN {
		t.Fatalf("got %d records", len(recs))
	}

	// Echoed query mismatch.
	if _, err := VerifyQueryResult(lsp, Query{Kind: QueryByPrefix, Prefix: "receipt/"}, res); err == nil {
		t.Fatal("query echo mismatch must fail")
	}
	// Proven record that does not satisfy the predicate.
	wrong := Query{Kind: QueryByPrefix, Prefix: "receipt/"}
	res2 := &QueryResult{Query: wrong, Batch: batch}
	if _, err := VerifyQueryResult(lsp, wrong, res2); err == nil ||
		!strings.Contains(err.Error(), "non-match") {
		t.Fatalf("non-matching record: err = %v", err)
	}
	// Empty prefix reply without an absence proof.
	empty := &QueryResult{Query: q}
	if _, err := VerifyQueryResult(lsp, q, empty); err == nil {
		t.Fatal("empty prefix reply without absence proof must fail")
	}
}

func TestQueryResultCodecRoundTrip(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "doc", "golf")
	q := Query{Kind: QueryByPrefix, Prefix: "golf"}
	batch, err := e.ledger.ProveExistenceBatch([]uint64{r.JSN}, true)
	if err != nil {
		t.Fatal(err)
	}
	res := &QueryResult{Query: q, Batch: batch}
	raw := res.EncodeBytes()
	got, err := DecodeQueryResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.EncodeBytes()) != string(raw) {
		t.Fatal("decode/encode is not a fixpoint")
	}
	if _, err := VerifyQueryResult(e.lsp.Public(), q, got); err != nil {
		t.Fatal(err)
	}

	// Absence-carrying empty result round-trips too.
	ap, err := e.ledger.ProveAbsence("hotel", true)
	if err != nil {
		t.Fatal(err)
	}
	qa := Query{Kind: QueryByPrefix, Prefix: "hotel"}
	resA := &QueryResult{Query: qa, Absence: ap}
	gotA, err := DecodeQueryResult(resA.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyQueryResult(e.lsp.Public(), qa, gotA); err != nil {
		t.Fatal(err)
	}
}
