package ledger

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/wire"
)

// pipeEnv opens a pipelined ledger over fresh in-memory stores with a
// constant clock, so committed records can be reconstructed exactly
// from their requests.
func pipeEnv(t *testing.T, depth int) (*Ledger, *sig.KeyPair, streamfs.Store, streamfs.BlobStore) {
	t.Helper()
	store := streamfs.NewMemory()
	blobs := streamfs.NewMemoryBlobs()
	lsp := sig.GenerateDeterministic("pipe/lsp")
	l, err := Open(Config{
		URI:           "ledger://pipe",
		FractalHeight: 8,
		BlockSize:     16,
		Clock:         func() int64 { return 42 },
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("pipe/dba").Public(),
		Store:         store,
		Blobs:         blobs,
		PipelineDepth: depth,
	})
	if err != nil {
		t.Fatalf("open pipelined ledger: %v", err)
	}
	return l, lsp, store, blobs
}

// signedReq builds a signed normal request for the stress test.
func signedReq(t *testing.T, key *sig.KeyPair, g int, nonce uint64, stateKey []byte, clues ...string) *journal.Request {
	t.Helper()
	req := &journal.Request{
		LedgerURI: "ledger://pipe",
		Type:      journal.TypeNormal,
		Payload:   []byte(fmt.Sprintf("payload/g%d/n%d", g, nonce)),
		Clues:     clues,
		StateKey:  stateKey,
		Nonce:     nonce,
	}
	if err := req.Sign(key); err != nil {
		t.Fatalf("sign: %v", err)
	}
	return req
}

// TestPipelineStress drives mixed Append/AppendBatch traffic (plus
// concurrent manual block cuts) through the staged pipeline and then
// checks the full set of ISSUE invariants: dense jsn assignment, every
// receipt verifying, the fam root matching a serial replay of the same
// requests, and recovery from the raw streams agreeing with the live
// engine.
func TestPipelineStress(t *testing.T) {
	const (
		goroutines = 6
		opsEach    = 25 // every 5th op is a 3-request batch
		batchEvery = 5
		batchSize  = 3
	)
	l, lsp, store, blobs := pipeEnv(t, 32)

	var (
		mu   sync.Mutex
		byJS = make(map[uint64]*journal.Request)
	)
	record := func(jsn uint64, req *journal.Request) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := byJS[jsn]; dup {
			t.Errorf("jsn %d assigned twice", jsn)
		}
		byJS[jsn] = req
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := sig.GenerateDeterministic(fmt.Sprintf("pipe/user%d", g))
			nonce := uint64(0)
			for i := 0; i < opsEach; i++ {
				if i%batchEvery == 0 {
					reqs := make([]*journal.Request, batchSize)
					for k := range reqs {
						nonce++
						reqs[k] = signedReq(t, key, g, nonce, nil, fmt.Sprintf("clue-%d", g%3))
					}
					br, txs, err := l.AppendBatch(reqs)
					if err != nil {
						t.Errorf("g%d batch %d: %v", g, i, err)
						return
					}
					if err := br.Verify(lsp.Public(), txs); err != nil {
						t.Errorf("g%d batch receipt: %v", g, err)
					}
					for k, req := range reqs {
						record(br.FirstJSN+uint64(k), req)
					}
					continue
				}
				nonce++
				var stateKey []byte
				if i%7 == 0 {
					stateKey = []byte(fmt.Sprintf("key/g%d", g))
				}
				req := signedReq(t, key, g, nonce, stateKey)
				receipt, err := l.Append(req)
				if err != nil {
					t.Errorf("g%d append %d: %v", g, i, err)
					return
				}
				if err := receipt.Verify(lsp.Public()); err != nil {
					t.Errorf("g%d receipt: %v", g, err)
				}
				if receipt.RequestHash != req.Hash() {
					t.Errorf("g%d receipt acknowledges a different request", g)
				}
				record(receipt.JSN, req)
				if i%11 == 0 {
					// Exercise the exclusive write path concurrently.
					if _, err := l.CutBlock(); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("g%d cut block: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Dense jsn assignment: genesis plus every request, no gaps.
	perG := opsEach - opsEach/batchEvery + (opsEach/batchEvery)*batchSize
	total := uint64(1 + goroutines*perG)
	if got := l.Size(); got != total {
		t.Fatalf("size %d, want %d", got, total)
	}
	for jsn := uint64(1); jsn < total; jsn++ {
		if byJS[jsn] == nil {
			t.Fatalf("jsn %d never acknowledged", jsn)
		}
	}

	// Every committed tx-hash must be exactly the deterministic
	// reconstruction from its request (constant clock), and the fam
	// root must equal a shadow replay over those hashes.
	shadow := fam.MustNew(l.FractalHeight())
	genesisTx, err := l.TxHash(0)
	if err != nil {
		t.Fatalf("genesis tx-hash: %v", err)
	}
	shadow.Append(genesisTx)
	for jsn := uint64(1); jsn < total; jsn++ {
		req := byJS[jsn]
		rec := &journal.Record{
			JSN:           jsn,
			Type:          journal.TypeNormal,
			Timestamp:     42,
			RequestHash:   req.Hash(),
			PayloadDigest: hashutil.Sum(req.Payload),
			PayloadSize:   uint64(len(req.Payload)),
			Clues:         req.Clues,
			StateKey:      req.StateKey,
			ClientPK:      req.ClientPK,
			ClientSig:     req.ClientSig,
			CoSigners:     req.CoSigners,
		}
		want := rec.TxHash()
		got, err := l.TxHash(jsn)
		if err != nil {
			t.Fatalf("tx-hash %d: %v", jsn, err)
		}
		if got != want {
			t.Fatalf("jsn %d: committed tx-hash diverges from its request", jsn)
		}
		shadow.Append(want)
	}
	shadowRoot, err := shadow.Root()
	if err != nil {
		t.Fatalf("shadow root: %v", err)
	}
	st, err := l.State()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.JournalRoot != shadowRoot {
		t.Fatalf("fam root %s diverges from serial replay %s", st.JournalRoot.Short(), shadowRoot.Short())
	}

	// Serial replay through a fresh synchronous engine: the same
	// requests in jsn order must land on the same jsns with the same
	// tx-hashes (its genesis differs only by the LSP signature).
	serial, err := Open(Config{
		URI:           "ledger://pipe",
		FractalHeight: 8,
		BlockSize:     16,
		Clock:         func() int64 { return 42 },
		LSP:           sig.GenerateDeterministic("pipe/lsp-serial"),
		DBA:           sig.GenerateDeterministic("pipe/dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatalf("open serial ledger: %v", err)
	}
	for jsn := uint64(1); jsn < total; jsn++ {
		receipt, err := serial.Append(byJS[jsn])
		if err != nil {
			t.Fatalf("serial replay %d: %v", jsn, err)
		}
		if receipt.JSN != jsn {
			t.Fatalf("serial replay assigned jsn %d, want %d", receipt.JSN, jsn)
		}
		want, _ := l.TxHash(jsn)
		if receipt.TxHash != want {
			t.Fatalf("serial replay tx-hash diverges at jsn %d", jsn)
		}
	}

	// Close: drains, flushes, and refuses further writes.
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	req := signedReq(t, sig.GenerateDeterministic("pipe/late"), 99, 1, nil)
	if _, err := l.Append(req); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if _, _, err := l.AppendBatch([]*journal.Request{req}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close: %v, want ErrClosed", err)
	}

	// Recovery from the same streams must reproduce the live state.
	re, err := Open(Config{
		URI:           "ledger://pipe",
		FractalHeight: 8,
		BlockSize:     16,
		Clock:         func() int64 { return 42 },
		LSP:           sig.GenerateDeterministic("pipe/lsp"),
		DBA:           sig.GenerateDeterministic("pipe/dba").Public(),
		Store:         store,
		Blobs:         blobs,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Size() != total {
		t.Fatalf("recovered size %d, want %d", re.Size(), total)
	}
	rst, err := re.State()
	if err != nil {
		t.Fatalf("recovered state: %v", err)
	}
	if rst.JournalRoot != st.JournalRoot || rst.ClueRoot != st.ClueRoot || rst.StateRoot != st.StateRoot {
		t.Fatalf("recovered roots diverge from live engine")
	}
}

// TestPipelineBackpressure forces the committer queue to depth 1 so
// every sequencing step contends with the group committer; the pipeline
// must still assign dense jsns and drain cleanly.
func TestPipelineBackpressure(t *testing.T) {
	l, lsp, _, _ := pipeEnv(t, 1)
	key := sig.GenerateDeterministic("pipe/bp")
	var wg sync.WaitGroup
	const workers, each = 4, 10
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				req := signedReq(t, key, g, uint64(g*1000+i+1), nil)
				receipt, err := l.Append(req)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := receipt.Verify(lsp.Public()); err != nil {
					t.Errorf("receipt: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got, want := l.Size(), uint64(1+workers*each); got != want {
		t.Fatalf("size %d, want %d", got, want)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGroupReceiptIntegrity drives enough concurrent appends through
// the pipeline to produce group-signed receipts, then checks that a
// group receipt survives a wire round-trip and that every interesting
// tampering — repositioning within the group, moving to another jsn,
// swapping a group hash, or stripping the group down to a solo receipt
// — breaks verification.
func TestGroupReceiptIntegrity(t *testing.T) {
	l, lsp, _, _ := pipeEnv(t, 32)
	key := sig.GenerateDeterministic("pipe/group")

	var (
		mu       sync.Mutex
		receipts []*journal.Receipt
	)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				receipt, err := l.Append(signedReq(t, key, g, uint64(g*100+i+1), nil))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				receipts = append(receipts, receipt)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	defer l.Close()

	var grouped *journal.Receipt
	for _, rc := range receipts {
		if len(rc.GroupHashes) > 1 && rc.GroupIndex > 0 {
			grouped = rc
			break
		}
	}
	if grouped == nil {
		// Scheduling can in principle commit every journal alone; the
		// tamper checks below need a multi-record group to be meaningful.
		t.Skip("no multi-record commit group formed")
	}

	// The genuine receipt round-trips through the wire encoding.
	w := wire.NewWriter(256)
	grouped.Encode(w)
	decoded, err := journal.DecodeReceipt(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := decoded.Verify(lsp.Public()); err != nil {
		t.Fatalf("decoded receipt: %v", err)
	}

	tamper := func(name string, mutate func(rc *journal.Receipt)) {
		cp := *grouped
		cp.GroupHashes = append([]hashutil.Digest(nil), grouped.GroupHashes...)
		mutate(&cp)
		if err := cp.Verify(lsp.Public()); err == nil {
			t.Errorf("%s: tampered receipt verified", name)
		}
	}
	tamper("reposition", func(rc *journal.Receipt) { rc.GroupIndex-- })
	tamper("other jsn", func(rc *journal.Receipt) { rc.JSN++ })
	tamper("swapped hash", func(rc *journal.Receipt) {
		rc.GroupHashes[rc.GroupIndex], rc.GroupHashes[0] = rc.GroupHashes[0], rc.GroupHashes[rc.GroupIndex]
	})
	tamper("foreign tx-hash", func(rc *journal.Receipt) {
		rc.TxHash = hashutil.Leaf([]byte("forged"))
		rc.GroupHashes[rc.GroupIndex] = rc.TxHash
	})
	tamper("stripped group", func(rc *journal.Receipt) { rc.GroupHashes = nil })
	tamper("index out of range", func(rc *journal.Receipt) { rc.GroupIndex = uint64(len(rc.GroupHashes)) })
}

// TestPipelineMutationsInterleave runs an occult while pipelined
// appends are in flight: the exclusive write path must drain the
// pipeline first and keep the jsn space dense.
func TestPipelineMutationsInterleave(t *testing.T) {
	l, _, _, _ := pipeEnv(t, 16)
	key := sig.GenerateDeterministic("pipe/mut")
	dba := sig.GenerateDeterministic("pipe/dba")

	// Seed one journal to occult.
	seed := signedReq(t, key, 0, 1, nil)
	receipt, err := l.Append(seed)
	if err != nil {
		t.Fatalf("seed append: %v", err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			req := signedReq(t, key, 1, uint64(100+i), nil)
			if _, err := l.Append(req); err != nil {
				t.Errorf("append during occult: %v", err)
				return
			}
		}
	}()
	desc := &OccultDescriptor{URI: l.URI(), JSN: receipt.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(dba); err != nil {
		t.Fatalf("sign occult: %v", err)
	}
	if _, err := l.Occult(desc, ms); err != nil {
		t.Fatalf("occult: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// 1 genesis + 1 seed + 30 appends + 1 occult journal.
	if got, want := l.Size(), uint64(33); got != want {
		t.Fatalf("size %d, want %d", got, want)
	}
	rec, err := l.GetJournal(receipt.JSN)
	if err != nil {
		t.Fatalf("get occulted journal: %v", err)
	}
	if !rec.Occulted {
		t.Fatalf("journal %d not marked occulted", receipt.JSN)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
