package ledger

import (
	"errors"
	"testing"
)

func TestProveClueByTime(t *testing.T) {
	e := newEnv(t, nil) // logical clock ticks by 1 per operation
	var stamps []int64
	for i := 0; i < 8; i++ {
		r := e.append(t, "v", "K")
		rec, err := e.ledger.GetJournal(r.JSN)
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, rec.Timestamp)
	}
	// A window covering versions 2..5 (inclusive of 2, exclusive of 6).
	b, err := e.ledger.ProveClueByTime("K", stamps[2], stamps[6])
	if err != nil {
		t.Fatal(err)
	}
	recs, err := VerifyClue(b, e.lsp.Public())
	if err != nil {
		t.Fatalf("VerifyClue: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("window returned %d records, want 4", len(recs))
	}
	if recs[0].Timestamp != stamps[2] || recs[3].Timestamp != stamps[5] {
		t.Fatalf("window bounds wrong: %d..%d", recs[0].Timestamp, recs[3].Timestamp)
	}
	// The whole history via a wide window.
	b2, err := e.ledger.ProveClueByTime("K", 0, stamps[7]+1)
	if err != nil {
		t.Fatal(err)
	}
	if recs, _ := VerifyClue(b2, e.lsp.Public()); len(recs) != 8 {
		t.Fatalf("wide window returned %d", len(recs))
	}
	// An empty window errors.
	if _, err := e.ledger.ProveClueByTime("K", stamps[7]+100, stamps[7]+200); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Unknown clue errors.
	if _, err := e.ledger.ProveClueByTime("ghost", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
