// Package ledger implements the LedgerDB engine of §II-C: an auditable
// centralized ledger database with journals, dense jsn assignment, block
// cutting, a fam journal accumulator, a CM-Tree clue index, a world-state
// MPT, three-phase signing (π_c, π_s, π_t), verifiable purge and occult
// mutations, and the server-side halves of every Dasein verification.
//
// Storage follows Figure 1: raw payloads go to shared blob storage
// (streamfs.BlobStore) keyed by digest; the journal stream holds compact
// records carrying the payload digest; a parallel digest stream retains
// every tx-hash forever so the fam tree survives purges ("we only need
// digest but not raw payload", §III-A2); block headers chain in their own
// stream; milestone journals that must outlive purges are copied to the
// survival stream.
package ledger

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/mpt"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/wire"
)

// Stream names inside the store.
const (
	streamJournals = "journals"
	streamDigests  = "digests"
	streamBlocks   = "blocks"
	streamSurvival = "survival"
)

// Exported stream names: the replication pull API addresses streams by
// name (ReadStreamRange), and followers request exactly these.
const (
	StreamJournals = streamJournals
	StreamDigests  = streamDigests
	StreamBlocks   = streamBlocks
	StreamSurvival = streamSurvival
)

// Errors returned by the engine.
var (
	ErrNotFound     = errors.New("ledger: journal not found")
	ErrOcculted     = errors.New("ledger: journal payload occulted")
	ErrPurged       = errors.New("ledger: journal purged")
	ErrBadConfig    = errors.New("ledger: invalid configuration")
	ErrNotPermitted = errors.New("ledger: operation not permitted")
	ErrVerify       = errors.New("ledger: verification failed")
	ErrClosed       = errors.New("ledger: closed")
)

// Config configures a Ledger.
type Config struct {
	// URI identifies the ledger (the lgid of the Verify API).
	URI string
	// FractalHeight is fam's δ. Zero means 15, the paper's "commonly
	// used" setting.
	FractalHeight uint8
	// BlockSize is the number of journals per block. Zero means 128.
	BlockSize int
	// Clock supplies commit timestamps; nil means time.Now().UnixNano().
	// Tests and the time-attack simulations inject logical clocks.
	Clock func() int64
	// LSP signs receipts and states. Required.
	LSP *sig.KeyPair
	// Registry authenticates member roles. Optional: when nil, role
	// checks are skipped (library-embedded mode); mutations then require
	// only the DBA signature.
	Registry *ca.Registry
	// DBA is the database administrator's public key, required for purge
	// and occult prerequisites.
	DBA sig.PublicKey
	// Store holds the ledger streams. Required.
	Store streamfs.Store
	// Blobs holds raw payloads. Required.
	Blobs streamfs.BlobStore
	// PipelineDepth selects the write-path mode. Zero (the default) is
	// the synchronous path: each Append admits, sequences, and commits
	// inline under the ledger lock — fully deterministic, what tests,
	// recovery, and audit flows rely on. A positive value enables the
	// staged commit pipeline (pipeline.go) with that many units of
	// committer-queue backpressure; Close must be called to drain it.
	PipelineDepth int
	// DisableStateCache forces every proof and State call to sign a
	// fresh SignedState (the historical per-call behaviour). The default
	// caches one signature per commit generation so concurrent reads
	// amortize signing; this switch exists for benchmarks comparing the
	// two and as an escape hatch.
	DisableStateCache bool
	// VerifyBatch enables admission-stage batch verification of client
	// signatures in pipelined mode: up to VerifyBatch pending admissions
	// are collected per window and their π_c/co-signer checks fanned out
	// over a small worker pool (admitverify.go), amortizing ECDSA
	// scheduling the way group commit amortizes π_s signing. Zero (the
	// default) verifies inline on the submitting goroutine. Ignored when
	// PipelineDepth is zero.
	VerifyBatch int
	// VerifyWorkers sizes the batch-verification worker pool. Zero means
	// min(4, GOMAXPROCS). Ignored unless VerifyBatch is set.
	VerifyWorkers int
	// SyncEvery mirrors streamfs.DiskOptions.SyncEvery at the engine
	// level: in addition to the commit points that always flush (genesis,
	// block cuts, purge/occult decisions, time anchors — DESIGN.md §4.4),
	// a positive value also flushes the journal and digest streams after
	// every N applied records, bounding how many acknowledged-but-unsynced
	// appends a crash can lose between block cuts. Zero flushes at commit
	// points only.
	SyncEvery int
	// ApplyOnly opens the ledger as a replication follower (replicate.go):
	// it holds no LSP private key, never writes its own genesis, and
	// refuses every originating mutation — records arrive verbatim from
	// the primary's streams and roll forward through the recovery code
	// paths. LSP may be nil; PrimaryLSP is required instead.
	ApplyOnly bool
	// PrimaryLSP is the pinned public key of the primary's LSP, required
	// in ApplyOnly mode: replicated SignedState checkpoints are verified
	// against it before they are cached or served.
	PrimaryLSP sig.PublicKey
}

func (c Config) withDefaults() (Config, error) {
	if c.URI == "" {
		return c, fmt.Errorf("%w: empty URI", ErrBadConfig)
	}
	if c.LSP == nil && !c.ApplyOnly {
		return c, fmt.Errorf("%w: nil LSP key", ErrBadConfig)
	}
	if c.ApplyOnly {
		if c.PrimaryLSP == (sig.PublicKey{}) {
			return c, fmt.Errorf("%w: apply-only mode requires a pinned PrimaryLSP key", ErrBadConfig)
		}
		// A follower takes no client writes, so the staged pipeline has
		// nothing to do; force the synchronous (recovery-shaped) path.
		c.PipelineDepth = 0
		c.VerifyBatch = 0
	}
	if c.Store == nil || c.Blobs == nil {
		return c, fmt.Errorf("%w: nil store or blob store", ErrBadConfig)
	}
	if c.FractalHeight == 0 {
		c.FractalHeight = 15
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 128
	}
	if c.Clock == nil {
		//lint:ignore L3 the Config.Clock default IS the injection point — replay and audit override it
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c, nil
}

// Ledger is the engine. All mutating operations serialize through its
// write lock (the single-committer jsn assignment of §II-C); reads and
// proofs take the read lock.
type Ledger struct {
	mu  sync.RWMutex
	cfg Config

	journals streamfs.Stream // full records; purge truncates a prefix
	digests  streamfs.Stream // tx-hash per jsn; never truncated
	blocks   streamfs.Stream // block headers
	survival streamfs.Stream // milestone journals preserved across purges

	fam   *fam.Tree
	clues *cmtree.Tree
	state *mpt.Trie

	occulted     map[uint64]bool            // the occult bitmap index
	eraseQueue   []uint64                   // async occult backlog
	payloadRefs  map[hashutil.Digest]int    // live references per blob
	stateIndex   map[string]stateIndexEntry // latest world-state writes
	firstSeen    map[sig.PublicKey]uint64
	headers      []*BlockHeader
	pendingCount uint64
	nextJSN      uint64
	base         uint64 // first unpurged jsn

	// Staged commit pipeline (pipeline.go). seqMu orders stage 2: jsn
	// and timestamp assignment plus queue submission. seqNext is the
	// next jsn to assign; it runs ahead of nextJSN by however many
	// records sit in the committer queue. comm is nil in synchronous
	// mode. failed (guarded by mu) latches a half-applied commit: the
	// engine then refuses further writes rather than let the dense jsn
	// space grow a hole.
	seqMu   sync.Mutex
	seqNext uint64
	comm    *committer
	failed  error

	// verif is the admission-stage batch signature verification pool
	// (admitverify.go); nil unless Config.VerifyBatch is set in
	// pipelined mode.
	verif *verifier

	// unsyncedApplied counts records applied since the last stream flush,
	// driving Config.SyncEvery. Guarded by mu.
	unsyncedApplied int

	// Group fsync coalescing (durability.go). All guarded by mu:
	// syncDeferred is set by applyGroup for the span of one pipelined
	// group apply; while set, commit-point and SyncEvery flushes only
	// mark the pending flags, and applyGroup issues one coalesced sync
	// at the group end before any unit is acknowledged.
	syncDeferred       bool
	pendingCommitSync  bool
	pendingAppliedSync bool

	// stateGen counts commit generations: it is bumped under mu by every
	// mutation that could change what a SignedState or proof reflects
	// (record apply, block cut, purge, occult, reorganize). stateSigs
	// caches one signed state per generation (statecache.go).
	stateGen  uint64
	stateSigs stateCache

	// clueSet caches the sorted clue-set (absence) commitment, keyed on
	// (clue name-set version, purge base) rather than stateGen: plain
	// appends to existing clues never invalidate it (statecache.go).
	clueSet clueSetCache

	// replica is the follower-mode state (replicate.go): the cached
	// primary checkpoints proofs anchor to, and the resync seeding flag.
	// Guarded by mu.
	replica replicaState
}

// Open creates or recovers a ledger over the given stores.
func Open(cfg Config) (*Ledger, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &Ledger{
		cfg:       cfg,
		fam:       fam.MustNew(cfg.FractalHeight),
		clues:     cmtree.New(),
		state:     mpt.New(),
		occulted:    make(map[uint64]bool),
		payloadRefs: make(map[hashutil.Digest]int),
		stateIndex:  make(map[string]stateIndexEntry),
		firstSeen:   make(map[sig.PublicKey]uint64),
	}
	for _, open := range []struct {
		name string
		dst  *streamfs.Stream
	}{
		{streamJournals, &l.journals},
		{streamDigests, &l.digests},
		{streamBlocks, &l.blocks},
		{streamSurvival, &l.survival},
	} {
		s, err := cfg.Store.Stream(open.name)
		if err != nil {
			return nil, err
		}
		*open.dst = s
	}
	if err := l.reconcileStreams(); err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", cfg.URI, err)
	}
	if l.digests.Len() > 0 {
		if err := l.recover(); err != nil {
			return nil, fmt.Errorf("ledger: recover %s: %w", cfg.URI, err)
		}
	} else if !cfg.ApplyOnly {
		// A follower never authors its own genesis — jsn 0 replicates
		// from the primary like every other record.
		if err := l.writeGenesis(); err != nil {
			return nil, err
		}
	} else if b := l.journals.Base(); b > 0 {
		// A follower that crashed right after a resync re-base, before
		// any digest of the fill survived: re-enter seeding at the
		// recorded base (recover() does the same when digests exist).
		l.base = b
		l.replica.seeding = true
	}
	l.seqNext = l.nextJSN
	if cfg.PipelineDepth > 0 {
		l.comm = &committer{
			queue:   make(chan *commitUnit, cfg.PipelineDepth),
			stopped: make(chan struct{}),
		}
		go l.runCommitter()
		if cfg.VerifyBatch > 0 {
			workers := cfg.VerifyWorkers
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
				if workers > 4 {
					workers = 4
				}
			}
			l.verif = newVerifier(cfg.VerifyBatch, workers)
		}
	}
	return l, nil
}

// writeGenesis appends the genesis journal (jsn 0), authored by the LSP.
func (l *Ledger) writeGenesis() error {
	req := &journal.Request{
		LedgerURI: l.cfg.URI,
		Type:      journal.TypeGenesis,
		Payload:   []byte("genesis:" + l.cfg.URI),
	}
	if err := req.Sign(l.cfg.LSP); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.appendLocked(req, nil); err != nil {
		return err
	}
	// A ledger must never reopen without its genesis: flush before the
	// first client request can be acknowledged.
	return l.syncCommitLocked()
}

// URI returns the ledger identifier.
func (l *Ledger) URI() string { return l.cfg.URI }

// FractalHeight returns the fam δ in use (auditors rebuild a shadow fam
// tree with the same shape).
func (l *Ledger) FractalHeight() uint8 { return l.cfg.FractalHeight }

// LSPPublic returns the LSP's public key (what clients pin). In
// apply-only mode there is no local signing key; the pinned primary key
// is the one every served state and proof verifies against.
func (l *Ledger) LSPPublic() sig.PublicKey {
	if l.cfg.LSP == nil {
		return l.cfg.PrimaryLSP
	}
	return l.cfg.LSP.Public()
}

// Size returns the number of journals committed (including genesis and
// mutation journals).
func (l *Ledger) Size() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextJSN
}

// Base returns the first unpurged jsn.
func (l *Ledger) Base() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.base
}

// Append validates a signed client request (π_c and any co-signatures,
// plus member certification when a registry is configured — the threat-A
// check) and commits it, returning the LSP-signed receipt π_s. In
// pipelined mode all of that admission work runs lock-free on the
// caller's goroutine (stage 1), and the commit rides the staged
// pipeline.
func (l *Ledger) Append(req *journal.Request) (*journal.Receipt, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	if l.comm != nil {
		adm, err := l.admitOne(req, false)
		if err != nil {
			return nil, err
		}
		return l.appendPipelined(adm)
	}
	// Synchronous mode: the historical write path.
	if err := req.ValidateShape(); err != nil {
		return nil, err
	}
	if err := req.VerifyAllSigsAt(req.Hash()); err != nil {
		return nil, err
	}
	if req.LedgerURI != l.cfg.URI {
		return nil, fmt.Errorf("%w: request for %q on ledger %q", journal.ErrBadRequest, req.LedgerURI, l.cfg.URI)
	}
	switch req.Type {
	case journal.TypeNormal:
	default:
		return nil, fmt.Errorf("%w: clients may only append normal journals (got %s)", ErrNotPermitted, req.Type)
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(req.ClientPK, ca.RoleUser); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	return l.appendLocked(req, nil)
}

// appendLocked commits a request as the next journal, synchronously
// under the apply lock (the serial path, and every privileged write —
// genesis, mutations, time anchoring — which runs under lockExclusive).
// extra carries type-specific payloads (mutation descriptors, time
// attestations).
func (l *Ledger) appendLocked(req *journal.Request, extra []byte) (*journal.Receipt, error) {
	adm, err := l.admitChecked(req, extra, req.Hash())
	if err != nil {
		return nil, err
	}
	rec := buildRecord(&adm, l.nextJSN, l.cfg.Clock())
	txHash := rec.TxHash()
	if err := l.applyRecordLocked(rec, txHash); err != nil {
		return nil, err
	}
	receipt := l.receiptLocked(rec, txHash)
	if err := receipt.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	return receipt, nil
}

// applyRecordLocked applies one sequenced record to every persistent
// structure: journal and digest streams, the fam accumulator, the
// CM-Tree clue index, the world-state MPT, and the block cutter. The
// record's jsn must extend the applied prefix densely; any failure
// after the journal stream write latches l.failed, because the streams
// and indexes have diverged and further writes would compound the
// damage.
func (l *Ledger) applyRecordLocked(rec *journal.Record, txHash hashutil.Digest) error {
	if l.failed != nil {
		return l.failed
	}
	if rec.JSN != l.nextJSN {
		l.failed = fmt.Errorf("ledger: sequenced jsn %d does not extend applied prefix %d", rec.JSN, l.nextJSN)
		return l.failed
	}
	// Encode on a pooled writer: Stream.Append copies the record, so the
	// buffer can go straight back to the pool.
	enc := wire.GetWriter()
	rec.Encode(enc)
	_, err := l.journals.Append(enc.Bytes())
	wire.PutWriter(enc)
	if err != nil {
		// Nothing was applied; the engine can keep going (in pipelined
		// mode the next unit's jsn check latches the failure instead).
		return fmt.Errorf("ledger: journal stream: %w", err)
	}
	if _, err := l.digests.Append(txHash[:]); err != nil {
		l.failed = fmt.Errorf("ledger: digest stream: %w", err)
		return l.failed
	}
	l.payloadRefs[rec.PayloadDigest]++
	l.fam.Append(txHash)
	for _, c := range rec.Clues {
		if prevLast, existed := l.clues.Insert(c, rec.JSN, txHash); existed && prevLast < l.base {
			// A fully-purged clue just came back to life: the committed
			// live set changed without a name-set version bump.
			l.clueSet.invalidate()
		}
	}
	if len(rec.StateKey) > 0 {
		l.state = l.state.Put(rec.StateKey, encodeStateValue(rec.JSN, rec.PayloadDigest))
		l.stateIndex[string(rec.StateKey)] = stateIndexEntry{jsn: rec.JSN, digest: rec.PayloadDigest}
	}
	if _, ok := l.firstSeen[rec.ClientPK]; !ok {
		l.firstSeen[rec.ClientPK] = rec.JSN
	}
	l.nextJSN++
	l.stateGen++
	l.pendingCount++
	l.unsyncedApplied++
	if l.pendingCount >= uint64(l.cfg.BlockSize) {
		if err := l.cutBlockLocked(); err != nil {
			l.failed = err
			return err
		}
	} else if l.cfg.SyncEvery > 0 && l.unsyncedApplied >= l.cfg.SyncEvery {
		if err := l.appliedSyncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// receiptLocked fixes the receipt fields for a just-applied record. The
// block height is "the block that will contain it" — unless applying
// the record itself cut a block that already contains it.
func (l *Ledger) receiptLocked(rec *journal.Record, txHash hashutil.Digest) *journal.Receipt {
	receipt := &journal.Receipt{
		JSN:         rec.JSN,
		RequestHash: rec.RequestHash,
		TxHash:      txHash,
		BlockHeight: uint64(len(l.headers)),
		Timestamp:   rec.Timestamp,
	}
	if n := len(l.headers); n > 0 && l.headers[n-1].FirstJSN+l.headers[n-1].Count > rec.JSN {
		receipt.BlockHeight = l.headers[n-1].Height
		receipt.BlockHash = l.headers[n-1].Hash()
	}
	return receipt
}

// stateIndexEntry mirrors the latest world-state write per key so that
// pseudo-genesis snapshots can be built without walking the MPT.
type stateIndexEntry struct {
	jsn    uint64
	digest hashutil.Digest
}

func encodeStateValue(jsn uint64, payload hashutil.Digest) []byte {
	w := wire.NewWriter(48)
	w.Uvarint(jsn)
	w.Digest(payload)
	return w.Bytes()
}

func decodeStateValue(b []byte) (uint64, hashutil.Digest, error) {
	r := wire.NewReader(b)
	jsn := r.Uvarint()
	d := r.Digest()
	if err := r.Finish(); err != nil {
		return 0, hashutil.Zero, err
	}
	return jsn, d, nil
}

// CutBlock seals any pending journals into a block immediately (normally
// blocks cut automatically every BlockSize journals).
func (l *Ledger) CutBlock() (*BlockHeader, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	if l.pendingCount == 0 {
		if n := len(l.headers); n > 0 {
			return l.headers[n-1], nil
		}
		return nil, fmt.Errorf("%w: no journals to commit", ErrNotFound)
	}
	if err := l.cutBlockLocked(); err != nil {
		return nil, err
	}
	return l.headers[len(l.headers)-1], nil
}

func (l *Ledger) cutBlockLocked() error {
	jroot, err := l.fam.Root()
	if err != nil {
		return err
	}
	h := &BlockHeader{
		Height:      uint64(len(l.headers)),
		FirstJSN:    l.nextJSN - l.pendingCount,
		Count:       l.pendingCount,
		Timestamp:   l.cfg.Clock(),
		JournalRoot: jroot,
		ClueRoot:    l.clues.RootHash(),
		StateRoot:   l.state.RootHash(),
	}
	if n := len(l.headers); n > 0 {
		h.Prev = l.headers[n-1].Hash()
	}
	if _, err := l.blocks.Append(h.EncodeBytes()); err != nil {
		return fmt.Errorf("ledger: block stream: %w", err)
	}
	l.headers = append(l.headers, h)
	l.pendingCount = 0
	l.stateGen++
	// A block cut is a commit point: the header and everything it covers
	// must be durable before the cut is acknowledged (DESIGN.md §4.4).
	// Inside a pipelined group the flush is deferred to the group end —
	// nothing is acknowledged before it runs (durability.go).
	return l.commitPointSyncLocked()
}

// Header returns the block header at height.
func (l *Ledger) Header(height uint64) (*BlockHeader, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if height >= uint64(len(l.headers)) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrNotFound, height, len(l.headers))
	}
	return l.headers[height], nil
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.headers))
}

// State returns the live LSP-signed LedgerInfo — the trusted datum for
// client-side verification and the digest source for time anchoring.
func (l *Ledger) State() (*SignedState, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.stateLocked()
}

// stateLocked returns the LSP-signed state for the current commit
// generation. Callers hold l.mu (read or write). Unless the cache is
// disabled, one signature is produced per generation and shared by
// every concurrent reader; a hit costs two mutex operations and no
// crypto, no clock read.
func (l *Ledger) stateLocked() (*SignedState, error) {
	if l.cfg.ApplyOnly {
		// A follower cannot sign: it serves the primary's checkpoint, and
		// only when the applied prefix matches it exactly — otherwise the
		// local accumulator roots would not be the ones the primary
		// signed, and every proof built against them would fail at the
		// client (replicate.go).
		return l.replicaExactStateLocked()
	}
	gen := l.stateGen
	if !l.cfg.DisableStateCache {
		if st := l.stateSigs.get(gen); st != nil {
			return st, nil
		}
	}
	jroot, err := l.fam.Root()
	if err != nil {
		return nil, err
	}
	cset := l.clueSet.get(l.clues, l.base)
	skel := SignedState{
		URI:         l.cfg.URI,
		JSN:         l.nextJSN,
		JournalRoot: jroot,
		ClueRoot:    l.clues.RootHash(),
		StateRoot:   l.state.RootHash(),
		ClueCount:   cset.Count(),
		ClueSetRoot: cset.Root(),
		Timestamp:   l.cfg.Clock(),
	}
	if l.cfg.DisableStateCache {
		if err := skel.sign(l.cfg.LSP); err != nil {
			return nil, err
		}
		return &skel, nil
	}
	return l.stateSigs.signAndStore(gen, skel, l.cfg.LSP)
}

// GetJournal returns the committed record at jsn. Occulted journals come
// back with the Occulted bit set; purged ones fail with ErrPurged. The
// ledger lock covers only the in-memory snapshot (bounds, occult bit);
// the journal-stream read happens after it is dropped — committed
// records are immutable, and the stream carries its own lock.
func (l *Ledger) GetJournal(jsn uint64) (*journal.Record, error) {
	l.mu.RLock()
	if jsn >= l.nextJSN {
		defer l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d of %d", ErrNotFound, jsn, l.nextJSN)
	}
	if jsn < l.base {
		defer l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d below pseudo genesis %d", ErrPurged, jsn, l.base)
	}
	occ := l.occulted[jsn]
	l.mu.RUnlock()
	// Zero-copy read: the frame lands in a pooled buffer and DecodeRecord
	// copies out the few fields it keeps, so serving a journal allocates
	// no transient payload slice. Proof serving (ProveExistence) instead
	// uses readJournalBytes — ExistenceProof retains the raw record bytes.
	rb, err := streamfs.ReadRecBuf(l.journals, jsn)
	if err != nil {
		return nil, l.mapJournalReadErr(jsn, err)
	}
	rec, err := journal.DecodeRecord(rb.Bytes())
	rb.Release()
	if err != nil {
		return nil, err
	}
	rec.Occulted = occ
	return rec, nil
}

// readJournalBytes reads a committed record's raw bytes without holding
// the ledger lock. The caller has already bounds-checked jsn; if a
// concurrent purge truncated the prefix between that check and this
// read, the stream miss is reported as ErrPurged.
func (l *Ledger) readJournalBytes(jsn uint64) ([]byte, error) {
	raw, err := l.journals.Read(jsn)
	if err != nil {
		return nil, l.mapJournalReadErr(jsn, err)
	}
	return raw, nil
}

// mapJournalReadErr distinguishes a concurrent purge from real damage.
func (l *Ledger) mapJournalReadErr(jsn uint64, err error) error {
	l.mu.RLock()
	base := l.base
	l.mu.RUnlock()
	if jsn < base {
		return fmt.Errorf("%w: jsn %d below pseudo genesis %d", ErrPurged, jsn, base)
	}
	return fmt.Errorf("ledger: read journal %d: %w", jsn, err)
}

func (l *Ledger) getJournalLocked(jsn uint64) (*journal.Record, error) {
	if jsn >= l.nextJSN {
		return nil, fmt.Errorf("%w: jsn %d of %d", ErrNotFound, jsn, l.nextJSN)
	}
	if jsn < l.base {
		return nil, fmt.Errorf("%w: jsn %d below pseudo genesis %d", ErrPurged, jsn, l.base)
	}
	raw, err := l.journals.Read(jsn)
	if err != nil {
		return nil, fmt.Errorf("ledger: read journal %d: %w", jsn, err)
	}
	rec, err := journal.DecodeRecord(raw)
	if err != nil {
		return nil, err
	}
	rec.Occulted = l.occulted[jsn]
	return rec, nil
}

// GetPayload returns the raw payload of a journal, verified against its
// recorded digest. Occulted journals fail with ErrOcculted.
func (l *Ledger) GetPayload(jsn uint64) ([]byte, error) {
	rec, err := l.GetJournal(jsn)
	if err != nil {
		return nil, err
	}
	if rec.Occulted {
		return nil, fmt.Errorf("%w: jsn %d", ErrOcculted, jsn)
	}
	data, err := l.cfg.Blobs.Get(rec.PayloadDigest)
	if err != nil {
		return nil, err
	}
	if hashutil.Sum(data) != rec.PayloadDigest {
		return nil, fmt.Errorf("%w: payload of jsn %d does not match recorded digest", ErrVerify, jsn)
	}
	return data, nil
}

// TxHash returns the accumulated digest of any journal ever committed,
// including purged ones (the digest stream is never truncated).
func (l *Ledger) TxHash(jsn uint64) (hashutil.Digest, error) {
	raw, err := l.digests.Read(jsn)
	if err != nil {
		return hashutil.Zero, fmt.Errorf("%w: jsn %d", ErrNotFound, jsn)
	}
	var d hashutil.Digest
	copy(d[:], raw)
	return d, nil
}

// ListClue returns the records of a clue's lineage, in version order.
func (l *Ledger) ListClue(clue string) ([]*journal.Record, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	jsns, err := l.clues.JSNs(clue)
	if err != nil {
		return nil, fmt.Errorf("%w: clue %q", ErrNotFound, clue)
	}
	out := make([]*journal.Record, 0, len(jsns))
	for _, jsn := range jsns {
		rec, err := l.getJournalLocked(jsn)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// GetState looks up the world-state entry for a key: the jsn and payload
// digest of the latest journal that set it.
func (l *Ledger) GetState(key []byte) (uint64, hashutil.Digest, error) {
	l.mu.RLock()
	v, err := l.state.Get(key)
	l.mu.RUnlock()
	if err != nil {
		return 0, hashutil.Zero, fmt.Errorf("%w: state key %q", ErrNotFound, key)
	}
	return decodeStateValue(v)
}

// AnchorTime records a verified TSA attestation as a time journal
// (Protocol 3, step 2: the signed time journal is anchored back to the
// ledger). When a registry is configured the TSA key must be certified.
func (l *Ledger) AnchorTime(ta *journal.TimeAttestation) (*journal.Receipt, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	if err := ta.Verify(); err != nil {
		return nil, err
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(ta.TSAPK, ca.RoleTSA); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	req := &journal.Request{
		LedgerURI: l.cfg.URI,
		Type:      journal.TypeTime,
		Payload:   []byte("time-journal"),
	}
	if err := req.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	receipt, err := l.appendLocked(req, ta.EncodeBytes())
	if err != nil {
		return nil, err
	}
	// A time anchor is a commit point: the attested prefix and the time
	// journal must survive a crash together (DESIGN.md §4.4).
	if err := l.syncCommitLocked(); err != nil {
		return nil, err
	}
	return receipt, nil
}

// AnchorTimeWith runs one two-way pegging round (Protocol 3) atomically:
// under the commit lock it takes the current fam root, has stamp endorse
// it (a TSA, or a T-Ledger submission), and anchors the result back as a
// time journal. Because the lock is held across the exchange, the
// attestation's digest is exactly the fam root over all journals that
// precede the time journal — which is what lets an auditor re-derive and
// check it (§V step 2).
func (l *Ledger) AnchorTimeWith(stamp func(hashutil.Digest) (*journal.TimeAttestation, error)) (*journal.Receipt, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	root, err := l.fam.Root()
	if err != nil {
		return nil, err
	}
	ta, err := stamp(root)
	if err != nil {
		return nil, fmt.Errorf("ledger: time endorsement: %w", err)
	}
	if err := ta.Verify(); err != nil {
		return nil, err
	}
	if ta.Digest != root {
		return nil, fmt.Errorf("%w: attestation covers %s, submitted %s", ErrVerify, ta.Digest.Short(), root.Short())
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(ta.TSAPK, ca.RoleTSA); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	req := &journal.Request{LedgerURI: l.cfg.URI, Type: journal.TypeTime, Payload: []byte("time-journal")}
	//lint:ignore L1 Protocol 3 holds the commit lock across the whole pegging round so no journal lands between root and attestation
	if err := req.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	receipt, err := l.appendLocked(req, ta.EncodeBytes())
	if err != nil {
		return nil, err
	}
	if err := l.syncCommitLocked(); err != nil {
		return nil, err
	}
	return receipt, nil
}

// FamRootAt recomputes the fam root as it was when size journals had
// been committed. Auditors use it to check that a time journal's
// attestation covers exactly the preceding ledger prefix.
func (l *Ledger) FamRootAt(size uint64) (hashutil.Digest, error) {
	// Only the bound needs the lock. The digest stream is append-only and
	// never truncated (purge rewrites the journal stream, not digests),
	// so the prefix [0, size) is immutable once nextJSN has passed it and
	// the O(size) re-derivation can run without stalling committers.
	l.mu.RLock()
	next := l.nextJSN
	l.mu.RUnlock()
	if size == 0 || size > next {
		return hashutil.Zero, fmt.Errorf("%w: size %d of %d", ErrNotFound, size, next)
	}
	t := fam.MustNew(l.cfg.FractalHeight)
	for jsn := uint64(0); jsn < size; jsn++ {
		raw, err := l.digests.Read(jsn)
		if err != nil {
			return hashutil.Zero, err
		}
		var d hashutil.Digest
		copy(d[:], raw)
		t.Append(d)
	}
	return t.Root()
}

// Anchor captures a fam trusted anchor (fam-aoa) at the current state.
// Verifiers set anchors after completing an audit.
func (l *Ledger) Anchor() *fam.Anchor {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.fam.AnchorNow()
}

// Clock returns the configured clock (used by the T-Ledger integration).
func (l *Ledger) Clock() func() int64 { return l.cfg.Clock }
