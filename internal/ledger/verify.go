package ledger

import (
	"fmt"

	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/mpt"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements the server-side proof generation and the pure
// client-side verification functions — verification "conducted in two
// different manners" per §II-C: at server side when the LSP is trusted,
// at client side when it is not.

// ExistenceProof bundles everything a distrusting client needs to verify
// that a journal exists verbatim on the ledger (the what factor):
// the raw record, its fam accumulator proof, and the LSP-signed state the
// proof anchors to. Payload is included when the caller asked for it and
// the journal is not occulted.
type ExistenceProof struct {
	RecordBytes []byte
	Payload     []byte // nil for occulted journals or digest-only proofs
	Fam         *fam.Proof
	State       *SignedState
}

// ProveExistence builds an existence proof for jsn against the live
// state. withPayload controls whether the raw payload ships along.
//
// The ledger lock covers only the in-memory snapshot: bounds, the fam
// path (copied out by Prove), the occult bit, and the signed state.
// The journal-stream and blob reads happen after the lock is dropped —
// committed records and content-addressed payloads are immutable, and
// both stores carry their own locks.
func (l *Ledger) ProveExistence(jsn uint64, withPayload bool) (*ExistenceProof, error) {
	return l.proveExistence(jsn, nil, withPayload)
}

// ProveExistenceAnchored is ProveExistence using a verifier-held fam-aoa
// trusted anchor, producing the short proof of Figure 4(a). The anchored
// fam path and the signed state are taken under one read-lock section,
// so the hop chain ends at exactly the signed JournalRoot even while
// concurrent appends land.
func (l *Ledger) ProveExistenceAnchored(jsn uint64, a *fam.Anchor, withPayload bool) (*ExistenceProof, error) {
	return l.proveExistence(jsn, a, withPayload)
}

func (l *Ledger) proveExistence(jsn uint64, a *fam.Anchor, withPayload bool) (*ExistenceProof, error) {
	l.mu.RLock()
	if jsn >= l.nextJSN {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d of %d", ErrNotFound, jsn, l.nextJSN)
	}
	if jsn < l.base {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d", ErrPurged, jsn)
	}
	var fp *fam.Proof
	var st *SignedState
	var err error
	if l.cfg.ApplyOnly && a == nil {
		// Follower path: prove against the newest primary-signed
		// checkpoint, not the live frontier — the follower cannot sign a
		// frontier state, but fam's historical proofs (ProveAt) fold any
		// covered record to exactly the root the primary signed. This is
		// what keeps a partitioned follower serving verifiable proofs
		// for the entire checkpointed prefix while honestly refusing the
		// uncovered tail (ErrStaleCheckpoint → 503 at the server).
		st, err = l.replicaAnyStateLocked()
		if err == nil && jsn >= st.JSN {
			err = fmt.Errorf("%w: jsn %d not covered by checkpoint at %d", ErrStaleCheckpoint, jsn, st.JSN)
		}
		if err == nil {
			fp, err = l.fam.ProveAt(jsn, st.JSN)
		}
	} else {
		if a != nil {
			fp, err = l.fam.ProveAnchored(jsn, a)
		} else {
			fp, err = l.fam.Prove(jsn)
		}
		if err == nil {
			st, err = l.stateLocked()
		}
	}
	occ := l.occulted[jsn]
	l.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	raw, err := l.readJournalBytes(jsn)
	if err != nil {
		return nil, err
	}
	p := &ExistenceProof{RecordBytes: raw, Fam: fp, State: st}
	if withPayload && !occ {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return nil, err
		}
		payload, err := l.cfg.Blobs.Get(rec.PayloadDigest)
		if err == nil {
			p.Payload = payload
		}
	}
	return p, nil
}

// VerifyExistence is the client-side what (+who) verification: check the
// LSP's signature on the state, fold the record's tx-hash through the fam
// proof to the signed journal root, re-verify the record's client
// signatures, and — when a payload is present — match it against the
// recorded digest (the "foobar" vs "foopar" check of §III-A).
//
// Occult Protocol 2 falls out naturally: an occulted journal ships no
// payload, and its retained PayloadDigest is what the tx-hash covers.
func VerifyExistence(p *ExistenceProof, lsp sig.PublicKey) (*journal.Record, error) {
	return verifyExistence(p, lsp, nil)
}

// VerifyExistenceAnchored is VerifyExistence under a fam-aoa anchor.
func VerifyExistenceAnchored(p *ExistenceProof, lsp sig.PublicKey, a *fam.Anchor) (*journal.Record, error) {
	return verifyExistence(p, lsp, a)
}

func verifyExistence(p *ExistenceProof, lsp sig.PublicKey, a *fam.Anchor) (*journal.Record, error) {
	if p == nil || p.State == nil || p.Fam == nil {
		return nil, fmt.Errorf("%w: incomplete proof", ErrVerify)
	}
	if err := p.State.Verify(lsp); err != nil {
		return nil, err
	}
	return verifyExistenceItem(p.RecordBytes, p.Payload, p.Fam, a, p.State.JournalRoot)
}

// VerifyExistenceServer is the trusted-LSP fast path: the server checks
// the journal against its own accumulator without signing a state or
// shipping bytes.
func (l *Ledger) VerifyExistenceServer(jsn uint64) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, err := l.getJournalLocked(jsn)
	if err != nil {
		return err
	}
	root, err := l.fam.Root()
	if err != nil {
		return err
	}
	fp, err := l.fam.Prove(jsn)
	if err != nil {
		return err
	}
	if err := fam.Verify(rec.TxHash(), fp, root); err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	return nil
}

// ClueProofBundle is the client-side lineage proof for the Verify(lgid,
// CLUE, …) API of §IV-C: the retrieved records for the requested version
// range, the CM-Tree proof set, and the signed state anchoring CM-Tree1.
type ClueProofBundle struct {
	Clue    string
	Records [][]byte // encoded journal records for [Begin, End)
	CM      *cmtree.ClueProof
	State   *SignedState
}

// ProveClue builds the bundle for versions [begin, end) of a clue
// (steps 1–5 of the client-side algorithm, executed at the server).
// Pass end = 0 for "the entire clue so far".
// The read lock covers the clue's jsn list, the CM-Tree snapshot, and
// the signed state; the proof walk over the snapshot (a copy) and the
// journal-stream reads run after the lock is dropped.
func (l *Ledger) ProveClue(clue string, begin, end uint64) (*ClueProofBundle, error) {
	l.mu.RLock()
	jsns, err := l.clues.JSNs(clue)
	if err != nil {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: clue %q", ErrNotFound, clue)
	}
	if end == 0 {
		end = uint64(len(jsns))
	}
	if begin >= end || end > uint64(len(jsns)) {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: range [%d,%d) of %d", cmtree.ErrBadRange, begin, end, len(jsns))
	}
	snap := l.clues.Snapshot()
	st, stErr := l.stateLocked()
	l.mu.RUnlock()
	if stErr != nil {
		return nil, stErr
	}
	cp, err := snap.ProveClue(clue, begin, end)
	if err != nil {
		return nil, err
	}
	b := &ClueProofBundle{Clue: clue, CM: cp, State: st}
	for _, jsn := range jsns[begin:end] {
		raw, err := l.readJournalBytes(jsn)
		if err != nil {
			return nil, fmt.Errorf("ledger: clue %q journal %d: %w", clue, jsn, err)
		}
		b.Records = append(b.Records, raw)
	}
	return b, nil
}

// ProveClueByTime is the timestamp-boundary form of §IV-C's typical
// scene 2 ("verify within a range specified by version (or timestamp)
// boundaries"): it maps the half-open commit-time window [t1, t2) to the
// clue's version range and proves that. Clue versions are appended in
// commit order, so timestamps are monotone within a clue.
func (l *Ledger) ProveClueByTime(clue string, t1, t2 int64) (*ClueProofBundle, error) {
	l.mu.RLock()
	jsns, err := l.clues.JSNs(clue)
	l.mu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("%w: clue %q", ErrNotFound, clue)
	}
	begin, end := uint64(0), uint64(0)
	found := false
	for v, jsn := range jsns {
		rec, err := l.GetJournal(jsn)
		if err != nil {
			return nil, err
		}
		if rec.Timestamp < t1 {
			begin = uint64(v + 1)
			continue
		}
		if rec.Timestamp >= t2 {
			break
		}
		end = uint64(v + 1)
		found = true
	}
	if !found {
		return nil, fmt.Errorf("%w: clue %q has no versions in [%d, %d)", ErrNotFound, clue, t1, t2)
	}
	return l.ProveClue(clue, begin, end)
}

// VerifyClue is the client-side step 6: re-derive each record's tx-hash,
// validate the lineage against the clue's CM-Tree2 frontier and CM-Tree1
// root (both layers must prove, §IV-C), check the LSP state signature,
// and re-verify every record's client signatures. Returns the decoded
// records on success.
func VerifyClue(b *ClueProofBundle, lsp sig.PublicKey) ([]*journal.Record, error) {
	if b == nil || b.CM == nil || b.State == nil {
		return nil, fmt.Errorf("%w: incomplete clue bundle", ErrVerify)
	}
	// The CM proof's clue is what the MPT path below authenticates; the
	// bundle's label must agree, or a server could relabel a lineage.
	if b.Clue != b.CM.Clue {
		return nil, fmt.Errorf("%w: bundle labeled %q but proves clue %q", ErrVerify, b.Clue, b.CM.Clue)
	}
	if err := b.State.Verify(lsp); err != nil {
		return nil, err
	}
	recs := make([]*journal.Record, 0, len(b.Records))
	digests := make([]hashutil.Digest, 0, len(b.Records))
	for i, raw := range b.Records {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrVerify, i, err)
		}
		if err := journal.VerifyRecordSigs(rec); err != nil {
			return nil, fmt.Errorf("%w: who: %v", ErrVerify, err)
		}
		recs = append(recs, rec)
		digests = append(digests, rec.TxHash())
	}
	if err := cmtree.VerifyClue(b.State.ClueRoot, b.CM, digests); err != nil {
		return nil, fmt.Errorf("%w: lineage: %v", ErrVerify, err)
	}
	return recs, nil
}

// EncodeBytes serializes an existence proof for transport.
func (p *ExistenceProof) EncodeBytes() []byte {
	w := wire.NewWriter(1024)
	w.WriteBytes(p.RecordBytes)
	w.WriteBytes(p.Payload)
	p.Fam.Encode(w)
	p.State.Encode(w)
	return w.Bytes()
}

// DecodeExistenceProof parses a transported existence proof.
func DecodeExistenceProof(b []byte) (*ExistenceProof, error) {
	r := wire.NewReader(b)
	p := &ExistenceProof{RecordBytes: r.BytesCopy()}
	if payload := r.BytesCopy(); len(payload) > 0 {
		p.Payload = payload
	}
	fp, err := fam.DecodeProof(r)
	if err != nil {
		return nil, err
	}
	p.Fam = fp
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	p.State = st
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeBytes serializes a clue proof bundle for transport.
func (b *ClueProofBundle) EncodeBytes() []byte {
	w := wire.NewWriter(4096)
	w.String(b.Clue)
	w.Uvarint(uint64(len(b.Records)))
	for _, rec := range b.Records {
		w.WriteBytes(rec)
	}
	b.CM.Encode(w)
	b.State.Encode(w)
	return w.Bytes()
}

// DecodeClueProofBundle parses a transported clue bundle.
func DecodeClueProofBundle(raw []byte) (*ClueProofBundle, error) {
	r := wire.NewReader(raw)
	b := &ClueProofBundle{Clue: r.String()}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d records", ErrVerify, n)
	}
	for i := uint64(0); i < n; i++ {
		b.Records = append(b.Records, r.BytesCopy())
	}
	cp, err := cmtree.DecodeClueProof(r)
	if err != nil {
		return nil, err
	}
	b.CM = cp
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	b.State = st
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return b, nil
}

// StateProof is a verifiable world-state read: the current value
// binding for a key (the jsn and payload digest of the latest journal
// that set it), proven into the state MPT whose root the LSP signed.
type StateProof struct {
	Key   []byte
	Value []byte // encodeStateValue(jsn, payloadDigest)
	MPT   *mpt.Proof
	State *SignedState
}

// ProveState builds a verifiable read of the world-state entry for key.
// The read lock covers only the trie snapshot (the MPT is persistent,
// so the pointer stays valid forever) and the signed state; the lookup
// and path collection run lock-free on the snapshot.
func (l *Ledger) ProveState(key []byte) (*StateProof, error) {
	l.mu.RLock()
	trie := l.state
	st, stErr := l.stateLocked()
	l.mu.RUnlock()
	if stErr != nil {
		return nil, stErr
	}
	value, err := trie.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: state key %q", ErrNotFound, key)
	}
	proof, err := trie.Prove(key)
	if err != nil {
		return nil, err
	}
	return &StateProof{Key: key, Value: value, MPT: proof, State: st}, nil
}

// VerifyState is the client-side check of a world-state read: the LSP
// signature over the state, then the MPT path from the key's leaf to the
// signed StateRoot. Returns the jsn and payload digest of the journal
// holding the current value.
func VerifyState(p *StateProof, lsp sig.PublicKey) (uint64, hashutil.Digest, error) {
	if p == nil || p.MPT == nil || p.State == nil {
		return 0, hashutil.Zero, fmt.Errorf("%w: incomplete state proof", ErrVerify)
	}
	if err := p.State.Verify(lsp); err != nil {
		return 0, hashutil.Zero, err
	}
	if err := mpt.VerifyProof(p.State.StateRoot, p.Key, p.Value, p.MPT); err != nil {
		return 0, hashutil.Zero, fmt.Errorf("%w: state: %v", ErrVerify, err)
	}
	return decodeStateValue(p.Value)
}

// EncodeBytes serializes a state proof for transport.
func (p *StateProof) EncodeBytes() []byte {
	w := wire.NewWriter(512)
	w.WriteBytes(p.Key)
	w.WriteBytes(p.Value)
	w.Uvarint(uint64(len(p.MPT.Nodes)))
	for _, n := range p.MPT.Nodes {
		w.WriteBytes(n)
	}
	p.State.Encode(w)
	return w.Bytes()
}

// DecodeStateProof parses a transported state proof.
func DecodeStateProof(raw []byte) (*StateProof, error) {
	r := wire.NewReader(raw)
	p := &StateProof{Key: r.BytesCopy(), Value: r.BytesCopy(), MPT: &mpt.Proof{}}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 4096 {
		return nil, fmt.Errorf("%w: %d MPT nodes", ErrVerify, n)
	}
	for i := uint64(0); i < n; i++ {
		p.MPT.Nodes = append(p.MPT.Nodes, r.BytesCopy())
	}
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	p.State = st
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// VerifyClueServer is the trusted-LSP lineage fast path (§IV-C server
// side: steps 1–3 plus a local validation).
func (l *Ledger) VerifyClueServer(clue string) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	jsns, err := l.clues.JSNs(clue)
	if err != nil {
		return fmt.Errorf("%w: clue %q", ErrNotFound, clue)
	}
	digests := make([]hashutil.Digest, 0, len(jsns))
	for _, jsn := range jsns {
		//lint:ignore L1 the clue index and digest prefix must be read under one lock epoch or a concurrent same-clue append fails the frontier check
		raw, err := l.digests.Read(jsn)
		if err != nil {
			return err
		}
		var d hashutil.Digest
		copy(d[:], raw)
		digests = append(digests, d)
	}
	if err := l.clues.VerifyServer(clue, digests); err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	return nil
}
