package ledger

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ledgerdb/internal/sig"
)

// TestPipelineDepth16ReadStress drives a depth-16 staged pipeline while
// verifying readers hammer every read path that PRs 2–3 narrowed or
// moved off the commit lock: server-side existence verification,
// existence proofs, FamRootAt's unlocked digest-prefix replay,
// Survivors' pinned-endpoint iteration, the cached signed state, and the
// clue lineage fast path. Writers hand each acknowledged jsn to the
// readers over a channel, so everything a reader checks is committed —
// any error is a real atomicity violation, and under -race (check.sh's
// race stage runs this) the detector sees the lock-narrowed reads
// overlapping live commits.
func TestPipelineDepth16ReadStress(t *testing.T) {
	const (
		writers = 4
		opsEach = 20
		readers = 3
		theClue = "c0"
	)
	l, lsp, _, _ := pipeEnv(t, 16)

	acks := make(chan uint64, writers*opsEach)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := sig.GenerateDeterministic(fmt.Sprintf("pipe/race%d", g))
			nonce := uint64(0)
			for i := 0; i < opsEach; i++ {
				nonce++
				req := signedReq(t, key, g, nonce, nil, theClue)
				receipt, err := l.Append(req)
				if err != nil {
					t.Errorf("g%d append: %v", g, err)
					return
				}
				acks <- receipt.JSN
			}
		}(g)
	}

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			n := 0
			for jsn := range acks {
				n++
				if err := l.VerifyExistenceServer(jsn); err != nil {
					t.Errorf("reader %d: VerifyExistenceServer(%d): %v", r, jsn, err)
				}
				if _, err := l.ProveExistence(jsn, true); err != nil {
					t.Errorf("reader %d: ProveExistence(%d): %v", r, jsn, err)
				}
				// The digest prefix [0, jsn] is committed and immutable.
				if _, err := l.FamRootAt(jsn + 1); err != nil {
					t.Errorf("reader %d: FamRootAt(%d): %v", r, jsn+1, err)
				}
				switch n % 4 {
				case 0:
					if _, err := l.State(); err != nil {
						t.Errorf("reader %d: State: %v", r, err)
					}
				case 1:
					if _, err := l.Survivors(); err != nil {
						t.Errorf("reader %d: Survivors: %v", r, err)
					}
				case 2:
					if err := l.VerifyClueServer(theClue); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("reader %d: VerifyClueServer: %v", r, err)
					}
				case 3:
					l.Anchor()
				}
			}
		}(r)
	}

	wg.Wait()
	close(acks)
	rwg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := uint64(1 + writers*opsEach)
	if got := l.Size(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
	st, err := l.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(lsp.Public()); err != nil {
		t.Fatalf("final state: %v", err)
	}
}
