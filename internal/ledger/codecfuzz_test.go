package ledger

import (
	"bytes"
	"fmt"
	"testing"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/wire"
)

func newTestWriter() *wire.Writer { return wire.NewWriter(256) }

// proofCodec abstracts one proof wire format for the exhaustive
// truncation/corruption sweep: encode the server-built object, decode
// transported bytes, and run the client-side verification.
type proofCodec struct {
	name   string
	enc    []byte
	decode func([]byte) (any, error)
	// reencode re-serializes a decoded object; round-trip bytes must be
	// identical (the format is deterministic).
	reencode func(any) []byte
	// verify runs the pure client-side check on a decoded object.
	verify func(any) error
	// claims extracts the authenticated content — what a relying party
	// acts on after verification succeeds. Corruption may only survive
	// decode+verify when it left the claims untouched (i.e., it hit
	// pure path metadata that every check re-derives).
	claims func(any) []byte
}

// buildProofCodecs makes one ledger with clues, state keys, and an
// occulted journal, then captures every proof codec over it.
func buildProofCodecs(t *testing.T) []proofCodec {
	t.Helper()
	e := newEnv(t, nil)
	for i := 0; i < 7; i++ {
		e.nonce++
		req := e.request(t, fmt.Sprintf("doc-%d", i), "K", fmt.Sprintf("solo-%d", i))
		req.StateKey = []byte(fmt.Sprintf("acct-%d", i%3))
		if err := req.Sign(e.client); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ledger.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	lsp := e.lsp.Public()

	ep, err := e.ledger.ProveExistence(3, true)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := e.ledger.ProveClue("K", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.ledger.ProveState([]byte("acct-1"))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := e.ledger.ProveExistenceBatch([]uint64{1, 3, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := e.ledger.ProveAbsence("M", false) // sorts between "K" and "solo-0": both neighbors set
	if err != nil {
		t.Fatal(err)
	}

	return []proofCodec{
		{
			name:     "existence",
			enc:      ep.EncodeBytes(),
			decode:   func(b []byte) (any, error) { return DecodeExistenceProof(b) },
			reencode: func(v any) []byte { return v.(*ExistenceProof).EncodeBytes() },
			verify: func(v any) error {
				_, err := VerifyExistence(v.(*ExistenceProof), lsp)
				return err
			},
			claims: func(v any) []byte {
				p := v.(*ExistenceProof)
				return claimBytes(recordClaims(t, p.RecordBytes), p.Payload, stateBytes(p.State))
			},
		},
		{
			name:     "clue-bundle",
			enc:      cb.EncodeBytes(),
			decode:   func(b []byte) (any, error) { return DecodeClueProofBundle(b) },
			reencode: func(v any) []byte { return v.(*ClueProofBundle).EncodeBytes() },
			verify: func(v any) error {
				_, err := VerifyClue(v.(*ClueProofBundle), lsp)
				return err
			},
			claims: func(v any) []byte {
				b := v.(*ClueProofBundle)
				parts := [][]byte{[]byte(b.Clue), stateBytes(b.State)}
				for _, raw := range b.Records {
					parts = append(parts, recordClaims(t, raw))
				}
				return claimBytes(parts...)
			},
		},
		{
			name:     "state",
			enc:      sp.EncodeBytes(),
			decode:   func(b []byte) (any, error) { return DecodeStateProof(b) },
			reencode: func(v any) []byte { return v.(*StateProof).EncodeBytes() },
			verify: func(v any) error {
				_, _, err := VerifyState(v.(*StateProof), lsp)
				return err
			},
			claims: func(v any) []byte {
				p := v.(*StateProof)
				return claimBytes(p.Key, p.Value, stateBytes(p.State))
			},
		},
		{
			name:     "existence-batch",
			enc:      batch.EncodeBytes(),
			decode:   func(b []byte) (any, error) { return DecodeExistenceProofBatch(b) },
			reencode: func(v any) []byte { return v.(*ExistenceProofBatch).EncodeBytes() },
			verify: func(v any) error {
				_, err := VerifyExistenceBatch(v.(*ExistenceProofBatch), lsp)
				return err
			},
			claims: func(v any) []byte {
				b := v.(*ExistenceProofBatch)
				parts := [][]byte{stateBytes(b.State)}
				for i := range b.Items {
					parts = append(parts, recordClaims(t, b.Items[i].RecordBytes), b.Items[i].Payload)
				}
				return claimBytes(parts...)
			},
		},
		{
			name:     "absence",
			enc:      ap.EncodeBytes(),
			decode:   func(b []byte) (any, error) { return DecodeAbsenceProof(b) },
			reencode: func(v any) []byte { return v.(*AbsenceProof).EncodeBytes() },
			verify:   func(v any) error { return VerifyAbsence(lsp, v.(*AbsenceProof)) },
			// Name/Prefix are the question echo, not a claim: the client
			// binds them to the question it asked (decodeVerifiedAbsence),
			// and any echo the proof still verifies under is itself a true
			// absence statement about the same committed gap — e.g. the
			// exact proof for "M" upgraded to the prefix question, which
			// the verifier re-checks against the successor. The
			// authenticated answer is the neighbor set and the signed
			// state.
			claims: func(v any) []byte {
				p := v.(*AbsenceProof)
				w := newTestWriter()
				w.Bool(p.HasPred)
				if p.HasPred {
					w.String(p.Pred)
					w.Uvarint(p.PredIndex)
					w.DigestSlice(p.PredPath)
				}
				w.Bool(p.HasSucc)
				if p.HasSucc {
					w.String(p.Succ)
					w.Uvarint(p.SuccIndex)
					w.DigestSlice(p.SuccPath)
				}
				return claimBytes(w.Bytes(), stateBytes(p.State))
			},
		},
	}
}

// recordClaims reduces a transported record to its authenticated
// content: the tx-hash, which covers every field except the occult bit.
// The occult bit is unauthenticated BY DESIGN (Protocol 2: occulting a
// journal must not change its tx-hash, so the bitmap lives outside the
// accumulator) — a relying party must not trust it from a proof, and
// the corruption sweep accordingly treats it as re-derived metadata.
func recordClaims(t *testing.T, raw []byte) []byte {
	t.Helper()
	rec, err := journal.DecodeRecord(raw)
	if err != nil {
		t.Fatalf("verified proof carries undecodable record: %v", err)
	}
	d := rec.TxHash()
	return d[:]
}

// claimBytes length-prefix-joins byte fields so adjacent claims cannot
// alias under concatenation.
func claimBytes(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, byte(len(p)), byte(len(p)>>8), byte(len(p)>>16))
		out = append(out, p...)
	}
	return out
}

func stateBytes(st *SignedState) []byte {
	w := newTestWriter()
	st.Encode(w)
	return w.Bytes()
}

// TestProofCodecRoundTrip: decode(encode(p)) re-encodes to the exact
// original bytes and still verifies.
func TestProofCodecRoundTrip(t *testing.T) {
	for _, c := range buildProofCodecs(t) {
		t.Run(c.name, func(t *testing.T) {
			v, err := c.decode(c.enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if err := c.verify(v); err != nil {
				t.Fatalf("verify after round trip: %v", err)
			}
			if !bytes.Equal(c.reencode(v), c.enc) {
				t.Fatal("re-encoded bytes differ from original")
			}
		})
	}
}

// TestProofCodecTruncation: every strict prefix of a valid encoding
// must fail to decode — cleanly, without panicking.
func TestProofCodecTruncation(t *testing.T) {
	for _, c := range buildProofCodecs(t) {
		t.Run(c.name, func(t *testing.T) {
			for i := 0; i < len(c.enc); i++ {
				if _, err := c.decode(c.enc[:i]); err == nil {
					t.Fatalf("decode accepted a %d/%d-byte prefix", i, len(c.enc))
				}
			}
		})
	}
}

// TestProofCodecCorruption flips each byte of each encoding in turn:
// the decoder must never panic, and a corrupted proof must never both
// decode AND verify — every semantic byte is covered by a digest or a
// signature.
func TestProofCodecCorruption(t *testing.T) {
	for _, c := range buildProofCodecs(t) {
		t.Run(c.name, func(t *testing.T) {
			orig, err := c.decode(c.enc)
			if err != nil {
				t.Fatal(err)
			}
			mut := make([]byte, len(c.enc))
			for i := 0; i < len(c.enc); i++ {
				copy(mut, c.enc)
				mut[i] ^= 0xFF
				v, err := c.decode(mut)
				if err != nil {
					continue
				}
				if err := c.verify(v); err == nil {
					// Surviving both is only acceptable when the
					// corruption left every authenticated claim intact
					// (it hit re-derived path metadata).
					if !bytes.Equal(c.claims(v), c.claims(orig)) {
						t.Fatalf("byte %d: corrupted proof decoded AND verified with altered claims", i)
					}
				}
			}
		})
	}
}

// TestProofCodecTrailingGarbage: appended bytes must be rejected (the
// readers demand full consumption).
func TestProofCodecTrailingGarbage(t *testing.T) {
	for _, c := range buildProofCodecs(t) {
		t.Run(c.name, func(t *testing.T) {
			if _, err := c.decode(append(append([]byte(nil), c.enc...), 0xAB)); err == nil {
				t.Fatal("decode accepted trailing garbage")
			}
		})
	}
}
