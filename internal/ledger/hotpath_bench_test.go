package ledger

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/wire"
)

// Hot-path benchmarks behind scripts/check.sh perf and the cmd/bench
// hotpath experiment: the steady-state encode+digest cost of committing
// a journal, full Append under the serial / pipelined / batch-verify
// configurations, and zero-copy journal serving.

// benchRecord builds a representative committed record.
func benchRecord(tb testing.TB) *journal.Record {
	tb.Helper()
	e := newEnv(tb, nil)
	rcpt := e.append(tb, "hotpath-record", "clue:hot")
	rec, err := e.ledger.GetJournal(rcpt.JSN)
	if err != nil {
		tb.Fatal(err)
	}
	return rec
}

// BenchmarkHotPathEncodeDigest measures exactly the per-record encode +
// digest work applyRecordLocked performs: pooled wire encode of the
// record plus the journal-stream digest over the frame. This is the
// path the zero-alloc work targets; the companion test below pins it at
// 0 allocs/op.
func BenchmarkHotPathEncodeDigest(b *testing.B) {
	rec := benchRecord(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.GetWriter()
		rec.Encode(enc)
		_ = hashutil.Journal(enc.Bytes())
		wire.PutWriter(enc)
	}
}

// TestEncodeDigestZeroAlloc is the regression guard for the criterion
// "steady-state Append performs zero allocations in the encode+digest
// path": once the writer pool is warm, encoding a record and digesting
// its frame must not touch the heap.
func TestEncodeDigestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs pool allocation; the 0-alloc bound is checked in the non-race run")
	}
	rec := benchRecord(t)
	// Warm the pool.
	for i := 0; i < 8; i++ {
		enc := wire.GetWriter()
		rec.Encode(enc)
		_ = hashutil.Journal(enc.Bytes())
		wire.PutWriter(enc)
	}
	allocs := testing.AllocsPerRun(200, func() {
		enc := wire.GetWriter()
		rec.Encode(enc)
		_ = hashutil.Journal(enc.Bytes())
		wire.PutWriter(enc)
	})
	if allocs != 0 {
		t.Fatalf("encode+digest path: %.1f allocs/op, want 0", allocs)
	}
}

// benchSignedRequests pre-signs n requests outside the timed region.
func benchSignedRequests(b *testing.B, e *testEnv, n int) []*journal.Request {
	b.Helper()
	reqs := make([]*journal.Request, n)
	for i := range reqs {
		reqs[i] = e.request(b, fmt.Sprintf("hot-%d", i))
	}
	return reqs
}

func benchAppendEnv(b *testing.B, mutate func(*Config)) *testEnv {
	b.Helper()
	return newEnv(b, func(c *Config) {
		c.BlockSize = 64
		var clk atomic.Int64
		c.Clock = func() int64 { return clk.Add(1) }
		if mutate != nil {
			mutate(c)
		}
	})
}

// BenchmarkAppendSerial is the synchronous baseline: one π_c verify, one
// commit, one receipt per call.
func BenchmarkAppendSerial(b *testing.B) {
	e := benchAppendEnv(b, nil)
	reqs := benchSignedRequests(b, e, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ledger.Append(reqs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendPipelined drives concurrent appenders through the
// staged pipeline with admission-stage verification inline (VerifyBatch
// 0) — the baseline the batch-verify variant must beat.
func BenchmarkAppendPipelined(b *testing.B) {
	benchAppendPipelined(b, 0)
}

// BenchmarkAppendBatchVerify sweeps the admission batch size: π_c
// signatures are verified by the shared worker pool in group-sized
// batches before sequencing.
func BenchmarkAppendBatchVerify(b *testing.B) {
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchAppendPipelined(b, batch)
		})
	}
}

func benchAppendPipelined(b *testing.B, verifyBatch int) {
	e := benchAppendEnv(b, func(c *Config) {
		c.PipelineDepth = 64
		c.VerifyBatch = verifyBatch
	})
	defer func() {
		if err := e.ledger.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	reqs := benchSignedRequests(b, e, b.N)
	var next atomic.Int64
	b.ReportAllocs()
	// Pipelining pays off when appenders queue: force many concurrent
	// submitters per core so groups actually form (the default is one
	// goroutine per core, which degenerates to the serial schedule).
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1) - 1
			if _, err := e.ledger.Append(reqs[i]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAppendAllocBudget is the allocs/op regression guard run by
// `scripts/check.sh perf`: steady-state serial Append (pre-signed
// requests, warm pools) must stay within the checked-in budget in
// testdata/append_alloc_budget. The budget has headroom over the
// measured value, so a failure means a real regression — a hot-path
// allocation came back — not noise. Lower the budget when the paths
// get leaner; never raise it to paper over a regression.
func TestAppendAllocBudget(t *testing.T) {
	raw, err := os.ReadFile("testdata/append_alloc_budget")
	if err != nil {
		t.Fatal(err)
	}
	budget, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("bad budget file: %v", err)
	}
	e := newEnv(t, func(c *Config) { c.BlockSize = 64 })
	const runs = 192 // three full block cycles, so cut costs average in
	// AllocsPerRun invokes the function runs+1 times; +64 warmup appends.
	reqs := make([]*journal.Request, 0, runs+65)
	for i := 0; i < runs+65; i++ {
		reqs = append(reqs, e.request(t, fmt.Sprintf("budget-%d", i)))
	}
	next := 0
	// Warm pools and caches past the first block cut.
	for i := 0; i < 64; i++ {
		if _, err := e.ledger.Append(reqs[next]); err != nil {
			t.Fatal(err)
		}
		next++
	}
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := e.ledger.Append(reqs[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs > budget {
		t.Fatalf("steady-state Append: %.1f allocs/op exceeds budget %.0f (testdata/append_alloc_budget)", allocs, budget)
	}
	t.Logf("steady-state Append: %.1f allocs/op (budget %.0f)", allocs, budget)
}

// BenchmarkGetJournalZeroCopy serves committed journals from the disk
// backend: the record frame arrives in a pooled buffer with one pread
// against a cached segment handle, and decode copies out only the
// retained fields.
func BenchmarkGetJournalZeroCopy(b *testing.B) {
	store, err := streamfs.OpenDisk(b.TempDir(), streamfs.DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	e := newEnv(b, func(c *Config) {
		c.Store = store
		c.BlockSize = 64
	})
	const n = 256
	for i := 0; i < n; i++ {
		e.append(b, fmt.Sprintf("zc-%04d", i))
	}
	size := e.ledger.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ledger.GetJournal(uint64(i) % size); err != nil {
			b.Fatal(err)
		}
	}
}
