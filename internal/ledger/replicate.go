package ledger

import (
	"errors"
	"fmt"

	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/mpt"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// This file implements the follower half of read-replica replication: a
// ledger opened with Config.ApplyOnly ingests the primary's streams
// verbatim and rolls them forward through the same code paths crash
// recovery uses. A replica is crash recovery running continuously — the
// invariants recovery restores after one crash, the follower maintains
// after every applied frame.
//
// The follower holds no signing key. Everything it serves anchors to a
// SignedState the primary produced and the follower verified against
// the pinned PrimaryLSP key, so a replica adds read capacity without
// adding trust: a Byzantine replica can at worst serve stale data, and
// staleness is bounded by the checkpoint timestamp inside the signed
// state itself.

// Errors specific to follower mode.
var (
	// ErrStaleCheckpoint means the follower cannot answer right now: it
	// has no primary-signed state covering its applied prefix (it is
	// catching up, or the primary stopped publishing checkpoints). The
	// server maps it to 503 + Retry-After — honest degradation rather
	// than an unverifiable answer.
	ErrStaleCheckpoint = errors.New("ledger: no checkpoint covering replica state")
	// ErrDiverged means a primary-signed checkpoint does not match the
	// accumulator roots the follower derived from the replicated
	// streams: either the feed was corrupted below the frame digests or
	// the primary equivocated. The follower refuses to serve rather
	// than mask it.
	ErrDiverged = errors.New("ledger: replica diverged from primary checkpoint")
)

// replicaState is the follower-mode state hanging off the Ledger,
// guarded by l.mu.
type replicaState struct {
	// current is the newest verified checkpoint whose prefix the
	// follower has fully applied and cross-checked (fam root match).
	// Proofs and reads anchor to it.
	current *SignedState
	// pending is the newest verified checkpoint the follower has not
	// caught up to yet; it promotes to current once the applied prefix
	// covers it.
	pending *SignedState
	// seeding is true while a resync is in flight: the journal stream
	// was re-based at the primary's purge point and records are being
	// copied verbatim, but projections (clues, world state, membership)
	// wait for the pseudo-genesis snapshot, exactly as recovery seeds
	// them after a purge.
	seeding bool
}

// writable gates every originating mutation. A follower refuses them
// all: records reach it only as replicated bytes.
func (l *Ledger) writable() error {
	if l.cfg.ApplyOnly {
		return fmt.Errorf("%w: apply-only replica", ErrNotPermitted)
	}
	return nil
}

// replicaExactStateLocked returns the checkpoint proofs may anchor to
// unanchored: it must cover the applied prefix exactly, or the local
// fam would fold to a root the primary never signed.
func (l *Ledger) replicaExactStateLocked() (*SignedState, error) {
	st := l.replica.current
	if st == nil || st.JSN != l.nextJSN || l.replica.seeding {
		return nil, fmt.Errorf("%w: applied %d", ErrStaleCheckpoint, l.nextJSN)
	}
	return st, nil
}

// replicaAnyStateLocked returns the newest verified checkpoint
// regardless of how far the applied prefix has run past it. Historical
// proofs (fam.ProveAt against the checkpoint size) remain valid under
// it — this is what keeps a partitioned follower serving.
func (l *Ledger) replicaAnyStateLocked() (*SignedState, error) {
	if st := l.replica.current; st != nil && !l.replica.seeding {
		return st, nil
	}
	return nil, fmt.Errorf("%w: applied %d", ErrStaleCheckpoint, l.nextJSN)
}

// promoteReplicaStateLocked moves pending to current once the applied
// prefix covers it, cross-checking the primary-signed roots against the
// locally derived accumulators. The fam check runs on every promotion;
// the clue/state roots can only be compared when the checkpoint sits
// exactly at the frontier (projections exist only at the frontier).
func (l *Ledger) promoteReplicaStateLocked() error {
	st := l.replica.pending
	if st == nil || st.JSN > l.nextJSN || l.replica.seeding {
		return nil
	}
	l.replica.pending = nil
	if st.JSN > 0 {
		root, err := l.fam.RootAt(st.JSN)
		if err != nil {
			return err
		}
		if root != st.JournalRoot {
			return fmt.Errorf("%w: fam root at %d is %s, primary signed %s",
				ErrDiverged, st.JSN, root.Short(), st.JournalRoot.Short())
		}
	}
	if st.JSN == l.nextJSN {
		if cr := l.clues.RootHash(); cr != st.ClueRoot {
			return fmt.Errorf("%w: clue root at %d is %s, primary signed %s",
				ErrDiverged, st.JSN, cr.Short(), st.ClueRoot.Short())
		}
		if sr := l.state.RootHash(); sr != st.StateRoot {
			return fmt.Errorf("%w: state root at %d is %s, primary signed %s",
				ErrDiverged, st.JSN, sr.Short(), st.StateRoot.Short())
		}
	}
	if cur := l.replica.current; cur == nil || st.JSN >= cur.JSN {
		l.replica.current = st
		l.stateGen++
	}
	return nil
}

// SetReplicaState installs a primary-signed checkpoint fetched by the
// replication puller. The signature is verified against the pinned
// primary key before anything is cached; a checkpoint ahead of the
// applied prefix parks as pending and promotes once the records
// covering it have been applied.
func (l *Ledger) SetReplicaState(st *SignedState) error {
	if !l.cfg.ApplyOnly {
		return fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	if st.URI != l.cfg.URI {
		return fmt.Errorf("%w: checkpoint for %q on replica of %q", ErrNotPermitted, st.URI, l.cfg.URI)
	}
	if err := st.Verify(l.cfg.PrimaryLSP); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.replica.pending; p == nil || st.JSN > p.JSN {
		l.replica.pending = st
	}
	return l.promoteReplicaStateLocked()
}

// ReplicaInfo reports the follower's replication watermark for health
// endpoints: honest staleness is part of the read surface.
type ReplicaInfo struct {
	AppliedJSN    uint64 // records applied to the local streams
	CheckpointJSN uint64 // newest verified checkpoint covering the prefix
	CheckpointTS  int64  // primary's timestamp inside that checkpoint
	Seeding       bool   // resync in flight (projections not yet seeded)
}

// ReplicaStatus returns the watermark; ok is false on a primary.
func (l *Ledger) ReplicaStatus() (ReplicaInfo, bool) {
	if !l.cfg.ApplyOnly {
		return ReplicaInfo{}, false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	info := ReplicaInfo{AppliedJSN: l.nextJSN, Seeding: l.replica.seeding}
	if st := l.replica.current; st != nil {
		info.CheckpointJSN = st.JSN
		info.CheckpointTS = st.Timestamp
	}
	return info, true
}

// Generation returns the commit generation counter. Health endpoints
// expose it so an operator can see at a glance whether two nodes have
// observed the same number of state transitions.
func (l *Ledger) Generation() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.stateGen
}

// StreamFrontier reports a stream's local base and length. The
// replication puller reads its own frontiers off the follower ledger to
// know which offsets to request next.
func (l *Ledger) StreamFrontier(stream string) (base, size uint64, err error) {
	var s streamfs.Stream
	switch stream {
	case StreamJournals:
		s = l.journals
	case StreamDigests:
		s = l.digests
	case StreamBlocks:
		s = l.blocks
	case StreamSurvival:
		s = l.survival
	default:
		return 0, 0, fmt.Errorf("%w: stream %q", ErrNotFound, stream)
	}
	return s.Base(), s.Len(), nil
}

// ReadStreamRange is the primary-side pull seam: it slices one of the
// four ledger streams at an absolute offset, returning the records plus
// the stream's base and frontier at capture time. from below base
// returns no records — the caller reads the gap off the returned base
// and resyncs. The stream is flushed before reading so a follower never
// applies bytes the primary could lose in a crash (the replica must
// stay behind the primary's durable prefix, not its in-memory one).
func (l *Ledger) ReadStreamRange(stream string, from uint64, maxRecords, maxBytes int) (recs [][]byte, base, size uint64, err error) {
	var s streamfs.Stream
	switch stream {
	case StreamJournals:
		s = l.journals
	case StreamDigests:
		s = l.digests
	case StreamBlocks:
		s = l.blocks
	case StreamSurvival:
		s = l.survival
	default:
		return nil, 0, 0, fmt.Errorf("%w: stream %q", ErrNotFound, stream)
	}
	if err := s.Sync(); err != nil {
		return nil, 0, 0, fmt.Errorf("ledger: flush %s for pull: %w", stream, err)
	}
	base, size = s.Base(), s.Len()
	if from < base || from >= size {
		return nil, base, size, nil
	}
	recs, err = streamfs.ReadRange(s, from, maxRecords, maxBytes)
	if errors.Is(err, streamfs.ErrNotFound) {
		// A purge truncated the prefix between the snapshot above and the
		// read: report the new base, no records — the follower resyncs.
		return nil, s.Base(), s.Len(), nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	return recs, base, size, nil
}

// ApplyReplicatedSurvival appends replicated survival records verbatim
// at the given offset and makes them durable. The survival stream must
// be current before a purge journal is applied — the same sync-order
// invariant syncCommitLocked enforces on the primary (survivors durable
// before anything is destroyed).
func (l *Ledger) ApplyReplicatedSurvival(offset uint64, recs [][]byte) (int, error) {
	if !l.cfg.ApplyOnly {
		return 0, fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	applied := 0
	for i, raw := range recs {
		seq := offset + uint64(i)
		end := l.survival.Len()
		if seq < end {
			continue // frame overlap: already applied
		}
		if seq > end {
			break // gap: the caller re-pulls from end
		}
		//lint:ignore L1 replica apply is a stop-the-world commit section: survivor bytes and the stream frontier must move under one lock epoch, as on the primary
		if _, err := l.survival.Append(raw); err != nil {
			return applied, fmt.Errorf("ledger: survival stream: %w", err)
		}
		applied++
	}
	//lint:ignore L1 survivors must be durable before the purge barrier they unblock — the same sync-order invariant the primary's commit section enforces
	if err := l.survival.Sync(); err != nil {
		return applied, err
	}
	return applied, nil
}

// ApplyReplicatedJournals applies a run of replicated journal records
// starting at offset. Records below the applied prefix are skipped
// (frames may overlap after a retry); a record past it stops the batch
// (the caller re-pulls from the frontier). Each record appends to the
// journal, digest, and fam structures byte-for-byte as on the primary,
// then replays through the recovery projection path.
//
// A purge journal is a barrier: in steady state it must not apply until
// the survival stream has been pulled to the primary's current frontier
// (survivalSynced). When the batch stops at one, barrier is returned
// true and the caller retries the remainder after syncing survival —
// the re-pull postdates the purge decision on the primary, so it
// necessarily includes every survivor the purge copied.
func (l *Ledger) ApplyReplicatedJournals(offset uint64, recs [][]byte, survivalSynced bool) (applied int, barrier bool, err error) {
	if !l.cfg.ApplyOnly {
		return 0, false, fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	for i, raw := range recs {
		seq := offset + uint64(i)
		if seq < l.nextJSN {
			continue
		}
		if seq > l.nextJSN {
			break
		}
		rec, derr := journal.DecodeRecord(raw)
		if derr != nil {
			return applied, false, fmt.Errorf("ledger: replicated journal %d: %w", seq, derr)
		}
		if rec.JSN != seq {
			return applied, false, fmt.Errorf("%w: record carries jsn %d at stream offset %d", ErrDiverged, rec.JSN, seq)
		}
		if !l.replica.seeding && rec.Type == journal.TypePurge && !survivalSynced {
			barrier = true
			break
		}
		if l.failed != nil {
			return applied, false, l.failed
		}
		// Verbatim stream appends: byte identity with the primary is
		// what makes the fam roots comparable.
		txHash := rec.TxHash()
		//lint:ignore L1 replica apply is the commit section: the journal append and the fam/jsn advance must move under one lock epoch, as in the primary's apply section
		if _, aerr := l.journals.Append(raw); aerr != nil {
			return applied, false, fmt.Errorf("ledger: journal stream: %w", aerr)
		}
		//lint:ignore L1 the digest append pairs with the journal append in the same commit section
		if _, aerr := l.digests.Append(txHash[:]); aerr != nil {
			l.failed = fmt.Errorf("ledger: digest stream: %w", aerr)
			return applied, false, l.failed
		}
		l.fam.Append(txHash)
		l.nextJSN++
		l.stateGen++
		l.pendingCount++
		//lint:ignore L1 projection replay can reach the seeding survival-stream scan; replica apply is stop-the-world like recovery
		if perr := l.projectReplicatedLocked(rec); perr != nil {
			return applied, false, perr
		}
		applied++
	}
	if err := l.syncCommitLocked(); err != nil {
		return applied, barrier, err
	}
	return applied, barrier, l.promoteReplicaStateLocked()
}

// projectReplicatedLocked replays one just-appended primary record into
// the follower's projections — the same replay recovery uses. The
// stream appends happen in ApplyReplicatedJournals so the batch's
// commit-order flush covers every success path.
func (l *Ledger) projectReplicatedLocked(rec *journal.Record) error {
	if l.replica.seeding {
		// Mid-resync: records are copied, projections wait for the
		// pseudo-genesis snapshot — exactly how recovery treats the
		// prefix at or before a pseudo genesis.
		if rec.Type != journal.TypePseudoGenesis {
			return nil
		}
		info, err := DecodePseudoGenesis(rec.Extra)
		if err != nil {
			return fmt.Errorf("ledger: replicated pseudo genesis %d: %w", rec.JSN, err)
		}
		//lint:ignore L1 seeding scans the survival stream to rebuild projections — recovery's own stop-the-world path, run here under the replica's apply lock
		if err := l.seedFromSnapshot(info, rec.JSN); err != nil {
			return err
		}
		l.replica.seeding = false
		l.clueSet.invalidate()
		return l.syncCommitLocked()
	}
	l.replayRecord(rec)
	if rec.Type == journal.TypePseudoGenesis {
		// The purge decision (purge journal + pseudo genesis) is now on
		// the local prefix: make it durable, then roll the destructive
		// half forward through the identical recovery path.
		if err := l.syncCommitLocked(); err != nil {
			return err
		}
		desc, err := l.pendingPurgeLocked()
		if err != nil {
			return err
		}
		if desc != nil {
			if err := l.completePurgeLocked(desc); err != nil {
				return fmt.Errorf("ledger: roll replicated purge forward: %w", err)
			}
		}
	}
	return nil
}

// ApplyReplicatedBlocks appends replicated block headers, verifying the
// hash chain and that each header covers only applied records. A header
// past the applied journal prefix stops the batch — block headers never
// run ahead of the records they commit, mirroring the primary's sync
// order (blocks last).
func (l *Ledger) ApplyReplicatedBlocks(offset uint64, recs [][]byte) (int, error) {
	if !l.cfg.ApplyOnly {
		return 0, fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	applied := 0
	for i, raw := range recs {
		seq := offset + uint64(i)
		end := uint64(len(l.headers))
		if seq < end {
			continue
		}
		if seq > end {
			break
		}
		h, err := DecodeBlockHeader(raw)
		if err != nil {
			return applied, fmt.Errorf("ledger: replicated block %d: %w", seq, err)
		}
		if h.Height != end {
			return applied, fmt.Errorf("%w: block header carries height %d at stream offset %d", ErrDiverged, h.Height, seq)
		}
		if n := len(l.headers); n > 0 && h.Prev != l.headers[n-1].Hash() {
			return applied, fmt.Errorf("%w: block %d does not chain from local head", ErrDiverged, h.Height)
		}
		if h.FirstJSN+h.Count > l.nextJSN {
			break // covers records not yet applied; retry after journals
		}
		//lint:ignore L1 the header append and the in-memory chain extension must move under one lock epoch, as in the primary's block cut
		if _, err := l.blocks.Append(raw); err != nil {
			return applied, fmt.Errorf("ledger: block stream: %w", err)
		}
		l.headers = append(l.headers, h)
		l.stateGen++
		applied++
	}
	if applied > 0 {
		last := l.headers[len(l.headers)-1]
		l.pendingCount = l.nextJSN - (last.FirstJSN + last.Count)
	}
	//lint:ignore L1 block headers sync last, after the records they commit — the primary's commit order, enforced here before the new head is promoted
	if err := l.blocks.Sync(); err != nil {
		return applied, err
	}
	return applied, l.promoteReplicaStateLocked()
}

// ApplyReplicatedDigests fills the fam accumulator during a resync with
// tx-hashes the primary has purged the journals for. Only valid while
// seeding: these digests cover [local frontier, primary journal base),
// the range for which raw records no longer exist anywhere.
func (l *Ledger) ApplyReplicatedDigests(offset uint64, recs [][]byte) (int, error) {
	if !l.cfg.ApplyOnly {
		return 0, fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	if !l.replica.seeding {
		return 0, fmt.Errorf("%w: digest fill outside resync", ErrNotPermitted)
	}
	applied := 0
	for i, raw := range recs {
		seq := offset + uint64(i)
		if seq < l.nextJSN {
			continue
		}
		if seq > l.nextJSN {
			break
		}
		if len(raw) != hashutil.Size {
			return applied, fmt.Errorf("%w: digest record of %d bytes at %d", ErrDiverged, len(raw), seq)
		}
		var d hashutil.Digest
		copy(d[:], raw)
		//lint:ignore L1 the digest fill is the resync commit section: the append and the fam/jsn advance must move under one lock epoch
		if _, err := l.digests.Append(raw); err != nil {
			l.failed = fmt.Errorf("ledger: digest stream: %w", err)
			return applied, l.failed
		}
		l.fam.Append(d)
		l.nextJSN++
		l.stateGen++
		applied++
	}
	return applied, l.appliedSyncLocked()
}

// BeginResync re-bases the follower at the primary's purge point after
// a gap: the primary truncated its journal stream past the follower's
// frontier, so the missing records exist nowhere and the follower must
// do what recovery does after a purge — discard projections, keep the
// digest history, and wait for the pseudo-genesis snapshot. Digests for
// the gap arrive via ApplyReplicatedDigests; journals resume at base.
func (l *Ledger) BeginResync(base uint64) error {
	if !l.cfg.ApplyOnly {
		return fmt.Errorf("%w: not an apply-only replica", ErrNotPermitted)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	if base < l.nextJSN {
		return fmt.Errorf("%w: resync base %d below applied prefix %d", ErrNotPermitted, base, l.nextJSN)
	}
	rb, ok := l.journals.(streamfs.Rebaser)
	if !ok {
		return fmt.Errorf("ledger: journal stream does not support rebase")
	}
	if err := rb.SetBase(base); err != nil {
		return fmt.Errorf("ledger: rebase journal stream: %w", err)
	}
	l.base = base
	l.clues = cmtree.New()
	l.state = mpt.New()
	l.stateIndex = make(map[string]stateIndexEntry)
	l.firstSeen = make(map[sig.PublicKey]uint64)
	l.occulted = make(map[uint64]bool)
	l.payloadRefs = make(map[hashutil.Digest]int)
	l.eraseQueue = nil
	l.clueSet.invalidate()
	l.replica.seeding = true
	l.replica.current = nil // its roots bound projections we just dropped
	l.stateGen++
	return nil
}
