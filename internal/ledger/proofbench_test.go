package ledger

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// benchProofLedger builds a ledger with enough journals that proof
// requests exercise real fam paths, with the state cache on or off.
func benchProofLedger(b *testing.B, disableCache bool) *testEnv {
	b.Helper()
	e := newEnv(b, func(c *Config) {
		c.FractalHeight = 6
		c.BlockSize = 64
		c.DisableStateCache = disableCache
	})
	for i := 0; i < 256; i++ {
		e.append(b, fmt.Sprintf("bench-doc-%04d", i))
	}
	return e
}

// BenchmarkProveExistence sweeps prover-side concurrency, cached vs
// per-call state signing. With the cache, concurrent provers under one
// commit generation share a single ECDSA signature and the RLock
// section contains no signing at all, so throughput scales with
// readers; without it every proof pays a fresh sign.
func BenchmarkProveExistence(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"cached", false},
		{"nocache", true},
	} {
		e := benchProofLedger(b, mode.disable)
		size := e.ledger.Size()
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode.name, par), func(b *testing.B) {
				var next atomic.Uint64
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						jsn := next.Add(1) % size
						if _, err := e.ledger.ProveExistence(jsn, false); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkExistenceBatch compares proving AND verifying 64 journals as
// one batch versus 64 single proofs. Prover-side the two are close
// (the state cache already amortizes signing); the batch's win is the
// verifier, which checks the shared state signature once instead of 64
// times, and the wire, which carries one SignedState.
func BenchmarkExistenceBatch(b *testing.B) {
	e := benchProofLedger(b, false)
	lsp := e.lsp.Public()
	jsns := make([]uint64, 64)
	for i := range jsns {
		jsns[i] = uint64(i*3 + 1)
	}
	b.Run("batch=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := e.ledger.ProveExistenceBatch(jsns, false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := VerifyExistenceBatch(p, lsp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, jsn := range jsns {
				p, err := e.ledger.ProveExistence(jsn, false)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := VerifyExistence(p, lsp); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
