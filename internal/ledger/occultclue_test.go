package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/sig"
)

func TestOccultClue(t *testing.T) {
	e := newEnv(t, nil)
	var jsns []uint64
	for i := 0; i < 5; i++ {
		r := e.append(t, fmt.Sprintf("pii-%d", i), "leaky-clue")
		jsns = append(jsns, r.JSN)
	}
	e.append(t, "unrelated", "other-clue")

	desc := &OccultClueDescriptor{URI: "ledger://test", Clue: "leaky-clue"}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	hidden, err := e.ledger.OccultClue("leaky-clue", ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden) != 5 {
		t.Fatalf("hidden %d journals, want 5", len(hidden))
	}
	// All payloads blocked; erasure queued asynchronously.
	for _, jsn := range jsns {
		if _, err := e.ledger.GetPayload(jsn); !errors.Is(err, ErrOcculted) {
			t.Fatalf("jsn %d: err = %v", jsn, err)
		}
	}
	if e.ledger.PendingErasures() != 5 {
		t.Fatalf("pending = %d", e.ledger.PendingErasures())
	}
	if n, err := e.ledger.Reorganize(); err != nil || n != 5 {
		t.Fatalf("Reorganize = %d, %v", n, err)
	}
	// The untouched clue still serves payloads.
	recs, err := e.ledger.ListClue("other-clue")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.GetPayload(recs[0].JSN); err != nil {
		t.Fatal(err)
	}
	// Clue lineage verification still passes across the occulted set
	// (Protocol 2: retained digests stand in).
	if err := e.ledger.VerifyClueServer("leaky-clue"); err != nil {
		t.Fatal(err)
	}
	// The occult journal's extra decodes and carries the full jsn list.
	occRec, err := e.ledger.GetJournal(e.ledger.Size() - 1)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := DecodeOccultClueExtra(occRec.Extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(extra.JSNs) != 5 || extra.Desc.Clue != "leaky-clue" {
		t.Fatalf("extra: %+v", extra)
	}
}

func TestOccultClueRequiresDBA(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "x", "k")
	desc := &OccultClueDescriptor{URI: "ledger://test", Clue: "k"}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.client)
	if _, err := e.ledger.OccultClue("k", ms); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestOccultClueUnknown(t *testing.T) {
	e := newEnv(t, nil)
	desc := &OccultClueDescriptor{URI: "ledger://test", Clue: "ghost"}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	if _, err := e.ledger.OccultClue("ghost", ms); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOccultClueDoubleIsRejected(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "x", "k")
	desc := &OccultClueDescriptor{URI: "ledger://test", Clue: "k"}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	if _, err := e.ledger.OccultClue("k", ms); err != nil {
		t.Fatal(err)
	}
	ms2 := sig.NewMultiSig(desc.Digest())
	ms2.SignWith(e.dba)
	if _, err := e.ledger.OccultClue("k", ms2); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryAfterOccultClue(t *testing.T) {
	e := newEnv(t, nil)
	var jsns []uint64
	for i := 0; i < 3; i++ {
		r := e.append(t, fmt.Sprintf("v%d", i), "k")
		jsns = append(jsns, r.JSN)
	}
	desc := &OccultClueDescriptor{URI: "ledger://test", Clue: "k"}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	if _, err := e.ledger.OccultClue("k", ms); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, jsn := range jsns {
		rec, err := l2.GetJournal(jsn)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Occulted {
			t.Fatalf("jsn %d occult bit lost across recovery", jsn)
		}
	}
	if l2.PendingErasures() == 0 {
		t.Fatal("erase queue lost across recovery")
	}
}
