package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// purgeSetup appends n journals from the shared test client and returns
// a ready multisig for a purge at point.
func purgeSetup(t *testing.T, e *testEnv, n int, point uint64, survivors ...uint64) (*PurgeDescriptor, *sig.MultiSig) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	desc := &PurgeDescriptor{URI: "ledger://test", Point: point, Survivors: survivors, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	if err := ms.SignWith(e.client); err != nil {
		t.Fatal(err)
	}
	return desc, ms
}

func TestPurgeBasics(t *testing.T) {
	e := newEnv(t, nil)
	desc, ms := purgeSetup(t, e, 10, 6)
	sizeBefore := e.ledger.Size()
	rootBefore, _ := e.ledger.State()

	receipt, err := e.ledger.Purge(desc, ms)
	if err != nil {
		t.Fatalf("Purge: %v", err)
	}
	// Purge + pseudo genesis journals were appended.
	if e.ledger.Size() != sizeBefore+2 {
		t.Fatalf("size = %d, want %d", e.ledger.Size(), sizeBefore+2)
	}
	if e.ledger.Base() != 6 {
		t.Fatalf("base = %d", e.ledger.Base())
	}
	// Purged journals are gone.
	if _, err := e.ledger.GetJournal(3); !errors.Is(err, ErrPurged) {
		t.Fatalf("err = %v, want ErrPurged", err)
	}
	// Live journals remain.
	if _, err := e.ledger.GetJournal(7); err != nil {
		t.Fatal(err)
	}
	// The purge journal records the descriptor and signatures.
	prec, err := e.ledger.GetJournal(receipt.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if prec.Type != journal.TypePurge {
		t.Fatalf("type = %s", prec.Type)
	}
	extra, err := DecodePurgeExtra(prec.Extra)
	if err != nil {
		t.Fatal(err)
	}
	if extra.Desc.Point != 6 {
		t.Fatalf("recorded point = %d", extra.Desc.Point)
	}
	if err := extra.Sigs.VerifyAll(extra.Desc.Digest(), []sig.PublicKey{e.dba.Public()}); err != nil {
		t.Fatal(err)
	}
	// The pseudo genesis follows, doubly linked to the purge journal.
	grec, err := e.ledger.GetJournal(receipt.JSN + 1)
	if err != nil {
		t.Fatal(err)
	}
	if grec.Type != journal.TypePseudoGenesis {
		t.Fatalf("type = %s", grec.Type)
	}
	info, err := DecodePseudoGenesis(grec.Extra)
	if err != nil {
		t.Fatal(err)
	}
	if info.PurgeJSN != receipt.JSN || info.Point != 6 {
		t.Fatalf("pseudo genesis info: %+v", info)
	}
	// fam proofs for live journals still verify against the new state.
	p, err := e.ledger.ProveExistence(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
	_ = rootBefore
}

func TestPurgeRequiresAllMemberSignatures(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	desc := &PurgeDescriptor{URI: "ledger://test", Point: 3}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.dba); err != nil { // DBA only, client missing
		t.Fatal(err)
	}
	if _, err := e.ledger.Purge(desc, ms); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v, want ErrNotPermitted", err)
	}
}

func TestPurgeRequiresDBA(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	desc := &PurgeDescriptor{URI: "ledger://test", Point: 3}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.client); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Purge(desc, ms); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v, want ErrNotPermitted", err)
	}
}

func TestPurgeBoundsChecked(t *testing.T) {
	e := newEnv(t, nil)
	desc, ms := purgeSetup(t, e, 5, 3)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	// A second purge below the base is rejected.
	desc2 := &PurgeDescriptor{URI: "ledger://test", Point: 2}
	ms2 := sig.NewMultiSig(desc2.Digest())
	ms2.SignWith(e.dba)
	if _, err := e.ledger.Purge(desc2, ms2); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
	// Beyond the ledger size is rejected.
	desc3 := &PurgeDescriptor{URI: "ledger://test", Point: 999}
	ms3 := sig.NewMultiSig(desc3.Digest())
	ms3.SignWith(e.dba)
	if _, err := e.ledger.Purge(desc3, ms3); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestPurgeSurvivors(t *testing.T) {
	e := newEnv(t, nil)
	desc, ms := purgeSetup(t, e, 8, 5, 2, 4)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	survivors, err := e.ledger.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 2 {
		t.Fatalf("survivors = %d", len(survivors))
	}
	if survivors[0].JSN != 2 || survivors[1].JSN != 4 {
		t.Fatalf("survivor jsns = %d, %d", survivors[0].JSN, survivors[1].JSN)
	}
	// Survivor records still verify against the fam tree via the digest
	// stream (their tx-hashes were never erased).
	d, err := e.ledger.TxHash(2)
	if err != nil {
		t.Fatal(err)
	}
	if survivors[0].TxHash() != d {
		t.Fatal("survivor tx-hash mismatch")
	}
}

func TestPurgeErasesPayloadBlobs(t *testing.T) {
	e := newEnv(t, nil)
	desc, ms := purgeSetup(t, e, 6, 4)
	rec3, _ := e.ledger.GetJournal(3)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	if _, err := e.blobs.Get(rec3.PayloadDigest); !errors.Is(err, streamfs.ErrBlobNotFound) {
		t.Fatalf("purged payload still present: %v", err)
	}
}

func TestPurgeKeepsSharedBlobs(t *testing.T) {
	e := newEnv(t, nil)
	// Same payload before and after the purge point: content addressing
	// must keep the live copy readable.
	e.append(t, "shared-payload") // jsn 1 (purged)
	e.append(t, "filler")         // jsn 2 (purged)
	e.append(t, "shared-payload") // jsn 3 (live)
	desc := &PurgeDescriptor{URI: "ledger://test", Point: 3, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	ms.SignWith(e.client)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	got, err := e.ledger.GetPayload(3)
	if err != nil {
		t.Fatalf("shared payload erased: %v", err)
	}
	if string(got) != "shared-payload" {
		t.Fatalf("payload = %q", got)
	}
}

func TestPurgeWithFamErasure(t *testing.T) {
	// δ=3 (from newEnv): epoch 0 holds journals 0-7. Purging at 20 with
	// EraseFamNodes releases the sealed epochs fully below the point.
	e := newEnv(t, nil)
	for i := 0; i < 30; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	desc := &PurgeDescriptor{URI: "ledger://test", Point: 20, ErasePayloads: true, EraseFamNodes: true}
	ms := sig.NewMultiSig(desc.Digest())
	for _, kp := range []*sig.KeyPair{e.dba, e.client} {
		if err := ms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	// Journals at/after the purge point still prove and verify.
	for _, jsn := range []uint64{20, 25, e.ledger.Size() - 1} {
		p, err := e.ledger.ProveExistence(jsn, false)
		if err != nil {
			t.Fatalf("ProveExistence(%d): %v", jsn, err)
		}
		if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
			t.Fatalf("VerifyExistence(%d): %v", jsn, err)
		}
	}
	// Appends continue normally after the erasure.
	if _, err := e.ledger.Append(e.request(t, "post-erasure", "K")); err != nil {
		t.Fatal(err)
	}
	// The recorded descriptor carries the erasure flag for auditors.
	var purgeRec *journal.Record
	for jsn := e.ledger.Base(); jsn < e.ledger.Size(); jsn++ {
		rec, err := e.ledger.GetJournal(jsn)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type == journal.TypePurge {
			purgeRec = rec
		}
	}
	extra, err := DecodePurgeExtra(purgeRec.Extra)
	if err != nil {
		t.Fatal(err)
	}
	if !extra.Desc.EraseFamNodes {
		t.Fatal("erasure flag lost in the purge journal")
	}
}

func TestRecoveryAfterPurge(t *testing.T) {
	e := newEnv(t, nil)
	desc, ms := purgeSetup(t, e, 12, 7, 3)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("post-purge-%d", i), "K")
	}
	stBefore, _ := e.ledger.State()
	// Purged lineage journals are unreadable, so ListClue over "K" fails
	// on both sides of the restart; the authenticated structures must
	// still agree.
	if _, err := e.ledger.ListClue("K"); !errors.Is(err, ErrPurged) {
		t.Fatalf("ListClue before reopen: err = %v, want ErrPurged", err)
	}

	l2, err := Open(e.cfg)
	if err != nil {
		t.Fatalf("reopen after purge: %v", err)
	}
	stAfter, _ := l2.State()
	if stBefore.JournalRoot != stAfter.JournalRoot {
		t.Fatal("fam root changed across purge+reopen")
	}
	if stBefore.ClueRoot != stAfter.ClueRoot {
		t.Fatal("clue root changed across purge+reopen")
	}
	if l2.Base() != 7 {
		t.Fatalf("base = %d", l2.Base())
	}
	// Clue verification still passes: digests of purged journals come
	// from the retained digest stream.
	if err := l2.VerifyClueServer("K"); err != nil {
		t.Fatalf("clue verify after recovery: %v", err)
	}
	if _, err := l2.ListClue("K"); !errors.Is(err, ErrPurged) {
		t.Fatalf("ListClue after reopen: err = %v, want ErrPurged", err)
	}
}

func TestOccultSync(t *testing.T) {
	auth := ca.NewTestAuthority("root")
	regKey := sig.GenerateDeterministic("regulator")
	reg := ca.NewRegistry(auth.Public())
	for _, grant := range []struct {
		key  sig.PublicKey
		role ca.Role
	}{
		{regKey.Public(), ca.RoleRegulator},
		{sig.GenerateDeterministic("client").Public(), ca.RoleUser},
	} {
		cert, err := auth.Issue(grant.key, grant.role, "member")
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Admit(cert); err != nil {
			t.Fatal(err)
		}
	}
	e2 := newEnv(t, func(c *Config) { c.Registry = reg })
	r := e2.append(t, "sensitive-pii", "K")
	desc := &OccultDescriptor{URI: "ledger://test", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e2.dba)
	ms.SignWith(regKey)
	if _, err := e2.ledger.Occult(desc, ms); err != nil {
		t.Fatalf("Occult: %v", err)
	}
	// Payload is gone; metadata and digest remain.
	if _, err := e2.ledger.GetPayload(r.JSN); !errors.Is(err, ErrOcculted) {
		t.Fatalf("err = %v, want ErrOcculted", err)
	}
	rec, err := e2.ledger.GetJournal(r.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Occulted {
		t.Fatal("occult bit not set")
	}
	// Protocol 2: the ledger remains verifiable — the retained digest
	// still proves into fam.
	p, err := e2.ledger.ProveExistence(r.JSN, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Payload != nil {
		t.Fatal("occulted proof shipped a payload")
	}
	if _, err := VerifyExistence(p, e2.lsp.Public()); err != nil {
		t.Fatalf("occulted journal no longer verifiable: %v", err)
	}
	// And the clue lineage still verifies.
	if err := e2.ledger.VerifyClueServer("K"); err != nil {
		t.Fatal(err)
	}
}

func TestOccultAsyncAndReorganize(t *testing.T) {
	e := newEnv(t, nil) // no registry: DBA-only prerequisite
	r := e.append(t, "to-hide")
	desc := &OccultDescriptor{URI: "ledger://test", JSN: r.JSN, Async: true}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	if _, err := e.ledger.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	// Retrieval is already blocked (the bit is set)...
	if _, err := e.ledger.GetPayload(r.JSN); !errors.Is(err, ErrOcculted) {
		t.Fatalf("err = %v", err)
	}
	// ...but the blob still physically exists until reorganization.
	rec, _ := e.ledger.GetJournal(r.JSN)
	if _, err := e.blobs.Get(rec.PayloadDigest); err != nil {
		t.Fatal("async occult erased payload immediately")
	}
	if e.ledger.PendingErasures() != 1 {
		t.Fatalf("pending = %d", e.ledger.PendingErasures())
	}
	n, err := e.ledger.Reorganize()
	if err != nil || n != 1 {
		t.Fatalf("Reorganize = %d, %v", n, err)
	}
	if _, err := e.blobs.Get(rec.PayloadDigest); !errors.Is(err, streamfs.ErrBlobNotFound) {
		t.Fatal("payload survives reorganization")
	}
}

func TestOccultPrerequisites(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "doc")
	desc := &OccultDescriptor{URI: "ledger://test", JSN: r.JSN}
	// Without the DBA signature.
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.client)
	if _, err := e.ledger.Occult(desc, ms); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
	// Occulting a non-normal journal (genesis) is rejected.
	desc2 := &OccultDescriptor{URI: "ledger://test", JSN: 0}
	ms2 := sig.NewMultiSig(desc2.Digest())
	ms2.SignWith(e.dba)
	if _, err := e.ledger.Occult(desc2, ms2); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
	// Double occult is rejected.
	ms3 := sig.NewMultiSig(desc.Digest())
	ms3.SignWith(e.dba)
	if _, err := e.ledger.Occult(desc, ms3); err != nil {
		t.Fatal(err)
	}
	ms4 := sig.NewMultiSig(desc.Digest())
	ms4.SignWith(e.dba)
	if _, err := e.ledger.Occult(desc, ms4); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryAfterOccult(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "hidden")
	e.append(t, "visible")
	desc := &OccultDescriptor{URI: "ledger://test", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	ms.SignWith(e.dba)
	if _, err := e.ledger.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := l2.GetJournal(r.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Occulted {
		t.Fatal("occult bit lost across recovery")
	}
	if _, err := l2.GetPayload(r.JSN); !errors.Is(err, ErrOcculted) {
		t.Fatalf("err = %v", err)
	}
}
