package ledger

import (
	"fmt"
	"sort"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements the verifiable mutations of §III-A2 and §III-A3:
// purge (erase a journal prefix behind a pseudo genesis, Prerequisite 1 /
// Protocol 1) and occult (hide a single journal's payload while retaining
// its digest, Prerequisite 2 / Protocol 2).

// PurgeDescriptor describes a purge: erase journals [0, Point) except the
// listed survivors, which move to the survival stream.
type PurgeDescriptor struct {
	URI       string
	Point     uint64   // first jsn that remains
	Survivors []uint64 // milestone journals preserved (§III-A2)
	// ErasePayloads physically deletes the purged payload blobs. When
	// false, only journal records are truncated (the paper's
	// "erasure is not allowed" option retains fam entirely; here the
	// digest stream is retained in both cases).
	ErasePayloads bool
	// EraseFamNodes additionally releases the fam cell storage of epochs
	// fully below the purge point (§III-A2's purge-aligned erasure: "the
	// nodes to be retained are all latter nodes ... all left nodes on
	// this path can be erased"). Purged journals then become unprovable
	// from the live tree; the retained digest stream still lets auditors
	// re-derive every root.
	EraseFamNodes bool
}

// Digest is what every purge signer signs.
func (d *PurgeDescriptor) Digest() hashutil.Digest {
	w := wire.NewWriter(64)
	w.String("ledgerdb/purge/v1")
	w.String(d.URI)
	w.Uvarint(d.Point)
	w.Uvarint(uint64(len(d.Survivors)))
	for _, s := range d.Survivors {
		w.Uvarint(s)
	}
	w.Bool(d.ErasePayloads)
	w.Bool(d.EraseFamNodes)
	return hashutil.Sum(w.Bytes())
}

func (d *PurgeDescriptor) encode(w *wire.Writer) {
	w.String(d.URI)
	w.Uvarint(d.Point)
	w.Uvarint(uint64(len(d.Survivors)))
	for _, s := range d.Survivors {
		w.Uvarint(s)
	}
	w.Bool(d.ErasePayloads)
	w.Bool(d.EraseFamNodes)
}

func decodePurgeDescriptor(r *wire.Reader) (*PurgeDescriptor, error) {
	d := &PurgeDescriptor{URI: r.String(), Point: r.Uvarint()}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d survivors", journal.ErrDecode, n)
	}
	for i := uint64(0); i < n; i++ {
		d.Survivors = append(d.Survivors, r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	d.ErasePayloads = r.Bool()
	d.EraseFamNodes = r.Bool()
	return d, r.Err()
}

// OccultDescriptor describes an occult: hide the payload of one journal.
type OccultDescriptor struct {
	URI   string
	JSN   uint64
	Async bool // delay physical erasure to the reorganization utility
}

// Digest is what the DBA and regulator sign.
func (d *OccultDescriptor) Digest() hashutil.Digest {
	w := wire.NewWriter(48)
	w.String("ledgerdb/occult/v1")
	w.String(d.URI)
	w.Uvarint(d.JSN)
	w.Bool(d.Async)
	return hashutil.Sum(w.Bytes())
}

func (d *OccultDescriptor) encode(w *wire.Writer) {
	w.String(d.URI)
	w.Uvarint(d.JSN)
	w.Bool(d.Async)
}

func decodeOccultDescriptor(r *wire.Reader) (*OccultDescriptor, error) {
	d := &OccultDescriptor{URI: r.String(), JSN: r.Uvarint(), Async: r.Bool()}
	return d, r.Err()
}

// EncodeBytes serializes the descriptor for transport (admin API).
func (d *PurgeDescriptor) EncodeBytes() []byte {
	w := wire.NewWriter(64)
	d.encode(w)
	return w.Bytes()
}

// DecodePurgeDescriptor parses a transported purge descriptor.
func DecodePurgeDescriptor(b []byte) (*PurgeDescriptor, error) {
	r := wire.NewReader(b)
	d, err := decodePurgeDescriptor(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// EncodeBytes serializes the descriptor for transport (admin API).
func (d *OccultDescriptor) EncodeBytes() []byte {
	w := wire.NewWriter(48)
	d.encode(w)
	return w.Bytes()
}

// DecodeOccultDescriptor parses a transported occult descriptor.
func DecodeOccultDescriptor(b []byte) (*OccultDescriptor, error) {
	r := wire.NewReader(b)
	d, err := decodeOccultDescriptor(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return d, nil
}

// PurgeExtra is the decoded Extra of a purge journal.
type PurgeExtra struct {
	Desc *PurgeDescriptor
	Sigs *sig.MultiSig
}

// OccultExtra is the decoded Extra of an occult journal.
type OccultExtra struct {
	Desc *OccultDescriptor
	Sigs *sig.MultiSig
}

func encodeWithSigs(enc func(*wire.Writer), ms *sig.MultiSig) []byte {
	w := wire.NewWriter(256)
	enc(w)
	ms.Encode(w)
	return w.Bytes()
}

// DecodePurgeExtra parses a purge journal's Extra for audits.
func DecodePurgeExtra(b []byte) (*PurgeExtra, error) {
	r := wire.NewReader(b)
	d, err := decodePurgeDescriptor(r)
	if err != nil {
		return nil, err
	}
	ms, err := sig.DecodeMultiSig(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &PurgeExtra{Desc: d, Sigs: ms}, nil
}

// DecodeOccultExtra parses an occult journal's Extra for audits.
func DecodeOccultExtra(b []byte) (*OccultExtra, error) {
	r := wire.NewReader(b)
	d, err := decodeOccultDescriptor(r)
	if err != nil {
		return nil, err
	}
	ms, err := sig.DecodeMultiSig(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &OccultExtra{Desc: d, Sigs: ms}, nil
}

// RequiredPurgeSigners returns the signer set Prerequisite 1 demands for
// a purge at point: the DBA plus every member whose first journal
// precedes the point.
func (l *Ledger) RequiredPurgeSigners(point uint64) []sig.PublicKey {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.requiredPurgeSignersLocked(point)
}

func (l *Ledger) requiredPurgeSignersLocked(point uint64) []sig.PublicKey {
	req := []sig.PublicKey{l.cfg.DBA}
	var members []sig.PublicKey
	for pk, first := range l.firstSeen {
		if first < point && pk != l.cfg.DBA && pk != l.LSPPublic() {
			members = append(members, pk)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		a, b := members[i], members[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return append(req, members...)
}

// Purge executes §III-A2: gather-checked multi-signatures (Prerequisite
// 1), survivor preservation, a purge journal doubly linked with a fresh
// pseudo genesis, and physical truncation of the journal prefix. The
// digest stream is retained so fam proofs keep working (Protocol 1 +
// "we only need digest but not raw payload").
func (l *Ledger) Purge(desc *PurgeDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	if desc.URI != l.cfg.URI {
		return nil, fmt.Errorf("%w: descriptor for %q", ErrNotPermitted, desc.URI)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	if desc.Point <= l.base {
		return nil, fmt.Errorf("%w: purge point %d at or below base %d", ErrNotPermitted, desc.Point, l.base)
	}
	if desc.Point >= l.nextJSN {
		return nil, fmt.Errorf("%w: purge point %d beyond ledger size %d", ErrNotPermitted, desc.Point, l.nextJSN)
	}
	if err := ms.VerifyAll(desc.Digest(), l.requiredPurgeSignersLocked(desc.Point)); err != nil {
		return nil, fmt.Errorf("%w: prerequisite 1: %v", ErrNotPermitted, err)
	}
	// Preserve survivors before anything is destroyed.
	for _, s := range desc.Survivors {
		if s >= desc.Point {
			return nil, fmt.Errorf("%w: survivor %d is not being purged", ErrNotPermitted, s)
		}
		raw, err := l.journals.Read(s)
		if err != nil {
			return nil, fmt.Errorf("ledger: survivor %d: %w", s, err)
		}
		if _, err := l.survival.Append(raw); err != nil {
			return nil, err
		}
	}
	// The purge journal itself, recorded on ledger (signed by the LSP,
	// carrying the descriptor and the gathered multi-signatures).
	req := &journal.Request{LedgerURI: l.cfg.URI, Type: journal.TypePurge, Payload: []byte("purge")}
	if err := req.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	receipt, err := l.appendLocked(req, encodeWithSigs(desc.encode, ms))
	if err != nil {
		return nil, err
	}
	// The pseudo genesis, doubly linked with the purge journal (its Extra
	// names the purge jsn; the snapshot lets recovery and audits proceed
	// without the purged records).
	snap := l.snapshotLocked(desc.Point, receipt.JSN)
	greq := &journal.Request{LedgerURI: l.cfg.URI, Type: journal.TypePseudoGenesis, Payload: []byte("pseudo-genesis")}
	if err := greq.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	if _, err := l.appendLocked(greq, snap); err != nil {
		return nil, err
	}
	// The purge decision point: survivor copies, the purge journal, and
	// the pseudo genesis must all be durable before anything is destroyed
	// (DESIGN.md §4.4). A crash before this flush leaves the purge
	// undecided (an inert purge journal at worst); a crash after it is
	// rolled forward by recovery via the same completePurgeLocked.
	if err := l.syncCommitLocked(); err != nil {
		return nil, err
	}
	if err := l.completePurgeLocked(desc); err != nil {
		return nil, err
	}
	return receipt, nil
}

// Occult executes §III-A3: hide one journal's payload under DBA +
// regulator multi-signatures (Prerequisite 2). The journal's digest stays
// on ledger, so subsequent verification treats the retained hash as the
// original journal (Protocol 2). Async occults defer physical erasure to
// Reorganize.
func (l *Ledger) Occult(desc *OccultDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	if desc.URI != l.cfg.URI {
		return nil, fmt.Errorf("%w: descriptor for %q", ErrNotPermitted, desc.URI)
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	rec, err := l.getJournalLocked(desc.JSN)
	if err != nil {
		return nil, err
	}
	if rec.Type != journal.TypeNormal {
		return nil, fmt.Errorf("%w: cannot occult %s journal %d", ErrNotPermitted, rec.Type, desc.JSN)
	}
	if l.occulted[desc.JSN] {
		return nil, fmt.Errorf("%w: journal %d already occulted", ErrNotPermitted, desc.JSN)
	}
	if err := l.checkOccultSigners(desc, ms); err != nil {
		return nil, err
	}
	req := &journal.Request{LedgerURI: l.cfg.URI, Type: journal.TypeOccult, Payload: []byte("occult")}
	if err := req.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	receipt, err := l.appendLocked(req, encodeWithSigs(desc.encode, ms))
	if err != nil {
		return nil, err
	}
	// The occult journal must be durable before its payload is erased:
	// otherwise a crash could lose the authorization while the payload
	// is already gone (DESIGN.md §4.4).
	if err := l.syncCommitLocked(); err != nil {
		return nil, err
	}
	l.occulted[desc.JSN] = true
	l.stateGen++ // the occult bitmap changes what served records carry
	if desc.Async {
		l.eraseQueue = append(l.eraseQueue, desc.JSN)
	} else if err := l.erasePayloadLocked(desc.JSN); err != nil {
		return nil, err
	}
	return receipt, nil
}

// checkOccultSigners enforces Prerequisite 2: DBA plus a certified
// regulator (when a registry is configured).
func (l *Ledger) checkOccultSigners(desc *OccultDescriptor, ms *sig.MultiSig) error {
	if err := ms.VerifyAll(desc.Digest(), []sig.PublicKey{l.cfg.DBA}); err != nil {
		return fmt.Errorf("%w: prerequisite 2: %v", ErrNotPermitted, err)
	}
	if l.cfg.Registry == nil {
		return nil
	}
	for _, pk := range ms.Signers() {
		if l.cfg.Registry.Check(pk, ca.RoleRegulator) == nil {
			return nil
		}
	}
	return fmt.Errorf("%w: prerequisite 2: no regulator signature", ErrNotPermitted)
}

// erasePayloadLocked deletes a journal's payload blob, respecting
// content-address sharing.
func (l *Ledger) erasePayloadLocked(jsn uint64) error {
	raw, err := l.journals.Read(jsn)
	if err != nil {
		return err
	}
	rec, err := journal.DecodeRecord(raw)
	if err != nil {
		return err
	}
	if l.payloadRefs[rec.PayloadDigest] > 0 {
		l.payloadRefs[rec.PayloadDigest]--
	}
	if l.payloadRefs[rec.PayloadDigest] == 0 {
		return l.cfg.Blobs.Delete(rec.PayloadDigest)
	}
	return nil
}

// OccultClue occults every normal journal recorded under a clue — the
// "occult by clue" case §III-A3 calls common. One multisig over the
// clue-level descriptor authorizes the whole batch; the erasures are
// queued asynchronously (the recommended mode for batch occults, since
// other operators may still hold references) and performed by
// Reorganize. It returns the jsns occulted.
func (l *Ledger) OccultClue(clue string, ms *sig.MultiSig) ([]uint64, error) {
	if err := l.writable(); err != nil {
		return nil, err
	}
	l.lockExclusive()
	defer l.unlockExclusive()
	jsns, err := l.clues.JSNs(clue)
	if err != nil {
		return nil, fmt.Errorf("%w: clue %q", ErrNotFound, clue)
	}
	desc := &OccultClueDescriptor{URI: l.cfg.URI, Clue: clue}
	if err := ms.VerifyAll(desc.Digest(), []sig.PublicKey{l.cfg.DBA}); err != nil {
		return nil, fmt.Errorf("%w: prerequisite 2: %v", ErrNotPermitted, err)
	}
	if l.cfg.Registry != nil {
		ok := false
		for _, pk := range ms.Signers() {
			if l.cfg.Registry.Check(pk, ca.RoleRegulator) == nil {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("%w: prerequisite 2: no regulator signature", ErrNotPermitted)
		}
	}
	var hidden []uint64
	for _, jsn := range jsns {
		if jsn < l.base || l.occulted[jsn] {
			continue
		}
		rec, err := l.getJournalLocked(jsn)
		if err != nil || rec.Type != journal.TypeNormal {
			continue
		}
		hidden = append(hidden, jsn)
	}
	if len(hidden) == 0 {
		return nil, fmt.Errorf("%w: clue %q has no occultable journals", ErrNotPermitted, clue)
	}
	req := &journal.Request{LedgerURI: l.cfg.URI, Type: journal.TypeOccult, Payload: []byte("occult-clue")}
	if err := req.Sign(l.cfg.LSP); err != nil {
		return nil, err
	}
	w := wire.NewWriter(256)
	desc.encode(w)
	w.Uvarint(uint64(len(hidden)))
	for _, jsn := range hidden {
		w.Uvarint(jsn)
	}
	ms.Encode(w)
	if _, err := l.appendLocked(req, w.Bytes()); err != nil {
		return nil, err
	}
	// Same decision-before-erasure ordering as Occult; the erasures are
	// queued, but the queue only survives a crash through this journal.
	if err := l.syncCommitLocked(); err != nil {
		return nil, err
	}
	for _, jsn := range hidden {
		l.occulted[jsn] = true
		l.eraseQueue = append(l.eraseQueue, jsn)
	}
	l.stateGen++
	return hidden, nil
}

// OccultClueDescriptor describes a clue-level occult.
type OccultClueDescriptor struct {
	URI  string
	Clue string
}

// Digest is what the DBA and regulator sign for a clue-level occult.
func (d *OccultClueDescriptor) Digest() hashutil.Digest {
	w := wire.NewWriter(64)
	w.String("ledgerdb/occult-clue/v1")
	w.String(d.URI)
	w.String(d.Clue)
	return hashutil.Sum(w.Bytes())
}

func (d *OccultClueDescriptor) encode(w *wire.Writer) {
	w.String("clue") // discriminates from single-jsn occult extras
	w.String(d.URI)
	w.String(d.Clue)
}

// OccultClueExtra is the decoded Extra of a clue-level occult journal.
type OccultClueExtra struct {
	Desc *OccultClueDescriptor
	JSNs []uint64
	Sigs *sig.MultiSig
}

// DecodeOccultClueExtra parses a clue-level occult journal's Extra.
func DecodeOccultClueExtra(b []byte) (*OccultClueExtra, error) {
	r := wire.NewReader(b)
	if tag := r.String(); tag != "clue" {
		return nil, fmt.Errorf("%w: not a clue-level occult (tag %q)", journal.ErrDecode, tag)
	}
	e := &OccultClueExtra{Desc: &OccultClueDescriptor{URI: r.String(), Clue: r.String()}}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("%w: %d occulted jsns", journal.ErrDecode, n)
	}
	for i := uint64(0); i < n; i++ {
		e.JSNs = append(e.JSNs, r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	ms, err := sig.DecodeMultiSig(r)
	if err != nil {
		return nil, err
	}
	e.Sigs = ms
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return e, nil
}

// Reorganize runs the "data reorganization utility during system idle
// batch": it physically erases the payloads of asynchronously occulted
// journals. It returns the number of payloads erased.
func (l *Ledger) Reorganize() (int, error) {
	if err := l.writable(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, jsn := range l.eraseQueue {
		// A purge may have truncated the journal out from under its
		// queued erasure; the purge path already settled that payload's
		// fate (erased or retained with the rest of the purged prefix).
		if jsn < l.base {
			continue
		}
		if err := l.erasePayloadLocked(jsn); err != nil {
			return n, err
		}
		n++
	}
	l.eraseQueue = l.eraseQueue[:0]
	l.stateGen++
	return n, nil
}

// PendingErasures reports the async occult backlog.
func (l *Ledger) PendingErasures() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.eraseQueue)
}

// Survivors returns the records preserved in the survival stream, oldest
// first. These remain retrievable and verifiable after purges ("keep
// historical block trades only").
func (l *Ledger) Survivors() ([]*journal.Record, error) {
	// The survival stream is append-only and internally synchronized, so
	// the ledger lock only pins the endpoint: decode runs outside mu and
	// an in-flight purge's survivors surface on the next call.
	l.mu.RLock()
	end := l.survival.Len()
	l.mu.RUnlock()
	var out []*journal.Record
	err := l.survival.Iterate(0, func(seq uint64, raw []byte) error {
		if seq >= end {
			return errStopIterate
		}
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	if err == errStopIterate {
		err = nil
	}
	return out, err
}
