package ledger

// This file implements admission-stage batch verification of client π_c
// signatures (and co-signatures). ECDSA verification dominates stage 1
// of the pipeline the way π_s signing used to dominate stage 3; group
// commit amortized the latter, and this verifier applies the same shape
// to the former: a collector gathers up to Config.VerifyBatch pending
// admissions — yielding the processor briefly so concurrent submitters
// can join the group, exactly like the committer's group-commit window —
// and fans the group out over a small fixed worker pool. Each request is
// verified exactly once against a request-hash computed exactly once;
// rejects are surgical (only the failing request's submitter sees the
// error, never the group).
//
// The verifier is purely an admission-side scheduler: it holds no locks,
// touches no ledger state, and changes no byte of any receipt or proof.

import (
	"runtime"
	"sync"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
)

// verifyJob is one pending admission: a request plus its precomputed
// request-hash, with a 1-buffered result channel so workers never block
// on delivery. Jobs are pooled; res is reused across admissions.
type verifyJob struct {
	req  *journal.Request
	hash hashutil.Digest
	res  chan error
}

var verifyJobPool = sync.Pool{New: func() any {
	return &verifyJob{res: make(chan error, 1)}
}}

// verifier is the admission-stage batch verification pool.
type verifier struct {
	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	queue   chan *verifyJob // admission submissions (collector input)
	work    chan *verifyJob // fanned-out group members (worker input)
	batch   int             // max group size collected per window
	stopped chan struct{}   // closed once collector and all workers exit

	workerWG sync.WaitGroup
}

func newVerifier(batch, workers int) *verifier {
	v := &verifier{
		queue:   make(chan *verifyJob, 2*batch),
		work:    make(chan *verifyJob, batch),
		batch:   batch,
		stopped: make(chan struct{}),
	}
	v.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go v.worker()
	}
	go v.collect()
	return v
}

// collect is the batching goroutine: block for one job, greedily drain
// whatever else is already queued (bounded by the batch size), yield the
// processor once or twice so mid-admission submitters can join, then
// dispatch the group to the workers.
func (v *verifier) collect() {
	shutdown := func() {
		close(v.work)
		v.workerWG.Wait()
		close(v.stopped)
	}
	for {
		jb, ok := <-v.queue
		if !ok {
			shutdown()
			return
		}
		group := []*verifyJob{jb}
		drain := func() bool { // false once the queue is closed
			for len(group) < v.batch {
				select {
				case j2, ok2 := <-v.queue:
					if !ok2 {
						return false
					}
					group = append(group, j2)
				default:
					return true
				}
			}
			return true
		}
		open := drain()
		for spins := 0; open && spins < 2 && len(group) < v.batch; spins++ {
			runtime.Gosched()
			open = drain()
		}
		for _, j := range group {
			v.work <- j
		}
		if !open {
			shutdown()
			return
		}
	}
}

func (v *verifier) worker() {
	defer v.workerWG.Done()
	for jb := range v.work {
		jb.res <- jb.req.VerifyAllSigsAt(jb.hash)
	}
}

// verify checks π_c and all co-signatures for req against its
// precomputed hash, on the worker pool when a slot is free. When the
// pool is saturated (queue full) or closed, verification falls back to
// the caller's goroutine — the result is identical, only the scheduling
// differs — so admission never deadlocks on its own optimizer.
func (v *verifier) verify(req *journal.Request, h hashutil.Digest) error {
	jb := verifyJobPool.Get().(*verifyJob)
	jb.req, jb.hash = req, h
	v.mu.RLock()
	if v.closed {
		v.mu.RUnlock()
		verifyJobPool.Put(jb)
		return req.VerifyAllSigsAt(h)
	}
	select {
	case v.queue <- jb:
		v.mu.RUnlock()
		err := <-jb.res
		jb.req = nil
		verifyJobPool.Put(jb)
		return err
	default:
		v.mu.RUnlock()
		verifyJobPool.Put(jb)
		return req.VerifyAllSigsAt(h)
	}
}

// close drains in-flight jobs and stops the pool. Submissions racing
// with close either land before it (and are drained to completion) or
// observe closed and verify inline; either way every caller gets a
// result.
func (v *verifier) close() {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		<-v.stopped
		return
	}
	v.closed = true
	v.mu.Unlock()
	close(v.queue)
	<-v.stopped
}

// verifyAdmission routes one admission's signature check: through the
// batch-verify pool when configured, inline otherwise.
func (l *Ledger) verifyAdmission(req *journal.Request, h hashutil.Digest) error {
	if l.verif != nil {
		return l.verif.verify(req, h)
	}
	return req.VerifyAllSigsAt(h)
}
