package ledger

import (
	"testing"

	"ledgerdb/internal/wire"
)

// TestPooledBufferTamperDoesNotReachReceiptsOrProofs is the aliasing
// regression guard for the pooled wire.Writer encode path. Hot-path
// digests (request hash, tx-hash, receipt signed-digest) and the journal
// stream encode all run on pooled buffers now; if any of those call
// sites retained the pooled slice past PutWriter, a later user of the
// pool scribbling over the buffer would corrupt a live receipt or proof.
// The test drains the pool, poisons every recycled buffer to capacity,
// and asserts previously issued receipts and proofs still verify and
// new appends still produce correct artifacts.
func TestPooledBufferTamperDoesNotReachReceiptsOrProofs(t *testing.T) {
	e := newEnv(t, nil)
	var rs []*wire.Writer

	// Issue a handful of receipts and proofs on the pooled path.
	r1 := e.append(t, "alias-probe-1", "clue-a")
	r2 := e.append(t, "alias-probe-2", "clue-a")
	p1, err := e.ledger.ProveExistence(r1.JSN, true)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the writer pool and poison every buffer to full capacity,
	// simulating an unrelated goroutine reusing the recycled memory.
	for i := 0; i < 64; i++ {
		w := wire.GetWriter()
		b := w.Bytes()
		b = b[:cap(b)]
		for j := range b {
			b[j] = 0xA5
		}
		rs = append(rs, w)
	}
	for _, w := range rs {
		wire.PutWriter(w)
	}

	// Everything issued before the poisoning must be intact.
	if err := r1.Verify(e.lsp.Public()); err != nil {
		t.Fatalf("receipt 1 corrupted by pooled-buffer reuse: %v", err)
	}
	if err := r2.Verify(e.lsp.Public()); err != nil {
		t.Fatalf("receipt 2 corrupted by pooled-buffer reuse: %v", err)
	}
	if _, err := VerifyExistence(p1, e.lsp.Public()); err != nil {
		t.Fatalf("proof corrupted by pooled-buffer reuse: %v", err)
	}
	if string(p1.Payload) != "alias-probe-1" {
		t.Fatalf("proof payload = %q", p1.Payload)
	}

	// New work through the (now poisoned-then-recycled) pool must be
	// byte-correct too: the recycled writers must be fully reset.
	r3 := e.append(t, "alias-probe-3")
	if err := r3.Verify(e.lsp.Public()); err != nil {
		t.Fatalf("post-poison receipt: %v", err)
	}
	p3, err := e.ledger.ProveExistence(r3.JSN, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p3, e.lsp.Public()); err != nil {
		t.Fatalf("post-poison proof: %v", err)
	}
}
