package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// newFollower opens an apply-only ledger pinned to the primary env's
// LSP key, over its own fresh stores.
func newFollower(t testing.TB, e *testEnv) *Ledger {
	t.Helper()
	f, err := Open(Config{
		URI:           e.cfg.URI,
		FractalHeight: e.cfg.FractalHeight,
		BlockSize:     e.cfg.BlockSize,
		DBA:           e.cfg.DBA,
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         e.cfg.Clock,
		ApplyOnly:     true,
		PrimaryLSP:    e.lsp.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// pump runs replication rounds (the ledger-level equivalent of one
// puller cycle: survival, journals with gap/barrier handling, blocks,
// then the checkpoint) until the follower has converged on the
// primary's frontier. It is the reference implementation of the
// protocol the networked puller in internal/replica follows.
func pump(t testing.TB, p, f *Ledger) {
	t.Helper()
	const batch = 64
	for round := 0; ; round++ {
		if round > 1000 {
			t.Fatal("pump did not converge")
		}
		// Survival first: the same order syncCommitLocked flushes in.
		_, fsLen, _ := f.StreamFrontier(StreamSurvival)
		recs, _, _, err := p.ReadStreamRange(StreamSurvival, fsLen, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) > 0 {
			if _, err := f.ApplyReplicatedSurvival(fsLen, recs); err != nil {
				t.Fatal(err)
			}
		}
		// Journals, with purge-gap resync and purge-barrier handling.
		_, fjLen, _ := f.StreamFrontier(StreamJournals)
		recs, pBase, _, err := p.ReadStreamRange(StreamJournals, fjLen, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pBase > fjLen {
			// Gap: the primary purged past our frontier. Re-base, fill
			// the fam from the digest stream, and reseed.
			if err := f.BeginResync(pBase); err != nil {
				t.Fatal(err)
			}
			for {
				_, fdLen, _ := f.StreamFrontier(StreamDigests)
				if fdLen >= pBase {
					break
				}
				max := batch
				if pBase-fdLen < uint64(max) {
					max = int(pBase - fdLen)
				}
				drecs, _, _, err := p.ReadStreamRange(StreamDigests, fdLen, max, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(drecs) == 0 {
					t.Fatalf("digest fill stalled at %d of %d", fdLen, pBase)
				}
				if _, err := f.ApplyReplicatedDigests(fdLen, drecs); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		if len(recs) > 0 {
			applied, barrier, err := f.ApplyReplicatedJournals(fjLen, recs, false)
			if err != nil {
				t.Fatal(err)
			}
			if barrier {
				// A purge journal: sync survival to the primary's current
				// frontier, then retry the remainder.
				for {
					_, fsLen, _ := f.StreamFrontier(StreamSurvival)
					srecs, _, sSize, err := p.ReadStreamRange(StreamSurvival, fsLen, batch, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(srecs) > 0 {
						if _, err := f.ApplyReplicatedSurvival(fsLen, srecs); err != nil {
							t.Fatal(err)
						}
					}
					if fsLen+uint64(len(srecs)) >= sSize {
						break
					}
				}
				if _, _, err := f.ApplyReplicatedJournals(fjLen+uint64(applied), recs[applied:], true); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Blocks.
		_, fbLen, _ := f.StreamFrontier(StreamBlocks)
		brecs, _, _, err := p.ReadStreamRange(StreamBlocks, fbLen, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(brecs) > 0 {
			if _, err := f.ApplyReplicatedBlocks(fbLen, brecs); err != nil {
				t.Fatal(err)
			}
		}
		// Checkpoint last, so it covers everything just applied.
		st, err := p.State()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetReplicaState(st); err != nil {
			t.Fatal(err)
		}
		if f.Size() == p.Size() && f.Height() == p.Height() {
			return
		}
	}
}

func TestReplicaSteadyState(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 10; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	f := newFollower(t, e)
	pump(t, e.ledger, f)

	if f.Size() != e.ledger.Size() || f.Height() != e.ledger.Height() {
		t.Fatalf("follower at %d/%d, primary at %d/%d", f.Size(), f.Height(), e.ledger.Size(), e.ledger.Height())
	}
	pst, _ := e.ledger.State()
	fst, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	if fst.JSN != pst.JSN || fst.JournalRoot != pst.JournalRoot {
		t.Fatal("follower state does not match primary checkpoint")
	}
	// The follower serves the full read surface: records, lineages, and
	// proofs that verify against the primary's pinned key.
	if _, err := f.GetJournal(3); err != nil {
		t.Fatal(err)
	}
	lineage, err := f.ListClue("K")
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 10 {
		t.Fatalf("clue K has %d versions on follower, want 10", len(lineage))
	}
	p, err := f.ProveExistence(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatalf("follower proof does not verify: %v", err)
	}
	cb, err := f.ProveClue("K", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyClue(cb, e.lsp.Public()); err != nil {
		t.Fatalf("follower clue proof does not verify: %v", err)
	}
}

func TestReplicaRefusesWrites(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc")
	f := newFollower(t, e)
	pump(t, e.ledger, f)

	if _, err := f.Append(e.request(t, "nope")); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("Append on follower: %v, want ErrNotPermitted", err)
	}
	if _, err := f.CutBlock(); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("CutBlock on follower: %v, want ErrNotPermitted", err)
	}
	desc := &PurgeDescriptor{URI: e.cfg.URI, Point: 1}
	if _, err := f.Purge(desc, sig.NewMultiSig(desc.Digest())); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("Purge on follower: %v, want ErrNotPermitted", err)
	}
	if _, err := f.Reorganize(); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("Reorganize on follower: %v, want ErrNotPermitted", err)
	}
	// And the primary refuses replicated applies.
	if _, _, err := e.ledger.ApplyReplicatedJournals(0, nil, false); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("ApplyReplicatedJournals on primary: %v, want ErrNotPermitted", err)
	}
}

// TestReplicaPartitionedReads is the partition-tolerance core: a
// follower cut off from the primary keeps serving existence proofs for
// its checkpointed prefix — anchored to the last verified checkpoint —
// and honestly refuses what the checkpoint does not cover.
func TestReplicaPartitionedReads(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 6; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	f := newFollower(t, e)
	pump(t, e.ledger, f)
	ckpt, _ := f.State()

	// Partition: the primary keeps committing; the follower sees only
	// the raw journal stream (a torn pull), never a fresh checkpoint.
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("post-partition-%d", i))
	}
	_, fjLen, _ := f.StreamFrontier(StreamJournals)
	recs, _, _, err := e.ledger.ReadStreamRange(StreamJournals, fjLen, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ApplyReplicatedJournals(fjLen, recs, false); err != nil {
		t.Fatal(err)
	}
	if f.Size() <= ckpt.JSN {
		t.Fatal("follower did not run past its checkpoint")
	}

	// Covered prefix: proofs still verify against the old checkpoint.
	p, err := f.ProveExistence(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.State.JSN != ckpt.JSN {
		t.Fatalf("proof anchored at %d, want checkpoint %d", p.State.JSN, ckpt.JSN)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatalf("partitioned proof does not verify: %v", err)
	}
	b, err := f.ProveExistenceBatch([]uint64{1, 2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistenceBatch(b, e.lsp.Public()); err != nil {
		t.Fatalf("partitioned batch proof does not verify: %v", err)
	}
	// Uncovered tail: honest staleness, not a fake answer.
	if _, err := f.ProveExistence(ckpt.JSN+1, false); !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("uncovered proof: %v, want ErrStaleCheckpoint", err)
	}
	if _, err := f.State(); !errors.Is(err, ErrStaleCheckpoint) {
		t.Fatalf("State past checkpoint: %v, want ErrStaleCheckpoint", err)
	}
	info, ok := f.ReplicaStatus()
	if !ok || info.CheckpointJSN != ckpt.JSN || info.AppliedJSN != f.Size() {
		t.Fatalf("ReplicaStatus = %+v, ok=%v", info, ok)
	}

	// Heal: a fresh checkpoint covers the tail again.
	pump(t, e.ledger, f)
	if _, err := f.ProveExistence(ckpt.JSN+1, false); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestReplicaRejectsBadCheckpoints(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc")
	f := newFollower(t, e)
	pump(t, e.ledger, f)

	// A state signed by the wrong key is rejected outright.
	impostor := sig.GenerateDeterministic("impostor")
	st, _ := e.ledger.State()
	forged := *st
	if err := forged.sign(impostor); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicaState(&forged); err == nil {
		t.Fatal("forged checkpoint accepted")
	}
	// A correctly signed state whose roots do not match the replicated
	// stream marks divergence.
	diverged := *st
	diverged.JournalRoot[0] ^= 0xff
	if err := diverged.sign(e.lsp); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicaState(&diverged); !errors.Is(err, ErrDiverged) {
		t.Fatalf("diverged checkpoint: %v, want ErrDiverged", err)
	}
}

// TestReplicaPurgeSteadyState replicates a purge through the journal
// stream: the follower applies the purge and pseudo-genesis journals
// and rolls the destructive half forward through the same recovery
// path, including the survival barrier.
func TestReplicaPurgeSteadyState(t *testing.T) {
	e := newEnv(t, nil)
	f := newFollower(t, e)
	desc, ms := purgeSetup(t, e, 10, 6, 2) // purge [0,6), journal 2 survives
	pump(t, e.ledger, f)                   // follower has the pre-purge prefix

	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.append(t, fmt.Sprintf("post-purge-%d", i), "K")
	}
	pump(t, e.ledger, f)

	if f.Base() != e.ledger.Base() {
		t.Fatalf("follower base %d, primary base %d", f.Base(), e.ledger.Base())
	}
	if _, err := f.GetJournal(3); !errors.Is(err, ErrPurged) {
		t.Fatalf("purged journal on follower: %v, want ErrPurged", err)
	}
	survivors, err := f.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 1 || survivors[0].JSN != 2 {
		t.Fatalf("follower survivors = %v", survivors)
	}
	fst, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	pst, _ := e.ledger.State()
	if fst.JournalRoot != pst.JournalRoot || fst.ClueRoot != pst.ClueRoot {
		t.Fatal("follower diverged from primary after replicated purge")
	}
	p, err := f.ProveExistence(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatalf("post-purge proof: %v", err)
	}
}

// TestReplicaResyncAfterGap attaches a stale follower after the primary
// purged past its frontier: the follower re-bases, fills the fam from
// the digest stream, and reseeds from the pseudo genesis — recovery's
// purge path, run over the wire.
func TestReplicaResyncAfterGap(t *testing.T) {
	e := newEnv(t, nil)
	f := newFollower(t, e)
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("early-%d", i), "K")
	}
	pump(t, e.ledger, f) // follower frontier: 5 journals

	// The primary runs ahead and purges beyond the follower's frontier.
	desc, ms := purgeSetup(t, e, 8, 9)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.append(t, fmt.Sprintf("late-%d", i), "K")
	}
	pump(t, e.ledger, f)

	if f.Size() != e.ledger.Size() || f.Base() != e.ledger.Base() {
		t.Fatalf("follower %d@%d, primary %d@%d", f.Size(), f.Base(), e.ledger.Size(), e.ledger.Base())
	}
	fst, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	pst, _ := e.ledger.State()
	if fst.JournalRoot != pst.JournalRoot || fst.ClueRoot != pst.ClueRoot || fst.StateRoot != pst.StateRoot {
		t.Fatal("resynced follower diverged from primary")
	}
	// The seeded clue lineage (purged versions included) validates
	// against the replicated digest stream, which purges never touch.
	if err := f.VerifyClueServer("K"); err != nil {
		t.Fatalf("seeded lineage does not validate: %v", err)
	}
	p, err := f.ProveExistence(e.ledger.Size()-2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatalf("post-resync proof: %v", err)
	}
}

// TestReplicaReopen closes a follower mid-stream and reopens it: the
// recovery path restores the apply-only state and replication resumes
// where it left off.
func TestReplicaReopen(t *testing.T) {
	e := newEnv(t, nil)
	store := streamfs.NewMemory()
	blobs := streamfs.NewMemoryBlobs()
	cfg := Config{
		URI:           e.cfg.URI,
		FractalHeight: e.cfg.FractalHeight,
		BlockSize:     e.cfg.BlockSize,
		DBA:           e.cfg.DBA,
		Store:         store,
		Blobs:         blobs,
		Clock:         e.cfg.Clock,
		ApplyOnly:     true,
		PrimaryLSP:    e.lsp.Public(),
	}
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	pump(t, e.ledger, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("more-%d", i), "K")
	}
	f, err = Open(cfg)
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	pump(t, e.ledger, f)
	fst, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	pst, _ := e.ledger.State()
	if fst.JournalRoot != pst.JournalRoot || fst.ClueRoot != pst.ClueRoot {
		t.Fatal("reopened follower diverged")
	}
}

// TestReplicaReopenMidResync crashes a follower between the re-base and
// the pseudo-genesis replication — the window where a purged journal
// stream exists with no pseudo genesis on it — and checks reopen lands
// back in seeding and converges.
func TestReplicaReopenMidResync(t *testing.T) {
	e := newEnv(t, nil)
	store := streamfs.NewMemory()
	cfg := Config{
		URI:           e.cfg.URI,
		FractalHeight: e.cfg.FractalHeight,
		BlockSize:     e.cfg.BlockSize,
		DBA:           e.cfg.DBA,
		Store:         store,
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         e.cfg.Clock,
		ApplyOnly:     true,
		PrimaryLSP:    e.lsp.Public(),
	}
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	desc, ms := purgeSetup(t, e, 8, 7)
	if _, err := e.ledger.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}

	// Manually run the resync only through the digest fill, then "crash".
	_, fjLen, _ := f.StreamFrontier(StreamJournals)
	_, pBase, _, err := e.ledger.ReadStreamRange(StreamJournals, fjLen, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pBase == 0 {
		t.Fatal("expected purged primary")
	}
	if err := f.BeginResync(pBase); err != nil {
		t.Fatal(err)
	}
	drecs, _, _, err := e.ledger.ReadStreamRange(StreamDigests, 0, int(pBase), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicatedDigests(0, drecs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = Open(cfg)
	if err != nil {
		t.Fatalf("reopen mid-resync: %v", err)
	}
	if info, ok := f.ReplicaStatus(); !ok || !info.Seeding {
		t.Fatalf("reopened follower not seeding: %+v", info)
	}
	pump(t, e.ledger, f)
	fst, err := f.State()
	if err != nil {
		t.Fatal(err)
	}
	pst, _ := e.ledger.State()
	if fst.JournalRoot != pst.JournalRoot {
		t.Fatal("mid-resync reopen diverged")
	}
}

// TestReplicaFrameOverlap re-applies overlapping frames (retry after a
// torn pull): duplicates are skipped, gaps stop the batch.
func TestReplicaFrameOverlap(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	f := newFollower(t, e)
	recs, _, _, err := e.ledger.ReadStreamRange(StreamJournals, 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ApplyReplicatedJournals(0, recs[:4], false); err != nil {
		t.Fatal(err)
	}
	// Overlapping retry: offsets 0..5 again, only the tail applies.
	applied, _, err := f.ApplyReplicatedJournals(0, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(recs)-4 {
		t.Fatalf("overlap applied %d, want %d", applied, len(recs)-4)
	}
	if f.Size() != uint64(len(recs)) {
		t.Fatalf("follower size %d, want %d", f.Size(), len(recs))
	}
	// A gapped frame applies nothing.
	applied, _, err = f.ApplyReplicatedJournals(uint64(len(recs))+5, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("gapped frame applied %d records", applied)
	}
	// Journal bytes are identical to the primary's, record for record.
	frecs, _, _, err := f.ReadStreamRange(StreamJournals, 0, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if string(frecs[i]) != string(recs[i]) {
			t.Fatalf("journal %d differs between primary and follower", i)
		}
	}
}

// TestReplicaOccultReplication checks occult decisions roll forward on
// the follower: the bitmap is set and payload serving fails honestly.
func TestReplicaOccultReplication(t *testing.T) {
	e := newEnv(t, nil)
	f := newFollower(t, e)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	desc := &OccultDescriptor{URI: e.cfg.URI, JSN: 2}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	pump(t, e.ledger, f)

	rec, err := f.GetJournal(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Occulted {
		t.Fatal("occult bit did not replicate")
	}
	// The digest-only existence proof still verifies (Protocol 2).
	p, err := f.ProveExistence(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Payload != nil {
		t.Fatal("occulted journal shipped a payload")
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
}
