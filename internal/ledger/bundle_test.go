package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/sig"
	"ledgerdb/internal/tsa"
)

func TestBundleExportVerify(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	// Two-way pegging: attach a TSA attestation so bundles carry a
	// when-chain.
	authority := tsa.New("a", tsa.Options{Clock: e.cfg.Clock})
	if _, err := e.ledger.AnchorTimeWith(authority.Stamp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.append(t, fmt.Sprintf("late-%d", i))
	}

	b, err := e.ledger.ExportBundle(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if b.TimeRecordBytes == nil {
		t.Fatal("bundle has no when-chain despite an anchored time journal")
	}
	// Offline verification: bytes + pinned keys, nothing else.
	rec, ta, err := VerifyBundle(b, e.lsp.Public(), []sig.PublicKey{authority.Public()})
	if err != nil {
		t.Fatalf("VerifyBundle: %v", err)
	}
	if rec.JSN != 3 {
		t.Fatalf("bundle proves jsn %d, want 3", rec.JSN)
	}
	if ta == nil || ta.Timestamp == 0 {
		t.Fatal("no verified attestation returned")
	}
	if string(b.Payload) != "doc-2" {
		t.Fatalf("payload %q", b.Payload)
	}

	// Round-trip through the codec.
	raw := b.EncodeBytes()
	b2, err := DecodeProofBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyBundle(b2, e.lsp.Public(), []sig.PublicKey{authority.Public()}); err != nil {
		t.Fatalf("decoded bundle: %v", err)
	}
	// Encode fixpoint: decode(encode(b)) re-encodes to identical bytes.
	if string(b2.EncodeBytes()) != string(raw) {
		t.Fatal("bundle encode is not a fixpoint across decode")
	}

	// A record with no later time journal still proves existence.
	nb, err := e.ledger.ExportBundle(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if nb.TimeRecordBytes != nil {
		t.Fatal("jsn 7 postdates the time journal but got a when-chain")
	}
	if _, ta, err := VerifyBundle(nb, e.lsp.Public(), nil); err != nil || ta != nil {
		t.Fatalf("chainless bundle: rec err %v, ta %v", err, ta)
	}
}

func TestBundleTamperRejected(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	authority := tsa.New("a", tsa.Options{Clock: e.cfg.Clock})
	if _, err := e.ledger.AnchorTimeWith(authority.Stamp); err != nil {
		t.Fatal(err)
	}
	fresh := func() *ProofBundle {
		b, err := e.ledger.ExportBundle(2, true)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Wrong LSP key.
	if _, _, err := VerifyBundle(fresh(), sig.GenerateDeterministic("other").Public(), nil); err == nil {
		t.Fatal("bundle verified under the wrong LSP key")
	}
	// Unpinned TSA.
	if _, _, err := VerifyBundle(fresh(), e.lsp.Public(), []sig.PublicKey{sig.GenerateDeterministic("x").Public()}); !errors.Is(err, ErrVerify) {
		t.Fatal("bundle verified under an unpinned TSA key")
	}
	// Tampered payload.
	b := fresh()
	b.Payload = []byte("doc-9")
	if _, _, err := VerifyBundle(b, e.lsp.Public(), nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("tampered payload: %v", err)
	}
	// Record swapped for another committed record (fam fold must fail).
	b = fresh()
	other, err := e.ledger.ExportBundle(1, false)
	if err != nil {
		t.Fatal(err)
	}
	b.RecordBytes = other.RecordBytes
	if _, _, err := VerifyBundle(b, e.lsp.Public(), nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("swapped record: %v", err)
	}
	// Severed when-chain halves.
	b = fresh()
	b.TimeProof = nil
	if _, _, err := VerifyBundle(b, e.lsp.Public(), nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("half a time chain: %v", err)
	}
	b = fresh()
	b.TimeRecordBytes = nil
	if _, _, err := VerifyBundle(b, e.lsp.Public(), nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("time proofs without journal: %v", err)
	}
}

// TestBundleFromFollower exports a bundle from a replica: it anchors to
// the primary-signed checkpoint and verifies offline against the same
// pinned key — the degraded-read topology's escape hatch, proofs that
// outlive both the partition and the ledger service.
func TestBundleFromFollower(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 4; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	authority := tsa.New("a", tsa.Options{Clock: e.cfg.Clock})
	if _, err := e.ledger.AnchorTimeWith(authority.Stamp); err != nil {
		t.Fatal(err)
	}
	e.append(t, "after-anchor")
	f := newFollower(t, e)
	pump(t, e.ledger, f)

	b, err := f.ExportBundle(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.TimeRecordBytes == nil {
		t.Fatal("follower bundle missing when-chain")
	}
	rec, ta, err := VerifyBundle(b, e.lsp.Public(), []sig.PublicKey{authority.Public()})
	if err != nil {
		t.Fatalf("follower bundle: %v", err)
	}
	if rec.JSN != 2 || ta == nil {
		t.Fatalf("follower bundle proves jsn %d, ta %v", rec.JSN, ta)
	}
	// No payload blobs replicate to followers: digest-only export.
	if b.Payload != nil {
		t.Fatal("follower shipped a payload it cannot hold")
	}
}

// buildBundleSeed builds a valid with-when-chain bundle encoding for the
// fuzz seed corpus (also used by TestRegenFuzzCorpus).
func buildBundleSeed(tb testing.TB) []byte {
	tb.Helper()
	e := newEnv(tb, nil)
	for i := 0; i < 3; i++ {
		e.append(tb, fmt.Sprintf("doc-%d", i), "K")
	}
	authority := tsa.New("a", tsa.Options{Clock: e.cfg.Clock})
	if _, err := e.ledger.AnchorTimeWith(authority.Stamp); err != nil {
		tb.Fatal(err)
	}
	b, err := e.ledger.ExportBundle(1, true)
	if err != nil {
		tb.Fatal(err)
	}
	return b.EncodeBytes()
}

func FuzzDecodeProofBundle(f *testing.F) {
	f.Add(buildBundleSeed(f))
	f.Add([]byte("ledgerdb/bundle/v1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := DecodeProofBundle(raw)
		if err != nil {
			return
		}
		// Same invariant as the fuzz_test.go targets: no panic, and any
		// accepted input has a stable re-encoding.
		enc := b.EncodeBytes()
		b2, err := DecodeProofBundle(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted bundle failed: %v", err)
		}
		if string(b2.EncodeBytes()) != string(enc) {
			t.Fatal("proof bundle encoding is not a fixpoint")
		}
	})
}
