package ledger

// Verified rich queries. The sidecar index (internal/index) answers
// by-clue-prefix, by-time-range, and by-signer lookups, but it is pure
// cache: a QueryResult never asks the client to trust it. Matches ship
// as an ExistenceProofBatch (each record proven into the signed fam
// root, so the client re-checks the match predicate against PROVEN
// record content — a tampered index entry fails verification, it is
// never silently served), and an empty prefix reply ships an
// AbsenceProof against the signed clue-set root. Empty time/signer
// replies carry no completeness proof — the ledger commits to the clue
// set, not to time or signer sortings — and VerifyQueryResult documents
// that asymmetry rather than papering over it.

import (
	"fmt"
	"strings"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// QueryKind selects an index projection.
type QueryKind uint8

const (
	QueryByPrefix QueryKind = 1 // clues with a given prefix
	QueryByTime   QueryKind = 2 // commit timestamp in [From, To)
	QueryBySigner QueryKind = 3 // records signed by a client key
)

// String names the kind for CLI and error text.
func (k QueryKind) String() string {
	switch k {
	case QueryByPrefix:
		return "prefix"
	case QueryByTime:
		return "time"
	case QueryBySigner:
		return "signer"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Query is one rich-read request. Exactly the fields for its Kind are
// meaningful; the struct is comparable so a verifier can bind a result
// to the query it actually issued.
type Query struct {
	Kind        QueryKind
	Prefix      string        // QueryByPrefix: clue prefix ("" matches all)
	From, To    int64         // QueryByTime: commit timestamps in [From, To)
	Signer      sig.PublicKey // QueryBySigner
	Limit       uint64        // max matches returned; 0 or >MaxProofBatch clamps to MaxProofBatch
	WithPayload bool          // include payload bytes in the proof batch
}

// Validate rejects structurally meaningless queries before any index
// work.
func (q Query) Validate() error {
	switch q.Kind {
	case QueryByPrefix:
	case QueryByTime:
		if q.From >= q.To {
			return fmt.Errorf("%w: empty time range [%d,%d)", journal.ErrBadRequest, q.From, q.To)
		}
	case QueryBySigner:
		if q.Signer == (sig.PublicKey{}) {
			return fmt.Errorf("%w: zero signer key", journal.ErrBadRequest)
		}
	default:
		return fmt.Errorf("%w: unknown query kind %d", journal.ErrBadRequest, q.Kind)
	}
	return nil
}

// EffectiveLimit is the match cap after clamping.
func (q Query) EffectiveLimit() uint64 {
	if q.Limit == 0 || q.Limit > MaxProofBatch {
		return MaxProofBatch
	}
	return q.Limit
}

// Matches reports whether a (proven) record satisfies the query
// predicate. This is the client's defense against a tampered index:
// the record content comes out of an existence proof, so a jsn the
// index wrongly mapped to this query fails here.
func (q Query) Matches(rec *journal.Record) bool {
	switch q.Kind {
	case QueryByPrefix:
		for _, c := range rec.Clues {
			if strings.HasPrefix(c, q.Prefix) {
				return true
			}
		}
		return false
	case QueryByTime:
		return rec.Timestamp >= q.From && rec.Timestamp < q.To
	case QueryBySigner:
		return rec.ClientPK == q.Signer
	}
	return false
}

// QueryResult is the verifiable reply: proven matches, or a proven
// absence for an empty prefix reply.
type QueryResult struct {
	Query     Query
	Truncated bool                 // more matches existed than Limit
	Batch     *ExistenceProofBatch // nil when no records matched
	Absence   *AbsenceProof        // set on empty QueryByPrefix replies
}

// VerifyQueryResult checks a query result offline against the LSP
// public key and the query the CLIENT issued (never the echoed one
// alone — the echo must match, binding the result to the request).
// It returns the proven records in ascending jsn order.
//
// What is proven: every returned record exists in the ledger, is
// client-signed, and satisfies q's predicate; an empty prefix reply
// proves NO live clue matches. What is not: completeness of non-empty
// replies, and emptiness of time/signer replies — the signed state
// commits to the clue set, not to time or signer orderings.
func VerifyQueryResult(lsp sig.PublicKey, q Query, res *QueryResult) ([]*journal.Record, error) {
	if res == nil {
		return nil, fmt.Errorf("%w: nil query result", ErrVerify)
	}
	if res.Query != q {
		return nil, fmt.Errorf("%w: result echoes query %v, issued %v", ErrVerify, res.Query.Kind, q.Kind)
	}
	if res.Batch == nil {
		if q.Kind == QueryByPrefix {
			if res.Absence == nil {
				return nil, fmt.Errorf("%w: empty prefix reply without absence proof", ErrVerify)
			}
			if !res.Absence.Prefix || res.Absence.Name != q.Prefix {
				return nil, fmt.Errorf("%w: absence proof is for %q, query prefix %q", ErrVerify, res.Absence.Name, q.Prefix)
			}
			if err := VerifyAbsence(lsp, res.Absence); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if uint64(len(res.Batch.Items)) > q.EffectiveLimit() {
		return nil, fmt.Errorf("%w: %d matches exceed requested limit %d", ErrVerify, len(res.Batch.Items), q.EffectiveLimit())
	}
	recs, err := VerifyExistenceBatch(res.Batch, lsp)
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i, rec := range recs {
		if i > 0 && rec.JSN <= prev {
			return nil, fmt.Errorf("%w: match %d out of order (jsn %d after %d)", ErrVerify, i, rec.JSN, prev)
		}
		prev = rec.JSN
		if !q.Matches(rec) {
			return nil, fmt.Errorf("%w: proven record %d does not satisfy the %s query — index served a non-match", ErrVerify, rec.JSN, q.Kind)
		}
	}
	return recs, nil
}

// Encode serializes a query.
func (q Query) Encode(w *wire.Writer) {
	w.Uint8(uint8(q.Kind))
	w.String(q.Prefix)
	w.Int64(q.From)
	w.Int64(q.To)
	sig.EncodePublicKey(w, q.Signer)
	w.Uvarint(q.Limit)
	w.Bool(q.WithPayload)
}

// EncodeBytes is Encode into a fresh buffer.
func (q Query) EncodeBytes() []byte {
	w := wire.NewWriter(128)
	q.Encode(w)
	return w.Bytes()
}

// DecodeQueryFrom parses a query, leaving trailing bytes to the caller.
func DecodeQueryFrom(r *wire.Reader) (Query, error) {
	q := Query{
		Kind:   QueryKind(r.Uint8()),
		Prefix: r.String(),
		From:   r.Int64(),
		To:     r.Int64(),
		Signer: sig.DecodePublicKey(r),
		Limit:  r.Uvarint(),
	}
	q.WithPayload = r.Bool()
	return q, r.Err()
}

// DecodeQuery parses a transported query.
func DecodeQuery(b []byte) (Query, error) {
	r := wire.NewReader(b)
	q, err := DecodeQueryFrom(r)
	if err != nil {
		return q, err
	}
	return q, r.Finish()
}

// EncodeBytes serializes a query result for transport. The proof batch
// and absence proof nest as length-prefixed blobs so their own codecs
// (with their Finish checks) stay the single source of truth.
func (res *QueryResult) EncodeBytes() []byte {
	w := wire.NewWriter(4096)
	res.Query.Encode(w)
	w.Bool(res.Truncated)
	if res.Batch != nil {
		w.WriteBytes(res.Batch.EncodeBytes())
	} else {
		w.WriteBytes(nil)
	}
	if res.Absence != nil {
		w.WriteBytes(res.Absence.EncodeBytes())
	} else {
		w.WriteBytes(nil)
	}
	return w.Bytes()
}

// DecodeQueryResult parses a transported query result.
func DecodeQueryResult(raw []byte) (*QueryResult, error) {
	r := wire.NewReader(raw)
	q, err := DecodeQueryFrom(r)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Query: q, Truncated: r.Bool()}
	batchBytes := r.ReadBytes()
	absBytes := r.ReadBytes()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if len(batchBytes) > 0 {
		b, err := DecodeExistenceProofBatch(batchBytes)
		if err != nil {
			return nil, err
		}
		res.Batch = b
	}
	if len(absBytes) > 0 {
		a, err := DecodeAbsenceProof(absBytes)
		if err != nil {
			return nil, err
		}
		res.Absence = a
	}
	return res, nil
}
