package ledger

// Authenticated absence (the tentpole of the verified rich-query
// layer). A plain clue lookup can prove what IS in the ledger, but "no
// such clue" was an unverifiable shrug. The ledger now commits, in
// every SignedState, to the sorted set of live clue names (the absence
// tree, cmtree.BuildAbsenceTree); an AbsenceProof exhibits the two
// ADJACENT committed neighbors bracketing the query, each with a
// Merkle path to the signed ClueSetRoot. Adjacency (indices differ by
// one under the signed ClueCount) plus strict ordering (pred < q <
// succ) leaves no room for a member between them, so the client
// verifies "q is absent" offline with zero trust in any index.
//
// The same proof covers prefix queries: pred < P together with
// succ > P ∧ ¬hasPrefix(succ, P) proves NO member starts with P —
// every string with prefix P sorts at or above P and strictly below
// any greater string that does not share the prefix.

import (
	"errors"
	"fmt"
	"strings"

	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// ErrPresent is returned by ProveAbsence when the queried clue (or a
// clue matching the queried prefix) is live: the correct reply is an
// existence proof, not an absence proof.
var ErrPresent = errors.New("ledger: clue is present")

// MaxAbsencePath bounds a decoded neighbor path; a binary tree over
// 2^64 leaves needs at most 64 siblings.
const MaxAbsencePath = 64

// AbsenceProof is the offline-verifiable "not in the ledger" reply for
// an exact clue name or a clue prefix. For a query strictly below
// (above) the whole committed set the pred (succ) side is empty and
// the other neighbor's boundary index stands in for adjacency.
type AbsenceProof struct {
	Name   string // queried clue name, or the prefix when Prefix
	Prefix bool

	HasPred   bool
	Pred      string
	PredIndex uint64
	PredPath  []hashutil.Digest

	HasSucc   bool
	Succ      string
	SuccIndex uint64
	SuccPath  []hashutil.Digest

	State *SignedState // signs ClueCount + ClueSetRoot
}

// ProveAbsence builds the absence proof for name (exact match, or any
// live clue starting with name when prefix is set). Returns ErrPresent
// when the query is satisfiable — absence of something present is not
// provable.
func (l *Ledger) ProveAbsence(name string, prefix bool) (*AbsenceProof, error) {
	l.mu.RLock()
	st, err := l.stateLocked()
	if err != nil {
		l.mu.RUnlock()
		return nil, err
	}
	// Under the same read lock as the state: (name-set version, base)
	// cannot move, so the tree is exactly the one st committed to.
	tree := l.clueSet.get(l.clues, l.base)
	l.mu.RUnlock()

	at, present := tree.Locate(name, prefix)
	if present {
		if prefix {
			return nil, fmt.Errorf("%w: a live clue matches prefix %q", ErrPresent, name)
		}
		return nil, fmt.Errorf("%w: %q", ErrPresent, name)
	}
	p := &AbsenceProof{Name: name, Prefix: prefix, State: st}
	if at > 0 {
		i := at - 1
		p.HasPred, p.Pred, p.PredIndex, p.PredPath = true, tree.Name(i), uint64(i), tree.Path(i)
	}
	if uint64(at) < tree.Count() {
		p.HasSucc, p.Succ, p.SuccIndex, p.SuccPath = true, tree.Name(at), uint64(at), tree.Path(at)
	}
	return p, nil
}

// VerifyAbsence checks an absence proof against the LSP public key —
// the only trusted datum. It establishes that no live clue equals
// p.Name (or starts with it when p.Prefix) in the clue set the signed
// state commits to.
func VerifyAbsence(lsp sig.PublicKey, p *AbsenceProof) error {
	if p == nil || p.State == nil {
		return fmt.Errorf("%w: nil absence proof", ErrVerify)
	}
	if err := p.State.Verify(lsp); err != nil {
		return err
	}
	count, root := p.State.ClueCount, p.State.ClueSetRoot
	if count == 0 {
		// The empty set: absence is vacuous, but the proof must not
		// smuggle neighbors, and the committed root must be the
		// canonical empty-set root.
		if p.HasPred || p.HasSucc {
			return fmt.Errorf("%w: neighbors claimed for an empty clue set", ErrVerify)
		}
		if root != hashutil.Zero {
			return fmt.Errorf("%w: empty clue set with nonzero root", ErrVerify)
		}
		return nil
	}
	// Adjacency: the two neighbors must be consecutive committed
	// leaves, or the single neighbor must sit on the set boundary.
	switch {
	case p.HasPred && p.HasSucc:
		if p.SuccIndex != p.PredIndex+1 {
			return fmt.Errorf("%w: absence neighbors %d and %d are not adjacent", ErrVerify, p.PredIndex, p.SuccIndex)
		}
	case p.HasSucc:
		if p.SuccIndex != 0 {
			return fmt.Errorf("%w: no predecessor but successor index %d != 0", ErrVerify, p.SuccIndex)
		}
	case p.HasPred:
		if p.PredIndex != count-1 {
			return fmt.Errorf("%w: no successor but predecessor index %d != count-1 (%d)", ErrVerify, p.PredIndex, count-1)
		}
	default:
		return fmt.Errorf("%w: no neighbors for a non-empty clue set", ErrVerify)
	}
	// Ordering: the gap between the neighbors must cover the query.
	if p.HasPred && p.Pred >= p.Name {
		return fmt.Errorf("%w: predecessor %q does not sort below query %q", ErrVerify, p.Pred, p.Name)
	}
	if p.HasSucc {
		if p.Succ <= p.Name {
			return fmt.Errorf("%w: successor %q does not sort above query %q", ErrVerify, p.Succ, p.Name)
		}
		if p.Prefix && strings.HasPrefix(p.Succ, p.Name) {
			return fmt.Errorf("%w: successor %q matches queried prefix %q", ErrVerify, p.Succ, p.Name)
		}
	}
	// Membership: both neighbors must authenticate against the signed
	// clue-set root at their claimed indices.
	if p.HasPred {
		if err := cmtree.VerifyAbsencePath(root, count, p.PredIndex, p.Pred, p.PredPath); err != nil {
			return fmt.Errorf("%w: predecessor: %v", ErrVerify, err)
		}
	}
	if p.HasSucc {
		if err := cmtree.VerifyAbsencePath(root, count, p.SuccIndex, p.Succ, p.SuccPath); err != nil {
			return fmt.Errorf("%w: successor: %v", ErrVerify, err)
		}
	}
	return nil
}

// Encode serializes an absence proof.
func (p *AbsenceProof) Encode(w *wire.Writer) {
	w.String(p.Name)
	w.Bool(p.Prefix)
	w.Bool(p.HasPred)
	if p.HasPred {
		w.String(p.Pred)
		w.Uvarint(p.PredIndex)
		w.DigestSlice(p.PredPath)
	}
	w.Bool(p.HasSucc)
	if p.HasSucc {
		w.String(p.Succ)
		w.Uvarint(p.SuccIndex)
		w.DigestSlice(p.SuccPath)
	}
	p.State.Encode(w)
}

// EncodeBytes is Encode into a fresh buffer.
func (p *AbsenceProof) EncodeBytes() []byte {
	w := wire.NewWriter(512)
	p.Encode(w)
	return w.Bytes()
}

// DecodeAbsenceProofFrom parses an absence proof from a reader,
// leaving trailing bytes for the caller (QueryResult embeds one).
func DecodeAbsenceProofFrom(r *wire.Reader) (*AbsenceProof, error) {
	p := &AbsenceProof{Name: r.String(), Prefix: r.Bool()}
	if p.HasPred = r.Bool(); p.HasPred {
		p.Pred = r.String()
		p.PredIndex = r.Uvarint()
		p.PredPath = r.DigestSlice(MaxAbsencePath)
	}
	if p.HasSucc = r.Bool(); p.HasSucc {
		p.Succ = r.String()
		p.SuccIndex = r.Uvarint()
		p.SuccPath = r.DigestSlice(MaxAbsencePath)
	}
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	p.State = st
	return p, r.Err()
}

// DecodeAbsenceProof parses a transported absence proof.
func DecodeAbsenceProof(b []byte) (*AbsenceProof, error) {
	r := wire.NewReader(b)
	p, err := DecodeAbsenceProofFrom(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}
