package ledger

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// testEnv wires a ledger with deterministic keys and a logical clock.
type testEnv struct {
	ledger  *Ledger
	lsp     *sig.KeyPair
	dba     *sig.KeyPair
	client  *sig.KeyPair
	clock   int64
	store   streamfs.Store
	blobs   streamfs.BlobStore
	cfg     Config
	nonce   uint64
}

func newEnv(t testing.TB, mutate func(*Config)) *testEnv {
	t.Helper()
	e := &testEnv{
		lsp:    sig.GenerateDeterministic("lsp"),
		dba:    sig.GenerateDeterministic("dba"),
		client: sig.GenerateDeterministic("client"),
		store:  streamfs.NewMemory(),
		blobs:  streamfs.NewMemoryBlobs(),
		clock:  1000,
	}
	e.cfg = Config{
		URI:           "ledger://test",
		FractalHeight: 3,
		BlockSize:     4,
		LSP:           e.lsp,
		DBA:           e.dba.Public(),
		Store:         e.store,
		Blobs:         e.blobs,
		Clock: func() int64 {
			e.clock++
			return e.clock
		},
	}
	if mutate != nil {
		mutate(&e.cfg)
	}
	l, err := Open(e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.ledger = l
	return e
}

func (e *testEnv) request(t testing.TB, payload string, clues ...string) *journal.Request {
	t.Helper()
	e.nonce++
	req := &journal.Request{
		LedgerURI: "ledger://test",
		Type:      journal.TypeNormal,
		Clues:     clues,
		Payload:   []byte(payload),
		Nonce:     e.nonce,
	}
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	return req
}

func (e *testEnv) append(t testing.TB, payload string, clues ...string) *journal.Receipt {
	t.Helper()
	r, err := e.ledger.Append(e.request(t, payload, clues...))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOpenWritesGenesis(t *testing.T) {
	e := newEnv(t, nil)
	if e.ledger.Size() != 1 {
		t.Fatalf("Size = %d, want 1 (genesis)", e.ledger.Size())
	}
	rec, err := e.ledger.GetJournal(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != journal.TypeGenesis {
		t.Fatalf("jsn 0 type = %s", rec.Type)
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	_, err := Open(Config{})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendAssignsDenseJSNs(t *testing.T) {
	e := newEnv(t, nil)
	for i := 1; i <= 10; i++ {
		r := e.append(t, fmt.Sprintf("payload-%d", i))
		if r.JSN != uint64(i) {
			t.Fatalf("jsn = %d, want %d", r.JSN, i)
		}
		if err := r.Verify(e.lsp.Public()); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
	}
}

func TestAppendRejectsBadSignature(t *testing.T) {
	e := newEnv(t, nil)
	req := e.request(t, "payload")
	req.Payload = []byte("tampered-in-flight") // threat-A
	if _, err := e.ledger.Append(req); !errors.Is(err, journal.ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestAppendRejectsWrongURI(t *testing.T) {
	e := newEnv(t, nil)
	req := e.request(t, "payload")
	req.LedgerURI = "ledger://other"
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Append(req); !errors.Is(err, journal.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendRejectsPrivilegedTypes(t *testing.T) {
	e := newEnv(t, nil)
	for _, typ := range []journal.Type{journal.TypePurge, journal.TypeOccult, journal.TypeTime, journal.TypeGenesis} {
		req := e.request(t, "payload")
		req.Type = typ
		if err := req.Sign(e.client); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ledger.Append(req); !errors.Is(err, ErrNotPermitted) {
			t.Fatalf("type %s: err = %v, want ErrNotPermitted", typ, err)
		}
	}
}

func TestRegistryGatesAppends(t *testing.T) {
	auth := ca.NewTestAuthority("root")
	reg := ca.NewRegistry(auth.Public())
	e := newEnv(t, func(c *Config) { c.Registry = reg })
	// Uncertified client is rejected.
	if _, err := e.ledger.Append(e.request(t, "payload")); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("err = %v, want ErrNotPermitted", err)
	}
	cert, _ := auth.Issue(e.client.Public(), ca.RoleUser, "alice")
	if err := reg.Admit(cert); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Append(e.request(t, "payload")); err != nil {
		t.Fatalf("certified append: %v", err)
	}
}

func TestBlocksCutAtBlockSize(t *testing.T) {
	e := newEnv(t, nil) // BlockSize 4
	for i := 0; i < 13; i++ {
		e.append(t, fmt.Sprintf("p%d", i))
	}
	// 14 journals total (genesis + 13) => 3 full blocks of 4, 2 pending.
	if got := e.ledger.Height(); got != 3 {
		t.Fatalf("Height = %d, want 3", got)
	}
	h0, _ := e.ledger.Header(0)
	h1, _ := e.ledger.Header(1)
	h2, _ := e.ledger.Header(2)
	if h1.Prev != h0.Hash() || h2.Prev != h1.Hash() {
		t.Fatal("block chain broken")
	}
	if h0.FirstJSN != 0 || h0.Count != 4 || h1.FirstJSN != 4 {
		t.Fatalf("block ranges wrong: %+v %+v", h0, h1)
	}
	// CutBlock seals the partial tail.
	h3, err := e.ledger.CutBlock()
	if err != nil {
		t.Fatal(err)
	}
	if h3.Height != 3 || h3.FirstJSN != 12 || h3.Count != 2 {
		t.Fatalf("tail block: %+v", h3)
	}
	// CutBlock with nothing pending returns the last header.
	again, err := e.ledger.CutBlock()
	if err != nil || again.Height != 3 {
		t.Fatalf("idempotent cut: %+v, %v", again, err)
	}
}

func TestGetJournalAndPayload(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "the payload", "clue-x")
	rec, err := e.ledger.GetJournal(r.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TxHash() != r.TxHash {
		t.Fatal("record tx-hash differs from receipt")
	}
	payload, err := e.ledger.GetPayload(r.JSN)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "the payload" {
		t.Fatalf("payload = %q", payload)
	}
	if _, err := e.ledger.GetJournal(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptedBlobStoreDetected(t *testing.T) {
	// A malicious or faulty shared storage returns different bytes under
	// the recorded digest key: every payload read must fail loudly.
	e := newEnv(t, nil)
	r := e.append(t, "the true payload")
	rec, _ := e.ledger.GetJournal(r.JSN)
	if err := e.blobs.Delete(rec.PayloadDigest); err != nil {
		t.Fatal(err)
	}
	if err := e.blobs.Put(rec.PayloadDigest, []byte("substituted bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.GetPayload(r.JSN); !errors.Is(err, ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify", err)
	}
	// The client-side verification also rejects the substituted payload.
	p, err := e.ledger.ProveExistence(r.JSN, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Payload != nil {
		if _, err := VerifyExistence(p, e.lsp.Public()); err == nil {
			t.Fatal("substituted payload verified")
		}
	}
}

func TestExistenceProofRoundTrip(t *testing.T) {
	e := newEnv(t, nil)
	var receipts []*journal.Receipt
	for i := 0; i < 30; i++ {
		receipts = append(receipts, e.append(t, fmt.Sprintf("doc-%d", i)))
	}
	for _, r := range receipts {
		p, err := e.ledger.ProveExistence(r.JSN, true)
		if err != nil {
			t.Fatalf("ProveExistence(%d): %v", r.JSN, err)
		}
		rec, err := VerifyExistence(p, e.lsp.Public())
		if err != nil {
			t.Fatalf("VerifyExistence(%d): %v", r.JSN, err)
		}
		if rec.JSN != r.JSN {
			t.Fatalf("verified record jsn %d, want %d", rec.JSN, r.JSN)
		}
		if string(p.Payload) != fmt.Sprintf("doc-%d", rec.JSN-1) {
			t.Fatalf("payload = %q", p.Payload)
		}
	}
}

func TestExistenceVerifyDetectsTampering(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "original")
	p, _ := e.ledger.ProveExistence(r.JSN, true)

	// Tampered record bytes ("foobar" -> "foopar").
	bad := *p
	bad.RecordBytes = append([]byte(nil), p.RecordBytes...)
	bad.RecordBytes[len(bad.RecordBytes)/2] ^= 0x01
	if _, err := VerifyExistence(&bad, e.lsp.Public()); err == nil {
		t.Fatal("tampered record accepted")
	}
	// Tampered payload.
	bad2 := *p
	bad2.Payload = []byte("originaL")
	if _, err := VerifyExistence(&bad2, e.lsp.Public()); !errors.Is(err, ErrVerify) {
		t.Fatal("tampered payload accepted")
	}
	// Wrong LSP key.
	if _, err := VerifyExistence(p, sig.GenerateDeterministic("evil").Public()); err == nil {
		t.Fatal("wrong LSP accepted")
	}
}

func TestExistenceAnchored(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 40; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i))
	}
	anchor := e.ledger.Anchor()
	if anchor.Epochs == 0 {
		t.Fatal("no sealed epochs at δ=3 with 41 journals")
	}
	p, err := e.ledger.ProveExistenceAnchored(2, anchor, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fam.Hops) != 0 {
		t.Fatalf("anchored proof has %d hops", len(p.Fam.Hops))
	}
	if _, err := VerifyExistenceAnchored(p, e.lsp.Public(), anchor); err != nil {
		t.Fatalf("anchored verify: %v", err)
	}
}

func TestServerSideVerify(t *testing.T) {
	e := newEnv(t, nil)
	r := e.append(t, "doc")
	if err := e.ledger.VerifyExistenceServer(r.JSN); err != nil {
		t.Fatalf("server verify: %v", err)
	}
}

func TestClueLineageEndToEnd(t *testing.T) {
	e := newEnv(t, nil)
	const n = 9
	for i := 0; i < n; i++ {
		e.append(t, fmt.Sprintf("artwork-v%d", i), "DCI001")
		e.append(t, fmt.Sprintf("noise-%d", i), "OTHER")
	}
	recs, err := e.ledger.ListClue("DCI001")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("lineage has %d records", len(recs))
	}
	// Server-side.
	if err := e.ledger.VerifyClueServer("DCI001"); err != nil {
		t.Fatalf("server clue verify: %v", err)
	}
	// Client-side, whole clue.
	b, err := e.ledger.ProveClue("DCI001", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyClue(b, e.lsp.Public())
	if err != nil {
		t.Fatalf("client clue verify: %v", err)
	}
	if len(got) != n {
		t.Fatalf("verified %d records", len(got))
	}
	// Client-side, range.
	b2, err := e.ledger.ProveClue("DCI001", 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyClue(b2, e.lsp.Public()); err != nil {
		t.Fatalf("range clue verify: %v", err)
	}
}

func TestClueVerifyDetectsTampering(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 5; i++ {
		e.append(t, fmt.Sprintf("v%d", i), "K")
	}
	b, _ := e.ledger.ProveClue("K", 0, 0)
	// Tamper with one shipped record.
	b.Records[2] = append([]byte(nil), b.Records[2]...)
	b.Records[2][len(b.Records[2])/3] ^= 0x01
	if _, err := VerifyClue(b, e.lsp.Public()); err == nil {
		t.Fatal("tampered lineage accepted")
	}
	// Drop a record: count mismatch must be caught.
	b2, _ := e.ledger.ProveClue("K", 0, 0)
	b2.Records = b2.Records[:4]
	if _, err := VerifyClue(b2, e.lsp.Public()); err == nil {
		t.Fatal("dropped record accepted")
	}
}

func TestWorldState(t *testing.T) {
	e := newEnv(t, nil)
	req := e.request(t, "balance=100")
	req.StateKey = []byte("account/alice")
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	r1, err := e.ledger.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	jsn, digest, err := e.ledger.GetState([]byte("account/alice"))
	if err != nil {
		t.Fatal(err)
	}
	if jsn != r1.JSN || digest != hashutil.Sum([]byte("balance=100")) {
		t.Fatalf("state = (%d, %s)", jsn, digest.Short())
	}
	// Overwrite moves to the newer journal.
	req2 := e.request(t, "balance=80")
	req2.StateKey = []byte("account/alice")
	if err := req2.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	r2, _ := e.ledger.Append(req2)
	jsn, _, _ = e.ledger.GetState([]byte("account/alice"))
	if jsn != r2.JSN {
		t.Fatalf("state jsn = %d, want %d", jsn, r2.JSN)
	}
	if _, _, err := e.ledger.GetState([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestStateProofRoundTrip(t *testing.T) {
	e := newEnv(t, nil)
	req := e.request(t, "balance=42")
	req.StateKey = []byte("acct/bob")
	if err := req.Sign(e.client); err != nil {
		t.Fatal(err)
	}
	r, err := e.ledger.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.ledger.ProveState([]byte("acct/bob"))
	if err != nil {
		t.Fatal(err)
	}
	jsn, digest, err := VerifyState(p, e.lsp.Public())
	if err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	if jsn != r.JSN || digest != hashutil.Sum([]byte("balance=42")) {
		t.Fatalf("state = (%d, %s)", jsn, digest.Short())
	}
	// Wire round trip.
	got, err := DecodeStateProof(p.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyState(got, e.lsp.Public()); err != nil {
		t.Fatalf("decoded state proof rejected: %v", err)
	}
	// Forged value must fail.
	bad := *p
	bad.Value = encodeStateValue(r.JSN+1, digest)
	if _, _, err := VerifyState(&bad, e.lsp.Public()); err == nil {
		t.Fatal("forged state value accepted")
	}
	// Wrong LSP must fail.
	if _, _, err := VerifyState(p, sig.GenerateDeterministic("evil").Public()); err == nil {
		t.Fatal("wrong LSP accepted")
	}
	// Missing key.
	if _, err := e.ledger.ProveState([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSignedStateVerifies(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc")
	st, err := e.ledger.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
	st.JSN++
	if err := st.Verify(e.lsp.Public()); err == nil {
		t.Fatal("tampered state accepted")
	}
}

func TestAnchorTime(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc")
	st, _ := e.ledger.State()
	tsa := sig.GenerateDeterministic("tsa")
	ta := &journal.TimeAttestation{Digest: st.Digest(), Timestamp: 5000, TSAPK: tsa.Public()}
	ta.TSASig = tsa.MustSign(ta.SignedDigest())
	r, err := e.ledger.AnchorTime(ta)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := e.ledger.GetJournal(r.JSN)
	if rec.Type != journal.TypeTime {
		t.Fatalf("type = %s", rec.Type)
	}
	got, err := journal.DecodeTimeAttestation(rec.Extra)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != 5000 {
		t.Fatalf("timestamp = %d", got.Timestamp)
	}
	// A forged attestation is rejected.
	forged := &journal.TimeAttestation{Digest: st.Digest(), Timestamp: 1, TSAPK: tsa.Public()}
	forged.TSASig = ta.TSASig
	if _, err := e.ledger.AnchorTime(forged); !errors.Is(err, journal.ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryPlain(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 17; i++ {
		e.append(t, fmt.Sprintf("doc-%d", i), fmt.Sprintf("clue-%d", i%3))
	}
	stBefore, _ := e.ledger.State()

	// Reopen over the same stores.
	l2, err := Open(e.cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Size() != e.ledger.Size() {
		t.Fatalf("size after reopen: %d vs %d", l2.Size(), e.ledger.Size())
	}
	stAfter, _ := l2.State()
	if stBefore.JournalRoot != stAfter.JournalRoot {
		t.Fatal("fam root changed across reopen")
	}
	if stBefore.ClueRoot != stAfter.ClueRoot {
		t.Fatal("clue root changed across reopen")
	}
	if stBefore.StateRoot != stAfter.StateRoot {
		t.Fatal("state root changed across reopen")
	}
	// Proofs still work.
	p, err := l2.ProveExistence(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
	if err := l2.VerifyClueServer("clue-1"); err != nil {
		t.Fatal(err)
	}
	// New appends continue seamlessly.
	req := e.request(t, "post-recovery")
	if _, err := l2.Append(req); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendAndProve(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 50; i++ {
		e.append(t, fmt.Sprintf("warm-%d", i))
	}
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 100; i++ {
			req := &journal.Request{
				LedgerURI: "ledger://test", Type: journal.TypeNormal,
				Payload: []byte(fmt.Sprintf("conc-%d", i)), Nonce: uint64(1000 + i),
			}
			if err := req.Sign(e.client); err != nil {
				done <- err
				return
			}
			if _, err := e.ledger.Append(req); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 100; i++ {
			p, err := e.ledger.ProveExistence(uint64(1+i%50), false)
			if err != nil {
				done <- err
				return
			}
			if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
