package ledger

import (
	"fmt"
	"sort"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements crash/restart recovery and the pseudo-genesis
// snapshot that makes recovery work across purges. The paper's pseudo
// genesis "replicates the data on genesis, as well as snapshot states of
// the designated purge point (e.g., clue and membership status)"; here
// the snapshot carries the clue index, world-state entries, and member
// first-appearance map, all of which would otherwise be lost with the
// truncated journal prefix.

// snapshotLocked encodes the pseudo-genesis snapshot at a purge.
func (l *Ledger) snapshotLocked(point, purgeJSN uint64) []byte {
	w := wire.NewWriter(4096)
	w.String("ledgerdb/pseudogenesis/v1")
	w.Uvarint(point)
	w.Uvarint(purgeJSN)

	// Clue index: every clue's ordered jsn list (digests are recoverable
	// from the digest stream).
	type clueEntry struct {
		name string
		jsns []uint64
	}
	var clues []clueEntry
	for _, name := range l.clueNamesLocked() {
		jsns, err := l.clues.JSNs(name)
		if err != nil {
			continue
		}
		clues = append(clues, clueEntry{name, jsns})
	}
	w.Uvarint(uint64(len(clues)))
	for _, c := range clues {
		w.String(c.name)
		w.Uvarint(uint64(len(c.jsns)))
		for _, j := range c.jsns {
			w.Uvarint(j)
		}
	}

	// World-state entries.
	type stateEntry struct {
		key    []byte
		jsn    uint64
		digest hashutil.Digest
	}
	var states []stateEntry
	for key, v := range l.stateIndex {
		states = append(states, stateEntry{[]byte(key), v.jsn, v.digest})
	}
	sort.Slice(states, func(i, j int) bool { return string(states[i].key) < string(states[j].key) })
	w.Uvarint(uint64(len(states)))
	for _, s := range states {
		w.WriteBytes(s.key)
		w.Uvarint(s.jsn)
		w.Digest(s.digest)
	}

	// Membership status.
	type member struct {
		pk    sig.PublicKey
		first uint64
	}
	var members []member
	for pk, first := range l.firstSeen {
		members = append(members, member{pk, first})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].first < members[j].first })
	w.Uvarint(uint64(len(members)))
	for _, m := range members {
		sig.EncodePublicKey(w, m.pk)
		w.Uvarint(m.first)
	}
	return w.Bytes()
}

// PseudoGenesisInfo is the decoded snapshot, used by recovery and audits.
type PseudoGenesisInfo struct {
	Point    uint64 // first unpurged jsn
	PurgeJSN uint64 // the doubly-linked purge journal
	Clues    map[string][]uint64
	States   map[string]struct {
		JSN    uint64
		Digest hashutil.Digest
	}
	Members map[sig.PublicKey]uint64
}

// DecodePseudoGenesis parses a pseudo-genesis journal's Extra.
func DecodePseudoGenesis(b []byte) (*PseudoGenesisInfo, error) {
	r := wire.NewReader(b)
	if v := r.String(); v != "ledgerdb/pseudogenesis/v1" {
		return nil, fmt.Errorf("%w: bad pseudo-genesis version %q", journal.ErrDecode, v)
	}
	info := &PseudoGenesisInfo{
		Point:    r.Uvarint(),
		PurgeJSN: r.Uvarint(),
		Clues:    make(map[string][]uint64),
		States: make(map[string]struct {
			JSN    uint64
			Digest hashutil.Digest
		}),
		Members: make(map[sig.PublicKey]uint64),
	}
	nc := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	for i := uint64(0); i < nc; i++ {
		name := r.String()
		nj := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		jsns := make([]uint64, 0, nj)
		for j := uint64(0); j < nj; j++ {
			jsns = append(jsns, r.Uvarint())
		}
		info.Clues[name] = jsns
	}
	ns := r.Uvarint()
	for i := uint64(0); i < ns && r.Err() == nil; i++ {
		key := string(r.ReadBytes())
		info.States[key] = struct {
			JSN    uint64
			Digest hashutil.Digest
		}{r.Uvarint(), r.Digest()}
	}
	nm := r.Uvarint()
	for i := uint64(0); i < nm && r.Err() == nil; i++ {
		pk := sig.DecodePublicKey(r)
		info.Members[pk] = r.Uvarint()
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return info, nil
}

// recover rebuilds in-memory state from the streams after a restart.
// Open has already reconciled the streams onto one durable prefix
// (reconcileStreams); any block header covering trimmed records is
// dropped here, where headers are decoded anyway.
func (l *Ledger) recover() error {
	// The digest stream is complete history: it sizes the fam tree and
	// the jsn counter.
	if err := l.digests.Iterate(0, func(_ uint64, raw []byte) error {
		var d hashutil.Digest
		if len(raw) != hashutil.Size {
			return fmt.Errorf("ledger: digest stream record of %d bytes", len(raw))
		}
		copy(d[:], raw)
		l.fam.Append(d)
		return nil
	}); err != nil {
		return err
	}
	l.nextJSN = l.digests.Len()
	l.base = l.journals.Base()

	// Rebuild block headers, dropping any header past the reconciled
	// prefix. The sync order (blocks last) makes a durable header that
	// covers undurable records impossible, but a trimmed journal tail can
	// orphan headers that were themselves unsynced.
	trim := false
	var trimAt uint64
	if err := l.blocks.Iterate(0, func(seq uint64, raw []byte) error {
		h, err := DecodeBlockHeader(raw)
		if err != nil {
			return err
		}
		if h.FirstJSN+h.Count > l.nextJSN {
			trim, trimAt = true, seq
			return errStopIterate
		}
		l.headers = append(l.headers, h)
		return nil
	}); err != nil && err != errStopIterate {
		return err
	}
	if trim {
		if err := l.blocks.TruncateTail(trimAt); err != nil {
			return fmt.Errorf("ledger: reconcile block stream: %w", err)
		}
	}
	if n := len(l.headers); n > 0 {
		l.pendingCount = l.nextJSN - (l.headers[n-1].FirstJSN + l.headers[n-1].Count)
	} else {
		l.pendingCount = l.nextJSN
	}

	// If the ledger was purged, seed clue / state / membership data from
	// the most recent pseudo genesis before replaying live journals.
	replayFrom := l.base
	if l.base > 0 {
		info, jsn, err := l.findPseudoGenesis()
		if err != nil {
			return err
		}
		switch {
		case info != nil:
			if err := l.seedFromSnapshot(info, jsn); err != nil {
				return err
			}
			replayFrom = jsn + 1
		case l.cfg.ApplyOnly:
			// A follower that crashed mid-resync: the journal stream was
			// re-based at the primary's purge point but the pseudo
			// genesis had not replicated yet. Re-enter seeding — the
			// snapshot, when it arrives, covers this verbatim prefix —
			// and skip replay (projections for these records come from
			// the seed, exactly as on the primary).
			l.replica.seeding = true
			// Crashed during the digest fill: the journal stream is still
			// empty at its re-base point and there is nothing to replay.
			replayFrom = l.nextJSN
			if replayFrom < l.base {
				replayFrom = l.base
			}
		default:
			return fmt.Errorf("ledger: purged stream without pseudo genesis")
		}
	}

	if err := l.journals.Iterate(replayFrom, func(jsn uint64, raw []byte) error {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return fmt.Errorf("ledger: journal %d: %w", jsn, err)
		}
		l.replayRecord(rec)
		return nil
	}); err != nil {
		return err
	}

	// Roll an interrupted purge forward: if the purge decision (purge
	// journal + pseudo genesis) is on the durable prefix but the crash
	// hit before truncation/erasure finished, complete it now. The
	// replay above rebuilt payloadRefs over every live record, so the
	// idempotent completePurgeLocked converges on the decided state.
	desc, err := l.pendingPurgeLocked()
	if err != nil {
		return err
	}
	if desc != nil {
		if err := l.completePurgeLocked(desc); err != nil {
			return fmt.Errorf("ledger: roll purge forward: %w", err)
		}
	}
	return nil
}

// clueNamesLocked lists clue names for snapshot building.
func (l *Ledger) clueNamesLocked() []string { return l.clues.Names() }

// findPseudoGenesis scans the live journals for the latest pseudo
// genesis. A nil info with nil error means none exists — fatal for a
// primary recovering a purged stream, expected for a follower reopening
// mid-resync (the caller decides).
func (l *Ledger) findPseudoGenesis() (*PseudoGenesisInfo, uint64, error) {
	var found *PseudoGenesisInfo
	var at uint64
	err := l.journals.Iterate(l.base, func(jsn uint64, raw []byte) error {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return err
		}
		if rec.Type != journal.TypePseudoGenesis {
			return nil
		}
		info, err := DecodePseudoGenesis(rec.Extra)
		if err != nil {
			return err
		}
		found, at = info, jsn
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return found, at, nil
}

// seedFromSnapshot restores clue, state, and membership data covering
// everything up to (and including) the pseudo genesis journal.
func (l *Ledger) seedFromSnapshot(info *PseudoGenesisInfo, pseudoJSN uint64) error {
	type clueSeed struct {
		name string
		jsns []uint64
	}
	seeds := make([]clueSeed, 0, len(info.Clues))
	for name, jsns := range info.Clues {
		seeds = append(seeds, clueSeed{name, jsns})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].name < seeds[j].name })
	for _, s := range seeds {
		for _, jsn := range s.jsns {
			d, err := l.TxHash(jsn)
			if err != nil {
				return err
			}
			l.clues.Insert(s.name, jsn, d)
		}
	}
	for key, v := range info.States {
		l.state = l.state.Put([]byte(key), encodeStateValue(v.JSN, v.Digest))
		l.stateIndex[key] = stateIndexEntry{jsn: v.JSN, digest: v.Digest}
	}
	for pk, first := range info.Members {
		l.firstSeen[pk] = first
	}
	// Payload refs and occult bits for the live records up to the pseudo
	// genesis (the purge and pseudo-genesis journals themselves).
	err := l.journals.Iterate(l.base, func(jsn uint64, raw []byte) error {
		if jsn > pseudoJSN {
			return errStopIterate
		}
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return err
		}
		l.payloadRefs[rec.PayloadDigest]++
		l.replayOccult(rec)
		return nil
	})
	if err == errStopIterate {
		return nil
	}
	return err
}

var errStopIterate = fmt.Errorf("ledger: stop iteration")

// replayRecord applies one live journal during recovery. Journals at or
// before the pseudo genesis are covered by the snapshot seed, so this is
// called only for strictly later records.
func (l *Ledger) replayRecord(rec *journal.Record) {
	if len(rec.Clues) > 0 {
		d := rec.TxHash()
		for _, c := range rec.Clues {
			if prevLast, existed := l.clues.Insert(c, rec.JSN, d); existed && prevLast < l.base {
				// Same resurrection rule as the live path
				// (applyRecordLocked): a fully-purged clue coming back to
				// life changes the committed live set without a name-set
				// version bump. Harmless during a fresh-start recovery
				// (nothing is cached yet); load-bearing for a replication
				// follower, where replay runs against a warm cache.
				l.clueSet.invalidate()
			}
		}
	}
	if len(rec.StateKey) > 0 {
		l.state = l.state.Put(rec.StateKey, encodeStateValue(rec.JSN, rec.PayloadDigest))
		l.stateIndex[string(rec.StateKey)] = stateIndexEntry{jsn: rec.JSN, digest: rec.PayloadDigest}
	}
	if _, ok := l.firstSeen[rec.ClientPK]; !ok {
		l.firstSeen[rec.ClientPK] = rec.JSN
	}
	l.payloadRefs[rec.PayloadDigest]++
	l.replayOccult(rec)
}

// replayOccult re-applies an occult journal's bitmap effect (both the
// single-journal and the clue-level variants).
func (l *Ledger) replayOccult(rec *journal.Record) {
	if rec.Type != journal.TypeOccult {
		return
	}
	if extra, err := DecodeOccultExtra(rec.Extra); err == nil {
		l.occulted[extra.Desc.JSN] = true
		// Async erasures that had not run before the restart go back on
		// the queue; re-erasing an already-deleted blob is a no-op.
		if extra.Desc.Async {
			l.eraseQueue = append(l.eraseQueue, extra.Desc.JSN)
		}
		return
	}
	if extra, err := DecodeOccultClueExtra(rec.Extra); err == nil {
		for _, jsn := range extra.JSNs {
			l.occulted[jsn] = true
			l.eraseQueue = append(l.eraseQueue, jsn)
		}
	}
}
