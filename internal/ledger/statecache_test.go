package ledger

import (
	"testing"

	"ledgerdb/internal/sig"
)

// TestStateCacheSharesSignature: within one commit generation every
// State call returns the same cached object — one signature total. The
// test clock ticks on every read, so a fresh sign would be visible as a
// moving Timestamp.
func TestStateCacheSharesSignature(t *testing.T) {
	e := newEnv(t, nil)
	e.append(t, "doc-1")
	st1, err := e.ledger.State()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st, err := e.ledger.State()
		if err != nil {
			t.Fatal(err)
		}
		if st != st1 {
			t.Fatalf("read %d re-signed the state (timestamp %d vs %d)", i, st.Timestamp, st1.Timestamp)
		}
	}
	if err := st1.Verify(e.lsp.Public()); err != nil {
		t.Fatal(err)
	}
}

// TestStateCacheDisabled: the escape hatch restores per-call signing —
// every read produces a distinct, freshly timestamped state.
func TestStateCacheDisabled(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.DisableStateCache = true })
	e.append(t, "doc-1")
	st1, err := e.ledger.State()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.ledger.State()
	if err != nil {
		t.Fatal(err)
	}
	if st1 == st2 || st2.Timestamp <= st1.Timestamp {
		t.Fatalf("expected per-call signing, got timestamps %d, %d", st1.Timestamp, st2.Timestamp)
	}
	for _, st := range []*SignedState{st1, st2} {
		if err := st.Verify(e.lsp.Public()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStateCacheInvalidatesOnMutations is the tamper-then-prove
// regression: after every kind of mutation the very next proof must be
// built against a freshly signed state reflecting the new roots — a
// stale cached state would make the live fam path fail verification.
func TestStateCacheInvalidatesOnMutations(t *testing.T) {
	e := newEnv(t, nil)
	for i := 0; i < 6; i++ {
		e.append(t, "doc", "K")
	}

	proveLive := func(step string, jsn uint64) *SignedState {
		t.Helper()
		p, err := e.ledger.ProveExistence(jsn, true)
		if err != nil {
			t.Fatalf("%s: prove %d: %v", step, jsn, err)
		}
		if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
			t.Fatalf("%s: stale or wrong state in proof for %d: %v", step, jsn, err)
		}
		if p.State.JSN != e.ledger.Size() {
			t.Fatalf("%s: proof state covers %d journals, ledger has %d", step, p.State.JSN, e.ledger.Size())
		}
		return p.State
	}

	before := proveLive("baseline", 3)

	// Append: new journal, new root.
	r := e.append(t, "appended", "K")
	st := proveLive("append", r.JSN)
	if st == before || st.JournalRoot == before.JournalRoot {
		t.Fatal("append did not invalidate the cached state")
	}

	// Manual block cut: bumps the generation (header roots are now
	// final); the next proof re-signs. One more append first so the cut
	// has pending journals to seal.
	e.append(t, "pending")
	st = proveLive("pre-cut", r.JSN)
	if _, err := e.ledger.CutBlock(); err != nil {
		t.Fatal(err)
	}
	stCut := proveLive("cut", r.JSN)
	if stCut == st {
		t.Fatal("block cut did not invalidate the cached state")
	}

	// Occult: appends an occult journal and flips the bitmap.
	odesc := &OccultDescriptor{URI: "ledger://test", JSN: 2}
	oms := sig.NewMultiSig(odesc.Digest())
	if err := oms.SignWith(e.dba); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ledger.Occult(odesc, oms); err != nil {
		t.Fatal(err)
	}
	stOcc := proveLive("occult", r.JSN)
	if stOcc == stCut || stOcc.JSN != e.ledger.Size() {
		t.Fatal("occult did not invalidate the cached state")
	}
	// The occulted journal itself still proves, digest-only.
	p, err := e.ledger.ProveExistence(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Payload != nil {
		t.Fatal("occulted journal shipped a payload")
	}
	if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
		t.Fatal(err)
	}

	// Purge: truncates the prefix behind a pseudo genesis.
	pdesc := &PurgeDescriptor{URI: "ledger://test", Point: 2, ErasePayloads: true}
	pms := sig.NewMultiSig(pdesc.Digest())
	for _, kp := range []*sig.KeyPair{e.dba, e.client} {
		if err := pms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.ledger.Purge(pdesc, pms); err != nil {
		t.Fatal(err)
	}
	stPurge := proveLive("purge", r.JSN)
	if stPurge == stOcc || stPurge.JSN != e.ledger.Size() {
		t.Fatal("purge did not invalidate the cached state")
	}

	// Reorganize: erases queued payloads; roots do not move, but the
	// generation does (ticking clock ⇒ a fresh signature is visible as
	// a newer timestamp).
	if _, err := e.ledger.Reorganize(); err != nil {
		t.Fatal(err)
	}
	stReorg, err := e.ledger.State()
	if err != nil {
		t.Fatal(err)
	}
	if stReorg == stPurge || stReorg.Timestamp <= stPurge.Timestamp {
		t.Fatal("reorganize did not invalidate the cached state")
	}
}
