package ledger

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/wire"
)

// Native go test -fuzz targets for the four wire formats that cross the
// trust boundary most often: existence proofs, clue lineage bundles,
// receipts, and absence proofs. The deterministic sweeps in
// codecfuzz_test.go enumerate
// every 1-byte truncation and flip of a VALID encoding; the fuzzer
// complements them by mutating far off the valid manifold, where
// structural fields (counts, lengths) take adversarial values.
//
// Invariant per target: the decoder never panics, and when it accepts an
// input, re-encoding is a fixpoint — decode(encode(decode(x))) yields
// the same bytes as encode(decode(x)). (Strict input round-tripping is
// deliberately NOT asserted: verification recomputes digests from the
// decoded content, so a leniently-decoded non-minimal varint is not a
// soundness hole, but an unstable re-encoding would be.)
//
// The checked-in seed corpus lives in testdata/fuzz/<FuzzName>/ — the
// native corpus location — so plain `go test` replays the seeds as
// regression inputs even without -fuzz. Regenerate the valid-proof seeds
// with LEDGERDB_REGEN_FUZZ_CORPUS=1 go test -run TestRegenFuzzCorpus.

// buildFuzzSeeds builds one small ledger and returns valid encodings of
// the four fuzzed formats.
func buildFuzzSeeds(tb testing.TB) (existence, clueBundle, receipt, absence []byte) {
	tb.Helper()
	e := newEnv(tb, nil)
	var rc *journal.Receipt
	for i := 0; i < 5; i++ {
		rc = e.append(tb, fmt.Sprintf("doc-%d", i), "K")
	}
	ep, err := e.ledger.ProveExistence(3, true)
	if err != nil {
		tb.Fatal(err)
	}
	cb, err := e.ledger.ProveClue("K", 0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	ap, err := e.ledger.ProveAbsence("J", false) // between genesis and "K": both neighbors present
	if err != nil {
		tb.Fatal(err)
	}
	w := wire.NewWriter(256)
	rc.Encode(w)
	return ep.EncodeBytes(), cb.EncodeBytes(), w.Bytes(), ap.EncodeBytes()
}

func FuzzDecodeExistenceProof(f *testing.F) {
	seed, _, _, _ := buildFuzzSeeds(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeExistenceProof(data)
		if err != nil {
			return
		}
		enc := p.EncodeBytes()
		p2, err := DecodeExistenceProof(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted proof failed: %v", err)
		}
		if !bytes.Equal(p2.EncodeBytes(), enc) {
			t.Fatal("existence proof encoding is not a fixpoint")
		}
	})
}

func FuzzDecodeClueBundle(f *testing.F) {
	_, seed, _, _ := buildFuzzSeeds(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeClueProofBundle(data)
		if err != nil {
			return
		}
		enc := b.EncodeBytes()
		b2, err := DecodeClueProofBundle(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted bundle failed: %v", err)
		}
		if !bytes.Equal(b2.EncodeBytes(), enc) {
			t.Fatal("clue bundle encoding is not a fixpoint")
		}
	})
}

func FuzzDecodeReceipt(f *testing.F) {
	_, _, seed, _ := buildFuzzSeeds(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		rc, err := journal.DecodeReceipt(r)
		if err != nil {
			return
		}
		w := wire.NewWriter(len(data))
		rc.Encode(w)
		enc := w.Bytes()
		rc2, err := journal.DecodeReceipt(wire.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode of accepted receipt failed: %v", err)
		}
		w2 := wire.NewWriter(len(enc))
		rc2.Encode(w2)
		if !bytes.Equal(w2.Bytes(), enc) {
			t.Fatal("receipt encoding is not a fixpoint")
		}
	})
}

// FuzzDecodeAbsenceProof covers the newest boundary format: the
// authenticated-absence proof, whose neighbor paths and indices take
// adversarial values far off the sorted-commitment manifold.
func FuzzDecodeAbsenceProof(f *testing.F) {
	_, _, _, seed := buildFuzzSeeds(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeAbsenceProof(data)
		if err != nil {
			return
		}
		enc := p.EncodeBytes()
		p2, err := DecodeAbsenceProof(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted proof failed: %v", err)
		}
		if !bytes.Equal(p2.EncodeBytes(), enc) {
			t.Fatal("absence proof encoding is not a fixpoint")
		}
	})
}

// TestRegenFuzzCorpus rewrites the valid-proof seed entries of the
// checked-in corpus. Gated behind an env var because the ECDSA
// signatures inside the encodings are randomized, so every run produces
// different (equally valid) bytes.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("LEDGERDB_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set LEDGERDB_REGEN_FUZZ_CORPUS=1 to rewrite the testdata/fuzz seed corpus")
	}
	existence, clueBundle, receipt, absence := buildFuzzSeeds(t)
	bundle := buildBundleSeed(t)
	for name, data := range map[string][]byte{
		"FuzzDecodeExistenceProof": existence,
		"FuzzDecodeClueBundle":     clueBundle,
		"FuzzDecodeReceipt":        receipt,
		"FuzzDecodeAbsenceProof":   absence,
		"FuzzDecodeProofBundle":    bundle,
	} {
		dir := filepath.Join("testdata", "fuzz", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "valid-proof"), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
		// A truncated-in-half variant seeds the error paths.
		entry = "go test fuzz v1\n[]byte(" + strconv.Quote(string(data[:len(data)/2])) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "truncated-proof"), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
