package ledger

import (
	"fmt"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements offline proof bundles: a self-contained artifact
// proving one journal's existence (and, when the ledger has been
// two-way pegged, its when bound) that verifies with ZERO network
// access — only the pinned LSP public key, and optionally a pinned TSA
// key. A bundle exported before a partition, a purge, or the service's
// disappearance keeps proving the record forever: ubiquitous
// verification taken to its limit, where the verifier needs nothing but
// bytes and keys.

// bundleMagic domain-separates the bundle encoding.
const bundleMagic = "ledgerdb/bundle/v1"

// maxBundleBytes caps each variable-length bundle field at decode time.
const maxBundleBytes = 1 << 26

// ProofBundle is the self-contained artifact. The record's existence
// anchors to State.JournalRoot through Fam. When a time chain is
// present, TimeRecordBytes is a time journal committed after the
// record, TimeFam anchors it to the same State, and TimeProof folds the
// record into the attestation's digest — the fam root over exactly the
// journals preceding the time journal — which a TSA signed at a known
// wall-clock instant. Together they bound the record's commit time from
// above without trusting the LSP's clock (Protocol 3's when factor).
type ProofBundle struct {
	URI         string
	RecordBytes []byte
	Payload     []byte // optional; nil for occulted or digest-only bundles
	Fam         *fam.Proof
	State       *SignedState

	// Optional when-chain (all three present or all three nil).
	TimeRecordBytes []byte
	TimeFam         *fam.Proof
	TimeProof       *fam.Proof
}

// ExportBundle builds an offline bundle for jsn. On a primary it
// anchors to a freshly signed live state; on a follower it anchors to
// the newest primary-signed checkpoint (the record must be covered by
// it). The time chain is attached when a time journal exists between
// the record and the anchoring state; bundles without one still prove
// existence, just not commit-time.
func (l *Ledger) ExportBundle(jsn uint64, withPayload bool) (*ProofBundle, error) {
	l.mu.RLock()
	if jsn >= l.nextJSN {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d of %d", ErrNotFound, jsn, l.nextJSN)
	}
	if jsn < l.base {
		l.mu.RUnlock()
		return nil, fmt.Errorf("%w: jsn %d", ErrPurged, jsn)
	}
	var st *SignedState
	var err error
	if l.cfg.ApplyOnly {
		st, err = l.replicaAnyStateLocked()
		if err == nil && jsn >= st.JSN {
			err = fmt.Errorf("%w: jsn %d not covered by checkpoint at %d", ErrStaleCheckpoint, jsn, st.JSN)
		}
	} else {
		st, err = l.stateLocked()
	}
	if err != nil {
		l.mu.RUnlock()
		return nil, err
	}
	b := &ProofBundle{URI: l.cfg.URI, State: st}
	if b.Fam, err = l.fam.ProveAt(jsn, st.JSN); err != nil {
		l.mu.RUnlock()
		return nil, err
	}
	// The earliest time journal after the record gives the tightest
	// upper bound on its commit time. Scan is bounded by the live
	// prefix; bundles are an export-time operation, not a hot path.
	var timeJSN uint64
	var timeRaw []byte
	scanErr := l.journals.Iterate(jsn+1, func(tj uint64, raw []byte) error {
		if tj >= st.JSN {
			return errStopIterate
		}
		rec, derr := journal.DecodeRecord(raw)
		if derr != nil {
			return derr
		}
		if rec.Type != journal.TypeTime {
			return nil
		}
		timeJSN = tj
		timeRaw = append([]byte(nil), raw...)
		return errStopIterate
	})
	if scanErr != nil && scanErr != errStopIterate {
		l.mu.RUnlock()
		return nil, scanErr
	}
	if timeRaw != nil {
		b.TimeRecordBytes = timeRaw
		if b.TimeFam, err = l.fam.ProveAt(timeJSN, st.JSN); err != nil {
			l.mu.RUnlock()
			return nil, err
		}
		// The attestation's digest is the fam root over [0, timeJSN) —
		// AnchorTimeWith holds the commit lock across the pegging round,
		// so the root at size timeJSN is exactly what the TSA signed.
		if b.TimeProof, err = l.fam.ProveAt(jsn, timeJSN); err != nil {
			l.mu.RUnlock()
			return nil, err
		}
	}
	occ := l.occulted[jsn]
	l.mu.RUnlock()

	raw, err := l.readJournalBytes(jsn)
	if err != nil {
		return nil, err
	}
	b.RecordBytes = raw
	if withPayload && !occ {
		rec, err := journal.DecodeRecord(raw)
		if err != nil {
			return nil, err
		}
		if payload, perr := l.cfg.Blobs.Get(rec.PayloadDigest); perr == nil {
			b.Payload = payload
		}
	}
	return b, nil
}

// VerifyBundle is the pure offline check: no ledger, no network, no
// clock. lsp is the pinned signing key of the ledger (the primary's,
// for bundles exported from a follower — they are the same key).
// tsaKeys optionally pins the acceptable TSA keys; empty means any key
// whose signature verifies (trust-on-export). Returns the decoded
// record and, when a time chain is present, the verified attestation
// whose Timestamp upper-bounds the record's commit time.
func VerifyBundle(b *ProofBundle, lsp sig.PublicKey, tsaKeys []sig.PublicKey) (*journal.Record, *journal.TimeAttestation, error) {
	if b == nil || b.State == nil || b.Fam == nil {
		return nil, nil, fmt.Errorf("%w: incomplete bundle", ErrVerify)
	}
	if b.URI != b.State.URI {
		return nil, nil, fmt.Errorf("%w: bundle for %q carries state of %q", ErrVerify, b.URI, b.State.URI)
	}
	if err := b.State.Verify(lsp); err != nil {
		return nil, nil, err
	}
	rec, err := verifyExistenceItem(b.RecordBytes, b.Payload, b.Fam, nil, b.State.JournalRoot)
	if err != nil {
		return nil, nil, err
	}
	if b.TimeRecordBytes == nil {
		if b.TimeFam != nil || b.TimeProof != nil {
			return nil, nil, fmt.Errorf("%w: time proofs without a time journal", ErrVerify)
		}
		return rec, nil, nil
	}
	if b.TimeFam == nil || b.TimeProof == nil {
		return nil, nil, fmt.Errorf("%w: incomplete time chain", ErrVerify)
	}
	trec, err := verifyExistenceItem(b.TimeRecordBytes, nil, b.TimeFam, nil, b.State.JournalRoot)
	if err != nil {
		return nil, nil, fmt.Errorf("time journal: %w", err)
	}
	if trec.Type != journal.TypeTime {
		return nil, nil, fmt.Errorf("%w: when-chain journal %d is %s, not a time journal", ErrVerify, trec.JSN, trec.Type)
	}
	if rec.JSN >= trec.JSN {
		return nil, nil, fmt.Errorf("%w: time journal %d does not postdate record %d", ErrVerify, trec.JSN, rec.JSN)
	}
	ta, err := journal.DecodeTimeAttestation(trec.Extra)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: attestation: %v", ErrVerify, err)
	}
	if err := ta.Verify(); err != nil {
		return nil, nil, err
	}
	if len(tsaKeys) > 0 {
		ok := false
		for _, pk := range tsaKeys {
			if ta.TSAPK == pk {
				ok = true
				break
			}
		}
		if !ok {
			return nil, nil, fmt.Errorf("%w: attestation signed by unpinned TSA key", ErrVerify)
		}
	}
	// The record folds into the digest the TSA signed, so the record
	// existed when the TSA's clock read ta.Timestamp.
	if b.TimeProof.Index != rec.JSN {
		return nil, nil, fmt.Errorf("%w: when proof is for journal %d, record is %d", ErrVerify, b.TimeProof.Index, rec.JSN)
	}
	if err := fam.Verify(rec.TxHash(), b.TimeProof, ta.Digest); err != nil {
		return nil, nil, fmt.Errorf("%w: when: %v", ErrVerify, err)
	}
	return rec, ta, nil
}

// EncodeBytes serializes the bundle for storage or transport.
func (b *ProofBundle) EncodeBytes() []byte {
	w := wire.NewWriter(4096)
	w.String(bundleMagic)
	w.String(b.URI)
	w.WriteBytes(b.RecordBytes)
	w.WriteBytes(b.Payload)
	b.Fam.Encode(w)
	b.State.Encode(w)
	w.Bool(b.TimeRecordBytes != nil)
	if b.TimeRecordBytes != nil {
		w.WriteBytes(b.TimeRecordBytes)
		b.TimeFam.Encode(w)
		b.TimeProof.Encode(w)
	}
	return w.Bytes()
}

// DecodeProofBundle parses a serialized bundle, enforcing the decoder
// caps and consuming the input exactly. Callers must still VerifyBundle.
func DecodeProofBundle(raw []byte) (*ProofBundle, error) {
	if len(raw) > maxBundleBytes {
		return nil, fmt.Errorf("%w: bundle of %d bytes", ErrVerify, len(raw))
	}
	r := wire.NewReader(raw)
	if magic := r.String(); magic != bundleMagic {
		return nil, fmt.Errorf("%w: bad bundle magic %q", ErrVerify, magic)
	}
	b := &ProofBundle{URI: r.String(), RecordBytes: r.BytesCopy()}
	if payload := r.BytesCopy(); len(payload) > 0 {
		b.Payload = payload
	}
	fp, err := fam.DecodeProof(r)
	if err != nil {
		return nil, err
	}
	b.Fam = fp
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	b.State = st
	hasTime := r.Bool()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if hasTime {
		b.TimeRecordBytes = r.BytesCopy()
		if b.TimeFam, err = fam.DecodeProof(r); err != nil {
			return nil, err
		}
		if b.TimeProof, err = fam.DecodeProof(r); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return b, nil
}
