package ledger

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// TestAnchoredProofsUnderPipelinedAppends races anchored existence
// proofs against pipelined append traffic. The regression it guards:
// proveExistence must take the fam path and the signed state from ONE
// read-lock section — with two separate sections an append can slide in
// between, leaving a path built against an older accumulator paired
// with a newer signed root (or vice versa), and verification fails
// spuriously. Run under -race (scripts/check.sh does) to also certify
// the lock-narrowed read path.
func TestAnchoredProofsUnderPipelinedAppends(t *testing.T) {
	const (
		writers    = 4
		appendsPer = 40
		verifiers  = 3
	)
	// A shallow fractal tree (epochs of 16) so epochs keep sealing —
	// anchors only cover sealed epochs, and the test needs them to grow
	// while the writers run. Same URI as pipeEnv so signedReq applies.
	lsp := sig.GenerateDeterministic("anchored/lsp")
	l, err := Open(Config{
		URI:           "ledger://pipe",
		FractalHeight: 4,
		BlockSize:     16,
		Clock:         func() int64 { return 42 },
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("anchored/dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		PipelineDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Seed a few journals so verifiers have something to prove from the
	// first iteration.
	seedKey := sig.GenerateDeterministic("anchored/seed")
	for n := uint64(1); n <= 4; n++ {
		if _, err := l.Append(signedReq(t, seedKey, 99, n, nil, "seed")); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		verified atomic.Int64
	)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := sig.GenerateDeterministic(fmt.Sprintf("anchored/user%d", g))
			for i := 0; i < appendsPer; i++ {
				req := signedReq(t, key, g, uint64(i+1), nil, fmt.Sprintf("clue-%d", g))
				if _, err := l.Append(req); err != nil {
					t.Errorf("writer %d append %d: %v", g, i, err)
					return
				}
				if i%16 == 0 {
					if _, err := l.CutBlock(); err != nil {
						t.Errorf("writer %d cut: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	var vwg sync.WaitGroup
	for v := 0; v < verifiers; v++ {
		vwg.Add(1)
		go func(v int) {
			defer vwg.Done()
			for i := 0; !done.Load() || i < 8; i++ {
				// A fresh anchor mid-stream: proofs for journals inside
				// it must verify against it no matter how far the
				// ledger has advanced since.
				a := l.Anchor()
				if a == nil || a.Size == 0 {
					continue
				}
				jsn := uint64(v*31+i) % a.Size
				p, err := l.ProveExistenceAnchored(jsn, a, i%2 == 0)
				if err != nil {
					t.Errorf("verifier %d: prove %d under anchor %d: %v", v, jsn, a.Size, err)
					return
				}
				rec, err := VerifyExistenceAnchored(p, lsp.Public(), a)
				if err != nil {
					t.Errorf("verifier %d: verify %d under anchor %d: %v", v, jsn, a.Size, err)
					return
				}
				if rec.JSN != jsn {
					t.Errorf("verifier %d: proof for %d decoded as %d", v, jsn, rec.JSN)
					return
				}
				// Unanchored proofs share the same single-RLock section;
				// exercise them against the live state concurrently.
				if p2, err := l.ProveExistence(jsn, false); err != nil {
					t.Errorf("verifier %d: live prove %d: %v", v, jsn, err)
					return
				} else if _, err := VerifyExistence(p2, lsp.Public()); err != nil {
					t.Errorf("verifier %d: live verify %d: %v", v, jsn, err)
					return
				}
				verified.Add(1)
			}
		}(v)
	}

	wg.Wait()
	done.Store(true)
	vwg.Wait()
	if t.Failed() {
		return
	}
	if verified.Load() < int64(verifiers*8) {
		t.Fatalf("only %d proofs verified during the race", verified.Load())
	}

	// The quiesced ledger still proves everything the anchor covers.
	// The final open epoch (up to 2^FractalHeight journals) is excluded
	// from anchors by design — its root is still moving.
	a := l.Anchor()
	total := uint64(4 + writers*appendsPer)
	if wantSize := total - 16; a.Size < wantSize {
		t.Fatalf("anchor covers %d journals, want >= %d of %d", a.Size, wantSize, total)
	}
	for jsn := uint64(0); jsn < a.Size; jsn += 17 {
		p, err := l.ProveExistenceAnchored(jsn, a, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyExistenceAnchored(p, lsp.Public(), a); err != nil {
			t.Fatalf("jsn %d: %v", jsn, err)
		}
	}
}
