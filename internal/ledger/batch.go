package ledger

import (
	"fmt"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements batched ingestion — the write path behind the
// LedgerDB throughput headline (§II-C: "its system throughput is
// significantly higher (exceeding 300,000 TPS)"). Two costs dominate a
// single Append: the client's π_c verification and the LSP's π_s
// signature. A batch verifies all request signatures in parallel outside
// the commit lock, commits the batch under one lock acquisition, and
// signs ONE receipt covering every journal in the batch.

// BatchReceipt is the LSP's signed acknowledgement of a contiguous batch
// of journals: the jsn range plus a digest binding every tx-hash in
// order. Any member holding it can later prove what the LSP committed
// to for any journal in the range (given the batch's tx-hash list).
type BatchReceipt struct {
	FirstJSN  uint64
	Count     uint64
	BatchHash hashutil.Digest // Concat of the batch's tx-hashes, in order
	Timestamp int64
	LSPPK     sig.PublicKey
	LSPSig    sig.Signature
}

// BatchDigest computes the digest a batch receipt commits to.
func BatchDigest(txHashes []hashutil.Digest) hashutil.Digest {
	return hashutil.Concat(txHashes...)
}

func (br *BatchReceipt) signedDigest() hashutil.Digest {
	w := wire.GetWriter()
	w.String("ledgerdb/batch-receipt/v1")
	w.Uvarint(br.FirstJSN)
	w.Uvarint(br.Count)
	w.Digest(br.BatchHash)
	w.Int64(br.Timestamp)
	sig.EncodePublicKey(w, br.LSPPK)
	d := hashutil.Sum(w.Bytes())
	wire.PutWriter(w)
	return d
}

func (br *BatchReceipt) sign(kp *sig.KeyPair) error {
	br.LSPPK = kp.Public()
	s, err := kp.Sign(br.signedDigest())
	if err != nil {
		return err
	}
	br.LSPSig = s
	return nil
}

// Verify checks π_s on the batch receipt and, when txHashes is non-nil,
// that they reproduce the committed batch hash.
func (br *BatchReceipt) Verify(lsp sig.PublicKey, txHashes []hashutil.Digest) error {
	if br.LSPPK != lsp {
		return fmt.Errorf("%w: batch receipt signed by %s, want %s", journal.ErrBadSignature, br.LSPPK, lsp)
	}
	if err := sig.Verify(br.LSPPK, br.signedDigest(), br.LSPSig); err != nil {
		return fmt.Errorf("%w: batch π_s: %v", journal.ErrBadSignature, err)
	}
	if txHashes != nil {
		if uint64(len(txHashes)) != br.Count {
			return fmt.Errorf("%w: %d tx-hashes for batch of %d", journal.ErrBadSignature, len(txHashes), br.Count)
		}
		if BatchDigest(txHashes) != br.BatchHash {
			return fmt.Errorf("%w: batch hash mismatch", journal.ErrBadSignature)
		}
	}
	return nil
}

// AppendBatch validates and commits a batch of normal journals. Request
// signatures (π_c plus co-signatures) are verified in parallel across
// CPUs before the commit lock is taken; the whole batch then commits
// under one lock acquisition, and one signed BatchReceipt covers it.
// All-or-nothing: any invalid request rejects the entire batch before
// anything is committed.
func (l *Ledger) AppendBatch(reqs []*journal.Request) (*BatchReceipt, []hashutil.Digest, error) {
	if err := l.writable(); err != nil {
		return nil, nil, err
	}
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", journal.ErrBadRequest)
	}
	if l.comm != nil {
		// Pipelined mode: stage 1 fans admission (checks, digesting,
		// blob writes) across CPUs, then the whole batch rides the
		// pipeline as one unit and the caller signs the batch receipt.
		adms, err := l.admitBatch(reqs)
		if err != nil {
			return nil, nil, err
		}
		unit, err := l.sequence(adms, true)
		if err != nil {
			return nil, nil, err
		}
		<-unit.done
		if unit.err != nil {
			return nil, nil, unit.err
		}
		if err := unit.br.sign(l.cfg.LSP); err != nil {
			return nil, nil, err
		}
		return unit.br, unit.txHashes, nil
	}
	// Synchronous mode: the historical two-phase path.
	// Phase 1: validation, parallel and lock-free.
	if err := l.validateBatch(reqs); err != nil {
		return nil, nil, err
	}
	// Phase 2: commit under one lock acquisition.
	l.lockExclusive()
	defer l.unlockExclusive()
	txHashes := make([]hashutil.Digest, 0, len(reqs))
	first := l.nextJSN
	ts := l.cfg.Clock()
	for _, req := range reqs {
		adm, err := l.admitChecked(req, nil, req.Hash())
		if err != nil {
			return nil, nil, err
		}
		rec := buildRecord(&adm, l.nextJSN, ts)
		txHash := rec.TxHash()
		if err := l.applyRecordLocked(rec, txHash); err != nil {
			return nil, nil, err
		}
		txHashes = append(txHashes, txHash)
	}
	br := &BatchReceipt{
		FirstJSN:  first,
		Count:     uint64(len(reqs)),
		BatchHash: BatchDigest(txHashes),
		Timestamp: ts,
	}
	if err := br.sign(l.cfg.LSP); err != nil {
		return nil, nil, err
	}
	return br, txHashes, nil
}

// validateBatch runs structural checks and signature verification for
// every request, fanned out across CPUs (π_c verification is the
// dominant per-journal cost).
func (l *Ledger) validateBatch(reqs []*journal.Request) error {
	return forEachChunk(reqs, func(_ int, part []*journal.Request) error {
		for _, req := range part {
			if err := l.validateOne(req); err != nil {
				return err
			}
		}
		return nil
	})
}

func (l *Ledger) validateOne(req *journal.Request) error {
	if err := req.ValidateShape(); err != nil {
		return err
	}
	// One request-hash computation covers π_c and every co-signature
	// (Validate followed by VerifyAllSigs used to verify π_c twice and
	// hash the request three times).
	if err := req.VerifyAllSigsAt(req.Hash()); err != nil {
		return err
	}
	if req.LedgerURI != l.cfg.URI {
		return fmt.Errorf("%w: request for %q on ledger %q", journal.ErrBadRequest, req.LedgerURI, l.cfg.URI)
	}
	if req.Type != journal.TypeNormal {
		return fmt.Errorf("%w: batches carry only normal journals (got %s)", ErrNotPermitted, req.Type)
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(req.ClientPK, ca.RoleUser); err != nil {
			return fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	return nil
}
