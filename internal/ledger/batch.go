package ledger

import (
	"fmt"
	"runtime"
	"sync"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements batched ingestion — the write path behind the
// LedgerDB throughput headline (§II-C: "its system throughput is
// significantly higher (exceeding 300,000 TPS)"). Two costs dominate a
// single Append: the client's π_c verification and the LSP's π_s
// signature. A batch verifies all request signatures in parallel outside
// the commit lock, commits the batch under one lock acquisition, and
// signs ONE receipt covering every journal in the batch.

// BatchReceipt is the LSP's signed acknowledgement of a contiguous batch
// of journals: the jsn range plus a digest binding every tx-hash in
// order. Any member holding it can later prove what the LSP committed
// to for any journal in the range (given the batch's tx-hash list).
type BatchReceipt struct {
	FirstJSN  uint64
	Count     uint64
	BatchHash hashutil.Digest // Concat of the batch's tx-hashes, in order
	Timestamp int64
	LSPPK     sig.PublicKey
	LSPSig    sig.Signature
}

// BatchDigest computes the digest a batch receipt commits to.
func BatchDigest(txHashes []hashutil.Digest) hashutil.Digest {
	return hashutil.Concat(txHashes...)
}

func (br *BatchReceipt) signedDigest() hashutil.Digest {
	w := wire.NewWriter(128)
	w.String("ledgerdb/batch-receipt/v1")
	w.Uvarint(br.FirstJSN)
	w.Uvarint(br.Count)
	w.Digest(br.BatchHash)
	w.Int64(br.Timestamp)
	sig.EncodePublicKey(w, br.LSPPK)
	return hashutil.Sum(w.Bytes())
}

func (br *BatchReceipt) sign(kp *sig.KeyPair) error {
	br.LSPPK = kp.Public()
	s, err := kp.Sign(br.signedDigest())
	if err != nil {
		return err
	}
	br.LSPSig = s
	return nil
}

// Verify checks π_s on the batch receipt and, when txHashes is non-nil,
// that they reproduce the committed batch hash.
func (br *BatchReceipt) Verify(lsp sig.PublicKey, txHashes []hashutil.Digest) error {
	if br.LSPPK != lsp {
		return fmt.Errorf("%w: batch receipt signed by %s, want %s", journal.ErrBadSignature, br.LSPPK, lsp)
	}
	if err := sig.Verify(br.LSPPK, br.signedDigest(), br.LSPSig); err != nil {
		return fmt.Errorf("%w: batch π_s: %v", journal.ErrBadSignature, err)
	}
	if txHashes != nil {
		if uint64(len(txHashes)) != br.Count {
			return fmt.Errorf("%w: %d tx-hashes for batch of %d", journal.ErrBadSignature, len(txHashes), br.Count)
		}
		if BatchDigest(txHashes) != br.BatchHash {
			return fmt.Errorf("%w: batch hash mismatch", journal.ErrBadSignature)
		}
	}
	return nil
}

// AppendBatch validates and commits a batch of normal journals. Request
// signatures (π_c plus co-signatures) are verified in parallel across
// CPUs before the commit lock is taken; the whole batch then commits
// under one lock acquisition, and one signed BatchReceipt covers it.
// All-or-nothing: any invalid request rejects the entire batch before
// anything is committed.
func (l *Ledger) AppendBatch(reqs []*journal.Request) (*BatchReceipt, []hashutil.Digest, error) {
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", journal.ErrBadRequest)
	}
	// Phase 1: validation, parallel and lock-free.
	if err := l.validateBatch(reqs); err != nil {
		return nil, nil, err
	}
	// Phase 2: commit under one lock acquisition.
	l.mu.Lock()
	defer l.mu.Unlock()
	txHashes := make([]hashutil.Digest, 0, len(reqs))
	first := l.nextJSN
	ts := l.cfg.Clock()
	for _, req := range reqs {
		rec := &journal.Record{
			JSN:           l.nextJSN,
			Type:          req.Type,
			Timestamp:     ts,
			RequestHash:   req.Hash(),
			PayloadDigest: hashutil.Sum(req.Payload),
			PayloadSize:   uint64(len(req.Payload)),
			Clues:         req.Clues,
			StateKey:      req.StateKey,
			ClientPK:      req.ClientPK,
			ClientSig:     req.ClientSig,
			CoSigners:     req.CoSigners,
		}
		txHash := rec.TxHash()
		if err := l.cfg.Blobs.Put(rec.PayloadDigest, req.Payload); err != nil {
			return nil, nil, fmt.Errorf("ledger: store payload: %w", err)
		}
		l.payloadRefs[rec.PayloadDigest]++
		if _, err := l.journals.Append(rec.EncodeBytes()); err != nil {
			return nil, nil, err
		}
		if _, err := l.digests.Append(txHash[:]); err != nil {
			return nil, nil, err
		}
		l.fam.Append(txHash)
		for _, c := range rec.Clues {
			l.clues.Insert(c, rec.JSN, txHash)
		}
		if len(rec.StateKey) > 0 {
			l.state = l.state.Put(rec.StateKey, encodeStateValue(rec.JSN, rec.PayloadDigest))
			l.stateIndex[string(rec.StateKey)] = stateIndexEntry{jsn: rec.JSN, digest: rec.PayloadDigest}
		}
		if _, ok := l.firstSeen[rec.ClientPK]; !ok {
			l.firstSeen[rec.ClientPK] = rec.JSN
		}
		l.nextJSN++
		l.pendingCount++
		if l.pendingCount >= uint64(l.cfg.BlockSize) {
			if err := l.cutBlockLocked(); err != nil {
				return nil, nil, err
			}
		}
		txHashes = append(txHashes, txHash)
	}
	br := &BatchReceipt{
		FirstJSN:  first,
		Count:     uint64(len(reqs)),
		BatchHash: BatchDigest(txHashes),
		Timestamp: ts,
	}
	if err := br.sign(l.cfg.LSP); err != nil {
		return nil, nil, err
	}
	return br, txHashes, nil
}

// validateBatch runs structural checks and signature verification for
// every request, fanned out across CPUs (π_c verification is the
// dominant per-journal cost).
func (l *Ledger) validateBatch(reqs []*journal.Request) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (len(reqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []*journal.Request) {
			defer wg.Done()
			for _, req := range part {
				if err := l.validateOne(req); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(reqs[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func (l *Ledger) validateOne(req *journal.Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if err := req.VerifyAllSigs(); err != nil {
		return err
	}
	if req.LedgerURI != l.cfg.URI {
		return fmt.Errorf("%w: request for %q on ledger %q", journal.ErrBadRequest, req.LedgerURI, l.cfg.URI)
	}
	if req.Type != journal.TypeNormal {
		return fmt.Errorf("%w: batches carry only normal journals (got %s)", ErrNotPermitted, req.Type)
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(req.ClientPK, ca.RoleUser); err != nil {
			return fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	return nil
}
