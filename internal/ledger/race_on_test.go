//go:build race

package ledger

// raceEnabled reports whether the race detector is active. Race
// instrumentation changes allocation behavior (sync.Pool intentionally
// drops items to widen the race window), so strict allocs/op == 0
// assertions are meaningless under -race and skip themselves.
const raceEnabled = true
