package ledger

// This file implements the staged commit pipeline (DESIGN.md §"Staged
// commit pipeline"). The serial write path does everything — π_c
// verification, payload hashing, blob I/O, fam/CM-Tree/MPT updates,
// receipt signing — under one global lock, so added cores buy nothing
// (the anti-pattern Fig. 7 of the paper measures against). With
// Config.PipelineDepth > 0 the write path splits into three stages:
//
//	Stage 1 — admission (lock-free, concurrent): structural checks,
//	  signature verification, role checks, request/payload digesting,
//	  and the idempotent blob write all happen on the caller's
//	  goroutine before any lock.
//	Stage 2 — sequencing (short critical section): seqMu orders dense
//	  jsn and commit-timestamp assignment and queue submission.
//	Stage 3 — group commit (single committer goroutine): queued units
//	  drain in groups; each group applies journal/digest stream writes
//	  and fam, clue-index, and world-state updates under ONE
//	  acquisition of the apply lock, then gets ONE π_s signature over
//	  the group's jsn-dense tx-hash run — receipt signing amortizes
//	  across the group instead of costing one ECDSA sign per journal.
//
// The bounded queue provides backpressure: when the committer falls
// behind, sequencing blocks, stalling admission rather than growing
// memory. Close drains every sequenced unit and flushes the streams.

import (
	"fmt"
	"runtime"
	"sync"

	"ledgerdb/internal/ca"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/streamfs"
)

// admitted is the output of stage 1: a fully validated request with
// every digest the commit needs already computed and its payload
// already in blob storage. Nothing in it depends on ledger state, so
// admission runs lock-free and concurrently.
type admitted struct {
	req           *journal.Request
	reqHash       hashutil.Digest
	payloadDigest hashutil.Digest
	extra         []byte
}

// commitUnit is one sequenced submission flowing from stage 2 to stage
// 3: a single journal or a whole batch. The committer fills receipt /
// batch-receipt fields and err, then closes done. Single-journal
// receipts come back group-signed by the committer; batch receipts are
// signed by the submitting goroutine (one signature per batch already).
type commitUnit struct {
	recs     []*journal.Record
	txHashes []hashutil.Digest
	batch    bool

	receipt *journal.Receipt // single-journal unit; group-signed by the committer
	br      *BatchReceipt    // batch unit; unsigned until the caller signs
	err     error
	done    chan struct{}
}

// committer is stage 3's state: one goroutine draining sequenced units.
type committer struct {
	queue   chan *commitUnit
	wg      sync.WaitGroup // in-flight units; Add under seqMu, Done after apply
	stopped chan struct{}  // closed when the committer goroutine exits
	closed  bool           // guarded by Ledger.seqMu
}

// maxGroupRecords bounds how many records one apply-lock acquisition
// commits, so a deep queue cannot starve readers for arbitrarily long.
const maxGroupRecords = 1024

// buildRecord turns an admitted request into the record for jsn at
// commit timestamp ts.
func buildRecord(adm *admitted, jsn uint64, ts int64) *journal.Record {
	return &journal.Record{
		JSN:           jsn,
		Type:          adm.req.Type,
		Timestamp:     ts,
		RequestHash:   adm.reqHash,
		PayloadDigest: adm.payloadDigest,
		PayloadSize:   uint64(len(adm.req.Payload)),
		Clues:         adm.req.Clues,
		StateKey:      adm.req.StateKey,
		ClientPK:      adm.req.ClientPK,
		ClientSig:     adm.req.ClientSig,
		CoSigners:     adm.req.CoSigners,
		Extra:         adm.extra,
	}
}

// admitChecked is the tail of stage 1, shared with the serial path:
// digest the payload and store the payload blob. reqHash is the
// request-hash the caller already computed for signature verification —
// the hot path hashes each request exactly once. The request must
// already have passed validation.
func (l *Ledger) admitChecked(req *journal.Request, extra []byte, reqHash hashutil.Digest) (admitted, error) {
	// A journal-stream record carries the payload digest, not the
	// payload, so only oversized metadata can overflow a stream record.
	// Reject here: a sequenced jsn that failed to append would leave a
	// hole in the dense jsn space and poison the pipeline.
	meta := len(extra) + len(req.StateKey) + len(req.CoSigners)*256 + 512
	for _, c := range req.Clues {
		meta += len(c) + 16
	}
	if meta > streamfs.MaxRecordSize {
		return admitted{}, fmt.Errorf("%w: record metadata of ~%d bytes exceeds stream record capacity", journal.ErrBadRequest, meta)
	}
	adm := admitted{
		req:           req,
		reqHash:       reqHash,
		payloadDigest: hashutil.Sum(req.Payload),
		extra:         extra,
	}
	if err := l.cfg.Blobs.Put(adm.payloadDigest, req.Payload); err != nil {
		return admitted{}, fmt.Errorf("ledger: store payload: %w", err)
	}
	return adm, nil
}

// admitOne is stage 1 for one client request: every structural,
// signature, and role check — each run exactly once — plus digesting
// and the idempotent blob write, all before any lock.
func (l *Ledger) admitOne(req *journal.Request, batch bool) (admitted, error) {
	if err := req.ValidateShape(); err != nil {
		return admitted{}, err
	}
	h := req.Hash()
	if err := l.verifyAdmission(req, h); err != nil {
		return admitted{}, err
	}
	if req.LedgerURI != l.cfg.URI {
		return admitted{}, fmt.Errorf("%w: request for %q on ledger %q", journal.ErrBadRequest, req.LedgerURI, l.cfg.URI)
	}
	if req.Type != journal.TypeNormal {
		if batch {
			return admitted{}, fmt.Errorf("%w: batches carry only normal journals (got %s)", ErrNotPermitted, req.Type)
		}
		return admitted{}, fmt.Errorf("%w: clients may only append normal journals (got %s)", ErrNotPermitted, req.Type)
	}
	if l.cfg.Registry != nil {
		if err := l.cfg.Registry.Check(req.ClientPK, ca.RoleUser); err != nil {
			return admitted{}, fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	return l.admitChecked(req, nil, h)
}

// admitBatch is stage 1 for a batch, fanned out across CPUs (π_c
// verification dominates, but payload digesting and blob writes
// parallelize too). All-or-nothing: any invalid request rejects the
// batch; blobs already written for its siblings are harmless (idempotent
// content-addressed puts, unreferenced until commit).
func (l *Ledger) admitBatch(reqs []*journal.Request) ([]admitted, error) {
	adms := make([]admitted, len(reqs))
	err := forEachChunk(reqs, func(lo int, part []*journal.Request) error {
		for j, req := range part {
			adm, err := l.admitOne(req, true)
			if err != nil {
				return err
			}
			adms[lo+j] = adm
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return adms, nil
}

// sequence is stage 2: under the sequencer lock it assigns dense jsns
// and commit timestamps, fixes each record's tx-hash, and enqueues the
// unit. The send happens while seqMu is held so queue order equals jsn
// order; when the bounded queue is full the send blocks, which is the
// backpressure stalling admission rather than the apply path.
func (l *Ledger) sequence(adms []admitted, batch bool) (*commitUnit, error) {
	unit := &commitUnit{
		recs:     make([]*journal.Record, len(adms)),
		txHashes: make([]hashutil.Digest, len(adms)),
		batch:    batch,
		done:     make(chan struct{}),
	}
	l.seqMu.Lock()
	if l.comm.closed {
		l.seqMu.Unlock()
		return nil, ErrClosed
	}
	var ts int64
	if batch {
		ts = l.cfg.Clock() // one commit timestamp per batch, as in the serial path
	}
	for i := range adms {
		t := ts
		if !batch {
			t = l.cfg.Clock()
		}
		rec := buildRecord(&adms[i], l.seqNext, t)
		l.seqNext++
		unit.recs[i] = rec
		unit.txHashes[i] = rec.TxHash()
	}
	l.comm.wg.Add(1)
	l.comm.queue <- unit
	l.seqMu.Unlock()
	return unit, nil
}

// runCommitter is the stage 3 goroutine: block for one unit, then
// greedily drain whatever else is already queued (bounded by
// maxGroupRecords) and apply the group under one lock acquisition.
// Between drain passes it yields the processor once or twice — the
// group-commit window — so submitters that are mid-admission can reach
// the sequencer and join the group, which is what lets the per-group
// π_s signature amortize.
func (l *Ledger) runCommitter() {
	c := l.comm
	defer close(c.stopped)
	// The group slice is reused across iterations: applyGroup retains
	// nothing from it (receipts copy what they need), so only the
	// backing array's capacity carries over.
	var group []*commitUnit
	for {
		u, ok := <-c.queue
		if !ok {
			return
		}
		group = append(group[:0], u)
		n := len(u.recs)
		drain := func() bool { // false once the queue is closed
			for n < maxGroupRecords {
				select {
				case u2, ok2 := <-c.queue:
					if !ok2 {
						return false
					}
					group = append(group, u2)
					n += len(u2.recs)
				default:
					return true
				}
			}
			return true
		}
		open := drain()
		for spins := 0; open && spins < 3 && n < maxGroupRecords; spins++ {
			runtime.Gosched()
			open = drain()
		}
		l.applyGroup(group)
	}
}

// applyGroup commits a group of sequenced units under one acquisition
// of the apply lock, signs the group receipt outside it, then wakes
// every submitter. Receipt fields are fixed inside the lock (block
// height depends on cut timing); π_s is one signature per group.
func (l *Ledger) applyGroup(group []*commitUnit) {
	l.mu.Lock()
	l.syncDeferred = true
	for _, u := range group {
		u.err = l.applyUnitLocked(u)
	}
	l.syncDeferred = false
	// One coalesced fsync pass for every commit point the group crossed.
	// If it fails, every unit in the group is failed: their records may
	// not be durable, so no receipt can be released (the submitter sees
	// an ambiguous error, same as a crashed serial commit point).
	if err := l.flushDeferredSyncLocked(); err != nil {
		for _, u := range group {
			if u.err == nil {
				u.err = err
			}
		}
	}
	l.mu.Unlock()
	l.signGroup(group)
	for _, u := range group {
		close(u.done)
		l.comm.wg.Done()
	}
}

// signGroup stamps ONE π_s over the group's jsn-dense tx-hash run and
// shares it across every single-journal receipt in the group. Batch
// units carry their own BatchReceipt (signed by the submitter — one
// signature per batch already), but their tx-hashes still anchor the
// group digest so the jsn arithmetic in Receipt.Verify holds. Only the
// error-free prefix of units is covered: the first apply failure
// latches every unit after it, so that prefix is exactly what
// committed.
func (l *Ledger) signGroup(group []*commitUnit) {
	// Size the group digest run up front: receipts retain the hashes
	// slice for their lifetime, so it must be exactly one fresh
	// allocation per group — never pooled, never regrown.
	total, nSingles := 0, 0
	for _, u := range group {
		if u.err != nil {
			break
		}
		total += len(u.txHashes)
		if !u.batch {
			nSingles++
		}
	}
	if nSingles == 0 {
		return
	}
	hashes := make([]hashutil.Digest, 0, total)
	singles := make([]*commitUnit, 0, nSingles)
	for _, u := range group {
		if u.err != nil {
			break
		}
		hashes = append(hashes, u.txHashes...)
		if !u.batch {
			singles = append(singles, u)
		}
	}
	if len(singles) == 0 {
		return
	}
	firstJSN := group[0].recs[0].JSN
	var signed *journal.Receipt
	for _, u := range singles {
		rc := u.receipt
		rc.GroupHashes = hashes
		rc.GroupIndex = rc.JSN - firstJSN
		if signed == nil {
			if err := rc.Sign(l.cfg.LSP); err != nil {
				// Entropy failure: nothing usable to share — fail the
				// whole group's singles (their journals committed, but
				// the LSP cannot acknowledge them).
				for _, s := range singles {
					s.err = fmt.Errorf("ledger: sign receipt: %w", err)
				}
				return
			}
			signed = rc
		} else {
			// Same group digest by construction: same hashes, same
			// derived first jsn, same LSP key.
			rc.LSPPK = signed.LSPPK
			rc.LSPSig = signed.LSPSig
		}
	}
}

func (l *Ledger) applyUnitLocked(u *commitUnit) error {
	for i, rec := range u.recs {
		if err := l.applyRecordLocked(rec, u.txHashes[i]); err != nil {
			return err
		}
	}
	if u.batch {
		first := u.recs[0]
		u.br = &BatchReceipt{
			FirstJSN:  first.JSN,
			Count:     uint64(len(u.recs)),
			BatchHash: BatchDigest(u.txHashes),
			Timestamp: first.Timestamp,
		}
		return nil
	}
	u.receipt = l.receiptLocked(u.recs[0], u.txHashes[0])
	return nil
}

// appendPipelined runs stages 2–3 for one admitted request and blocks
// until its journal commits; the receipt arrives group-signed by the
// committer.
func (l *Ledger) appendPipelined(adm admitted) (*journal.Receipt, error) {
	unit, err := l.sequence([]admitted{adm}, false)
	if err != nil {
		return nil, err
	}
	<-unit.done
	if unit.err != nil {
		return nil, unit.err
	}
	return unit.receipt, nil
}

// lockExclusive acquires the whole write path: it stops the sequencer,
// waits for every in-flight unit to commit, and takes the apply lock.
// Privileged writes (mutations, time anchoring, manual block cuts) run
// under it so they observe — and extend — fully committed state with a
// dense jsn space.
func (l *Ledger) lockExclusive() {
	l.seqMu.Lock()
	if l.comm != nil {
		// No new units can be sequenced while seqMu is held, so this
		// waits on a fixed set.
		l.comm.wg.Wait()
	}
	l.mu.Lock()
}

// unlockExclusive releases the write path, first re-synchronizing the
// sequencer's jsn counter with whatever the exclusive section appended.
func (l *Ledger) unlockExclusive() {
	l.seqNext = l.nextJSN
	l.mu.Unlock()
	l.seqMu.Unlock()
}

// Close shuts the write path down. In pipelined mode it stops admitting
// new writes (further Append/AppendBatch calls fail with ErrClosed),
// drains every sequenced unit through the committer, and stops the
// committer goroutine. In both modes it then flushes the ledger
// streams. Reads and proofs keep working after Close.
func (l *Ledger) Close() error {
	if l.comm != nil {
		l.seqMu.Lock()
		already := l.comm.closed
		l.comm.closed = true
		l.seqMu.Unlock()
		if !already {
			close(l.comm.queue)
		}
		<-l.comm.stopped
	}
	if l.verif != nil {
		// After the committer: in-flight admissions either finished
		// verification already or fall back to inline verify and then
		// fail at sequencing with ErrClosed.
		l.verif.close()
	}
	for _, s := range []streamfs.Stream{l.journals, l.digests, l.blocks, l.survival} {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// forEachChunk fans f out over contiguous chunks of reqs, one worker
// per CPU, and returns the first error any worker hit.
func forEachChunk(reqs []*journal.Request, f func(lo int, part []*journal.Request) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (len(reqs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo int, part []*journal.Request) {
			defer wg.Done()
			if err := f(lo, part); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(lo, reqs[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
