package ledger

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ledgerdb/internal/sig"
)

// Randomized-operation property: any interleaving of appends (with and
// without clues and co-signers), block cuts, occults, and a purge leaves
// the ledger in a state where
//
//  1. every live journal still passes client-side existence verification,
//  2. every clue still passes server-side lineage verification, and
//  3. the engine recovers to identical roots after a restart.
//
// This is the engine-level tamper-free invariant the unit tests check
// piecewise; here a generator drives it across operation orders.
func TestQuickRandomOperationSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEnv(t, func(c *Config) { c.FractalHeight = 2; c.BlockSize = 3 })
		co := sig.GenerateDeterministic("prop/co")
		var occultable []uint64
		purged := false

		steps := 10 + rng.Intn(25)
		for i := 0; i < steps; i++ {
			switch op := rng.Intn(10); {
			case op < 6: // append
				req := e.request(t, fmt.Sprintf("doc-%d-%d", seed, i))
				if rng.Intn(2) == 0 {
					req.Clues = []string{fmt.Sprintf("clue-%d", rng.Intn(3))}
				}
				if rng.Intn(3) == 0 {
					if err := req.CoSign(co); err != nil {
						return false
					}
				}
				if err := req.Sign(e.client); err != nil {
					return false
				}
				// Re-co-sign after the primary signature changed the hash.
				req.CoSigners = nil
				if rng.Intn(3) == 0 {
					if err := req.CoSign(co); err != nil {
						return false
					}
				}
				r, err := e.ledger.Append(req)
				if err != nil {
					return false
				}
				occultable = append(occultable, r.JSN)
			case op < 7: // cut a block
				if _, err := e.ledger.CutBlock(); err != nil && e.ledger.Size() > 0 {
					// Cutting with nothing pending after a fresh cut is fine.
					continue
				}
			case op < 9: // occult a random earlier journal
				if len(occultable) == 0 {
					continue
				}
				jsn := occultable[rng.Intn(len(occultable))]
				if jsn < e.ledger.Base() {
					continue
				}
				desc := &OccultDescriptor{URI: "ledger://test", JSN: jsn, Async: rng.Intn(2) == 0}
				ms := sig.NewMultiSig(desc.Digest())
				if err := ms.SignWith(e.dba); err != nil {
					return false
				}
				if _, err := e.ledger.Occult(desc, ms); err != nil {
					// Double occult attempts are expected to fail.
					continue
				}
			case op < 10: // one purge per run
				if purged || e.ledger.Size() < 4 {
					continue
				}
				point := 1 + uint64(rng.Intn(int(e.ledger.Size()-1)))
				if point <= e.ledger.Base() {
					continue
				}
				desc := &PurgeDescriptor{URI: "ledger://test", Point: point, ErasePayloads: true}
				ms := sig.NewMultiSig(desc.Digest())
				if err := ms.SignWith(e.dba); err != nil {
					return false
				}
				if err := ms.SignWith(e.client); err != nil {
					return false
				}
				if _, err := e.ledger.Purge(desc, ms); err != nil {
					continue
				}
				purged = true
			}
		}
		e.ledger.Reorganize()

		// Invariant 1: every live journal verifies client-side.
		for jsn := e.ledger.Base(); jsn < e.ledger.Size(); jsn++ {
			p, err := e.ledger.ProveExistence(jsn, false)
			if err != nil {
				return false
			}
			if _, err := VerifyExistence(p, e.lsp.Public()); err != nil {
				return false
			}
		}
		// Invariant 2: every used clue verifies server-side.
		for c := 0; c < 3; c++ {
			clue := fmt.Sprintf("clue-%d", c)
			err := e.ledger.VerifyClueServer(clue)
			if err != nil && !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		// Invariant 3: recovery reproduces the roots.
		before, err := e.ledger.State()
		if err != nil {
			return false
		}
		l2, err := Open(e.cfg)
		if err != nil {
			return false
		}
		after, err := l2.State()
		if err != nil {
			return false
		}
		return before.JournalRoot == after.JournalRoot &&
			before.ClueRoot == after.ClueRoot &&
			before.StateRoot == after.StateRoot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
