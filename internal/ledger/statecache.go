package ledger

import (
	"sync"

	"ledgerdb/internal/cmtree"
	"ledgerdb/internal/sig"
)

// stateCache amortizes SignedState signatures across concurrent proof
// requests. The engine bumps a commit generation counter on every
// mutation applied under the write lock (append, block cut, purge,
// occult, time anchor); a cached state signed at generation g stays
// valid for every read at generation g, so a burst of proof requests
// between two commits shares ONE signature instead of paying one sign
// per call. The cache has its own mutex (acquired after l.mu in lock
// order, never the reverse), which doubles as a single-flight gate:
// concurrent misses at the same generation serialize on it, the first
// signs, the rest return the freshly cached state.
type stateCache struct {
	mu  sync.Mutex
	gen uint64       // generation st was signed at
	st  *SignedState // nil until the first sign
}

// get returns the cached state when it was signed at exactly gen.
func (c *stateCache) get(gen uint64) *SignedState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st != nil && c.gen == gen {
		return c.st
	}
	return nil
}

// clueSetCache memoizes the sorted clue-set (absence) commitment. Key
// is (clue name-set version, purge base), NOT stateGen: the committed
// name set only changes when a brand-new clue appears or a purge moves
// the pseudo-genesis, so the O(clues) rebuild is amortized across every
// append to existing clues. The one transition that key misses is a
// RESURRECTION — a clue whose whole lineage was purged (last jsn below
// base) receiving a fresh append: no new name, same base, but the live
// set grows. The apply path detects it from Insert's previous-last-jsn
// and calls invalidate. Like stateCache, it has its own mutex (after
// l.mu in lock order) doubling as a single-flight gate — safe to
// consult from stateLocked under a read lock, where ledger fields may
// not be mutated. Callers hold l.mu, so (version, base) cannot move
// between the key read and the rebuild.
type clueSetCache struct {
	mu      sync.Mutex
	version uint64
	base    uint64
	tree    *cmtree.AbsenceTree
}

// invalidate drops the cached commitment; the next get rebuilds from
// the current live set. Called under l.mu (write) when a purged clue
// comes back to life.
func (c *clueSetCache) invalidate() {
	c.mu.Lock()
	c.tree = nil
	c.mu.Unlock()
}

// get returns the commitment for the tree's current name set filtered
// to jsns at or above base, rebuilding on key change.
func (c *clueSetCache) get(t *cmtree.Tree, base uint64) *cmtree.AbsenceTree {
	version := t.Version()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tree != nil && c.version == version && c.base == base {
		return c.tree
	}
	tree := cmtree.BuildAbsenceTree(t.LiveNames(base))
	c.version, c.base, c.tree = version, base, tree
	return tree
}

// signAndStore signs skel for generation gen, unless a racing caller
// already cached that generation, and retains the newest generation
// seen. skel is taken by value: the cached state is immutable from the
// moment it is published.
func (c *stateCache) signAndStore(gen uint64, skel SignedState, lsp *sig.KeyPair) (*SignedState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st != nil && c.gen == gen {
		return c.st, nil
	}
	if err := skel.sign(lsp); err != nil {
		return nil, err
	}
	if c.st == nil || gen >= c.gen {
		c.gen, c.st = gen, &skel
	}
	return &skel, nil
}
