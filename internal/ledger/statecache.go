package ledger

import (
	"sync"

	"ledgerdb/internal/sig"
)

// stateCache amortizes SignedState signatures across concurrent proof
// requests. The engine bumps a commit generation counter on every
// mutation applied under the write lock (append, block cut, purge,
// occult, time anchor); a cached state signed at generation g stays
// valid for every read at generation g, so a burst of proof requests
// between two commits shares ONE signature instead of paying one sign
// per call. The cache has its own mutex (acquired after l.mu in lock
// order, never the reverse), which doubles as a single-flight gate:
// concurrent misses at the same generation serialize on it, the first
// signs, the rest return the freshly cached state.
type stateCache struct {
	mu  sync.Mutex
	gen uint64       // generation st was signed at
	st  *SignedState // nil until the first sign
}

// get returns the cached state when it was signed at exactly gen.
func (c *stateCache) get(gen uint64) *SignedState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st != nil && c.gen == gen {
		return c.st
	}
	return nil
}

// signAndStore signs skel for generation gen, unless a racing caller
// already cached that generation, and retains the newest generation
// seen. skel is taken by value: the cached state is immutable from the
// moment it is published.
func (c *stateCache) signAndStore(gen uint64, skel SignedState, lsp *sig.KeyPair) (*SignedState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.st != nil && c.gen == gen {
		return c.st, nil
	}
	if err := skel.sign(lsp); err != nil {
		return nil, err
	}
	if c.st == nil || gen >= c.gen {
		c.gen, c.st = gen, &skel
	}
	return &skel, nil
}
