package ledger

import (
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// This file implements batched existence proofs: N journals proven
// against ONE shared SignedState. The LSP signature — the dominant cost
// of a single proof — is paid once per batch (and, with the state
// cache, once per commit generation), while each journal keeps its own
// fam path. Client-side, VerifyExistenceBatch checks the state
// signature once and then folds every record through its path.

// MaxProofBatch bounds the journals per batched proof request, both at
// the prover (request validation) and the decoder (hostile input).
const MaxProofBatch = 1024

// ExistenceItem is one journal's share of a batched proof: the raw
// record, its optional payload, and its fam path. The shared signed
// state lives on the enclosing batch.
type ExistenceItem struct {
	RecordBytes []byte
	Payload     []byte // nil for occulted journals or digest-only proofs
	Fam         *fam.Proof
}

// ExistenceProofBatch carries N existence proofs anchored to one signed
// state.
type ExistenceProofBatch struct {
	Items []ExistenceItem
	State *SignedState
}

// ProveExistenceBatch builds existence proofs for every jsn in one
// read-lock section, so all fam paths and the shared signed state
// describe the same commit generation. Like ProveExistence, the lock
// covers only in-memory snapshotting; journal-stream and blob reads run
// after it is dropped.
func (l *Ledger) ProveExistenceBatch(jsns []uint64, withPayload bool) (*ExistenceProofBatch, error) {
	if len(jsns) == 0 {
		return nil, fmt.Errorf("%w: empty proof batch", journal.ErrBadRequest)
	}
	if len(jsns) > MaxProofBatch {
		return nil, fmt.Errorf("%w: proof batch of %d exceeds %d", journal.ErrBadRequest, len(jsns), MaxProofBatch)
	}
	l.mu.RLock()
	// Followers prove against the newest primary-signed checkpoint (the
	// same historical-proof path as proveExistence); primaries prove
	// against the live frontier and sign it.
	var st *SignedState
	var stErr error
	size := l.nextJSN
	if l.cfg.ApplyOnly {
		if st, stErr = l.replicaAnyStateLocked(); stErr != nil {
			l.mu.RUnlock()
			return nil, stErr
		}
		size = st.JSN
	}
	fps := make([]*fam.Proof, len(jsns))
	occ := make([]bool, len(jsns))
	for i, jsn := range jsns {
		if jsn >= size {
			l.mu.RUnlock()
			if jsn < l.nextJSN {
				return nil, fmt.Errorf("%w: jsn %d not covered by checkpoint at %d", ErrStaleCheckpoint, jsn, size)
			}
			return nil, fmt.Errorf("%w: jsn %d of %d", ErrNotFound, jsn, size)
		}
		if jsn < l.base {
			l.mu.RUnlock()
			return nil, fmt.Errorf("%w: jsn %d", ErrPurged, jsn)
		}
		fp, err := l.fam.ProveAt(jsn, size)
		if err != nil {
			l.mu.RUnlock()
			return nil, err
		}
		fps[i] = fp
		occ[i] = l.occulted[jsn]
	}
	if st == nil {
		st, stErr = l.stateLocked()
	}
	l.mu.RUnlock()
	if stErr != nil {
		return nil, stErr
	}
	b := &ExistenceProofBatch{Items: make([]ExistenceItem, len(jsns)), State: st}
	for i, jsn := range jsns {
		raw, err := l.readJournalBytes(jsn)
		if err != nil {
			return nil, err
		}
		b.Items[i] = ExistenceItem{RecordBytes: raw, Fam: fps[i]}
		if withPayload && !occ[i] {
			rec, err := journal.DecodeRecord(raw)
			if err != nil {
				return nil, err
			}
			if payload, err := l.cfg.Blobs.Get(rec.PayloadDigest); err == nil {
				b.Items[i].Payload = payload
			}
		}
	}
	return b, nil
}

// VerifyExistenceBatch is the client-side check of a batched proof: one
// LSP signature verification over the shared state, then per journal
// the same what/who checks as VerifyExistence. Returns the decoded
// records in batch order.
func VerifyExistenceBatch(b *ExistenceProofBatch, lsp sig.PublicKey) ([]*journal.Record, error) {
	if b == nil || b.State == nil {
		return nil, fmt.Errorf("%w: incomplete proof batch", ErrVerify)
	}
	if err := b.State.Verify(lsp); err != nil {
		return nil, err
	}
	recs := make([]*journal.Record, 0, len(b.Items))
	for i := range b.Items {
		it := &b.Items[i]
		rec, err := verifyExistenceItem(it.RecordBytes, it.Payload, it.Fam, nil, b.State.JournalRoot)
		if err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// verifyExistenceItem runs the per-journal half of existence
// verification (everything except the state signature, which the caller
// has already checked): decode, fold the tx-hash through the fam path
// to root, re-verify client signatures, and match any shipped payload
// against the recorded digest.
func verifyExistenceItem(recordBytes, payload []byte, fp *fam.Proof, a *fam.Anchor, root hashutil.Digest) (*journal.Record, error) {
	if fp == nil {
		return nil, fmt.Errorf("%w: incomplete proof", ErrVerify)
	}
	rec, err := journal.DecodeRecord(recordBytes)
	if err != nil {
		return nil, err
	}
	// The fam fold below binds the record's content; this binds the
	// path's claimed position, which fam.Verify treats as metadata.
	if fp.Index != rec.JSN {
		return nil, fmt.Errorf("%w: fam proof is for journal %d, record is %d", ErrVerify, fp.Index, rec.JSN)
	}
	txHash := rec.TxHash()
	if a != nil {
		err = fam.VerifyAnchored(txHash, fp, a, root)
	} else {
		err = fam.Verify(txHash, fp, root)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: what: %v", ErrVerify, err)
	}
	if err := journal.VerifyRecordSigs(rec); err != nil {
		return nil, fmt.Errorf("%w: who: %v", ErrVerify, err)
	}
	if payload != nil {
		if hashutil.Sum(payload) != rec.PayloadDigest {
			return nil, fmt.Errorf("%w: payload does not match recorded digest", ErrVerify)
		}
	}
	return rec, nil
}

// EncodeBytes serializes a batched proof for transport.
func (b *ExistenceProofBatch) EncodeBytes() []byte {
	w := wire.NewWriter(4096)
	w.Uvarint(uint64(len(b.Items)))
	for i := range b.Items {
		w.WriteBytes(b.Items[i].RecordBytes)
		w.WriteBytes(b.Items[i].Payload)
		b.Items[i].Fam.Encode(w)
	}
	b.State.Encode(w)
	return w.Bytes()
}

// DecodeExistenceProofBatch parses a transported batched proof.
func DecodeExistenceProofBatch(raw []byte) (*ExistenceProofBatch, error) {
	r := wire.NewReader(raw)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n == 0 || n > MaxProofBatch {
		return nil, fmt.Errorf("%w: %d proof items", ErrVerify, n)
	}
	b := &ExistenceProofBatch{Items: make([]ExistenceItem, n)}
	for i := uint64(0); i < n; i++ {
		b.Items[i].RecordBytes = r.BytesCopy()
		if payload := r.BytesCopy(); len(payload) > 0 {
			b.Items[i].Payload = payload
		}
		fp, err := fam.DecodeProof(r)
		if err != nil {
			return nil, err
		}
		b.Items[i].Fam = fp
	}
	st, err := DecodeSignedState(r)
	if err != nil {
		return nil, err
	}
	b.State = st
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return b, nil
}
