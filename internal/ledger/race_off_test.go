//go:build !race

package ledger

// See race_on_test.go.
const raceEnabled = false
