package chaostest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"ledgerdb/internal/client"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/netchaos"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

// stack is one full deployment: ledger + T-Ledger + TSA behind a
// hardened HTTP server, reached by a hardened client whose transport
// runs through a netchaos fault proxy.
type stack struct {
	t     *testing.T
	repro string
	cfg   ledger.Config
	l     *ledger.Ledger
	srv   *server.Server
	hts   *httptest.Server
	proxy *netchaos.Proxy
	cli   *client.Client
}

func (s *stack) fatalf(format string, args ...any) {
	s.t.Helper()
	s.t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), s.repro)
}

func newStack(t *testing.T, repro string, pipelineDepth int) *stack {
	t.Helper()
	clock := logicalclock.New(500_000)
	lsp := sig.GenerateDeterministic("chaos-lsp")
	tl, err := tledger.New(tledger.Config{
		Clock:     clock.Now,
		Tolerance: 1_000,
		TSA:       tsa.NewPool(tsa.New("chaos-tsa", tsa.Options{Clock: clock.Now})),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ledger.Config{
		URI:           "ledger://chaos",
		FractalHeight: 4,
		BlockSize:     8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("chaos-dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock.Tick,
		PipelineDepth: pipelineDepth,
	}
	l, err := ledger.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWithOptions(l, tl, server.Options{
		MaxInFlight:    32,
		RequestTimeout: 5 * time.Second,
	})
	hts := httptest.NewServer(srv)
	t.Cleanup(hts.Close)
	proxy := netchaos.NewProxy(http.DefaultTransport)
	return &stack{
		t:     t,
		repro: repro,
		cfg:   cfg,
		l:     l,
		srv:   srv,
		hts:   hts,
		proxy: proxy,
		cli: &client.Client{
			BaseURL: hts.URL,
			HTTP:    &http.Client{Transport: proxy},
			Key:     sig.GenerateDeterministic("chaos-client"),
			LSP:     lsp.Public(),
			URI:     "ledger://chaos",
			Retries: 6,
			// Millisecond-scale waits keep 500 torture iterations fast;
			// the Retry-After regression covers realistic hints.
			RetryBackoff: time.Millisecond,
			MaxBackoff:   20 * time.Millisecond,
			Timeout:      10 * time.Second,
		},
	}
}

// accepted is one journal the client holds a verified receipt for.
type accepted struct {
	jsn     uint64
	txHash  hashutil.Digest
	payload []byte
}

// run executes one client op under chaos, asserting that it terminates
// within the deadline budget and that any failure has a classified
// shape.
func (s *stack) run(op string, fn func() error) {
	s.t.Helper()
	start := time.Now()
	err := fn()
	if elapsed := time.Since(start); elapsed > s.cli.Timeout+5*time.Second {
		s.fatalf("%s: call blocked %v, budget %v", op, elapsed, s.cli.Timeout)
	}
	if err != nil {
		s.classify(op, err)
	}
}

// classify checks that a chaos-afflicted failure is one of the shapes
// the client contract promises: a tamper rejection carrying evidence, a
// classified HTTP/transport failure, a fast-failed open circuit, or the
// caller's own deadline. Anything else is an invariant violation.
func (s *stack) classify(op string, err error) {
	s.t.Helper()
	var te *client.TamperError
	if errors.As(err, &te) {
		ev := te.Evidence
		if ev == nil || ev.Method == "" || ev.Path == "" || ev.Check == "" {
			s.fatalf("%s: tamper error without usable evidence: %v", op, err)
		}
		return
	}
	switch {
	case errors.Is(err, client.ErrHTTP),
		errors.Is(err, client.ErrCircuitOpen),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return
	}
	s.fatalf("%s: unclassified failure: %v", op, err)
}

func runIteration(t *testing.T, seed int64, iter int) {
	rng := rand.New(rand.NewSource(seed + int64(iter)*1_000_003))
	repro := fmt.Sprintf("repro: CHAOSTEST_SEED=%d CHAOSTEST_ITER=%d go test -run TestNetworkChaosTorture ./internal/integration/chaostest", seed, iter)
	s := newStack(t, repro, 0)
	s.proxy.ArmSchedule(netchaos.RandomSchedule(rng, 96))

	var committed []accepted
	doc := 0
	newPayload := func() []byte {
		doc++
		return []byte(fmt.Sprintf("doc-%d-%d", iter, doc))
	}

	for op := 0; op < 24; op++ {
		switch rng.Intn(8) {
		case 0, 1, 2: // single append, idempotency-keyed
			p := newPayload()
			s.run("append", func() error {
				r, err := s.cli.Append(p, "chaos")
				if err != nil {
					return err
				}
				committed = append(committed, accepted{jsn: r.JSN, txHash: r.TxHash, payload: p})
				return nil
			})
		case 3: // batch append, one idempotency key for the group
			payloads := make([][]byte, 2+rng.Intn(3))
			for i := range payloads {
				payloads[i] = newPayload()
			}
			s.run("append-batch", func() error {
				br, txs, err := s.cli.AppendBatch(payloads, nil)
				if err != nil {
					return err
				}
				for i := uint64(0); i < br.Count; i++ {
					committed = append(committed, accepted{jsn: br.FirstJSN + i, txHash: txs[i], payload: payloads[i]})
				}
				return nil
			})
		case 4: // existence proof for a journal we hold a receipt for
			if len(committed) == 0 {
				continue
			}
			ar := committed[rng.Intn(len(committed))]
			s.run("verify-existence", func() error {
				rec, payload, err := s.cli.VerifyExistence(ar.jsn, true)
				if err != nil {
					return err
				}
				if rec.TxHash() != ar.txHash {
					s.fatalf("verify-existence(%d): proof verified but differs from receipt", ar.jsn)
				}
				if !bytes.Equal(payload, ar.payload) {
					s.fatalf("verify-existence(%d): wrong payload", ar.jsn)
				}
				return nil
			})
		case 5:
			s.run("state", func() error {
				_, err := s.cli.State()
				return err
			})
		case 6: // raw journal read, sometimes past the end (a clean 404)
			jsn := uint64(rng.Int63n(int64(s.l.Size()) + 2))
			s.run("get-journal", func() error {
				_, err := s.cli.GetJournal(jsn)
				return err
			})
		case 7:
			if rng.Intn(2) == 0 {
				s.run("clue-jsns", func() error {
					_, err := s.cli.ClueJSNs("chaos")
					return err
				})
			} else {
				// Non-idempotent POST: never transport-retried, so its
				// failures exercise the fail-fast path.
				s.run("anchor-time", func() error {
					_, err := s.cli.AnchorTime()
					return err
				})
			}
		}
	}

	// Chaos over: the surviving state must be fully intact.
	s.proxy.Clear()

	// (a) Every receipt the client accepted verifies, payload included,
	// through both the single and the batched proof APIs.
	jsns := make([]uint64, 0, len(committed))
	for _, ar := range committed {
		jsns = append(jsns, ar.jsn)
		rec, payload, err := s.cli.VerifyExistence(ar.jsn, true)
		if err != nil {
			s.fatalf("post-chaos verify(%d): %v", ar.jsn, err)
		}
		if rec.TxHash() != ar.txHash {
			s.fatalf("post-chaos verify(%d): record differs from accepted receipt", ar.jsn)
		}
		if !bytes.Equal(payload, ar.payload) {
			s.fatalf("post-chaos verify(%d): wrong payload", ar.jsn)
		}
	}
	if len(jsns) > 0 {
		recs, _, err := s.cli.VerifyExistenceBatch(jsns, false)
		if err != nil {
			s.fatalf("post-chaos batch verify: %v", err)
		}
		for i, rec := range recs {
			if rec.TxHash() != committed[i].txHash {
				s.fatalf("post-chaos batch verify: record %d differs from receipt", jsns[i])
			}
		}
	}

	// (b) The live signed state still verifies against the pinned key.
	if _, err := s.cli.State(); err != nil {
		s.fatalf("post-chaos state: %v", err)
	}

	// (c) No double-appends: however many times chaos made the client or
	// a middlebox resubmit, each signed request committed at most once.
	seen := make(map[hashutil.Digest]uint64, s.l.Size())
	for jsn := uint64(0); jsn < s.l.Size(); jsn++ {
		rec, err := s.l.GetJournal(jsn)
		if err != nil {
			s.fatalf("journal scan %d: %v", jsn, err)
		}
		if rec.Type != journal.TypeNormal {
			continue
		}
		if prev, dup := seen[rec.RequestHash]; dup {
			s.fatalf("double-append: journals %d and %d carry the same request hash", prev, jsn)
		}
		seen[rec.RequestHash] = jsn
	}
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// TestNetworkChaosTorture runs randomized fault schedules (500 by
// default, CHAOSTEST_ITERS overrides) against the full client/server
// stack. CHAOSTEST_SEED pins the PRNG, CHAOSTEST_ITER replays one
// failing iteration from a repro line.
func TestNetworkChaosTorture(t *testing.T) {
	seed := int64(envInt("CHAOSTEST_SEED", 0xC4A05))
	if s := os.Getenv("CHAOSTEST_ITER"); s != "" {
		iter, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CHAOSTEST_ITER %q", s)
		}
		runIteration(t, seed, iter)
		return
	}
	iters := envInt("CHAOSTEST_ITERS", 500)
	if testing.Short() {
		iters = 60
	}
	const shards = 8
	perShard := (iters + shards - 1) / shards
	for s := 0; s < shards; s++ {
		first, last := s*perShard, (s+1)*perShard
		if last > iters {
			last = iters
		}
		if first >= last {
			break
		}
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := first; i < last; i++ {
				runIteration(t, seed, i)
			}
		})
	}
}
