package chaostest

// Deterministic regressions for the network fault model, each pinning
// one end-to-end behavior the torture loop exercises probabilistically:
//
//   - TestAmbiguousLossRetriesExactlyOnce: a response lost after the
//     server committed is resubmitted under the same idempotency key and
//     dedups to a single journal.
//   - TestMiddleboxDuplicateCommitsOnce: a duplicated request (proxy
//     replay) commits once; the replayed response is byte-identical.
//   - TestCorruptReceiptSurfacesEvidenceWithoutRetry: a byte-flipped
//     receipt is rejected with TamperEvidence and never retried away.
//   - TestSlowLorisBoundedByDeadline: a response body dribbled at 10s
//     per byte cannot hold a call past its Timeout.
//   - TestRetryAfterHonoredEndToEnd: a 503 carrying Retry-After: 1
//     delays the retry by about a second instead of the millisecond
//     backoff.
//   - TestDrainLosesNoCommittedGroup: draining the server and closing a
//     pipelined ledger preserves every receipted journal across reopen.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ledgerdb/internal/client"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/netchaos"
)

const noRepro = "deterministic regression (no repro seed)"

func TestAmbiguousLossRetriesExactlyOnce(t *testing.T) {
	s := newStack(t, noRepro, 0)
	s.proxy.Arm(netchaos.Fault{Kind: netchaos.KindDropResponse, N: 1})
	before := s.l.Size()
	r, err := s.cli.Append([]byte("ambiguous-loss"), "reg")
	if err != nil {
		t.Fatalf("append through a lost response: %v", err)
	}
	if st := s.proxy.Stats(); st.Requests != 2 {
		t.Fatalf("proxy saw %d requests, want 2 (original + one resubmission)", st.Requests)
	}
	if got := s.l.Size(); got != before+1 {
		t.Fatalf("ledger grew by %d journals, want exactly 1", got-before)
	}
	rec, _, err := s.cli.VerifyExistence(r.JSN, false)
	if err != nil {
		t.Fatalf("verify replayed receipt: %v", err)
	}
	if rec.TxHash() != r.TxHash {
		t.Fatal("replayed receipt does not match the committed journal")
	}
}

func TestMiddleboxDuplicateCommitsOnce(t *testing.T) {
	s := newStack(t, noRepro, 0)
	s.proxy.Arm(netchaos.Fault{Kind: netchaos.KindDuplicate, N: 1})
	before := s.l.Size()
	r, err := s.cli.Append([]byte("middlebox-replay"), "reg")
	if err != nil {
		t.Fatalf("append through a duplicating middlebox: %v", err)
	}
	if st := s.proxy.Stats(); st.Fired[netchaos.KindDuplicate] != 1 {
		t.Fatal("duplicate fault did not fire")
	}
	if got := s.l.Size(); got != before+1 {
		t.Fatalf("ledger grew by %d journals, want exactly 1 despite double delivery", got-before)
	}
	if _, _, err := s.cli.VerifyExistence(r.JSN, false); err != nil {
		t.Fatalf("verify after duplicate delivery: %v", err)
	}
}

func TestCorruptReceiptSurfacesEvidenceWithoutRetry(t *testing.T) {
	s := newStack(t, noRepro, 0)
	// XOR 0x01 keeps the mutated byte printable, so the envelope still
	// parses and the flip is caught by the receipt checks, not by JSON.
	s.proxy.Arm(netchaos.Fault{Kind: netchaos.KindCorrupt, N: 1, Arg: 7, XOR: 0x01})
	before := s.l.Size()
	_, err := s.cli.Append([]byte("to-be-corrupted"), "reg")
	var te *client.TamperError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TamperError", err)
	}
	ev := te.Evidence
	if ev.Method != "POST" || ev.Path != "/v1/append" || ev.Check == "" {
		t.Fatalf("incomplete evidence: %+v", ev)
	}
	if len(ev.RequestBody) == 0 || len(ev.ResponseBody) == 0 {
		t.Fatal("evidence must carry the signed request and the raw tampered response")
	}
	if ev.Status != http.StatusOK {
		t.Fatalf("evidence status = %d, want 200 (tampering hid behind success)", ev.Status)
	}
	// A forged response is never retried: a lucky second attempt must
	// not paper over the evidence.
	if st := s.proxy.Stats(); st.Requests != 1 {
		t.Fatalf("proxy saw %d requests, want 1 (tamper is non-retryable)", st.Requests)
	}
	// The server did commit — tampering happened on the wire after the
	// fact — and the journal itself must remain sound.
	if got := s.l.Size(); got != before+1 {
		t.Fatalf("ledger grew by %d journals, want 1", got-before)
	}
	s.proxy.Clear()
	if _, err := s.cli.State(); err != nil {
		t.Fatalf("state after tampered exchange: %v", err)
	}
}

func TestSlowLorisBoundedByDeadline(t *testing.T) {
	s := newStack(t, noRepro, 0)
	r, err := s.cli.Append([]byte("slow-loris-target"), "reg")
	if err != nil {
		t.Fatal(err)
	}
	// The seed append consumed ordinal 1; stall the verify that follows.
	s.proxy.Arm(netchaos.Fault{Kind: netchaos.KindSlowBody, N: 2, Arg: 1, Dur: 10 * time.Second})
	c := s.cli.Clone()
	c.Timeout = 150 * time.Millisecond
	start := time.Now()
	_, _, err = c.VerifyExistence(r.JSN, true)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow-loris body held the call %v past a 150ms budget", elapsed)
	}
}

func TestRetryAfterHonoredEndToEnd(t *testing.T) {
	s := newStack(t, noRepro, 0)
	s.proxy.Arm(netchaos.Fault{Kind: netchaos.KindBurst5xx, N: 1, Arg: 1, Dur: time.Second})
	c := s.cli.Clone()
	c.MaxBackoff = 30 * time.Second // don't clamp the advertised hint
	start := time.Now()
	if _, err := c.State(); err != nil {
		t.Fatalf("state after advertised 503: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond {
		t.Fatalf("recovered in %v: Retry-After: 1 was not honored", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("recovery took %v, want about 1s", elapsed)
	}
}

func TestDrainLosesNoCommittedGroup(t *testing.T) {
	s := newStack(t, noRepro, 8) // staged commit pipeline, depth 8
	var receipts []*journal.Receipt
	for i := 0; i < 20; i++ {
		r, err := s.cli.Append([]byte(fmt.Sprintf("drain-%d", i)), "drain")
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		receipts = append(receipts, r)
	}
	resp, err := http.Get(s.hts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(s.hts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if _, err := s.cli.Append([]byte("late"), "drain"); err == nil {
		t.Fatal("append accepted during drain")
	}

	// Closing the ledger commits every admitted pipeline group; a reopen
	// from the same store must still hold every receipted journal.
	if err := s.l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := ledger.Open(s.cfg)
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	for _, r := range receipts {
		rec, err := l2.GetJournal(r.JSN)
		if err != nil {
			t.Fatalf("journal %d lost across drain: %v", r.JSN, err)
		}
		if rec.TxHash() != r.TxHash {
			t.Fatalf("journal %d differs from its receipt after drain", r.JSN)
		}
	}
}
