package chaostest

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"ledgerdb/internal/client"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/netchaos"
	"ledgerdb/internal/replica"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

// replicated is a primary/follower pair with a netchaos proxy on the
// follower's pull path: the only wire that can be cut is the
// replication wire, which is exactly what a network partition between
// data centers looks like to a read replica.
type replicated struct {
	t     *testing.T
	repro string

	primary *ledger.Ledger
	lsp     *sig.KeyPair
	cliKey  *sig.KeyPair
	nonce   uint64

	follower *ledger.Ledger
	puller   *replica.Puller
	proxy    *netchaos.Proxy
	fcli     *client.Client // reads against the follower's own server
	cancel   context.CancelFunc
	done     chan struct{}
}

func (r *replicated) fatalf(format string, args ...any) {
	r.t.Helper()
	r.t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), r.repro)
}

func newReplicated(t *testing.T, repro string) *replicated {
	t.Helper()
	const uri = "ledger://partition"
	r := &replicated{
		t:      t,
		repro:  repro,
		lsp:    sig.GenerateDeterministic("partition-lsp"),
		cliKey: sig.GenerateDeterministic("partition-client"),
	}
	dba := sig.GenerateDeterministic("partition-dba").Public()
	clock := logicalclock.New(500_000)
	var err error
	r.primary, err = ledger.Open(ledger.Config{
		URI:           uri,
		FractalHeight: 4,
		BlockSize:     8,
		Clock:         clock.Tick,
		LSP:           r.lsp,
		DBA:           dba,
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.primary.Close() })
	psrv := httptest.NewServer(server.New(r.primary, nil))
	t.Cleanup(psrv.Close)

	r.follower, err = ledger.Open(ledger.Config{
		URI:           uri,
		FractalHeight: 4,
		BlockSize:     8,
		Clock:         clock.Tick,
		ApplyOnly:     true,
		PrimaryLSP:    r.lsp.Public(),
		DBA:           dba,
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.follower.Close() })

	// The pull path: hardened client over the chaos proxy. Tight retry
	// budget — the puller has its own jittered backoff loop above it.
	r.proxy = netchaos.NewProxy(http.DefaultTransport)
	pullCli := &client.Client{
		BaseURL:      psrv.URL,
		HTTP:         &http.Client{Transport: r.proxy},
		Key:          sig.GenerateDeterministic("partition-puller"),
		LSP:          r.lsp.Public(),
		URI:          uri,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		Timeout:      5 * time.Second,
	}
	r.puller, err = replica.New(replica.Config{
		Source:       replica.ClientSource(pullCli),
		Ledger:       r.follower,
		Interval:     time.Millisecond,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		Batch:        16,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The follower's own read surface, with a fault-free client pinned
	// to the PRIMARY's LSP key — replica reads carry primary-signed
	// proofs or they carry nothing.
	fsrv := httptest.NewServer(server.New(r.follower, nil))
	t.Cleanup(fsrv.Close)
	r.fcli = &client.Client{
		BaseURL: fsrv.URL,
		Key:     r.cliKey,
		LSP:     r.lsp.Public(),
		URI:     uri,
		Timeout: 5 * time.Second,
	}

	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		r.puller.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-r.done
	})
	return r
}

// append commits one signed journal directly on the primary.
func (r *replicated) append(payload string) *journal.Receipt {
	r.t.Helper()
	r.nonce++
	req := &journal.Request{
		LedgerURI: "ledger://partition",
		Type:      journal.TypeNormal,
		Clues:     []string{"partition"},
		Payload:   []byte(payload),
		Nonce:     r.nonce,
	}
	if err := req.Sign(r.cliKey); err != nil {
		r.t.Fatal(err)
	}
	rcpt, err := r.primary.Append(req)
	if err != nil {
		r.t.Fatal(err)
	}
	return rcpt
}

// waitConverged blocks until the follower is level with the primary's
// current frontier (size, checkpoint, and base), or the deadline hits.
func (r *replicated) waitConverged() {
	r.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := r.puller.Status()
		if st.CaughtUp &&
			r.follower.Size() >= r.primary.Size() &&
			st.CheckpointJSN >= r.primary.Size() &&
			r.follower.Base() >= r.primary.Base() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	r.fatalf("follower never converged: primary %d/%d, status %+v",
		r.primary.Size(), r.primary.Base(), r.puller.Status())
}

// cut partitions the replication wire: every pull from now on is
// answered 503 locally by the proxy, never reaching the primary.
func (r *replicated) cut() {
	r.proxy.Arm(netchaos.Fault{
		Kind: netchaos.KindBurst5xx,
		N:    r.proxy.Stats().Requests + 1,
		Arg:  1 << 30,
	})
}

// heal reconnects it.
func (r *replicated) heal() { r.proxy.Clear() }

// waitDegraded blocks until the puller has noticed the partition.
func (r *replicated) waitDegraded() {
	r.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if r.puller.Status().Degraded {
			return
		}
		time.Sleep(time.Millisecond)
	}
	r.fatalf("puller never reported Degraded after the cut")
}

// TestPartitionTolerantReads drives seeded partition/heal cycles against
// a replicating pair and checks the CAP posture the design promises:
// the cut-off follower keeps serving verifiable (stale) reads and
// honestly reports its staleness; after the heal it converges to the
// primary's exact frontier; and no append the primary accepted is ever
// missing from the converged follower.
func TestPartitionTolerantReads(t *testing.T) {
	seed := int64(envInt("CHAOSTEST_SEED", 0xC4A05))
	repro := fmt.Sprintf("repro: CHAOSTEST_SEED=%d go test -run TestPartitionTolerantReads ./internal/integration/chaostest", seed)
	rng := rand.New(rand.NewSource(seed))
	r := newReplicated(t, repro)

	var receipts []*journal.Receipt
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			receipts = append(receipts, r.append(fmt.Sprintf("doc-%d", len(receipts))))
		}
	}

	appendN(8 + rng.Intn(8))
	r.waitConverged()

	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	for cycle := 0; cycle < cycles; cycle++ {
		// Remember what the follower can prove before the cut.
		provable := r.puller.Status().CheckpointJSN

		r.cut()
		r.waitDegraded()

		// The primary moves on; the follower cannot see it.
		appendN(4 + rng.Intn(10))

		// (a) Every journal under the follower's checkpoint still serves
		// a proof that verifies against the pinned primary LSP key —
		// through the follower's own HTTP surface, while partitioned.
		for probe := 0; probe < 3; probe++ {
			jsn := uint64(rng.Int63n(int64(provable)))
			rec, _, err := r.fcli.VerifyExistence(jsn, false)
			if err != nil {
				r.fatalf("cycle %d: partitioned read of jsn %d: %v", cycle, jsn, err)
			}
			if rec.JSN != jsn {
				r.fatalf("cycle %d: partitioned read of jsn %d returned %d", cycle, jsn, rec.JSN)
			}
		}

		// (b) The staleness is honest: the health watermark stays at the
		// checkpoint, visibly behind the primary's frontier.
		_, jsn, watermark, err := r.fcli.Health()
		if err != nil {
			r.fatalf("cycle %d: follower health: %v", cycle, err)
		}
		if watermark != provable {
			r.fatalf("cycle %d: watermark %d, checkpoint before cut %d", cycle, watermark, provable)
		}
		if primarySize := r.primary.Size(); watermark >= primarySize {
			r.fatalf("cycle %d: watermark %d not behind primary %d", cycle, watermark, primarySize)
		}
		if jsn < watermark {
			r.fatalf("cycle %d: applied %d below watermark %d", cycle, jsn, watermark)
		}

		// (c) Reads past the frontier fail cleanly, they do not lie.
		if _, _, err := r.fcli.VerifyExistence(r.primary.Size()-1, false); err == nil {
			r.fatalf("cycle %d: partitioned follower served a journal it cannot have", cycle)
		}

		r.heal()
		r.waitConverged()

		// (d) Converged means converged: same frontier, same fam root
		// behind both signed states.
		pst, err := r.primary.State()
		if err != nil {
			r.fatalf("cycle %d: primary state: %v", cycle, err)
		}
		fst, err := r.follower.State()
		if err != nil {
			r.fatalf("cycle %d: follower state: %v", cycle, err)
		}
		if fst.JSN != pst.JSN || fst.JournalRoot != pst.JournalRoot {
			r.fatalf("cycle %d: diverged: follower %d/%s, primary %d/%s",
				cycle, fst.JSN, fst.JournalRoot.Short(), pst.JSN, pst.JournalRoot.Short())
		}
	}

	// (e) No receipt lost: every append the primary ever acknowledged
	// verifies against the converged follower.
	for _, rcpt := range receipts {
		rec, _, err := r.fcli.VerifyExistence(rcpt.JSN, false)
		if err != nil {
			r.fatalf("post-heal verify(%d): %v", rcpt.JSN, err)
		}
		if rec.TxHash() != rcpt.TxHash {
			r.fatalf("post-heal verify(%d): record differs from receipt", rcpt.JSN)
		}
	}
}

// TestPartitionReplayPinned replays one seed from the environment, the
// same repro contract the torture test uses.
func TestPartitionReplayPinned(t *testing.T) {
	s := os.Getenv("PARTITION_SEED")
	if s == "" {
		t.Skip("set PARTITION_SEED to replay a specific schedule")
	}
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad PARTITION_SEED %q", s)
	}
	t.Setenv("CHAOSTEST_SEED", s)
	_ = seed
	TestPartitionTolerantReads(t)
}
