// Package chaostest is the network-boundary torture harness: it drives
// the full HTTP stack (hardened client → netchaos fault proxy →
// load-shedding server → ledger) through randomized, seeded fault
// schedules — connection drops on either side of a request, 5xx bursts,
// truncated, duplicated, byte-flipped, and slow-loris responses — and
// asserts the end-to-end robustness invariants:
//
//   - no double-appends: every client request hash appears at most once
//     in the journal, however many times retries and middlebox
//     duplication resubmitted it;
//   - every receipt the client accepted verifies against the ledger
//     after the chaos clears, payload included;
//   - every tampered response is rejected with TamperEvidence, never
//     silently accepted and never papered over by a retry;
//   - every call terminates within its deadline budget, whatever the
//     schedule does to the wire.
//
// Every failure prints a seeded-PRNG reproduction line; iterations are
// deterministic given (seed, iteration). The package contains only
// tests — this file exists so the package has a non-test compilation
// unit.
package chaostest
