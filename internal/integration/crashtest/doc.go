// Package crashtest is the recovery torture harness: it drives a full
// ledger workload (appends with clues and state, block cuts, time
// anchors, purges, occults, reorganization) over a simulated disk image
// (internal/streamfs/faultfs), freezes the image at randomized byte
// offsets — mid-frame, mid-header, between a write and its fsync — then
// reopens a fresh store from the frozen image and asserts that the
// recovered ledger (a) retains every journal up to the last synced
// commit point, (b) reproduces a byte-identical fam root and LedgerInfo
// for that durable prefix, and (c) passes a full Dasein audit.
//
// Every failure prints a seeded-PRNG reproduction line; iterations are
// deterministic given (seed, iteration). The package contains only
// tests — this file exists so the package has a non-test compilation
// unit.
package crashtest
