package crashtest

// Crash coverage for the coalesced group-fsync schedule: with
// Config.PipelineDepth set, a pipelined group spanning several block
// cuts issues ONE commit-order sync pass at the group end instead of
// one per cut. These tests crash the disk between those coalesced
// syncs — at byte-exact offsets, under both crash models — and prove
// the commit-point contract is unchanged: no receipt accepted before a
// durable point is ever lost, the recovered prefix is byte-identical,
// and recovery ordering (survival→journal→digest→block) still yields a
// ledger that passes a full audit and accepts new work.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/streamfs/faultfs"
)

const pipeURI = "ledger://pipeline-crash"

// durableReceipt is one accepted acknowledgement covered by a successful
// Sync: jsn plus the tx-hash the acknowledgement committed to.
type durableReceipt struct {
	jsn    uint64
	txHash [32]byte
}

type pipeHarness struct {
	t     *testing.T
	rng   *rand.Rand
	repro string

	clock  *logicalclock.Clock
	lsp    *sig.KeyPair
	dba    *sig.KeyPair
	client *sig.KeyPair
	blobs  streamfs.BlobStore
	disk   *faultfs.Disk
	l      *ledger.Ledger

	segSize     int64
	blockSize   int
	cfgSync     int
	verifyBatch int

	nonce uint64

	// accepted receipts since the last durable point; promoted into
	// durable on a successful Sync.
	pending []durableReceipt
	durable []durableReceipt
	durSize uint64
	durRoot [32]byte
	haveObs bool
}

func (h *pipeHarness) fatalf(format string, args ...interface{}) {
	h.t.Helper()
	h.t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), h.repro)
}

func newPipeHarness(t *testing.T, rng *rand.Rand, repro string) *pipeHarness {
	h := &pipeHarness{
		t:      t,
		rng:    rng,
		repro:  repro,
		clock:  logicalclock.New(2_000_000),
		lsp:    sig.GenerateDeterministic("pipecrash/lsp"),
		dba:    sig.GenerateDeterministic("pipecrash/dba"),
		client: sig.GenerateDeterministic("pipecrash/client"),
		blobs:  streamfs.NewMemoryBlobs(),
		disk:   faultfs.NewDisk(),
		// Small segments so the crash cut lands on rollovers too.
		segSize:     int64(96 + 96*rng.Intn(4)),
		blockSize:   3 + rng.Intn(4),
		cfgSync:     rng.Intn(4),
		verifyBatch: []int{0, 8}[rng.Intn(2)],
	}
	var err error
	h.l, err = h.open(h.disk)
	if err != nil {
		h.fatalf("initial open: %v", err)
	}
	return h
}

func (h *pipeHarness) open(d *faultfs.Disk) (*ledger.Ledger, error) {
	store, err := streamfs.OpenDisk("streams", streamfs.DiskOptions{
		SegmentSize: h.segSize, FS: d,
	})
	if err != nil {
		return nil, err
	}
	return ledger.Open(ledger.Config{
		URI:           pipeURI,
		FractalHeight: 3,
		BlockSize:     h.blockSize,
		Clock:         h.clock.Tick,
		LSP:           h.lsp,
		DBA:           h.dba.Public(),
		Store:         store,
		Blobs:         h.blobs,
		SyncEvery:     h.cfgSync,
		PipelineDepth: 4,
		VerifyBatch:   h.verifyBatch,
		VerifyWorkers: 2,
	})
}

func (h *pipeHarness) request(payload string) *journal.Request {
	h.nonce++
	req := &journal.Request{
		LedgerURI: pipeURI,
		Type:      journal.TypeNormal,
		Payload:   []byte(payload),
		Nonce:     h.nonce,
	}
	if err := req.Sign(h.client); err != nil {
		h.fatalf("sign: %v", err)
	}
	return req
}

// appendOne pushes a single journal through the pipeline. Successful
// acknowledgements are recorded as pending receipts.
func (h *pipeHarness) appendOne() error {
	rcpt, err := h.l.Append(h.request(fmt.Sprintf("pc-%d", h.nonce+1)))
	if err != nil {
		return err
	}
	h.pending = append(h.pending, durableReceipt{jsn: rcpt.JSN, txHash: rcpt.TxHash})
	return nil
}

// appendBatch pushes one batch spanning up to several block cuts — a
// single commit unit, hence a single pipelined group whose block-cut
// syncs all coalesce into one group-end pass. This is the path the
// crash must not be able to tear apart.
func (h *pipeHarness) appendBatch(blocks int) error {
	n := blocks * h.blockSize
	reqs := make([]*journal.Request, n)
	for i := range reqs {
		reqs[i] = h.request(fmt.Sprintf("pcb-%d", h.nonce+1))
	}
	br, txHashes, err := h.l.AppendBatch(reqs)
	if err != nil {
		return err
	}
	if err := br.Verify(h.lsp.Public(), txHashes); err != nil {
		h.fatalf("batch receipt does not verify on healthy disk: %v", err)
	}
	for i, txh := range txHashes {
		h.pending = append(h.pending, durableReceipt{jsn: br.FirstJSN + uint64(i), txHash: txh})
	}
	return nil
}

// syncAndObserve forces durability and promotes every pending receipt:
// from here on, no crash may lose them.
func (h *pipeHarness) syncAndObserve() error {
	if err := h.l.Sync(); err != nil {
		return err
	}
	if h.disk.Crashed() || !h.disk.AllSynced() {
		return nil
	}
	st, err := h.l.State()
	if err != nil {
		h.fatalf("signed state at durable point: %v", err)
	}
	h.durable = append(h.durable, h.pending...)
	h.pending = h.pending[:0]
	h.durSize = h.l.Size()
	h.durRoot = st.JournalRoot
	h.haveObs = true
	return nil
}

// verifyRecovered reopens the frozen image in the given crash mode and
// checks the coalesced-sync invariants.
func (h *pipeHarness) verifyRecovered(mode faultfs.CrashMode) {
	img := h.disk.Image(mode)
	l2, err := h.open(img)
	if err != nil {
		h.fatalf("reopen after crash (mode %d): %v", mode, err)
	}
	defer l2.Close()
	if h.haveObs {
		if l2.Size() < h.durSize {
			h.fatalf("mode %d: recovered size %d < durable size %d", mode, l2.Size(), h.durSize)
		}
		root, err := l2.FamRootAt(h.durSize)
		if err != nil {
			h.fatalf("mode %d: fam root at durable size %d: %v", mode, h.durSize, err)
		}
		if root != h.durRoot {
			h.fatalf("mode %d: fam root diverged at durable size %d", mode, h.durSize)
		}
	}
	// No accepted-and-durable receipt may be lost: the journal behind
	// every durable acknowledgement must still exist and carry exactly
	// the tx-hash the acknowledgement committed to.
	for _, dr := range h.durable {
		rec, err := l2.GetJournal(dr.jsn)
		if err != nil {
			h.fatalf("mode %d: durable receipt jsn %d unreadable: %v", mode, dr.jsn, err)
		}
		if rec.TxHash() != dr.txHash {
			h.fatalf("mode %d: durable receipt jsn %d tx-hash diverged", mode, dr.jsn)
		}
	}
	// Every surviving journal is readable and the whole ledger passes a
	// full audit — recovery ordering (survival→journal→digest→block)
	// violated in any way would surface here as a gap or root mismatch.
	for jsn := l2.Base(); jsn < l2.Size(); jsn++ {
		if _, err := l2.GetJournal(jsn); err != nil {
			h.fatalf("mode %d: journal %d unreadable after recovery: %v", mode, jsn, err)
		}
	}
	if _, err := audit.Audit(l2, nil, audit.Config{
		LSP:           h.lsp.Public(),
		DBA:           h.dba.Public(),
		CheckPayloads: true,
	}); err != nil {
		h.fatalf("mode %d: audit after recovery: %v", mode, err)
	}
	// Liveness: the recovered (still pipelined) ledger accepts new work.
	rcpt, err := l2.Append(h.request("post-recovery"))
	if err != nil {
		h.fatalf("mode %d: append after recovery: %v", mode, err)
	}
	if err := rcpt.Verify(h.lsp.Public()); err != nil {
		h.fatalf("mode %d: post-recovery receipt: %v", mode, err)
	}
}

func runPipelineIteration(t *testing.T, seed int64, iter int) {
	rng := rand.New(rand.NewSource(seed + int64(iter)*7_777_777))
	repro := fmt.Sprintf("repro: PIPECRASH_SEED=%d PIPECRASH_ITER=%d go test -run TestPipelineCoalescedSyncCrash ./internal/integration/crashtest", seed, iter)
	h := newPipeHarness(t, rng, repro)

	// Phase 1 (healthy): build up state ending on a durable point.
	for op, ops := 0, 2+rng.Intn(4); op < ops; op++ {
		var err error
		if rng.Intn(2) == 0 {
			err = h.appendBatch(1 + rng.Intn(3))
		} else {
			err = h.appendOne()
		}
		if err != nil {
			h.fatalf("phase-1 op failed on healthy disk: %v", err)
		}
	}
	if err := h.syncAndObserve(); err != nil {
		h.fatalf("phase-1 sync: %v", err)
	}

	// Phase 2: arm a byte-exact crash inside the upcoming coalesced
	// writes, then keep pushing groups until it fires.
	h.disk.CrashAtByte(h.disk.BytesWritten() + 1 + rng.Int63n(4000))
	for op := 0; op < 40 && !h.disk.Crashed(); op++ {
		var err error
		switch n := rng.Intn(10); {
		case n < 5:
			err = h.appendBatch(1 + rng.Intn(3))
		case n < 9:
			err = h.appendOne()
		default:
			err = h.syncAndObserve()
		}
		if err != nil && !h.disk.Crashed() {
			h.fatalf("phase-2 op failed on healthy disk: %v", err)
		}
	}
	if !h.disk.Crashed() {
		h.disk.CrashNow()
	}
	h.l.Close() // drain the committer; stream flush errors are expected

	h.verifyRecovered(faultfs.TornWrite)
	h.verifyRecovered(faultfs.DropUnsynced)
}

// TestPipelineCoalescedSyncCrash crashes between coalesced group syncs
// (30 seeded iterations by default; each verifies both crash models).
// PIPECRASH_SEED pins the PRNG, PIPECRASH_ITER replays one iteration.
func TestPipelineCoalescedSyncCrash(t *testing.T) {
	seed := int64(envInt("PIPECRASH_SEED", 0xFADED))
	if s := os.Getenv("PIPECRASH_ITER"); s != "" {
		iter, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad PIPECRASH_ITER %q", s)
		}
		runPipelineIteration(t, seed, iter)
		return
	}
	iters := envInt("PIPECRASH_ITERS", 30)
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		runPipelineIteration(t, seed, i)
	}
}
