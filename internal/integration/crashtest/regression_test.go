package crashtest

// Deterministic regression tests for the durability fixes, each built to
// fail on the pre-fix code via a faultfs failpoint:
//
//   - TestSerialCommitDurability: the serial (non-pipelined) commit path
//     must fsync at commit points. Before the fix it never synced, so a
//     DropUnsynced crash erased the whole ledger including genesis.
//   - TestPurgeRollForwardAfterCrash: a purge whose decision (purge
//     journal + pseudo genesis, synced) is durable but whose destructive
//     half was interrupted must be rolled forward on reopen.
//   - TestTornPurgeJournalStaysInert: a purge journal without its pseudo
//     genesis (crash mid-snapshot-write) must stay inert forever — no
//     truncation, base unchanged, audits still pass.

import (
	"fmt"
	"math/rand"
	"testing"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs/faultfs"
)

// fixedRequest builds a deterministic client request (fixed clue, caller
// supplies payload and nonce) so twin runs produce identical byte traces.
func fixedRequest(payload string, nonce uint64) *journal.Request {
	return &journal.Request{
		LedgerURI: uri,
		Type:      journal.TypeNormal,
		Clues:     []string{"det"},
		Payload:   []byte(payload),
		Nonce:     nonce,
	}
}

// detHarness builds a non-random harness: fixed knobs, fixed workload,
// so byte offsets replay identically across runs within one test.
func detHarness(t *testing.T) *harness {
	h := newHarness(t, rand.New(rand.NewSource(1)), "deterministic regression (no repro seed)")
	h.segSize = 1 << 20 // no rollovers: keeps the write trace trivial
	h.diskSync, h.cfgSync = 0, 0
	return h
}

// detSetup opens a ledger with BlockSize 100 (no automatic cuts), runs
// six clue-tagged appends and one explicit block cut, and returns the
// harness ready for a purge at point 4 with survivor 2.
func detSetup(t *testing.T) (*harness, *ledger.PurgeDescriptor, *sig.MultiSig) {
	h := detHarness(t)
	h.blockSize = 100
	var err error
	h.disk = faultfs.NewDisk()
	h.l, err = h.open(h.disk)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 6; i++ {
		h.nonce++
		if err := h.appendFixed(fmt.Sprintf("det-%d", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := h.l.CutBlock(); err != nil {
		t.Fatalf("cut: %v", err)
	}
	desc := &ledger.PurgeDescriptor{URI: uri, Point: 4, Survivors: []uint64{2}, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(h.dba); err != nil {
		t.Fatal(err)
	}
	if err := ms.SignWith(h.client); err != nil {
		t.Fatal(err)
	}
	return h, desc, ms
}

// appendFixed appends one clue-tagged journal with a fixed-length
// payload, keeping the byte trace identical across runs.
func (h *harness) appendFixed(payload string) error {
	req := fixedRequest(payload, h.nonce)
	if err := req.Sign(h.client); err != nil {
		return err
	}
	_, err := h.l.Append(req)
	return err
}

func (h *harness) auditRecovered(l2 *ledger.Ledger) error {
	_, err := audit.Audit(l2, nil, audit.Config{
		LSP:           h.lsp.Public(),
		DBA:           h.dba.Public(),
		TrustedTSA:    []sig.PublicKey{h.stamp.Public()},
		CheckPayloads: true,
	})
	return err
}

// TestSerialCommitDurability: block cuts on the serial path are commit
// points and must leave the image fully synced; a power failure right
// after the cut (volatile cache dropped) must preserve the block and
// every journal it covers.
func TestSerialCommitDurability(t *testing.T) {
	h := detHarness(t)
	h.blockSize = 4
	var err error
	h.disk = faultfs.NewDisk()
	h.l, err = h.open(h.disk)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Genesis (jsn 0) + three appends = BlockSize journals: the third
	// append cuts block 0 automatically on the serial path.
	for i := 0; i < 3; i++ {
		h.nonce++
		if err := h.appendFixed(fmt.Sprintf("serial-%d", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if h.l.Height() != 1 {
		t.Fatalf("expected automatic block cut, height %d", h.l.Height())
	}
	if !h.disk.AllSynced() {
		t.Fatalf("serial block cut is a commit point but left unsynced bytes on the image")
	}
	// One acknowledged-but-unsynced append beyond the commit point; it
	// is allowed (not required) to vanish in the crash.
	h.nonce++
	if err := h.appendFixed("serial-tail"); err != nil {
		t.Fatalf("tail append: %v", err)
	}
	h.disk.CrashNow()

	l2, err := h.open(h.disk.Image(faultfs.DropUnsynced))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Size() < 4 {
		t.Fatalf("recovered size %d, want >= 4 (genesis + 3 committed journals)", l2.Size())
	}
	if l2.Height() < 1 {
		t.Fatalf("recovered height %d, want >= 1: the cut block was lost", l2.Height())
	}
	for jsn := uint64(0); jsn < 4; jsn++ {
		if _, err := l2.GetJournal(jsn); err != nil {
			t.Fatalf("journal %d lost across the commit point: %v", jsn, err)
		}
	}
	if err := h.auditRecovered(l2); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestPurgeRollForwardAfterCrash crashes inside the purge's destructive
// half — after the decision sync, during the base-meta write — and
// expects reopen to roll the purge forward to its decided state. The
// crash offset comes from a clean twin run: traces are deterministic
// (fixed-size signatures, logical clock), so the byte counts replay.
func TestPurgeRollForwardAfterCrash(t *testing.T) {
	// Twin run 1: clean purge, measuring the write trace.
	ha, descA, msA := detSetup(t)
	before := ha.disk.BytesWritten()
	if _, err := ha.l.Purge(descA, msA); err != nil {
		t.Fatalf("clean purge: %v", err)
	}
	after := ha.disk.BytesWritten()

	// Twin run 2: crash one byte short of the purge's final write (the
	// 12-byte base-meta tmp file, written after the decision sync).
	hb, descB, msB := detSetup(t)
	if got := hb.disk.BytesWritten(); got != before {
		t.Fatalf("nondeterministic write trace: twin runs diverge (%d vs %d bytes)", got, before)
	}
	hb.disk.CrashAtByte(after - 1)
	if _, err := hb.l.Purge(descB, msB); err == nil {
		t.Fatalf("purge succeeded despite crash during truncation")
	}
	if !hb.disk.Crashed() {
		t.Fatalf("crash offset missed the purge's write trace")
	}

	l2, err := hb.open(hb.disk.Image(faultfs.TornWrite))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Base() != descB.Point {
		t.Fatalf("recovered base %d: decided purge (point %d) was not rolled forward", l2.Base(), descB.Point)
	}
	if _, err := l2.GetJournal(3); err == nil {
		t.Fatalf("journal 3 still readable after rolled-forward purge")
	}
	survivors, err := l2.Survivors()
	if err != nil {
		t.Fatalf("survivors: %v", err)
	}
	found := false
	for _, rec := range survivors {
		if rec.JSN == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("survivor journal 2 missing after roll-forward (%d survivors)", len(survivors))
	}
	if err := h2Usable(l2, hb); err != nil {
		t.Fatalf("ledger unusable after roll-forward: %v", err)
	}
	if err := hb.auditRecovered(l2); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestTornPurgeJournalStaysInert crashes while the pseudo-genesis
// snapshot is being written: the purge journal lands on disk but its
// pseudo genesis does not, so the decision never happened. Reopen must
// keep the full journal prefix, never truncate, and still audit clean.
func TestTornPurgeJournalStaysInert(t *testing.T) {
	ha, descA, msA := detSetup(t)
	before := ha.disk.BytesWritten()
	if _, err := ha.l.Purge(descA, msA); err != nil {
		t.Fatalf("clean purge: %v", err)
	}
	after := ha.disk.BytesWritten()

	// The purge's trailing writes are, in order: the pseudo-genesis
	// journal frame, its 40-byte digest frame, and the 12-byte base
	// meta. Cutting 4 bytes before the digest frame lands inside the
	// pseudo-genesis frame (its snapshot is far larger than 4 bytes),
	// before the decision sync could run.
	hb, descB, msB := detSetup(t)
	if got := hb.disk.BytesWritten(); got != before {
		t.Fatalf("nondeterministic write trace: twin runs diverge (%d vs %d bytes)", got, before)
	}
	hb.disk.CrashAtByte(after - 12 - 40 - 4)
	if _, err := hb.l.Purge(descB, msB); err == nil {
		t.Fatalf("purge succeeded despite crash during pseudo-genesis write")
	}

	l2, err := hb.open(hb.disk.Image(faultfs.TornWrite))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Base() != 0 {
		t.Fatalf("recovered base %d: an undecided purge must never truncate", l2.Base())
	}
	for jsn := uint64(0); jsn < 7; jsn++ {
		if _, err := l2.GetJournal(jsn); err != nil {
			t.Fatalf("journal %d unreadable under inert purge journal: %v", jsn, err)
		}
	}
	if err := h2Usable(l2, hb); err != nil {
		t.Fatalf("ledger unusable under inert purge journal: %v", err)
	}
	if err := hb.auditRecovered(l2); err != nil {
		t.Fatalf("audit with inert purge journal: %v", err)
	}
}

// h2Usable proves the recovered ledger accepts new work.
func h2Usable(l2 *ledger.Ledger, h *harness) error {
	h.nonce++
	req := fixedRequest("post-recovery", h.nonce)
	if err := req.Sign(h.client); err != nil {
		return err
	}
	_, err := l2.Append(req)
	return err
}
