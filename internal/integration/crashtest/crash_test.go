package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/streamfs/faultfs"
	"ledgerdb/internal/tsa"
)

const uri = "ledger://crash-torture"

// durableObs is the parity expectation recorded at a moment when every
// written byte was covered by a successful fsync (disk.AllSynced): the
// reopened ledger must reproduce exactly this prefix, whichever crash
// mode hits afterwards.
type durableObs struct {
	size, base, height uint64
	state              ledger.SignedState
}

// harness owns one torture iteration: a ledger over a faultfs image, a
// seeded PRNG driving the workload, and the latest durable observation.
type harness struct {
	t     *testing.T
	rng   *rand.Rand
	repro string

	clock  *logicalclock.Clock
	stamp  *tsa.Authority
	lsp    *sig.KeyPair
	dba    *sig.KeyPair
	client *sig.KeyPair
	blobs  streamfs.BlobStore

	disk *faultfs.Disk
	l    *ledger.Ledger

	segSize   int64
	diskSync  int
	cfgSync   int
	blockSize int

	nonce   uint64
	normals []uint64 // receipts of normal journals, targets for occult/purge survivors
	durable *durableObs
}

var clueNames = []string{"supply", "invoice", "audit-trail", "kyc"}

func (h *harness) fatalf(format string, args ...interface{}) {
	h.t.Helper()
	h.t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), h.repro)
}

func newHarness(t *testing.T, rng *rand.Rand, repro string) *harness {
	h := &harness{
		t:     t,
		rng:   rng,
		repro: repro,
		clock: logicalclock.New(1_000_000),
		lsp:   sig.GenerateDeterministic("crashtest/lsp"),
		dba:   sig.GenerateDeterministic("crashtest/dba"),
		client: sig.GenerateDeterministic("crashtest/client"),
		blobs:  streamfs.NewMemoryBlobs(),
		disk:   faultfs.NewDisk(),
		// Small segments force frequent rollovers so the crash cut lands
		// on segment headers, not just record frames.
		segSize:   int64(96 + 96*rng.Intn(4)),
		diskSync:  rng.Intn(3),
		cfgSync:   rng.Intn(4),
		blockSize: 3 + rng.Intn(4),
	}
	h.stamp = tsa.New("crashtest-tsa", tsa.Options{Clock: h.clock.Now})
	var err error
	h.l, err = h.open(h.disk)
	if err != nil {
		h.fatalf("initial open: %v", err)
	}
	return h
}

func (h *harness) config(store streamfs.Store) ledger.Config {
	return ledger.Config{
		URI:           uri,
		FractalHeight: 3,
		BlockSize:     h.blockSize,
		Clock:         h.clock.Tick,
		LSP:           h.lsp,
		DBA:           h.dba.Public(),
		Store:         store,
		Blobs:         h.blobs,
		SyncEvery:     h.cfgSync,
	}
}

func (h *harness) open(d *faultfs.Disk) (*ledger.Ledger, error) {
	store, err := streamfs.OpenDisk("streams", streamfs.DiskOptions{
		SegmentSize: h.segSize, SyncEvery: h.diskSync, FS: d,
	})
	if err != nil {
		return nil, err
	}
	return ledger.Open(h.config(store))
}

// benign errors are legitimate business rejections the random workload
// provokes (purge point out of range, double occult, missing clue, ...);
// anything else while the disk is healthy is a harness failure.
func benign(err error) bool {
	return errors.Is(err, ledger.ErrNotFound) ||
		errors.Is(err, ledger.ErrNotPermitted) ||
		errors.Is(err, ledger.ErrPurged) ||
		errors.Is(err, ledger.ErrOcculted)
}

// step runs one weighted workload operation. It returns false once the
// disk has crashed.
func (h *harness) step() bool {
	var err error
	switch n := h.rng.Intn(100); {
	case n < 55:
		err = h.appendNormal(h.l)
	case n < 65:
		_, err = h.l.CutBlock()
	case n < 72:
		_, err = h.l.AnchorTimeWith(h.stamp.Stamp)
	case n < 80:
		err = h.occult()
	case n < 85:
		err = h.occultClue()
	case n < 91:
		err = h.purge()
	case n < 95:
		_, err = h.l.Reorganize()
	default:
		err = h.l.Sync()
	}
	if h.disk.Crashed() {
		return false
	}
	if err != nil && !benign(err) {
		h.fatalf("workload op failed on healthy disk: %v", err)
	}
	h.observe()
	return true
}

func (h *harness) appendNormal(l *ledger.Ledger) error {
	h.nonce++
	req := &journal.Request{LedgerURI: uri, Type: journal.TypeNormal, Nonce: h.nonce}
	if h.rng.Intn(100) < 70 {
		req.Clues = []string{clueNames[h.rng.Intn(len(clueNames))]}
		if extra := clueNames[h.rng.Intn(len(clueNames))]; h.rng.Intn(4) == 0 && extra != req.Clues[0] {
			req.Clues = append(req.Clues, extra)
		}
	}
	if h.rng.Intn(100) < 30 {
		req.StateKey = []byte(fmt.Sprintf("acct-%d", h.rng.Intn(5)))
	}
	if h.rng.Intn(100) < 10 {
		req.Payload = []byte("shared-payload") // content-addressed: exercises blob refcounts
	} else {
		req.Payload = []byte(fmt.Sprintf("payload-%d", h.nonce))
	}
	if err := req.Sign(h.client); err != nil {
		return err
	}
	rcpt, err := l.Append(req)
	if err != nil {
		return err
	}
	h.normals = append(h.normals, rcpt.JSN)
	return nil
}

func (h *harness) occult() error {
	if len(h.normals) == 0 {
		return nil
	}
	desc := &ledger.OccultDescriptor{
		URI:   uri,
		JSN:   h.normals[h.rng.Intn(len(h.normals))],
		Async: h.rng.Intn(2) == 0,
	}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(h.dba); err != nil {
		return err
	}
	_, err := h.l.Occult(desc, ms)
	return err
}

func (h *harness) occultClue() error {
	desc := &ledger.OccultClueDescriptor{URI: uri, Clue: clueNames[h.rng.Intn(len(clueNames))]}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(h.dba); err != nil {
		return err
	}
	_, err := h.l.OccultClue(desc.Clue, ms)
	return err
}

func (h *harness) purge() error {
	base, size := h.l.Base(), h.l.Size()
	if size-base < 6 {
		return nil
	}
	desc := &ledger.PurgeDescriptor{
		URI:           uri,
		Point:         base + 1 + uint64(h.rng.Intn(int(size-base-1))),
		ErasePayloads: h.rng.Intn(2) == 0,
	}
	for _, jsn := range h.normals {
		if jsn >= base && jsn < desc.Point && len(desc.Survivors) < 2 && h.rng.Intn(3) == 0 {
			desc.Survivors = append(desc.Survivors, jsn)
		}
	}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(h.dba); err != nil {
		return err
	}
	if err := ms.SignWith(h.client); err != nil {
		return err
	}
	_, err := h.l.Purge(desc, ms)
	return err
}

// observe records the parity expectation whenever the image is fully
// durable: a crash at any later point must preserve at least this state.
func (h *harness) observe() {
	if h.disk.Crashed() || !h.disk.AllSynced() {
		return
	}
	st, err := h.l.State()
	if err != nil {
		h.fatalf("signed state at durable point: %v", err)
	}
	h.durable = &durableObs{size: h.l.Size(), base: h.l.Base(), height: h.l.Height(), state: *st}
}

// verifyRecovered reopens a fresh store over the frozen image in the
// given crash mode and checks the three torture invariants.
func (h *harness) verifyRecovered(mode faultfs.CrashMode) {
	img := h.disk.Image(mode)
	l2, err := h.open(img)
	if err != nil {
		h.fatalf("reopen after crash (mode %d): %v", mode, err)
	}
	if d := h.durable; d != nil {
		// (a) Every journal up to the last synced commit point survived.
		if l2.Size() < d.size {
			h.fatalf("mode %d: recovered size %d < durable size %d", mode, l2.Size(), d.size)
		}
		if l2.Base() < d.base {
			h.fatalf("mode %d: recovered base %d < durable base %d", mode, l2.Base(), d.base)
		}
		if l2.Height() < d.height {
			h.fatalf("mode %d: recovered height %d < durable height %d", mode, l2.Height(), d.height)
		}
		// (b) Byte-identical fam root for the durable prefix; full
		// LedgerInfo parity when the crash lost nothing beyond it.
		root, err := l2.FamRootAt(d.size)
		if err != nil {
			h.fatalf("mode %d: fam root at durable size %d: %v", mode, d.size, err)
		}
		if root != d.state.JournalRoot {
			h.fatalf("mode %d: fam root diverged at durable size %d:\n  recorded %x\n  recovered %x",
				mode, d.size, d.state.JournalRoot, root)
		}
		if l2.Size() == d.size && l2.Base() == d.base {
			st2, err := l2.State()
			if err != nil {
				h.fatalf("mode %d: recovered state: %v", mode, err)
			}
			if st2.JSN != d.state.JSN || st2.JournalRoot != d.state.JournalRoot ||
				st2.ClueRoot != d.state.ClueRoot || st2.StateRoot != d.state.StateRoot {
				h.fatalf("mode %d: LedgerInfo diverged at size %d:\n  recorded  jsn=%d fam=%x clue=%x state=%x\n  recovered jsn=%d fam=%x clue=%x state=%x",
					mode, d.size,
					d.state.JSN, d.state.JournalRoot, d.state.ClueRoot, d.state.StateRoot,
					st2.JSN, st2.JournalRoot, st2.ClueRoot, st2.StateRoot)
			}
		}
	}
	// Every surviving journal must be readable (no torn frames, no gaps).
	for jsn := l2.Base(); jsn < l2.Size(); jsn++ {
		if _, err := l2.GetJournal(jsn); err != nil {
			h.fatalf("mode %d: journal %d unreadable after recovery: %v", mode, jsn, err)
		}
	}
	// (c) The recovered ledger passes a full Dasein audit.
	if _, err := audit.Audit(l2, nil, audit.Config{
		LSP:            h.lsp.Public(),
		DBA:            h.dba.Public(),
		TrustedTSA:     []sig.PublicKey{h.stamp.Public()},
		CheckPayloads:  true,
		CheckClueRoots: true,
	}); err != nil {
		h.fatalf("mode %d: audit after recovery: %v", mode, err)
	}
	// And it must accept new work: recovery may not leave it poisoned.
	if err := h.appendNormal(l2); err != nil {
		h.fatalf("mode %d: append after recovery: %v", mode, err)
	}
}

func runIteration(t *testing.T, seed int64, iter int) {
	rng := rand.New(rand.NewSource(seed + int64(iter)*1_000_003))
	repro := fmt.Sprintf("repro: CRASHTEST_SEED=%d CRASHTEST_ITER=%d go test -run TestCrashRecoveryTorture ./internal/integration/crashtest", seed, iter)
	h := newHarness(t, rng, repro)
	h.observe() // genesis is a durable commit point

	// Arm the crash: usually a byte-exact cut somewhere in the upcoming
	// writes (it can land mid-frame, mid-header, or between a write and
	// its fsync), sometimes an op-count freeze instead.
	crashAfterOps := -1
	if rng.Intn(5) == 0 {
		crashAfterOps = 1 + rng.Intn(50)
	} else {
		h.disk.CrashAtByte(h.disk.BytesWritten() + 1 + rng.Int63n(3000))
	}

	for op := 0; op < 60; op++ {
		if !h.step() {
			break
		}
		if crashAfterOps >= 0 && op >= crashAfterOps {
			h.disk.CrashNow()
			break
		}
	}
	if !h.disk.Crashed() {
		h.disk.CrashNow() // the armed byte offset was beyond this workload
	}

	// Verify both crash models from the same frozen image. TornWrite
	// first: its image is a superset, and DropUnsynced recovery may
	// legitimately garbage-collect purged payload blobs from the shared
	// blob store that the torn tail still references.
	h.verifyRecovered(faultfs.TornWrite)
	h.verifyRecovered(faultfs.DropUnsynced)
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// TestCrashRecoveryTorture runs randomized crash points (500 by default,
// CRASHTEST_ITERS overrides; each iteration verifies two crash models).
// CRASHTEST_SEED pins the PRNG, CRASHTEST_ITER replays one failing
// iteration from a repro line.
func TestCrashRecoveryTorture(t *testing.T) {
	seed := int64(envInt("CRASHTEST_SEED", 0xC0FFEE))
	if s := os.Getenv("CRASHTEST_ITER"); s != "" {
		iter, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CRASHTEST_ITER %q", s)
		}
		runIteration(t, seed, iter)
		return
	}
	iters := envInt("CRASHTEST_ITERS", 500)
	if testing.Short() {
		iters = 60
	}
	const shards = 8
	perShard := (iters + shards - 1) / shards
	for s := 0; s < shards; s++ {
		first, last := s*perShard, (s+1)*perShard
		if last > iters {
			last = iters
		}
		if first >= last {
			break
		}
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := first; i < last; i++ {
				runIteration(t, seed, i)
			}
		})
	}
}
