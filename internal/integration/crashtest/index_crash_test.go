package crashtest

import (
	"bytes"
	"fmt"
	"testing"

	"ledgerdb/internal/index"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/streamfs/faultfs"
)

const ixURI = "ledger://index-crash"

// ixFixture is the truth side of the index crash scenarios: an ordinary
// ledger over a healthy memory store. Only the sidecar's disk crashes —
// the invariant under test is that the index never needs its own
// durability to be correct, because the ledger can always re-derive it.
type ixFixture struct {
	t      *testing.T
	l      *ledger.Ledger
	dba    *sig.KeyPair
	client *sig.KeyPair
	nonce  uint64
}

func newIxFixture(t *testing.T) *ixFixture {
	t.Helper()
	f := &ixFixture{
		t:      t,
		dba:    sig.GenerateDeterministic("ixcrash/dba"),
		client: sig.GenerateDeterministic("ixcrash/client"),
	}
	clock := logicalclock.New(2_000_000)
	l, err := ledger.Open(ledger.Config{
		URI:           ixURI,
		FractalHeight: 3,
		BlockSize:     4,
		Clock:         clock.Tick,
		LSP:           sig.GenerateDeterministic("ixcrash/lsp"),
		DBA:           f.dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.l = l
	t.Cleanup(func() { l.Close() })
	return f
}

func (f *ixFixture) append(clue string) {
	f.t.Helper()
	f.nonce++
	req := &journal.Request{
		LedgerURI: ixURI,
		Type:      journal.TypeNormal,
		Nonce:     f.nonce,
		Payload:   []byte(fmt.Sprintf("payload-%d", f.nonce)),
		Clues:     []string{clue},
	}
	if err := req.Sign(f.client); err != nil {
		f.t.Fatal(err)
	}
	if _, err := f.l.Append(req); err != nil {
		f.t.Fatal(err)
	}
}

func (f *ixFixture) purge(point uint64) {
	f.t.Helper()
	desc := &ledger.PurgeDescriptor{URI: ixURI, Point: point, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	for _, kp := range []*sig.KeyPair{f.dba, f.client} {
		if err := ms.SignWith(kp); err != nil {
			f.t.Fatal(err)
		}
	}
	if _, err := f.l.Purge(desc, ms); err != nil {
		f.t.Fatal(err)
	}
}

// coldBytes is the reference: a from-scratch rebuild on a throwaway
// memory store, the pure function of the journal stream every crashed
// reopen must converge to.
func (f *ixFixture) coldBytes() []byte {
	f.t.Helper()
	ix, err := index.Open(f.l, streamfs.NewMemory())
	if err != nil {
		f.t.Fatal(err)
	}
	return ix.ProjectionBytes()
}

// ixStore opens the sidecar's disk-backed store over a faultfs image;
// tiny segments put segment headers in the crash path too.
func ixStore(d *faultfs.Disk) (streamfs.Store, error) {
	return streamfs.OpenDisk("index", streamfs.DiskOptions{SegmentSize: 128, SyncEvery: 2, FS: d})
}

// reopenConverged reopens the sidecar from a crashed image in the given
// mode and asserts full convergence: open succeeds, projections match
// the cold rebuild byte for byte, and the audit cross-check passes.
func (f *ixFixture) reopenConverged(d *faultfs.Disk, mode faultfs.CrashMode, cold []byte, ctx string) {
	f.t.Helper()
	img := d.Image(mode)
	store, err := ixStore(img)
	if err != nil {
		f.t.Fatalf("%s mode %d: reopen store: %v", ctx, mode, err)
	}
	ix, err := index.Open(f.l, store)
	if err != nil {
		f.t.Fatalf("%s mode %d: reopen index: %v", ctx, mode, err)
	}
	if got := ix.ProjectionBytes(); !bytes.Equal(got, cold) {
		f.t.Fatalf("%s mode %d: recovered projections (%d bytes) diverge from cold rebuild (%d bytes)",
			ctx, mode, len(got), len(cold))
	}
	if err := ix.CrossCheck(); err != nil {
		f.t.Fatalf("%s mode %d: cross-check after recovery: %v", ctx, mode, err)
	}
}

// TestIndexCrashMidRebuild kills the sidecar disk at byte-exact points
// while Open is rebuilding the index from the journal stream, then
// reopens from the frozen image in both crash modes. Whatever survived
// — torn entry frames, unsynced suffixes, nothing at all — the reopened
// index must converge to the cold rebuild's exact projection bytes.
func TestIndexCrashMidRebuild(t *testing.T) {
	f := newIxFixture(t)
	for i := 0; i < 18; i++ {
		f.append(fmt.Sprintf("inv/%02d", i%7))
	}
	f.append("hot")
	f.purge(8)
	f.append("hot") // resurrection: lineage purged, clue re-lives
	cold := f.coldBytes()

	// Dry run on a healthy disk to learn the rebuild's total byte count.
	dry := faultfs.NewDisk()
	store, err := ixStore(dry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := index.Open(f.l, store); err != nil {
		t.Fatal(err)
	}
	total := dry.BytesWritten()
	if total == 0 {
		t.Fatal("rebuild wrote no bytes; crash points would never fire")
	}

	for _, mode := range []faultfs.CrashMode{faultfs.TornWrite, faultfs.DropUnsynced} {
		for _, cut := range []int64{1, total / 4, total / 2, 3 * total / 4, total - 1} {
			d := faultfs.NewDisk()
			d.CrashAtByte(cut)
			if store, err := ixStore(d); err == nil {
				if _, err := index.Open(f.l, store); err == nil {
					t.Fatalf("cut %d: rebuild survived an armed crash", cut)
				}
			}
			if !d.Crashed() {
				t.Fatalf("cut %d: disk never crashed", cut)
			}
			f.reopenConverged(d, mode, cold, fmt.Sprintf("rebuild cut %d", cut))
		}
	}
}

// TestIndexCrashMidTail crashes the sidecar while an already-warm index
// tails new journals (including a purge that truncates the entries log
// and a resurrected clue). The frozen image reopens into the same
// projection bytes as a cold rebuild of the final ledger.
func TestIndexCrashMidTail(t *testing.T) {
	f := newIxFixture(t)
	for i := 0; i < 10; i++ {
		f.append(fmt.Sprintf("inv/%02d", i%5))
	}
	f.append("doomed")

	// Warm one index per crash point BEFORE the stage-2 mutations, all
	// tailing the same ledger from their own sidecar disks.
	const points = 4
	disks := make([]*faultfs.Disk, points+1)
	warm := make([]*index.Index, points+1)
	marks := make([]int64, points+1)
	for k := range disks {
		disks[k] = faultfs.NewDisk()
		store, err := ixStore(disks[k])
		if err != nil {
			t.Fatal(err)
		}
		if warm[k], err = index.Open(f.l, store); err != nil {
			t.Fatal(err)
		}
		marks[k] = disks[k].BytesWritten()
	}

	// Stage 2: new appends, a purge (log truncation on the next sync),
	// and a resurrection.
	for i := 0; i < 8; i++ {
		f.append(fmt.Sprintf("post/%d", i))
	}
	f.purge(9)
	f.append("doomed")
	cold := f.coldBytes()

	// Dry tail on the spare warm index to learn the tail's byte count.
	if err := warm[points].Sync(); err != nil {
		t.Fatal(err)
	}
	tail := disks[points].BytesWritten() - marks[points]
	if tail == 0 {
		t.Fatal("tail wrote no bytes; crash points would never fire")
	}

	for k := 0; k < points; k++ {
		cut := marks[k] + int64(k+1)*tail/(points+1)
		disks[k].CrashAtByte(cut)
		if err := warm[k].Sync(); err == nil {
			t.Fatalf("point %d: tail sync survived an armed crash", k)
		}
		if !disks[k].Crashed() {
			t.Fatalf("point %d: disk never crashed", k)
		}
		mode := faultfs.TornWrite
		if k%2 == 1 {
			mode = faultfs.DropUnsynced
		}
		f.reopenConverged(disks[k], mode, cold, fmt.Sprintf("tail point %d", k))
	}
}
