package crashtest

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/replica"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/streamfs/faultfs"
	"ledgerdb/internal/tsa"
)

const replicaURI = "ledger://replica-crash"

// replicaDurable is the follower-side parity floor: the frontier observed
// at a moment when every byte the follower had written was fsync-covered.
// Whichever crash mode hits later, the reopened follower must hold at
// least this prefix.
type replicaDurable struct {
	size, base, height uint64
}

// replicaHarness owns one follower-crash iteration: a healthy in-memory
// primary carrying a seeded workload, and the knobs shared by every
// follower disk in the iteration (so the probe catch-up and the crashed
// catch-up write byte-identical sequences).
type replicaHarness struct {
	t     *testing.T
	rng   *rand.Rand
	repro string

	clock  *logicalclock.Clock
	stamp  *tsa.Authority
	lsp    *sig.KeyPair
	dba    *sig.KeyPair
	client *sig.KeyPair

	primary *ledger.Ledger

	segSize   int64
	diskSync  int
	cfgSync   int
	blockSize int
	batch     int

	nonce   uint64
	normals []uint64
}

func (h *replicaHarness) fatalf(format string, args ...interface{}) {
	h.t.Helper()
	h.t.Fatalf("%s\n%s", fmt.Sprintf(format, args...), h.repro)
}

func newReplicaHarness(t *testing.T, rng *rand.Rand, repro string) *replicaHarness {
	h := &replicaHarness{
		t:      t,
		rng:    rng,
		repro:  repro,
		clock:  logicalclock.New(2_000_000),
		lsp:    sig.GenerateDeterministic("replica-crash/lsp"),
		dba:    sig.GenerateDeterministic("replica-crash/dba"),
		client: sig.GenerateDeterministic("replica-crash/client"),
		// Small segments so the crash cut lands on segment headers as
		// well as record frames; mixed sync cadences so DropUnsynced
		// has an unsynced tail to drop.
		segSize:   int64(96 + 96*rng.Intn(4)),
		diskSync:  rng.Intn(3),
		cfgSync:   rng.Intn(4),
		blockSize: 3 + rng.Intn(4),
		batch:     2 + rng.Intn(6),
	}
	h.stamp = tsa.New("replica-crash-tsa", tsa.Options{Clock: h.clock.Now})
	var err error
	h.primary, err = ledger.Open(ledger.Config{
		URI:           replicaURI,
		FractalHeight: 3,
		BlockSize:     h.blockSize,
		Clock:         h.clock.Tick,
		LSP:           h.lsp,
		DBA:           h.dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		h.fatalf("open primary: %v", err)
	}
	t.Cleanup(func() { h.primary.Close() })
	return h
}

// openFollower builds an apply-only ledger over a faultfs disk, with the
// iteration's fixed segment/sync knobs so every follower in the iteration
// writes the same byte sequence for the same pulled prefix.
func (h *replicaHarness) openFollower(d *faultfs.Disk) (*ledger.Ledger, error) {
	store, err := streamfs.OpenDisk("streams", streamfs.DiskOptions{
		SegmentSize: h.segSize, SyncEvery: h.diskSync, FS: d,
	})
	if err != nil {
		return nil, err
	}
	return ledger.Open(ledger.Config{
		URI:           replicaURI,
		FractalHeight: 3,
		BlockSize:     h.blockSize,
		Clock:         h.clock.Tick,
		ApplyOnly:     true,
		PrimaryLSP:    h.lsp.Public(),
		DBA:           h.dba.Public(),
		Store:         store,
		Blobs:         streamfs.NewMemoryBlobs(),
		SyncEvery:     h.cfgSync,
	})
}

func (h *replicaHarness) newPuller(l *ledger.Ledger) *replica.Puller {
	pl, err := replica.New(replica.Config{
		Source: replica.LedgerSource(h.primary),
		Ledger: l,
		Batch:  h.batch,
	})
	if err != nil {
		h.fatalf("replica.New: %v", err)
	}
	return pl
}

// appendPrimary commits one signed journal on the primary, mirroring the
// main torture workload's shape (clues, state keys, shared payloads).
func (h *replicaHarness) appendPrimary() {
	h.nonce++
	req := &journal.Request{LedgerURI: replicaURI, Type: journal.TypeNormal, Nonce: h.nonce}
	if h.rng.Intn(100) < 70 {
		req.Clues = []string{clueNames[h.rng.Intn(len(clueNames))]}
	}
	if h.rng.Intn(100) < 30 {
		req.StateKey = []byte(fmt.Sprintf("acct-%d", h.rng.Intn(5)))
	}
	req.Payload = []byte(fmt.Sprintf("payload-%d", h.nonce))
	if err := req.Sign(h.client); err != nil {
		h.fatalf("sign: %v", err)
	}
	rcpt, err := h.primary.Append(req)
	if err != nil {
		h.fatalf("primary append: %v", err)
	}
	h.normals = append(h.normals, rcpt.JSN)
}

// workload drives the primary through ops weighted operations so the
// replicated streams carry everything the follower's recovery machinery
// must survive: appends, block cuts, time anchors, occults, and purges
// with survivors (the base-moving case that forces follower resync).
func (h *replicaHarness) workload(ops int) {
	for i := 0; i < ops; i++ {
		var err error
		switch n := h.rng.Intn(100); {
		case n < 60:
			h.appendPrimary()
		case n < 72:
			_, err = h.primary.CutBlock()
		case n < 80:
			_, err = h.primary.AnchorTimeWith(h.stamp.Stamp)
		case n < 88:
			if len(h.normals) == 0 {
				continue
			}
			desc := &ledger.OccultDescriptor{
				URI: replicaURI,
				JSN: h.normals[h.rng.Intn(len(h.normals))],
			}
			ms := sig.NewMultiSig(desc.Digest())
			if e := ms.SignWith(h.dba); e != nil {
				h.fatalf("sign occult: %v", e)
			}
			_, err = h.primary.Occult(desc, ms)
		default:
			base, size := h.primary.Base(), h.primary.Size()
			if size-base < 6 {
				continue
			}
			desc := &ledger.PurgeDescriptor{
				URI:   replicaURI,
				Point: base + 1 + uint64(h.rng.Intn(int(size-base-1))),
			}
			for _, jsn := range h.normals {
				if jsn >= base && jsn < desc.Point && len(desc.Survivors) < 2 && h.rng.Intn(3) == 0 {
					desc.Survivors = append(desc.Survivors, jsn)
				}
			}
			ms := sig.NewMultiSig(desc.Digest())
			if e := ms.SignWith(h.dba); e != nil {
				h.fatalf("sign purge: %v", e)
			}
			if e := ms.SignWith(h.client); e != nil {
				h.fatalf("sign purge: %v", e)
			}
			_, err = h.primary.Purge(desc, ms)
		}
		if err != nil && !benign(err) {
			h.fatalf("primary workload op: %v", err)
		}
	}
}

// converged is the same frontier predicate the ledgerdb Stack uses for
// WaitCaughtUp: size, checkpoint, and base all level with the primary.
func (h *replicaHarness) converged(pl *replica.Puller, l *ledger.Ledger) bool {
	st := pl.Status()
	return st.CaughtUp &&
		l.Size() >= h.primary.Size() &&
		st.CheckpointJSN >= h.primary.Size() &&
		l.Base() >= h.primary.Base()
}

// drive runs catch-up rounds until the follower converges or its disk
// crashes, recording the durable floor at every fully-synced moment.
// Returns the last durable observation (nil if none was reached).
func (h *replicaHarness) drive(pl *replica.Puller, l *ledger.Ledger, d *faultfs.Disk) *replicaDurable {
	var durable *replicaDurable
	for round := 0; round < 10_000; round++ {
		err := pl.RunOnce(context.Background())
		if d.Crashed() {
			return durable
		}
		if err != nil {
			h.fatalf("catch-up round on healthy disk: %v", err)
		}
		if d.AllSynced() {
			durable = &replicaDurable{size: l.Size(), base: l.Base(), height: l.Height()}
		}
		if h.converged(pl, l) {
			return durable
		}
	}
	h.fatalf("catch-up never converged: primary %d/%d, status %+v",
		h.primary.Size(), h.primary.Base(), pl.Status())
	return nil
}

// verifyFollower reopens the frozen follower image in the given crash
// mode, checks the durable floor survived, then resumes pulling from the
// same primary and requires byte-exact frontier convergence — replication
// after a follower crash is just crash recovery plus more catch-up.
func (h *replicaHarness) verifyFollower(mode faultfs.CrashMode, frozen *faultfs.Disk, durable *replicaDurable) {
	img := frozen.Image(mode)
	l2, err := h.openFollower(img)
	if err != nil {
		h.fatalf("reopen follower after crash (mode %d): %v", mode, err)
	}
	defer l2.Close()

	if d := durable; d != nil {
		if l2.Size() < d.size {
			h.fatalf("mode %d: recovered follower size %d < durable size %d", mode, l2.Size(), d.size)
		}
		if l2.Base() < d.base {
			h.fatalf("mode %d: recovered follower base %d < durable base %d", mode, l2.Base(), d.base)
		}
		if l2.Height() < d.height {
			h.fatalf("mode %d: recovered follower height %d < durable height %d", mode, l2.Height(), d.height)
		}
	}

	// Resume pulling on the recovered image: the puller must pick up from
	// whatever offset survived (resyncing past any purge barrier it
	// crashed inside) and reach the primary's exact frontier.
	pl := h.newPuller(l2)
	h.drive(pl, l2, img)
	if img.Crashed() {
		h.fatalf("mode %d: recovered image crashed again", mode)
	}
	if !h.converged(pl, l2) {
		h.fatalf("mode %d: resumed follower never converged: %+v", mode, pl.Status())
	}

	// Frontier bytes, not just counts: the follower's cached checkpoint
	// must carry the primary's roots, which commit to every byte of the
	// journal, clue, and state streams.
	pst, err := h.primary.State()
	if err != nil {
		h.fatalf("mode %d: primary state: %v", mode, err)
	}
	fst, err := l2.State()
	if err != nil {
		h.fatalf("mode %d: follower state: %v", mode, err)
	}
	if fst.JSN != pst.JSN || fst.JournalRoot != pst.JournalRoot ||
		fst.ClueRoot != pst.ClueRoot || fst.StateRoot != pst.StateRoot {
		h.fatalf("mode %d: frontier diverged:\n  primary  jsn=%d fam=%x clue=%x state=%x\n  follower jsn=%d fam=%x clue=%x state=%x",
			mode,
			pst.JSN, pst.JournalRoot, pst.ClueRoot, pst.StateRoot,
			fst.JSN, fst.JournalRoot, fst.ClueRoot, fst.StateRoot)
	}
	if l2.Size() != h.primary.Size() || l2.Base() != h.primary.Base() || l2.Height() != h.primary.Height() {
		h.fatalf("mode %d: frontier counts diverged: follower %d/%d/%d, primary %d/%d/%d",
			mode, l2.Size(), l2.Base(), l2.Height(),
			h.primary.Size(), h.primary.Base(), h.primary.Height())
	}

	// Every surviving journal is readable (occulted/purged ones answer
	// with their honest sentinel, never a torn frame).
	for jsn := l2.Base(); jsn < l2.Size(); jsn++ {
		if _, err := l2.GetJournal(jsn); err != nil && !benign(err) {
			h.fatalf("mode %d: journal %d unreadable on recovered follower: %v", mode, jsn, err)
		}
	}

	// Recovery may not leave the pair poisoned: new primary work must
	// still replicate through the recovered follower.
	h.appendPrimary()
	h.drive(pl, l2, img)
	if !h.converged(pl, l2) {
		h.fatalf("mode %d: recovered follower rejected fresh work: %+v", mode, pl.Status())
	}
}

func runReplicaIteration(t *testing.T, seed int64, iter int) {
	rng := rand.New(rand.NewSource(seed + int64(iter)*1_000_003))
	repro := fmt.Sprintf("repro: CRASHTEST_SEED=%d REPLICA_CRASHTEST_ITER=%d go test -run TestReplicaCrashTorture ./internal/integration/crashtest", seed, iter)
	h := newReplicaHarness(t, rng, repro)

	// A primary worth replicating: guaranteed journals first, then the
	// weighted mix (occults, purges, blocks, anchors).
	for i := 0; i < 8; i++ {
		h.appendPrimary()
	}
	h.workload(10 + rng.Intn(25))

	// Probe: one clean catch-up on its own disk measures the total byte
	// cost of replicating this primary. Same knobs, same primary, same
	// empty start — the crashed follower below writes the identical
	// sequence, so any offset in (0, total] lands mid-catch-up.
	probe := faultfs.NewDisk()
	lp, err := h.openFollower(probe)
	if err != nil {
		h.fatalf("open probe follower: %v", err)
	}
	h.drive(h.newPuller(lp), lp, probe)
	total := probe.BytesWritten()
	lp.Close()
	if total <= 0 {
		h.fatalf("probe catch-up wrote no bytes")
	}

	// The real follower: crash armed at a measured offset inside the
	// catch-up window (it can cut mid-frame, mid-segment-header, or
	// between a write and its fsync — even during the initial open).
	cut := 1 + rng.Int63n(total)
	d := faultfs.NewDisk()
	d.CrashAtByte(cut)
	var durable *replicaDurable
	lf, err := h.openFollower(d)
	switch {
	case err == nil:
		durable = h.drive(h.newPuller(lf), lf, d)
		lf.Close()
	case d.Crashed():
		// The cut landed inside the follower's own genesis writes; the
		// frozen image is still a valid crash state to recover from.
	default:
		h.fatalf("open crash follower on healthy disk: %v", err)
	}
	if !d.Crashed() {
		d.CrashNow() // armed offset fell in the probe's final unreached write
	}

	// Both crash models recover from the same frozen image. TornWrite
	// first: its image is a superset of what DropUnsynced preserves.
	h.verifyFollower(faultfs.TornWrite, d, durable)
	h.verifyFollower(faultfs.DropUnsynced, d, durable)
}

// TestReplicaCrashTorture kills a catching-up follower at measured byte
// offsets (120 iterations by default, REPLICA_CRASHTEST_ITERS overrides;
// each iteration verifies both crash models) and requires the reopened
// follower to converge to the primary's exact frontier bytes.
// CRASHTEST_SEED pins the PRNG, REPLICA_CRASHTEST_ITER replays one
// failing iteration from a repro line.
func TestReplicaCrashTorture(t *testing.T) {
	seed := int64(envInt("CRASHTEST_SEED", 0xC0FFEE))
	if s := os.Getenv("REPLICA_CRASHTEST_ITER"); s != "" {
		iter, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad REPLICA_CRASHTEST_ITER %q", s)
		}
		runReplicaIteration(t, seed, iter)
		return
	}
	iters := envInt("REPLICA_CRASHTEST_ITERS", 120)
	if testing.Short() {
		iters = 20
	}
	const shards = 4
	perShard := (iters + shards - 1) / shards
	for s := 0; s < shards; s++ {
		first, last := s*perShard, (s+1)*perShard
		if last > iters {
			last = iters
		}
		if first >= last {
			break
		}
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := first; i < last; i++ {
				runReplicaIteration(t, seed, i)
			}
		})
	}
}
