package shardtest

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"ledgerdb/internal/client"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/sig"
)

// TestShardedQueryAndAbsence drives the rich-read surface through the
// router: a prefix query fans to every shard and merges independently
// verified per-shard results; exact absence routes to the one shard
// that would own the clue; prefix absence needs all shards to prove
// their clue sets clean; and asking for the absence of a live clue is
// refused with the 409 the client classifies as "present".
func TestShardedQueryAndAbsence(t *testing.T) {
	tp := newTopology(t, 3)

	type doc struct {
		shard   int
		jsn     uint64
		clue    string
		payload string
	}
	var docs []doc
	seen := make(map[int]bool)
	for i := 0; i < 24; i++ {
		clue := fmt.Sprintf("inv/%03d", i)
		payload := fmt.Sprintf("doc-%d", i)
		s, rc, err := tp.cli.AppendRouted([]byte(payload), clue)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		docs = append(docs, doc{shard: s, jsn: rc.JSN, clue: clue, payload: payload})
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("24 clues landed on %d shard(s); want spread", len(seen))
	}

	// Prefix query through the router: every committed clue comes back,
	// each shard's result verified against the pinned LSP key.
	recs, err := tp.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: "inv/"})
	if err != nil {
		t.Fatalf("routed prefix query: %v", err)
	}
	if len(recs) != len(docs) {
		t.Fatalf("prefix query returned %d records, want %d", len(recs), len(docs))
	}
	got := make(map[string]bool, len(recs))
	for _, rec := range recs {
		for _, c := range rec.Clues {
			got[c] = true
		}
		if !strings.HasPrefix(rec.Clues[0], "inv/") {
			t.Fatalf("non-matching clue %q in verified result", rec.Clues[0])
		}
	}
	for _, d := range docs {
		if !got[d.clue] {
			t.Fatalf("clue %q missing from routed prefix query", d.clue)
		}
	}

	// Signer query: everything in this topology is signed by the one
	// member key, so the fan-out covers all shards.
	recs, err = tp.cli.QueryRecords(ledger.Query{Kind: ledger.QueryBySigner, Signer: tp.cli.Key.Public()})
	if err != nil {
		t.Fatalf("routed signer query: %v", err)
	}
	if len(recs) != len(docs) {
		t.Fatalf("signer query returned %d records, want %d", len(recs), len(docs))
	}

	// Exact absence of a clue nobody wrote: one proof, from the shard
	// that would own it (the client re-derives the route itself).
	proofs, err := tp.cli.VerifyAbsence("inv/999", false)
	if err != nil {
		t.Fatalf("exact absence: %v", err)
	}
	if len(proofs) != 1 {
		t.Fatalf("exact absence returned %d proofs, want 1", len(proofs))
	}

	// Prefix absence needs every shard's word: 3 proofs for 3 shards.
	proofs, err = tp.cli.VerifyAbsence("never-used/", true)
	if err != nil {
		t.Fatalf("prefix absence: %v", err)
	}
	if len(proofs) != 3 {
		t.Fatalf("prefix absence returned %d proofs, want 3", len(proofs))
	}

	// A live clue is not absent: the owning shard's 409 travels through
	// the router's error path intact.
	if _, err := tp.cli.VerifyAbsence(docs[0].clue, false); !client.IsPresent(err) {
		t.Fatalf("absence of live clue: err = %v, want 409 present", err)
	}

	tp.crossShardAudit()
}

// TestRouterPurgeStatusCodes is the regression for the router's error
// mapping: a record purged on its shard must come back as 410 Gone from
// the router's global-proof handler (not a generic 500), the same remap
// server.writeErr performs on the shard surface — and a query for the
// purged clue must return a verifiable absence, never a stale index
// hit.
func TestRouterPurgeStatusCodes(t *testing.T) {
	tp := newTopology(t, 3)

	victimClue := "purge-victim"
	s, rc, err := tp.cli.AppendRouted([]byte("radioactive"), victimClue)
	if err != nil {
		t.Fatal(err)
	}
	// Pad the victim's shard so the purge point stays below the ledger
	// size and a survivor record remains to query afterwards.
	survivorClue := ""
	for i := 0; survivorClue == ""; i++ {
		clue := fmt.Sprintf("survivor-%d", i)
		if tp.part.ShardOfClue(clue) == s {
			if _, _, err := tp.cli.AppendRouted([]byte("keep"), clue); err != nil {
				t.Fatal(err)
			}
			survivorClue = clue
		}
	}

	// Before the purge the global proof serves 200.
	proofURL := fmt.Sprintf("%s/v1/proof-global/%d/%d", tp.routerTS.URL, s, rc.JSN)
	resp, err := http.Get(proofURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-purge proof-global status = %d, want 200", resp.StatusCode)
	}

	// Purge everything below the survivor on the victim's shard, signed
	// by the DBA and the member whose journals are erased.
	desc := &ledger.PurgeDescriptor{URI: topoURI, Point: rc.JSN + 1, ErasePayloads: true}
	ms := sig.NewMultiSig(desc.Digest())
	for _, kp := range []*sig.KeyPair{sig.GenerateDeterministic("shardtest-dba"), tp.cli.Key} {
		if err := ms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tp.engine(s).Purge(desc, ms); err != nil {
		t.Fatalf("purge shard %d: %v", s, err)
	}

	// The regression: the router must answer 410 Gone, not 500.
	resp, err = http.Get(proofURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("post-purge proof-global status = %d, want %d", resp.StatusCode, http.StatusGone)
	}

	// The purged clue is provably absent through the router, and a
	// query for it returns a verified empty reply, not a stale hit.
	if _, err := tp.cli.VerifyAbsence(victimClue, false); err != nil {
		t.Fatalf("absence of purged clue: %v", err)
	}
	recs, err := tp.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: victimClue})
	if err != nil {
		t.Fatalf("query for purged clue: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("query for purged clue returned %d stale records", len(recs))
	}

	// The survivor is untouched.
	recs, err = tp.cli.QueryRecords(ledger.Query{Kind: ledger.QueryByPrefix, Prefix: survivorClue})
	if err != nil {
		t.Fatalf("query for survivor: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("survivor query returned %d records, want 1", len(recs))
	}
}

// TestRouterOccultStatusCode pins the occult semantics across the two
// surfaces: the shard's payload endpoint answers 451, while the global
// proof path deliberately degrades to a digest-only 200 — occulting
// seals content, never existence.
func TestRouterOccultStatusCode(t *testing.T) {
	tp := newTopology(t, 2)

	s, rc, err := tp.cli.AppendRouted([]byte("sealed"), "occult-me")
	if err != nil {
		t.Fatal(err)
	}
	desc := &ledger.OccultDescriptor{URI: topoURI, JSN: rc.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(sig.GenerateDeterministic("shardtest-dba")); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.engine(s).Occult(desc, ms); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/payload/%d", tp.srvs[s].URL, rc.JSN))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnavailableForLegalReasons {
		t.Fatalf("occulted payload status = %d, want %d", resp.StatusCode, http.StatusUnavailableForLegalReasons)
	}

	// The global proof path still serves 200 — the proof degrades to
	// digest-only rather than erroring, and existence keeps verifying.
	resp, err = http.Get(fmt.Sprintf("%s/v1/proof-global/%d/%d?payload=1", tp.routerTS.URL, s, rc.JSN))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("occulted proof-global status = %d, want 200 digest-only", resp.StatusCode)
	}
	if _, _, err := tp.cli.VerifyExistenceGlobal(s, rc.JSN, false); err != nil {
		t.Fatalf("digest-only proof after occult: %v", err)
	}
}
