// Package shardtest is the multi-shard end-to-end suite: a full
// clue-sharded topology (N engines behind hardened HTTP services, a
// digest-range router fanning out over the hardened client, and the
// coordinator folding shard fam roots into one signed global state),
// exercised from the outside through real HTTP.
//
// The suite asserts the tentpole invariants of the sharded design:
//
//   - every record appended anywhere verifies through the single proof
//     path record → shard fam root → coordinator-signed global root;
//   - killing one shard leaves the others serving, loses no
//     acknowledged receipt, and after a restart from the same stores
//     the rewired topology folds, proves, and audits cleanly;
//   - the Dasein audit passes per shard and the fold cross-check
//     (independent fam-root replay + anchor-tree rebuild) matches the
//     signed global root.
package shardtest
