package shardtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/client"
	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/index"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/netchaos"
	"ledgerdb/internal/server"
	"ledgerdb/internal/shard"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

const topoURI = "ledger://shardtest-e2e"

// swapBackend is a mutable router backend slot: the kill-and-restart
// test points it at the restarted shard's service without rebuilding
// the router (a production router would re-resolve the shard address
// the same way).
type swapBackend struct {
	mu    sync.RWMutex
	inner server.ShardBackend
}

func (b *swapBackend) get() server.ShardBackend {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.inner
}

func (b *swapBackend) set(inner server.ShardBackend) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inner = inner
}

func (b *swapBackend) SubmitRequest(req *journal.Request) (*journal.Receipt, error) {
	return b.get().SubmitRequest(req)
}

func (b *swapBackend) SubmitBatch(reqs []*journal.Request) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	return b.get().SubmitBatch(reqs)
}

func (b *swapBackend) Query(q ledger.Query) (*ledger.QueryResult, error) {
	return b.get().Query(q)
}

func (b *swapBackend) ProveAbsence(name string, prefix bool) (*ledger.AbsenceProof, error) {
	return b.get().ProveAbsence(name, prefix)
}

// topology is one full sharded deployment under test.
type topology struct {
	t      *testing.T
	clock  *logicalclock.Clock
	lsp    *sig.KeyPair
	dba    sig.PublicKey
	tl     *tledger.TLedger
	part   *shard.Partitioner
	coord  *shard.Coordinator
	stores []streamfs.Store
	blobs  []streamfs.BlobStore

	mu      sync.Mutex
	engines []*ledger.Ledger
	srvs    []*httptest.Server

	backends []*swapBackend
	routerTS *httptest.Server
	proxy    *netchaos.Proxy
	cli      *client.Client
}

func (tp *topology) engineConfig(i int) ledger.Config {
	return ledger.Config{
		URI:           topoURI,
		FractalHeight: 3, // tiny epochs: folds land mid-epoch and across seals
		BlockSize:     4,
		LSP:           tp.lsp,
		DBA:           tp.dba,
		Store:         tp.stores[i],
		Blobs:         tp.blobs[i],
		Clock:         tp.clock.Tick,
		PipelineDepth: 8,
	}
}

// shardService stands up shard i's HTTP surface and the hardened client
// the router forwards through. Each service carries a fresh sidecar
// index (memory-backed, rebuilt cold from the engine at open), so every
// restart also exercises the index-is-cache rebuild path.
func (tp *topology) shardService(i int) (*httptest.Server, *client.Client) {
	srv := server.NewWithOptions(tp.engine(i), tp.tl, server.Options{MaxInFlight: 64})
	ix, err := index.Open(tp.engine(i), streamfs.NewMemory())
	if err != nil {
		tp.t.Fatalf("open index for shard %d: %v", i, err)
	}
	srv.Index = ix
	ts := httptest.NewServer(srv)
	cli := &client.Client{
		BaseURL:      ts.URL,
		LSP:          tp.lsp.Public(),
		URI:          topoURI,
		Retries:      4,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Timeout:      10 * time.Second,
	}
	return ts, cli
}

func (tp *topology) engine(i int) *ledger.Ledger {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.engines[i]
}

func newTopology(t *testing.T, n int) *topology {
	t.Helper()
	tp := &topology{
		t:     t,
		clock: logicalclock.New(500_000),
		lsp:   sig.GenerateDeterministic("shardtest-lsp"),
		dba:   sig.GenerateDeterministic("shardtest-dba").Public(),
	}
	tl, err := tledger.New(tledger.Config{
		Clock:     tp.clock.Now,
		Tolerance: 1_000,
		TSA:       tsa.NewPool(tsa.New("shardtest-tsa", tsa.Options{Clock: tp.clock.Now})),
	})
	if err != nil {
		t.Fatal(err)
	}
	tp.tl = tl
	tp.part, err = shard.NewPartitioner(n)
	if err != nil {
		t.Fatal(err)
	}
	tp.stores = make([]streamfs.Store, n)
	tp.blobs = make([]streamfs.BlobStore, n)
	tp.engines = make([]*ledger.Ledger, n)
	tp.srvs = make([]*httptest.Server, n)
	tp.backends = make([]*swapBackend, n)
	for i := 0; i < n; i++ {
		tp.stores[i] = streamfs.NewMemory()
		tp.blobs[i] = streamfs.NewMemoryBlobs()
		l, err := ledger.Open(tp.engineConfig(i))
		if err != nil {
			t.Fatal(err)
		}
		tp.engines[i] = l
	}
	tp.coord = shard.NewCoordinator(topoURI, tp.engines, sig.GenerateDeterministic("shardtest-coord"), tp.clock.Now)
	t.Cleanup(tp.coord.Stop)

	routerBackends := make([]server.ShardBackend, n)
	for i := 0; i < n; i++ {
		ts, cli := tp.shardService(i)
		tp.srvs[i] = ts
		t.Cleanup(ts.Close)
		tp.backends[i] = &swapBackend{inner: cli}
		routerBackends[i] = tp.backends[i]
	}
	rt, err := server.NewRouter(tp.coord, tp.part, routerBackends)
	if err != nil {
		t.Fatal(err)
	}
	tp.routerTS = httptest.NewServer(rt)
	t.Cleanup(tp.routerTS.Close)

	tp.proxy = netchaos.NewProxy(http.DefaultTransport)
	tp.cli = &client.Client{
		BaseURL:      tp.routerTS.URL,
		HTTP:         &http.Client{Transport: tp.proxy},
		Key:          sig.GenerateDeterministic("shardtest-member"),
		LSP:          tp.lsp.Public(),
		Coordinator:  tp.coord.PublicKey(),
		URI:          topoURI,
		Retries:      6,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Timeout:      10 * time.Second,
	}
	t.Cleanup(func() {
		for i := range tp.engines {
			tp.engine(i).Close()
		}
	})
	return tp
}

// killShard closes shard i's service and engine, simulating a crash of
// that node (durable streams survive in the memory store).
func (tp *topology) killShard(i int) {
	tp.t.Helper()
	tp.srvs[i].Close()
	if err := tp.engine(i).Close(); err != nil {
		tp.t.Fatalf("close shard %d: %v", i, err)
	}
}

// restartShard reopens shard i from its surviving stores, rewires the
// coordinator slot, and swaps the router backend to the new service.
func (tp *topology) restartShard(i int) {
	tp.t.Helper()
	re, err := ledger.Open(tp.engineConfig(i))
	if err != nil {
		tp.t.Fatalf("reopen shard %d: %v", i, err)
	}
	tp.mu.Lock()
	tp.engines[i] = re
	tp.mu.Unlock()
	tp.coord.SetShard(i, re)
	ts, cli := tp.shardService(i)
	tp.srvs[i] = ts
	tp.t.Cleanup(ts.Close)
	tp.backends[i].set(cli)
}

// crossShardAudit is the auditor's fold check: replay every shard's
// digest stream to the folded size, compare each recomputed fam root
// with the fold's head, rebuild the anchor tree independently, and
// match it against the coordinator-signed global root.
func (tp *topology) crossShardAudit() {
	tp.t.Helper()
	cfg := audit.Config{LSP: tp.lsp.Public(), DBA: tp.dba, TrustedTSA: []sig.PublicKey{tp.tl.Public()}}
	for i := range tp.engines {
		if _, err := audit.Audit(tp.engine(i), nil, cfg); err != nil {
			tp.t.Fatalf("shard %d audit: %v", i, err)
		}
	}
	f, err := tp.coord.Fold()
	if err != nil {
		tp.t.Fatal(err)
	}
	if err := f.State.Verify(tp.coord.PublicKey()); err != nil {
		tp.t.Fatal(err)
	}
	recomputed := make([]ledger.FamHead, len(f.Heads))
	for i, h := range f.Heads {
		if h.Size == 0 {
			continue
		}
		root, err := tp.engine(i).FamRootAt(h.Size)
		if err != nil {
			tp.t.Fatalf("shard %d fam replay: %v", i, err)
		}
		if root != h.Root {
			tp.t.Fatalf("shard %d: replayed root differs from folded head at size %d", i, h.Size)
		}
		recomputed[i] = ledger.FamHead{Size: h.Size, Root: root}
	}
	if got := shard.FoldRoot(recomputed); got != f.State.Root {
		tp.t.Fatalf("anchor tree rebuild %s differs from signed root %s", got, f.State.Root)
	}
}

// accepted is one journal the member holds a verified receipt for.
type accepted struct {
	shard   int
	jsn     uint64
	txHash  hashutil.Digest
	payload []byte
}

// TestShardedE2E drives the full topology over real HTTP: routed
// appends, the fan-out batch path, global proofs for every acknowledged
// record, owning-shard lineage reads, and the cross-shard audit.
func TestShardedE2E(t *testing.T) {
	tp := newTopology(t, 3)

	var committed []accepted
	seen := make(map[int]int)
	for i := 0; i < 40; i++ {
		payload := []byte(fmt.Sprintf("doc-%d", i))
		s, rc, err := tp.cli.AppendRouted(payload, fmt.Sprintf("clue-%d", i%9))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		committed = append(committed, accepted{shard: s, jsn: rc.JSN, txHash: rc.TxHash, payload: payload})
		seen[s]++
	}
	if len(seen) < 2 {
		t.Fatalf("40 clues landed on %d shard(s); want spread", len(seen))
	}

	// The fan-out batch path: every payload committed exactly once.
	payloads := make([][]byte, 12)
	clues := make([][]string, 12)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batch-%d", i))
		clues[i] = []string{fmt.Sprintf("batch-clue-%d", i)}
	}
	receipts, _, err := tp.cli.AppendBatchSharded(payloads, clues)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	var covered uint64
	for s, br := range receipts {
		covered += br.Count
		for j := uint64(0); j < br.Count; j++ {
			committed = append(committed, accepted{shard: s, jsn: br.FirstJSN + j})
		}
	}
	if covered != uint64(len(payloads)) {
		t.Fatalf("batch receipts cover %d, want %d", covered, len(payloads))
	}

	// The tentpole: one proof path per record, from any shard to the
	// coordinator-signed global root.
	if _, err := tp.cli.GlobalState(); err != nil {
		t.Fatalf("global state: %v", err)
	}
	for _, ar := range committed {
		rec, payload, err := tp.cli.VerifyExistenceGlobal(ar.shard, ar.jsn, true)
		if err != nil {
			t.Fatalf("global proof (%d, %d): %v", ar.shard, ar.jsn, err)
		}
		if ar.payload != nil && !bytes.Equal(payload, ar.payload) {
			t.Fatalf("global proof (%d, %d): payload mismatch", ar.shard, ar.jsn)
		}
		if ar.txHash != (hashutil.Digest{}) && rec.TxHash() != ar.txHash {
			t.Fatalf("global proof (%d, %d): tx-hash differs from receipt", ar.shard, ar.jsn)
		}
	}

	// Clue lineage lives wholly on the owning shard.
	sIdx, nShards, err := tp.cli.ShardOf("clue-4")
	if err != nil {
		t.Fatal(err)
	}
	if nShards != 3 {
		t.Fatalf("topology reports %d shards", nShards)
	}
	shardCli := tp.cli.Clone()
	shardCli.BaseURL = tp.srvs[sIdx].URL
	recs, err := shardCli.VerifyClue("clue-4", 0, 0)
	if err != nil {
		t.Fatalf("lineage on shard %d: %v", sIdx, err)
	}
	if len(recs) == 0 {
		t.Fatal("empty lineage for a clue that committed")
	}

	tp.crossShardAudit()
}

// TestKillOneShardChaos is the failure-semantics scenario: one shard
// dies mid-workload (with network faults injected on the client side),
// the others keep serving, no acknowledged receipt is lost, and after a
// restart from the same stores the rewired topology proves and audits
// cleanly — including records committed before the crash.
func TestKillOneShardChaos(t *testing.T) {
	tp := newTopology(t, 3)
	rng := rand.New(rand.NewSource(7))

	var committed []accepted
	appendOne := func(i int) error {
		payload := []byte(fmt.Sprintf("doc-%d", i))
		s, rc, err := tp.cli.AppendRouted(payload, fmt.Sprintf("clue-%d", i))
		if err != nil {
			return err
		}
		committed = append(committed, accepted{shard: s, jsn: rc.JSN, txHash: rc.TxHash, payload: payload})
		return nil
	}
	for i := 0; i < 30; i++ {
		if err := appendOne(i); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := tp.coord.Fold(); err != nil {
		t.Fatal(err)
	}

	// Kill the shard owning the most records; chaos-arm the client.
	counts := make(map[int]int)
	for _, ar := range committed {
		counts[ar.shard]++
	}
	victim := 0
	for s, c := range counts {
		if c > counts[victim] {
			victim = s
		}
	}
	tp.killShard(victim)
	tp.proxy.ArmSchedule(netchaos.RandomSchedule(rng, 32))

	// During the outage: appends routed to the dead shard must fail
	// loudly (no forged receipts); the survivors keep committing.
	okOther, failVictim := 0, 0
	for i := 100; i < 140; i++ {
		clue := fmt.Sprintf("clue-%d", i)
		target := tp.part.ShardOfClue(clue)
		err := appendOne(i)
		switch {
		case err == nil:
			if target == victim {
				t.Fatalf("append to killed shard %d succeeded", victim)
			}
			okOther++
		case target == victim:
			failVictim++
		default:
			// Survivor appends may still fail under injected chaos; they
			// must at least be classified client errors.
			var te *client.TamperError
			if !errors.Is(err, client.ErrHTTP) && !errors.As(err, &te) {
				t.Fatalf("unclassified survivor failure: %v", err)
			}
		}
	}
	if okOther == 0 {
		t.Fatal("no survivor append succeeded during the outage")
	}
	if failVictim == 0 {
		t.Fatal("workload never hit the killed shard; widen the clue range")
	}
	tp.proxy.Clear()

	// Global proofs for records on the dead shard keep verifying: folds
	// read the closed engine's surviving state.
	for _, ar := range committed {
		if _, _, err := tp.cli.VerifyExistenceGlobal(ar.shard, ar.jsn, true); err != nil {
			t.Fatalf("proof (%d, %d) during outage: %v", ar.shard, ar.jsn, err)
		}
	}

	// Restart from the same stores, rewire, and go again: the recovered
	// shard accepts appends and every old receipt still proves globally.
	tp.restartShard(victim)
	for i := 200; i < 215; i++ {
		if err := appendOne(i); err != nil {
			t.Fatalf("post-restart append %d: %v", i, err)
		}
	}
	for _, ar := range committed {
		rec, payload, err := tp.cli.VerifyExistenceGlobal(ar.shard, ar.jsn, true)
		if err != nil {
			t.Fatalf("proof (%d, %d) after restart: %v", ar.shard, ar.jsn, err)
		}
		if rec.TxHash() != ar.txHash {
			t.Fatalf("(%d, %d): tx-hash changed across restart", ar.shard, ar.jsn)
		}
		if !bytes.Equal(payload, ar.payload) {
			t.Fatalf("(%d, %d): payload changed across restart", ar.shard, ar.jsn)
		}
	}

	tp.crossShardAudit()
}

// TestSingleShardDegenerateTopology pins the 1-shard case: the router
// passes through, shard indexes are always 0, and global proofs verify
// — byte-for-byte the single-node deployment plus a signature.
func TestSingleShardDegenerateTopology(t *testing.T) {
	tp := newTopology(t, 1)
	for i := 0; i < 10; i++ {
		s, rc, err := tp.cli.AppendRouted([]byte(fmt.Sprintf("solo-%d", i)), "solo")
		if err != nil {
			t.Fatal(err)
		}
		if s != 0 {
			t.Fatalf("1-shard topology routed to %d", s)
		}
		if _, _, err := tp.cli.VerifyExistenceGlobal(0, rc.JSN, true); err != nil {
			t.Fatal(err)
		}
	}
	tp.crossShardAudit()
}
