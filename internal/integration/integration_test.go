// Package integration_test exercises whole-system scenarios that no
// single package test covers: several tenant ledgers sharing one public
// T-Ledger (the two-layer time-notary architecture of §III-B2), with
// mutations, audits, restarts, and time proofs interleaved.
package integration_test

import (
	"fmt"
	"testing"

	"ledgerdb/internal/audit"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

// world is a multi-tenant deployment: one TSA, one shared T-Ledger, and
// n tenant ledgers with their own LSPs, DBAs, and clients.
type world struct {
	clock   *logicalclock.Clock
	tsa     *tsa.Authority
	tl      *tledger.TLedger
	tenants []*tenant
}

type tenant struct {
	uri    string
	l      *ledger.Ledger
	lsp    *sig.KeyPair
	dba    *sig.KeyPair
	client *sig.KeyPair
	cfg    ledger.Config
	nonce  uint64
}

func newWorld(t *testing.T, tenants int) *world {
	t.Helper()
	w := &world{clock: logicalclock.New(1_000_000)}
	w.tsa = tsa.New("shared", tsa.Options{Clock: w.clock.Now})
	tl, err := tledger.New(tledger.Config{
		Clock:     w.clock.Now,
		Tolerance: 1_000,
		TSA:       tsa.NewPool(w.tsa),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.tl = tl
	for i := 0; i < tenants; i++ {
		tn := &tenant{
			uri:    fmt.Sprintf("ledger://tenant-%d", i),
			lsp:    sig.GenerateDeterministic(fmt.Sprintf("int/lsp/%d", i)),
			dba:    sig.GenerateDeterministic(fmt.Sprintf("int/dba/%d", i)),
			client: sig.GenerateDeterministic(fmt.Sprintf("int/client/%d", i)),
		}
		tn.cfg = ledger.Config{
			URI:           tn.uri,
			FractalHeight: 3,
			BlockSize:     4,
			LSP:           tn.lsp,
			DBA:           tn.dba.Public(),
			Store:         streamfs.NewMemory(),
			Blobs:         streamfs.NewMemoryBlobs(),
			Clock:         w.clock.Tick,
		}
		l, err := ledger.Open(tn.cfg)
		if err != nil {
			t.Fatal(err)
		}
		tn.l = l
		w.tenants = append(w.tenants, tn)
	}
	return w
}

func (tn *tenant) append(t *testing.T, payload string, clues ...string) *journal.Receipt {
	t.Helper()
	tn.nonce++
	req := &journal.Request{
		LedgerURI: tn.uri,
		Type:      journal.TypeNormal,
		Clues:     clues,
		Payload:   []byte(payload),
		Nonce:     tn.nonce,
	}
	if err := req.Sign(tn.client); err != nil {
		t.Fatal(err)
	}
	r, err := tn.l.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (tn *tenant) anchorVia(t *testing.T, w *world) *journal.Receipt {
	t.Helper()
	r, err := tn.l.AnchorTimeWith(w.tl.StampFunc(tn.uri, tn.l.Clock()))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (tn *tenant) auditCfg(w *world) audit.Config {
	return audit.Config{
		LSP:        tn.lsp.Public(),
		DBA:        tn.dba.Public(),
		TrustedTSA: []sig.PublicKey{w.tl.Public(), w.tsa.Public()},
	}
}

func TestMultiTenantTimeNotary(t *testing.T) {
	w := newWorld(t, 3)
	// Interleaved activity across tenants, with periodic anchoring and
	// shared finalizations every Δτ.
	for round := 0; round < 4; round++ {
		for i, tn := range w.tenants {
			for k := 0; k < 3+i; k++ {
				tn.append(t, fmt.Sprintf("r%d-t%d-k%d", round, i, k), fmt.Sprintf("asset-%d", i))
			}
			tn.anchorVia(t, w)
		}
		w.clock.Advance(1_000)
		if _, err := w.tl.Finalize(); err != nil {
			t.Fatal(err)
		}
	}
	// The shared T-Ledger accumulated every tenant's anchors.
	if w.tl.Size() != 12 {
		t.Fatalf("t-ledger entries = %d, want 12", w.tl.Size())
	}
	// Every tenant audits clean with the shared trust anchors.
	for i, tn := range w.tenants {
		rep, err := audit.Audit(tn.l, nil, tn.auditCfg(w))
		if err != nil {
			t.Fatalf("tenant %d audit: %v", i, err)
		}
		if rep.TimeJournals != 4 {
			t.Fatalf("tenant %d time journals = %d", i, rep.TimeJournals)
		}
	}
	// Every T-Ledger entry has a judicially bounded time proof.
	trusted := []sig.PublicKey{w.tsa.Public()}
	for seq := uint64(0); seq < w.tl.Size(); seq++ {
		proof, err := w.tl.ProveTime(seq)
		if err != nil {
			t.Fatalf("ProveTime(%d): %v", seq, err)
		}
		nb, na, err := tledger.VerifyTimeProof(proof, trusted)
		if err != nil {
			t.Fatalf("VerifyTimeProof(%d): %v", seq, err)
		}
		if na <= nb && nb != 0 {
			t.Fatalf("entry %d bounds inverted: (%d, %d]", seq, nb, na)
		}
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	w := newWorld(t, 2)
	a, b := w.tenants[0], w.tenants[1]
	ra := a.append(t, "tenant-a-data", "K")
	b.append(t, "tenant-b-data", "K")

	// A proof from tenant A must not verify under tenant B's LSP.
	pa, err := a.l.ProveExistence(ra.JSN, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.VerifyExistence(pa, b.lsp.Public()); err == nil {
		t.Fatal("tenant A proof verified under tenant B's LSP")
	}
	if _, err := ledger.VerifyExistence(pa, a.lsp.Public()); err != nil {
		t.Fatal(err)
	}
	// Same clue name, different ledgers: lineages are independent.
	la, _ := a.l.ListClue("K")
	lb, _ := b.l.ListClue("K")
	if len(la) != 1 || len(lb) != 1 {
		t.Fatalf("lineages leaked across tenants: %d, %d", len(la), len(lb))
	}
}

func TestMultiTenantMutationsAndRestart(t *testing.T) {
	w := newWorld(t, 2)
	a, b := w.tenants[0], w.tenants[1]
	for i := 0; i < 10; i++ {
		a.append(t, fmt.Sprintf("a-%d", i), "trail")
		b.append(t, fmt.Sprintf("b-%d", i), "trail")
	}
	// Tenant A purges; tenant B occults. Neither affects the other.
	pdesc := &ledger.PurgeDescriptor{URI: a.uri, Point: 5, ErasePayloads: true}
	pms := sig.NewMultiSig(pdesc.Digest())
	for _, kp := range []*sig.KeyPair{a.dba, a.client} {
		if err := pms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.l.Purge(pdesc, pms); err != nil {
		t.Fatal(err)
	}
	odesc := &ledger.OccultDescriptor{URI: b.uri, JSN: 3}
	oms := sig.NewMultiSig(odesc.Digest())
	if err := oms.SignWith(b.dba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.l.Occult(odesc, oms); err != nil {
		t.Fatal(err)
	}
	a.anchorVia(t, w)
	b.anchorVia(t, w)
	w.clock.Advance(1_000)
	if _, err := w.tl.Finalize(); err != nil {
		t.Fatal(err)
	}

	// Both audit clean, then both recover to identical roots.
	for i, tn := range w.tenants {
		if _, err := audit.Audit(tn.l, nil, tn.auditCfg(w)); err != nil {
			t.Fatalf("tenant %d audit: %v", i, err)
		}
		before, err := tn.l.State()
		if err != nil {
			t.Fatal(err)
		}
		l2, err := ledger.Open(tn.cfg)
		if err != nil {
			t.Fatalf("tenant %d reopen: %v", i, err)
		}
		after, err := l2.State()
		if err != nil {
			t.Fatal(err)
		}
		if before.JournalRoot != after.JournalRoot || before.ClueRoot != after.ClueRoot {
			t.Fatalf("tenant %d roots diverged across restart", i)
		}
		// Re-audit the recovered instance.
		if _, err := audit.Audit(l2, nil, tn.auditCfg(w)); err != nil {
			t.Fatalf("tenant %d post-recovery audit: %v", i, err)
		}
	}
	if a.l.Base() != 5 {
		t.Fatalf("tenant A base = %d", a.l.Base())
	}
	if b.l.Base() != 0 {
		t.Fatalf("tenant B base moved: %d", b.l.Base())
	}
}
