// Package tsa implements the Time Stamp Authority of the threat model
// (§II-B): the one third party LedgerDB trusts, which attaches a credible,
// signed timestamp to a submitted digest (Protocol 3, step 1).
//
// A Pool aggregates several independent authorities ("we utilize a pool
// of independent TSA services from different authorized entities to
// further enhance system availability", §III-B1): stamping rotates
// through healthy members and fails over on error.
package tsa

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/sig"
)

// Errors returned by this package.
var (
	ErrUnavailable = errors.New("tsa: no authority available")
)

// Authority is a single TSA service.
type Authority struct {
	name  string
	key   *sig.KeyPair
	clock func() int64
	// latency simulates the round-trip cost of a real TSA interaction
	// ("directly interacting with TSA is inherently costly", §VI-A). Zero
	// means no artificial delay.
	latency time.Duration

	mu     sync.Mutex
	down   bool
	issued uint64
}

// Options configures an Authority.
type Options struct {
	// Clock supplies the universal timestamp; nil means wall clock.
	Clock func() int64
	// Latency is the simulated per-stamp round trip.
	Latency time.Duration
}

// New creates a TSA with a deterministic key derived from its name (test
// and benchmark identities; production would load CA-certified keys).
func New(name string, opts Options) *Authority {
	clock := opts.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Authority{
		name:    name,
		key:     sig.GenerateDeterministic("tsa/" + name),
		clock:   clock,
		latency: opts.Latency,
	}
}

// Name returns the authority's display name.
func (a *Authority) Name() string { return a.name }

// Public returns the authority's public key, to be certified by a CA and
// pinned by verifiers (Prerequisite 3).
func (a *Authority) Public() sig.PublicKey { return a.key.Public() }

// Issued returns the number of attestations granted.
func (a *Authority) Issued() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.issued
}

// SetDown marks the authority unavailable (availability testing).
func (a *Authority) SetDown(down bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.down = down
}

// Stamp assigns the current timestamp to a digest and signs the pair.
func (a *Authority) Stamp(digest hashutil.Digest) (*journal.TimeAttestation, error) {
	a.mu.Lock()
	if a.down {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is down", ErrUnavailable, a.name)
	}
	a.issued++
	a.mu.Unlock()
	if a.latency > 0 {
		time.Sleep(a.latency)
	}
	ta := &journal.TimeAttestation{
		Digest:    digest,
		Timestamp: a.clock(),
		TSAPK:     a.key.Public(),
	}
	s, err := a.key.Sign(ta.SignedDigest())
	if err != nil {
		return nil, err
	}
	ta.TSASig = s
	return ta, nil
}

// Pool is a set of independent authorities with failover.
type Pool struct {
	mu      sync.Mutex
	members []*Authority
	next    int
}

// NewPool builds a pool over the given authorities.
func NewPool(members ...*Authority) *Pool {
	return &Pool{members: members}
}

// Members returns the pool's authorities.
func (p *Pool) Members() []*Authority {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Authority(nil), p.members...)
}

// Keys returns every member's public key (for CA certification).
func (p *Pool) Keys() []sig.PublicKey {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]sig.PublicKey, len(p.members))
	for i, m := range p.members {
		out[i] = m.Public()
	}
	return out
}

// Stamp tries pool members round-robin until one succeeds.
func (p *Pool) Stamp(digest hashutil.Digest) (*journal.TimeAttestation, error) {
	p.mu.Lock()
	n := len(p.members)
	start := p.next
	p.next = (p.next + 1) % max(n, 1)
	members := p.members
	p.mu.Unlock()
	if n == 0 {
		return nil, ErrUnavailable
	}
	var lastErr error
	for i := 0; i < n; i++ {
		ta, err := members[(start+i)%n].Stamp(digest)
		if err == nil {
			return ta, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: all %d authorities failed: %v", ErrUnavailable, n, lastErr)
}
