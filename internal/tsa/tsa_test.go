package tsa

import (
	"errors"
	"testing"

	"ledgerdb/internal/hashutil"
)

func fixedClock(t int64) func() int64 { return func() int64 { return t } }

func TestStampAndVerify(t *testing.T) {
	a := New("ntsc", Options{Clock: fixedClock(5000)})
	d := hashutil.Leaf([]byte("ledger-root"))
	ta, err := a.Stamp(d)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Timestamp != 5000 || ta.Digest != d || ta.TSAPK != a.Public() {
		t.Fatalf("attestation fields: %+v", ta)
	}
	if err := ta.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if a.Issued() != 1 {
		t.Fatalf("Issued = %d", a.Issued())
	}
}

func TestStampWhileDown(t *testing.T) {
	a := New("x", Options{Clock: fixedClock(1)})
	a.SetDown(true)
	if _, err := a.Stamp(hashutil.Zero); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	a.SetDown(false)
	if _, err := a.Stamp(hashutil.Zero); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicIdentity(t *testing.T) {
	a := New("same", Options{Clock: fixedClock(1)})
	b := New("same", Options{Clock: fixedClock(1)})
	c := New("other", Options{Clock: fixedClock(1)})
	if a.Public() != b.Public() {
		t.Fatal("same name produced different keys")
	}
	if a.Public() == c.Public() {
		t.Fatal("different names produced the same key")
	}
}

func TestPoolFailover(t *testing.T) {
	a := New("a", Options{Clock: fixedClock(1)})
	b := New("b", Options{Clock: fixedClock(2)})
	p := NewPool(a, b)
	if len(p.Keys()) != 2 {
		t.Fatal("pool keys")
	}
	a.SetDown(true)
	// Every stamp must succeed via b.
	for i := 0; i < 4; i++ {
		ta, err := p.Stamp(hashutil.Leaf([]byte{byte(i)}))
		if err != nil {
			t.Fatalf("stamp %d: %v", i, err)
		}
		if ta.TSAPK != b.Public() {
			t.Fatalf("stamp %d signed by wrong authority", i)
		}
	}
	// All down: unavailable.
	b.SetDown(true)
	if _, err := p.Stamp(hashutil.Zero); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolRoundRobin(t *testing.T) {
	a := New("a", Options{Clock: fixedClock(1)})
	b := New("b", Options{Clock: fixedClock(1)})
	p := NewPool(a, b)
	for i := 0; i < 6; i++ {
		if _, err := p.Stamp(hashutil.Zero); err != nil {
			t.Fatal(err)
		}
	}
	if a.Issued() != 3 || b.Issued() != 3 {
		t.Fatalf("distribution: a=%d b=%d", a.Issued(), b.Issued())
	}
}

func TestEmptyPool(t *testing.T) {
	if _, err := NewPool().Stamp(hashutil.Zero); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
}

func TestMembers(t *testing.T) {
	a := New("a", Options{Clock: fixedClock(1)})
	p := NewPool(a)
	m := p.Members()
	if len(m) != 1 || m[0].Name() != "a" {
		t.Fatalf("members = %v", m)
	}
}
