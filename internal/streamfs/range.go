package streamfs

import "errors"

// errStopRange terminates a ReadRange iteration once a cap is hit.
var errStopRange = errors.New("streamfs: stop range")

// ReadRange reads up to maxRecords consecutive records starting at
// from, stopping early once the accumulated payload bytes reach
// maxBytes (maxBytes <= 0 means unbounded). It is the segment-reader
// seam for replication pulls: the server answers an offset-addressed
// pull by slicing a stream with one call, and the caps bound a frame
// to what one response can carry.
//
// Returned slices are owned by the caller. from below Base yields
// ErrNotFound (the caller sees a purge gap and must re-base); from at
// the stream end yields an empty, nil-error result.
func ReadRange(s Stream, from uint64, maxRecords, maxBytes int) ([][]byte, error) {
	if maxRecords <= 0 {
		return nil, nil
	}
	var (
		out   [][]byte
		total int
	)
	err := s.Iterate(from, func(seq uint64, rec []byte) error {
		// Iterate may hand a view of backend-owned storage (the memory
		// backend does); copy so the result outlives the stream's locks.
		cp := make([]byte, len(rec))
		copy(cp, rec)
		out = append(out, cp)
		total += len(cp)
		if len(out) >= maxRecords || (maxBytes > 0 && total >= maxBytes) {
			return errStopRange
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopRange) {
		return nil, err
	}
	return out, nil
}
