package streamfs

import (
	"fmt"
	"testing"

	"ledgerdb/internal/hashutil"
)

// Stream throughput bounds the ledger's raw append path (one journal
// record + one digest record per commit).

func BenchmarkAppendMemory(b *testing.B) {
	s := NewMemory()
	st, _ := s.Stream("bench")
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendDisk(b *testing.B) {
	s, err := OpenDisk(b.TempDir(), DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	st, _ := s.Stream("bench")
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadDisk(b *testing.B) {
	s, err := OpenDisk(b.TempDir(), DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	st, _ := s.Stream("bench")
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("record-%4d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Read(uint64(i*31) % n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobPutGet(b *testing.B) {
	blobs := NewMemoryBlobs()
	data := make([]byte, 4096)
	b.Run("put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data[0] = byte(i)
			data[1] = byte(i >> 8)
			key := hashutil.Sum(data)
			if err := blobs.Put(key, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
