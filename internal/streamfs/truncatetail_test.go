package streamfs

import (
	"fmt"
	"testing"
)

// TestTruncateTail covers the crash-recovery reconciliation primitive:
// dropping an unsynced suffix so sibling streams agree on one prefix.
func TestTruncateTail(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			store := open(t)
			defer store.Close()
			st, err := store.Stream("j")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 30; i++ {
				if _, err := st.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.TruncateTail(40); err != nil { // beyond end: no-op
				t.Fatalf("TruncateTail(40): %v", err)
			}
			if err := st.TruncateTail(20); err != nil {
				t.Fatalf("TruncateTail(20): %v", err)
			}
			if got := st.Len(); got != 20 {
				t.Fatalf("Len = %d, want 20", got)
			}
			if _, err := st.Read(20); err == nil {
				t.Fatal("Read(20) succeeded after tail truncation")
			}
			if b, err := st.Read(19); err != nil || string(b) != "rec-19" {
				t.Fatalf("Read(19) = %q, %v", b, err)
			}
			// Appends continue from the cut: sequences are reassigned.
			seq, err := st.Append([]byte("replacement"))
			if err != nil || seq != 20 {
				t.Fatalf("Append = %d, %v; want 20", seq, err)
			}
			if b, err := st.Read(20); err != nil || string(b) != "replacement" {
				t.Fatalf("Read(20) = %q, %v", b, err)
			}
		})
	}
}

// TestTruncateTailSegmentBoundaries exercises the disk store across
// rollovers: cuts inside a segment, exactly at a segment boundary, and
// down to the base must all leave a scannable, appendable stream.
func TestTruncateTailSegmentBoundaries(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir, DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ { // 24-byte frames over 64-byte segments: rolls often
		if _, err := st.Append([]byte(fmt.Sprintf("payload-rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, cut := range []uint64{20, 12, 3, 0} {
		if err := st.TruncateTail(cut); err != nil {
			t.Fatalf("TruncateTail(%d): %v", cut, err)
		}
		if got := st.Len(); got != cut {
			t.Fatalf("Len after cut %d = %d", cut, got)
		}
		for s := uint64(0); s < cut; s++ {
			if b, err := st.Read(s); err != nil || string(b) != fmt.Sprintf("payload-rec-%04d", s) {
				t.Fatalf("Read(%d) after cut %d = %q, %v", s, cut, b, err)
			}
		}
	}
	// Still appendable from empty, and survives a reopen.
	if seq, err := st.Append([]byte("fresh")); err != nil || seq != 0 {
		t.Fatalf("Append after cut to 0 = %d, %v", seq, err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenDisk(dir, DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	st2, err := store2.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := st2.Read(0); err != nil || string(b) != "fresh" {
		t.Fatalf("reopened Read(0) = %q, %v", b, err)
	}
	if got := st2.Len(); got != 1 {
		t.Fatalf("reopened Len = %d, want 1", got)
	}
}
