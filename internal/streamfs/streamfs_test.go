package streamfs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// backends enumerates the Store implementations under test so every
// semantic test runs against both.
func backends(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"memory": func(t *testing.T) Store { return NewMemory() },
		"disk": func(t *testing.T) Store {
			s, err := OpenDisk(t.TempDir(), DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			st, err := s.Stream("journal")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				rec := []byte(fmt.Sprintf("record-%03d", i))
				seq, err := st.Append(rec)
				if err != nil {
					t.Fatal(err)
				}
				if seq != uint64(i) {
					t.Fatalf("seq = %d, want %d", seq, i)
				}
			}
			if st.Len() != 100 {
				t.Fatalf("Len = %d", st.Len())
			}
			for i := 0; i < 100; i++ {
				got, err := st.Read(uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("record-%03d", i); string(got) != want {
					t.Fatalf("Read(%d) = %q, want %q", i, got, want)
				}
			}
		})
	}
}

func TestReadMissing(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			st, _ := s.Stream("j")
			if _, err := st.Read(0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
			st.Append([]byte("x"))
			if _, err := st.Read(1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestIterate(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			st, _ := s.Stream("j")
			for i := 0; i < 20; i++ {
				st.Append([]byte{byte(i)})
			}
			var seen []uint64
			err := st.Iterate(5, func(seq uint64, rec []byte) error {
				if rec[0] != byte(seq) {
					return fmt.Errorf("record %d has wrong payload %v", seq, rec)
				}
				seen = append(seen, seq)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != 15 || seen[0] != 5 || seen[14] != 19 {
				t.Fatalf("seen = %v", seen)
			}
			// Early stop propagates fn's error.
			stop := errors.New("stop")
			err = st.Iterate(0, func(seq uint64, _ []byte) error {
				if seq == 3 {
					return stop
				}
				return nil
			})
			if !errors.Is(err, stop) {
				t.Fatalf("err = %v, want stop", err)
			}
			if err := st.Iterate(21, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("past-end iterate err = %v", err)
			}
		})
	}
}

func TestTruncateSemantics(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			st, _ := s.Stream("j")
			for i := 0; i < 50; i++ {
				st.Append([]byte{byte(i)})
			}
			if err := st.Truncate(30); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Read(29); !errors.Is(err, ErrNotFound) {
				t.Fatalf("purged read err = %v, want ErrNotFound", err)
			}
			got, err := st.Read(30)
			if err != nil || got[0] != 30 {
				t.Fatalf("Read(30) = %v, %v", got, err)
			}
			// New appends continue the sequence.
			seq, err := st.Append([]byte{50})
			if err != nil || seq != 50 {
				t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
			}
			if st.Len() != 51 {
				t.Fatalf("Len = %d", st.Len())
			}
			// Truncate is idempotent and never moves backwards.
			if err := st.Truncate(10); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Read(29); !errors.Is(err, ErrNotFound) {
				t.Fatal("backwards truncate resurrected records")
			}
		})
	}
}

func TestStreamsIsolated(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			a, _ := s.Stream("aaa")
			b, _ := s.Stream("bbb")
			a.Append([]byte("in-a"))
			if b.Len() != 0 {
				t.Fatal("append to a visible in b")
			}
			b.Append([]byte("in-b-0"))
			b.Append([]byte("in-b-1"))
			got, _ := a.Read(0)
			if string(got) != "in-a" {
				t.Fatalf("a[0] = %q", got)
			}
			names, err := s.Streams()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 2 || names[0] != "aaa" || names[1] != "bbb" {
				t.Fatalf("Streams = %v", names)
			}
		})
	}
}

func TestInvalidStreamName(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			for _, bad := range []string{"", "UPPER", "sp ace", "sl/ash", "..", "a\x00b"} {
				if _, err := s.Stream(bad); !errors.Is(err, ErrBadName) {
					t.Fatalf("Stream(%q) err = %v, want ErrBadName", bad, err)
				}
			}
		})
	}
}

func TestRecordTooLarge(t *testing.T) {
	s := NewMemory()
	st, _ := s.Stream("j")
	if _, err := st.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDiskReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir, DiskOptions{SegmentSize: 256}) // force many segments
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Stream("journal")
	for i := 0; i < 200; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Truncate(50); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, DiskOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Stream("journal")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 200 {
		t.Fatalf("Len after reopen = %d", st2.Len())
	}
	if _, err := st2.Read(10); !errors.Is(err, ErrNotFound) {
		t.Fatal("truncation forgotten after reopen")
	}
	got, err := st2.Read(199)
	if err != nil || string(got) != "rec-0199" {
		t.Fatalf("Read(199) = %q, %v", got, err)
	}
	seq, err := st2.Append([]byte("rec-0200"))
	if err != nil || seq != 200 {
		t.Fatalf("append after reopen: %d, %v", seq, err)
	}
}

func TestDiskTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDisk(dir, DiskOptions{})
	st, _ := s.Stream("j")
	for i := 0; i < 10; i++ {
		st.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	s.Close()
	// Simulate a crash mid-append: chop bytes off the single segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "j.seg.*"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	fi, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Stream("j")
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	if st2.Len() != 9 {
		t.Fatalf("Len = %d, want 9 (last record dropped)", st2.Len())
	}
	got, err := st2.Read(8)
	if err != nil || string(got) != "rec-8" {
		t.Fatalf("Read(8) = %q, %v", got, err)
	}
	// The stream accepts new appends at the recovered sequence.
	if seq, err := st2.Append([]byte("rec-9b")); err != nil || seq != 9 {
		t.Fatalf("append after recovery: %d, %v", seq, err)
	}
}

func TestDiskInteriorCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDisk(dir, DiskOptions{})
	st, _ := s.Stream("j")
	for i := 0; i < 10; i++ {
		st.Append(bytes.Repeat([]byte{byte(i)}, 32))
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "j.seg.*"))
	// Flip one payload byte in the middle of the file.
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xFF}, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st2, err := s2.Stream("j")
	if err == nil {
		// Depending on where the flip landed, the open may succeed with a
		// repaired tail; in that case reading the flipped record must fail.
		var sawErr bool
		for i := uint64(0); i < st2.Len(); i++ {
			if _, rerr := st2.Read(i); rerr != nil {
				sawErr = true
			}
		}
		if !sawErr && st2.Len() == 10 {
			t.Fatal("interior corruption silently accepted")
		}
		return
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDiskSegmentRotationAndTruncateRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDisk(dir, DiskOptions{SegmentSize: 128})
	st, _ := s.Stream("j")
	for i := 0; i < 100; i++ {
		st.Append(make([]byte, 40))
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "j.seg.*"))
	if len(segsBefore) < 5 {
		t.Fatalf("expected many segments, got %d", len(segsBefore))
	}
	if err := st.Truncate(90); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "j.seg.*"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("Truncate removed no segment files: %d -> %d", len(segsBefore), len(segsAfter))
	}
	s.Close()
}

func TestQuickMemoryMatchesModel(t *testing.T) {
	// Property: for any sequence of appends, every record reads back.
	f := func(records [][]byte) bool {
		s := NewMemory()
		st, _ := s.Stream("q")
		for _, r := range records {
			if len(r) > MaxRecordSize {
				continue
			}
			st.Append(r)
		}
		n := st.Len()
		for i := uint64(0); i < n; i++ {
			if _, err := st.Read(i); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendsAndReads(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			defer s.Close()
			st, _ := s.Stream("conc")
			const writers, perWriter = 4, 50
			done := make(chan error, writers+1)
			for w := 0; w < writers; w++ {
				go func(w int) {
					for i := 0; i < perWriter; i++ {
						if _, err := st.Append([]byte{byte(w), byte(i)}); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(w)
			}
			// A concurrent reader scans whatever is committed so far.
			go func() {
				for i := 0; i < 200; i++ {
					n := st.Len()
					if n == 0 {
						continue
					}
					if _, err := st.Read(n - 1); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			for i := 0; i < writers+1; i++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if st.Len() != writers*perWriter {
				t.Fatalf("Len = %d, want %d", st.Len(), writers*perWriter)
			}
			// Every record is present exactly once per (writer, index).
			seen := make(map[[2]byte]bool)
			if err := st.Iterate(0, func(_ uint64, rec []byte) error {
				key := [2]byte{rec[0], rec[1]}
				if seen[key] {
					t.Fatalf("duplicate record %v", key)
				}
				seen[key] = true
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(seen) != writers*perWriter {
				t.Fatalf("saw %d distinct records", len(seen))
			}
		})
	}
}

func TestClosedStoreRejectsStream(t *testing.T) {
	s := NewMemory()
	s.Close()
	if _, err := s.Stream("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSyncEvery(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenDisk(dir, DiskOptions{SyncEvery: 2})
	st, _ := s.Stream("j")
	for i := 0; i < 5; i++ {
		if _, err := st.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
}
