package streamfs

// Zero-copy read support: RecBuf is a pooled, reference-counted record
// buffer, and BufReader is the optional Stream extension that fills one
// directly from storage with a single positioned read. The proof-serving
// path reads a journal record, decodes it (retaining nothing), and
// releases the buffer — steady-state proof serving then allocates no
// per-read payload copies. The API is mmap-shaped (a stable byte window
// plus explicit lifetime management) but implemented with pread into
// pooled memory, so it composes with any FileSystem — including the
// crash-test fault injector — without OS mmap semantics leaking into the
// seam.

import (
	"sync"
	"sync/atomic"
)

// maxPooledRecBuf bounds the buffers the pool retains (one oversized
// record must not pin megabytes for the life of the process).
const maxPooledRecBuf = 1 << 20

// RecBuf is a reference-counted record buffer. It starts with one
// reference; Release returns it to the pool when the count reaches
// zero. Callers that hand the bytes to a longer-lived consumer Retain
// first and have the consumer Release. After the final Release the
// bytes must not be touched — they will be recycled.
type RecBuf struct {
	b    []byte // full backing frame (pooled storage)
	off  int    // start of the payload view within b
	refs atomic.Int32
}

var recBufPool = sync.Pool{New: func() any { return &RecBuf{} }}

// newRecBuf returns a buffer with at least n writable bytes at off 0,
// holding one reference.
func newRecBuf(n int) *RecBuf {
	rb := recBufPool.Get().(*RecBuf)
	if cap(rb.b) < n {
		rb.b = make([]byte, n)
	} else {
		rb.b = rb.b[:n]
	}
	rb.off = 0
	rb.refs.Store(1)
	return rb
}

// Bytes returns the payload view. Valid until the final Release.
func (rb *RecBuf) Bytes() []byte { return rb.b[rb.off:] }

// Retain adds a reference.
func (rb *RecBuf) Retain() { rb.refs.Add(1) }

// Release drops a reference, recycling the buffer at zero. Releasing
// more times than Retain+1 is a bug and panics loudly rather than
// letting two readers share recycled memory.
func (rb *RecBuf) Release() {
	switch n := rb.refs.Add(-1); {
	case n == 0:
		if cap(rb.b) <= maxPooledRecBuf {
			recBufPool.Put(rb)
		}
	case n < 0:
		panic("streamfs: RecBuf over-released")
	}
}

// BufReader is the optional zero-copy extension of Stream. Backends that
// can fill a pooled buffer with a single positioned read implement it;
// ReadRecBuf adapts everything else.
type BufReader interface {
	// ReadBuf is Read into a pooled reference-counted buffer. The caller
	// owns one reference and must Release it.
	ReadBuf(seq uint64) (*RecBuf, error)
}

// ReadRecBuf reads seq from s into a RecBuf: directly when the stream
// implements BufReader, otherwise by wrapping the owned slice Read
// returns (one copy, same lifetime rules). Callers must Release.
func ReadRecBuf(s Stream, seq uint64) (*RecBuf, error) {
	if br, ok := s.(BufReader); ok {
		return br.ReadBuf(seq)
	}
	b, err := s.Read(seq)
	if err != nil {
		return nil, err
	}
	rb := recBufPool.Get().(*RecBuf)
	rb.b = b
	rb.off = 0
	rb.refs.Store(1)
	return rb, nil
}
