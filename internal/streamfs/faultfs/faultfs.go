// Package faultfs provides fault-injection machinery for crash-consistency
// testing of the streamfs disk store and the ledger recovery path.
//
// Two layers are offered:
//
//   - Disk: a simulated disk image implementing streamfs.FileSystem with
//     byte-exact fault injection — fail the Nth write, write only K of N
//     bytes then error, fail the Nth sync, and "crash now" / "crash at
//     global byte offset B" (freezing the image mid-frame or mid-header).
//     A crashed image is reopened with Image, optionally dropping every
//     unsynced suffix to model a lost write cache, and a fresh
//     streamfs.OpenDisk over it exercises the real scan/repair code.
//
//   - Store / Stream / BlobStore decorators (wrap.go): op-level failpoints
//     (fail the Nth Append, fail the Nth Sync, refuse everything after a
//     crash) for tests that script failures at the API surface rather
//     than the byte level.
//
// Everything is deterministic: faults are armed by operation/byte counts,
// never by time or randomness, so a failing torture iteration replays
// from its seed alone.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"path"
	"path/filepath"
	"sort"
	"sync"

	"ledgerdb/internal/streamfs"
)

// Errors produced by injected faults.
var (
	// ErrCrashed is returned by every mutating operation once the disk has
	// crashed (the image is frozen; only Image can revive it).
	ErrCrashed = errors.New("faultfs: disk crashed")
	// ErrInjected is the error carried by scripted write/sync/truncate
	// failures.
	ErrInjected = errors.New("faultfs: injected fault")
)

// CrashMode selects what survives a crash when the image is reopened.
type CrashMode int

const (
	// TornWrite keeps every byte written before the crash point: the
	// medium is honest but the final write may be cut mid-frame or
	// mid-header. Models a crash with write-through storage.
	TornWrite CrashMode = iota
	// DropUnsynced additionally truncates each file to its length at the
	// last successful Sync, modelling a volatile write cache lost on
	// power failure. Metadata operations (create/remove/rename) are
	// treated as immediately durable.
	DropUnsynced
)

// file is one simulated file: its bytes plus the length that had been
// made durable by the last successful sync.
type file struct {
	data   []byte
	synced int64
}

// Disk is a simulated disk image with scriptable faults. It implements
// streamfs.FileSystem. The zero value is not usable; call NewDisk.
type Disk struct {
	mu    sync.Mutex
	files map[string]*file
	dirs  map[string]bool

	written int64 // global byte counter over all data writes, in order
	crashAt int64 // crash when written would exceed this; -1 = disarmed
	crashed bool

	writeN    int64 // data writes seen so far (Write + WriteFile)
	failWrite int64 // fail this write number outright; 0 = disarmed
	shortAt   int64 // cut this write number short...
	shortLen  int   // ...after this many bytes
	syncN     int64
	failSync  int64
	truncN    int64
	failTrunc int64
}

// NewDisk returns an empty, healthy disk image.
func NewDisk() *Disk {
	return &Disk{files: make(map[string]*file), dirs: make(map[string]bool), crashAt: -1}
}

// BytesWritten returns the global count of data bytes applied so far;
// CrashAtByte offsets are in this coordinate space.
func (d *Disk) BytesWritten() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// CrashAtByte arms a crash: the write that would push the global byte
// counter past total is cut at exactly that offset (possibly mid-frame or
// mid-header) and the disk freezes. Pass a value below BytesWritten to
// crash on the very next write with zero bytes applied.
func (d *Disk) CrashAtByte(total int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = total
}

// CrashNow freezes the image immediately; every subsequent mutating
// operation fails with ErrCrashed.
func (d *Disk) CrashNow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = true
}

// Crashed reports whether the disk has frozen.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// FailNthWrite makes the nth upcoming data write (1 = next) fail with
// ErrInjected before any byte is applied.
func (d *Disk) FailNthWrite(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWrite = d.writeN + int64(n)
}

// ShortNthWrite makes the nth upcoming data write apply only k bytes and
// then fail with ErrInjected — the canonical torn write.
func (d *Disk) ShortNthWrite(n, k int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shortAt = d.writeN + int64(n)
	d.shortLen = k
}

// FailNthSync makes the nth upcoming Sync fail with ErrInjected. The
// file's synced length does not advance: under DropUnsynced the data is
// lost at the next crash, modelling dirty pages dropped by a failed
// fsync.
func (d *Disk) FailNthSync(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failSync = d.syncN + int64(n)
}

// FailNthTruncate makes the nth upcoming truncate (file-handle or
// path-level) fail with ErrInjected, leaving the bytes in place.
func (d *Disk) FailNthTruncate(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failTrunc = d.truncN + int64(n)
}

// ClearFaults disarms every pending fault (but does not un-crash).
func (d *Disk) ClearFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = -1
	d.failWrite, d.shortAt, d.shortLen, d.failSync, d.failTrunc = 0, 0, 0, 0, 0
}

// AllSynced reports whether every file's bytes are covered by a
// successful sync — i.e. the image would survive a DropUnsynced crash
// intact. The torture harness records its parity expectations only at
// moments when this holds.
func (d *Disk) AllSynced() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		if f.synced < int64(len(f.data)) {
			return false
		}
	}
	return true
}

// Image returns a fresh, healthy Disk holding a deep copy of the current
// image as a crash in the given mode would leave it. The original stays
// frozen (or untouched, if it never crashed); the copy carries no armed
// faults.
func (d *Disk) Image(mode CrashMode) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := NewDisk()
	for p, f := range d.files {
		keep := int64(len(f.data))
		if mode == DropUnsynced && f.synced < keep {
			keep = f.synced
		}
		cp := make([]byte, keep)
		copy(cp, f.data[:keep])
		n.files[p] = &file{data: cp, synced: keep}
	}
	for p := range d.dirs {
		n.dirs[p] = true
	}
	return n
}

// --- streamfs.FileSystem ---

func (d *Disk) MkdirAll(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.dirs[filepath.ToSlash(dir)] = true
	return nil
}

func (d *Disk) Glob(pattern string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pat := filepath.ToSlash(pattern)
	var out []string
	for p := range d.files {
		ok, err := path.Match(pat, p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (d *Disk) Create(p string) (streamfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	p = filepath.ToSlash(p)
	if _, ok := d.files[p]; ok {
		return nil, &fs.PathError{Op: "create", Path: p, Err: fs.ErrExist}
	}
	d.files[p] = &file{}
	return &handle{d: d, path: p, write: true}, nil
}

func (d *Disk) OpenAppend(p string) (streamfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	p = filepath.ToSlash(p)
	if _, ok := d.files[p]; !ok {
		return nil, &fs.PathError{Op: "open", Path: p, Err: fs.ErrNotExist}
	}
	return &handle{d: d, path: p, write: true}, nil
}

func (d *Disk) OpenRead(p string) (streamfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p = filepath.ToSlash(p)
	if _, ok := d.files[p]; !ok {
		return nil, &fs.PathError{Op: "open", Path: p, Err: fs.ErrNotExist}
	}
	return &handle{d: d, path: p}, nil
}

func (d *Disk) Truncate(p string, size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.truncateLocked(filepath.ToSlash(p), size)
}

func (d *Disk) truncateLocked(p string, size int64) error {
	if d.crashed {
		return ErrCrashed
	}
	d.truncN++
	if d.failTrunc != 0 && d.truncN == d.failTrunc {
		return ErrInjected
	}
	f, ok := d.files[p]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: p, Err: fs.ErrNotExist}
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
		if f.synced > size {
			f.synced = size
		}
	}
	return nil
}

func (d *Disk) Remove(p string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	p = filepath.ToSlash(p)
	if _, ok := d.files[p]; !ok {
		return &fs.PathError{Op: "remove", Path: p, Err: fs.ErrNotExist}
	}
	delete(d.files, p)
	return nil
}

func (d *Disk) Rename(oldPath, newPath string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	oldPath, newPath = filepath.ToSlash(oldPath), filepath.ToSlash(newPath)
	f, ok := d.files[oldPath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldPath, Err: fs.ErrNotExist}
	}
	delete(d.files, oldPath)
	d.files[newPath] = f
	return nil
}

func (d *Disk) WriteFile(p string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	p = filepath.ToSlash(p)
	f := &file{}
	d.files[p] = f
	n, err := d.applyWriteLocked(f, data)
	if err != nil {
		f.data = f.data[:n]
		return err
	}
	// The FileSystem contract makes WriteFile durable on success (the
	// real backend fsyncs before returning); a crash can still tear it
	// mid-write above, in which case synced stays 0 and DropUnsynced
	// discards the torn content.
	f.synced = int64(len(f.data))
	return nil
}

func (d *Disk) ReadFile(p string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[filepath.ToSlash(p)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: p, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// applyWriteLocked runs one data write through the fault gates: outright
// failure, short write, then the global-byte crash cut. It returns how
// many bytes were applied to f.
func (d *Disk) applyWriteLocked(f *file, p []byte) (int, error) {
	if d.crashed {
		return 0, ErrCrashed
	}
	d.writeN++
	if d.failWrite != 0 && d.writeN == d.failWrite {
		d.failWrite = 0
		return 0, ErrInjected
	}
	allowed := len(p)
	injected := false
	if d.shortAt != 0 && d.writeN == d.shortAt {
		d.shortAt = 0
		if d.shortLen < allowed {
			allowed = d.shortLen
		}
		injected = true
	}
	if d.crashAt >= 0 && d.written+int64(allowed) > d.crashAt {
		allowed = int(d.crashAt - d.written)
		if allowed < 0 {
			allowed = 0
		}
		d.crashed = true
	}
	f.data = append(f.data, p[:allowed]...)
	d.written += int64(allowed)
	switch {
	case d.crashed:
		return allowed, ErrCrashed
	case injected:
		return allowed, ErrInjected
	default:
		return allowed, nil
	}
}

// handle is one open file handle over the simulated disk. Write handles
// append at end-of-file, matching the O_APPEND contract of the real
// store.
type handle struct {
	d     *Disk
	path  string
	write bool
}

func (h *handle) file() (*file, error) {
	f, ok := h.d.files[h.path]
	if !ok {
		return nil, &fs.PathError{Op: "io", Path: h.path, Err: fs.ErrNotExist}
	}
	return f, nil
}

func (h *handle) Write(p []byte) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return h.d.applyWriteLocked(f, p)
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (h *handle) Size() (int64, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	return int64(len(f.data)), nil
}

func (h *handle) Truncate(size int64) error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	return h.d.truncateLocked(h.path, size)
}

func (h *handle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return ErrCrashed
	}
	h.d.syncN++
	if h.d.failSync != 0 && h.d.syncN == h.d.failSync {
		h.d.failSync = 0
		return ErrInjected
	}
	f, err := h.file()
	if err != nil {
		return err
	}
	f.synced = int64(len(f.data))
	return nil
}

func (h *handle) Close() error { return nil }
