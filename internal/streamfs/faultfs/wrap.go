package faultfs

import (
	"sync"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/streamfs"
)

// Script is a shared op-level failpoint controller for the Store, Stream,
// and BlobStore decorators. All wrappers sharing one Script count against
// the same operation counters, so a test can say "the 7th append anywhere
// in the stack fails" or "freeze the whole stack now".
type Script struct {
	mu         sync.Mutex
	appendN    int64
	failAppend int64
	syncN      int64
	failSync   int64
	putN       int64
	failPut    int64
	crashed    bool
}

// NewScript returns a controller with no armed failpoints.
func NewScript() *Script { return &Script{} }

// FailNthAppend arms the nth upcoming Append (1 = next) across every
// wrapped stream to fail with ErrInjected without reaching the backend.
func (s *Script) FailNthAppend(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAppend = s.appendN + int64(n)
}

// FailNthSync arms the nth upcoming Sync across every wrapped stream.
func (s *Script) FailNthSync(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failSync = s.syncN + int64(n)
}

// FailNthPut arms the nth upcoming blob Put.
func (s *Script) FailNthPut(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failPut = s.putN + int64(n)
}

// CrashNow makes every subsequent operation on wrapped stores fail with
// ErrCrashed, modelling a process that lost its storage mid-flight.
func (s *Script) CrashNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
}

// Reset disarms all failpoints and un-crashes the script.
func (s *Script) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAppend, s.failSync, s.failPut = 0, 0, 0
	s.crashed = false
}

func (s *Script) gate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	return nil
}

func (s *Script) gateAppend() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	s.appendN++
	if s.failAppend != 0 && s.appendN == s.failAppend {
		s.failAppend = 0
		return ErrInjected
	}
	return nil
}

func (s *Script) gateSync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	s.syncN++
	if s.failSync != 0 && s.syncN == s.failSync {
		s.failSync = 0
		return ErrInjected
	}
	return nil
}

func (s *Script) gatePut() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	s.putN++
	if s.failPut != 0 && s.putN == s.failPut {
		s.failPut = 0
		return ErrInjected
	}
	return nil
}

// WrapStore decorates a Store so that streams it hands out honour the
// script's failpoints.
func WrapStore(inner streamfs.Store, script *Script) streamfs.Store {
	return &store{inner: inner, script: script}
}

type store struct {
	inner  streamfs.Store
	script *Script
}

func (s *store) Stream(name string) (streamfs.Stream, error) {
	if err := s.script.gate(); err != nil {
		return nil, err
	}
	st, err := s.inner.Stream(name)
	if err != nil {
		return nil, err
	}
	return &stream{inner: st, script: s.script}, nil
}

func (s *store) Streams() ([]string, error) {
	if err := s.script.gate(); err != nil {
		return nil, err
	}
	return s.inner.Streams()
}

func (s *store) Close() error { return s.inner.Close() }

type stream struct {
	inner  streamfs.Stream
	script *Script
}

func (st *stream) Append(record []byte) (uint64, error) {
	if err := st.script.gateAppend(); err != nil {
		return 0, err
	}
	return st.inner.Append(record)
}

func (st *stream) Read(seq uint64) ([]byte, error) {
	if err := st.script.gate(); err != nil {
		return nil, err
	}
	return st.inner.Read(seq)
}

func (st *stream) Len() uint64  { return st.inner.Len() }
func (st *stream) Base() uint64 { return st.inner.Base() }

func (st *stream) Iterate(from uint64, fn func(uint64, []byte) error) error {
	if err := st.script.gate(); err != nil {
		return err
	}
	return st.inner.Iterate(from, fn)
}

func (st *stream) Truncate(before uint64) error {
	if err := st.script.gate(); err != nil {
		return err
	}
	return st.inner.Truncate(before)
}

func (st *stream) TruncateTail(from uint64) error {
	if err := st.script.gate(); err != nil {
		return err
	}
	return st.inner.TruncateTail(from)
}

func (st *stream) Sync() error {
	if err := st.script.gateSync(); err != nil {
		return err
	}
	return st.inner.Sync()
}

// WrapBlobs decorates a BlobStore with the script's failpoints.
func WrapBlobs(inner streamfs.BlobStore, script *Script) streamfs.BlobStore {
	return &blobs{inner: inner, script: script}
}

type blobs struct {
	inner  streamfs.BlobStore
	script *Script
}

func (b *blobs) Put(key hashutil.Digest, data []byte) error {
	if err := b.script.gatePut(); err != nil {
		return err
	}
	return b.inner.Put(key, data)
}

func (b *blobs) Get(key hashutil.Digest) ([]byte, error) {
	if err := b.script.gate(); err != nil {
		return nil, err
	}
	return b.inner.Get(key)
}

func (b *blobs) Delete(key hashutil.Digest) error {
	if err := b.script.gate(); err != nil {
		return err
	}
	return b.inner.Delete(key)
}
