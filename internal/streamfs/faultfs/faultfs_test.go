package faultfs_test

import (
	"errors"
	"fmt"
	"testing"

	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/streamfs/faultfs"
)

func openStore(t *testing.T, d *faultfs.Disk, opts streamfs.DiskOptions) streamfs.Store {
	t.Helper()
	opts.FS = d
	s, err := streamfs.OpenDisk("streams", opts)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return s
}

func mustAppend(t *testing.T, st streamfs.Stream, rec []byte) uint64 {
	t.Helper()
	seq, err := st.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

func TestDiskImageBasics(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{})
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, st, []byte(fmt.Sprintf("rec-%d", i)))
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if !d.AllSynced() {
		t.Fatal("AllSynced false after Sync")
	}
	// A healthy image round-trips through Image in both modes.
	for _, mode := range []faultfs.CrashMode{faultfs.TornWrite, faultfs.DropUnsynced} {
		s2 := openStore(t, d.Image(mode), streamfs.DiskOptions{})
		st2, err := s2.Stream("j")
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if got := st2.Len(); got != 10 {
			t.Fatalf("mode %v: Len = %d, want 10", mode, got)
		}
		if b, err := st2.Read(7); err != nil || string(b) != "rec-7" {
			t.Fatalf("mode %v: Read(7) = %q, %v", mode, b, err)
		}
	}
}

func TestDropUnsyncedLosesTail(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{})
	st, _ := s.Stream("j")
	mustAppend(t, st, []byte("synced"))
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, []byte("volatile"))
	d.CrashNow()
	if _, err := st.Append([]byte("after")); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("append after crash: %v, want ErrCrashed", err)
	}

	torn := openStore(t, d.Image(faultfs.TornWrite), streamfs.DiskOptions{})
	tst, _ := torn.Stream("j")
	if got := tst.Len(); got != 2 {
		t.Fatalf("torn-write Len = %d, want 2", got)
	}
	drop := openStore(t, d.Image(faultfs.DropUnsynced), streamfs.DiskOptions{})
	dst, _ := drop.Stream("j")
	if got := dst.Len(); got != 1 {
		t.Fatalf("drop-unsynced Len = %d, want 1 (unsynced record must be gone)", got)
	}
	if b, err := dst.Read(0); err != nil || string(b) != "synced" {
		t.Fatalf("Read(0) = %q, %v", b, err)
	}
}

// TestTornHeaderReopen is the regression test for the reopen brick: a
// crash inside rollLocked's 16-byte header write used to leave a tail
// segment shorter than segHeaderLen, which scanSegment rejected as
// ErrCorrupt, making the store unopenable forever.
func TestTornHeaderReopen(t *testing.T) {
	d := faultfs.NewDisk()
	// Segment capacity 64: the first 72-byte frame overflows it, so the
	// second append must roll to a new segment.
	s := openStore(t, d, streamfs.DiskOptions{SegmentSize: 64})
	st, _ := s.Stream("j")
	mustAppend(t, st, make([]byte, 64))
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Cut the very next write — the new segment's header — at 8 of 16 bytes.
	d.CrashAtByte(d.BytesWritten() + 8)
	if _, err := st.Append([]byte("x")); err == nil {
		t.Fatal("append across crash succeeded")
	}

	img := d.Image(faultfs.TornWrite)
	if files, _ := img.Glob("streams/j.seg.*"); len(files) != 2 {
		t.Fatalf("crash image has %d segment files, want 2 (torn header present)", len(files))
	}
	s2 := openStore(t, img, streamfs.DiskOptions{SegmentSize: 64})
	st2, err := s2.Stream("j")
	if err != nil {
		t.Fatalf("reopen after torn header: %v", err)
	}
	if got := st2.Len(); got != 1 {
		t.Fatalf("Len after reopen = %d, want 1", got)
	}
	// The stream must be fully writable again: the next append re-rolls.
	seq := mustAppend(t, st2, []byte("post-crash"))
	if seq != 1 {
		t.Fatalf("post-recovery append seq = %d, want 1", seq)
	}
	if b, err := st2.Read(1); err != nil || string(b) != "post-crash" {
		t.Fatalf("Read(1) = %q, %v", b, err)
	}
}

// TestShortWriteRollback is the regression test for append divergence: a
// partial frame write used to leave seg.offsets/seg.size pointing past
// repaired bytes, so every later record in the segment CRC-failed.
func TestShortWriteRollback(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{})
	st, _ := s.Stream("j")
	mustAppend(t, st, []byte("alpha"))
	d.ShortNthWrite(1, 3) // next frame write lands only 3 of its bytes
	if _, err := st.Append([]byte("torn")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("short-write append error = %v, want ErrInjected", err)
	}
	// The failed append must leave no trace: the next record gets the
	// failed record's sequence and reads back cleanly.
	seq := mustAppend(t, st, []byte("beta"))
	if seq != 1 {
		t.Fatalf("append after short write seq = %d, want 1", seq)
	}
	for i, want := range []string{"alpha", "beta"} {
		if b, err := st.Read(uint64(i)); err != nil || string(b) != want {
			t.Fatalf("Read(%d) = %q, %v; want %q", i, b, err, want)
		}
	}
	// And the on-disk bytes agree: a fresh scan sees exactly 2 records.
	s2 := openStore(t, d.Image(faultfs.TornWrite), streamfs.DiskOptions{})
	st2, _ := s2.Stream("j")
	if got := st2.Len(); got != 2 {
		t.Fatalf("rescan Len = %d, want 2", got)
	}
}

// TestShortWriteRollbackFailurePoisons covers the fallback: when even the
// rollback truncate fails, the stream must latch a sticky error instead
// of serving appends from a lying index.
func TestShortWriteRollbackFailurePoisons(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{})
	st, _ := s.Stream("j")
	mustAppend(t, st, []byte("alpha"))
	d.ShortNthWrite(1, 3)
	d.FailNthTruncate(1)
	if _, err := st.Append([]byte("torn")); err == nil {
		t.Fatal("append with failed rollback succeeded")
	}
	if _, err := st.Append([]byte("beta")); err == nil {
		t.Fatal("poisoned stream accepted an append")
	}
	// Reads of the intact prefix keep working.
	if b, err := st.Read(0); err != nil || string(b) != "alpha" {
		t.Fatalf("Read(0) = %q, %v", b, err)
	}
	// A reopen re-scans, truncates the partial frame, and serves appends.
	s2 := openStore(t, d.Image(faultfs.TornWrite), streamfs.DiskOptions{})
	st2, _ := s2.Stream("j")
	if got := st2.Len(); got != 1 {
		t.Fatalf("reopen Len = %d, want 1", got)
	}
	if seq := mustAppend(t, st2, []byte("beta")); seq != 1 {
		t.Fatalf("post-reopen append seq = %d, want 1", seq)
	}
}

// TestSyncFailureKeepsSeq is the regression test for the lost sequence
// number: when the post-append SyncEvery fsync failed, Append used to
// return (0, err) even though the record had been written and its
// sequence assigned — callers could not tell which jsn was in limbo.
func TestSyncFailureKeepsSeq(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{SyncEvery: 1})
	st, _ := s.Stream("j")
	mustAppend(t, st, []byte("alpha")) // sync 1 succeeds
	d.FailNthSync(1)
	seq, err := st.Append([]byte("beta"))
	if err == nil {
		t.Fatal("append with failed sync reported success")
	}
	if seq != 1 {
		t.Fatalf("append with failed sync seq = %d, want 1 (the assigned sequence)", seq)
	}
	// After a failed fsync nothing further can be trusted to land; the
	// stream must refuse more appends until reopened.
	if _, err := st.Append([]byte("gamma")); err == nil {
		t.Fatal("stream accepted append after failed fsync")
	}
}

func TestFailNthWrite(t *testing.T) {
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{})
	st, _ := s.Stream("j")
	mustAppend(t, st, []byte("a"))
	d.FailNthWrite(1)
	if _, err := st.Append([]byte("b")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if seq := mustAppend(t, st, []byte("c")); seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
}

func TestIterateToleratesConcurrentTruncate(t *testing.T) {
	// Companion to the race test in streamfs: deterministic single-thread
	// version — Truncate mid-iteration must not surface ErrNotFound.
	d := faultfs.NewDisk()
	s := openStore(t, d, streamfs.DiskOptions{SegmentSize: 64})
	st, _ := s.Stream("j")
	for i := 0; i < 20; i++ {
		mustAppend(t, st, []byte(fmt.Sprintf("rec-%02d", i)))
	}
	var got []uint64
	err := st.Iterate(0, func(seq uint64, rec []byte) error {
		if seq == 2 {
			if err := st.Truncate(10); err != nil {
				return err
			}
		}
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	// Sequences 3..9 were purged under the cursor; the iteration must
	// deliver 0,1,2 then resume at the new base.
	want := []uint64{0, 1, 2, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
}

func TestScriptDecorators(t *testing.T) {
	sc := faultfs.NewScript()
	s := faultfs.WrapStore(streamfs.NewMemory(), sc)
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, st, []byte("a"))
	sc.FailNthAppend(1)
	if _, err := st.Append([]byte("b")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append = %v, want ErrInjected", err)
	}
	mustAppend(t, st, []byte("c"))
	sc.FailNthSync(1)
	if err := st.Sync(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	sc.CrashNow()
	if _, err := st.Append([]byte("d")); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("append after crash = %v, want ErrCrashed", err)
	}
	if _, err := st.Read(0); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	sc.Reset()
	if b, err := st.Read(0); err != nil || string(b) != "a" {
		t.Fatalf("read after reset = %q, %v", b, err)
	}
}
