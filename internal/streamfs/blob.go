package streamfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ledgerdb/internal/hashutil"
)

// BlobStore is the "shared storage" of Figure 1: the ledger proxy writes
// raw transaction payloads here and hands only the digest to the ledger
// server, so journals stay small and — critically for the purge and
// occult mutations of §III-A — payload bytes can be physically erased
// without touching the append-only journal stream that carries the
// tamper-evidence.
type BlobStore interface {
	// Put stores data under its digest key. Storing the same digest twice
	// is a no-op (content addressing).
	Put(key hashutil.Digest, data []byte) error
	// Get returns the payload for key.
	Get(key hashutil.Digest) ([]byte, error)
	// Delete physically erases the payload. Deleting an absent key is a
	// no-op: erasure must be idempotent for the async occult reorganizer.
	Delete(key hashutil.Digest) error
}

// ErrBlobNotFound is returned by Get for absent or erased payloads.
var ErrBlobNotFound = errors.New("streamfs: blob not found (absent or erased)")

// memBlobStore is the in-memory BlobStore.
type memBlobStore struct {
	mu    sync.RWMutex
	blobs map[hashutil.Digest][]byte
}

// NewMemoryBlobs returns an empty in-memory blob store.
func NewMemoryBlobs() BlobStore {
	return &memBlobStore{blobs: make(map[hashutil.Digest][]byte)}
}

func (s *memBlobStore) Put(key hashutil.Digest, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[key]; !ok {
		s.blobs[key] = cp
	}
	return nil
}

func (s *memBlobStore) Get(key hashutil.Digest) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, key.Short())
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func (s *memBlobStore) Delete(key hashutil.Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, key)
	return nil
}

// diskBlobStore shards blobs into dir/<first-two-hex>/<digest>.
type diskBlobStore struct {
	dir string
}

// OpenDiskBlobs opens (creating if needed) a disk blob store.
func OpenDiskBlobs(dir string) (BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskBlobStore{dir: dir}, nil
}

func (s *diskBlobStore) path(key hashutil.Digest) string {
	hex := key.String()
	return filepath.Join(s.dir, hex[:2], hex)
}

func (s *diskBlobStore) Put(key hashutil.Digest, data []byte) error {
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		return nil // content-addressed: already present
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	// Concurrent same-digest puts race here (the pipelined ledger admits
	// appends in parallel), so each writer stages into its own unique
	// temp file; the final renames are atomic and, being content
	// addressed, all write identical bytes — last one wins harmlessly.
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func (s *diskBlobStore) Get(key hashutil.Digest) ([]byte, error) {
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrBlobNotFound, key.Short())
	}
	return b, err
}

func (s *diskBlobStore) Delete(key hashutil.Digest) error {
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
