// Package streamfs implements the append-only stream file system that
// backs LedgerDB's journal storage (§II-C of the paper: "LedgerDB
// implements a stream file system ... to manage journals").
//
// A Store is a namespace of independent append-only Streams. LedgerDB uses
// one stream for journals, one for block headers, one for time journals,
// and one "survival" stream holding milestone journals that outlive purges
// (§III-A2). Records are addressed by dense sequence numbers starting at 0.
//
// Two backends are provided: an in-memory store for tests and benchmarks,
// and a disk store that frames records as
//
//	[u32 payload length][u32 CRC32C of payload][payload]
//
// inside fixed-capacity segment files. The disk store detects torn tails
// (a crash mid-append) and recovers by truncating the damaged suffix; any
// CRC mismatch in the interior is reported as corruption, never silently
// skipped — the ledger's tamper-evidence depends on reads failing loudly.
package streamfs

import (
	"errors"
	"fmt"
)

// Errors returned by stream operations.
var (
	ErrNotFound   = errors.New("streamfs: record sequence not found")
	ErrCorrupt    = errors.New("streamfs: corrupt record")
	ErrClosed     = errors.New("streamfs: store closed")
	ErrBadName    = errors.New("streamfs: invalid stream name")
	ErrTooLarge   = errors.New("streamfs: record exceeds maximum size")
	ErrOutOfRange = errors.New("streamfs: iteration start beyond stream end")
)

// MaxRecordSize bounds one record (16 MiB); journal payloads above it must
// be chunked by the caller.
const MaxRecordSize = 16 << 20

// Store is a namespace of append-only streams.
type Store interface {
	// Stream opens (creating if absent) the named stream. Names must be
	// non-empty and use only [a-z0-9._-].
	Stream(name string) (Stream, error)
	// Streams lists the names of existing streams.
	Streams() ([]string, error)
	// Close releases resources. Streams obtained from the store must not
	// be used afterwards.
	Close() error
}

// Stream is a single append-only record log.
type Stream interface {
	// Append writes a record and returns its sequence number (dense,
	// starting at 0). The record is copied.
	Append(record []byte) (uint64, error)
	// Read returns the record at seq. The returned slice is owned by the
	// caller.
	Read(seq uint64) ([]byte, error)
	// Len returns the number of records.
	Len() uint64
	// Base returns the first readable sequence number (0 unless Truncate
	// has purged a prefix).
	Base() uint64
	// Iterate calls fn for each record with sequence >= from, in order,
	// until the end of the stream or fn returns an error.
	Iterate(from uint64, fn func(seq uint64, record []byte) error) error
	// Truncate discards all records with sequence < before, releasing
	// their storage where the backend allows. Reads of purged sequences
	// fail with ErrNotFound. It implements the physical side of the
	// ledger purge operation.
	Truncate(before uint64) error
	// TruncateTail discards all records with sequence >= from. It exists
	// solely for crash-recovery reconciliation — dropping an unsynced
	// suffix so sibling streams agree on one durable prefix — and must
	// never be used on a stream that is serving appends.
	TruncateTail(from uint64) error
	// Sync forces durability of everything appended so far.
	Sync() error
}

// Rebaser is an optional Stream capability: resetting an empty (or
// fully discardable) stream so its next sequence starts at base. It
// exists for replication catch-up — a follower that lagged past the
// primary's purge point cannot replay the erased prefix and instead
// re-bases its journal stream at the primary's base before reseeding
// from the purge snapshot. Both provided backends implement it.
type Rebaser interface {
	// SetBase discards every record and positions the stream so the
	// next Append is assigned sequence base. base must be >= Len()
	// (rebasing below live records would orphan them); streams that
	// still hold records the caller wants must TruncateTail first.
	SetBase(base uint64) error
}

func validName(name string) error {
	if name == "" || name[0] == '.' {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	return nil
}
