package streamfs

import (
	"fmt"
	"testing"
)

// TestSetBase covers the replication rebase primitive on both backends:
// discard everything, restart the sequence space at the primary's base.
func TestSetBase(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			store := open(t)
			defer store.Close()
			st, err := store.Stream("j")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			rb, ok := st.(Rebaser)
			if !ok {
				t.Fatal("stream does not implement Rebaser")
			}
			if err := rb.SetBase(3); err == nil {
				t.Fatal("SetBase(3) below end succeeded")
			}
			if err := rb.SetBase(100); err != nil {
				t.Fatalf("SetBase(100): %v", err)
			}
			if st.Base() != 100 || st.Len() != 100 {
				t.Fatalf("Base/Len = %d/%d, want 100/100", st.Base(), st.Len())
			}
			if _, err := st.Read(4); err == nil {
				t.Fatal("Read(4) succeeded after rebase")
			}
			seq, err := st.Append([]byte("first-after-rebase"))
			if err != nil || seq != 100 {
				t.Fatalf("Append = %d, %v; want 100", seq, err)
			}
			if b, err := st.Read(100); err != nil || string(b) != "first-after-rebase" {
				t.Fatalf("Read(100) = %q, %v", b, err)
			}
		})
	}
}

// TestSetBaseSurvivesReopen checks the disk store persists a rebase:
// both the empty-at-base state and records appended after it.
func TestSetBaseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDisk(dir, DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.(Rebaser).SetBase(42); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen while empty: base and next both restart at 42.
	store, err = OpenDisk(dir, DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	st, err = store.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	if st.Base() != 42 || st.Len() != 42 {
		t.Fatalf("reopened Base/Len = %d/%d, want 42/42", st.Base(), st.Len())
	}
	if seq, err := st.Append([]byte("post")); err != nil || seq != 42 {
		t.Fatalf("Append = %d, %v; want 42", seq, err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a post-rebase record: the segment header carries the
	// rebased first sequence.
	store, err = OpenDisk(dir, DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	st, err = store.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	if b, err := st.Read(42); err != nil || string(b) != "post" {
		t.Fatalf("Read(42) = %q, %v", b, err)
	}
	if st.Base() != 42 || st.Len() != 43 {
		t.Fatalf("Base/Len = %d/%d, want 42/43", st.Base(), st.Len())
	}
}

// TestReadRange covers the replication pull seam: offset addressing,
// record/byte caps, end-of-stream, and the purge-gap signal.
func TestReadRange(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			store := open(t)
			defer store.Close()
			st, err := store.Stream("j")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := st.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := ReadRange(st, 3, 4, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 4 || string(recs[0]) != "record-3" || string(recs[3]) != "record-6" {
				t.Fatalf("ReadRange(3,4) = %d recs, first %q", len(recs), recs[0])
			}
			// Byte cap stops mid-range (each record is 8 bytes).
			recs, err = ReadRange(st, 0, 10, 20)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 {
				t.Fatalf("byte-capped ReadRange = %d recs, want 3", len(recs))
			}
			// Pull at the end: empty, no error.
			recs, err = ReadRange(st, 10, 4, 0)
			if err != nil || len(recs) != 0 {
				t.Fatalf("ReadRange at end = %d recs, %v", len(recs), err)
			}
			// Below base after a purge: gap, reported as ErrNotFound.
			if err := st.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadRange(st, 2, 4, 0); err == nil {
				t.Fatal("ReadRange below base succeeded")
			}
		})
	}
}
