package streamfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Segment file layout:
//
//	header : [u32 magic][u32 version][u64 firstSeq]
//	records: repeated [u32 len][u32 crc32c(payload)][payload]
//
// The first sequence number is stored in the header so that the index can
// be rebuilt after leading segments have been deleted by Truncate.
const (
	segMagic     = 0x4c445345 // "LDSE"
	segVersion   = 1
	segHeaderLen = 16
	frameHdrLen  = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions tunes the on-disk store.
type DiskOptions struct {
	// SegmentSize is the byte capacity at which a segment rolls over.
	// Zero means 64 MiB.
	SegmentSize int64
	// SyncEvery forces an fsync after every N appends. Zero disables
	// automatic syncing; callers then use Stream.Sync at commit points.
	SyncEvery int
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	return o
}

// diskStore is the persistent Store implementation.
type diskStore struct {
	dir  string
	opts DiskOptions

	mu      sync.Mutex
	streams map[string]*diskStream
	closed  bool
}

// OpenDisk opens (creating if needed) a disk store rooted at dir.
// Existing streams are recovered: torn tails from a crash mid-append are
// truncated away; interior corruption fails the open.
func OpenDisk(dir string, opts DiskOptions) (Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("streamfs: open %s: %w", dir, err)
	}
	return &diskStore{dir: dir, opts: opts.withDefaults(), streams: make(map[string]*diskStream)}, nil
}

func (s *diskStore) Stream(name string) (Stream, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if st, ok := s.streams[name]; ok {
		return st, nil
	}
	st, err := openDiskStream(s.dir, name, s.opts)
	if err != nil {
		return nil, err
	}
	s.streams[name] = st
	return st, nil
}

func (s *diskStore) Streams() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, e := range ents {
		n := e.Name()
		if i := strings.Index(n, ".seg."); i > 0 {
			seen[n[:i]] = true
		}
	}
	for n := range s.streams {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, st := range s.streams {
		if err := st.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// segment describes one on-disk segment file.
type segment struct {
	index    int    // position in the file name, monotonically increasing
	path     string
	firstSeq uint64
	offsets  []int64 // byte offset of each record frame
	size     int64   // current byte size
}

func (g *segment) lastSeq() uint64 { return g.firstSeq + uint64(len(g.offsets)) }

type diskStream struct {
	dir  string
	name string
	opts DiskOptions

	mu       sync.RWMutex
	segs     []*segment
	active   *os.File // write handle on the last segment
	base     uint64   // first readable sequence (advanced by Truncate)
	next     uint64   // next sequence to assign
	unsynced int
}

func segPath(dir, name string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.seg.%08d", name, index))
}

func openDiskStream(dir, name string, opts DiskOptions) (*diskStream, error) {
	pattern := filepath.Join(dir, name+".seg.*")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	st := &diskStream{dir: dir, name: name, opts: opts}
	for i, p := range paths {
		idx, err := strconv.Atoi(strings.TrimPrefix(filepath.Base(p), name+".seg."))
		if err != nil {
			return nil, fmt.Errorf("streamfs: stray segment file %s", p)
		}
		last := i == len(paths)-1
		seg, err := scanSegment(p, idx, last)
		if err != nil {
			return nil, err
		}
		st.segs = append(st.segs, seg)
	}
	if n := len(st.segs); n > 0 {
		st.next = st.segs[n-1].lastSeq()
		st.base = st.segs[0].firstSeq
		f, err := os.OpenFile(st.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st.active = f
	}
	if b, err := readBaseMeta(dir, name); err != nil {
		return nil, err
	} else if b > st.base {
		st.base = b
	}
	return st, nil
}

// scanSegment validates a segment file and builds its record index. When
// tail is true, a torn final frame is repaired by truncation; otherwise
// any damage is corruption.
func scanSegment(path string, index int, tail bool) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != segMagic || binary.BigEndian.Uint32(hdr[4:8]) != segVersion {
		return nil, fmt.Errorf("%w: %s: bad magic/version", ErrCorrupt, path)
	}
	seg := &segment{index: index, path: path, firstSeq: binary.BigEndian.Uint64(hdr[8:16])}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	total := fi.Size()
	off := int64(segHeaderLen)
	buf := make([]byte, frameHdrLen)
	for off < total {
		if total-off < frameHdrLen {
			return repairTail(path, seg, off, tail)
		}
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, err
		}
		n := int64(binary.BigEndian.Uint32(buf[0:4]))
		want := binary.BigEndian.Uint32(buf[4:8])
		if n > MaxRecordSize || off+frameHdrLen+n > total {
			return repairTail(path, seg, off, tail)
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHdrLen); err != nil {
			return nil, err
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return repairTail(path, seg, off, tail)
		}
		seg.offsets = append(seg.offsets, off)
		off += frameHdrLen + n
	}
	seg.size = off
	return seg, nil
}

func repairTail(path string, seg *segment, off int64, tail bool) (*segment, error) {
	if !tail {
		return nil, fmt.Errorf("%w: %s at offset %d (interior segment)", ErrCorrupt, path, off)
	}
	if err := os.Truncate(path, off); err != nil {
		return nil, err
	}
	seg.size = off
	return seg, nil
}

func (st *diskStream) Append(record []byte) (uint64, error) {
	if len(record) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	seg := st.lastSeg()
	if seg == nil || seg.size >= st.opts.SegmentSize {
		var err error
		seg, err = st.rollLocked()
		if err != nil {
			return 0, err
		}
	}
	frame := make([]byte, frameHdrLen+len(record))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(record)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(record, castagnoli))
	copy(frame[frameHdrLen:], record)
	if _, err := st.active.Write(frame); err != nil {
		return 0, fmt.Errorf("streamfs: append %s: %w", st.name, err)
	}
	seg.offsets = append(seg.offsets, seg.size)
	seg.size += int64(len(frame))
	seq := st.next
	st.next++
	st.unsynced++
	if st.opts.SyncEvery > 0 && st.unsynced >= st.opts.SyncEvery {
		if err := st.active.Sync(); err != nil {
			return 0, err
		}
		st.unsynced = 0
	}
	return seq, nil
}

func (st *diskStream) lastSeg() *segment {
	if len(st.segs) == 0 {
		return nil
	}
	return st.segs[len(st.segs)-1]
}

func (st *diskStream) rollLocked() (*segment, error) {
	idx := 0
	if last := st.lastSeg(); last != nil {
		idx = last.index + 1
	}
	path := segPath(st.dir, st.name, idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	binary.BigEndian.PutUint64(hdr[8:16], st.next)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if st.active != nil {
		if err := st.active.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		st.active.Close()
	}
	st.active = f
	seg := &segment{index: idx, path: path, firstSeq: st.next, size: segHeaderLen}
	st.segs = append(st.segs, seg)
	return seg, nil
}

func (st *diskStream) Read(seq uint64) ([]byte, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq < st.base || seq >= st.next {
		return nil, ErrNotFound
	}
	seg := st.findSeg(seq)
	if seg == nil {
		return nil, ErrNotFound
	}
	return readRecordAt(seg, seq)
}

func (st *diskStream) findSeg(seq uint64) *segment {
	i := sort.Search(len(st.segs), func(i int) bool { return st.segs[i].lastSeq() > seq })
	if i == len(st.segs) || seq < st.segs[i].firstSeq {
		return nil
	}
	return st.segs[i]
}

func readRecordAt(seg *segment, seq uint64) ([]byte, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	off := seg.offsets[seq-seg.firstSeq]
	var hdr [frameHdrLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("%w: %s seq %d: %v", ErrCorrupt, seg.path, seq, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+frameHdrLen); err != nil {
		return nil, fmt.Errorf("%w: %s seq %d: %v", ErrCorrupt, seg.path, seq, err)
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: %s seq %d: checksum mismatch", ErrCorrupt, seg.path, seq)
	}
	return payload, nil
}

func (st *diskStream) Base() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.base
}

func (st *diskStream) Len() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.next
}

func (st *diskStream) Iterate(from uint64, fn func(uint64, []byte) error) error {
	st.mu.RLock()
	base, next := st.base, st.next
	st.mu.RUnlock()
	if from < base {
		return ErrNotFound
	}
	if from > next {
		return ErrOutOfRange
	}
	for seq := from; seq < next; seq++ {
		rec, err := st.Read(seq)
		if err != nil {
			return err
		}
		if err := fn(seq, rec); err != nil {
			return err
		}
	}
	return nil
}

func (st *diskStream) Truncate(before uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if before <= st.base {
		return nil
	}
	if before > st.next {
		before = st.next
	}
	st.base = before
	// Delete segments that fall entirely below the new base, except the
	// active (last) one.
	keep := st.segs[:0]
	for i, seg := range st.segs {
		whole := seg.lastSeq() <= before
		if whole && i < len(st.segs)-1 {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		keep = append(keep, seg)
	}
	st.segs = keep
	return writeBaseMeta(st.dir, st.name, st.base)
}

func (st *diskStream) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active == nil {
		return nil
	}
	st.unsynced = 0
	return st.active.Sync()
}

func (st *diskStream) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active == nil {
		return nil
	}
	err := st.active.Sync()
	if cerr := st.active.Close(); err == nil {
		err = cerr
	}
	st.active = nil
	return err
}

// Base-sequence metadata, persisted so Truncate survives restarts.

func metaPath(dir, name string) string { return filepath.Join(dir, name+".base") }

func writeBaseMeta(dir, name string, base uint64) error {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], base)
	binary.BigEndian.PutUint32(b[8:12], crc32.Checksum(b[0:8], castagnoli))
	tmp := metaPath(dir, name) + ".tmp"
	if err := os.WriteFile(tmp, b[:], 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, metaPath(dir, name))
}

func readBaseMeta(dir, name string) (uint64, error) {
	b, err := os.ReadFile(metaPath(dir, name))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(b) != 12 || crc32.Checksum(b[0:8], castagnoli) != binary.BigEndian.Uint32(b[8:12]) {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, metaPath(dir, name))
	}
	return binary.BigEndian.Uint64(b[0:8]), nil
}
