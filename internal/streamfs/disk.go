package streamfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Segment file layout:
//
//	header : [u32 magic][u32 version][u64 firstSeq]
//	records: repeated [u32 len][u32 crc32c(payload)][payload]
//
// The first sequence number is stored in the header so that the index can
// be rebuilt after leading segments have been deleted by Truncate.
const (
	segMagic     = 0x4c445345 // "LDSE"
	segVersion   = 1
	segHeaderLen = 16
	frameHdrLen  = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions tunes the on-disk store.
type DiskOptions struct {
	// SegmentSize is the byte capacity at which a segment rolls over.
	// Zero means 64 MiB.
	SegmentSize int64
	// SyncEvery forces an fsync after every N appends. Zero disables
	// automatic syncing; callers then use Stream.Sync at commit points.
	SyncEvery int
	// FS is the backing file system. Nil means the operating system;
	// crash tests inject a simulated disk image (faultfs).
	FS FileSystem
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// diskStore is the persistent Store implementation.
type diskStore struct {
	dir  string
	opts DiskOptions

	mu      sync.Mutex
	streams map[string]*diskStream
	closed  bool
}

// OpenDisk opens (creating if needed) a disk store rooted at dir.
// Existing streams are recovered: torn tails from a crash mid-append are
// truncated away, a torn segment header from a crash mid-rollover drops
// the empty tail segment; interior corruption fails the open.
func OpenDisk(dir string, opts DiskOptions) (Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("streamfs: open %s: %w", dir, err)
	}
	return &diskStore{dir: dir, opts: opts, streams: make(map[string]*diskStream)}, nil
}

func (s *diskStore) Stream(name string) (Stream, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if st, ok := s.streams[name]; ok {
		return st, nil
	}
	st, err := openDiskStream(s.dir, name, s.opts)
	if err != nil {
		return nil, err
	}
	s.streams[name] = st
	return st, nil
}

func (s *diskStore) Streams() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	paths, err := s.opts.FS.Glob(pathJoin(s.dir, "*.seg.*"))
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	for _, p := range paths {
		n := pathBase(p)
		if i := strings.Index(n, ".seg."); i > 0 {
			seen[n[:i]] = true
		}
	}
	for n := range s.streams {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *diskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, st := range s.streams {
		if err := st.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// segment describes one on-disk segment file.
type segment struct {
	index    int // position in the file name, monotonically increasing
	path     string
	firstSeq uint64
	offsets  []int64 // byte offset of each record frame
	size     int64   // current byte size

	// rd is a cached read handle, opened lazily by the first read and
	// closed when the segment is retired (truncation) or the stream
	// closes. ReadAt is positional (pread), so one handle serves
	// concurrent readers; before the cache every Read paid an
	// open+close pair per record.
	rdMu sync.Mutex
	rd   File
}

func (g *segment) lastSeq() uint64 { return g.firstSeq + uint64(len(g.offsets)) }

// reader returns the cached read handle, opening it on first use.
func (g *segment) reader(fsys FileSystem) (File, error) {
	g.rdMu.Lock()
	defer g.rdMu.Unlock()
	if g.rd == nil {
		f, err := fsys.OpenRead(g.path)
		if err != nil {
			return nil, err
		}
		g.rd = f
	}
	return g.rd, nil
}

// closeReader drops the cached handle (segment retired or stream closed).
func (g *segment) closeReader() {
	g.rdMu.Lock()
	if g.rd != nil {
		g.rd.Close()
		g.rd = nil
	}
	g.rdMu.Unlock()
}

type diskStream struct {
	dir  string
	name string
	opts DiskOptions

	mu       sync.RWMutex
	segs     []*segment
	active   File   // write handle on the last segment
	base     uint64 // first readable sequence (advanced by Truncate)
	next     uint64 // next sequence to assign
	unsynced int
	// failed latches a write error whose on-disk damage could not be
	// rolled back (a partial frame that would make in-memory offsets lie
	// about the bytes that follow it). Every later Append refuses with
	// it rather than compound the divergence; reads of the intact prefix
	// keep working, and a reopen re-scans and repairs the tail.
	failed error
	// frameBuf is the reusable Append frame scratch. Append holds the
	// write lock and every FileSystem (OS and faultfs alike) copies the
	// bytes out of Write before returning, so one buffer per stream
	// removes the per-append frame allocation.
	frameBuf []byte
}

func segPath(dir, name string, index int) string {
	return pathJoin(dir, fmt.Sprintf("%s.seg.%08d", name, index))
}

func openDiskStream(dir, name string, opts DiskOptions) (*diskStream, error) {
	pattern := pathJoin(dir, name+".seg.*")
	paths, err := opts.FS.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// A crash inside rollLocked's header write leaves a tail segment
	// shorter than its fixed header. Such a segment holds no records —
	// drop it (and repeat, defensively, should several empty tails have
	// piled up) so the previous segment is scanned as the true tail
	// instead of bricking the reopen with ErrCorrupt.
	for len(paths) > 0 {
		last := paths[len(paths)-1]
		n, err := fileSize(opts.FS, last)
		if err != nil {
			return nil, err
		}
		if n >= segHeaderLen {
			break
		}
		if err := opts.FS.Remove(last); err != nil {
			return nil, err
		}
		paths = paths[:len(paths)-1]
	}
	st := &diskStream{dir: dir, name: name, opts: opts}
	for i, p := range paths {
		idx, err := strconv.Atoi(strings.TrimPrefix(pathBase(p), name+".seg."))
		if err != nil {
			return nil, fmt.Errorf("streamfs: stray segment file %s", p)
		}
		last := i == len(paths)-1
		seg, err := scanSegment(opts.FS, p, idx, last)
		if err != nil {
			return nil, err
		}
		st.segs = append(st.segs, seg)
	}
	if n := len(st.segs); n > 0 {
		st.next = st.segs[n-1].lastSeq()
		st.base = st.segs[0].firstSeq
		f, err := opts.FS.OpenAppend(st.segs[n-1].path)
		if err != nil {
			return nil, err
		}
		st.active = f
	}
	if b, err := readBaseMeta(opts.FS, dir, name); err != nil {
		return nil, err
	} else if b > st.base {
		st.base = b
	}
	if st.next < st.base {
		// A SetBase survived (segments removed, base meta written) with
		// no appends since: the stream is empty and restarts at base.
		st.next = st.base
	}
	return st, nil
}

func fileSize(fsys FileSystem, path string) (int64, error) {
	f, err := fsys.OpenRead(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.Size()
}

// scanSegment validates a segment file and builds its record index. When
// tail is true, a torn final frame is repaired by truncation; otherwise
// any damage is corruption.
func scanSegment(fsys FileSystem, path string, index int, tail bool) (*segment, error) {
	f, err := fsys.OpenRead(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	total, err := f.Size()
	if err != nil {
		return nil, err
	}
	if total < segHeaderLen {
		// Interior segments always have full headers (the openDiskStream
		// pre-pass removed header-torn tails before scanning).
		return nil, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %s: short header", ErrCorrupt, path)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != segMagic || binary.BigEndian.Uint32(hdr[4:8]) != segVersion {
		return nil, fmt.Errorf("%w: %s: bad magic/version", ErrCorrupt, path)
	}
	seg := &segment{index: index, path: path, firstSeq: binary.BigEndian.Uint64(hdr[8:16])}
	off := int64(segHeaderLen)
	buf := make([]byte, frameHdrLen)
	for off < total {
		if total-off < frameHdrLen {
			return repairTail(fsys, path, seg, off, tail)
		}
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, err
		}
		n := int64(binary.BigEndian.Uint32(buf[0:4]))
		want := binary.BigEndian.Uint32(buf[4:8])
		if n > MaxRecordSize || off+frameHdrLen+n > total {
			return repairTail(fsys, path, seg, off, tail)
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+frameHdrLen); err != nil {
			return nil, err
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return repairTail(fsys, path, seg, off, tail)
		}
		seg.offsets = append(seg.offsets, off)
		off += frameHdrLen + n
	}
	seg.size = off
	return seg, nil
}

func repairTail(fsys FileSystem, path string, seg *segment, off int64, tail bool) (*segment, error) {
	if !tail {
		return nil, fmt.Errorf("%w: %s at offset %d (interior segment)", ErrCorrupt, path, off)
	}
	if err := fsys.Truncate(path, off); err != nil {
		return nil, err
	}
	seg.size = off
	return seg, nil
}

func (st *diskStream) Append(record []byte) (uint64, error) {
	if len(record) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return 0, st.failed
	}
	seg := st.lastSeg()
	if seg == nil || seg.size >= st.opts.SegmentSize {
		var err error
		seg, err = st.rollLocked()
		if err != nil {
			return 0, err
		}
	}
	need := frameHdrLen + len(record)
	if cap(st.frameBuf) < need {
		st.frameBuf = make([]byte, need)
	}
	frame := st.frameBuf[:need]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(record)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(record, castagnoli))
	copy(frame[frameHdrLen:], record)
	if n, err := st.active.Write(frame); err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// A partial frame is on disk. Roll the file back to the last
		// intact record so seg.offsets/seg.size stay truthful and the
		// next append starts on a clean boundary; if even the rollback
		// fails, poison the stream — the in-memory index no longer
		// matches the file and only a reopen (which re-scans and repairs
		// the tail) can be trusted.
		if terr := st.active.Truncate(seg.size); terr != nil {
			st.failed = fmt.Errorf("streamfs: append %s: %w (rollback failed: %v; stream needs reopen)", st.name, err, terr)
			return 0, st.failed
		}
		return 0, fmt.Errorf("streamfs: append %s: %w", st.name, err)
	}
	seg.offsets = append(seg.offsets, seg.size)
	seg.size += int64(len(frame))
	if cap(st.frameBuf) > maxPooledRecBuf {
		st.frameBuf = nil // don't let one huge record pin its frame forever
	}
	seq := st.next
	st.next++
	st.unsynced++
	if st.opts.SyncEvery > 0 && st.unsynced >= st.opts.SyncEvery {
		if err := st.active.Sync(); err != nil {
			// The record IS appended and seq assigned — report both, and
			// latch the stream: after a failed fsync the kernel may have
			// dropped the dirty pages, so nothing further can be trusted
			// to land (callers decide whether seq reached disk by
			// reopening and re-scanning).
			st.failed = fmt.Errorf("streamfs: sync %s after append: %w (stream needs reopen)", st.name, err)
			return seq, st.failed
		}
		st.unsynced = 0
	}
	return seq, nil
}

func (st *diskStream) lastSeg() *segment {
	if len(st.segs) == 0 {
		return nil
	}
	return st.segs[len(st.segs)-1]
}

func (st *diskStream) rollLocked() (*segment, error) {
	idx := 0
	if last := st.lastSeg(); last != nil {
		idx = last.index + 1
	}
	path := segPath(st.dir, st.name, idx)
	f, err := st.opts.FS.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	binary.BigEndian.PutUint64(hdr[8:16], st.next)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if st.active != nil {
		if err := st.active.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		st.active.Close()
	}
	st.active = f
	seg := &segment{index: idx, path: path, firstSeq: st.next, size: segHeaderLen}
	st.segs = append(st.segs, seg)
	return seg, nil
}

func (st *diskStream) Read(seq uint64) ([]byte, error) {
	rb, err := st.ReadBuf(seq)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, len(rb.Bytes()))
	copy(payload, rb.Bytes())
	rb.Release()
	return payload, nil
}

// ReadBuf is the zero-copy read path: the whole frame lands in a pooled
// buffer with a single positioned read against the segment's cached
// handle, and the returned view aliases that buffer. The caller must
// Release; Read wraps this with a copy-out for callers that want an
// owned slice.
func (st *diskStream) ReadBuf(seq uint64) (*RecBuf, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq < st.base || seq >= st.next {
		return nil, ErrNotFound
	}
	seg := st.findSeg(seq)
	if seg == nil {
		return nil, ErrNotFound
	}
	// The frame span is implied by consecutive offsets (or the segment
	// size for the last record), so header + payload arrive in one pread
	// instead of the former open/pread-header/pread-payload/close per
	// record.
	i := seq - seg.firstSeq
	off := seg.offsets[i]
	end := seg.size
	if int(i)+1 < len(seg.offsets) {
		end = seg.offsets[i+1]
	}
	f, err := seg.reader(st.opts.FS)
	if err != nil {
		return nil, err
	}
	rb := newRecBuf(int(end - off))
	if _, err := f.ReadAt(rb.b, off); err != nil {
		rb.Release()
		return nil, fmt.Errorf("%w: %s seq %d: %v", ErrCorrupt, seg.path, seq, err)
	}
	n := binary.BigEndian.Uint32(rb.b[0:4])
	want := binary.BigEndian.Uint32(rb.b[4:8])
	if int64(n) != end-off-frameHdrLen {
		rb.Release()
		return nil, fmt.Errorf("%w: %s seq %d: frame length mismatch", ErrCorrupt, seg.path, seq)
	}
	if crc32.Checksum(rb.b[frameHdrLen:], castagnoli) != want {
		rb.Release()
		return nil, fmt.Errorf("%w: %s seq %d: checksum mismatch", ErrCorrupt, seg.path, seq)
	}
	rb.off = frameHdrLen
	return rb, nil
}

func (st *diskStream) findSeg(seq uint64) *segment {
	i := sort.Search(len(st.segs), func(i int) bool { return st.segs[i].lastSeq() > seq })
	if i == len(st.segs) || seq < st.segs[i].firstSeq {
		return nil
	}
	return st.segs[i]
}

func (st *diskStream) Base() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.base
}

func (st *diskStream) Len() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.next
}

// Iterate walks [from, Len-at-start) in order. A Truncate racing the
// iteration may purge records ahead of the cursor; those are skipped —
// the iteration reflects records live at the moment each is read — not
// reported as a spurious ErrNotFound (records cannot vanish any other
// way, so a miss below the advanced base is always a concurrent purge).
func (st *diskStream) Iterate(from uint64, fn func(uint64, []byte) error) error {
	st.mu.RLock()
	base, next := st.base, st.next
	st.mu.RUnlock()
	if from < base {
		return ErrNotFound
	}
	if from > next {
		return ErrOutOfRange
	}
	for seq := from; seq < next; seq++ {
		rec, err := st.Read(seq)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				st.mu.RLock()
				b := st.base
				st.mu.RUnlock()
				if seq < b { // concurrent Truncate: jump over the purged gap
					if b >= next {
						return nil
					}
					seq = b - 1
					continue
				}
			}
			return err
		}
		if err := fn(seq, rec); err != nil {
			return err
		}
	}
	return nil
}

func (st *diskStream) Truncate(before uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if before <= st.base {
		return nil
	}
	if before > st.next {
		before = st.next
	}
	st.base = before
	// Delete segments that fall entirely below the new base, except the
	// active (last) one.
	keep := st.segs[:0]
	for i, seg := range st.segs {
		whole := seg.lastSeq() <= before
		if whole && i < len(st.segs)-1 {
			seg.closeReader()
			if err := st.opts.FS.Remove(seg.path); err != nil && !notExist(err) {
				return err
			}
			continue
		}
		keep = append(keep, seg)
	}
	st.segs = keep
	return writeBaseMeta(st.opts.FS, st.dir, st.name, st.base)
}

// TruncateTail discards records with sequence >= from. Crash-recovery
// reconciliation only (ledger.recover drops unsynced stream suffixes so
// the journal, digest, and block streams agree on one durable prefix);
// never part of normal append-only operation.
func (st *diskStream) TruncateTail(from uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if from >= st.next {
		return nil
	}
	if from < st.base {
		return fmt.Errorf("streamfs: truncate tail %s to %d below base %d", st.name, from, st.base)
	}
	// Drop whole segments past the cut, then cut within the segment
	// holding `from` (if any records there survive, the segment stays).
	for len(st.segs) > 0 {
		seg := st.segs[len(st.segs)-1]
		if seg.firstSeq < from || seg.firstSeq < st.base {
			break
		}
		if st.active != nil {
			st.active.Close()
			st.active = nil
		}
		seg.closeReader()
		if err := st.opts.FS.Remove(seg.path); err != nil && !notExist(err) {
			return err
		}
		st.segs = st.segs[:len(st.segs)-1]
	}
	if n := len(st.segs); n > 0 {
		seg := st.segs[n-1]
		if from < seg.lastSeq() {
			cut := seg.offsets[from-seg.firstSeq]
			if err := st.opts.FS.Truncate(seg.path, cut); err != nil {
				return err
			}
			seg.offsets = seg.offsets[:from-seg.firstSeq]
			seg.size = cut
		}
		if st.active == nil {
			f, err := st.opts.FS.OpenAppend(seg.path)
			if err != nil {
				return err
			}
			st.active = f
		}
	}
	st.next = from
	st.failed = nil
	return nil
}

// SetBase implements Rebaser: remove every segment and restart the
// stream at base. Segments are removed before the base meta is
// persisted, so a crash between the two leaves a consistent (if
// stale) stream — worst case the caller redoes its rebase.
func (st *diskStream) SetBase(base uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if base < st.next {
		return fmt.Errorf("streamfs: set base %s to %d below end %d", st.name, base, st.next)
	}
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}
	for _, seg := range st.segs {
		seg.closeReader()
		if err := st.opts.FS.Remove(seg.path); err != nil && !notExist(err) {
			return err
		}
	}
	st.segs = nil
	st.base = base
	st.next = base
	st.unsynced = 0
	st.failed = nil
	return writeBaseMeta(st.opts.FS, st.dir, st.name, base)
}

func (st *diskStream) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.active == nil {
		return nil
	}
	if err := st.active.Sync(); err != nil {
		return err
	}
	st.unsynced = 0
	return nil
}

func (st *diskStream) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, seg := range st.segs {
		seg.closeReader()
	}
	if st.active == nil {
		return nil
	}
	err := st.active.Sync()
	if cerr := st.active.Close(); err == nil {
		err = cerr
	}
	st.active = nil
	return err
}

// Base-sequence metadata, persisted so Truncate survives restarts.

func metaPath(dir, name string) string { return pathJoin(dir, name+".base") }

func writeBaseMeta(fsys FileSystem, dir, name string, base uint64) error {
	var b [12]byte
	binary.BigEndian.PutUint64(b[0:8], base)
	binary.BigEndian.PutUint32(b[8:12], crc32.Checksum(b[0:8], castagnoli))
	tmp := metaPath(dir, name) + ".tmp"
	if err := fsys.WriteFile(tmp, b[:]); err != nil {
		return err
	}
	return fsys.Rename(tmp, metaPath(dir, name))
}

func readBaseMeta(fsys FileSystem, dir, name string) (uint64, error) {
	b, err := fsys.ReadFile(metaPath(dir, name))
	if notExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(b) != 12 || crc32.Checksum(b[0:8], castagnoli) != binary.BigEndian.Uint32(b[8:12]) {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, metaPath(dir, name))
	}
	return binary.BigEndian.Uint64(b[0:8]), nil
}
