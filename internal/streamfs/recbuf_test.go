package streamfs

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRecBufRefCounting exercises the Retain/Release lifetime rules,
// including the loud failure on over-release.
func TestRecBufRefCounting(t *testing.T) {
	rb := newRecBuf(4)
	copy(rb.b, "abcd")
	rb.Retain()
	rb.Release()
	if got := string(rb.Bytes()); got != "abcd" {
		t.Fatalf("payload gone while a reference is live: %q", got)
	}
	rb.Release() // final: recycled
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("over-release did not panic")
			}
		}()
		rb.Release()
	}()
}

// TestReadBufDisk proves the single-pread path returns the same payloads
// as Read, across segment boundaries, and that released buffers recycle.
func TestReadBufDisk(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), DiskOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("rec-%02d-%s", i, string(make([]byte, i))))); err != nil {
			t.Fatal(err)
		}
	}
	br, ok := st.(BufReader)
	if !ok {
		t.Fatal("disk stream does not implement BufReader")
	}
	for i := uint64(0); i < n; i++ {
		want, err := st.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := br.ReadBuf(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rb.Bytes(), want) {
			t.Fatalf("seq %d: ReadBuf diverges from Read", i)
		}
		rb.Release()
	}
	if _, err := br.ReadBuf(n); err == nil {
		t.Fatal("ReadBuf past end did not fail")
	}
}

// TestReadBufSurvivesTruncation checks the cached-handle invalidation:
// Truncate retires leading segments (closing their handles) and
// TruncateTail retires trailing ones; reads of the surviving range must
// keep working through fresh or still-valid handles.
func TestReadBufSurvivesTruncation(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), DiskOptions{SegmentSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i uint64) []byte { return []byte(fmt.Sprintf("trunc-rec-%03d", i)) }
	for i := uint64(0); i < 30; i++ {
		if _, err := st.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch every record so every segment has a cached handle open.
	for i := uint64(0); i < 30; i++ {
		if _, err := st.Read(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := st.TruncateTail(25); err != nil {
		t.Fatal(err)
	}
	for i := uint64(10); i < 25; i++ {
		got, err := st.Read(i)
		if err != nil {
			t.Fatalf("read %d after truncations: %v", i, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("read %d after truncations: payload diverged", i)
		}
	}
	// Appends after a tail cut land in the surviving segment; new records
	// must be readable through the same cached handle.
	if _, err := st.Append([]byte("post-cut")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Read(25)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "post-cut" {
		t.Fatalf("post-cut read: %q", got)
	}
}

// hideBufReader masks the BufReader extension so ReadRecBuf's fallback
// path is reachable in tests.
type hideBufReader struct{ Stream }

// TestReadRecBufFallback covers the adapter: streams without BufReader
// still yield a RecBuf (wrapping the owned Read slice).
func TestReadRecBufFallback(t *testing.T) {
	s := NewMemory()
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("fallback")); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadRecBuf(hideBufReader{st}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(rb.Bytes()) != "fallback" {
		t.Fatalf("fallback payload: %q", rb.Bytes())
	}
	rb.Release()
	// And the direct path on the same stream.
	rb, err = ReadRecBuf(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(rb.Bytes()) != "fallback" {
		t.Fatalf("direct payload: %q", rb.Bytes())
	}
	rb.Release()
}

// TestReadBufSteadyStateAllocs pins the zero-copy property: once the
// pool is warm, a ReadBuf+Release cycle on the disk backend performs no
// heap allocation.
func TestReadBufSteadyStateAllocs(t *testing.T) {
	s, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream("j")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := st.Append(bytes.Repeat([]byte{byte(i)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	br := st.(BufReader)
	// Warm the pool and the cached segment handle.
	for i := uint64(0); i < 8; i++ {
		rb, err := br.ReadBuf(i)
		if err != nil {
			t.Fatal(err)
		}
		rb.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		rb, err := br.ReadBuf(3)
		if err != nil {
			t.Fatal(err)
		}
		rb.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReadBuf: %.1f allocs/op, want 0", allocs)
	}
}
