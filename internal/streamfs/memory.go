package streamfs

import (
	"fmt"
	"sort"
	"sync"
)

// memStore is the in-memory Store used by tests and benchmarks. It honours
// the same semantics as the disk store, including Truncate releasing
// storage and reads of purged records failing with ErrNotFound.
type memStore struct {
	mu      sync.Mutex
	streams map[string]*memStream
	closed  bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() Store {
	return &memStore{streams: make(map[string]*memStream)}
}

func (s *memStore) Stream(name string) (Stream, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	st, ok := s.streams[name]
	if !ok {
		st = &memStream{}
		s.streams[name] = st
	}
	return st, nil
}

func (s *memStore) Streams() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	names := make([]string, 0, len(s.streams))
	for n := range s.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *memStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

type memStream struct {
	mu    sync.RWMutex
	base  uint64 // sequence of records[0]; advances on Truncate
	items [][]byte
}

func (st *memStream) Append(record []byte) (uint64, error) {
	if len(record) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	cp := make([]byte, len(record))
	copy(cp, record)
	st.mu.Lock()
	defer st.mu.Unlock()
	seq := st.base + uint64(len(st.items))
	st.items = append(st.items, cp)
	return seq, nil
}

func (st *memStream) Read(seq uint64) ([]byte, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq < st.base || seq >= st.base+uint64(len(st.items)) {
		return nil, ErrNotFound
	}
	src := st.items[seq-st.base]
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// ReadBuf fills a pooled buffer instead of allocating the copy Read
// returns. The stored record is still copied — memStream mutates items
// only on Truncate, but the RecBuf contract is an owned view.
func (st *memStream) ReadBuf(seq uint64) (*RecBuf, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if seq < st.base || seq >= st.base+uint64(len(st.items)) {
		return nil, ErrNotFound
	}
	src := st.items[seq-st.base]
	rb := newRecBuf(len(src))
	copy(rb.b, src)
	return rb, nil
}

func (st *memStream) Base() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.base
}

func (st *memStream) Len() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.base + uint64(len(st.items))
}

func (st *memStream) Iterate(from uint64, fn func(uint64, []byte) error) error {
	// Snapshot under lock, then call fn outside it so fn may append.
	st.mu.RLock()
	base := st.base
	if from < base {
		st.mu.RUnlock()
		return ErrNotFound
	}
	end := base + uint64(len(st.items))
	if from > end {
		st.mu.RUnlock()
		return ErrOutOfRange
	}
	snap := st.items[from-base:]
	st.mu.RUnlock()
	for i, rec := range snap {
		if err := fn(from+uint64(i), rec); err != nil {
			return err
		}
	}
	return nil
}

func (st *memStream) Truncate(before uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if before <= st.base {
		return nil
	}
	end := st.base + uint64(len(st.items))
	if before > end {
		before = end
	}
	drop := before - st.base
	// Copy the tail so the dropped prefix becomes collectable.
	tail := make([][]byte, uint64(len(st.items))-drop)
	copy(tail, st.items[drop:])
	st.items = tail
	st.base = before
	return nil
}

func (st *memStream) TruncateTail(from uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	end := st.base + uint64(len(st.items))
	if from >= end {
		return nil
	}
	if from < st.base {
		return ErrNotFound
	}
	st.items = st.items[:from-st.base]
	return nil
}

func (st *memStream) Sync() error { return nil }

// SetBase implements Rebaser: drop everything and restart at base.
func (st *memStream) SetBase(base uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if end := st.base + uint64(len(st.items)); base < end {
		return fmt.Errorf("streamfs: set base to %d below end %d", base, end)
	}
	st.items = nil
	st.base = base
	return nil
}
