package streamfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestIterateTruncateRace regresses the Iterate-vs-Truncate race: Iterate
// snapshots [base, next) and then reads record by record, so a purge
// advancing base under the cursor used to surface as a spurious
// ErrNotFound from a perfectly live iteration. Fixed Iterate skips over
// the purged gap instead. Run under -race (check.sh race stage) this also
// checks the lock discipline of the segment index mutations.
func TestIterateTruncateRace(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			store := mk(t)
			defer store.Close()
			st, err := store.Stream("j")
			if err != nil {
				t.Fatal(err)
			}
			const total = 400
			for i := 0; i < total; i++ {
				if _, err := st.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
					t.Fatal(err)
				}
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			// Purger: keep advancing the base in small steps.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for cut := uint64(1); cut < total-1 && !stop.Load(); cut += 3 {
					if err := st.Truncate(cut); err != nil {
						t.Errorf("truncate(%d): %v", cut, err)
						return
					}
				}
			}()
			// Iterators: full scans from the current base must never see
			// ErrNotFound — records only ever vanish by purge, and the
			// fixed Iterate resumes past purged gaps.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < 50; k++ {
						from := st.Base()
						err := st.Iterate(from, func(seq uint64, rec []byte) error {
							if want := fmt.Sprintf("rec-%04d", seq); string(rec) != want {
								return fmt.Errorf("seq %d payload %q", seq, rec)
							}
							return nil
						})
						if err != nil {
							// A purge may land between reading Base and
							// starting the scan; only that window may
							// legitimately report ErrNotFound.
							if errors.Is(err, ErrNotFound) && st.Base() > from {
								continue
							}
							t.Errorf("iterate from %d: %v", from, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			stop.Store(true)
		})
	}
}
