package streamfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
)

// FileSystem abstracts the handful of file operations the disk store
// performs, so that crash-consistency tests can run the real segment
// scanning, framing, and recovery code over a simulated disk image
// (internal/streamfs/faultfs) with byte-exact fault injection. The
// default implementation is the operating system (osFS).
//
// Semantics the disk store relies on:
//
//   - Create fails if the path already exists (O_EXCL), and the returned
//     File appends at end-of-file on every Write (O_APPEND).
//   - Rename atomically replaces the destination (base-meta updates).
//   - Absent files surface errors satisfying errors.Is(err, fs.ErrNotExist).
type FileSystem interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Glob lists paths matching the shell pattern, unsorted.
	Glob(pattern string) ([]string, error)
	// Create makes a new append-mode file; it fails if path exists.
	Create(path string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(path string) (File, error)
	// OpenRead opens an existing file for reading.
	OpenRead(path string) (File, error)
	// Truncate cuts the named file to size bytes.
	Truncate(path string, size int64) error
	// Remove deletes the named file.
	Remove(path string) error
	// Rename moves oldPath to newPath, replacing any existing file.
	Rename(oldPath, newPath string) error
	// WriteFile writes data to a new or replaced file in one operation
	// and flushes it to stable storage before returning. The base-meta
	// update (write tmp, rename over) relies on this: the rename must
	// never land before its content is durable, or a crash could expose
	// a torn meta file.
	WriteFile(path string, data []byte) error
	// ReadFile returns the named file's full contents.
	ReadFile(path string) ([]byte, error)
}

// File is one open file handle. Write handles append at end-of-file;
// read handles support positioned reads.
type File interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the file's current byte length.
	Size() (int64, error)
	// Truncate cuts the file to size bytes; subsequent appends continue
	// from the new end (short-write repair in Append).
	Truncate(size int64) error
	Sync() error
	Close() error
}

// osFS is the production FileSystem: the host operating system.
type osFS struct{}

// OSFileSystem returns the real-disk FileSystem (the DiskOptions.FS
// default, exported for callers that wrap it).
func OSFileSystem() FileSystem { return osFS{} }

func (osFS) MkdirAll(dir string) error              { return os.MkdirAll(dir, 0o755) }
func (osFS) Glob(pattern string) ([]string, error)  { return filepath.Glob(pattern) }
func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }
func (osFS) Remove(path string) error               { return os.Remove(path) }
func (osFS) Rename(oldPath, newPath string) error   { return os.Rename(oldPath, newPath) }
func (osFS) WriteFile(path string, data []byte) error {
	// Not os.WriteFile: the FileSystem contract requires the content to
	// be durable before the caller renames it into place.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenRead(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// notExist reports whether err means the file is absent, across both the
// OS and simulated backends.
func notExist(err error) bool {
	return err != nil && (os.IsNotExist(err) || errors.Is(err, fs.ErrNotExist))
}

// Path helpers shared by the disk store and simulated file systems.
// Both treat paths as opaque slash-joined strings.
func pathJoin(elem ...string) string { return filepath.Join(elem...) }
func pathBase(p string) string       { return filepath.Base(p) }
