package client

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

// livePipelinedClient is liveClient with a staged commit pipeline behind
// the server, so concurrent SDK calls land on a ledger that is itself
// committing concurrently.
func livePipelinedClient(t *testing.T, depth int) (*Client, *ledger.Ledger) {
	t.Helper()
	clock := logicalclock.New(900_000)
	lsp := sig.GenerateDeterministic("cli-race-lsp")
	authority := tsa.New("cli-race", tsa.Options{Clock: clock.Now})
	tl, err := tledger.New(tledger.Config{Clock: clock.Now, Tolerance: 1_000, TSA: tsa.NewPool(authority)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{
		URI:           "ledger://cli-race",
		FractalHeight: 6,
		BlockSize:     8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("cli-race-dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock.Tick,
		PipelineDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(l, tl))
	t.Cleanup(srv.Close)
	return &Client{
		BaseURL: srv.URL,
		Key:     sig.GenerateDeterministic("cli-race-client"),
		LSP:     lsp.Public(),
		URI:     "ledger://cli-race",
	}, l
}

// TestClientConcurrentUse shares ONE *Client across goroutines mixing
// appends, batches, and verifying reads. The Client's only mutable
// state is its atomically-drawn nonce, so under -race this pins down
// the SDK's documented concurrency contract end to end: every receipt
// must verify, and the final size must account for every acknowledged
// request (a duplicated nonce would surface as a lost or rejected
// append).
func TestClientConcurrentUse(t *testing.T) {
	const (
		goroutines = 4
		opsEach    = 12 // every 6th op is a 2-payload batch
		batchEvery = 6
		hotClue    = "hot"
	)
	c, _ := livePipelinedClient(t, 8)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		appended int
		hot      int
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myClue := fmt.Sprintf("g%d", g)
			for i := 0; i < opsEach; i++ {
				if i%batchEvery == batchEvery-1 {
					payloads := [][]byte{
						[]byte(fmt.Sprintf("batch/g%d/%d/a", g, i)),
						[]byte(fmt.Sprintf("batch/g%d/%d/b", g, i)),
					}
					br, _, err := c.AppendBatch(payloads, [][]string{{myClue}, {hotClue}})
					if err != nil {
						t.Errorf("g%d batch %d: %v", g, i, err)
						return
					}
					for _, jsn := range []uint64{br.FirstJSN, br.FirstJSN + 1} {
						if _, _, err := c.VerifyExistence(jsn, true); err != nil {
							t.Errorf("g%d verify batch jsn %d: %v", g, jsn, err)
						}
					}
					mu.Lock()
					appended += 2
					hot++
					mu.Unlock()
					continue
				}
				r, err := c.Append([]byte(fmt.Sprintf("doc/g%d/%d", g, i)), myClue, hotClue)
				if err != nil {
					t.Errorf("g%d append %d: %v", g, i, err)
					return
				}
				if _, _, err := c.VerifyExistence(r.JSN, true); err != nil {
					t.Errorf("g%d verify jsn %d: %v", g, r.JSN, err)
				}
				mu.Lock()
				appended++
				hot++
				mu.Unlock()
				switch i % 4 {
				case 1:
					if _, err := c.State(); err != nil {
						t.Errorf("g%d state: %v", g, err)
					}
				case 2:
					if recs, err := c.VerifyClue(myClue, 0, 0); err != nil {
						t.Errorf("g%d verify clue: %v", g, err)
					} else if len(recs) == 0 {
						t.Errorf("g%d verify clue: empty lineage after append", g)
					}
				case 3:
					if _, err := c.ClueJSNs(hotClue); err != nil {
						t.Errorf("g%d clue jsns: %v", g, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	_, size, _, _, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1 + appended); size != want {
		t.Fatalf("size = %d, want %d (an atomic-nonce regression loses appends)", size, want)
	}
	recs, err := c.VerifyClue(hotClue, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != hot {
		t.Fatalf("hot clue lineage has %d records, want %d", len(recs), hot)
	}
}
