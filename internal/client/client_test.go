package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"ledgerdb/internal/sig"
)

// Hostile-server tests: the SDK must fail cleanly (typed error, no
// panic, nothing "verified") when the service misbehaves at the
// transport layer. Honest-server behavior is covered by the end-to-end
// tests in package server.

func hostileClient(t *testing.T, handler http.HandlerFunc) *Client {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return &Client{
		BaseURL: srv.URL,
		Key:     sig.GenerateDeterministic("hostile-test"),
		LSP:     sig.GenerateDeterministic("hostile-lsp").Public(),
		URI:     "ledger://hostile",
	}
}

func TestNonJSONResponse(t *testing.T) {
	c := hostileClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>not json</html>"))
	})
	if _, err := c.State(); !errors.Is(err, ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Append([]byte("x")); !errors.Is(err, ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
}

func TestGarbageBase64(t *testing.T) {
	c := hostileClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"state":"!!!not-base64!!!","proof":"!!!","receipt":"!!!"}`))
	})
	if _, err := c.State(); !errors.Is(err, ErrHTTP) {
		t.Fatalf("State err = %v", err)
	}
	if _, _, err := c.VerifyExistence(1, false); !errors.Is(err, ErrHTTP) {
		t.Fatalf("VerifyExistence err = %v", err)
	}
	if _, err := c.AnchorTime(); !errors.Is(err, ErrHTTP) {
		t.Fatalf("AnchorTime err = %v", err)
	}
}

func TestValidBase64GarbageBytes(t *testing.T) {
	// Well-formed base64 of junk: decoders must reject, nothing panics.
	c := hostileClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"state":"anVuayBqdW5rIGp1bms=","proof":"anVuaw==","receipt":"anVuaw=="}`))
	})
	if _, err := c.State(); err == nil {
		t.Fatal("junk state accepted")
	}
	if _, _, err := c.VerifyExistence(1, false); err == nil {
		t.Fatal("junk proof accepted")
	}
	if _, err := c.VerifyClue("k", 0, 0); err == nil {
		t.Fatal("junk clue proof accepted")
	}
	if _, err := c.FetchAnchor(); err == nil {
		t.Fatal("junk anchor accepted")
	}
	if _, _, err := c.VerifyState([]byte("k")); err == nil {
		t.Fatal("junk state proof accepted")
	}
}

func TestServerErrorStatusSurfaces(t *testing.T) {
	c := hostileClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":"nope"}`))
	})
	_, err := c.Append([]byte("x"))
	if !errors.Is(err, ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
	if got := err.Error(); !contains(got, "nope") {
		t.Fatalf("error lost server message: %q", got)
	}
}

func TestUnreachableServer(t *testing.T) {
	c := &Client{
		BaseURL: "http://127.0.0.1:1", // nothing listens here
		Key:     sig.GenerateDeterministic("x"),
		LSP:     sig.GenerateDeterministic("y").Public(),
		URI:     "ledger://x",
	}
	if _, _, _, _, err := c.Info(); !errors.Is(err, ErrHTTP) {
		t.Fatalf("err = %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
