package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable time source for breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBreakerTripHalfOpenReset(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := &Breaker{Threshold: 3, Cooldown: time.Second, Clock: clk.now}

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d: %v", i, err)
		}
		b.Record(true)
	}
	if b.State() != "closed" {
		t.Fatalf("state = %s, want closed", b.State())
	}
	// Third consecutive failure trips it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open Allow = %v, want ErrCircuitOpen", err)
	}

	// Cooldown elapses: half-open admits exactly one probe.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: fully open again for another cooldown.
	b.Record(true)
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("re-opened breaker admitted")
	}

	// Second cooldown, successful probe: closed and counters reset.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != "closed" {
		t.Fatalf("state after good probe = %s, want closed", b.State())
	}
	// The reset is complete: it takes a full threshold of new failures
	// to trip again.
	b.Record(true)
	b.Record(true)
	if b.State() != "closed" {
		t.Fatal("breaker re-tripped below threshold after reset")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := &Breaker{Threshold: 3, Clock: clk.now}
	b.Record(true)
	b.Record(true)
	b.Record(false) // success breaks the streak
	b.Record(true)
	b.Record(true)
	if b.State() != "closed" {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Record(true)
	if b.State() != "open" {
		t.Fatal("three consecutive failures did not trip")
	}
}

func TestClientFailsFastWhenBreakerOpen(t *testing.T) {
	var hits atomic.Int64
	tr := &failNTransport{inner: http.DefaultTransport}
	tr.n.Store(1 << 30) // fail every attempt
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := &Breaker{Threshold: 2, Cooldown: time.Minute, Clock: clk.now}
	c := &Client{BaseURL: "http://invalid.test", HTTP: &http.Client{Transport: tr}, Retries: 0, Breaker: b}
	noSleep(c)

	for i := 0; i < 2; i++ {
		if _, err := c.call("GET", "/v1/info", nil); err == nil {
			t.Fatal("expected transport failure")
		}
	}
	if b.State() != "open" {
		t.Fatalf("state = %s, want open after consecutive transport failures", b.State())
	}
	// Open: calls fail fast without touching the transport.
	before := tr.n.Load()
	_, err := c.call("GET", "/v1/info", nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if tr.n.Load() != before {
		t.Fatal("open breaker still hit the transport")
	}

	// HTTP error statuses do NOT count as transport failures: a 503
	// closes the circuit again after the cooldown probe.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer srv.Close()
	clk.advance(time.Minute)
	c2 := &Client{BaseURL: srv.URL, Retries: 0, Breaker: b}
	noSleep(c2)
	if _, err := c2.call("GET", "/v1/info", nil); err == nil {
		t.Fatal("expected 503 error")
	}
	if b.State() != "closed" {
		t.Fatalf("state = %s, want closed (an HTTP response proves the wire works)", b.State())
	}
}
