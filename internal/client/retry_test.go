// Retry-semantics tests: which statuses retry vs fail fast, backoff
// doubling and jitter bounds via the sleepFn/jitterFn seams, Retry-After
// honoring, context-aware backoff waits, and transport-retry rules for
// idempotent vs non-idempotent calls.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// statusServer answers every request with one status (JSON envelope
// body) and counts hits.
func statusServer(t *testing.T, code int, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":"status %d"}`, code)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// noSleep plugs the retry loop's waits so tests run instantly.
func noSleep(c *Client) *atomic.Int64 {
	var slept atomic.Int64
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		slept.Add(1)
		return ctx.Err()
	}
	return &slept
}

func TestRetrySemanticsByStatus(t *testing.T) {
	cases := []struct {
		code      int
		wantHits  int64 // with Retries = 2
		retryable bool
	}{
		{http.StatusServiceUnavailable, 3, true},
		{http.StatusTooManyRequests, 3, true},
		{http.StatusBadGateway, 3, true},
		{http.StatusGatewayTimeout, 3, true},
		{http.StatusBadRequest, 1, false},
		{http.StatusForbidden, 1, false},
		{http.StatusNotFound, 1, false},
		{http.StatusConflict, 1, false},
		{http.StatusGone, 1, false},                       // purged: permanent
		{http.StatusUnavailableForLegalReasons, 1, false}, // occulted: deliberate
		{http.StatusRequestEntityTooLarge, 1, false},
		{http.StatusInternalServerError, 1, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.code), func(t *testing.T) {
			var hits atomic.Int64
			srv := statusServer(t, tc.code, &hits)
			c := &Client{BaseURL: srv.URL, Retries: 2}
			noSleep(c)
			_, err := c.call("GET", "/v1/info", nil)
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrHTTP) {
				t.Fatalf("err = %v, want ErrHTTP", err)
			}
			if hits.Load() != tc.wantHits {
				t.Fatalf("server hit %d times, want %d (retryable=%v)", hits.Load(), tc.wantHits, tc.retryable)
			}
		})
	}
}

// failNTransport fails the first n round trips at the transport level.
type failNTransport struct {
	n     atomic.Int64
	inner http.RoundTripper
}

func (f *failNTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.n.Add(-1) >= 0 {
		return nil, errors.New("synthetic transport failure")
	}
	return f.inner.RoundTrip(r)
}

func TestTransportRetryRules(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	newClient := func(failures int64) *Client {
		tr := &failNTransport{inner: http.DefaultTransport}
		tr.n.Store(failures)
		c := &Client{BaseURL: srv.URL, HTTP: &http.Client{Transport: tr}, Retries: 3}
		noSleep(c)
		return c
	}

	// GETs are transport-retried.
	if _, err := newClient(2).call("GET", "/v1/info", nil); err != nil {
		t.Fatalf("GET after transient failures: %v", err)
	}
	// Plain POSTs are not: a lost response might mean a lost commit.
	if _, err := newClient(1).call("POST", "/v1/anchor-time", nil); err == nil {
		t.Fatal("non-idempotent POST was transport-retried")
	}
	// Idempotency-keyed POSTs are: the server dedups the resubmission.
	if _, err := newClient(2).callIdem("POST", "/v1/append", map[string]string{"x": "y"}, "idemkey"); err != nil {
		t.Fatalf("keyed POST after transient failures: %v", err)
	}
}

func TestBackoffDoublingJitterAndCap(t *testing.T) {
	var hits atomic.Int64
	srv := statusServer(t, http.StatusServiceUnavailable, &hits)
	c := &Client{
		BaseURL:      srv.URL,
		Retries:      6,
		RetryBackoff: 100 * time.Millisecond,
		MaxBackoff:   800 * time.Millisecond,
	}
	var bounds []time.Duration
	c.jitterFn = func(bound time.Duration) time.Duration {
		bounds = append(bounds, bound)
		return bound / 2 // deterministic "jitter" inside [0, bound]
	}
	var waits []time.Duration
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	if _, err := c.call("GET", "/v1/info", nil); err == nil {
		t.Fatal("expected exhaustion")
	}
	want := []time.Duration{100, 200, 400, 800, 800, 800} // ms bounds, capped
	if len(bounds) != len(want) {
		t.Fatalf("%d backoff bounds, want %d", len(bounds), len(want))
	}
	for i, b := range bounds {
		if b != want[i]*time.Millisecond {
			t.Fatalf("bound %d = %v, want %v", i, b, want[i]*time.Millisecond)
		}
		if waits[i] != b/2 {
			t.Fatalf("wait %d = %v, want jitter output %v", i, waits[i], b/2)
		}
	}
}

func TestBackoffDoublingCannotOverflow(t *testing.T) {
	var hits atomic.Int64
	srv := statusServer(t, http.StatusServiceUnavailable, &hits)
	c := &Client{
		BaseURL:      srv.URL,
		Retries:      80, // enough doublings to overflow int64 nanoseconds
		RetryBackoff: time.Second,
		MaxBackoff:   time.Hour,
	}
	c.jitterFn = func(bound time.Duration) time.Duration {
		if bound <= 0 || bound > time.Hour {
			t.Fatalf("backoff bound escaped [0, MaxBackoff]: %v", bound)
		}
		return 0
	}
	c.sleepFn = func(ctx context.Context, d time.Duration) error { return nil }
	if _, err := c.call("GET", "/v1/info", nil); err == nil {
		t.Fatal("expected exhaustion")
	}
	if hits.Load() != 81 {
		t.Fatalf("hits = %d, want 81", hits.Load())
	}
}

func TestFullJitterStaysInBounds(t *testing.T) {
	c := &Client{}
	for i := 0; i < 1000; i++ {
		d := c.jitter(50 * time.Millisecond)
		if d < 0 || d > 50*time.Millisecond {
			t.Fatalf("jitter %v escaped [0, bound]", d)
		}
	}
	if c.jitter(0) != 0 {
		t.Fatal("jitter of zero bound must be zero")
	}
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"busy"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, Retries: 2, RetryBackoff: time.Millisecond, MaxBackoff: 10 * time.Second}
	var waits []time.Duration
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	if _, err := c.call("GET", "/v1/info", nil); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != 3*time.Second {
		t.Fatalf("waits = %v, want [3s] (Retry-After honored)", waits)
	}

	// A hostile Retry-After is clamped to MaxBackoff.
	hits.Store(0)
	c2 := &Client{BaseURL: srv.URL, Retries: 2, RetryBackoff: time.Millisecond, MaxBackoff: time.Second}
	waits = nil
	c2.sleepFn = c.sleepFn
	if _, err := c2.call("GET", "/v1/info", nil); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != time.Second {
		t.Fatalf("waits = %v, want [1s] (Retry-After clamped)", waits)
	}
}

func TestBackoffWaitHonorsContext(t *testing.T) {
	var hits atomic.Int64
	srv := statusServer(t, http.StatusServiceUnavailable, &hits)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := &Client{
		BaseURL:      srv.URL,
		Retries:      10,
		RetryBackoff: 10 * time.Second, // would block for minutes without ctx
		Context:      ctx,
	}
	c.jitterFn = func(bound time.Duration) time.Duration { return bound }
	start := time.Now()
	_, err := c.call("GET", "/v1/info", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored ctx: blocked %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1 (no retry after ctx expired)", hits.Load())
	}
}

func TestClientTimeoutBoundsWholeCall(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall)
	c := &Client{BaseURL: srv.URL, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.call("GET", "/v1/info", nil)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Timeout not enforced: %v", elapsed)
	}
}
