package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the
// circuit breaker is open.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// Breaker is a consecutive-transport-failure circuit breaker. Share one
// *Breaker across the clients talking to the same endpoint. Only
// transport-level failures count: an HTTP response of any status proves
// the wire works, and the client's own context expiring proves nothing
// about the server. After Threshold consecutive failures the breaker
// opens and calls fail fast with ErrCircuitOpen; once Cooldown elapses
// it goes half-open and admits a single probe, whose outcome closes or
// re-opens the circuit. The zero value is ready to use.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	// Zero means 5.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// probe. Zero means 1s.
	Cooldown time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// Allow reports whether an attempt may proceed, transitioning
// open → half-open when the cooldown has elapsed. In half-open state
// only one probe is admitted at a time.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	case breakerHalfOpen:
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	default:
		return nil
	}
}

// Record reports an attempt's outcome. transportFailure must be true
// only for failures that never produced an HTTP response and were not
// caused by the caller's own context.
func (b *Breaker) Record(transportFailure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !transportFailure {
		b.state = breakerClosed
		b.consecutive = 0
		b.probing = false
		return
	}
	if b.state == breakerHalfOpen {
		// The probe failed: back to fully open for another cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold() && b.state == breakerClosed {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// State names the current state ("closed", "open", "half-open") for
// tests and diagnostics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
