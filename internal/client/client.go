// Package client is the ledger-client SDK for the HTTP service (package
// server). Every response that matters is re-verified locally: the
// client decodes the server's deterministic wire blobs and runs the pure
// verification functions, so a distrusted LSP cannot fake responses —
// "verified at client side when LSP is distrusted" (§II-C).
package client

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrHTTP = errors.New("client: request failed")
)

// Client talks to one ledger service endpoint on behalf of one member.
// A Client is safe for concurrent use once configured: the only mutable
// state is the request nonce, which is drawn atomically.
type Client struct {
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Key signs requests (π_c). Required for Append.
	Key *sig.KeyPair
	// LSP is the pinned service-provider key every receipt, state, and
	// proof is checked against. Required.
	LSP sig.PublicKey
	// URI is the target ledger identifier.
	URI string
	// Retries re-attempts a call after a retryable failure: any 503 (the
	// server refused before committing — e.g. a draining commit
	// pipeline), and transport errors on GETs. POSTs are never
	// transport-retried: an append whose response was lost may have
	// committed, and resubmitting would double-append. Zero means no
	// retries.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent attempt. Zero means 50ms.
	RetryBackoff time.Duration

	nonce atomic.Uint64
}

// Clone returns a new Client with the same configuration, continuing
// from the current nonce. Client values must not be copied directly
// (the nonce counter is atomic and copy-protected); use Clone to derive
// a variant, e.g. one pointed at a different BaseURL.
func (c *Client) Clone() *Client {
	n := &Client{
		BaseURL:      c.BaseURL,
		HTTP:         c.HTTP,
		Key:          c.Key,
		LSP:          c.LSP,
		URI:          c.URI,
		Retries:      c.Retries,
		RetryBackoff: c.RetryBackoff,
	}
	n.nonce.Store(c.nonce.Load())
	return n
}

type envelope struct {
	Receipt string   `json:"receipt"`
	State   string   `json:"state"`
	Record  string   `json:"record"`
	Proof   string   `json:"proof"`
	Payload string   `json:"payload"`
	JSNs    []uint64 `json:"jsns"`
	Error   string   `json:"error"`
	LSPKey  string   `json:"lsp_key"`
	URI     string   `json:"uri"`
	Size    uint64   `json:"size"`
	Base    uint64   `json:"base"`
	Height  uint64   `json:"height"`
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) call(method, path string, body any) (*envelope, error) {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = buf
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		env, code, status, err := c.doOnce(method, path, payload)
		switch {
		case err == nil && code == http.StatusOK:
			return env, nil
		case err == nil:
			lastErr = fmt.Errorf("%w: %s: %s", ErrHTTP, status, env.Error)
			// 503 means the server refused before committing anything
			// (e.g. its commit pipeline is draining) — safe to retry even
			// for appends. Every other status is a definitive answer.
			if code != http.StatusServiceUnavailable {
				return nil, lastErr
			}
		default:
			lastErr = err
			if method != http.MethodGet {
				// A lost response does not mean a lost commit; only
				// idempotent reads are transport-retried.
				return nil, lastErr
			}
		}
		if attempt >= c.Retries {
			return nil, lastErr
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (c *Client) doOnce(method, path string, payload []byte) (*envelope, int, string, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return nil, 0, "", err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, "", fmt.Errorf("%w: %v", ErrHTTP, err)
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		if resp.StatusCode != http.StatusOK {
			// Error statuses may carry non-JSON bodies (proxies, caps).
			return &env, resp.StatusCode, resp.Status, nil
		}
		return nil, 0, "", fmt.Errorf("%w: decode: %v", ErrHTTP, err)
	}
	return &env, resp.StatusCode, resp.Status, nil
}

func unb64(s string) ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: base64: %v", ErrHTTP, err)
	}
	return b, nil
}

// Append signs and submits a normal journal, verifying the returned
// receipt (π_s) against the pinned LSP key and the submitted hashes.
func (c *Client) Append(payload []byte, clues ...string) (*journal.Receipt, error) {
	req := &journal.Request{
		LedgerURI: c.URI,
		Type:      journal.TypeNormal,
		Clues:     clues,
		Payload:   payload,
		Nonce:     c.nonce.Add(1),
	}
	if err := req.Sign(c.Key); err != nil {
		return nil, err
	}
	env, err := c.call("POST", "/v1/append", map[string]string{
		"request": base64.StdEncoding.EncodeToString(req.EncodeBytes()),
	})
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Receipt)
	if err != nil {
		return nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, err
	}
	if receipt.RequestHash != req.Hash() {
		return nil, fmt.Errorf("%w: receipt acknowledges a different request", journal.ErrBadSignature)
	}
	return receipt, nil
}

// AppendBatch signs and submits several payloads in one exchange (the
// amortized write path). The batch receipt is verified against the
// pinned LSP key and the returned tx-hash list; payloads[i] maps to jsn
// FirstJSN+i.
func (c *Client) AppendBatch(payloads [][]byte, clues [][]string) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	if clues != nil && len(clues) != len(payloads) {
		return nil, nil, fmt.Errorf("%w: %d clue sets for %d payloads", journal.ErrBadRequest, len(clues), len(payloads))
	}
	encoded := make([]string, len(payloads))
	for i, p := range payloads {
		req := &journal.Request{
			LedgerURI: c.URI,
			Type:      journal.TypeNormal,
			Payload:   p,
			Nonce:     c.nonce.Add(1),
		}
		if clues != nil {
			req.Clues = clues[i]
		}
		if err := req.Sign(c.Key); err != nil {
			return nil, nil, err
		}
		encoded[i] = base64.StdEncoding.EncodeToString(req.EncodeBytes())
	}
	env, err := c.call("POST", "/v1/append-batch", map[string]any{"requests": encoded})
	if err != nil {
		return nil, nil, err
	}
	raw, err := unb64(env.Receipt)
	if err != nil {
		return nil, nil, err
	}
	r := wire.NewReader(raw)
	br := &ledger.BatchReceipt{
		FirstJSN:  r.Uvarint(),
		Count:     r.Uvarint(),
		BatchHash: r.Digest(),
		Timestamp: r.Int64(),
		LSPPK:     sig.DecodePublicKey(r),
		LSPSig:    sig.DecodeSignature(r),
	}
	txHashes := make([]hashutil.Digest, 0, br.Count)
	for i := uint64(0); i < br.Count; i++ {
		txHashes = append(txHashes, r.Digest())
		if r.Err() != nil {
			return nil, nil, r.Err()
		}
	}
	if err := r.Finish(); err != nil {
		return nil, nil, err
	}
	if err := br.Verify(c.LSP, txHashes); err != nil {
		return nil, nil, err
	}
	return br, txHashes, nil
}

// State fetches and verifies the live signed state.
func (c *Client) State() (*ledger.SignedState, error) {
	env, err := c.call("GET", "/v1/state", nil)
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.State)
	if err != nil {
		return nil, err
	}
	st, err := ledger.DecodeSignedState(wire.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if err := st.Verify(c.LSP); err != nil {
		return nil, err
	}
	return st, nil
}

// GetJournal fetches a committed record (unverified metadata read).
func (c *Client) GetJournal(jsn uint64) (*journal.Record, error) {
	env, err := c.call("GET", fmt.Sprintf("/v1/journal/%d", jsn), nil)
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Record)
	if err != nil {
		return nil, err
	}
	return journal.DecodeRecord(raw)
}

// GetPayload fetches a journal's raw payload.
func (c *Client) GetPayload(jsn uint64) ([]byte, error) {
	env, err := c.call("GET", fmt.Sprintf("/v1/payload/%d", jsn), nil)
	if err != nil {
		return nil, err
	}
	return unb64(env.Payload)
}

// VerifyExistence runs the full client-side what(+who) verification for
// one journal: fetch the proof bundle and validate every layer locally.
func (c *Client) VerifyExistence(jsn uint64, withPayload bool) (*journal.Record, []byte, error) {
	path := fmt.Sprintf("/v1/proof/%d", jsn)
	if withPayload {
		path += "?payload=1"
	}
	env, err := c.call("GET", path, nil)
	if err != nil {
		return nil, nil, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return nil, nil, err
	}
	proof, err := ledger.DecodeExistenceProof(raw)
	if err != nil {
		return nil, nil, err
	}
	rec, err := ledger.VerifyExistence(proof, c.LSP)
	if err != nil {
		return nil, nil, err
	}
	return rec, proof.Payload, nil
}

// VerifyExistenceBatch fetches one batched proof for jsns and runs the
// client-side verification with the LSP state signature checked once:
// each journal still folds through its own fam path to the shared
// signed root. Returns the verified records (in jsns order) and their
// payloads (nil entries for digest-only or occulted journals).
func (c *Client) VerifyExistenceBatch(jsns []uint64, withPayload bool) ([]*journal.Record, [][]byte, error) {
	env, err := c.call("POST", "/v1/proofs", map[string]any{
		"jsns":    jsns,
		"payload": withPayload,
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return nil, nil, err
	}
	batch, err := ledger.DecodeExistenceProofBatch(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(batch.Items) != len(jsns) {
		return nil, nil, fmt.Errorf("%w: %d proofs for %d jsns", ledger.ErrVerify, len(batch.Items), len(jsns))
	}
	recs, err := ledger.VerifyExistenceBatch(batch, c.LSP)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.JSN != jsns[i] {
			return nil, nil, fmt.Errorf("%w: proof %d is for jsn %d, want %d", ledger.ErrVerify, i, rec.JSN, jsns[i])
		}
		payloads[i] = batch.Items[i].Payload
	}
	return recs, payloads, nil
}

// FetchAnchor downloads the service's current fam-aoa anchor. The
// caller must audit the ledger up to the anchor before trusting it;
// after that, VerifyExistenceAnchored uses near-constant-size proofs.
func (c *Client) FetchAnchor() (*fam.Anchor, error) {
	env, err := c.call("GET", "/v1/anchor", nil)
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return nil, err
	}
	return fam.DecodeAnchor(wire.NewReader(raw))
}

// VerifyExistenceAnchored is VerifyExistence in the fam-aoa regime: the
// proof is built and checked against the verifier-held trusted anchor,
// so sealed-epoch journals cost O(δ) instead of a full merged-leaf
// chain.
func (c *Client) VerifyExistenceAnchored(jsn uint64, anchor *fam.Anchor, withPayload bool) (*journal.Record, []byte, error) {
	path := fmt.Sprintf("/v1/proof-anchored/%d", jsn)
	if withPayload {
		path += "?payload=1"
	}
	wr := wire.NewWriter(256)
	anchor.Encode(wr)
	env, err := c.call("POST", path, map[string]string{
		"anchor": base64.StdEncoding.EncodeToString(wr.Bytes()),
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return nil, nil, err
	}
	proof, err := ledger.DecodeExistenceProof(raw)
	if err != nil {
		return nil, nil, err
	}
	rec, err := ledger.VerifyExistenceAnchored(proof, c.LSP, anchor)
	if err != nil {
		return nil, nil, err
	}
	return rec, proof.Payload, nil
}

// ClueJSNs lists a clue's journal sequence numbers.
func (c *Client) ClueJSNs(clue string) ([]uint64, error) {
	env, err := c.call("GET", "/v1/clue/"+clue+"/jsns", nil)
	if err != nil {
		return nil, err
	}
	return env.JSNs, nil
}

// VerifyClue runs the client-side lineage verification of §IV-C for a
// version range (end = 0 means the whole clue). It returns the verified
// records.
func (c *Client) VerifyClue(clue string, begin, end uint64) ([]*journal.Record, error) {
	env, err := c.call("GET", fmt.Sprintf("/v1/clue/%s/proof?begin=%d&end=%d", clue, begin, end), nil)
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return nil, err
	}
	bundle, err := ledger.DecodeClueProofBundle(raw)
	if err != nil {
		return nil, err
	}
	return ledger.VerifyClue(bundle, c.LSP)
}

// AnchorTime asks the service to run one time-notary round and verifies
// the returned receipt.
func (c *Client) AnchorTime() (*journal.Receipt, error) {
	env, err := c.call("POST", "/v1/anchor-time", nil)
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Receipt)
	if err != nil {
		return nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, err
	}
	return receipt, nil
}

// VerifyState runs a verifiable world-state read: fetch the MPT proof
// for key and check it against the LSP-signed state root. Returns the
// jsn and payload digest of the journal holding the current value.
func (c *Client) VerifyState(key []byte) (uint64, hashutil.Digest, error) {
	env, err := c.call("GET", "/v1/stateproof?key="+base64.StdEncoding.EncodeToString(key), nil)
	if err != nil {
		return 0, hashutil.Zero, err
	}
	raw, err := unb64(env.Proof)
	if err != nil {
		return 0, hashutil.Zero, err
	}
	p, err := ledger.DecodeStateProof(raw)
	if err != nil {
		return 0, hashutil.Zero, err
	}
	return ledger.VerifyState(p, c.LSP)
}

// Purge submits a purge with its gathered multi-signatures (admin API).
// The server re-verifies Prerequisite 1.
func (c *Client) Purge(desc *ledger.PurgeDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	return c.mutate("/v1/admin/purge", desc.EncodeBytes(), ms)
}

// Occult submits an occult with its gathered multi-signatures (admin
// API). The server re-verifies Prerequisite 2.
func (c *Client) Occult(desc *ledger.OccultDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	return c.mutate("/v1/admin/occult", desc.EncodeBytes(), ms)
}

func (c *Client) mutate(path string, desc []byte, ms *sig.MultiSig) (*journal.Receipt, error) {
	wr := wire.NewWriter(512)
	ms.Encode(wr)
	env, err := c.call("POST", path, map[string]string{
		"descriptor": base64.StdEncoding.EncodeToString(desc),
		"sigs":       base64.StdEncoding.EncodeToString(wr.Bytes()),
	})
	if err != nil {
		return nil, err
	}
	raw, err := unb64(env.Receipt)
	if err != nil {
		return nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, err
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, err
	}
	return receipt, nil
}

// Info reports the service's public counters.
func (c *Client) Info() (uri string, size, base, height uint64, err error) {
	env, err := c.call("GET", "/v1/info", nil)
	if err != nil {
		return "", 0, 0, 0, err
	}
	return env.URI, env.Size, env.Base, env.Height, nil
}

// DiscoverLSP fetches the service's advertised LSP key. Pinning a key
// from the service itself is trust-on-first-use: fine for tooling, not a
// substitute for an out-of-band pin in adversarial settings.
func (c *Client) DiscoverLSP() (sig.PublicKey, error) {
	env, err := c.call("GET", "/v1/info", nil)
	if err != nil {
		return sig.PublicKey{}, err
	}
	return sig.ParsePublicKey(env.LSPKey)
}
