// Package client is the ledger-client SDK for the HTTP service (package
// server). Every response that matters is re-verified locally: the
// client decodes the server's deterministic wire blobs and runs the pure
// verification functions, so a distrusted LSP cannot fake responses —
// "verified at client side when LSP is distrusted" (§II-C). The client
// also treats the network itself as hostile: calls honor context
// deadlines end to end, retries use capped full-jitter backoff and honor
// Retry-After, ambiguous append outcomes are made safe to retry by
// idempotency keys, a circuit breaker fails fast during outages, and any
// response that fails a local check is returned as a TamperError
// carrying the raw evidence.
package client

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/merkle/fam"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrHTTP = errors.New("client: request failed")
)

// APIError is a non-OK HTTP reply from the server, preserving the
// numeric status code. Callers that forward a backend error onward —
// the shard router fanning a request out through this client — need
// the code structurally (server.writeErr probes for HTTPStatus), not
// flattened into the message where a 410/451/403 would collapse to
// 500. It unwraps to ErrHTTP, and Error() keeps the historical
// "client: request failed: <status>: <message>" shape.
type APIError struct {
	Status     int    // numeric HTTP status code
	StatusText string // e.g. "410 Gone"
	Message    string // server envelope error text
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s: %s", ErrHTTP.Error(), e.StatusText, e.Message)
}

func (e *APIError) Unwrap() error { return ErrHTTP }

// HTTPStatus returns the reply's status code.
func (e *APIError) HTTPStatus() int { return e.Status }

// IdempotencyKeyHeader carries the client-computed request hash on
// append POSTs so the server can dedup a retried submission whose first
// response was lost.
const IdempotencyKeyHeader = "Idempotency-Key"

// Client talks to one ledger service endpoint on behalf of one member.
// A Client is safe for concurrent use once configured: the only mutable
// state is the request nonce, which is drawn atomically from a counter
// shared with every derived client (Clone, WithContext).
type Client struct {
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Key signs requests (π_c). Required for Append.
	Key *sig.KeyPair
	// LSP is the pinned service-provider key every receipt, state, and
	// proof is checked against. Required.
	LSP sig.PublicKey
	// Coordinator is the pinned cross-shard trust root: the key that
	// signs global states. Required only for GlobalState and
	// VerifyExistenceGlobal against a sharded deployment's router.
	Coordinator sig.PublicKey
	// URI is the target ledger identifier.
	URI string
	// Retries re-attempts a call after a retryable failure: 503/429 (the
	// server refused before committing) and 502/504 (an intermediary
	// failed), plus transport errors on GETs and on idempotency-keyed
	// appends (the server dedups a resubmission, so an ambiguous lost
	// response is safe to retry). Other POSTs are never transport-retried.
	// Zero means no retries.
	Retries int
	// RetryBackoff bounds the delay before the first retry; each actual
	// wait is drawn uniformly from [0, bound] (full jitter) and the bound
	// doubles per attempt up to MaxBackoff. A Retry-After header
	// overrides the jittered wait. Zero means 50ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the backoff bound (and any server-advertised
	// Retry-After). Zero means 5s.
	MaxBackoff time.Duration
	// Timeout bounds each call (all retries included). Zero means no
	// client-imposed deadline beyond Context's.
	Timeout time.Duration
	// Context is the base context for every call; nil means
	// context.Background(). Use WithContext to derive a per-request
	// client without mutating a shared one.
	Context context.Context
	// Breaker, when set, fails calls fast after consecutive transport
	// failures. Share one *Breaker per endpoint.
	Breaker *Breaker

	// sleepFn and jitterFn are test seams for the retry loop.
	sleepFn  func(ctx context.Context, d time.Duration) error
	jitterFn func(bound time.Duration) time.Duration

	nonceOnce sync.Once
	nonce     *atomic.Uint64
}

// nextNonce draws a process-unique request nonce. The counter is lazily
// allocated and shared by all clients derived from this one, so derived
// clients can never reuse a nonce.
func (c *Client) nextNonce() uint64 {
	c.nonceOnce.Do(func() {
		if c.nonce == nil {
			c.nonce = new(atomic.Uint64)
		}
	})
	return c.nonce.Add(1)
}

// Clone returns a new Client with the same configuration. The clone
// shares this client's nonce counter (and Breaker, if any), so clones
// may append concurrently without nonce collisions. Client values must
// not be copied directly (the nonce counter is copy-protected); use
// Clone to derive a variant, e.g. one pointed at a different BaseURL.
func (c *Client) Clone() *Client {
	c.nextNonce() // force counter allocation so the clone shares it
	return &Client{
		BaseURL:      c.BaseURL,
		HTTP:         c.HTTP,
		Key:          c.Key,
		LSP:          c.LSP,
		Coordinator:  c.Coordinator,
		URI:          c.URI,
		Retries:      c.Retries,
		RetryBackoff: c.RetryBackoff,
		MaxBackoff:   c.MaxBackoff,
		Timeout:      c.Timeout,
		Context:      c.Context,
		Breaker:      c.Breaker,
		sleepFn:      c.sleepFn,
		jitterFn:     c.jitterFn,
		nonce:        c.nonce,
	}
}

// WithContext returns a derived client whose calls run under ctx
// (sharing the nonce counter and breaker with the receiver). This is
// the per-call cancellation/deadline mechanism:
//
//	rc, err := cli.WithContext(ctx).Append(payload, "clue")
func (c *Client) WithContext(ctx context.Context) *Client {
	n := c.Clone()
	n.Context = ctx
	return n
}

type envelope struct {
	Receipt string   `json:"receipt"`
	State   string   `json:"state"`
	Record  string   `json:"record"`
	Proof   string   `json:"proof"`
	Payload string   `json:"payload"`
	JSNs    []uint64 `json:"jsns"`
	Result  string   `json:"result"`
	Error   string   `json:"error"`
	LSPKey  string   `json:"lsp_key"`
	URI     string   `json:"uri"`
	Size    uint64   `json:"size"`
	Base    uint64   `json:"base"`
	Height  uint64   `json:"height"`

	// Sharded-topology fields (router responses).
	Global   string            `json:"global"`
	Shard    *int              `json:"shard"`
	Shards   int               `json:"shards"`
	Receipts map[string]string `json:"receipts"`
	Results  map[string]string `json:"results"`
	CoordKey string            `json:"coord_key"`

	// Replication fields (pull frames and health watermarks).
	Frame      string  `json:"frame"`
	Generation *uint64 `json:"generation"`
	Jsn        *uint64 `json:"jsn"`
	Watermark  *uint64 `json:"watermark"`
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// reply is one completed exchange: the decoded envelope plus enough raw
// material to build TamperEvidence if a later check fails.
type reply struct {
	env        *envelope
	status     int
	httpStatus string
	retryAfter time.Duration
	method     string
	path       string
	reqBody    []byte
	rawBody    []byte
}

// tamper wraps a failed local check into a TamperError carrying this
// exchange's evidence.
func (r *reply) tamper(check string, err error) error {
	return &TamperError{
		Evidence: &TamperEvidence{
			Method:       r.method,
			Path:         r.path,
			Status:       r.status,
			RequestBody:  r.reqBody,
			ResponseBody: r.rawBody,
			Check:        check,
		},
		Err: err,
	}
}

// blob base64-decodes an envelope field, treating failure as tampering
// (the server encodes these fields itself; they cannot be malformed in
// an honest response).
func (r *reply) blob(field, what string) ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(field)
	if err != nil {
		return nil, r.tamper(what+" base64", fmt.Errorf("%w: base64: %v", ErrHTTP, err))
	}
	return b, nil
}

// retryableStatus reports whether a status is worth retrying: the
// server (or an intermediary) refused before committing anything.
// Everything else is a definitive answer — notably 404/410/451 for
// missing/purged/occulted journals and 4xx request errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusServiceUnavailable, // draining pipeline, closing ledger
		http.StatusTooManyRequests, // load shed before admission
		http.StatusBadGateway,      // intermediary failure
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.sleepFn != nil {
		return c.sleepFn(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) jitter(bound time.Duration) time.Duration {
	if c.jitterFn != nil {
		return c.jitterFn(bound)
	}
	if bound <= 0 {
		return 0
	}
	// Full jitter: uniform in [0, bound]. Decorrelated waits spread a
	// thundering herd of clients retrying after the same outage.
	return time.Duration(rand.Int63n(int64(bound) + 1))
}

func (c *Client) call(method, path string, body any) (*reply, error) {
	return c.callIdem(method, path, body, "")
}

// callIdem performs one logical call with retries. idem, when set, is
// the request's idempotency key: it makes transport-retrying a POST
// safe, because the server dedups resubmissions of the same key.
func (c *Client) callIdem(method, path string, body any, idem string) (*reply, error) {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = buf
	}
	ctx := c.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	maxBackoff := c.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	if backoff > maxBackoff {
		backoff = maxBackoff
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.Breaker != nil {
			if err := c.Breaker.Allow(); err != nil {
				if lastErr != nil {
					return nil, fmt.Errorf("%w (last error: %v)", err, lastErr)
				}
				return nil, err
			}
		}
		rep, err := c.doOnce(ctx, method, path, payload, idem)
		if c.Breaker != nil {
			// Only failures that never produced an HTTP response — and
			// were not the caller's own context expiring — count against
			// the circuit.
			c.Breaker.Record(err != nil && rep == nil && ctx.Err() == nil)
		}
		var retryAfter time.Duration
		switch {
		case err == nil && rep.status == http.StatusOK:
			return rep, nil
		case err == nil:
			lastErr = &APIError{Status: rep.status, StatusText: rep.httpStatus, Message: rep.env.Error}
			if !retryableStatus(rep.status) {
				return nil, lastErr
			}
			retryAfter = rep.retryAfter
		default:
			lastErr = err
			var te *TamperError
			if errors.As(err, &te) {
				// A forged response must surface with its evidence, not
				// be papered over by a retry that happens to verify.
				return nil, lastErr
			}
			if ctx.Err() != nil {
				return nil, lastErr
			}
			if method != http.MethodGet && idem == "" {
				// A lost response does not mean a lost commit; without an
				// idempotency key a non-idempotent call must not be
				// resubmitted.
				return nil, lastErr
			}
		}
		if attempt >= c.Retries {
			return nil, lastErr
		}
		wait := c.jitter(backoff)
		if retryAfter > 0 {
			// Honor the server's hint, bounded so a hostile header cannot
			// stall the client past its own cap.
			wait = retryAfter
			if wait > maxBackoff {
				wait = maxBackoff
			}
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			return nil, fmt.Errorf("%w (last error: %v)", serr, lastErr)
		}
		// Double the bound with an overflow-proof cap.
		if backoff > maxBackoff/2 {
			backoff = maxBackoff
		} else {
			backoff *= 2
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, idem string) (*reply, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idem != "" {
		req.Header.Set(IdempotencyKeyHeader, idem)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrHTTP, err)
	}
	defer resp.Body.Close()
	rawBody, err := io.ReadAll(resp.Body)
	if err != nil {
		// Truncated or reset mid-body: a transport failure, retryable
		// where a lost response is retryable.
		return nil, fmt.Errorf("%w: read body: %w", ErrHTTP, err)
	}
	rep := &reply{
		env:        &envelope{},
		status:     resp.StatusCode,
		httpStatus: resp.Status,
		method:     method,
		path:       path,
		reqBody:    payload,
		rawBody:    rawBody,
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
			rep.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if err := json.Unmarshal(rawBody, rep.env); err != nil {
		if resp.StatusCode != http.StatusOK {
			// Error statuses may carry non-JSON bodies (proxies, caps).
			return rep, nil
		}
		// rep is returned too so the caller can tell this apart from a
		// transport failure (an HTTP response did arrive — the circuit
		// breaker must not count it).
		return rep, rep.tamper("envelope decode", fmt.Errorf("%w: decode: %v", ErrHTTP, err))
	}
	return rep, nil
}

// Append signs and submits a normal journal, verifying the returned
// receipt (π_s) against the pinned LSP key and the submitted hashes.
// The submission carries an idempotency key (the signed request's
// hash), so a retry after a lost response cannot double-append.
func (c *Client) Append(payload []byte, clues ...string) (*journal.Receipt, error) {
	_, receipt, err := c.AppendRouted(payload, clues...)
	return receipt, err
}

// AppendBatch signs and submits several payloads in one exchange (the
// amortized write path). The batch receipt is verified against the
// pinned LSP key and the returned tx-hash list; payloads[i] maps to jsn
// FirstJSN+i. The submission carries an idempotency key derived from
// all request hashes, so a retry after a lost response cannot
// double-append the batch.
func (c *Client) AppendBatch(payloads [][]byte, clues [][]string) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	if clues != nil && len(clues) != len(payloads) {
		return nil, nil, fmt.Errorf("%w: %d clue sets for %d payloads", journal.ErrBadRequest, len(clues), len(payloads))
	}
	reqs := make([]*journal.Request, len(payloads))
	for i, p := range payloads {
		req := &journal.Request{
			LedgerURI: c.URI,
			Type:      journal.TypeNormal,
			Payload:   p,
			Nonce:     c.nextNonce(),
		}
		if clues != nil {
			req.Clues = clues[i]
		}
		if err := req.Sign(c.Key); err != nil {
			return nil, nil, err
		}
		reqs[i] = req
	}
	return c.SubmitBatch(reqs)
}

// State fetches and verifies the live signed state.
func (c *Client) State() (*ledger.SignedState, error) {
	rep, err := c.call("GET", "/v1/state", nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.State, "state")
	if err != nil {
		return nil, err
	}
	st, err := ledger.DecodeSignedState(wire.NewReader(raw))
	if err != nil {
		return nil, rep.tamper("state decode", err)
	}
	if err := st.Verify(c.LSP); err != nil {
		return nil, rep.tamper("state signature", err)
	}
	return st, nil
}

// GetJournal fetches a committed record (unverified metadata read).
func (c *Client) GetJournal(jsn uint64) (*journal.Record, error) {
	rep, err := c.call("GET", fmt.Sprintf("/v1/journal/%d", jsn), nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Record, "record")
	if err != nil {
		return nil, err
	}
	rec, err := journal.DecodeRecord(raw)
	if err != nil {
		return nil, rep.tamper("record decode", err)
	}
	return rec, nil
}

// GetPayload fetches a journal's raw payload.
func (c *Client) GetPayload(jsn uint64) ([]byte, error) {
	rep, err := c.call("GET", fmt.Sprintf("/v1/payload/%d", jsn), nil)
	if err != nil {
		return nil, err
	}
	return rep.blob(rep.env.Payload, "payload")
}

// VerifyExistence runs the full client-side what(+who) verification for
// one journal: fetch the proof bundle and validate every layer locally.
func (c *Client) VerifyExistence(jsn uint64, withPayload bool) (*journal.Record, []byte, error) {
	path := fmt.Sprintf("/v1/proof/%d", jsn)
	if withPayload {
		path += "?payload=1"
	}
	rep, err := c.call("GET", path, nil)
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "proof")
	if err != nil {
		return nil, nil, err
	}
	proof, err := ledger.DecodeExistenceProof(raw)
	if err != nil {
		return nil, nil, rep.tamper("existence proof decode", err)
	}
	rec, err := ledger.VerifyExistence(proof, c.LSP)
	if err != nil {
		return nil, nil, rep.tamper("existence proof verification", err)
	}
	return rec, proof.Payload, nil
}

// VerifyExistenceBatch fetches one batched proof for jsns and runs the
// client-side verification with the LSP state signature checked once:
// each journal still folds through its own fam path to the shared
// signed root. Returns the verified records (in jsns order) and their
// payloads (nil entries for digest-only or occulted journals).
func (c *Client) VerifyExistenceBatch(jsns []uint64, withPayload bool) ([]*journal.Record, [][]byte, error) {
	rep, err := c.call("POST", "/v1/proofs", map[string]any{
		"jsns":    jsns,
		"payload": withPayload,
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "proof batch")
	if err != nil {
		return nil, nil, err
	}
	batch, err := ledger.DecodeExistenceProofBatch(raw)
	if err != nil {
		return nil, nil, rep.tamper("proof batch decode", err)
	}
	if len(batch.Items) != len(jsns) {
		return nil, nil, rep.tamper("proof batch shape",
			fmt.Errorf("%w: %d proofs for %d jsns", ledger.ErrVerify, len(batch.Items), len(jsns)))
	}
	recs, err := ledger.VerifyExistenceBatch(batch, c.LSP)
	if err != nil {
		return nil, nil, rep.tamper("proof batch verification", err)
	}
	payloads := make([][]byte, len(recs))
	for i, rec := range recs {
		if rec.JSN != jsns[i] {
			return nil, nil, rep.tamper("proof batch jsn binding",
				fmt.Errorf("%w: proof %d is for jsn %d, want %d", ledger.ErrVerify, i, rec.JSN, jsns[i]))
		}
		payloads[i] = batch.Items[i].Payload
	}
	return recs, payloads, nil
}

// FetchAnchor downloads the service's current fam-aoa anchor. The
// caller must audit the ledger up to the anchor before trusting it;
// after that, VerifyExistenceAnchored uses near-constant-size proofs.
func (c *Client) FetchAnchor() (*fam.Anchor, error) {
	rep, err := c.call("GET", "/v1/anchor", nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "anchor")
	if err != nil {
		return nil, err
	}
	a, err := fam.DecodeAnchor(wire.NewReader(raw))
	if err != nil {
		return nil, rep.tamper("anchor decode", err)
	}
	return a, nil
}

// VerifyExistenceAnchored is VerifyExistence in the fam-aoa regime: the
// proof is built and checked against the verifier-held trusted anchor,
// so sealed-epoch journals cost O(δ) instead of a full merged-leaf
// chain.
func (c *Client) VerifyExistenceAnchored(jsn uint64, anchor *fam.Anchor, withPayload bool) (*journal.Record, []byte, error) {
	path := fmt.Sprintf("/v1/proof-anchored/%d", jsn)
	if withPayload {
		path += "?payload=1"
	}
	wr := wire.NewWriter(256)
	anchor.Encode(wr)
	rep, err := c.call("POST", path, map[string]string{
		"anchor": base64.StdEncoding.EncodeToString(wr.Bytes()),
	})
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "anchored proof")
	if err != nil {
		return nil, nil, err
	}
	proof, err := ledger.DecodeExistenceProof(raw)
	if err != nil {
		return nil, nil, rep.tamper("anchored proof decode", err)
	}
	rec, err := ledger.VerifyExistenceAnchored(proof, c.LSP, anchor)
	if err != nil {
		return nil, nil, rep.tamper("anchored proof verification", err)
	}
	return rec, proof.Payload, nil
}

// ClueJSNs lists a clue's journal sequence numbers.
func (c *Client) ClueJSNs(clue string) ([]uint64, error) {
	rep, err := c.call("GET", "/v1/clue/"+clue+"/jsns", nil)
	if err != nil {
		return nil, err
	}
	return rep.env.JSNs, nil
}

// VerifyClue runs the client-side lineage verification of §IV-C for a
// version range (end = 0 means the whole clue). It returns the verified
// records.
func (c *Client) VerifyClue(clue string, begin, end uint64) ([]*journal.Record, error) {
	rep, err := c.call("GET", fmt.Sprintf("/v1/clue/%s/proof?begin=%d&end=%d", clue, begin, end), nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "clue proof")
	if err != nil {
		return nil, err
	}
	bundle, err := ledger.DecodeClueProofBundle(raw)
	if err != nil {
		return nil, rep.tamper("clue bundle decode", err)
	}
	recs, err := ledger.VerifyClue(bundle, c.LSP)
	if err != nil {
		return nil, rep.tamper("clue lineage verification", err)
	}
	return recs, nil
}

// AnchorTime asks the service to run one time-notary round and verifies
// the returned receipt.
func (c *Client) AnchorTime() (*journal.Receipt, error) {
	rep, err := c.call("POST", "/v1/anchor-time", nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Receipt, "receipt")
	if err != nil {
		return nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, rep.tamper("receipt decode", err)
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, rep.tamper("receipt signature", err)
	}
	return receipt, nil
}

// VerifyState runs a verifiable world-state read: fetch the MPT proof
// for key and check it against the LSP-signed state root. Returns the
// jsn and payload digest of the journal holding the current value.
func (c *Client) VerifyState(key []byte) (uint64, hashutil.Digest, error) {
	rep, err := c.call("GET", "/v1/stateproof?key="+base64.StdEncoding.EncodeToString(key), nil)
	if err != nil {
		return 0, hashutil.Zero, err
	}
	raw, err := rep.blob(rep.env.Proof, "state proof")
	if err != nil {
		return 0, hashutil.Zero, err
	}
	p, err := ledger.DecodeStateProof(raw)
	if err != nil {
		return 0, hashutil.Zero, rep.tamper("state proof decode", err)
	}
	jsn, dig, err := ledger.VerifyState(p, c.LSP)
	if err != nil {
		return 0, hashutil.Zero, rep.tamper("state proof verification", err)
	}
	return jsn, dig, nil
}

// Purge submits a purge with its gathered multi-signatures (admin API).
// The server re-verifies Prerequisite 1.
func (c *Client) Purge(desc *ledger.PurgeDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	return c.mutate("/v1/admin/purge", desc.EncodeBytes(), ms)
}

// Occult submits an occult with its gathered multi-signatures (admin
// API). The server re-verifies Prerequisite 2.
func (c *Client) Occult(desc *ledger.OccultDescriptor, ms *sig.MultiSig) (*journal.Receipt, error) {
	return c.mutate("/v1/admin/occult", desc.EncodeBytes(), ms)
}

func (c *Client) mutate(path string, desc []byte, ms *sig.MultiSig) (*journal.Receipt, error) {
	wr := wire.NewWriter(512)
	ms.Encode(wr)
	rep, err := c.call("POST", path, map[string]string{
		"descriptor": base64.StdEncoding.EncodeToString(desc),
		"sigs":       base64.StdEncoding.EncodeToString(wr.Bytes()),
	})
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Receipt, "receipt")
	if err != nil {
		return nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, rep.tamper("receipt decode", err)
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, rep.tamper("receipt signature", err)
	}
	return receipt, nil
}

// Info reports the service's public counters.
func (c *Client) Info() (uri string, size, base, height uint64, err error) {
	rep, err := c.call("GET", "/v1/info", nil)
	if err != nil {
		return "", 0, 0, 0, err
	}
	return rep.env.URI, rep.env.Size, rep.env.Base, rep.env.Height, nil
}

// PullFrame fetches one sealed replication frame for stream starting at
// offset from (max 0 lets the server pick its ceiling). It returns the
// frame's raw bytes: the replica puller decodes and digest-verifies them
// itself, so the codec check happens exactly once, at the trust
// boundary. Calls run under ctx end to end.
func (c *Client) PullFrame(ctx context.Context, stream string, from uint64, max int) ([]byte, error) {
	path := fmt.Sprintf("/v1/replica/pull?stream=%s&from=%d&max=%d", url.QueryEscape(stream), from, max)
	rep, err := c.WithContext(ctx).call("GET", path, nil)
	if err != nil {
		return nil, err
	}
	return rep.blob(rep.env.Frame, "frame")
}

// StateCtx is State under an explicit context (the replica puller's
// checkpoint fetch).
func (c *Client) StateCtx(ctx context.Context) (*ledger.SignedState, error) {
	return c.WithContext(ctx).State()
}

// FetchBundle downloads a self-contained offline proof bundle for one
// journal and verifies it against the pinned LSP key before returning
// it (no TSA pin at this layer — the offline verifier applies its own).
func (c *Client) FetchBundle(jsn uint64, withPayload bool) (*ledger.ProofBundle, error) {
	path := fmt.Sprintf("/v1/bundle/%d", jsn)
	if withPayload {
		path += "?payload=1"
	}
	rep, err := c.call("GET", path, nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "bundle")
	if err != nil {
		return nil, err
	}
	b, err := ledger.DecodeProofBundle(raw)
	if err != nil {
		return nil, rep.tamper("bundle decode", err)
	}
	if _, _, err := ledger.VerifyBundle(b, c.LSP, nil); err != nil {
		return nil, rep.tamper("bundle verification", err)
	}
	return b, nil
}

// Health reads the service's /healthz watermark fields: the applied
// journal frontier (jsn) and the newest verified checkpoint (watermark).
// On a follower, jsn-watermark is the staleness the service admits to.
func (c *Client) Health() (generation, jsn, watermark uint64, err error) {
	rep, err := c.call("GET", "/healthz", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	if rep.env.Generation == nil || rep.env.Jsn == nil || rep.env.Watermark == nil {
		return 0, 0, 0, rep.tamper("health shape", fmt.Errorf("%w: health reply missing watermark fields", ErrHTTP))
	}
	return *rep.env.Generation, *rep.env.Jsn, *rep.env.Watermark, nil
}

// DiscoverLSP fetches the service's advertised LSP key. Pinning a key
// from the service itself is trust-on-first-use: fine for tooling, not a
// substitute for an out-of-band pin in adversarial settings.
func (c *Client) DiscoverLSP() (sig.PublicKey, error) {
	rep, err := c.call("GET", "/v1/info", nil)
	if err != nil {
		return sig.PublicKey{}, err
	}
	return sig.ParsePublicKey(rep.env.LSPKey)
}
