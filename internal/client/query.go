// Rich-query client surface: proof-carrying prefix/time/signer reads
// and authenticated absence. Every reply is re-verified locally against
// the pinned LSP key before it is returned — the server's index is
// cache, the proofs are the product, and a tampered reply surfaces as
// TamperError with evidence, exactly like the point-read paths.
package client

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strconv"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/shard"
)

// queryPath renders a query as /v1/query parameters (the server's
// queryFromURL is the inverse).
func queryPath(q ledger.Query) string {
	v := url.Values{}
	switch q.Kind {
	case ledger.QueryByPrefix:
		v.Set("kind", "prefix")
		if q.Prefix != "" {
			v.Set("prefix", q.Prefix)
		}
	case ledger.QueryByTime:
		v.Set("kind", "time")
		v.Set("from", strconv.FormatInt(q.From, 10))
		v.Set("to", strconv.FormatInt(q.To, 10))
	case ledger.QueryBySigner:
		v.Set("kind", "signer")
		v.Set("signer", q.Signer.Hex())
	}
	if q.Limit != 0 {
		v.Set("limit", strconv.FormatUint(q.Limit, 10))
	}
	if q.WithPayload {
		v.Set("payload", "1")
	}
	return "/v1/query?" + v.Encode()
}

// absencePath renders an absence request as /v1/absence parameters.
func absencePath(name string, prefix bool) string {
	v := url.Values{}
	v.Set("clue", name)
	if prefix {
		v.Set("prefix", "1")
	}
	return "/v1/absence?" + v.Encode()
}

// decodeVerifiedResult decodes one QueryResult blob and runs the full
// offline verification against the issued query.
func (c *Client) decodeVerifiedResult(rep *reply, enc string, q ledger.Query) ([]*journal.Record, *ledger.QueryResult, error) {
	raw, err := rep.blob(enc, "query result")
	if err != nil {
		return nil, nil, err
	}
	res, err := ledger.DecodeQueryResult(raw)
	if err != nil {
		return nil, nil, rep.tamper("query result decode", err)
	}
	recs, err := ledger.VerifyQueryResult(c.LSP, q, res)
	if err != nil {
		return nil, nil, rep.tamper("query result verification", err)
	}
	return recs, res, nil
}

// Query runs a verified rich read against a single ledger service (or
// one shard) and returns the proof-carrying result. It implements the
// router's ShardBackend read path. Use QueryRecords for the decoded
// records, or against a router.
func (c *Client) Query(q ledger.Query) (*ledger.QueryResult, error) {
	rep, err := c.call("GET", queryPath(q), nil)
	if err != nil {
		return nil, err
	}
	if rep.env.Results != nil {
		return nil, fmt.Errorf("%w: sharded reply to single-shard query (use QueryRecords)", ErrHTTP)
	}
	_, res, err := c.decodeVerifiedResult(rep, rep.env.Result, q)
	return res, err
}

// QueryRecords runs a verified rich read against either a single
// service or a sharded router, returning the proven records. Sharded
// replies carry one independently verified result per shard; records
// come back grouped by shard index, ascending jsn within each.
func (c *Client) QueryRecords(q ledger.Query) ([]*journal.Record, error) {
	rep, err := c.call("GET", queryPath(q), nil)
	if err != nil {
		return nil, err
	}
	if rep.env.Results == nil {
		recs, _, err := c.decodeVerifiedResult(rep, rep.env.Result, q)
		return recs, err
	}
	if len(rep.env.Results) != rep.env.Shards {
		return nil, rep.tamper("query coverage",
			fmt.Errorf("%w: %d shard results for %d shards", ledger.ErrVerify, len(rep.env.Results), rep.env.Shards))
	}
	shards := make([]int, 0, len(rep.env.Results))
	for key := range rep.env.Results {
		i, err := strconv.Atoi(key)
		if err != nil || i < 0 || i >= rep.env.Shards {
			return nil, rep.tamper("query shard key", fmt.Errorf("%w: shard key %q", ErrHTTP, key))
		}
		shards = append(shards, i)
	}
	sort.Ints(shards)
	var out []*journal.Record
	for _, i := range shards {
		recs, _, err := c.decodeVerifiedResult(rep, rep.env.Results[strconv.Itoa(i)], q)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// decodeVerifiedAbsence decodes one AbsenceProof blob, verifies it
// against the pinned LSP key, and binds it to the issued question.
func (c *Client) decodeVerifiedAbsence(rep *reply, enc, name string, prefix bool) (*ledger.AbsenceProof, error) {
	raw, err := rep.blob(enc, "absence proof")
	if err != nil {
		return nil, err
	}
	ap, err := ledger.DecodeAbsenceProof(raw)
	if err != nil {
		return nil, rep.tamper("absence proof decode", err)
	}
	if ap.Name != name || ap.Prefix != prefix {
		return nil, rep.tamper("absence proof binding",
			fmt.Errorf("%w: proof answers (%q, prefix=%t), asked (%q, prefix=%t)", ledger.ErrVerify, ap.Name, ap.Prefix, name, prefix))
	}
	if err := ledger.VerifyAbsence(c.LSP, ap); err != nil {
		return nil, rep.tamper("absence proof verification", err)
	}
	return ap, nil
}

// ProveAbsence fetches and verifies an authenticated absence from a
// single ledger service (or one shard). It implements the router's
// ShardBackend read path; ErrPresent surfaces as the 409 APIError.
func (c *Client) ProveAbsence(name string, prefix bool) (*ledger.AbsenceProof, error) {
	rep, err := c.call("GET", absencePath(name, prefix), nil)
	if err != nil {
		return nil, err
	}
	if rep.env.Results != nil {
		return nil, fmt.Errorf("%w: sharded reply to single-shard absence (use VerifyAbsence)", ErrHTTP)
	}
	return c.decodeVerifiedAbsence(rep, rep.env.Result, name, prefix)
}

// VerifyAbsence establishes, against either a single service or a
// sharded router, that no live clue equals name (or starts with it
// when prefix). The returned proofs — one per shard — are what a
// skeptical third party re-verifies offline. For sharded prefix
// absence every shard must prove its own clue set clean; for an exact
// clue the client recomputes the partitioner route locally, so a
// malicious router cannot point the question at a shard that never
// owned the clue.
func (c *Client) VerifyAbsence(name string, prefix bool) ([]*ledger.AbsenceProof, error) {
	rep, err := c.call("GET", absencePath(name, prefix), nil)
	if err != nil {
		return nil, err
	}
	if rep.env.Results == nil {
		if rep.env.Shard != nil && rep.env.Shards > 1 {
			part, err := shard.NewPartitioner(rep.env.Shards)
			if err != nil {
				return nil, err
			}
			if want := part.ShardOfClue(name); want != *rep.env.Shard {
				return nil, rep.tamper("absence shard binding",
					fmt.Errorf("%w: clue %q routes to shard %d, proof came from %d", ledger.ErrVerify, name, want, *rep.env.Shard))
			}
		}
		ap, err := c.decodeVerifiedAbsence(rep, rep.env.Result, name, prefix)
		if err != nil {
			return nil, err
		}
		return []*ledger.AbsenceProof{ap}, nil
	}
	if len(rep.env.Results) != rep.env.Shards {
		return nil, rep.tamper("absence coverage",
			fmt.Errorf("%w: %d shard proofs for %d shards", ledger.ErrVerify, len(rep.env.Results), rep.env.Shards))
	}
	proofs := make([]*ledger.AbsenceProof, 0, rep.env.Shards)
	for i := 0; i < rep.env.Shards; i++ {
		enc, ok := rep.env.Results[strconv.Itoa(i)]
		if !ok {
			return nil, rep.tamper("absence coverage",
				fmt.Errorf("%w: shard %d missing from absence reply", ledger.ErrVerify, i))
		}
		ap, err := c.decodeVerifiedAbsence(rep, enc, name, prefix)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		proofs = append(proofs, ap)
	}
	return proofs, nil
}

// IsPresent reports whether an absence request failed because the clue
// is live (the server's 409).
func IsPresent(err error) bool {
	var api *APIError
	return errors.As(err, &api) && api.Status == 409
}
