// Cross-shard client surface: forwarding pre-signed requests (the
// router's backend path) and verifying records against the
// coordinator-signed global root. The coordinator key is pinned the
// same way the LSP key is — a distrusted router cannot fake a global
// state or proof.
package client

import (
	"encoding/base64"
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/shard"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/wire"
)

// SubmitRequest forwards an already-signed request, verifying the
// returned receipt against the pinned LSP key and the request hash. The
// router uses this per shard; it is also the path for relaying a
// request signed by someone other than this client's Key.
func (c *Client) SubmitRequest(req *journal.Request) (*journal.Receipt, error) {
	_, receipt, err := c.submitRequest(req)
	return receipt, err
}

func (c *Client) submitRequest(req *journal.Request) (*reply, *journal.Receipt, error) {
	rep, err := c.callIdem("POST", "/v1/append", map[string]string{
		"request": base64.StdEncoding.EncodeToString(req.EncodeBytes()),
	}, journal.RequestKey(req.Hash()))
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Receipt, "receipt")
	if err != nil {
		return nil, nil, err
	}
	receipt, err := journal.DecodeReceipt(wire.NewReader(raw))
	if err != nil {
		return nil, nil, rep.tamper("receipt decode", err)
	}
	if err := receipt.Verify(c.LSP); err != nil {
		return nil, nil, rep.tamper("receipt signature", err)
	}
	if receipt.RequestHash != req.Hash() {
		return nil, nil, rep.tamper("receipt request binding",
			fmt.Errorf("%w: receipt acknowledges a different request", journal.ErrBadSignature))
	}
	return rep, receipt, nil
}

// SubmitBatch forwards a pre-signed batch, verifying the batch receipt
// and returning it with the committed tx-hashes.
func (c *Client) SubmitBatch(reqs []*journal.Request) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	encoded := make([]string, len(reqs))
	reqHashes := make([]hashutil.Digest, len(reqs))
	for i, req := range reqs {
		encoded[i] = base64.StdEncoding.EncodeToString(req.EncodeBytes())
		reqHashes[i] = req.Hash()
	}
	rep, err := c.callIdem("POST", "/v1/append-batch", map[string]any{"requests": encoded}, journal.BatchRequestKey(reqHashes))
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Receipt, "batch receipt")
	if err != nil {
		return nil, nil, err
	}
	return c.decodeBatchReceipt(rep, raw)
}

// decodeBatchReceipt parses and LSP-verifies one batch-receipt wire blob
// (the shared layout of /v1/append-batch and the router's per-shard
// receipts).
func (c *Client) decodeBatchReceipt(rep *reply, raw []byte) (*ledger.BatchReceipt, []hashutil.Digest, error) {
	r := wire.NewReader(raw)
	br := &ledger.BatchReceipt{
		FirstJSN:  r.Uvarint(),
		Count:     r.Uvarint(),
		BatchHash: r.Digest(),
		Timestamp: r.Int64(),
		LSPPK:     sig.DecodePublicKey(r),
		LSPSig:    sig.DecodeSignature(r),
	}
	txHashes := make([]hashutil.Digest, 0, br.Count)
	for i := uint64(0); i < br.Count; i++ {
		txHashes = append(txHashes, r.Digest())
		if r.Err() != nil {
			return nil, nil, rep.tamper("batch receipt decode", r.Err())
		}
	}
	if err := r.Finish(); err != nil {
		return nil, nil, rep.tamper("batch receipt decode", err)
	}
	if err := br.Verify(c.LSP, txHashes); err != nil {
		return nil, nil, rep.tamper("batch receipt signature", err)
	}
	return br, txHashes, nil
}

// AppendRouted is Append against a sharded router: it also returns the
// shard index the request landed on, which VerifyExistenceGlobal needs
// (receipts carry shard-local jsns). Against a single-node service the
// shard is 0.
func (c *Client) AppendRouted(payload []byte, clues ...string) (int, *journal.Receipt, error) {
	req := &journal.Request{
		LedgerURI: c.URI,
		Type:      journal.TypeNormal,
		Clues:     clues,
		Payload:   payload,
		Nonce:     c.nextNonce(),
	}
	if err := req.Sign(c.Key); err != nil {
		return 0, nil, err
	}
	rep, receipt, err := c.submitRequest(req)
	if err != nil {
		return 0, nil, err
	}
	shardIdx := 0
	if rep.env.Shard != nil {
		shardIdx = *rep.env.Shard
	}
	return shardIdx, receipt, nil
}

// AppendBatchSharded signs and submits a batch through the router's
// fan-out, returning each shard's verified batch receipt and tx-hashes
// keyed by shard index. The client checks that the shards' receipts
// cover exactly the submitted count — a router cannot silently drop a
// sub-batch.
func (c *Client) AppendBatchSharded(payloads [][]byte, clues [][]string) (map[int]*ledger.BatchReceipt, map[int][]hashutil.Digest, error) {
	if clues != nil && len(clues) != len(payloads) {
		return nil, nil, fmt.Errorf("%w: %d clue sets for %d payloads", journal.ErrBadRequest, len(clues), len(payloads))
	}
	encoded := make([]string, len(payloads))
	reqHashes := make([]hashutil.Digest, len(payloads))
	for i, p := range payloads {
		req := &journal.Request{
			LedgerURI: c.URI,
			Type:      journal.TypeNormal,
			Payload:   p,
			Nonce:     c.nextNonce(),
		}
		if clues != nil {
			req.Clues = clues[i]
		}
		if err := req.Sign(c.Key); err != nil {
			return nil, nil, err
		}
		encoded[i] = base64.StdEncoding.EncodeToString(req.EncodeBytes())
		reqHashes[i] = req.Hash()
	}
	rep, err := c.callIdem("POST", "/v1/append-batch", map[string]any{"requests": encoded}, journal.BatchRequestKey(reqHashes))
	if err != nil {
		return nil, nil, err
	}
	if rep.env.Receipts == nil {
		// A single-node service answered with one receipt; present it as
		// shard 0 so callers are topology-agnostic.
		raw, err := rep.blob(rep.env.Receipt, "batch receipt")
		if err != nil {
			return nil, nil, err
		}
		br, tx, err := c.decodeBatchReceipt(rep, raw)
		if err != nil {
			return nil, nil, err
		}
		return map[int]*ledger.BatchReceipt{0: br}, map[int][]hashutil.Digest{0: tx}, nil
	}
	receipts := make(map[int]*ledger.BatchReceipt, len(rep.env.Receipts))
	hashes := make(map[int][]hashutil.Digest, len(rep.env.Receipts))
	var covered uint64
	for key, enc := range rep.env.Receipts {
		var shardIdx int
		if _, err := fmt.Sscanf(key, "%d", &shardIdx); err != nil {
			return nil, nil, rep.tamper("batch receipt shard key", fmt.Errorf("%w: shard key %q", ErrHTTP, key))
		}
		raw, err := rep.blob(enc, "batch receipt")
		if err != nil {
			return nil, nil, err
		}
		br, tx, err := c.decodeBatchReceipt(rep, raw)
		if err != nil {
			return nil, nil, err
		}
		receipts[shardIdx] = br
		hashes[shardIdx] = tx
		covered += br.Count
	}
	if covered != uint64(len(payloads)) {
		return nil, nil, rep.tamper("batch coverage",
			fmt.Errorf("%w: receipts cover %d journals, submitted %d", ledger.ErrVerify, covered, len(payloads)))
	}
	return receipts, hashes, nil
}

// GlobalState fetches the coordinator-signed cross-shard state and
// verifies it against the pinned Coordinator key.
func (c *Client) GlobalState() (*shard.GlobalState, error) {
	rep, err := c.call("GET", "/v1/global", nil)
	if err != nil {
		return nil, err
	}
	raw, err := rep.blob(rep.env.Global, "global state")
	if err != nil {
		return nil, err
	}
	g, err := shard.DecodeGlobalStateBytes(raw)
	if err != nil {
		return nil, rep.tamper("global state decode", err)
	}
	if err := g.Verify(c.Coordinator); err != nil {
		return nil, rep.tamper("global state signature", err)
	}
	return g, nil
}

// VerifyExistenceGlobal runs the full cross-shard verification for one
// record: fetch the global proof and locally check the chain record →
// shard fam root → coordinator-signed global root. Only the pinned
// Coordinator key is trusted — the shard's own signed state never
// enters the check.
func (c *Client) VerifyExistenceGlobal(shardIdx int, jsn uint64, withPayload bool) (*journal.Record, []byte, error) {
	path := fmt.Sprintf("/v1/proof-global/%d/%d", shardIdx, jsn)
	if withPayload {
		path += "?payload=1"
	}
	rep, err := c.call("GET", path, nil)
	if err != nil {
		return nil, nil, err
	}
	raw, err := rep.blob(rep.env.Proof, "global proof")
	if err != nil {
		return nil, nil, err
	}
	p, err := shard.DecodeGlobalProof(raw)
	if err != nil {
		return nil, nil, rep.tamper("global proof decode", err)
	}
	rec, err := shard.VerifyGlobal(p, c.Coordinator)
	if err != nil {
		return nil, nil, rep.tamper("global proof verification", err)
	}
	if rec.JSN != jsn || int(p.Head.Shard) != shardIdx {
		return nil, nil, rep.tamper("global proof binding",
			fmt.Errorf("%w: proof is for shard %d jsn %d, want shard %d jsn %d",
				ledger.ErrVerify, p.Head.Shard, rec.JSN, shardIdx, jsn))
	}
	return rec, p.Record.Payload, nil
}

// ShardOf asks the router which shard owns a clue (and how many shards
// the topology has), so shard-local reads can go to the owning service.
func (c *Client) ShardOf(clue string) (shardIdx, shards int, err error) {
	rep, err := c.call("GET", "/v1/shard-of?clue="+clue, nil)
	if err != nil {
		return 0, 0, err
	}
	if rep.env.Shard == nil {
		return 0, 0, rep.tamper("shard-of shape", fmt.Errorf("%w: missing shard index", ErrHTTP))
	}
	return *rep.env.Shard, rep.env.Shards, nil
}

// DiscoverCoordinator fetches the router's advertised coordinator key.
// Trust-on-first-use, same caveats as DiscoverLSP.
func (c *Client) DiscoverCoordinator() (sig.PublicKey, error) {
	rep, err := c.call("GET", "/v1/info", nil)
	if err != nil {
		return sig.PublicKey{}, err
	}
	return sig.ParsePublicKey(rep.env.CoordKey)
}
