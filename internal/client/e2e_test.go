package client

import (
	"net/http/httptest"
	"testing"

	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/server"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
	"ledgerdb/internal/tledger"
	"ledgerdb/internal/tsa"
)

// In-package happy-path coverage: the SDK against a real service. (The
// server package hosts the cross-package end-to-end suite; these tests
// exercise the same flows from the client's side of the wire.)

func liveClient(t *testing.T) (*Client, *ledger.Ledger) {
	t.Helper()
	clock := logicalclock.New(500_000)
	lsp := sig.GenerateDeterministic("cli-e2e-lsp")
	authority := tsa.New("cli-e2e", tsa.Options{Clock: clock.Now})
	tl, err := tledger.New(tledger.Config{Clock: clock.Now, Tolerance: 1_000, TSA: tsa.NewPool(authority)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{
		URI:           "ledger://cli-e2e",
		FractalHeight: 4,
		BlockSize:     8,
		LSP:           lsp,
		DBA:           sig.GenerateDeterministic("cli-e2e-dba").Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
		Clock:         clock.Tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(l, tl))
	t.Cleanup(srv.Close)
	return &Client{
		BaseURL: srv.URL,
		Key:     sig.GenerateDeterministic("cli-e2e-client"),
		LSP:     lsp.Public(),
		URI:     "ledger://cli-e2e",
	}, l
}

func TestClientHappyPaths(t *testing.T) {
	c, _ := liveClient(t)

	// Discovery matches the pinned key.
	pk, err := c.DiscoverLSP()
	if err != nil || pk != c.LSP {
		t.Fatalf("DiscoverLSP: %v", err)
	}

	// Append + journal/payload reads.
	r, err := c.Append([]byte("doc-0"), "k")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.GetJournal(r.JSN)
	if err != nil || rec.JSN != r.JSN {
		t.Fatalf("GetJournal: %v", err)
	}
	payload, err := c.GetPayload(r.JSN)
	if err != nil || string(payload) != "doc-0" {
		t.Fatalf("GetPayload: %q, %v", payload, err)
	}

	// Existence + state + info.
	if _, _, err := c.VerifyExistence(r.JSN, true); err != nil {
		t.Fatal(err)
	}
	st, err := c.State()
	if err != nil || st.JSN != 2 {
		t.Fatalf("State: %+v, %v", st, err)
	}
	uri, size, base, height, err := c.Info()
	if err != nil || uri != "ledger://cli-e2e" || size != 2 || base != 0 {
		t.Fatalf("Info: %s %d %d %d %v", uri, size, base, height, err)
	}

	// Clue flows.
	jsns, err := c.ClueJSNs("k")
	if err != nil || len(jsns) != 1 {
		t.Fatalf("ClueJSNs: %v %v", jsns, err)
	}
	recs, err := c.VerifyClue("k", 0, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("VerifyClue: %d %v", len(recs), err)
	}

	// Time anchoring.
	if _, err := c.AnchorTime(); err != nil {
		t.Fatal(err)
	}
}

func TestClientBatchAndAnchored(t *testing.T) {
	c, _ := liveClient(t)
	payloads := make([][]byte, 40)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	br, txHashes, err := c.AppendBatch(payloads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.Count != 40 || len(txHashes) != 40 {
		t.Fatalf("batch: %+v", br)
	}
	anchor, err := c.FetchAnchor()
	if err != nil {
		t.Fatal(err)
	}
	if anchor.Epochs == 0 {
		t.Fatal("no sealed epochs at δ=4 after 41 journals")
	}
	if _, _, err := c.VerifyExistenceAnchored(2, anchor, true); err != nil {
		t.Fatal(err)
	}
}

func TestClientStateProofAndMutations(t *testing.T) {
	c, l := liveClient(t)
	_ = l
	// World-state write via a raw request (Append helper has no StateKey).
	r, err := c.Append([]byte("v1"), "k")
	if err != nil {
		t.Fatal(err)
	}
	// Occult through the admin API.
	dba := sig.GenerateDeterministic("cli-e2e-dba")
	desc := &ledger.OccultDescriptor{URI: "ledger://cli-e2e", JSN: r.JSN}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(dba); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Occult(desc, ms); err != nil {
		t.Fatal(err)
	}
	// Purge through the admin API (DBA + the client who owns journals).
	for i := 0; i < 3; i++ {
		if _, err := c.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pdesc := &ledger.PurgeDescriptor{URI: "ledger://cli-e2e", Point: 2, ErasePayloads: true}
	pms := sig.NewMultiSig(pdesc.Digest())
	for _, kp := range []*sig.KeyPair{dba, sig.GenerateDeterministic("cli-e2e-client")} {
		if err := pms.SignWith(kp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Purge(pdesc, pms); err != nil {
		t.Fatal(err)
	}
	_, _, base, _, err := c.Info()
	if err != nil || base != 2 {
		t.Fatalf("base = %d, %v", base, err)
	}
}
