package client

import "fmt"

// TamperEvidence captures one provably-bad exchange: the request the
// client sent, the raw bytes the server answered with, and the local
// check those bytes failed. Because every receipt, state, and proof is
// signed by the pinned LSP key, a response that decodes or verifies
// wrongly is not just an error — it is material a client can present to
// a third party to demonstrate LSP misbehavior (§II-C's "verified at
// client side when LSP is distrusted" made actionable).
type TamperEvidence struct {
	// Method and Path identify the exchange.
	Method string
	Path   string
	// Status is the HTTP status the tampered response carried.
	Status int
	// RequestBody is the JSON body the client sent (nil for GETs). For
	// appends it embeds the client-signed request, so the evidence is
	// self-authenticating on both sides.
	RequestBody []byte
	// ResponseBody is the raw response exactly as received.
	ResponseBody []byte
	// Check names the verification step the response failed.
	Check string
}

// TamperError is returned when a response passed the transport but
// failed a local cryptographic or structural check. It wraps the
// underlying verification error (errors.Is/As see through it) and
// carries the evidence. Tamper errors are never retried: a forged
// response must surface, not be papered over by a lucky retry.
type TamperError struct {
	Evidence *TamperEvidence
	Err      error
}

func (e *TamperError) Error() string {
	return fmt.Sprintf("client: tampered response (%s %s, check %q): %v",
		e.Evidence.Method, e.Evidence.Path, e.Evidence.Check, e.Err)
}

func (e *TamperError) Unwrap() error { return e.Err }
