package replica

import (
	"context"

	"ledgerdb/internal/ledger"
)

// FrameClient is the slice of the HTTP client the puller needs: pull a
// sealed frame, fetch the signed state. Declared here rather than
// importing the client package so the transport depends on the
// replication protocol, not the other way around.
type FrameClient interface {
	PullFrame(ctx context.Context, stream string, from uint64, max int) ([]byte, error)
	StateCtx(ctx context.Context) (*ledger.SignedState, error)
}

// ClientSource adapts the hardened HTTP client into a Source: frames
// arrive through the client's retry/backoff/breaker machinery, and the
// checkpoint fetch reuses the client's signature verification against
// the pinned primary LSP key — a tampered state never reaches
// SetReplicaState.
func ClientSource(c FrameClient) Source {
	return clientSource{c}
}

type clientSource struct{ c FrameClient }

func (s clientSource) PullFrame(ctx context.Context, stream string, from uint64, max int) ([]byte, error) {
	return s.c.PullFrame(ctx, stream, from, max)
}

func (s clientSource) State(ctx context.Context) (*ledger.SignedState, error) {
	return s.c.StateCtx(ctx)
}

// LedgerSource adapts an in-process primary ledger into a Source, for
// followers co-located with the primary (Stack read replicas). Frames
// are still sealed and the puller still verifies them — the trust
// boundary code path is identical to the HTTP one, only the transport
// differs — so an in-process follower exercises exactly the protocol a
// remote one would.
func LedgerSource(p *ledger.Ledger) Source {
	return ledgerSource{p}
}

type ledgerSource struct{ p *ledger.Ledger }

func (s ledgerSource) PullFrame(_ context.Context, stream string, from uint64, max int) ([]byte, error) {
	recs, base, size, err := s.p.ReadStreamRange(stream, from, max, 0)
	if err != nil {
		return nil, err
	}
	f := &SegmentFrame{Stream: stream, Base: base, Len: size, Offset: from, Records: recs}
	f.Seal()
	return f.EncodeBytes(), nil
}

func (s ledgerSource) State(context.Context) (*ledger.SignedState, error) {
	return s.p.State()
}
