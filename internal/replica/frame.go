// Package replica implements read-replica replication for the ledger:
// a follower pulls the primary's append-only streams (journals,
// survival, blocks) as resumable, checksummed segment frames and rolls
// them forward through the same code paths crash recovery uses, so a
// replica is crash recovery running continuously. The follower serves
// the read surface — existence proofs, journal reads, query/absence via
// a local sidecar index — against a cached SignedState, which means
// every answer it gives still verifies against the primary's signing
// key: replication scales read QPS without adding any trust (§II-C's
// ubiquitous-verification model is what makes an untrusted replica
// safe).
package replica

import (
	"errors"
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

// Errors returned by frame decoding and verification.
var (
	ErrBadFrame = errors.New("replica: malformed segment frame")
	ErrDigest   = errors.New("replica: segment frame digest mismatch")
)

// frameMagic domain-separates the frame digest and encoding.
const frameMagic = "ledgerdb/replframe/v1"

// Frame caps: decoder hardening against hostile length prefixes. A
// frame above either cap is rejected before any allocation its sizes
// imply.
const (
	maxFrameRecords = 1 << 16
	maxFrameBytes   = 1 << 26 // 64 MiB of record payload per frame
)

// SegmentFrame is one replication pull response: a consecutive run of
// raw stream records plus the primary's stream frontier at capture
// time. Offset addresses Records[0]; Base/Len let the follower detect
// purge gaps (Base beyond its own frontier) and lag (Len beyond the
// last record shipped) without a second round trip. A pull with max=0
// records doubles as a frontier query.
//
// The Digest seals every field against the transport: frames cross the
// netchaos-hardened client, and a flipped bit anywhere — including in
// the counters — must fail loudly at the follower rather than corrupt
// its replay.
type SegmentFrame struct {
	Stream  string
	Base    uint64
	Len     uint64
	Offset  uint64
	Records [][]byte
	Digest  hashutil.Digest
}

// digest computes the seal over every field except the seal itself.
func (f *SegmentFrame) digest() hashutil.Digest {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	f.encodeBody(w)
	return hashutil.Sum(w.Bytes())
}

// Seal computes and stores the frame digest. The producer calls it
// after filling every other field.
func (f *SegmentFrame) Seal() { f.Digest = f.digest() }

// Verify checks the seal. Decoding alone does not verify — a decoded
// frame must pass Verify before any record is applied.
func (f *SegmentFrame) Verify() error {
	if got := f.digest(); got != f.Digest {
		return fmt.Errorf("%w: got %s, want %s", ErrDigest, got.Short(), f.Digest.Short())
	}
	return nil
}

func (f *SegmentFrame) encodeBody(w *wire.Writer) {
	w.String(frameMagic)
	w.String(f.Stream)
	w.Uint64(f.Base)
	w.Uint64(f.Len)
	w.Uint64(f.Offset)
	w.Uvarint(uint64(len(f.Records)))
	for _, rec := range f.Records {
		w.WriteBytes(rec)
	}
}

// Encode writes the frame (body followed by its seal).
func (f *SegmentFrame) Encode(w *wire.Writer) {
	f.encodeBody(w)
	w.Digest(f.Digest)
}

// EncodeBytes returns the frame as a fresh byte slice.
func (f *SegmentFrame) EncodeBytes() []byte {
	w := wire.NewWriter(256)
	f.Encode(w)
	return w.Bytes()
}

// DecodeSegmentFrame parses an encoded frame, enforcing the decoder
// caps and consuming the input exactly. The decoded records are copies
// (they outlive the wire buffer). Callers must still Verify.
func DecodeSegmentFrame(raw []byte) (*SegmentFrame, error) {
	r := wire.NewReader(raw)
	if magic := r.String(); magic != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFrame, magic)
	}
	f := &SegmentFrame{
		Stream: r.String(),
		Base:   r.Uint64(),
		Len:    r.Uint64(),
		Offset: r.Uint64(),
	}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, r.Err())
	}
	if n > maxFrameRecords {
		return nil, fmt.Errorf("%w: %d records (max %d)", ErrBadFrame, n, maxFrameRecords)
	}
	total := 0
	f.Records = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		rec := r.BytesCopy()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadFrame, i, r.Err())
		}
		total += len(rec)
		if total > maxFrameBytes {
			return nil, fmt.Errorf("%w: frame exceeds %d payload bytes", ErrBadFrame, maxFrameBytes)
		}
		f.Records = append(f.Records, rec)
	}
	f.Digest = r.Digest()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return f, nil
}
