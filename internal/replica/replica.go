package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ledgerdb/internal/ledger"
)

// ErrProtocol marks a frame that decoded and verified but does not
// answer the question the puller asked (wrong stream, wrong offset):
// either a confused primary or a replayed frame. The puller treats it
// like a transport failure — back off and re-pull — because re-asking
// is always safe (pulls are idempotent reads).
var ErrProtocol = errors.New("replica: frame does not match request")

// Source is the follower's view of the primary: offset-addressed stream
// pulls returning sealed SegmentFrame encodings, plus the primary's
// current signed state. The production implementation is the hardened
// HTTP client (client.PullFrame / client.State); tests substitute an
// in-process source wrapping a *ledger.Ledger directly.
type Source interface {
	PullFrame(ctx context.Context, stream string, from uint64, max int) ([]byte, error)
	State(ctx context.Context) (*ledger.SignedState, error)
}

// Config tunes a Puller. Source and Ledger are required; Ledger must be
// open in apply-only mode (ledger.Config.ApplyOnly).
type Config struct {
	Source Source
	Ledger *ledger.Ledger
	// Interval is the idle poll delay once caught up. Zero means 50ms.
	Interval time.Duration
	// RetryBackoff bounds the first post-failure wait; each actual wait
	// is drawn uniformly from [0, bound] (full jitter, same shape as the
	// client's) and the bound doubles per consecutive failure up to
	// MaxBackoff. Zero means 25ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the backoff bound. Zero means 2s.
	MaxBackoff time.Duration
	// Batch is the per-pull record cap. Zero means 256.
	Batch int

	// jitterFn is a test seam for the backoff draw.
	jitterFn func(bound time.Duration) time.Duration
}

// Status is a point-in-time snapshot of replication progress, the
// source of truth for the follower's /readyz watermark. AppliedJSN is
// the follower's journal frontier; PrimaryJSN is the primary's frontier
// as of the last successful pull, so PrimaryJSN-AppliedJSN is the known
// replication lag (an honest lower bound during a partition — the
// primary may have moved further). CheckpointJSN is the newest verified
// primary-signed state, the horizon the follower can prove up to.
type Status struct {
	Generation    uint64
	AppliedJSN    uint64
	PrimaryJSN    uint64
	CheckpointJSN uint64
	CheckpointTS  int64
	Seeding       bool
	CaughtUp      bool
	// Degraded is set after a failed round and cleared by the next
	// fully-successful one: the follower is serving reads from state
	// that can no longer be confirmed fresh.
	Degraded bool
	Rounds   uint64
	LastErr  string
}

// Puller drives one follower ledger against one Source: an endless
// pull → verify → apply loop that is crash recovery running
// continuously. Create with New, drive with Run (or RunOnce in tests).
type Puller struct {
	cfg Config

	mu sync.Mutex
	st Status
}

// New validates cfg and returns a Puller.
func New(cfg Config) (*Puller, error) {
	if cfg.Source == nil || cfg.Ledger == nil {
		return nil, errors.New("replica: Config.Source and Config.Ledger are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	return &Puller{cfg: cfg}, nil
}

// Status returns the current replication snapshot.
func (p *Puller) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// Run pulls until ctx is done, backing off with full jitter after
// failures and idling at Interval once caught up. It returns ctx.Err():
// replication has no successful termination, only cancellation.
func (p *Puller) Run(ctx context.Context) error {
	backoff := p.cfg.RetryBackoff
	for {
		err := p.RunOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var wait time.Duration
		if err != nil {
			wait = p.jitter(backoff)
			if backoff > p.cfg.MaxBackoff/2 {
				backoff = p.cfg.MaxBackoff
			} else {
				backoff *= 2
			}
		} else {
			backoff = p.cfg.RetryBackoff
			if p.Status().CaughtUp {
				wait = p.cfg.Interval
			}
		}
		if err := p.sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// RunOnce performs one replication round: survival → journals (with
// purge-gap resync and purge-barrier handling) → blocks → checkpoint,
// the same order the primary's group commit flushes in, so every prefix
// the follower persists is one the primary could have crashed at.
func (p *Puller) RunOnce(ctx context.Context) error {
	err := p.round(ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.st.Rounds++
	p.refreshLocked()
	if err != nil {
		p.st.Degraded = true
		p.st.CaughtUp = false
		p.st.LastErr = err.Error()
		return err
	}
	p.st.Degraded = false
	p.st.LastErr = ""
	return nil
}

// refreshLocked re-derives the ledger-side Status fields.
func (p *Puller) refreshLocked() {
	l := p.cfg.Ledger
	p.st.Generation = l.Generation()
	p.st.AppliedJSN = l.Size()
	if info, ok := l.ReplicaStatus(); ok {
		p.st.CheckpointJSN = info.CheckpointJSN
		p.st.CheckpointTS = info.CheckpointTS
		p.st.Seeding = info.Seeding
	}
}

func (p *Puller) round(ctx context.Context) error {
	l := p.cfg.Ledger
	// Pessimistic until this round proves otherwise: a resync or error
	// path must not leave a stale caught-up claim standing.
	p.mu.Lock()
	p.st.CaughtUp = false
	p.mu.Unlock()
	// Survival first: a purge barrier later in the round needs every
	// survivor the primary has already flushed.
	if err := p.pullSurvival(ctx); err != nil {
		return err
	}
	// Journals.
	fjBase, fjLen, err := l.StreamFrontier(ledger.StreamJournals)
	if err != nil {
		return err
	}
	// A follower crash can land between a resync's journal re-base and
	// the end of its digest fill. The reopened ledger is seeding again
	// with a digest deficit, but the gap check below cannot see it — the
	// journal stream already starts at the new base. Finish the
	// inherited fill first or the round loop spins forever.
	if _, fdLen, err := l.StreamFrontier(ledger.StreamDigests); err != nil {
		return err
	} else if fdLen < fjBase {
		if err := p.fillDigests(ctx, fjBase); err != nil {
			return err
		}
	}
	f, err := p.pull(ctx, ledger.StreamJournals, fjLen)
	if err != nil {
		return err
	}
	p.observePrimary(f.Len)
	if f.Base > fjLen {
		// Gap: the primary purged past our frontier. Re-base, fill the
		// fam from the never-truncated digest stream, and let the purge's
		// pseudo genesis reseed the projections.
		if err := p.resync(ctx, f.Base); err != nil {
			return err
		}
		return nil // next round continues from the new base
	}
	if len(f.Records) > 0 {
		applied, barrier, err := l.ApplyReplicatedJournals(f.Offset, f.Records, false)
		if err != nil {
			return err
		}
		if barrier {
			// A purge journal in steady state: sync survival all the way
			// to the primary's frontier, then replay the remainder with
			// the barrier lifted.
			if err := p.pullSurvivalToFrontier(ctx); err != nil {
				return err
			}
			if _, _, err := l.ApplyReplicatedJournals(f.Offset+uint64(applied), f.Records[applied:], true); err != nil {
				return err
			}
		}
	}
	// Blocks.
	_, fbLen, err := l.StreamFrontier(ledger.StreamBlocks)
	if err != nil {
		return err
	}
	bf, err := p.pull(ctx, ledger.StreamBlocks, fbLen)
	if err != nil {
		return err
	}
	if len(bf.Records) > 0 {
		if _, err := l.ApplyReplicatedBlocks(bf.Offset, bf.Records); err != nil {
			return err
		}
	}
	// Checkpoint last, so it covers everything just applied.
	st, err := p.cfg.Source.State(ctx)
	if err != nil {
		return err
	}
	if err := l.SetReplicaState(st); err != nil {
		return err
	}
	p.mu.Lock()
	p.st.CaughtUp = l.Size() >= f.Len && l.Height() >= bf.Len
	p.mu.Unlock()
	return nil
}

// pull fetches, decodes, and verifies one frame, rejecting any that
// answers a different question than asked.
func (p *Puller) pull(ctx context.Context, stream string, from uint64) (*SegmentFrame, error) {
	raw, err := p.cfg.Source.PullFrame(ctx, stream, from, p.cfg.Batch)
	if err != nil {
		return nil, err
	}
	f, err := DecodeSegmentFrame(raw)
	if err != nil {
		return nil, err
	}
	if err := f.Verify(); err != nil {
		return nil, err
	}
	if f.Stream != stream || f.Offset != from {
		return nil, fmt.Errorf("%w: got %s@%d, asked %s@%d", ErrProtocol, f.Stream, f.Offset, stream, from)
	}
	return f, nil
}

// pullSurvival advances the survival stream by one frame.
func (p *Puller) pullSurvival(ctx context.Context) error {
	_, fsLen, err := p.cfg.Ledger.StreamFrontier(ledger.StreamSurvival)
	if err != nil {
		return err
	}
	f, err := p.pull(ctx, ledger.StreamSurvival, fsLen)
	if err != nil {
		return err
	}
	if len(f.Records) == 0 {
		return nil
	}
	_, err = p.cfg.Ledger.ApplyReplicatedSurvival(f.Offset, f.Records)
	return err
}

// pullSurvivalToFrontier loops until the follower's survival stream
// reaches the primary's (needed before a purge barrier can be crossed).
func (p *Puller) pullSurvivalToFrontier(ctx context.Context) error {
	for {
		_, fsLen, err := p.cfg.Ledger.StreamFrontier(ledger.StreamSurvival)
		if err != nil {
			return err
		}
		f, err := p.pull(ctx, ledger.StreamSurvival, fsLen)
		if err != nil {
			return err
		}
		if len(f.Records) > 0 {
			if _, err := p.cfg.Ledger.ApplyReplicatedSurvival(f.Offset, f.Records); err != nil {
				return err
			}
		}
		if fsLen+uint64(len(f.Records)) >= f.Len {
			return nil
		}
	}
}

// resync re-bases the follower at base and fills the fam accumulator
// from the digest stream up to (but never past) base; the journal pulls
// that follow provide everything from base onward, and the purge's
// pseudo genesis reseeds the projections.
func (p *Puller) resync(ctx context.Context, base uint64) error {
	if err := p.cfg.Ledger.BeginResync(base); err != nil {
		return err
	}
	return p.fillDigests(ctx, base)
}

// fillDigests pulls the never-truncated digest stream up to (but never
// past) base, the seeding half of a resync. It is also the recovery
// path for a follower that crashed mid-fill: the reopened ledger is
// already seeding, so the fill resumes from whatever digest prefix
// survived.
func (p *Puller) fillDigests(ctx context.Context, base uint64) error {
	l := p.cfg.Ledger
	for {
		_, fdLen, err := l.StreamFrontier(ledger.StreamDigests)
		if err != nil {
			return err
		}
		if fdLen >= base {
			return nil
		}
		f, err := p.pull(ctx, ledger.StreamDigests, fdLen)
		if err != nil {
			return err
		}
		recs := f.Records
		if rem := base - fdLen; uint64(len(recs)) > rem {
			recs = recs[:rem]
		}
		if len(recs) == 0 {
			return fmt.Errorf("%w: digest fill stalled at %d of %d", ErrProtocol, fdLen, base)
		}
		if _, err := l.ApplyReplicatedDigests(f.Offset, recs); err != nil {
			return err
		}
	}
}

// observePrimary records the primary's journal frontier from a frame.
func (p *Puller) observePrimary(size uint64) {
	p.mu.Lock()
	if size > p.st.PrimaryJSN {
		p.st.PrimaryJSN = size
	}
	p.mu.Unlock()
}

// sleep waits d or until ctx is done (the client.sleep shape — a bare
// time.Sleep would block shutdown for its full duration).
func (p *Puller) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter draws a wait uniformly from [0, bound] (full jitter), so a
// fleet of followers retrying after the same primary outage does not
// reconverge in lockstep.
func (p *Puller) jitter(bound time.Duration) time.Duration {
	if p.cfg.jitterFn != nil {
		return p.cfg.jitterFn(bound)
	}
	if bound <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(bound) + 1))
}
