package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ledgerdb/internal/journal"
	"ledgerdb/internal/ledger"
	"ledgerdb/internal/logicalclock"
	"ledgerdb/internal/sig"
	"ledgerdb/internal/streamfs"
)

const testURI = "ledger://replica-test"

// localSource wraps a primary ledger directly: the puller protocol
// without the HTTP hop, with an optional mutate hook for fault injection.
type localSource struct {
	p      *ledger.Ledger
	mutate func(stream string, raw []byte) []byte
	fail   func(stream string) error
}

func (s *localSource) PullFrame(ctx context.Context, stream string, from uint64, max int) ([]byte, error) {
	if s.fail != nil {
		if err := s.fail(stream); err != nil {
			return nil, err
		}
	}
	recs, base, size, err := s.p.ReadStreamRange(stream, from, max, 0)
	if err != nil {
		return nil, err
	}
	f := &SegmentFrame{Stream: stream, Base: base, Len: size, Offset: from, Records: recs}
	f.Seal()
	raw := f.EncodeBytes()
	if s.mutate != nil {
		raw = s.mutate(stream, raw)
	}
	return raw, nil
}

func (s *localSource) State(ctx context.Context) (*ledger.SignedState, error) {
	return s.p.State()
}

type pair struct {
	clock    *logicalclock.Clock
	lsp      *sig.KeyPair
	dba, cli *sig.KeyPair
	primary  *ledger.Ledger
	follower *ledger.Ledger
	source   *localSource
	puller   *Puller
	nonce    uint64
}

func newPair(t *testing.T) *pair {
	t.Helper()
	pr := &pair{
		clock: logicalclock.New(1000),
		lsp:   sig.GenerateDeterministic("replica/lsp"),
		dba:   sig.GenerateDeterministic("replica/dba"),
		cli:   sig.GenerateDeterministic("replica/client"),
	}
	var err error
	pr.primary, err = ledger.Open(ledger.Config{
		URI:           testURI,
		FractalHeight: 3,
		BlockSize:     4,
		Clock:         pr.clock.Tick,
		LSP:           pr.lsp,
		DBA:           pr.dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.primary.Close() })
	pr.follower, err = ledger.Open(ledger.Config{
		URI:           testURI,
		FractalHeight: 3,
		BlockSize:     4,
		Clock:         pr.clock.Tick,
		ApplyOnly:     true,
		PrimaryLSP:    pr.lsp.Public(),
		DBA:           pr.dba.Public(),
		Store:         streamfs.NewMemory(),
		Blobs:         streamfs.NewMemoryBlobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.follower.Close() })
	pr.source = &localSource{p: pr.primary}
	pr.puller, err = New(Config{
		Source: pr.source,
		Ledger: pr.follower,
		Batch:  8, // small batches force multi-round catch-up
	})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func (pr *pair) append(t *testing.T, payload string, clues ...string) *journal.Receipt {
	t.Helper()
	pr.nonce++
	req := &journal.Request{
		LedgerURI: testURI,
		Type:      journal.TypeNormal,
		Payload:   []byte(payload),
		Clues:     clues,
		Nonce:     pr.nonce,
	}
	if err := req.Sign(pr.cli); err != nil {
		t.Fatal(err)
	}
	rcpt, err := pr.primary.Append(req)
	if err != nil {
		t.Fatal(err)
	}
	return rcpt
}

// catchUp drives RunOnce until the puller reports CaughtUp.
func (pr *pair) catchUp(t *testing.T, ctx context.Context) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("puller did not catch up")
		}
		if err := pr.puller.RunOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if pr.puller.Status().CaughtUp {
			return
		}
	}
}

func TestPullerConverges(t *testing.T) {
	pr := newPair(t)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	for i := 0; i < 30; i++ {
		pr.append(t, fmt.Sprintf("doc-%d", i), "K")
	}
	pr.catchUp(t, ctx)

	if pr.follower.Size() != pr.primary.Size() || pr.follower.Height() != pr.primary.Height() {
		t.Fatalf("follower %d/%d, primary %d/%d",
			pr.follower.Size(), pr.follower.Height(), pr.primary.Size(), pr.primary.Height())
	}
	pst, _ := pr.primary.State()
	fst, err := pr.follower.State()
	if err != nil {
		t.Fatal(err)
	}
	if fst.JournalRoot != pst.JournalRoot || fst.JSN != pst.JSN {
		t.Fatal("follower state diverges from primary checkpoint")
	}
	st := pr.puller.Status()
	if st.AppliedJSN != pr.primary.Size() || st.CheckpointJSN != pst.JSN {
		t.Fatalf("status %+v does not reflect convergence", st)
	}
	if st.Degraded || st.LastErr != "" {
		t.Fatalf("healthy puller reports degraded: %+v", st)
	}
	// The replicated follower serves verifying proofs.
	p, err := pr.follower.ProveExistence(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.VerifyExistence(p, pr.lsp.Public()); err != nil {
		t.Fatal(err)
	}
}

func TestPullerPurgeResync(t *testing.T) {
	pr := newPair(t)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	var survivor uint64
	for i := 0; i < 10; i++ {
		rc := pr.append(t, fmt.Sprintf("doc-%d", i), "K")
		if i == 3 {
			survivor = rc.JSN
		}
	}
	pr.catchUp(t, ctx)

	// Purge past the follower's frontier while it is cut off, then let
	// it discover the gap and resync through the digest stream.
	for i := 0; i < 6; i++ {
		pr.append(t, fmt.Sprintf("late-%d", i), "K")
	}
	desc := &ledger.PurgeDescriptor{URI: testURI, Point: 12, Survivors: []uint64{survivor}}
	ms := sig.NewMultiSig(desc.Digest())
	if err := ms.SignWith(pr.dba); err != nil {
		t.Fatal(err)
	}
	if err := ms.SignWith(pr.cli); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.primary.Purge(desc, ms); err != nil {
		t.Fatal(err)
	}
	pr.catchUp(t, ctx)

	if pr.follower.Base() != pr.primary.Base() {
		t.Fatalf("follower base %d, primary %d", pr.follower.Base(), pr.primary.Base())
	}
	pst, _ := pr.primary.State()
	fst, err := pr.follower.State()
	if err != nil {
		t.Fatal(err)
	}
	if fst.JournalRoot != pst.JournalRoot || fst.ClueRoot != pst.ClueRoot {
		t.Fatal("post-purge roots diverge")
	}
	survs, err := pr.follower.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	if len(survs) != 1 || survs[0].JSN != survivor {
		t.Fatalf("survivor %d lost in replication: %v", survivor, survs)
	}
	if _, err := pr.follower.GetJournal(5); !errors.Is(err, ledger.ErrPurged) {
		t.Fatalf("purged journal on follower: %v", err)
	}
}

func TestPullerDegradedAndRecovery(t *testing.T) {
	pr := newPair(t)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		pr.append(t, fmt.Sprintf("doc-%d", i))
	}
	pr.catchUp(t, ctx)

	// Sever the link: rounds fail, the status goes degraded, but reads
	// against the cached checkpoint keep working.
	cut := errors.New("partition")
	pr.source.fail = func(string) error { return cut }
	if err := pr.puller.RunOnce(ctx); !errors.Is(err, cut) {
		t.Fatalf("severed round: %v", err)
	}
	st := pr.puller.Status()
	if !st.Degraded || st.LastErr == "" || st.CaughtUp {
		t.Fatalf("severed status %+v", st)
	}
	p, err := pr.follower.ProveExistence(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.VerifyExistence(p, pr.lsp.Public()); err != nil {
		t.Fatal(err)
	}
	// Heal: the next successful round clears the flag.
	pr.source.fail = nil
	if err := pr.puller.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st := pr.puller.Status(); st.Degraded || st.LastErr != "" {
		t.Fatalf("healed status %+v", st)
	}
}

func TestPullerRejectsTamperedFrames(t *testing.T) {
	pr := newPair(t)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		pr.append(t, fmt.Sprintf("doc-%d", i))
	}
	// Flip one byte of every journal frame: Verify must fail before any
	// record reaches the follower's streams.
	pr.source.mutate = func(stream string, raw []byte) []byte {
		if stream == ledger.StreamJournals {
			raw = append([]byte(nil), raw...)
			raw[len(raw)/2] ^= 0x01
		}
		return raw
	}
	err := pr.puller.RunOnce(ctx)
	if err == nil || !(errors.Is(err, ErrDigest) || errors.Is(err, ErrBadFrame)) {
		t.Fatalf("tampered frame: %v", err)
	}
	if pr.follower.Size() != 0 { // an apply-only follower starts empty
		t.Fatalf("tampered records applied: follower at %d", pr.follower.Size())
	}
	pr.source.mutate = nil
	pr.catchUp(t, ctx)
	if pr.follower.Size() != pr.primary.Size() {
		t.Fatal("follower did not converge after tampering stopped")
	}
}

func TestPullerRejectsMismatchedFrame(t *testing.T) {
	pr := newPair(t)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	pr.append(t, "doc")
	// A verified frame for the wrong offset (a replay) must be refused.
	pr.source.mutate = func(stream string, raw []byte) []byte {
		f, err := DecodeSegmentFrame(raw)
		if err != nil {
			t.Fatal(err)
		}
		f.Offset += 1
		f.Seal()
		return f.EncodeBytes()
	}
	if err := pr.puller.RunOnce(ctx); !errors.Is(err, ErrProtocol) {
		t.Fatalf("replayed frame: %v", err)
	}
}

// TestPullerRunBackoff drives the Run loop against a source that fails a
// few times, checking the jittered bounds double up to the cap and reset
// after success.
func TestPullerRunBackoff(t *testing.T) {
	pr := newPair(t)
	pr.append(t, "doc")
	var bounds []time.Duration
	pr.puller.cfg.jitterFn = func(bound time.Duration) time.Duration {
		bounds = append(bounds, bound)
		return 0 // no real waiting in tests
	}
	pr.puller.cfg.RetryBackoff = 10 * time.Millisecond
	pr.puller.cfg.MaxBackoff = 40 * time.Millisecond
	failures := 0
	cut := errors.New("flaky")
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	pr.source.fail = func(string) error {
		failures++
		if failures <= 4 {
			return cut
		}
		cancel() // healthy again: stop the loop after this round
		return nil
	}
	if err := pr.puller.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{10, 20, 40, 40} // ms: doubling, capped
	if len(bounds) != len(want) {
		t.Fatalf("bounds %v", bounds)
	}
	for i, b := range bounds {
		if b != want[i]*time.Millisecond {
			t.Fatalf("bound %d = %v, want %vms", i, b, want[i])
		}
	}
}
