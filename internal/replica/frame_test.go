package replica

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ledgerdb/internal/wire"
)

func testFrame() *SegmentFrame {
	f := &SegmentFrame{
		Stream: "journals",
		Base:   2,
		Len:    9,
		Offset: 5,
		Records: [][]byte{
			[]byte("rec-5"), []byte("rec-6"), {}, []byte("rec-8"),
		},
	}
	f.Seal()
	return f
}

func TestFrameSealVerifyRoundTrip(t *testing.T) {
	f := testFrame()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	raw := f.EncodeBytes()
	g, err := DecodeSegmentFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if g.Stream != f.Stream || g.Base != f.Base || g.Len != f.Len || g.Offset != f.Offset {
		t.Fatalf("decoded header %+v != %+v", g, f)
	}
	if len(g.Records) != len(f.Records) {
		t.Fatalf("decoded %d records, want %d", len(g.Records), len(f.Records))
	}
	for i := range f.Records {
		if !bytes.Equal(g.Records[i], f.Records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	if !bytes.Equal(g.EncodeBytes(), raw) {
		t.Fatal("frame encoding is not a fixpoint")
	}
}

func TestFrameTamperDetected(t *testing.T) {
	// Any flipped bit — in a record or in the counters — must fail Verify.
	base := testFrame().EncodeBytes()
	for i := 0; i < len(base); i++ {
		mut := bytes.Clone(base)
		mut[i] ^= 0x40
		f, err := DecodeSegmentFrame(mut)
		if err != nil {
			continue // structurally rejected: fine
		}
		if err := f.Verify(); err == nil {
			t.Fatalf("bit flip at byte %d survived Verify", i)
		} else if !errors.Is(err, ErrDigest) {
			t.Fatalf("bit flip at byte %d: %v", i, err)
		}
	}
}

func TestFrameDecoderCaps(t *testing.T) {
	// A hostile record count is rejected before allocation.
	w := wire.NewWriter(64)
	w.String(frameMagic)
	w.String("journals")
	w.Uint64(0)
	w.Uint64(0)
	w.Uint64(0)
	w.Uvarint(maxFrameRecords + 1)
	if _, err := DecodeSegmentFrame(w.Bytes()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized record count: %v", err)
	}
	// A record run exceeding the payload byte cap is rejected as soon as
	// the running total crosses it.
	w = wire.NewWriter(64)
	w.String(frameMagic)
	w.String("journals")
	w.Uint64(0)
	w.Uint64(0)
	w.Uint64(0)
	w.Uvarint(2)
	w.WriteBytes(make([]byte, maxFrameBytes))
	w.WriteBytes([]byte("x"))
	if _, err := DecodeSegmentFrame(w.Bytes()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized payload: %v", err)
	}
	// Bad magic and trailing garbage are both structural rejections.
	if _, err := DecodeSegmentFrame([]byte("not a frame")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: %v", err)
	}
	raw := append(testFrame().EncodeBytes(), 0xFF)
	if _, err := DecodeSegmentFrame(raw); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: %v", err)
	}
}

func FuzzDecodeSegmentFrame(f *testing.F) {
	f.Add(testFrame().EncodeBytes())
	f.Add([]byte(frameMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := DecodeSegmentFrame(raw)
		if err != nil {
			return
		}
		// Accepted frames have a stable re-encoding (fixpoint) and a
		// deterministic Verify outcome across the round trip.
		enc := fr.EncodeBytes()
		fr2, err := DecodeSegmentFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(fr2.EncodeBytes(), enc) {
			t.Fatal("segment frame encoding is not a fixpoint")
		}
		if (fr.Verify() == nil) != (fr2.Verify() == nil) {
			t.Fatal("Verify outcome changed across a decode round trip")
		}
	})
}

// TestRegenFrameFuzzCorpus rewrites the checked-in seed corpus (the
// frame codec is fully deterministic, but the gate keeps regeneration an
// explicit act, matching the ledger corpus convention).
func TestRegenFrameFuzzCorpus(t *testing.T) {
	if os.Getenv("LEDGERDB_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set LEDGERDB_REGEN_FUZZ_CORPUS=1 to rewrite the testdata/fuzz seed corpus")
	}
	data := testFrame().EncodeBytes()
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSegmentFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, "valid-frame"), []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
	entry = "go test fuzz v1\n[]byte(" + strconv.Quote(string(data[:len(data)/2])) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, "truncated-frame"), []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
}
