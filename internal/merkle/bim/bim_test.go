package bim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
)

func txOf(i uint64) hashutil.Digest {
	return hashutil.Leaf([]byte(fmt.Sprintf("tx-%d", i)))
}

func buildChain(t testing.TB, blocks int, perBlock int) *Chain {
	c := NewChain()
	n := uint64(0)
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			c.AddTx(txOf(n))
			n++
		}
		if _, err := c.CutBlock(int64(1000 + b)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCutBlockEmpty(t *testing.T) {
	c := NewChain()
	if _, err := c.CutBlock(1); !errors.Is(err, ErrEmptyBlock) {
		t.Fatalf("err = %v, want ErrEmptyBlock", err)
	}
}

func TestChainLinksAndHeights(t *testing.T) {
	c := buildChain(t, 5, 3)
	if c.Height() != 5 || c.TxCount() != 15 {
		t.Fatalf("height=%d txs=%d", c.Height(), c.TxCount())
	}
	headers := c.Headers()
	if err := VerifyHeaderChain(headers); err != nil {
		t.Fatalf("VerifyHeaderChain: %v", err)
	}
	// Tamper with one header: the chain must break.
	headers[2].Timestamp++
	if err := VerifyHeaderChain(headers); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("tampered chain: err = %v", err)
	}
}

func TestSPVProveVerify(t *testing.T) {
	c := buildChain(t, 8, 7)
	for i := uint64(0); i < c.TxCount(); i++ {
		p, err := c.Prove(i)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		h, err := c.Header(p.Height)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifySPV(txOf(i), p, h); err != nil {
			t.Fatalf("VerifySPV(%d): %v", i, err)
		}
	}
}

func TestSPVRejectsWrongTx(t *testing.T) {
	c := buildChain(t, 3, 4)
	p, _ := c.Prove(5)
	h, _ := c.Header(p.Height)
	if err := VerifySPV(txOf(6), p, h); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
}

func TestSPVRejectsWrongHeader(t *testing.T) {
	c := buildChain(t, 3, 4)
	p, _ := c.Prove(1) // block 0
	other, _ := c.Header(2)
	if err := VerifySPV(txOf(1), p, other); err == nil {
		t.Fatal("proof accepted against wrong header")
	}
}

func TestProveOutOfRange(t *testing.T) {
	c := buildChain(t, 2, 2)
	if _, err := c.Prove(4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Header(2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestPendingNotProvable(t *testing.T) {
	c := NewChain()
	c.AddTx(txOf(0))
	if _, err := c.Prove(0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("uncommitted tx provable: %v", err)
	}
	if _, err := c.CutBlock(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prove(0); err != nil {
		t.Fatalf("committed tx not provable: %v", err)
	}
}

func TestHeaderHashBindsAllFields(t *testing.T) {
	h := &Header{Height: 1, MerkleRoot: txOf(0), TxCount: 2, Timestamp: 99}
	base := h.Hash()
	mut := *h
	mut.Timestamp = 100
	if mut.Hash() == base {
		t.Fatal("timestamp not bound by header hash")
	}
	mut = *h
	mut.TxCount = 3
	if mut.Hash() == base {
		t.Fatal("tx count not bound by header hash")
	}
	mut = *h
	mut.Prev = txOf(1)
	if mut.Hash() == base {
		t.Fatal("prev not bound by header hash")
	}
}

func TestQuickSPVAcrossShapes(t *testing.T) {
	f := func(blocksRaw, perRaw, pick uint16) bool {
		blocks := int(blocksRaw%10) + 1
		per := int(perRaw%20) + 1
		c := NewChain()
		n := uint64(0)
		for b := 0; b < blocks; b++ {
			for i := 0; i < per; i++ {
				c.AddTx(txOf(n))
				n++
			}
			if _, err := c.CutBlock(int64(b)); err != nil {
				return false
			}
		}
		i := uint64(pick) % n
		p, err := c.Prove(i)
		if err != nil {
			return false
		}
		h, err := c.Header(p.Height)
		if err != nil {
			return false
		}
		return VerifySPV(txOf(i), p, h) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVariableBlockSizes(t *testing.T) {
	c := NewChain()
	sizes := []int{1, 5, 2, 9, 1}
	n := uint64(0)
	for b, sz := range sizes {
		for i := 0; i < sz; i++ {
			c.AddTx(txOf(n))
			n++
		}
		if _, err := c.CutBlock(int64(b)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		p, err := c.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := c.Header(p.Height)
		if err := VerifySPV(txOf(i), p, h); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
}
