// Package bim implements the block-intensive model of §II-A: the
// Bitcoin-style organization in which transactions batch into blocks,
// each block carries a Merkle root over its transactions, and block
// headers chain by hash.
//
// It exists as the second baseline next to tim (package
// merkle/accumulator): bim has fast SPV verification once headers are
// held as block-oriented anchors (boa), but a light client must store
// O(number of blocks) headers — the storage overhead fam removes. The
// time-notary simulation (package timepeg) also uses bim as its public
// anchoring chain.
package bim

import (
	"errors"
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/merkle/accumulator"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrEmptyBlock  = errors.New("bim: cannot cut an empty block")
	ErrOutOfRange  = errors.New("bim: transaction or block out of range")
	ErrBadProof    = errors.New("bim: SPV verification failed")
	ErrBrokenChain = errors.New("bim: header chain broken")
)

// Header is a block header: what a light client stores per block.
type Header struct {
	Height     uint64
	Prev       hashutil.Digest // hash of the previous header; zero at genesis
	MerkleRoot hashutil.Digest // root over the block's transaction digests
	TxCount    uint64
	Timestamp  int64 // block producer's clock, as in Bitcoin headers
}

// Encode appends the header to a wire writer.
func (h *Header) Encode(w *wire.Writer) {
	w.Uvarint(h.Height)
	w.Digest(h.Prev)
	w.Digest(h.MerkleRoot)
	w.Uvarint(h.TxCount)
	w.Int64(h.Timestamp)
}

// DecodeHeader reads a header from a wire reader.
func DecodeHeader(r *wire.Reader) (*Header, error) {
	h := &Header{
		Height:     r.Uvarint(),
		Prev:       r.Digest(),
		MerkleRoot: r.Digest(),
		TxCount:    r.Uvarint(),
		Timestamp:  r.Int64(),
	}
	return h, r.Err()
}

// Hash returns the header's digest (the "block hash").
func (h *Header) Hash() hashutil.Digest {
	w := wire.NewWriter(96)
	h.Encode(w)
	return hashutil.Block(w.Bytes())
}

// block couples a header with its per-block transaction tree.
type block struct {
	header *Header
	tree   *accumulator.Accumulator
	first  uint64 // global index of the block's first transaction
}

// Chain is a full node: all blocks with their transaction trees, plus the
// buffer of transactions awaiting the next block cut. Not safe for
// concurrent mutation.
type Chain struct {
	blocks  []*block
	pending []hashutil.Digest
	total   uint64 // committed transactions
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// AddTx buffers a transaction digest for the next block and returns its
// global index once committed.
func (c *Chain) AddTx(tx hashutil.Digest) uint64 {
	idx := c.total + uint64(len(c.pending))
	c.pending = append(c.pending, tx)
	return idx
}

// CutBlock seals all pending transactions into a block with the given
// timestamp and returns its header.
func (c *Chain) CutBlock(timestamp int64) (*Header, error) {
	if len(c.pending) == 0 {
		return nil, ErrEmptyBlock
	}
	tree := accumulator.New()
	for _, tx := range c.pending {
		tree.Append(tx)
	}
	root, err := tree.Root()
	if err != nil {
		return nil, err
	}
	h := &Header{
		Height:     uint64(len(c.blocks)),
		MerkleRoot: root,
		TxCount:    uint64(len(c.pending)),
		Timestamp:  timestamp,
	}
	if n := len(c.blocks); n > 0 {
		h.Prev = c.blocks[n-1].header.Hash()
	}
	c.blocks = append(c.blocks, &block{header: h, tree: tree, first: c.total})
	c.total += uint64(len(c.pending))
	c.pending = c.pending[:0]
	return h, nil
}

// Height returns the number of committed blocks.
func (c *Chain) Height() uint64 { return uint64(len(c.blocks)) }

// TxCount returns the number of committed transactions.
func (c *Chain) TxCount() uint64 { return c.total }

// Header returns the header at the given height.
func (c *Chain) Header(height uint64) (*Header, error) {
	if height >= uint64(len(c.blocks)) {
		return nil, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, height, len(c.blocks))
	}
	return c.blocks[height].header, nil
}

// Headers returns all headers — what a light client downloads to build
// its boa anchor set.
func (c *Chain) Headers() []*Header {
	out := make([]*Header, len(c.blocks))
	for i, b := range c.blocks {
		out[i] = b.header
	}
	return out
}

// SPVProof locates a committed transaction and proves it against its
// block's Merkle root. A light client holding the header needs nothing
// else (simplified payment verification, §II-A).
type SPVProof struct {
	Height  uint64
	InBlock *accumulator.Proof
}

// Prove produces an SPV proof for the transaction at global index.
func (c *Chain) Prove(global uint64) (*SPVProof, error) {
	if global >= c.total {
		return nil, fmt.Errorf("%w: tx %d of %d", ErrOutOfRange, global, c.total)
	}
	b := c.findBlock(global)
	ip, err := b.tree.Prove(global - b.first)
	if err != nil {
		return nil, err
	}
	return &SPVProof{Height: b.header.Height, InBlock: ip}, nil
}

func (c *Chain) findBlock(global uint64) *block {
	lo, hi := 0, len(c.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		b := c.blocks[mid]
		switch {
		case global < b.first:
			hi = mid
		case global >= b.first+b.header.TxCount:
			lo = mid + 1
		default:
			return b
		}
	}
	return nil
}

// VerifySPV checks a transaction digest against a header the verifier
// already trusts (its boa anchor).
func VerifySPV(tx hashutil.Digest, p *SPVProof, header *Header) error {
	if p == nil || header == nil {
		return fmt.Errorf("%w: nil proof or header", ErrBadProof)
	}
	if p.Height != header.Height {
		return fmt.Errorf("%w: proof for block %d, header is %d", ErrBadProof, p.Height, header.Height)
	}
	if err := accumulator.Verify(tx, p.InBlock, header.MerkleRoot); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	return nil
}

// VerifyHeaderChain checks that a header sequence is hash-linked and
// dense from the first element. A light client runs this once while
// downloading headers; afterwards each header is a trusted anchor.
func VerifyHeaderChain(headers []*Header) error {
	for i, h := range headers {
		if i == 0 {
			continue
		}
		if h.Height != headers[i-1].Height+1 {
			return fmt.Errorf("%w: height %d follows %d", ErrBrokenChain, h.Height, headers[i-1].Height)
		}
		if h.Prev != headers[i-1].Hash() {
			return fmt.Errorf("%w: block %d prev-hash mismatch", ErrBrokenChain, h.Height)
		}
	}
	return nil
}
