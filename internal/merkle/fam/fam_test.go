package fam

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

func leafOf(i uint64) hashutil.Digest {
	return hashutil.Leaf([]byte(fmt.Sprintf("journal-%d", i)))
}

func build(t testing.TB, height uint8, n uint64) *Tree {
	tr, err := New(height)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if got := tr.Append(leafOf(i)); got != i {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	return tr
}

func TestNewRejectsBadHeight(t *testing.T) {
	for _, h := range []uint8{0, 31, 200} {
		if _, err := New(h); !errors.Is(err, ErrBadHeight) {
			t.Fatalf("height %d: err = %v", h, err)
		}
	}
}

func TestEpochBoundaries(t *testing.T) {
	// δ=3: epoch 0 holds 8 journals, later epochs 7 each (slot 0 is the
	// merged leaf).
	tr := build(t, 3, 8)
	if tr.Epochs() != 1 {
		t.Fatalf("epochs after 8 = %d, want 1 (seal is lazy)", tr.Epochs())
	}
	tr.Append(leafOf(8))
	if tr.Epochs() != 2 {
		t.Fatalf("epochs after 9 = %d, want 2", tr.Epochs())
	}
	if got := tr.JournalCapacity(1); got != 8 {
		t.Fatalf("JournalCapacity(1) = %d", got)
	}
	if got := tr.JournalCapacity(3); got != 8+7+7 {
		t.Fatalf("JournalCapacity(3) = %d", got)
	}
}

func TestLocate(t *testing.T) {
	tr := build(t, 3, 30)
	cases := []struct {
		index uint64
		epoch int
		leaf  uint64
	}{
		{0, 0, 0}, {7, 0, 7}, {8, 1, 1}, {14, 1, 7},
		{15, 2, 1}, {21, 2, 7}, {22, 3, 1}, {28, 3, 7}, {29, 4, 1},
	}
	for _, c := range cases {
		e, l, err := tr.locate(c.index)
		if err != nil {
			t.Fatalf("locate(%d): %v", c.index, err)
		}
		if e != c.epoch || l != c.leaf {
			t.Fatalf("locate(%d) = (%d,%d), want (%d,%d)", c.index, e, l, c.epoch, c.leaf)
		}
	}
	if _, _, err := tr.locate(30); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestColdProveVerifyAcrossEpochs(t *testing.T) {
	for _, height := range []uint8{2, 3, 5} {
		n := uint64(100)
		tr := build(t, height, n)
		root, err := tr.Root()
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("h=%d Prove(%d): %v", height, i, err)
			}
			if err := Verify(leafOf(i), p, root); err != nil {
				t.Fatalf("h=%d Verify(%d): %v", height, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	tr := build(t, 3, 40)
	root, _ := tr.Root()
	p, _ := tr.Prove(5)
	if err := Verify(leafOf(6), p, root); err == nil {
		t.Fatal("wrong leaf accepted")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := build(t, 3, 40)
	p, _ := tr.Prove(5)
	if err := Verify(leafOf(5), p, hashutil.Leaf([]byte("bogus"))); err == nil {
		t.Fatal("bogus root accepted")
	}
}

func TestVerifyRejectsSplicedHops(t *testing.T) {
	tr := build(t, 2, 50)
	root, _ := tr.Root()
	p, _ := tr.Prove(1)
	if len(p.Hops) < 2 {
		t.Fatalf("expected multiple hops, got %d", len(p.Hops))
	}
	// Dropping a hop must break the chain.
	bad := *p
	bad.Hops = p.Hops[1:]
	if err := Verify(leafOf(1), &bad, root); err == nil {
		t.Fatal("dropped hop accepted")
	}
	// Reordering hops must break the chain.
	bad2 := *p
	bad2.Hops = append([]Hop(nil), p.Hops...)
	bad2.Hops[0], bad2.Hops[1] = bad2.Hops[1], bad2.Hops[0]
	if err := Verify(leafOf(1), &bad2, root); err == nil {
		t.Fatal("reordered hops accepted")
	}
	// Tampering a hop commitment must fail.
	bad3 := *p
	bad3.Hops = append([]Hop(nil), p.Hops...)
	bad3.Hops[0].Commitment = hashutil.Leaf([]byte("evil"))
	if err := Verify(leafOf(1), &bad3, root); err == nil {
		t.Fatal("tampered hop commitment accepted")
	}
}

func TestRootCommitsToHistory(t *testing.T) {
	// Two trees that diverge in one early journal must have different
	// roots forever after (the merged-leaf chain propagates the change).
	a := build(t, 2, 30)
	b, _ := New(2)
	for i := uint64(0); i < 30; i++ {
		if i == 3 {
			b.Append(hashutil.Leaf([]byte("tampered")))
		} else {
			b.Append(leafOf(i))
		}
	}
	ra, _ := a.Root()
	rb, _ := b.Root()
	if ra == rb {
		t.Fatal("tampered history produced the same root")
	}
}

func TestAnchoredProofShortAndValid(t *testing.T) {
	tr := build(t, 3, 100)
	anchor := tr.AnchorNow()
	if anchor.Epochs == 0 {
		t.Fatal("expected sealed epochs")
	}
	root, _ := tr.Root()

	// A journal inside an anchored epoch: proof must carry no hops and
	// verify against the anchor alone.
	p, err := tr.ProveAnchored(3, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 0 {
		t.Fatalf("anchored proof has %d hops, want 0", len(p.Hops))
	}
	if err := VerifyAnchored(leafOf(3), p, anchor, root); err != nil {
		t.Fatalf("anchored verify: %v", err)
	}

	// A journal after the anchor still verifies through the chain.
	idx := tr.Size() - 1
	p2, err := tr.ProveAnchored(idx, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAnchored(leafOf(idx), p2, anchor, root); err != nil {
		t.Fatalf("post-anchor verify: %v", err)
	}
}

func TestAnchoredProofMuchShorterThanCold(t *testing.T) {
	tr := build(t, 2, 200) // many epochs
	anchor := tr.AnchorNow()
	cold, _ := tr.Prove(1)
	hot, _ := tr.ProveAnchored(1, anchor)
	if hot.PathLen() >= cold.PathLen() {
		t.Fatalf("anchored path %d not shorter than cold %d", hot.PathLen(), cold.PathLen())
	}
}

func TestAnchoredVerifyRejectsForgedEpochRoot(t *testing.T) {
	tr := build(t, 3, 100)
	anchor := tr.AnchorNow()
	root, _ := tr.Root()
	p, _ := tr.ProveAnchored(3, anchor)
	forged := &Anchor{Size: anchor.Size, Epochs: anchor.Epochs, Roots: append([]hashutil.Digest(nil), anchor.Roots...)}
	forged.Roots[p.Epoch] = hashutil.Leaf([]byte("evil"))
	if err := VerifyAnchored(leafOf(3), p, forged, root); err == nil {
		t.Fatal("forged anchor root accepted")
	}
}

func TestProveAnchoredBadAnchor(t *testing.T) {
	tr := build(t, 3, 20)
	bad := &Anchor{Epochs: 99}
	if _, err := tr.ProveAnchored(1, bad); !errors.Is(err, ErrBadAnchor) {
		t.Fatalf("err = %v, want ErrBadAnchor", err)
	}
}

func TestNilAnchorFallsBackToCold(t *testing.T) {
	tr := build(t, 3, 40)
	root, _ := tr.Root()
	p, err := tr.ProveAnchored(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAnchored(leafOf(2), p, nil, root); err != nil {
		t.Fatal(err)
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	tr := build(t, 2, 60)
	root, _ := tr.Root()
	p, _ := tr.Prove(7)
	w := wire.NewWriter(0)
	p.Encode(w)
	got, err := DecodeProof(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(leafOf(7), got, root); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
}

func TestQuickProveVerifyManyShapes(t *testing.T) {
	f := func(hRaw, nRaw, iRaw uint16) bool {
		h := uint8(hRaw%5) + 1
		n := uint64(nRaw%300) + 1
		i := uint64(iRaw) % n
		tr, _ := New(h)
		for j := uint64(0); j < n; j++ {
			tr.Append(leafOf(j))
		}
		root, err := tr.Root()
		if err != nil {
			return false
		}
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		return Verify(leafOf(i), p, root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAnchoredAgreesWithCold(t *testing.T) {
	f := func(nRaw, iRaw uint16) bool {
		n := uint64(nRaw%300) + 1
		i := uint64(iRaw) % n
		tr, _ := New(3)
		for j := uint64(0); j < n; j++ {
			tr.Append(leafOf(j))
		}
		anchor := tr.AnchorNow()
		root, _ := tr.Root()
		p, err := tr.ProveAnchored(i, anchor)
		if err != nil {
			return false
		}
		return VerifyAnchored(leafOf(i), p, anchor, root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLenBoundedWithAnchor(t *testing.T) {
	// The fam-aoa property: anchored path length is bounded by O(δ)
	// regardless of ledger size.
	const height = 4
	var maxLen int
	for _, n := range []uint64{50, 500, 5000} {
		tr := build(t, height, n)
		anchor := tr.AnchorNow()
		p, err := tr.ProveAnchored(1, anchor) // deep historical journal
		if err != nil {
			t.Fatal(err)
		}
		if maxLen == 0 {
			maxLen = p.PathLen()
		}
		if p.PathLen() != maxLen {
			t.Fatalf("anchored path length changed with ledger size: %d vs %d", p.PathLen(), maxLen)
		}
	}
}
