package fam

import (
	"fmt"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/merkle/shrubs"
)

// TestSeedVectorRoots pins the shrubs and fam roots for a fixed 100-leaf
// sequence. The hashing helpers in hashutil were rewritten to run on
// pooled/stack scratch; any divergence from the seed-era byte layout
// would change these roots and invalidate every persisted ledger.
func TestSeedVectorRoots(t *testing.T) {
	leaves := make([]hashutil.Digest, 100)
	for i := range leaves {
		leaves[i] = hashutil.Leaf([]byte(fmt.Sprintf("seed-vector-leaf-%03d", i)))
	}

	sh := shrubs.New()
	for _, d := range leaves {
		sh.Append(d)
	}
	sr, err := sh.Root()
	if err != nil {
		t.Fatal(err)
	}
	const wantShrubs = "c9f3031a939d0b4a1019cc278cb121d0da307c62010740ff88298bc144744bcf"
	if sr.String() != wantShrubs {
		t.Errorf("shrubs root = %s, want %s", sr, wantShrubs)
	}

	for _, c := range []struct {
		bits uint8
		want string
	}{
		// With 2^3=8-leaf epochs the 100 leaves span 13 epochs, so the
		// root folds epoch digests; with 2^15 the whole sequence fits
		// epoch 0 and the fam root equals the plain shrubs root.
		{3, "dc8d75cd7aaaf3c5bcdbda6d87565cbb3e0b124344fb45a3634ab31ece18ad30"},
		{15, wantShrubs},
	} {
		fm := MustNew(c.bits)
		for _, d := range leaves {
			fm.Append(d)
		}
		fr, err := fm.Root()
		if err != nil {
			t.Fatal(err)
		}
		if fr.String() != c.want {
			t.Errorf("fam(2^%d) root = %s, want %s", c.bits, fr, c.want)
		}
	}
}
