package fam

import (
	"testing"
	"testing/quick"

	"ledgerdb/internal/wire"
)

// Proof decoders consume untrusted bytes; they must reject garbage with
// an error, never panic.
func TestDecodeProofNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, err := DecodeProof(wire.NewReader(b))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAnchorNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, err := DecodeAnchor(wire.NewReader(b))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
