// Package fam implements the fractal accumulating model of §III-A1: a
// Merkle accumulator organized as a chain of fixed-height Shrubs epochs.
//
// Rule 1 of the paper: when the current tree of a given size is full, its
// root node becomes the first leaf node of a new tree. An epoch of fractal
// height δ holds 2^δ leaves; every epoch after the first begins with a
// *merged leaf* carrying the previous epoch's root, so the newest epoch's
// commitment transitively covers the entire ledger, the way block links
// cover a blockchain — but fractally, not linearly.
//
// Verification has two regimes, mirroring Figure 4:
//
//   - Cold (no anchor): a proof is the journal's path inside its own epoch
//     plus one merged-leaf hop per later epoch, so cost grows with the
//     number of epochs between the journal and the live root.
//   - Anchored (fam-aoa): the verifier has already audited the ledger up
//     to an Anchor and trusts every sealed epoch root it covers. A sealed
//     journal then needs only its O(δ) in-epoch path against the trusted
//     epoch root, and a current-epoch journal needs its in-epoch path plus
//     a single merged-leaf hop — near-constant cost regardless of ledger
//     size, which is the stable GetProof throughput of Figure 8(b).
package fam

import (
	"errors"
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/merkle/shrubs"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrBadHeight  = errors.New("fam: fractal height must be in [1, 30]")
	ErrOutOfRange = errors.New("fam: journal index out of range")
	ErrBadProof   = errors.New("fam: proof verification failed")
	ErrBadAnchor  = errors.New("fam: anchor does not match tree state")
)

// Tree is a fam accumulator with fixed fractal height. Not safe for
// concurrent mutation; the ledger engine serializes appends and snapshots
// roots at block boundaries for readers.
type Tree struct {
	height   uint8  // δ
	epochCap uint64 // 2^δ leaves per epoch

	sealed  []*shrubs.Tree // completed epochs (retained to serve proofs)
	roots   []hashutil.Digest
	current *shrubs.Tree // the open epoch
	size    uint64       // journal leaves appended (merged leaves excluded)
}

// New creates a fam tree with fractal height δ; each epoch holds 2^δ
// leaves (the first of which, from epoch 1 on, is the merged leaf).
func New(height uint8) (*Tree, error) {
	if height < 1 || height > 30 {
		return nil, fmt.Errorf("%w: %d", ErrBadHeight, height)
	}
	return &Tree{height: height, epochCap: 1 << height, current: shrubs.New()}, nil
}

// MustNew is New for static configuration; it panics on a bad height.
func MustNew(height uint8) *Tree {
	t, err := New(height)
	if err != nil {
		panic(err)
	}
	return t
}

// Height returns the fractal height δ.
func (t *Tree) Height() uint8 { return t.height }

// Size returns the number of journal leaves appended (excluding merged
// leaves).
func (t *Tree) Size() uint64 { return t.size }

// Epochs returns the number of epochs (sealed plus the open one).
func (t *Tree) Epochs() int { return len(t.sealed) + 1 }

// SealedRoots returns the roots of all sealed epochs, oldest first. The
// returned slice is shared; callers must not modify it.
func (t *Tree) SealedRoots() []hashutil.Digest { return t.roots }

// Append adds a journal digest and returns its journal index.
func (t *Tree) Append(leaf hashutil.Digest) uint64 {
	if t.current.Size() == t.epochCap {
		t.seal()
	}
	t.current.Append(leaf)
	idx := t.size
	t.size++
	return idx
}

// seal closes the full current epoch and opens the next one, whose first
// leaf is the merged leaf binding the sealed epoch's index and root.
func (t *Tree) seal() {
	root, err := t.current.Root()
	if err != nil {
		panic("fam: sealing empty epoch")
	}
	idx := uint64(len(t.sealed))
	t.sealed = append(t.sealed, t.current)
	t.roots = append(t.roots, root)
	t.current = shrubs.New()
	t.current.Append(hashutil.Epoch(idx, root))
}

// Root returns the current commitment: the (bagged) root of the open
// epoch, which transitively covers all sealed epochs through the merged
// leaves.
func (t *Tree) Root() (hashutil.Digest, error) {
	if t.size == 0 {
		return hashutil.Zero, shrubs.ErrEmpty
	}
	return t.current.Root()
}

// locate maps a journal index to (epoch, leaf offset inside that epoch's
// Shrubs tree). Epoch 0 has no merged leaf, so it holds epochCap journals;
// later epochs hold epochCap-1 journals each, shifted one slot right.
func (t *Tree) locate(index uint64) (epoch int, leaf uint64, err error) {
	if index >= t.size {
		return 0, 0, fmt.Errorf("%w: %d >= %d", ErrOutOfRange, index, t.size)
	}
	if index < t.epochCap {
		return 0, index, nil
	}
	rest := index - t.epochCap
	per := t.epochCap - 1
	return int(1 + rest/per), 1 + rest%per, nil
}

// JournalCapacity returns how many journal leaves fit in the first n
// epochs; benchmarks use it to size workloads to exact epoch boundaries.
func (t *Tree) JournalCapacity(epochs int) uint64 {
	if epochs <= 0 {
		return 0
	}
	return t.epochCap + uint64(epochs-1)*(t.epochCap-1)
}

// epochTree returns the Shrubs tree for an epoch (sealed or current).
func (t *Tree) epochTree(e int) *shrubs.Tree {
	if e < len(t.sealed) {
		return t.sealed[e]
	}
	return t.current
}

// PruneEpochs implements the purge-aligned erasure option of §III-A2:
// once a trusted anchor covers the first `before` epochs, their cell
// storage can be dropped — only the epoch roots are retained (they are
// what anchored verification needs). Journals in pruned epochs can no
// longer be proven (they are purged data); later journals are unaffected
// because every hop proof lives in a retained epoch. Returns the number
// of epochs pruned.
func (t *Tree) PruneEpochs(before int) int {
	if before > len(t.sealed) {
		before = len(t.sealed)
	}
	n := 0
	for i := 0; i < before; i++ {
		if t.sealed[i] != nil {
			t.sealed[i] = nil
			n++
		}
	}
	return n
}

// PruneBelow releases the cell storage of every sealed epoch whose
// journals all precede index — the purge-aligned form of PruneEpochs
// ("after aligning trusted anchor to the purging point", §III-A2). An
// epoch containing both purged and live journals is retained. Returns
// the number of epochs pruned.
func (t *Tree) PruneBelow(index uint64) int {
	if index == 0 {
		return 0
	}
	// The epoch containing index (or the open epoch if index is beyond
	// the sealed range) must survive; everything before it may go.
	e, _, err := t.locate(index)
	if err != nil {
		e = len(t.sealed) // index at/after the live edge: prune all sealed
	}
	return t.PruneEpochs(e)
}

// ErrPruned is returned when proving a journal whose epoch storage was
// released by PruneEpochs.
var ErrPruned = errors.New("fam: epoch pruned; journal no longer provable")

// CellCount reports the number of digests currently retained across all
// epochs — the storage-overhead metric of Table I.
func (t *Tree) CellCount() uint64 {
	var n uint64
	for _, s := range t.sealed {
		if s != nil {
			n += s.CellCount()
		}
	}
	n += t.current.CellCount()
	n += uint64(len(t.roots)) // sealed roots always survive
	return n
}

// Hop is one step of the merged-leaf chain: the proof that the previous
// epoch's root, wrapped as a merged leaf, is covered by epoch Epoch's
// commitment.
type Hop struct {
	Epoch int // the epoch this hop verifies into
	// MergedLeaf proves leaf 0 (the merged leaf) of Epoch against
	// Commitment.
	MergedLeaf *shrubs.Proof
	// Commitment is the bagged frontier of Epoch at proof time: the
	// sealed root for past epochs, the live root for the open epoch.
	Commitment hashutil.Digest
}

// Proof shows that a journal digest is accumulated in a fam tree.
type Proof struct {
	Index uint64 // journal index
	Epoch int    // epoch containing the journal
	// InEpoch proves the journal leaf against EpochCommitment.
	InEpoch *shrubs.Proof
	// EpochCommitment is the commitment of the journal's epoch at proof
	// time (sealed root, or live root for the open epoch).
	EpochCommitment hashutil.Digest
	// Hops chains EpochCommitment to the verification target through the
	// merged leaves of later epochs. Empty for anchored proofs of sealed
	// journals and for journals in the target epoch itself.
	Hops []Hop
}

// PathLen reports the number of digests a verifier touches; the Figure 8
// benchmarks use it as the verification-cost metric.
func (p *Proof) PathLen() int {
	n := len(p.InEpoch.Siblings) + len(p.InEpoch.Frontier)
	for _, h := range p.Hops {
		n += len(h.MergedLeaf.Siblings) + len(h.MergedLeaf.Frontier)
	}
	return n
}

// Prove produces a cold proof for a journal index against the current
// root: in-epoch path plus the full merged-leaf chain.
func (t *Tree) Prove(index uint64) (*Proof, error) {
	e, leaf, err := t.locate(index)
	if err != nil {
		return nil, err
	}
	p, err := t.inEpochProof(index, e, leaf)
	if err != nil {
		return nil, err
	}
	for k := e + 1; k <= len(t.sealed); k++ {
		hop, err := t.hop(k)
		if err != nil {
			return nil, err
		}
		p.Hops = append(p.Hops, hop)
	}
	return p, nil
}

func (t *Tree) inEpochProof(index uint64, e int, leaf uint64) (*Proof, error) {
	tree := t.epochTree(e)
	if tree == nil {
		return nil, fmt.Errorf("%w: epoch %d", ErrPruned, e)
	}
	ip, err := tree.Prove(leaf)
	if err != nil {
		return nil, fmt.Errorf("fam: epoch %d: %w", e, err)
	}
	com, err := tree.Root()
	if err != nil {
		return nil, err
	}
	return &Proof{Index: index, Epoch: e, InEpoch: ip, EpochCommitment: com}, nil
}

func (t *Tree) hop(k int) (Hop, error) {
	tree := t.epochTree(k)
	if tree == nil {
		return Hop{}, fmt.Errorf("%w: epoch %d", ErrPruned, k)
	}
	mp, err := tree.Prove(0)
	if err != nil {
		return Hop{}, fmt.Errorf("fam: hop into epoch %d: %w", k, err)
	}
	com, err := tree.Root()
	if err != nil {
		return Hop{}, err
	}
	return Hop{Epoch: k, MergedLeaf: mp, Commitment: com}, nil
}

// RootAt returns the commitment the tree exposed when it held exactly
// size journal leaves, 1 ≤ size ≤ Size(). Shrubs epochs retain every
// computed cell, so any historical root is recomputable from the epoch
// that held journal size-1 at the time.
func (t *Tree) RootAt(size uint64) (hashutil.Digest, error) {
	if size == 0 || size > t.size {
		return hashutil.Zero, fmt.Errorf("%w: root at size %d of %d", ErrOutOfRange, size, t.size)
	}
	e, leaf, err := t.locate(size - 1)
	if err != nil {
		return hashutil.Zero, err
	}
	tree := t.epochTree(e)
	if tree == nil {
		return hashutil.Zero, fmt.Errorf("%w: epoch %d", ErrPruned, e)
	}
	return tree.RootAt(leaf + 1)
}

// ProveAt produces a cold proof for a journal index against the root the
// tree exposed at journal count size (as returned by RootAt). A verifier
// holding a commitment to some past ledger state — a folded shard head,
// an old signed LedgerInfo — checks it with the ordinary Verify. Full
// epochs between the journal and size contribute whole-epoch hops; the
// epoch holding journal size-1 contributes a partial-frontier hop (or a
// partial in-epoch path when the journal lives there itself).
func (t *Tree) ProveAt(index, size uint64) (*Proof, error) {
	if size == 0 || size > t.size {
		return nil, fmt.Errorf("%w: proof at size %d of %d", ErrOutOfRange, size, t.size)
	}
	if index >= size {
		return nil, fmt.Errorf("%w: journal %d at size %d", ErrOutOfRange, index, size)
	}
	es, leafLast, err := t.locate(size - 1)
	if err != nil {
		return nil, err
	}
	e, leaf, err := t.locate(index)
	if err != nil {
		return nil, err
	}
	if e == es {
		// Journal and target share an epoch: one partial in-epoch path.
		tree := t.epochTree(e)
		if tree == nil {
			return nil, fmt.Errorf("%w: epoch %d", ErrPruned, e)
		}
		ip, err := tree.ProveAt(leaf, leafLast+1)
		if err != nil {
			return nil, fmt.Errorf("fam: epoch %d: %w", e, err)
		}
		com, err := tree.RootAt(leafLast + 1)
		if err != nil {
			return nil, err
		}
		return &Proof{Index: index, Epoch: e, InEpoch: ip, EpochCommitment: com}, nil
	}
	// Epoch e was sealed by size: full in-epoch path, full hops up to
	// es-1, then the partial hop into es at its then-current fill.
	p, err := t.inEpochProof(index, e, leaf)
	if err != nil {
		return nil, err
	}
	for k := e + 1; k < es; k++ {
		hop, err := t.hop(k)
		if err != nil {
			return nil, err
		}
		p.Hops = append(p.Hops, hop)
	}
	tree := t.epochTree(es)
	if tree == nil {
		return nil, fmt.Errorf("%w: epoch %d", ErrPruned, es)
	}
	mp, err := tree.ProveAt(0, leafLast+1)
	if err != nil {
		return nil, fmt.Errorf("fam: hop into epoch %d: %w", es, err)
	}
	com, err := tree.RootAt(leafLast + 1)
	if err != nil {
		return nil, err
	}
	p.Hops = append(p.Hops, Hop{Epoch: es, MergedLeaf: mp, Commitment: com})
	return p, nil
}

// Anchor is a trusted checkpoint in the fam-aoa model (Figure 4(a)): a
// verifier that holds an Anchor has cryptographically verified every
// journal with index below Size and trusts the sealed epoch roots it
// covers. Anchors are set after an audit; all data before them is trusted.
type Anchor struct {
	Size   uint64            // journal count covered by the anchor
	Epochs int               // number of sealed epochs covered
	Roots  []hashutil.Digest // trusted sealed-epoch roots, oldest first
}

// AnchorNow captures an anchor covering every currently sealed epoch.
// (The open epoch is excluded: its root is still moving.)
func (t *Tree) AnchorNow() *Anchor {
	per := t.epochCap - 1
	var size uint64
	if n := len(t.sealed); n > 0 {
		size = t.epochCap + uint64(n-1)*per
	}
	roots := make([]hashutil.Digest, len(t.roots))
	copy(roots, t.roots)
	return &Anchor{Size: size, Epochs: len(t.sealed), Roots: roots}
}

// Encode appends the anchor to a wire writer (verifiers persist anchors
// between sessions and ship them to proof endpoints).
func (a *Anchor) Encode(w *wire.Writer) {
	w.Uvarint(a.Size)
	w.Uvarint(uint64(a.Epochs))
	w.Uvarint(uint64(len(a.Roots)))
	for _, r := range a.Roots {
		w.Digest(r)
	}
}

// DecodeAnchor reads an anchor from a wire reader.
func DecodeAnchor(r *wire.Reader) (*Anchor, error) {
	a := &Anchor{Size: r.Uvarint(), Epochs: int(r.Uvarint())}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("%w: %d anchor roots", ErrBadAnchor, n)
	}
	for i := uint64(0); i < n; i++ {
		a.Roots = append(a.Roots, r.Digest())
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if len(a.Roots) != a.Epochs {
		return nil, fmt.Errorf("%w: %d roots for %d epochs", ErrBadAnchor, len(a.Roots), a.Epochs)
	}
	return a, r.Err()
}

// ProveAnchored produces a proof optimized for a verifier holding anchor:
// sealed journals covered by the anchor get only their O(δ) in-epoch
// path; journals in later epochs get the short residual hop chain.
func (t *Tree) ProveAnchored(index uint64, a *Anchor) (*Proof, error) {
	if a == nil {
		return t.Prove(index)
	}
	if a.Epochs > len(t.sealed) || len(a.Roots) != a.Epochs {
		return nil, fmt.Errorf("%w: %d epochs (tree has %d sealed)", ErrBadAnchor, a.Epochs, len(t.sealed))
	}
	e, leaf, err := t.locate(index)
	if err != nil {
		return nil, err
	}
	p, err := t.inEpochProof(index, e, leaf)
	if err != nil {
		return nil, err
	}
	if e < a.Epochs {
		// The epoch root is already trusted: no hops needed.
		return p, nil
	}
	for k := e + 1; k <= len(t.sealed); k++ {
		hop, err := t.hop(k)
		if err != nil {
			return nil, err
		}
		p.Hops = append(p.Hops, hop)
	}
	return p, nil
}

// Verify checks a cold proof: the journal leaf must fold to its epoch
// commitment, and the merged-leaf chain must walk from that commitment to
// root (the trusted datum, e.g. from a signed receipt).
func Verify(leaf hashutil.Digest, p *Proof, root hashutil.Digest) error {
	if p == nil || p.InEpoch == nil {
		return fmt.Errorf("%w: nil proof", ErrBadProof)
	}
	if err := shrubs.VerifyProof(leaf, p.InEpoch, p.EpochCommitment); err != nil {
		return fmt.Errorf("%w: in-epoch: %v", ErrBadProof, err)
	}
	com := p.EpochCommitment
	epoch := p.Epoch
	for _, h := range p.Hops {
		if h.Epoch != epoch+1 {
			return fmt.Errorf("%w: hop into epoch %d after epoch %d", ErrBadProof, h.Epoch, epoch)
		}
		merged := hashutil.Epoch(uint64(epoch), com)
		if h.MergedLeaf.Index != 0 {
			return fmt.Errorf("%w: hop proof is for leaf %d, want merged leaf 0", ErrBadProof, h.MergedLeaf.Index)
		}
		if err := shrubs.VerifyProof(merged, h.MergedLeaf, h.Commitment); err != nil {
			return fmt.Errorf("%w: hop into epoch %d: %v", ErrBadProof, h.Epoch, err)
		}
		com = h.Commitment
		epoch = h.Epoch
	}
	if com != root {
		return fmt.Errorf("%w: chain ends at %s, want root %s", ErrBadProof, com.Short(), root.Short())
	}
	return nil
}

// VerifyAnchored checks a proof under the fam-aoa model. For journals in
// an anchored epoch the in-epoch path is checked against the trusted
// epoch root and nothing else; otherwise the residual hop chain must end
// at root.
func VerifyAnchored(leaf hashutil.Digest, p *Proof, a *Anchor, root hashutil.Digest) error {
	if a == nil {
		return Verify(leaf, p, root)
	}
	if p == nil || p.InEpoch == nil {
		return fmt.Errorf("%w: nil proof", ErrBadProof)
	}
	if p.Epoch < a.Epochs {
		if err := shrubs.VerifyProof(leaf, p.InEpoch, a.Roots[p.Epoch]); err != nil {
			return fmt.Errorf("%w: anchored epoch %d: %v", ErrBadProof, p.Epoch, err)
		}
		if p.EpochCommitment != a.Roots[p.Epoch] {
			return fmt.Errorf("%w: proof commitment differs from anchored root", ErrBadProof)
		}
		return nil
	}
	return Verify(leaf, p, root)
}

// Encode appends the proof to a wire writer.
func (p *Proof) Encode(w *wire.Writer) {
	w.Uvarint(p.Index)
	w.Uvarint(uint64(p.Epoch))
	p.InEpoch.Encode(w)
	w.Digest(p.EpochCommitment)
	w.Uvarint(uint64(len(p.Hops)))
	for _, h := range p.Hops {
		w.Uvarint(uint64(h.Epoch))
		h.MergedLeaf.Encode(w)
		w.Digest(h.Commitment)
	}
}

// DecodeProof reads a proof from a wire reader.
func DecodeProof(r *wire.Reader) (*Proof, error) {
	p := &Proof{Index: r.Uvarint(), Epoch: int(r.Uvarint())}
	ip, err := shrubs.DecodeProof(r)
	if err != nil {
		return nil, err
	}
	p.InEpoch = ip
	p.EpochCommitment = r.Digest()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d hops", ErrBadProof, n)
	}
	for i := uint64(0); i < n; i++ {
		h := Hop{Epoch: int(r.Uvarint())}
		mp, err := shrubs.DecodeProof(r)
		if err != nil {
			return nil, err
		}
		h.MergedLeaf = mp
		h.Commitment = r.Digest()
		p.Hops = append(p.Hops, h)
	}
	return p, r.Err()
}
