package fam

import (
	"fmt"
	"testing"

	"ledgerdb/internal/hashutil"
)

func benchLeaves(n int) []hashutil.Digest {
	out := make([]hashutil.Digest, n)
	for i := range out {
		out[i] = hashutil.Leaf([]byte(fmt.Sprintf("bench-%d", i)))
	}
	return out
}

// BenchmarkAppend measures fam append at various fractal heights (the
// Figure 8(a) per-op view).
func BenchmarkAppend(b *testing.B) {
	for _, h := range []uint8{5, 10, 15} {
		b.Run(fmt.Sprintf("fam-%d", h), func(b *testing.B) {
			leaves := benchLeaves(1 << 12)
			tree := MustNew(h)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.Append(leaves[i%len(leaves)])
			}
		})
	}
}

// BenchmarkProveAnchoredVsCold is the fam-aoa ablation: how much the
// trusted anchor saves on deep historical journals.
func BenchmarkProveAnchoredVsCold(b *testing.B) {
	const n = 1 << 14
	tree := MustNew(5) // many epochs: long cold chains
	leaves := benchLeaves(n)
	for _, d := range leaves {
		tree.Append(d)
	}
	anchor := tree.AnchorNow()
	root, _ := tree.Root()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx := uint64(i*7919) % n
			p, err := tree.Prove(idx)
			if err != nil {
				b.Fatal(err)
			}
			if err := Verify(leaves[idx], p, root); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("anchored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx := uint64(i*7919) % n
			p, err := tree.ProveAnchored(idx, anchor)
			if err != nil {
				b.Fatal(err)
			}
			if err := VerifyAnchored(leaves[idx], p, anchor, root); err != nil {
				b.Fatal(err)
			}
		}
	})
}
