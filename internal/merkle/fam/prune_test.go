package fam

import (
	"errors"
	"testing"
)

func TestPruneEpochsReleasesStorage(t *testing.T) {
	tr := build(t, 3, 200)
	before := tr.CellCount()
	anchor := tr.AnchorNow()
	pruned := tr.PruneEpochs(anchor.Epochs)
	if pruned != anchor.Epochs {
		t.Fatalf("pruned %d of %d epochs", pruned, anchor.Epochs)
	}
	after := tr.CellCount()
	if after >= before/4 {
		t.Fatalf("pruning released too little: %d -> %d cells", before, after)
	}
	// Idempotent.
	if tr.PruneEpochs(anchor.Epochs) != 0 {
		t.Fatal("second prune reported work")
	}
}

func TestPrunedJournalsNotProvable(t *testing.T) {
	tr := build(t, 3, 100)
	anchor := tr.AnchorNow()
	tr.PruneEpochs(anchor.Epochs)
	if _, err := tr.Prove(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("err = %v, want ErrPruned", err)
	}
	if _, err := tr.ProveAnchored(1, anchor); !errors.Is(err, ErrPruned) {
		t.Fatalf("err = %v, want ErrPruned", err)
	}
}

func TestPruneKeepsLaterJournalsProvable(t *testing.T) {
	tr := build(t, 3, 100)
	anchor := tr.AnchorNow()
	tr.PruneEpochs(anchor.Epochs)
	root, err := tr.Root()
	if err != nil {
		t.Fatal(err)
	}
	// Journals in the open epoch still prove and verify.
	idx := tr.Size() - 1
	p, err := tr.Prove(idx)
	if err != nil {
		t.Fatalf("post-prune Prove(%d): %v", idx, err)
	}
	if err := Verify(leafOf(idx), p, root); err != nil {
		t.Fatal(err)
	}
	// Appends continue and seal new epochs normally.
	for i := 0; i < 50; i++ {
		tr.Append(leafOf(1000 + uint64(i)))
	}
	root2, _ := tr.Root()
	p2, err := tr.Prove(tr.Size() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(leafOf(1000+49), p2, root2); err != nil {
		t.Fatal(err)
	}
}

func TestPruneBelowAlignsToEpochs(t *testing.T) {
	tr := build(t, 3, 100) // epoch 0: journals 0-7; epoch k: 7 each
	// Pruning below journal 20 (inside epoch 2) must drop epochs 0 and 1
	// and keep epoch 2.
	if n := tr.PruneBelow(20); n != 2 {
		t.Fatalf("pruned %d epochs, want 2", n)
	}
	if _, err := tr.Prove(3); !errors.Is(err, ErrPruned) { // epoch 0
		t.Fatalf("err = %v", err)
	}
	if _, err := tr.Prove(10); !errors.Is(err, ErrPruned) { // epoch 1
		t.Fatalf("err = %v", err)
	}
	root, _ := tr.Root()
	p, err := tr.Prove(16) // epoch 2: shared with live journals, retained
	if err != nil {
		t.Fatalf("epoch sharing the boundary was pruned: %v", err)
	}
	if err := Verify(leafOf(16), p, root); err != nil {
		t.Fatal(err)
	}
	// PruneBelow(0) and a second identical call are no-ops.
	if tr.PruneBelow(0) != 0 || tr.PruneBelow(20) != 0 {
		t.Fatal("idempotence broken")
	}
	// Pruning past the live edge clamps to all sealed epochs.
	tr2 := build(t, 3, 100)
	if n := tr2.PruneBelow(1 << 60); n != len(tr2.roots) {
		t.Fatalf("clamp pruned %d, want %d", n, len(tr2.roots))
	}
}

func TestPruneBeyondSealedClamps(t *testing.T) {
	tr := build(t, 3, 20)
	n := tr.PruneEpochs(999)
	if n != len(tr.roots) {
		t.Fatalf("pruned %d, want %d", n, len(tr.roots))
	}
}
