package fam

import (
	"errors"
	"testing"
)

// TestRootAtMatchesReplay pins the meaning of a historical root: RootAt(s)
// on the full tree must equal the live Root() of a fresh tree grown to s.
func TestRootAtMatchesReplay(t *testing.T) {
	const n = 40
	tr := build(t, 3, n)
	for s := uint64(1); s <= n; s++ {
		shadow := build(t, 3, s)
		want, err := shadow.Root()
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.RootAt(s)
		if err != nil {
			t.Fatalf("RootAt(%d): %v", s, err)
		}
		if got != want {
			t.Fatalf("RootAt(%d) = %s, want replay root %s", s, got.Short(), want.Short())
		}
	}
	if _, err := tr.RootAt(0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("RootAt(0) err = %v", err)
	}
	if _, err := tr.RootAt(n + 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("RootAt(%d) err = %v", n+1, err)
	}
}

// TestProveAtAllPairs checks every (index, size) pair across several epoch
// boundaries: the historical proof must verify against the historical root
// with the unchanged pure verifier, exactly like a live proof.
func TestProveAtAllPairs(t *testing.T) {
	const n = 40 // δ=3: epochs of 8 then 7 journals → 5+ epochs
	tr := build(t, 3, n)
	for s := uint64(1); s <= n; s++ {
		root, err := tr.RootAt(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < s; i++ {
			p, err := tr.ProveAt(i, s)
			if err != nil {
				t.Fatalf("ProveAt(%d, %d): %v", i, s, err)
			}
			if err := Verify(leafOf(i), p, root); err != nil {
				t.Fatalf("Verify(%d at size %d): %v", i, s, err)
			}
			if s < n {
				// A historical proof must NOT verify against the live root
				// (unless the commitment happens to coincide, which these
				// distinct leaves rule out).
				live, _ := tr.Root()
				if err := Verify(leafOf(i), p, live); err == nil {
					t.Fatalf("proof at size %d verified against live root of size %d", s, n)
				}
			}
		}
	}
}

// TestProveAtLiveEqualsProve: at the live size the historical path must
// reduce to the ordinary cold proof.
func TestProveAtLiveEqualsProve(t *testing.T) {
	const n = 23
	tr := build(t, 3, n)
	root, err := tr.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		p, err := tr.ProveAt(i, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(leafOf(i), p, root); err != nil {
			t.Fatalf("ProveAt(%d, live) does not verify: %v", i, err)
		}
	}
}

func TestProveAtRejectsBadArgs(t *testing.T) {
	tr := build(t, 3, 10)
	if _, err := tr.ProveAt(0, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("size 0: %v", err)
	}
	if _, err := tr.ProveAt(0, 11); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("size beyond live: %v", err)
	}
	if _, err := tr.ProveAt(5, 5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("index at size: %v", err)
	}
}

// TestProveAtPrunedEpoch: once an epoch's cells are released, historical
// proofs that need it fail loudly with ErrPruned.
func TestProveAtPrunedEpoch(t *testing.T) {
	tr := build(t, 3, 30)
	if n := tr.PruneEpochs(1); n != 1 {
		t.Fatalf("pruned %d epochs", n)
	}
	if _, err := tr.ProveAt(2, 20); !errors.Is(err, ErrPruned) {
		t.Fatalf("proof in pruned epoch: %v", err)
	}
	if _, err := tr.RootAt(5); !errors.Is(err, ErrPruned) {
		t.Fatalf("root inside pruned epoch: %v", err)
	}
	// Journals in retained epochs still prove at sizes past the pruned one.
	if _, err := tr.ProveAt(12, 20); err != nil {
		t.Fatalf("proof in retained epoch: %v", err)
	}
}
