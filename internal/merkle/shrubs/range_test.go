package shrubs

import (
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

func rangeLeaves(tr *Tree, a, b uint64) []hashutil.Digest {
	out := make([]hashutil.Digest, 0, b-a)
	for i := a; i < b; i++ {
		d, _ := tr.Leaf(i)
		out = append(out, d)
	}
	return out
}

func TestRangeProofAllWindows(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 8, 13, 16, 21} {
		tr := build(n)
		com, _ := tr.Root()
		for a := uint64(0); a < n; a++ {
			for b := a + 1; b <= n; b++ {
				cells, err := tr.RangeProofCells(n, a, b)
				if err != nil {
					t.Fatalf("n=%d [%d,%d): %v", n, a, b, err)
				}
				if err := VerifyRange(n, a, b, rangeLeaves(tr, a, b), cells, com); err != nil {
					t.Fatalf("n=%d [%d,%d): %v", n, a, b, err)
				}
			}
		}
	}
}

func TestRangeProofAtHistoricalSize(t *testing.T) {
	// Cells for a size-s frontier remain valid after the tree grows.
	tr := build(10)
	com10, _ := tr.Root()
	cells, err := tr.RangeProofCells(10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	leaves := rangeLeaves(tr, 3, 7)
	for i := uint64(10); i < 40; i++ {
		tr.Append(leafOf(i))
	}
	cells2, err := tr.RangeProofCells(10, 3, 7)
	if err != nil {
		t.Fatalf("historical cells after growth: %v", err)
	}
	if len(cells2) != len(cells) {
		t.Fatalf("cell count changed: %d vs %d", len(cells2), len(cells))
	}
	if err := VerifyRange(10, 3, 7, leaves, cells2, com10); err != nil {
		t.Fatalf("historical range proof: %v", err)
	}
}

func TestVerifyRangeRejectsTampering(t *testing.T) {
	tr := build(16)
	com, _ := tr.Root()
	cells, _ := tr.RangeProofCells(16, 4, 10)
	leaves := rangeLeaves(tr, 4, 10)

	// A forged leaf.
	bad := append([]hashutil.Digest(nil), leaves...)
	bad[2] = hashutil.Leaf([]byte("evil"))
	if err := VerifyRange(16, 4, 10, bad, cells, com); err == nil {
		t.Fatal("forged leaf accepted")
	}
	// A tampered proof cell.
	if len(cells) > 0 {
		badCells := append([]CellRef(nil), cells...)
		badCells[0].Digest = hashutil.Leaf([]byte("evil"))
		if err := VerifyRange(16, 4, 10, leaves, badCells, com); err == nil {
			t.Fatal("tampered cell accepted")
		}
		// A missing proof cell.
		if err := VerifyRange(16, 4, 10, leaves, cells[1:], com); err == nil {
			t.Fatal("missing cell accepted")
		}
	}
	// Wrong range bounds.
	if err := VerifyRange(16, 5, 11, leaves, cells, com); err == nil {
		t.Fatal("shifted range accepted")
	}
	// Wrong leaf count.
	if err := VerifyRange(16, 4, 10, leaves[:5], cells, com); err == nil {
		t.Fatal("short leaf set accepted")
	}
	// Wrong commitment.
	if err := VerifyRange(16, 4, 10, leaves, cells, hashutil.Leaf([]byte("x"))); err == nil {
		t.Fatal("wrong commitment accepted")
	}
}

func TestRangeProofMinimality(t *testing.T) {
	// The full-tree range needs zero cells; a single leaf in a full
	// binary tree needs exactly its audit-path worth of cells.
	tr := build(16)
	cells, err := tr.RangeProofCells(16, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Fatalf("full range shipped %d cells", len(cells))
	}
	cells, err = tr.RangeProofCells(16, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // log2(16) = audit path length
		t.Fatalf("single-leaf range shipped %d cells, want 4", len(cells))
	}
}

func TestRangeProofBadInputs(t *testing.T) {
	tr := build(8)
	if _, err := tr.RangeProofCells(8, 3, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := tr.RangeProofCells(8, 5, 9); err == nil {
		t.Fatal("overflowing range accepted")
	}
	if _, err := tr.RangeProofCells(9, 0, 1); err == nil {
		t.Fatal("future size accepted")
	}
}

func TestCellsWireRoundTrip(t *testing.T) {
	tr := build(21)
	cells, _ := tr.RangeProofCells(21, 3, 9)
	w := wire.NewWriter(0)
	EncodeCells(w, cells)
	got, err := DecodeCells(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatal("length mismatch")
	}
	for i := range cells {
		if got[i] != cells[i] {
			t.Fatal("cell mismatch")
		}
	}
}

func TestQuickRangeProofs(t *testing.T) {
	f := func(nRaw, aRaw, bRaw uint16) bool {
		n := uint64(nRaw%200) + 1
		a := uint64(aRaw) % n
		b := a + 1 + uint64(bRaw)%(n-a)
		if b > n {
			b = n
		}
		tr := build(n)
		com, _ := tr.Root()
		cells, err := tr.RangeProofCells(n, a, b)
		if err != nil {
			return false
		}
		return VerifyRange(n, a, b, rangeLeaves(tr, a, b), cells, com) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
