// Package shrubs implements the Shrubs Merkle tree of §III-A1: an
// append-only accumulator with O(1) amortized insertion that exposes a
// *node-set proof* — the frontier of complete-subtree roots — instead of a
// single root hash while the binary tree is not yet full.
//
// The frontier is the binary-counter decomposition of the current size: a
// tree holding n leaves has one complete subtree per set bit of n, and the
// frontier lists their roots from largest to smallest. In the paper's
// Figure 3(a), after 5 leaves the proof for cell₅ is {cell₇}+{cell₈}
// style node sets; here the same sets fall out of Frontier().
//
// Shrubs is the storage layer under both fam epochs (package merkle/fam)
// and the per-clue CM-Tree2 accumulators (package cmtree), which need to
// fetch arbitrary interior cells by position — so, unlike a pure frontier
// accumulator, Shrubs retains all computed cells, addressable by the
// paper's (level, offset) scheme.
package shrubs

import (
	"errors"
	"fmt"
	"math/bits"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrEmpty      = errors.New("shrubs: empty tree")
	ErrOutOfRange = errors.New("shrubs: cell position out of range")
	ErrNotYet     = errors.New("shrubs: interior cell not yet computed")
	ErrBadProof   = errors.New("shrubs: proof verification failed")
)

// Pos addresses a cell: Level 0 is the leaf level; Offset counts cells
// within the level left to right.
type Pos struct {
	Level  uint8
	Offset uint64
}

// String renders a position for diagnostics.
func (p Pos) String() string { return fmt.Sprintf("L%d[%d]", p.Level, p.Offset) }

// Tree is an append-only Shrubs tree. Not safe for concurrent mutation.
type Tree struct {
	levels [][]hashutil.Digest
}

// New returns an empty Shrubs tree.
func New() *Tree {
	return &Tree{levels: make([][]hashutil.Digest, 1, 12)}
}

// Size returns the number of leaves appended.
func (t *Tree) Size() uint64 { return uint64(len(t.levels[0])) }

// Append adds a leaf digest and returns its index. Interior cells are
// computed lazily: exactly when a subtree completes, never earlier —
// this is the "avoids unnecessary accumulation for intermediate nodes"
// property that makes Shrubs insertion O(1) amortized.
func (t *Tree) Append(leaf hashutil.Digest) uint64 {
	idx := uint64(len(t.levels[0]))
	t.levels[0] = append(t.levels[0], leaf)
	i := idx
	for lvl := 0; i%2 == 1; lvl++ {
		if lvl+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		t.levels[lvl+1] = append(t.levels[lvl+1], hashutil.Node(t.levels[lvl][i-1], t.levels[lvl][i]))
		i /= 2
	}
	return idx
}

// Cell returns the digest stored at a position. Interior cells exist only
// for completed subtrees.
func (t *Tree) Cell(p Pos) (hashutil.Digest, error) {
	if int(p.Level) >= len(t.levels) {
		return hashutil.Zero, fmt.Errorf("%w: %s", ErrOutOfRange, p)
	}
	lvl := t.levels[p.Level]
	if p.Offset >= uint64(len(lvl)) {
		if p.Level > 0 && p.Offset < t.Size()>>uint(p.Level)+1 {
			return hashutil.Zero, fmt.Errorf("%w: %s", ErrNotYet, p)
		}
		return hashutil.Zero, fmt.Errorf("%w: %s", ErrOutOfRange, p)
	}
	return lvl[p.Offset], nil
}

// CellCount reports the number of digests stored across all levels — the
// storage-overhead metric for Table I style comparisons.
func (t *Tree) CellCount() uint64 {
	var n uint64
	for _, lvl := range t.levels {
		n += uint64(len(lvl))
	}
	return n
}

// Frontier returns the node-set proof for the current tree state: the
// roots of the complete subtrees, largest first. For a full tree (size a
// power of two) it is a single digest — the root.
func (t *Tree) Frontier() []hashutil.Digest {
	f, _ := t.FrontierAt(t.Size())
	return f
}

// FrontierAt returns the node-set proof the tree exposed when it held
// exactly n leaves, n ≤ Size(). Every complete subtree of the first n
// leaves is also a complete subtree now, so its root cell was computed at
// the time and is still addressable — historical frontiers cost nothing
// extra to retain.
func (t *Tree) FrontierAt(n uint64) ([]hashutil.Digest, error) {
	if n > t.Size() {
		return nil, fmt.Errorf("%w: frontier at %d of %d", ErrOutOfRange, n, t.Size())
	}
	out := make([]hashutil.Digest, 0, bits.OnesCount64(n))
	off := uint64(0)
	for b := bits.Len64(n); b > 0; b-- {
		lvl := uint(b - 1)
		if n&(1<<lvl) == 0 {
			continue
		}
		out = append(out, t.levels[lvl][off>>lvl])
		off += 1 << lvl
	}
	return out, nil
}

// Root returns the single digest committing to the whole tree: the root
// for a full tree, otherwise the frontier bagged right-to-left (the
// smallest subtrees fold into the larger ones, matching how the tree will
// close as it fills).
func (t *Tree) Root() (hashutil.Digest, error) {
	return t.RootAt(t.Size())
}

// RootAt returns the commitment the tree exposed when it held exactly n
// leaves, n ≤ Size().
func (t *Tree) RootAt(n uint64) (hashutil.Digest, error) {
	if n == 0 {
		return hashutil.Zero, ErrEmpty
	}
	f, err := t.FrontierAt(n)
	if err != nil {
		return hashutil.Zero, err
	}
	return BagFrontier(f), nil
}

// BagFrontier folds a frontier into one digest. It is exported so
// verifiers can recompute roots from node-set proofs.
func BagFrontier(f []hashutil.Digest) hashutil.Digest {
	acc := f[len(f)-1]
	for i := len(f) - 2; i >= 0; i-- {
		acc = hashutil.Node(f[i], acc)
	}
	return acc
}

// IsFull reports whether the size is a power of two (a complete tree).
func (t *Tree) IsFull() bool {
	n := t.Size()
	return n > 0 && n&(n-1) == 0
}

// Leaf returns the leaf digest at index i.
func (t *Tree) Leaf(i uint64) (hashutil.Digest, error) {
	return t.Cell(Pos{Level: 0, Offset: i})
}

// Proof is a membership proof for one leaf against a frontier snapshot:
// the audit path inside the leaf's complete subtree, plus the other
// frontier roots so the verifier can re-bag the full commitment.
type Proof struct {
	Index    uint64 // leaf index
	TreeSize uint64 // size when the proof was taken
	// Siblings is the bottom-up audit path within the complete subtree
	// containing the leaf.
	Siblings []hashutil.Digest
	// Frontier is the node-set proof at TreeSize. The subtree containing
	// the leaf appears at FrontierIdx; the verifier recomputes that entry
	// from Siblings and re-bags.
	Frontier    []hashutil.Digest
	FrontierIdx int
}

// Prove produces the membership proof for leaf index at the current size.
func (t *Tree) Prove(index uint64) (*Proof, error) {
	return t.ProveAt(index, t.Size())
}

// ProveAt produces the membership proof leaf index would have received
// when the tree held exactly n leaves, n ≤ Size(). The audit path inside
// the leaf's then-complete subtree only touches cells that existed at
// size n, so retained history serves proofs against any past frontier.
func (t *Tree) ProveAt(index, n uint64) (*Proof, error) {
	if index >= n {
		return nil, fmt.Errorf("%w: leaf %d of %d", ErrOutOfRange, index, n)
	}
	f, err := t.FrontierAt(n)
	if err != nil {
		return nil, err
	}
	p := &Proof{Index: index, TreeSize: n, Frontier: f}
	// Locate the complete subtree (frontier entry) containing the leaf.
	off := uint64(0)
	fi := 0
	for b := bits.Len64(n); b > 0; b-- {
		lvl := uint(b - 1)
		if n&(1<<lvl) == 0 {
			continue
		}
		width := uint64(1) << lvl
		if index < off+width {
			p.FrontierIdx = fi
			// Audit path inside this subtree, bottom-up.
			rel := index - off
			base := off
			for l := uint(0); l < lvl; l++ {
				sibOff := (base >> l) + (rel>>l ^ 1)
				p.Siblings = append(p.Siblings, t.levels[l][sibOff])
			}
			return p, nil
		}
		off += width
		fi++
	}
	return nil, fmt.Errorf("%w: leaf %d not covered by frontier", ErrOutOfRange, index)
}

// VerifyProof checks a leaf against a commitment produced by BagFrontier
// over the proof's frontier. It is a pure function.
func VerifyProof(leaf hashutil.Digest, p *Proof, commitment hashutil.Digest) error {
	if p == nil || p.TreeSize == 0 || p.Index >= p.TreeSize {
		return fmt.Errorf("%w: malformed proof", ErrBadProof)
	}
	if p.FrontierIdx < 0 || p.FrontierIdx >= len(p.Frontier) {
		return fmt.Errorf("%w: frontier index %d of %d", ErrBadProof, p.FrontierIdx, len(p.Frontier))
	}
	if bits.OnesCount64(p.TreeSize) != len(p.Frontier) {
		return fmt.Errorf("%w: frontier has %d entries for size %d", ErrBadProof, len(p.Frontier), p.TreeSize)
	}
	// Recompute the subtree root from the leaf and its audit path. The
	// leaf's relative index inside its subtree determines sibling sides.
	rel, width, err := relativeIndex(p.Index, p.TreeSize, p.FrontierIdx)
	if err != nil {
		return err
	}
	if uint64(1)<<len(p.Siblings) != width {
		return fmt.Errorf("%w: path length %d for subtree of %d", ErrBadProof, len(p.Siblings), width)
	}
	acc := leaf
	for l, sib := range p.Siblings {
		if (rel>>uint(l))&1 == 0 {
			acc = hashutil.Node(acc, sib)
		} else {
			acc = hashutil.Node(sib, acc)
		}
	}
	if acc != p.Frontier[p.FrontierIdx] {
		return fmt.Errorf("%w: subtree root %s != frontier entry %s", ErrBadProof, acc.Short(), p.Frontier[p.FrontierIdx].Short())
	}
	if got := BagFrontier(p.Frontier); got != commitment {
		return fmt.Errorf("%w: bagged frontier %s != commitment %s", ErrBadProof, got.Short(), commitment.Short())
	}
	return nil
}

// relativeIndex returns the leaf's index inside its frontier subtree and
// that subtree's width, walking the set bits of size.
func relativeIndex(index, size uint64, frontierIdx int) (rel, width uint64, err error) {
	off := uint64(0)
	fi := 0
	for b := bits.Len64(size); b > 0; b-- {
		lvl := uint(b - 1)
		if size&(1<<lvl) == 0 {
			continue
		}
		w := uint64(1) << lvl
		if index < off+w {
			if fi != frontierIdx {
				return 0, 0, fmt.Errorf("%w: leaf %d lies in frontier entry %d, proof says %d", ErrBadProof, index, fi, frontierIdx)
			}
			return index - off, w, nil
		}
		off += w
		fi++
	}
	return 0, 0, fmt.Errorf("%w: index %d outside size %d", ErrBadProof, index, size)
}

// RecomputeFrontier rebuilds the frontier from raw leaf digests. Clue
// verification (CM-Tree2) uses it to check a retrieved journal set against
// the frontier stored in CM-Tree1 in O(m).
func RecomputeFrontier(leaves []hashutil.Digest) []hashutil.Digest {
	t := New()
	for _, l := range leaves {
		t.Append(l)
	}
	if t.Size() == 0 {
		return nil
	}
	return t.Frontier()
}

// Encode appends the proof to a wire writer.
func (p *Proof) Encode(w *wire.Writer) {
	w.Uvarint(p.Index)
	w.Uvarint(p.TreeSize)
	w.Uvarint(uint64(p.FrontierIdx))
	w.Uvarint(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		w.Digest(s)
	}
	w.Uvarint(uint64(len(p.Frontier)))
	for _, f := range p.Frontier {
		w.Digest(f)
	}
}

// DecodeProof reads a proof from a wire reader.
func DecodeProof(r *wire.Reader) (*Proof, error) {
	p := &Proof{Index: r.Uvarint(), TreeSize: r.Uvarint(), FrontierIdx: int(r.Uvarint())}
	ns := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if ns > 64 {
		return nil, fmt.Errorf("%w: %d siblings", ErrBadProof, ns)
	}
	for i := uint64(0); i < ns; i++ {
		p.Siblings = append(p.Siblings, r.Digest())
	}
	nf := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nf > 64 {
		return nil, fmt.Errorf("%w: %d frontier entries", ErrBadProof, nf)
	}
	for i := uint64(0); i < nf; i++ {
		p.Frontier = append(p.Frontier, r.Digest())
	}
	return p, r.Err()
}

// EncodeFrontier serializes a frontier (node-set proof) for storage as a
// CM-Tree1 leaf value.
func EncodeFrontier(f []hashutil.Digest) []byte {
	w := wire.NewWriter(1 + len(f)*hashutil.Size)
	w.Uvarint(uint64(len(f)))
	for _, d := range f {
		w.Digest(d)
	}
	return w.Bytes()
}

// DecodeFrontier parses a frontier serialized by EncodeFrontier.
func DecodeFrontier(b []byte) ([]hashutil.Digest, error) {
	r := wire.NewReader(b)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 64 {
		return nil, fmt.Errorf("%w: %d frontier entries", ErrBadProof, n)
	}
	out := make([]hashutil.Digest, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.Digest())
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}
