package shrubs

import (
	"errors"
	"fmt"
	"math/bits"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

func leafOf(i uint64) hashutil.Digest {
	return hashutil.Leaf([]byte(fmt.Sprintf("cell-%d", i)))
}

func build(n uint64) *Tree {
	t := New()
	for i := uint64(0); i < n; i++ {
		t.Append(leafOf(i))
	}
	return t
}

func TestFrontierShapeMatchesBinaryCounter(t *testing.T) {
	// The frontier must have one entry per set bit of the size, ordered
	// from largest subtree to smallest — the paper's node-set proof.
	tr := New()
	for n := uint64(1); n <= 64; n++ {
		tr.Append(leafOf(n - 1))
		f := tr.Frontier()
		if len(f) != bits.OnesCount64(n) {
			t.Fatalf("size %d: frontier has %d entries, want %d", n, len(f), bits.OnesCount64(n))
		}
	}
}

func TestPaperFigure3aProofSets(t *testing.T) {
	// Figure 3(a): with 5 leaves the proof set is {root-of-4, leaf5};
	// with 6 leaves {root-of-4, parent-of(5,6)}; with 7
	// {root-of-4, parent-of(5,6), leaf7}; with 8 a single root.
	tr := build(5)
	f := tr.Frontier()
	if len(f) != 2 {
		t.Fatalf("5 leaves: frontier %d entries", len(f))
	}
	if f[1] != leafOf(4) {
		t.Fatal("5 leaves: second frontier entry should be the raw 5th leaf")
	}
	tr.Append(leafOf(5))
	f = tr.Frontier()
	if len(f) != 2 {
		t.Fatalf("6 leaves: frontier %d entries", len(f))
	}
	if f[1] != hashutil.Node(leafOf(4), leafOf(5)) {
		t.Fatal("6 leaves: second entry should be parent of leaves 5,6")
	}
	tr.Append(leafOf(6))
	if len(tr.Frontier()) != 3 {
		t.Fatal("7 leaves: want 3 frontier entries")
	}
	tr.Append(leafOf(7))
	f = tr.Frontier()
	if len(f) != 1 {
		t.Fatalf("8 leaves: want single root, got %d entries", len(f))
	}
	if !tr.IsFull() {
		t.Fatal("8 leaves: IsFull = false")
	}
}

func TestRootMatchesAccumulatorForFullTrees(t *testing.T) {
	// For power-of-two sizes the bagged frontier is the plain Merkle root.
	for _, n := range []uint64{1, 2, 4, 8, 16, 64} {
		tr := build(n)
		root, err := tr.Root()
		if err != nil {
			t.Fatal(err)
		}
		want := naiveRoot(0, n)
		if root != want {
			t.Fatalf("n=%d root mismatch", n)
		}
	}
}

func naiveRoot(begin, end uint64) hashutil.Digest {
	if end-begin == 1 {
		return leafOf(begin)
	}
	mid := begin + (end-begin)/2
	return hashutil.Node(naiveRoot(begin, mid), naiveRoot(mid, end))
}

func TestEmptyRoot(t *testing.T) {
	if _, err := New().Root(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestProveVerifyAllIndicesManySizes(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 5, 6, 7, 8, 11, 16, 21, 32, 57, 64, 100} {
		tr := build(n)
		com, _ := tr.Root()
		for i := uint64(0); i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if err := VerifyProof(leafOf(i), p, com); err != nil {
				t.Fatalf("n=%d Verify(%d): %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	tr := build(21)
	com, _ := tr.Root()
	p, _ := tr.Prove(9)

	if err := VerifyProof(leafOf(10), p, com); err == nil {
		t.Fatal("wrong leaf accepted")
	}
	bad := *p
	bad.Frontier = append([]hashutil.Digest(nil), p.Frontier...)
	bad.Frontier[0] = hashutil.Leaf([]byte("evil"))
	if err := VerifyProof(leafOf(9), &bad, com); err == nil {
		t.Fatal("tampered frontier accepted")
	}
	bad2 := *p
	bad2.FrontierIdx = (p.FrontierIdx + 1) % len(p.Frontier)
	if err := VerifyProof(leafOf(9), &bad2, com); err == nil {
		t.Fatal("wrong frontier index accepted")
	}
	if len(p.Siblings) > 0 {
		bad3 := *p
		bad3.Siblings = p.Siblings[:len(p.Siblings)-1]
		if err := VerifyProof(leafOf(9), &bad3, com); err == nil {
			t.Fatal("truncated siblings accepted")
		}
	}
	if err := VerifyProof(leafOf(9), p, hashutil.Leaf([]byte("other"))); err == nil {
		t.Fatal("wrong commitment accepted")
	}
}

func TestCellAddressing(t *testing.T) {
	tr := build(8)
	// Level 0 leaves.
	for i := uint64(0); i < 8; i++ {
		d, err := tr.Cell(Pos{0, i})
		if err != nil || d != leafOf(i) {
			t.Fatalf("Cell(L0[%d]) = %v, %v", i, d, err)
		}
	}
	// Level 1 parents.
	d, err := tr.Cell(Pos{1, 0})
	if err != nil || d != hashutil.Node(leafOf(0), leafOf(1)) {
		t.Fatalf("Cell(L1[0]): %v", err)
	}
	// Level 3 root.
	root, _ := tr.Root()
	d, err = tr.Cell(Pos{3, 0})
	if err != nil || d != root {
		t.Fatalf("Cell(L3[0]) = %s, root = %s, err %v", d.Short(), root.Short(), err)
	}
	if _, err := tr.Cell(Pos{0, 8}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestInteriorCellsComputedLazily(t *testing.T) {
	// With 5 leaves, the parent of (leaf4, leaf5) does not exist yet.
	tr := build(5)
	if _, err := tr.Cell(Pos{1, 2}); err == nil {
		t.Fatal("incomplete interior cell reported as existing")
	}
	tr.Append(leafOf(5))
	if _, err := tr.Cell(Pos{1, 2}); err != nil {
		t.Fatalf("completed interior cell missing: %v", err)
	}
}

func TestRecomputeFrontierMatches(t *testing.T) {
	for _, n := range []uint64{1, 3, 8, 13, 100} {
		tr := build(n)
		leaves := make([]hashutil.Digest, n)
		for i := uint64(0); i < n; i++ {
			leaves[i], _ = tr.Leaf(i)
		}
		got := RecomputeFrontier(leaves)
		want := tr.Frontier()
		if len(got) != len(want) {
			t.Fatalf("n=%d frontier length mismatch", n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d frontier[%d] mismatch", n, i)
			}
		}
	}
	if RecomputeFrontier(nil) != nil {
		t.Fatal("empty recompute should be nil")
	}
}

func TestFrontierEncodingRoundTrip(t *testing.T) {
	tr := build(13)
	f := tr.Frontier()
	got, err := DecodeFrontier(EncodeFrontier(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(f) {
		t.Fatal("length mismatch")
	}
	for i := range f {
		if got[i] != f[i] {
			t.Fatal("entry mismatch")
		}
	}
	if _, err := DecodeFrontier([]byte{0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	tr := build(21)
	com, _ := tr.Root()
	p, _ := tr.Prove(17)
	w := wire.NewWriter(0)
	p.Encode(w)
	got, err := DecodeProof(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(leafOf(17), got, com); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
}

func TestQuickProveVerify(t *testing.T) {
	f := func(nRaw, iRaw uint16) bool {
		n := uint64(nRaw%400) + 1
		i := uint64(iRaw) % n
		tr := build(n)
		com, _ := tr.Root()
		p, err := tr.Prove(i)
		if err != nil {
			return false
		}
		return VerifyProof(leafOf(i), p, com) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFrontierDeterministic(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := uint64(nRaw%300) + 1
		a, b := build(n), build(n)
		fa, fb := a.Frontier(), b.Frontier()
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if fa[i] != fb[i] {
				return false
			}
		}
		ra, _ := a.Root()
		rb, _ := b.Root()
		return ra == rb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
