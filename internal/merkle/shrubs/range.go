package shrubs

import (
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

// This file implements the node-set range proofs behind the clue-oriented
// verification algorithm of §IV-C. Given the leaves in a version range
// [v1, v2) (the journals the client retrieved), the verifier needs the
// minimal set of interior cells to rebuild the tree's frontier:
//
//	N1 = the destination leaf positions (the client's own data),
//	N2 = all cells on the needed proof paths (function P1),
//	N3 = the cells computable from N1 alone (function P2),
//	N  = N2 − (N2 ∩ N3) — only these are shipped.
//
// RangeProofCells computes N directly by recursion: a frontier subtree
// disjoint from the range contributes just its root; a fully covered
// subtree contributes nothing (computable); a partially covered subtree
// splits in half and recurses. VerifyRange replays the same recursion on
// the client side.

// CellRef is a positioned digest shipped in a range proof.
type CellRef struct {
	Pos    Pos
	Digest hashutil.Digest
}

// RangeProofCells returns the interior cells a verifier holding leaves
// [begin, end) needs to recompute the frontier of the tree as of the
// given size (the paper's result set N from step 3 of the clue
// verification algorithm). size may be a historical snapshot size: the
// cells of a size-s frontier are append-stable, so they remain readable
// after the tree grows.
func (t *Tree) RangeProofCells(size, begin, end uint64) ([]CellRef, error) {
	n := size
	if n > t.Size() {
		return nil, fmt.Errorf("%w: size %d beyond tree %d", ErrOutOfRange, n, t.Size())
	}
	if begin >= end || end > n {
		return nil, fmt.Errorf("%w: range [%d,%d) of %d", ErrOutOfRange, begin, end, n)
	}
	var cells []CellRef
	off := uint64(0)
	for b := 64; b >= 0; b-- {
		if n&(1<<uint(b)) == 0 {
			continue
		}
		width := uint64(1) << uint(b)
		if err := t.collectRange(uint8(b), off>>uint(b), off, off+width, begin, end, &cells); err != nil {
			return nil, err
		}
		off += width
	}
	return cells, nil
}

// collectRange walks the subtree rooted at (level, offset) covering
// leaves [lo, hi), gathering the cells needed for range [begin, end).
func (t *Tree) collectRange(level uint8, offset, lo, hi, begin, end uint64, cells *[]CellRef) error {
	if begin <= lo && hi <= end {
		return nil // fully covered by the client's leaves: computable
	}
	if hi <= begin || lo >= end {
		// Disjoint: ship this cell's digest.
		d, err := t.Cell(Pos{Level: level, Offset: offset})
		if err != nil {
			return err
		}
		*cells = append(*cells, CellRef{Pos: Pos{Level: level, Offset: offset}, Digest: d})
		return nil
	}
	if level == 0 {
		// A leaf that is partially covered cannot happen (ranges are
		// leaf-aligned), so reaching here means covered or disjoint above.
		return fmt.Errorf("shrubs: internal error: leaf partially covered")
	}
	mid := lo + (hi-lo)/2
	if err := t.collectRange(level-1, offset*2, lo, mid, begin, end, cells); err != nil {
		return err
	}
	return t.collectRange(level-1, offset*2+1, mid, hi, begin, end, cells)
}

// VerifyRange checks that leaves are exactly the tree's leaves [begin,
// end) for a tree of the given size whose frontier bags to commitment,
// using the shipped cells for everything outside the range. It returns
// nil only when the recomputed frontier matches.
func VerifyRange(size, begin, end uint64, leaves []hashutil.Digest, cells []CellRef, commitment hashutil.Digest) error {
	if begin >= end || end > size {
		return fmt.Errorf("%w: range [%d,%d) of %d", ErrBadProof, begin, end, size)
	}
	if uint64(len(leaves)) != end-begin {
		return fmt.Errorf("%w: %d leaves for range of %d", ErrBadProof, len(leaves), end-begin)
	}
	lookup := make(map[Pos]hashutil.Digest, len(cells))
	for _, c := range cells {
		lookup[c.Pos] = c.Digest
	}
	var frontier []hashutil.Digest
	off := uint64(0)
	for b := 64; b >= 0; b-- {
		if size&(1<<uint(b)) == 0 {
			continue
		}
		width := uint64(1) << uint(b)
		root, err := rebuild(uint8(b), off>>uint(b), off, off+width, begin, end, leaves, lookup)
		if err != nil {
			return err
		}
		frontier = append(frontier, root)
		off += width
	}
	if got := BagFrontier(frontier); got != commitment {
		return fmt.Errorf("%w: recomputed frontier bags to %s, want %s", ErrBadProof, got.Short(), commitment.Short())
	}
	return nil
}

// rebuild recomputes the digest of the subtree at (level, offset) covering
// [lo, hi), pulling in-range leaves from leaves and out-of-range digests
// from lookup.
func rebuild(level uint8, offset, lo, hi, begin, end uint64, leaves []hashutil.Digest, lookup map[Pos]hashutil.Digest) (hashutil.Digest, error) {
	if hi <= begin || lo >= end {
		d, ok := lookup[Pos{Level: level, Offset: offset}]
		if !ok {
			return hashutil.Zero, fmt.Errorf("%w: missing proof cell %s", ErrBadProof, Pos{Level: level, Offset: offset})
		}
		return d, nil
	}
	if level == 0 {
		return leaves[lo-begin], nil
	}
	mid := lo + (hi-lo)/2
	left, err := rebuild(level-1, offset*2, lo, mid, begin, end, leaves, lookup)
	if err != nil {
		return hashutil.Zero, err
	}
	right, err := rebuild(level-1, offset*2+1, mid, hi, begin, end, leaves, lookup)
	if err != nil {
		return hashutil.Zero, err
	}
	return hashutil.Node(left, right), nil
}

// EncodeCells serializes range-proof cells.
func EncodeCells(w *wire.Writer, cells []CellRef) {
	w.Uvarint(uint64(len(cells)))
	for _, c := range cells {
		w.Uint8(c.Pos.Level)
		w.Uvarint(c.Pos.Offset)
		w.Digest(c.Digest)
	}
}

// DecodeCells parses range-proof cells.
func DecodeCells(r *wire.Reader) ([]CellRef, error) {
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d proof cells", ErrBadProof, n)
	}
	var out []CellRef
	for i := uint64(0); i < n; i++ {
		out = append(out, CellRef{
			Pos:    Pos{Level: r.Uint8(), Offset: r.Uvarint()},
			Digest: r.Digest(),
		})
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	return out, r.Err()
}
