package accumulator

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

func leafOf(i uint64) hashutil.Digest {
	return hashutil.Leaf([]byte(fmt.Sprintf("leaf-%d", i)))
}

func build(n uint64) *Accumulator {
	a := New()
	for i := uint64(0); i < n; i++ {
		a.Append(leafOf(i))
	}
	return a
}

// naiveRoot computes the RFC 6962 root directly from the definition.
func naiveRoot(leaves []hashutil.Digest) hashutil.Digest {
	switch len(leaves) {
	case 0:
		return hashutil.Zero
	case 1:
		return leaves[0]
	}
	k := 1
	for k*2 < len(leaves) {
		k *= 2
	}
	return hashutil.Node(naiveRoot(leaves[:k]), naiveRoot(leaves[k:]))
}

func TestRootMatchesNaiveDefinition(t *testing.T) {
	var leaves []hashutil.Digest
	a := New()
	for n := uint64(1); n <= 130; n++ {
		leaves = append(leaves, leafOf(n-1))
		a.Append(leafOf(n - 1))
		got, err := a.Root()
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveRoot(leaves); got != want {
			t.Fatalf("size %d: root %s, want %s", n, got.Short(), want.Short())
		}
	}
}

func TestEmptyRoot(t *testing.T) {
	if _, err := New().Root(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100} {
		a := build(n)
		root, _ := a.Root()
		for i := uint64(0); i < n; i++ {
			p, err := a.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			if err := Verify(leafOf(i), p, root); err != nil {
				t.Fatalf("n=%d Verify(%d): %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	a := build(20)
	root, _ := a.Root()
	p, _ := a.Prove(7)
	err := Verify(leafOf(8), p, root)
	if !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	a := build(20)
	p, _ := a.Prove(7)
	if err := Verify(leafOf(7), p, hashutil.Leaf([]byte("bogus"))); err == nil {
		t.Fatal("verified against bogus root")
	}
}

func TestVerifyRejectsTamperedPath(t *testing.T) {
	a := build(33)
	root, _ := a.Root()
	p, _ := a.Prove(13)
	for i := range p.Siblings {
		bad := *p
		bad.Siblings = append([]hashutil.Digest(nil), p.Siblings...)
		bad.Siblings[i] = hashutil.Leaf([]byte("evil"))
		if err := Verify(leafOf(13), &bad, root); err == nil {
			t.Fatalf("tampered sibling %d accepted", i)
		}
	}
	// Truncated and extended paths must fail too.
	short := *p
	short.Siblings = p.Siblings[:len(p.Siblings)-1]
	if err := Verify(leafOf(13), &short, root); err == nil {
		t.Fatal("truncated path accepted")
	}
	long := *p
	long.Siblings = append(append([]hashutil.Digest(nil), p.Siblings...), hashutil.Zero)
	if err := Verify(leafOf(13), &long, root); err == nil {
		t.Fatal("extended path accepted")
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	a := build(16)
	root, _ := a.Root()
	p, _ := a.Prove(5)
	bad := *p
	bad.Index = 6
	if err := Verify(leafOf(5), &bad, root); err == nil {
		t.Fatal("index swap accepted")
	}
}

func TestHistoricalRootAndProof(t *testing.T) {
	a := build(50)
	// The root at size 32 must equal a fresh 32-leaf tree's root.
	want, _ := build(32).Root()
	got, err := a.RootAt(32)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("historical root mismatch")
	}
	p, err := a.ProveAt(10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(leafOf(10), p, got); err != nil {
		t.Fatalf("historical proof: %v", err)
	}
	// A proof at the historical size must not verify against the live root.
	live, _ := a.Root()
	if err := Verify(leafOf(10), p, live); err == nil {
		t.Fatal("historical proof verified against live root")
	}
}

func TestProveOutOfRange(t *testing.T) {
	a := build(4)
	if _, err := a.Prove(4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.ProveAt(0, 5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Leaf(4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestPathLenMatchesProof(t *testing.T) {
	a := build(100)
	for i := uint64(0); i < 100; i += 7 {
		p, _ := a.Prove(i)
		if got := PathLen(i, 100); got != len(p.Siblings) {
			t.Fatalf("PathLen(%d,100) = %d, proof has %d", i, got, len(p.Siblings))
		}
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	a := build(37)
	root, _ := a.Root()
	p, _ := a.Prove(19)
	w := wire.NewWriter(0)
	p.Encode(w)
	got, err := DecodeProof(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(leafOf(19), got, root); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
}

func TestQuickProveVerify(t *testing.T) {
	f := func(nRaw uint16, iRaw uint16) bool {
		n := uint64(nRaw%500) + 1
		i := uint64(iRaw) % n
		a := build(n)
		root, _ := a.Root()
		p, err := a.Prove(i)
		if err != nil {
			return false
		}
		return Verify(leafOf(i), p, root) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTamperDetected(t *testing.T) {
	f := func(nRaw, iRaw uint16, flip uint8) bool {
		n := uint64(nRaw%200) + 2
		i := uint64(iRaw) % n
		a := build(n)
		root, _ := a.Root()
		p, _ := a.Prove(i)
		// Tamper: flip a bit in the leaf being verified.
		bad := leafOf(i)
		bad[flip%32] ^= 0x80
		return Verify(bad, p, root) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReturnsDenseIndices(t *testing.T) {
	a := New()
	for i := uint64(0); i < 10; i++ {
		if got := a.Append(leafOf(i)); got != i {
			t.Fatalf("Append returned %d, want %d", got, i)
		}
	}
	if a.Size() != 10 {
		t.Fatalf("Size = %d", a.Size())
	}
}
