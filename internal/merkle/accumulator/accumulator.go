// Package accumulator implements the transaction-intensive Merkle model
// (tim) that the paper attributes to Diem and QLDB (§II-A): a single
// append-only Merkle accumulator over every journal digest, with a
// root-anchored audit path per transaction.
//
// It is the baseline that fam (package merkle/fam) improves on: its audit
// paths grow as O(log n) with ledger size, which is exactly the
// degradation Figure 8 of the paper measures.
//
// The tree shape follows RFC 6962: the root of n leaves splits at the
// largest power of two strictly less than n. Completed (power-of-two
// aligned) subtrees are cached level by level, so appends touch O(1)
// amortized nodes and proofs are generated in O(log n).
package accumulator

import (
	"errors"
	"fmt"
	"math/bits"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrEmpty      = errors.New("accumulator: empty tree has no root")
	ErrOutOfRange = errors.New("accumulator: leaf index out of range")
	ErrBadProof   = errors.New("accumulator: proof verification failed")
)

// Accumulator is an append-only Merkle tree over leaf digests. The zero
// value is not usable; call New. It is not safe for concurrent mutation;
// the ledger serializes appends through its committer.
type Accumulator struct {
	// levels[0] holds leaf digests; levels[k][i] is the root of the
	// complete subtree covering leaves [i*2^k, (i+1)*2^k). Entries exist
	// only for completed subtrees.
	levels [][]hashutil.Digest
}

// New returns an empty accumulator.
func New() *Accumulator {
	return &Accumulator{levels: make([][]hashutil.Digest, 1, 20)}
}

// Size returns the number of leaves appended.
func (a *Accumulator) Size() uint64 { return uint64(len(a.levels[0])) }

// CellCount reports the number of digests stored across all levels — the
// storage-overhead metric for Table I style comparisons.
func (a *Accumulator) CellCount() uint64 {
	var n uint64
	for _, lvl := range a.levels {
		n += uint64(len(lvl))
	}
	return n
}

// Append adds a leaf digest and returns its index.
func (a *Accumulator) Append(leaf hashutil.Digest) uint64 {
	idx := uint64(len(a.levels[0]))
	a.levels[0] = append(a.levels[0], leaf)
	// Bubble up: whenever an appended node completes a pair, its parent
	// becomes computable.
	i := idx
	for lvl := 0; i%2 == 1; lvl++ {
		if lvl+1 >= len(a.levels) {
			a.levels = append(a.levels, nil)
		}
		parent := hashutil.Node(a.levels[lvl][i-1], a.levels[lvl][i])
		a.levels[lvl+1] = append(a.levels[lvl+1], parent)
		i /= 2
	}
	return idx
}

// Leaf returns the leaf digest at index i.
func (a *Accumulator) Leaf(i uint64) (hashutil.Digest, error) {
	if i >= a.Size() {
		return hashutil.Zero, fmt.Errorf("%w: %d >= %d", ErrOutOfRange, i, a.Size())
	}
	return a.levels[0][i], nil
}

// Root returns the Merkle root over all leaves appended so far.
func (a *Accumulator) Root() (hashutil.Digest, error) {
	n := a.Size()
	if n == 0 {
		return hashutil.Zero, ErrEmpty
	}
	return a.rangeRoot(0, n), nil
}

// RootAt returns the root as it was when the tree held size leaves.
// Historical roots let verifiers anchor to receipts issued earlier.
func (a *Accumulator) RootAt(size uint64) (hashutil.Digest, error) {
	if size == 0 {
		return hashutil.Zero, ErrEmpty
	}
	if size > a.Size() {
		return hashutil.Zero, fmt.Errorf("%w: size %d > %d", ErrOutOfRange, size, a.Size())
	}
	return a.rangeRoot(0, size), nil
}

// rangeRoot computes the RFC 6962 root of leaves [begin, end).
func (a *Accumulator) rangeRoot(begin, end uint64) hashutil.Digest {
	width := end - begin
	if width == 1 {
		return a.levels[0][begin]
	}
	// Complete aligned subtrees come from the cache.
	if width&(width-1) == 0 && begin%width == 0 {
		lvl := bits.TrailingZeros64(width)
		if lvl < len(a.levels) && begin/width < uint64(len(a.levels[lvl])) {
			return a.levels[lvl][begin/width]
		}
	}
	k := largestPowerOfTwoBelow(width)
	return hashutil.Node(a.rangeRoot(begin, begin+k), a.rangeRoot(begin+k, end))
}

func largestPowerOfTwoBelow(n uint64) uint64 {
	if n < 2 {
		panic("accumulator: largestPowerOfTwoBelow needs n >= 2")
	}
	return 1 << (bits.Len64(n-1) - 1)
}

// Proof is an audit path for one leaf against the root of a tree of a
// given size. Siblings are ordered bottom-up.
type Proof struct {
	Index    uint64
	TreeSize uint64
	Siblings []hashutil.Digest
}

// Prove generates the audit path for leaf index at the current size.
func (a *Accumulator) Prove(index uint64) (*Proof, error) {
	return a.ProveAt(index, a.Size())
}

// ProveAt generates the audit path for leaf index against the historical
// tree of the given size.
func (a *Accumulator) ProveAt(index, size uint64) (*Proof, error) {
	if size == 0 || size > a.Size() {
		return nil, fmt.Errorf("%w: size %d (have %d)", ErrOutOfRange, size, a.Size())
	}
	if index >= size {
		return nil, fmt.Errorf("%w: index %d >= size %d", ErrOutOfRange, index, size)
	}
	p := &Proof{Index: index, TreeSize: size}
	a.path(index, 0, size, &p.Siblings)
	return p, nil
}

// path appends the audit path of leaf (begin+m relative index handled by
// recursion) within leaves [begin, end) to out, bottom-up.
func (a *Accumulator) path(m, begin, end uint64, out *[]hashutil.Digest) {
	width := end - begin
	if width == 1 {
		return
	}
	k := largestPowerOfTwoBelow(width)
	if m-begin < k {
		a.path(m, begin, begin+k, out)
		*out = append(*out, a.rangeRoot(begin+k, end))
	} else {
		a.path(m, begin+k, end, out)
		*out = append(*out, a.rangeRoot(begin, begin+k))
	}
}

// Verify checks that leaf sits at proof.Index in the tree of
// proof.TreeSize leaves whose root is root. It is a pure function usable
// by external verifiers.
func Verify(leaf hashutil.Digest, proof *Proof, root hashutil.Digest) error {
	if proof == nil {
		return fmt.Errorf("%w: nil proof", ErrBadProof)
	}
	if proof.TreeSize == 0 || proof.Index >= proof.TreeSize {
		return fmt.Errorf("%w: index %d outside tree of %d", ErrBadProof, proof.Index, proof.TreeSize)
	}
	got, rest, err := fold(leaf, proof.Index, 0, proof.TreeSize, proof.Siblings)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d unused siblings", ErrBadProof, len(rest))
	}
	if got != root {
		return fmt.Errorf("%w: computed root %s, want %s", ErrBadProof, got.Short(), root.Short())
	}
	return nil
}

// fold replays the path recursion to rebuild the root of [begin, end)
// containing leaf m, consuming siblings in the order Prove emitted them.
func fold(leaf hashutil.Digest, m, begin, end uint64, sib []hashutil.Digest) (hashutil.Digest, []hashutil.Digest, error) {
	width := end - begin
	if width == 1 {
		return leaf, sib, nil
	}
	k := largestPowerOfTwoBelow(width)
	var sub hashutil.Digest
	var err error
	if m-begin < k {
		sub, sib, err = fold(leaf, m, begin, begin+k, sib)
		if err != nil {
			return hashutil.Zero, nil, err
		}
		if len(sib) == 0 {
			return hashutil.Zero, nil, fmt.Errorf("%w: truncated path", ErrBadProof)
		}
		return hashutil.Node(sub, sib[0]), sib[1:], nil
	}
	sub, sib, err = fold(leaf, m, begin+k, end, sib)
	if err != nil {
		return hashutil.Zero, nil, err
	}
	if len(sib) == 0 {
		return hashutil.Zero, nil, fmt.Errorf("%w: truncated path", ErrBadProof)
	}
	return hashutil.Node(sib[0], sub), sib[1:], nil
}

// PathLen returns the audit-path length for a leaf at index in a tree of
// size leaves; benchmarks use it to report expected verification cost.
func PathLen(index, size uint64) int {
	n := 0
	begin, end := uint64(0), size
	for end-begin > 1 {
		k := largestPowerOfTwoBelow(end - begin)
		if index-begin < k {
			end = begin + k
		} else {
			begin += k
		}
		n++
	}
	return n
}

// Encode appends the proof to a wire writer.
func (p *Proof) Encode(w *wire.Writer) {
	w.Uvarint(p.Index)
	w.Uvarint(p.TreeSize)
	w.Uvarint(uint64(len(p.Siblings)))
	for _, s := range p.Siblings {
		w.Digest(s)
	}
}

// DecodeProof reads a proof from a wire reader.
func DecodeProof(r *wire.Reader) (*Proof, error) {
	p := &Proof{Index: r.Uvarint(), TreeSize: r.Uvarint()}
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > 64 {
		return nil, fmt.Errorf("%w: path of %d siblings", ErrBadProof, n)
	}
	for i := uint64(0); i < n; i++ {
		p.Siblings = append(p.Siblings, r.Digest())
	}
	return p, r.Err()
}
