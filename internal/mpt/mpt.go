// Package mpt implements the 16-branch Merkle Patricia Trie used as
// CM-Tree1, the state layer of the clue merged tree (§IV-B of the paper),
// and, standalone, as the Ethereum-style state tree the paper compares
// against.
//
// Keys are scattered through a cryptographic hash before insertion (the
// paper uses SHA-3; this implementation uses SHA-256, the stdlib
// equivalent — see DESIGN.md §2) so the trie stays balanced regardless of
// client-chosen clue strings. Hashed keys are fixed-length, so every path
// is 64 nibbles and values live only in leaves.
//
// The trie is persistent (copy-on-write): Put returns a new Trie sharing
// structure with the old one, and any historical root can keep serving
// reads and proofs — which is how LedgerDB captures a "verifiable snapshot
// according to its block version".
package mpt

import (
	"bytes"
	"errors"
	"fmt"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

// Errors returned by this package.
var (
	ErrNotFound = errors.New("mpt: key not found")
	ErrBadProof = errors.New("mpt: proof verification failed")
)

// node is the interface of trie nodes. Nodes are immutable once created;
// their digests are computed at construction.
type node interface {
	digest() hashutil.Digest
	encode(w *wire.Writer)
}

// Node encoding tags.
const (
	tagLeaf   = 1
	tagExt    = 2
	tagBranch = 3
)

// leafNode terminates a path: suffix is the remaining nibbles of the
// hashed key ("the long-tail leaf node for residual nibbles" of Figure 6).
type leafNode struct {
	suffix []byte // one nibble per byte
	value  []byte
	dig    hashutil.Digest
}

// extNode compresses a shared nibble run above a single child.
type extNode struct {
	prefix []byte
	child  node
	dig    hashutil.Digest
}

// branchNode fans out over 16 nibble values.
type branchNode struct {
	children [16]node
	dig      hashutil.Digest
}

func newLeaf(suffix, value []byte) *leafNode {
	n := &leafNode{suffix: suffix, value: value}
	n.dig = encodeDigest(n)
	return n
}

func newExt(prefix []byte, child node) node {
	if len(prefix) == 0 {
		return child
	}
	// Collapse nested extensions so the structure is canonical: the same
	// key set always produces the same root hash.
	if e, ok := child.(*extNode); ok {
		prefix = append(append([]byte(nil), prefix...), e.prefix...)
		child = e.child
	}
	n := &extNode{prefix: prefix, child: child}
	n.dig = encodeDigest(n)
	return n
}

func newBranch(children [16]node) *branchNode {
	n := &branchNode{children: children}
	n.dig = encodeDigest(n)
	return n
}

func encodeDigest(n node) hashutil.Digest {
	w := wire.NewWriter(64)
	n.encode(w)
	return hashutil.Sum(w.Bytes())
}

func (n *leafNode) digest() hashutil.Digest   { return n.dig }
func (n *extNode) digest() hashutil.Digest    { return n.dig }
func (n *branchNode) digest() hashutil.Digest { return n.dig }

func (n *leafNode) encode(w *wire.Writer) {
	w.Uint8(tagLeaf)
	w.WriteBytes(n.suffix)
	w.WriteBytes(n.value)
}

func (n *extNode) encode(w *wire.Writer) {
	w.Uint8(tagExt)
	w.WriteBytes(n.prefix)
	w.Digest(n.child.digest())
}

func (n *branchNode) encode(w *wire.Writer) {
	w.Uint8(tagBranch)
	for i := range n.children {
		if n.children[i] == nil {
			w.Digest(hashutil.Zero)
		} else {
			w.Digest(n.children[i].digest())
		}
	}
}

// Trie is an immutable trie snapshot. The zero value is an empty trie.
type Trie struct {
	root node
	size int
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Len returns the number of keys.
func (t *Trie) Len() int { return t.size }

// RootHash returns the trie's commitment. The empty trie has the zero
// digest.
func (t *Trie) RootHash() hashutil.Digest {
	if t.root == nil {
		return hashutil.Zero
	}
	return t.root.digest()
}

// hashKey scatters a client key into the fixed-length nibble path.
func hashKey(key []byte) []byte {
	d := hashutil.Sum(key)
	nibs := make([]byte, 2*len(d))
	for i, b := range d {
		nibs[2*i] = b >> 4
		nibs[2*i+1] = b & 0x0F
	}
	return nibs
}

// Put returns a new trie with key bound to value (replacing any previous
// binding). The receiver is unchanged.
func (t *Trie) Put(key, value []byte) *Trie {
	v := append([]byte(nil), value...)
	root, added := put(t.root, hashKey(key), v)
	size := t.size
	if added {
		size++
	}
	return &Trie{root: root, size: size}
}

func put(n node, path, value []byte) (node, bool) {
	if n == nil {
		return newLeaf(path, value), true
	}
	switch n := n.(type) {
	case *leafNode:
		common := commonPrefix(n.suffix, path)
		if common == len(n.suffix) && common == len(path) {
			return newLeaf(path, value), false // overwrite
		}
		// Split: branch at the first divergent nibble.
		var children [16]node
		children[n.suffix[common]] = newLeaf(n.suffix[common+1:], n.value)
		children[path[common]] = newLeaf(path[common+1:], value)
		return newExt(path[:common], newBranch(children)), true
	case *extNode:
		common := commonPrefix(n.prefix, path)
		if common == len(n.prefix) {
			child, added := put(n.child, path[common:], value)
			return newExt(n.prefix, child), added
		}
		// The extension itself splits.
		var children [16]node
		children[n.prefix[common]] = newExt(n.prefix[common+1:], n.child)
		children[path[common]] = newLeaf(path[common+1:], value)
		return newExt(path[:common], newBranch(children)), true
	case *branchNode:
		children := n.children
		child, added := put(children[path[0]], path[1:], value)
		children[path[0]] = child
		return newBranch(children), added
	default:
		panic("mpt: unknown node type")
	}
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Get returns the value bound to key.
func (t *Trie) Get(key []byte) ([]byte, error) {
	n := t.root
	path := hashKey(key)
	for {
		switch v := n.(type) {
		case nil:
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		case *leafNode:
			if bytes.Equal(v.suffix, path) {
				return append([]byte(nil), v.value...), nil
			}
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		case *extNode:
			if len(path) < len(v.prefix) || !bytes.Equal(path[:len(v.prefix)], v.prefix) {
				return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			path = path[len(v.prefix):]
			n = v.child
		case *branchNode:
			if len(path) == 0 {
				return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
			}
			n = v.children[path[0]]
			path = path[1:]
		}
	}
}

// Proof is a membership proof: the encoded nodes on the path from the
// root to the key's leaf. The verifier re-hashes each node and follows
// the key's nibbles, so any splice or substitution is detected.
type Proof struct {
	Nodes [][]byte
}

// Prove produces a membership proof for key.
func (t *Trie) Prove(key []byte) (*Proof, error) {
	if _, err := t.Get(key); err != nil {
		return nil, err
	}
	p := &Proof{}
	n := t.root
	path := hashKey(key)
	for n != nil {
		w := wire.NewWriter(64)
		n.encode(w)
		p.Nodes = append(p.Nodes, append([]byte(nil), w.Bytes()...))
		switch v := n.(type) {
		case *leafNode:
			return p, nil
		case *extNode:
			path = path[len(v.prefix):]
			n = v.child
		case *branchNode:
			n = v.children[path[0]]
			path = path[1:]
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// VerifyProof checks that key is bound to value in the trie whose root
// hash is root. It is a pure function for client-side verification.
func VerifyProof(root hashutil.Digest, key, value []byte, p *Proof) error {
	if p == nil || len(p.Nodes) == 0 {
		return fmt.Errorf("%w: empty proof", ErrBadProof)
	}
	path := hashKey(key)
	want := root
	for i, enc := range p.Nodes {
		if hashutil.Sum(enc) != want {
			return fmt.Errorf("%w: node %d hash mismatch", ErrBadProof, i)
		}
		r := wire.NewReader(enc)
		switch tag := r.Uint8(); tag {
		case tagLeaf:
			suffix := r.ReadBytes()
			val := r.ReadBytes()
			if err := r.Finish(); err != nil {
				return fmt.Errorf("%w: node %d: %v", ErrBadProof, i, err)
			}
			if !bytes.Equal(suffix, path) {
				return fmt.Errorf("%w: leaf suffix does not match key", ErrBadProof)
			}
			if !bytes.Equal(val, value) {
				return fmt.Errorf("%w: leaf value mismatch", ErrBadProof)
			}
			if i != len(p.Nodes)-1 {
				return fmt.Errorf("%w: leaf before end of proof", ErrBadProof)
			}
			return nil
		case tagExt:
			prefix := r.ReadBytes()
			child := r.Digest()
			if err := r.Finish(); err != nil {
				return fmt.Errorf("%w: node %d: %v", ErrBadProof, i, err)
			}
			if len(path) < len(prefix) || !bytes.Equal(path[:len(prefix)], prefix) {
				return fmt.Errorf("%w: extension prefix diverges from key", ErrBadProof)
			}
			path = path[len(prefix):]
			want = child
		case tagBranch:
			var children [16]hashutil.Digest
			for j := range children {
				children[j] = r.Digest()
			}
			if err := r.Finish(); err != nil {
				return fmt.Errorf("%w: node %d: %v", ErrBadProof, i, err)
			}
			if len(path) == 0 {
				return fmt.Errorf("%w: key exhausted at branch", ErrBadProof)
			}
			want = children[path[0]]
			if want.IsZero() {
				return fmt.Errorf("%w: branch has no child for nibble %d", ErrBadProof, path[0])
			}
			path = path[1:]
		default:
			return fmt.Errorf("%w: unknown node tag %d", ErrBadProof, tag)
		}
	}
	return fmt.Errorf("%w: proof ended before a leaf", ErrBadProof)
}

// Walk visits every key-value pair's value in unspecified order. It is
// used by audits that re-derive state commitments.
func (t *Trie) Walk(fn func(value []byte) error) error {
	return walk(t.root, fn)
}

func walk(n node, fn func([]byte) error) error {
	switch v := n.(type) {
	case nil:
		return nil
	case *leafNode:
		return fn(v.value)
	case *extNode:
		return walk(v.child, fn)
	case *branchNode:
		for _, c := range v.children {
			if c != nil {
				if err := walk(c, fn); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return nil
}
