package mpt

import (
	"fmt"
	"testing"
)

// CM-Tree1 cost per clue insertion is one MPT Put plus a path rehash;
// these benches bound that.

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < 1<<12; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("warm-%d", i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
}

func BenchmarkProveVerify(b *testing.B) {
	tr := New()
	const n = 1 << 12
	for i := 0; i < n; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
	root := tr.RootHash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%n))
		p, err := tr.Prove(key)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyProof(root, key, []byte("value"), p); err != nil {
			b.Fatal(err)
		}
	}
}
