package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
)

func TestEmptyTrie(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.RootHash().IsZero() {
		t.Fatal("empty trie root not zero")
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutGetMany(t *testing.T) {
	tr := New()
	const n = 500
	for i := 0; i < n; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("clue-%04d", i)), []byte(fmt.Sprintf("value-%04d", i)))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, err := tr.Get([]byte(fmt.Sprintf("clue-%04d", i)))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if want := fmt.Sprintf("value-%04d", i); string(got) != want {
			t.Fatalf("Get(%d) = %q", i, got)
		}
	}
}

func TestOverwriteKeepsSize(t *testing.T) {
	tr := New().Put([]byte("k"), []byte("v1"))
	tr2 := tr.Put([]byte("k"), []byte("v2"))
	if tr2.Len() != 1 {
		t.Fatalf("Len = %d", tr2.Len())
	}
	got, _ := tr2.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	// The old snapshot still answers with the old value.
	old, _ := tr.Get([]byte("k"))
	if string(old) != "v1" {
		t.Fatalf("old snapshot mutated: %q", old)
	}
	if tr.RootHash() == tr2.RootHash() {
		t.Fatal("root unchanged after overwrite")
	}
}

func TestRootHashOrderIndependent(t *testing.T) {
	// The same key set must yield the same root regardless of insertion
	// order (structural canonicality).
	keys := []string{"a", "bb", "ccc", "dd", "e", "ffff", "g", "hh"}
	a := New()
	for _, k := range keys {
		a = a.Put([]byte(k), []byte("v-"+k))
	}
	b := New()
	for i := len(keys) - 1; i >= 0; i-- {
		b = b.Put([]byte(keys[i]), []byte("v-"+keys[i]))
	}
	if a.RootHash() != b.RootHash() {
		t.Fatal("insertion order changed root hash")
	}
}

func TestRootHashBindsValues(t *testing.T) {
	a := New().Put([]byte("k"), []byte("v1"))
	b := New().Put([]byte("k"), []byte("v2"))
	if a.RootHash() == b.RootHash() {
		t.Fatal("different values, same root")
	}
}

func TestProveVerify(t *testing.T) {
	tr := New()
	const n = 200
	for i := 0; i < n; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	root := tr.RootHash()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		p, err := tr.Prove(key)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		if err := VerifyProof(root, key, []byte(fmt.Sprintf("val-%d", i)), p); err != nil {
			t.Fatalf("Verify(%d): %v", i, err)
		}
	}
}

func TestVerifyRejectsWrongValue(t *testing.T) {
	tr := New().Put([]byte("k1"), []byte("v1")).Put([]byte("k2"), []byte("v2"))
	p, _ := tr.Prove([]byte("k1"))
	err := VerifyProof(tr.RootHash(), []byte("k1"), []byte("forged"), p)
	if !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	tr := New().Put([]byte("k1"), []byte("v1")).Put([]byte("k2"), []byte("v2"))
	p, _ := tr.Prove([]byte("k1"))
	if err := VerifyProof(tr.RootHash(), []byte("k2"), []byte("v1"), p); err == nil {
		t.Fatal("proof for k1 accepted for k2")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := New().Put([]byte("k1"), []byte("v1"))
	p, _ := tr.Prove([]byte("k1"))
	if err := VerifyProof(hashutil.Leaf([]byte("other")), []byte("k1"), []byte("v1"), p); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestVerifyRejectsTamperedNodes(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v"))
	}
	key := []byte("key-17")
	p, _ := tr.Prove(key)
	for i := range p.Nodes {
		bad := &Proof{Nodes: make([][]byte, len(p.Nodes))}
		for j := range p.Nodes {
			bad.Nodes[j] = append([]byte(nil), p.Nodes[j]...)
		}
		bad.Nodes[i][len(bad.Nodes[i])-1] ^= 0x01
		if err := VerifyProof(tr.RootHash(), key, []byte("v"), bad); err == nil {
			t.Fatalf("tampered node %d accepted", i)
		}
	}
	// Truncated proof chains must fail.
	if len(p.Nodes) > 1 {
		trunc := &Proof{Nodes: p.Nodes[:len(p.Nodes)-1]}
		if err := VerifyProof(tr.RootHash(), key, []byte("v"), trunc); err == nil {
			t.Fatal("truncated proof accepted")
		}
	}
}

func TestProveMissingKey(t *testing.T) {
	tr := New().Put([]byte("k"), []byte("v"))
	if _, err := tr.Prove([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotsIndependent(t *testing.T) {
	// Historical snapshots keep proving against their own roots — the
	// per-block versioning CM-Tree relies on.
	v1 := New().Put([]byte("k"), []byte("v1"))
	v2 := v1.Put([]byte("k"), []byte("v2")).Put([]byte("k2"), []byte("x"))
	p1, err := v1.Prove([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(v1.RootHash(), []byte("k"), []byte("v1"), p1); err != nil {
		t.Fatalf("historical proof: %v", err)
	}
	if err := VerifyProof(v2.RootHash(), []byte("k"), []byte("v1"), p1); err == nil {
		t.Fatal("old proof verified against new root")
	}
}

func TestWalkVisitsAllValues(t *testing.T) {
	tr := New()
	want := map[string]bool{}
	for i := 0; i < 40; i++ {
		v := fmt.Sprintf("val-%d", i)
		tr = tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(v))
		want[v] = true
	}
	seen := map[string]bool{}
	err := tr.Walk(func(v []byte) error {
		seen[string(v)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("walked %d values, want %d", len(seen), len(want))
	}
}

func TestWalkStopsOnError(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr = tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	boom := errors.New("boom")
	count := 0
	err := tr.Walk(func([]byte) error {
		count++
		if count == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 3 {
		t.Fatalf("err = %v, count = %d", err, count)
	}
}

func TestQuickPutGetProve(t *testing.T) {
	f := func(keys [][]byte, pick uint8) bool {
		tr := New()
		var last []byte
		seen := map[string]bool{}
		for _, k := range keys {
			if len(k) == 0 {
				continue
			}
			tr = tr.Put(k, append([]byte("v:"), k...))
			seen[string(k)] = true
			last = k
		}
		if last == nil {
			return true
		}
		if tr.Len() != len(seen) {
			return false
		}
		got, err := tr.Get(last)
		if err != nil || !bytes.Equal(got, append([]byte("v:"), last...)) {
			return false
		}
		p, err := tr.Prove(last)
		if err != nil {
			return false
		}
		return VerifyProof(tr.RootHash(), last, got, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrderIndependence(t *testing.T) {
	f := func(keys [][]byte) bool {
		fwd, rev := New(), New()
		for _, k := range keys {
			fwd = fwd.Put(k, k)
		}
		for i := len(keys) - 1; i >= 0; i-- {
			rev = rev.Put(keys[i], keys[i])
		}
		return fwd.RootHash() == rev.RootHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
