package cmtree

// The sorted clue-commitment tree ("absence tree"): a keyed-hash-tree
// style Merkle commitment over the SORTED set of live clue names, built
// per state generation and folded into SignedState next to the fam
// root. Because leaves are sorted and the committed count fixes the
// tree shape, two ADJACENT authenticated leaves (pred < q < succ) prove
// that q is not in the set — an offline-verifiable "no such clue", the
// reply shape a plain CM-Tree lookup cannot authenticate.
//
// Shape: binary, odd-promote — a level's unpaired last node is carried
// up unchanged. Level sizes are therefore a pure function of the leaf
// count (s0 = count, s_{k+1} = ceil(s_k / 2)), so a verifier holding
// only (root, count) from the signed state knows at every level whether
// a sibling must be consumed from the path. Leaves are domain-separated
// from interior nodes via hashutil.Leaf / hashutil.Node.

import (
	"fmt"
	"sort"
	"strings"

	"ledgerdb/internal/hashutil"
)

// AbsenceTree is the immutable sorted commitment over one clue-name
// set. Build once per (clue-set version, purge base); readers share it.
type AbsenceTree struct {
	names  []string
	levels [][]hashutil.Digest // levels[0] = leaf digests, last = [root]
}

// BuildAbsenceTree commits to the given name set. The input is copied
// and sorted; duplicates are not expected (callers pass set-derived
// slices) but would only waste leaves, not break soundness.
func BuildAbsenceTree(names []string) *AbsenceTree {
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	t := &AbsenceTree{names: sorted}
	if len(sorted) == 0 {
		return t
	}
	level := make([]hashutil.Digest, len(sorted))
	for i, n := range sorted {
		level[i] = hashutil.Leaf([]byte(n))
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]hashutil.Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashutil.Node(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd promote
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Root returns the commitment; hashutil.Zero for the empty set.
func (t *AbsenceTree) Root() hashutil.Digest {
	if len(t.levels) == 0 {
		return hashutil.Zero
	}
	return t.levels[len(t.levels)-1][0]
}

// Count returns the number of committed names.
func (t *AbsenceTree) Count() uint64 { return uint64(len(t.names)) }

// Name returns the committed name at sorted index i.
func (t *AbsenceTree) Name(i int) string { return t.names[i] }

// Path returns the sibling path authenticating leaf i against Root().
// Odd-promote levels where the node has no sibling contribute nothing.
func (t *AbsenceTree) Path(i int) []hashutil.Digest {
	var path []hashutil.Digest
	for k := 0; k+1 < len(t.levels); k++ {
		level := t.levels[k]
		if i^1 < len(level) { // sibling exists (i^1 flips the low bit)
			path = append(path, level[i^1])
		}
		i >>= 1
	}
	return path
}

// Locate finds the neighborhood of query q in the sorted set: the index
// of the first name >= q, and whether a committed name is covered by q
// (equal to it when prefix is false; having q as a prefix when prefix
// is true). When !present, pred = at-1 and succ = at bracket q.
func (t *AbsenceTree) Locate(q string, prefix bool) (at int, present bool) {
	at = sort.SearchStrings(t.names, q)
	if at < len(t.names) {
		if prefix {
			present = strings.HasPrefix(t.names[at], q)
		} else {
			present = t.names[at] == q
		}
	}
	return at, present
}

// VerifyAbsencePath recomputes the root from a claimed (index, name,
// path) triple. count is the committed leaf count from the signed
// state; the level sizes it induces determine exactly when a path
// element is consumed, so a path of the wrong length fails.
func VerifyAbsencePath(root hashutil.Digest, count, index uint64, name string, path []hashutil.Digest) error {
	if count == 0 || index >= count {
		return fmt.Errorf("%w: absence leaf index %d of %d", ErrBadProof, index, count)
	}
	h := hashutil.Leaf([]byte(name))
	size, i, used := count, index, 0
	for size > 1 {
		if i^1 < size { // sibling present at this level
			if used >= len(path) {
				return fmt.Errorf("%w: absence path too short", ErrBadProof)
			}
			if i&1 == 0 {
				h = hashutil.Node(h, path[used])
			} else {
				h = hashutil.Node(path[used], h)
			}
			used++
		}
		size = (size + 1) / 2
		i >>= 1
	}
	if used != len(path) {
		return fmt.Errorf("%w: absence path has %d extra siblings", ErrBadProof, len(path)-used)
	}
	if h != root {
		return fmt.Errorf("%w: absence path does not reach the committed clue-set root", ErrBadProof)
	}
	return nil
}
