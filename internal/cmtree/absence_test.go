package cmtree

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"ledgerdb/internal/hashutil"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("clue-%03d", i)
	}
	return out
}

func TestAbsenceTreeEmpty(t *testing.T) {
	at := BuildAbsenceTree(nil)
	if at.Count() != 0 {
		t.Fatalf("Count = %d, want 0", at.Count())
	}
	if at.Root() != hashutil.Zero {
		t.Fatalf("empty root = %s, want zero", at.Root())
	}
	if err := VerifyAbsencePath(at.Root(), 0, 0, "x", nil); err == nil {
		t.Fatal("VerifyAbsencePath against an empty tree must fail")
	}
}

// TestAbsenceTreePathsVerify checks every leaf of every tree size up to
// a few levels deep: the authenticated path must verify against (root,
// count, index) and nothing else.
func TestAbsenceTreePathsVerify(t *testing.T) {
	for n := 1; n <= 33; n++ {
		at := BuildAbsenceTree(names(n))
		if at.Count() != uint64(n) {
			t.Fatalf("n=%d: Count = %d", n, at.Count())
		}
		for i := 0; i < n; i++ {
			path := at.Path(i)
			if err := VerifyAbsencePath(at.Root(), uint64(n), uint64(i), at.Name(i), path); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
			// Wrong index, wrong name, and truncated path must all fail.
			if err := VerifyAbsencePath(at.Root(), uint64(n), uint64((i+1)%n), at.Name(i), path); err == nil && n > 1 {
				t.Fatalf("n=%d leaf %d: verified under wrong index", n, i)
			}
			if err := VerifyAbsencePath(at.Root(), uint64(n), uint64(i), "not-a-clue", path); err == nil {
				t.Fatalf("n=%d leaf %d: verified under wrong name", n, i)
			}
			if len(path) > 0 {
				if err := VerifyAbsencePath(at.Root(), uint64(n), uint64(i), at.Name(i), path[:len(path)-1]); err == nil {
					t.Fatalf("n=%d leaf %d: verified with truncated path", n, i)
				}
			}
		}
	}
}

func TestAbsenceTreeTamperedSibling(t *testing.T) {
	at := BuildAbsenceTree(names(16))
	path := at.Path(5)
	path[0][3] ^= 0xFF
	if err := VerifyAbsencePath(at.Root(), 16, 5, at.Name(5), path); !errors.Is(err, ErrBadProof) {
		t.Fatalf("err = %v, want ErrBadProof", err)
	}
}

func TestAbsenceTreeSortsInput(t *testing.T) {
	a := BuildAbsenceTree([]string{"zebra", "apple", "mango"})
	b := BuildAbsenceTree([]string{"apple", "mango", "zebra"})
	if a.Root() != b.Root() {
		t.Fatal("root must not depend on input order")
	}
	if a.Name(0) != "apple" || a.Name(2) != "zebra" {
		t.Fatalf("names not sorted: %q %q", a.Name(0), a.Name(2))
	}
}

func TestAbsenceTreeLocate(t *testing.T) {
	at := BuildAbsenceTree([]string{"b", "d", "f"})
	cases := []struct {
		q       string
		prefix  bool
		at      int
		present bool
	}{
		{"a", false, 0, false},
		{"b", false, 0, true},
		{"c", false, 1, false},
		{"f", false, 2, true},
		{"g", false, 3, false},
		{"b", true, 0, true},  // exact live clue matches its own prefix
		{"c", true, 1, false}, // nothing starts with "c"
	}
	for _, c := range cases {
		gotAt, gotPresent := at.Locate(c.q, c.prefix)
		if gotAt != c.at || gotPresent != c.present {
			t.Fatalf("Locate(%q, %v) = (%d, %v), want (%d, %v)", c.q, c.prefix, gotAt, gotPresent, c.at, c.present)
		}
	}
	// A prefix query is "present" when any live clue starts with it.
	at2 := BuildAbsenceTree([]string{"invoice/2024", "invoice/2025"})
	if _, present := at2.Locate("invoice/", true); !present {
		t.Fatal("prefix with live extensions must locate as present")
	}
	if _, present := at2.Locate("invoice/", false); present {
		t.Fatal("exact lookup of a non-clue must locate as absent")
	}
}

// TestLiveNames pins the purge interaction: cmtree retains purged clues
// (pseudo-genesis keeps lineage verifiable), but the absence commitment
// must only cover clues whose latest jsn survived the purge base.
func TestLiveNames(t *testing.T) {
	tr := New()
	tr.Insert("old", 1, digOf("old", 1))
	tr.Insert("both", 2, digOf("both", 2))
	tr.Insert("both", 7, digOf("both", 7))
	tr.Insert("new", 9, digOf("new", 9))
	got := tr.LiveNames(5)
	want := []string{"both", "new"}
	if len(got) != len(want) {
		t.Fatalf("LiveNames(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LiveNames(5) = %v, want %v", got, want)
		}
	}
	if !sort.StringsAreSorted(tr.LiveNames(0)) {
		t.Fatal("LiveNames must be sorted")
	}
}

// TestVersionBumpsOnNewNameOnly pins the state-cache invalidation rule:
// the clue-set version moves only when a NEW clue name appears, so
// appends to existing clues reuse the cached absence tree.
func TestVersionBumpsOnNewNameOnly(t *testing.T) {
	tr := New()
	v0 := tr.Version()
	tr.Insert("k", 1, digOf("k", 1))
	v1 := tr.Version()
	if v1 == v0 {
		t.Fatal("new name must bump the version")
	}
	tr.Insert("k", 2, digOf("k", 2))
	if tr.Version() != v1 {
		t.Fatal("appending to an existing clue must not bump the version")
	}
	tr.Insert("k2", 3, digOf("k2", 3))
	if tr.Version() == v1 {
		t.Fatal("second new name must bump the version")
	}
}
