package cmtree

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/wire"
)

func digOf(clue string, v uint64) hashutil.Digest {
	return hashutil.Leaf([]byte(fmt.Sprintf("journal/%s/%d", clue, v)))
}

// seed inserts count journals under each of the given clues, with global
// jsn assignment interleaved round-robin (as a real ledger would).
func seed(t *Tree, clues []string, count int) {
	jsn := uint64(0)
	for v := 0; v < count; v++ {
		for _, c := range clues {
			t.Insert(c, jsn, digOf(c, uint64(v)))
			jsn++
		}
	}
}

func lineage(clue string, n int) []hashutil.Digest {
	out := make([]hashutil.Digest, n)
	for i := range out {
		out[i] = digOf(clue, uint64(i))
	}
	return out
}

func TestInsertAndCount(t *testing.T) {
	tr := New()
	seed(tr, []string{"dci-001", "dci-002"}, 5)
	if tr.Count("dci-001") != 5 || tr.Count("dci-002") != 5 {
		t.Fatalf("counts = %d, %d", tr.Count("dci-001"), tr.Count("dci-002"))
	}
	if tr.Count("absent") != 0 {
		t.Fatal("absent clue has nonzero count")
	}
	if tr.Clues() != 2 {
		t.Fatalf("Clues = %d", tr.Clues())
	}
	jsns, err := tr.JSNs("dci-001")
	if err != nil {
		t.Fatal(err)
	}
	if len(jsns) != 5 || jsns[0] != 0 || jsns[1] != 2 {
		t.Fatalf("jsns = %v", jsns)
	}
	if _, err := tr.JSNs("absent"); !errors.Is(err, ErrUnknownClue) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerVerifyWholeClue(t *testing.T) {
	tr := New()
	seed(tr, []string{"a", "b", "c"}, 9)
	for _, c := range []string{"a", "b", "c"} {
		if err := tr.VerifyServer(c, lineage(c, 9)); err != nil {
			t.Fatalf("VerifyServer(%s): %v", c, err)
		}
	}
}

func TestServerVerifyDetectsTampering(t *testing.T) {
	tr := New()
	seed(tr, []string{"a"}, 8)
	// Tampered entry.
	bad := lineage("a", 8)
	bad[3] = hashutil.Leaf([]byte("forged"))
	if err := tr.VerifyServer("a", bad); !errors.Is(err, ErrBadProof) {
		t.Fatalf("tampered lineage: err = %v", err)
	}
	// Missing entry — the count mismatch the paper insists lineage
	// verification must catch ("including the number of records").
	if err := tr.VerifyServer("a", lineage("a", 7)); !errors.Is(err, ErrBadProof) {
		t.Fatalf("missing entry: err = %v", err)
	}
	// Extra forged entry appended.
	extra := append(lineage("a", 8), hashutil.Leaf([]byte("extra")))
	if err := tr.VerifyServer("a", extra); !errors.Is(err, ErrBadProof) {
		t.Fatalf("extra entry: err = %v", err)
	}
	// Reordered lineage.
	swapped := lineage("a", 8)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := tr.VerifyServer("a", swapped); !errors.Is(err, ErrBadProof) {
		t.Fatalf("reordered lineage: err = %v", err)
	}
	if err := tr.VerifyServer("nope", nil); !errors.Is(err, ErrUnknownClue) {
		t.Fatalf("unknown clue: err = %v", err)
	}
}

func TestClientVerifyWholeClue(t *testing.T) {
	tr := New()
	seed(tr, []string{"x", "y"}, 13)
	snap := tr.Snapshot()
	root := snap.RootHash()
	p, err := snap.ProveClue("x", 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClue(root, p, lineage("x", 13)); err != nil {
		t.Fatalf("VerifyClue: %v", err)
	}
	// Against the wrong root it must fail.
	if err := VerifyClue(hashutil.Leaf([]byte("evil")), p, lineage("x", 13)); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestClientVerifyRange(t *testing.T) {
	tr := New()
	seed(tr, []string{"k"}, 23)
	snap := tr.Snapshot()
	root := snap.RootHash()
	for _, r := range [][2]uint64{{0, 4}, {3, 9}, {10, 23}, {22, 23}, {0, 23}} {
		p, err := snap.ProveClue("k", r[0], r[1])
		if err != nil {
			t.Fatalf("ProveClue(%v): %v", r, err)
		}
		leaves := lineage("k", 23)[r[0]:r[1]]
		if err := VerifyClue(root, p, leaves); err != nil {
			t.Fatalf("VerifyClue(%v): %v", r, err)
		}
	}
}

func TestClientVerifyRangeDetectsTampering(t *testing.T) {
	tr := New()
	seed(tr, []string{"k"}, 16)
	snap := tr.Snapshot()
	root := snap.RootHash()
	p, _ := snap.ProveClue("k", 4, 10)
	leaves := append([]hashutil.Digest(nil), lineage("k", 16)[4:10]...)
	leaves[2] = hashutil.Leaf([]byte("forged"))
	if err := VerifyClue(root, p, leaves); err == nil {
		t.Fatal("tampered range accepted")
	}
	// Wrong-length slice.
	if err := VerifyClue(root, p, lineage("k", 16)[4:9]); err == nil {
		t.Fatal("short range accepted")
	}
}

func TestSnapshotStableUnderLaterInserts(t *testing.T) {
	tr := New()
	seed(tr, []string{"k"}, 10)
	snap := tr.Snapshot()
	root := snap.RootHash()
	// Grow the live tree after the snapshot.
	for v := 10; v < 40; v++ {
		tr.Insert("k", uint64(v), digOf("k", uint64(v)))
	}
	p, err := snap.ProveClue("k", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClue(root, p, lineage("k", 10)); err != nil {
		t.Fatalf("snapshot proof after growth: %v", err)
	}
	// Ranged proof from the old snapshot also stays valid.
	p2, err := snap.ProveClue("k", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClue(root, p2, lineage("k", 10)[2:7]); err != nil {
		t.Fatalf("snapshot range proof after growth: %v", err)
	}
	// The live root has moved on.
	if tr.RootHash() == root {
		t.Fatal("live root unchanged after inserts")
	}
}

func TestProveClueBadRange(t *testing.T) {
	tr := New()
	seed(tr, []string{"k"}, 5)
	snap := tr.Snapshot()
	for _, r := range [][2]uint64{{0, 0}, {3, 2}, {0, 6}} {
		if _, err := snap.ProveClue("k", r[0], r[1]); !errors.Is(err, ErrBadRange) {
			t.Fatalf("range %v: err = %v", r, err)
		}
	}
	if _, err := snap.ProveClue("absent", 0, 1); !errors.Is(err, ErrUnknownClue) {
		t.Fatalf("err = %v", err)
	}
}

func TestClueProofWireRoundTrip(t *testing.T) {
	tr := New()
	seed(tr, []string{"k", "z"}, 11)
	snap := tr.Snapshot()
	root := snap.RootHash()
	p, _ := snap.ProveClue("k", 2, 9)
	w := wire.NewWriter(0)
	p.Encode(w)
	got, err := DecodeClueProof(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyClue(root, got, lineage("k", 11)[2:9]); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
}

func TestQuickWholeClueAcrossSizes(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%120) + 1
		tr := New()
		for v := 0; v < n; v++ {
			tr.Insert("q", uint64(v), digOf("q", uint64(v)))
		}
		snap := tr.Snapshot()
		p, err := snap.ProveClue("q", 0, uint64(n))
		if err != nil {
			return false
		}
		return VerifyClue(snap.RootHash(), p, lineage("q", n)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangesAcrossSizes(t *testing.T) {
	f := func(nRaw, aRaw, bRaw uint8) bool {
		n := uint64(nRaw%100) + 2
		a := uint64(aRaw) % (n - 1)
		b := a + 1 + uint64(bRaw)%(n-a)
		if b > n {
			b = n
		}
		tr := New()
		for v := uint64(0); v < n; v++ {
			tr.Insert("q", v, digOf("q", v))
		}
		snap := tr.Snapshot()
		p, err := snap.ProveClue("q", a, b)
		if err != nil {
			return false
		}
		return VerifyClue(snap.RootHash(), p, lineage("q", int(n))[a:b]) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestManyCluesKeepTrieConsistent(t *testing.T) {
	tr := New()
	const clues = 300
	for i := 0; i < clues; i++ {
		c := fmt.Sprintf("clue-%04d", i)
		for v := 0; v < 1+i%4; v++ {
			tr.Insert(c, uint64(i*10+v), digOf(c, uint64(v)))
		}
	}
	snap := tr.Snapshot()
	for i := 0; i < clues; i += 37 {
		c := fmt.Sprintf("clue-%04d", i)
		n := uint64(1 + i%4)
		p, err := snap.ProveClue(c, 0, n)
		if err != nil {
			t.Fatalf("ProveClue(%s): %v", c, err)
		}
		if err := VerifyClue(snap.RootHash(), p, lineage(c, int(n))); err != nil {
			t.Fatalf("VerifyClue(%s): %v", c, err)
		}
	}
}
