package cmtree

import (
	"fmt"
	"testing"

	"ledgerdb/internal/hashutil"
	"ledgerdb/internal/merkle/accumulator"
)

// BenchmarkInsert measures the two-step CM-Tree insertion of §IV-B3
// (CM-Tree2 append + CM-Tree1 path rehash) against the ccMPT baseline's
// counter update.
func BenchmarkInsert(b *testing.B) {
	b.Run("CM-Tree", func(b *testing.B) {
		tr := New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clue := fmt.Sprintf("clue-%d", i%1024)
			tr.Insert(clue, uint64(i), hashutil.Leaf([]byte{byte(i), byte(i >> 8)}))
		}
	})
	b.Run("ccMPT", func(b *testing.B) {
		acc := accumulator.New()
		cc := NewCCMPT(acc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clue := fmt.Sprintf("clue-%d", i%1024)
			jsn := acc.Append(hashutil.Leaf([]byte{byte(i), byte(i >> 8)}))
			cc.Insert(clue, jsn)
		}
	})
}

// BenchmarkVerifyByEntries is the Figure 9(b) per-op view.
func BenchmarkVerifyByEntries(b *testing.B) {
	for _, m := range []int{10, 100, 1000} {
		tr := New()
		acc := accumulator.New()
		cc := NewCCMPT(acc)
		// Background ledger.
		for i := 0; i < 1<<13; i++ {
			clue := fmt.Sprintf("bg-%d", i)
			d := hashutil.Leaf([]byte(clue))
			tr.Insert(clue, uint64(i), d)
			acc.Append(d)
			cc.Insert(clue, uint64(i))
		}
		digests := make([]hashutil.Digest, m)
		for v := 0; v < m; v++ {
			d := hashutil.Leaf([]byte(fmt.Sprintf("t/%d", v)))
			digests[v] = d
			jsn := acc.Append(d)
			tr.Insert("t", jsn, d)
			cc.Insert("t", jsn)
		}
		b.Run(fmt.Sprintf("CM-Tree/m=%d", m), func(b *testing.B) {
			snap := tr.Snapshot()
			root := snap.RootHash()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := snap.ProveClue("t", 0, uint64(m))
				if err != nil {
					b.Fatal(err)
				}
				if err := VerifyClue(root, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ccMPT/m=%d", m), func(b *testing.B) {
			ccRoot := cc.RootHash()
			ledgerRoot, _ := acc.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := cc.ProveClue("t")
				if err != nil {
					b.Fatal(err)
				}
				if err := VerifyCCMPT(ccRoot, ledgerRoot, p, digests); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
